// Defense evaluation — the attack generator's advertised use case
// (Section V-E): plug YOUR OWN rating aggregation scheme into the
// challenge and sweep the generator's parameter space against it. This
// example evaluates a trimmed-mean defense you might be tempted to ship,
// and prints where on the variance–bias plane it breaks.
//
// Run with:
//
//	go run ./examples/defense_eval
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/agg"
	"repro/internal/challenge"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/stats"
)

// TrimmedMean is the custom defense under test: each 30-day period drops
// the lowest and highest Trim fraction of ratings and averages the rest.
// It satisfies agg.Scheme, which is all the harness needs.
type TrimmedMean struct {
	Trim float64 // fraction to drop at each end
}

// Name implements agg.Scheme.
func (t TrimmedMean) Name() string { return "TRIM" }

// Aggregates implements agg.Scheme.
func (t TrimmedMean) Aggregates(d *dataset.Dataset) agg.Table {
	out := make(agg.Table, len(d.Products))
	n := agg.Periods(d.HorizonDays)
	for _, p := range d.Products {
		scores := make([]float64, n)
		for i := 0; i < n; i++ {
			lo, hi := agg.PeriodInterval(i, d.HorizonDays)
			period := p.Ratings.Between(lo, hi)
			scores[i] = trimmedMean(period.Values(), t.Trim)
		}
		out[p.ID] = scores
	}
	return out
}

func trimmedMean(vals []float64, trim float64) float64 {
	if len(vals) == 0 {
		return math.NaN()
	}
	lo := stats.Quantile(vals, trim)
	hi := stats.Quantile(vals, 1-trim)
	var sum float64
	var n int
	for _, v := range vals {
		if v >= lo && v <= hi {
			sum += v
			n++
		}
	}
	if n == 0 {
		return stats.Mean(vals)
	}
	return sum / float64(n)
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	c, err := challenge.New(challenge.DefaultConfig())
	if err != nil {
		return err
	}
	defense := TrimmedMean{Trim: 0.2}
	fair := c.FairSeries()
	horizon := c.Config.Fair.HorizonDays
	target := c.Config.DowngradeTargets[0]

	fmt.Printf("sweeping the generator against the %q defense (20%% trim)\n", defense.Name())
	fmt.Printf("%8s", "bias\\σ")
	sigmas := []float64{0.1, 0.5, 1.0, 1.5}
	for _, s := range sigmas {
		fmt.Printf(" %8.1f", s)
	}
	fmt.Println()

	worstMP, worstBias, worstSigma := 0.0, 0.0, 0.0
	for _, bias := range []float64{-3.5, -2.5, -1.5, -0.8} {
		fmt.Printf("%8.1f", bias)
		for _, sigma := range sigmas {
			best := 0.0
			// A few random attacks per cell, like Procedure 2's m trials.
			for trial := uint64(0); trial < 3; trial++ {
				gen := core.NewGenerator(trial*1000+uint64(bias*-10)+uint64(sigma*100), core.DefaultRaters(50))
				atk, err := gen.Generate(map[string]core.Profile{target: {
					Bias: bias, StdDev: sigma, Count: 50,
					StartDay: horizon * 0.3, DurationDays: horizon * 0.3,
					Correlation: core.Independent, Quantize: true,
				}}, fair)
				if err != nil {
					return err
				}
				res, err := c.Score(atk, defense)
				if err != nil {
					return err
				}
				if res.Overall > best {
					best = res.Overall
				}
			}
			fmt.Printf(" %8.3f", best)
			if best > worstMP {
				worstMP, worstBias, worstSigma = best, bias, sigma
			}
		}
		fmt.Println()
	}
	fmt.Printf("\nweakest spot: bias %.1f, σ %.1f → MP %.3f\n", worstBias, worstSigma, worstMP)

	// Reference: the same worst-case cell against the paper's P-scheme.
	gen := core.NewGenerator(7, core.DefaultRaters(50))
	atk, err := gen.Generate(map[string]core.Profile{target: {
		Bias: worstBias, StdDev: worstSigma, Count: 50,
		StartDay: horizon * 0.3, DurationDays: horizon * 0.3,
		Correlation: core.Independent, Quantize: true,
	}}, fair)
	if err != nil {
		return err
	}
	res, err := c.Score(atk, agg.NewPScheme())
	if err != nil {
		return err
	}
	fmt.Printf("the paper's P-scheme holds that same attack to MP %.3f\n", res.Overall)
	return nil
}
