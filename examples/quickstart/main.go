// Quickstart: synthesize a product's fair rating history, attack it with
// the unfair-rating generator, and watch the three aggregation schemes
// (simple averaging, beta-function filtering, and the paper's signal-based
// P-scheme) react.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mp"
	"repro/internal/stats"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Fair data: one mean-4 product rated ≈3.5×/day for 150 days.
	cfg := dataset.DefaultFairConfig()
	cfg.Products = 1
	fair, err := dataset.GenerateFair(stats.NewRNG(1), cfg)
	if err != nil {
		return err
	}
	product, err := fair.Product("tv1")
	if err != nil {
		return err
	}
	fmt.Printf("fair history: %d ratings, mean %.2f\n",
		len(product.Ratings), product.Ratings.Mean())

	// 2. Attack it: 50 biased raters downgrade the product with bias −2.5
	// and σ 0.8 over one month.
	gen := core.NewGenerator(2, core.DefaultRaters(50))
	profile := core.Profile{
		Bias:         -2.5,
		StdDev:       0.8,
		Count:        50,
		StartDay:     60,
		DurationDays: 30,
		Correlation:  core.Independent,
		Quantize:     true,
	}
	unfair, err := gen.GenerateProduct(profile, product.Ratings)
	if err != nil {
		return err
	}
	attacked := fair.Clone()
	if err := attacked.InjectUnfair("tv1", unfair); err != nil {
		return err
	}
	fmt.Printf("injected %d unfair ratings (bias %.1f, σ %.1f) on days %.0f–%.0f\n",
		len(unfair), profile.Bias, profile.StdDev,
		profile.StartDay, profile.StartDay+profile.DurationDays)

	// 3. Score the attack under each scheme: manipulation power is how far
	// the per-month aggregate moved (top two months, per Section III).
	schemes := []agg.Scheme{agg.SAScheme{}, agg.NewBFScheme(), agg.NewPScheme()}
	fmt.Printf("\n%-10s %12s %s\n", "scheme", "MP", "monthly aggregates under attack")
	for _, scheme := range schemes {
		base := scheme.Aggregates(fair)
		atk := scheme.Aggregates(attacked)
		res := mp.Compute(base, atk)
		fmt.Printf("%-10s %12.4f %.2f\n", scheme.Name(), res.Overall, atk["tv1"])
	}
	fmt.Println("\nlower MP = stronger defense; the P-scheme should bound the damage.")
	return nil
}
