// Liveserver: runs the rating service in-process, streams an attack into
// it the way a sybil botnet would, and watches the P-scheme's defense
// react in real time — suspicious counts rise, attacker trust collapses,
// and the published score barely moves.
//
// Run with:
//
//	go run ./examples/liveserver
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/agg"
	"repro/internal/dataset"
	"repro/internal/server"
	"repro/internal/stats"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A live service guarding three products with the P-scheme, spread over
	// four storage shards — the production layout, where submissions to
	// different products commit through independent lock stripes. Every call
	// below is identical to the single-shard API; sharding is invisible to
	// clients.
	products := []string{"tv1", "tv2", "tv3"}
	svc, err := server.NewSharded(agg.NewPScheme(), 150, products, 4)
	if err != nil {
		return err
	}
	fmt.Printf("service up: %d products across %d shards\n", len(svc.Products()), svc.Shards())
	cfg := dataset.DefaultFairConfig()
	cfg.Products = len(products)
	history, err := dataset.GenerateFair(stats.NewRNG(4), cfg)
	if err != nil {
		return err
	}
	if err := svc.Load(context.Background(), history); err != nil {
		return err
	}
	before, err := svc.Inspect(context.Background(), "tv1")
	if err != nil {
		return err
	}
	fmt.Printf("before attack: %d ratings, month-3 score %.2f\n", before.Ratings, before.Scores[2])

	// The botnet drip-feeds 50 half-star ratings over two weeks.
	fmt.Println("\nstreaming sybil ratings…")
	for i := 0; i < 50; i++ {
		rater := fmt.Sprintf("bot%02d", i)
		day := 70 + float64(i)*0.3
		if err := svc.Submit(context.Background(), "tv1", rater, 0.5, day); err != nil {
			return err
		}
		if (i+1)%10 == 0 {
			rep, err := svc.Inspect(context.Background(), "tv1")
			if err != nil {
				return err
			}
			fmt.Printf("  after %2d sybil ratings: %2d marked suspicious, month-3 score %.2f, bot00 trust %.2f\n",
				i+1, rep.Suspicious, rep.Scores[2], svc.Trust(context.Background(), "bot00"))
		}
	}

	after, err := svc.Inspect(context.Background(), "tv1")
	if err != nil {
		return err
	}
	saSvc, err := server.New(agg.SAScheme{}, 150, products)
	if err != nil {
		return err
	}
	if err := saSvc.Load(context.Background(), history); err != nil {
		return err
	}
	for i := 0; i < 50; i++ {
		if err := saSvc.Submit(context.Background(), "tv1", fmt.Sprintf("bot%02d", i), 0.5, 70+float64(i)*0.3); err != nil {
			return err
		}
	}
	saScores, err := saSvc.Scores(context.Background(), "tv1")
	if err != nil {
		return err
	}
	fmt.Printf("\nfinal month-3 score: %.2f under the P-scheme vs %.2f with plain averaging (fair ≈ %.2f)\n",
		after.Scores[2], saScores[2], before.Scores[2])
	fmt.Println("the published score under the defense barely moved.")
	return nil
}
