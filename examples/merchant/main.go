// Merchant scenario — the paper's motivating example: a merchant uses 50
// sybil raters to boost its own two products and downgrade two rivals, the
// exact shape of the rating challenge (Section III). The example shows the
// damage under no defense, a majority-rule defense, and the paper's
// signal-based P-scheme, product by product.
//
// Run with:
//
//	go run ./examples/merchant
package main

import (
	"fmt"
	"log"

	"repro/internal/agg"
	"repro/internal/challenge"
	"repro/internal/core"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The default challenge: 9 similar TVs, downgrade tv1/tv2 (the
	// rivals), boost tv3/tv4 (the merchant's own).
	c, err := challenge.New(challenge.DefaultConfig())
	if err != nil {
		return err
	}
	fair := c.FairSeries()
	horizon := c.Config.Fair.HorizonDays

	// The merchant plays it smart (region R3 of the paper's Figure 2):
	// medium bias with large variance on the rivals, and everything the
	// headroom allows on its own products.
	gen := core.NewGenerator(99, core.DefaultRaters(c.Config.BiasedRaters))
	profiles := make(map[string]core.Profile, 4)
	for _, rival := range c.Config.DowngradeTargets {
		profiles[rival] = core.Profile{
			Bias: -2.2, StdDev: 1.2, Count: 50,
			StartDay: horizon * 0.2, DurationDays: horizon * 0.4,
			Correlation: core.Independent, Quantize: true,
		}
	}
	for _, own := range c.Config.BoostTargets {
		profiles[own] = core.Profile{
			Bias: 0.9, StdDev: 0.3, Count: 50,
			StartDay: horizon * 0.2, DurationDays: horizon * 0.4,
			Correlation: core.Independent, Quantize: true,
		}
	}
	atk, err := gen.Generate(profiles, fair)
	if err != nil {
		return err
	}
	fmt.Printf("merchant inserts %d unfair ratings across %d products\n\n",
		atk.TotalRatings(), len(atk.Ratings))

	schemes := []agg.Scheme{agg.SAScheme{}, agg.NewBFScheme(), agg.NewPScheme()}
	fmt.Printf("%-10s %10s   per-product MP (Δ of the two worst months)\n", "scheme", "total MP")
	for _, scheme := range schemes {
		res, err := c.Score(atk, scheme)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %10.4f   ", scheme.Name(), res.Overall)
		for _, id := range c.Config.Targets() {
			fmt.Printf("%s=%.3f ", id, res.Product(id))
		}
		fmt.Println()
	}
	fmt.Println("\ndowngrading the rivals pays better than boosting (the fair mean ≈4")
	fmt.Println("leaves little headroom) — the asymmetry Section V-B reports.")
	return nil
}
