// Optimizer — a walkthrough of Procedure 2 (the paper's Figure 5): the
// parameter controller recursively subdivides the variance–bias plane,
// probes each subarea's center with random attacks, and zooms into the
// strongest region, automatically discovering the best attack parameters
// against the P-scheme defense.
//
// Run with:
//
//	go run ./examples/optimizer
package main

import (
	"fmt"
	"log"

	"repro/internal/agg"
	"repro/internal/challenge"
	"repro/internal/core"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := challenge.DefaultConfig()
	cfg.Fair.Products = 5 // keep the demo quick
	c, err := challenge.New(cfg)
	if err != nil {
		return err
	}
	defense := agg.NewPScheme()
	fair := c.FairSeries()
	horizon := cfg.Fair.HorizonDays
	target := cfg.DowngradeTargets[0]

	// The evaluator behind Procedure 2: one random attack per trial at the
	// subarea center, scored by manipulation power.
	evals := 0
	eval := func(bias, sigma float64, trial int) float64 {
		evals++
		gen := core.NewGenerator(uint64(evals)*2654435761, core.DefaultRaters(cfg.BiasedRaters))
		atk, err := gen.Generate(map[string]core.Profile{target: {
			Bias: bias, StdDev: sigma, Count: cfg.BiasedRaters,
			StartDay: horizon * 0.25, DurationDays: horizon * 0.4,
			Correlation: core.Independent, Quantize: true,
		}}, fair)
		if err != nil {
			return 0
		}
		res, err := c.Score(atk, defense)
		if err != nil {
			return 0
		}
		return res.Overall
	}

	search := core.DefaultSearchConfig()
	search.Trials = 5 // the paper's Figure 5 run uses m = 10
	fmt.Println("Procedure 2: searching the variance-bias plane against the P-scheme")
	fmt.Printf("initial area: bias [%.1f, %.1f], σ [%.1f, %.1f]\n\n",
		search.Initial.BiasLo, search.Initial.BiasHi,
		search.Initial.SigmaLo, search.Initial.SigmaHi)

	result, err := core.SearchOptimalRegion(search, eval)
	if err != nil {
		return err
	}
	for i, step := range result.Steps {
		fmt.Printf("round %d: zoomed to bias [%6.2f, %6.2f] σ [%5.2f, %5.2f]  (best MP %.4f)\n",
			i+1, step.Chosen.BiasLo, step.Chosen.BiasHi,
			step.Chosen.SigmaLo, step.Chosen.SigmaHi, step.BestMP)
	}
	fmt.Printf("\noptimum region center: bias %.2f, σ %.2f — best MP %.4f after %d evaluations\n",
		result.BestBias, result.BestSigma, result.BestMP, evals)
	fmt.Println("(the paper's run converged near bias −2.3, σ 1.6 against its challenge data)")
	return nil
}
