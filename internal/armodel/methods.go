package armodel

import (
	"fmt"

	"repro/internal/stats"
)

// Method selects the AR fitting algorithm. The paper's detector uses the
// covariance method; the autocorrelation (Levinson–Durbin) and Burg methods
// from the same reference (Hayes, Statistical DSP) are provided for
// ablation — all three agree on strongly-modelled signals and differ mainly
// in bias/variance on short windows.
type Method int

// Fitting methods.
const (
	// Covariance is the paper's method: exact least squares over the
	// window, no windowing bias, but stability is not guaranteed.
	Covariance Method = iota + 1
	// Autocorrelation solves the Yule–Walker equations with
	// Levinson–Durbin recursion; always stable, slightly biased.
	Autocorrelation
	// Burg minimizes forward+backward prediction error under a lattice
	// constraint; stable and accurate on short windows.
	Burg
)

// String returns the method name.
func (m Method) String() string {
	switch m {
	case Covariance:
		return "covariance"
	case Autocorrelation:
		return "autocorrelation"
	case Burg:
		return "burg"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// FitMethod fits an AR(order) model to x with the chosen method. See Fit
// for the Covariance behavior; all methods remove the mean first and
// normalize RelErr identically.
func FitMethod(x []float64, order int, method Method) (Model, error) {
	switch method {
	case Covariance, 0:
		return Fit(x, order)
	case Autocorrelation:
		return fitAutocorrelation(x, order)
	case Burg:
		return fitBurg(x, order)
	default:
		return Model{}, fmt.Errorf("%w: unknown method %d", ErrBadOrder, int(method))
	}
}

// fitAutocorrelation solves the Yule–Walker normal equations via the
// Levinson–Durbin recursion.
func fitAutocorrelation(x []float64, order int) (Model, error) {
	if order <= 0 {
		return Model{}, fmt.Errorf("%w: %d", ErrBadOrder, order)
	}
	n := len(x)
	if n < 2*order+1 {
		return Model{}, fmt.Errorf("%w: n=%d, order=%d", ErrTooShort, n, order)
	}
	mean := stats.Mean(x)
	xc := make([]float64, n)
	for i, v := range x {
		xc[i] = v - mean
	}
	variance := stats.Variance(xc)
	if degenerateVariance(variance, mean) {
		return Model{Coeffs: make([]float64, order), Err: 0, RelErr: 0}, nil
	}

	// Biased autocorrelation estimates r(0..order).
	r := make([]float64, order+1)
	for lag := 0; lag <= order; lag++ {
		var s float64
		for t := lag; t < n; t++ {
			s += xc[t] * xc[t-lag]
		}
		r[lag] = s / float64(n)
	}
	//lint:ignore floateq exact-zero division guard for -acc/e below; near-constant windows already took the degenerateVariance fast path
	if r[0] == 0 {
		return Model{Coeffs: make([]float64, order), Err: 0, RelErr: 0}, nil
	}

	// Levinson–Durbin recursion. a holds the current prediction
	// coefficients in the convention x(n) + Σ a_k x(n−k) = e(n).
	a := make([]float64, order+1)
	e := r[0]
	for k := 1; k <= order; k++ {
		acc := r[k]
		for j := 1; j < k; j++ {
			acc += a[j] * r[k-j]
		}
		//lint:ignore floateq exact-zero division guard: only e exactly 0 makes -acc/e non-finite
		if e == 0 {
			break
		}
		reflection := -acc / e
		a[k] = reflection
		for j := 1; j <= k/2; j++ {
			a[j], a[k-j] = a[j]+reflection*a[k-j], a[k-j]+reflection*a[j]
		}
		e *= 1 - reflection*reflection
	}
	if e < 0 {
		e = 0
	}
	coeffs := append([]float64(nil), a[1:]...)
	// e is the per-sample prediction error power; scale to the covariance
	// method's residual-sum convention over n−order samples.
	rss := e * float64(n-order)
	rel := e / variance
	if rel > 1 {
		rel = 1
	}
	return Model{Coeffs: coeffs, Err: rss, RelErr: rel}, nil
}

// fitBurg implements Burg's lattice method.
func fitBurg(x []float64, order int) (Model, error) {
	if order <= 0 {
		return Model{}, fmt.Errorf("%w: %d", ErrBadOrder, order)
	}
	n := len(x)
	if n < 2*order+1 {
		return Model{}, fmt.Errorf("%w: n=%d, order=%d", ErrTooShort, n, order)
	}
	mean := stats.Mean(x)
	xc := make([]float64, n)
	for i, v := range x {
		xc[i] = v - mean
	}
	variance := stats.Variance(xc)
	if degenerateVariance(variance, mean) {
		return Model{Coeffs: make([]float64, order), Err: 0, RelErr: 0}, nil
	}

	f := append([]float64(nil), xc...) // forward errors
	b := append([]float64(nil), xc...) // backward errors
	a := make([]float64, order+1)
	e := variance
	for k := 1; k <= order; k++ {
		// Reflection coefficient from forward/backward error products.
		var num, den float64
		for t := k; t < n; t++ {
			num += f[t] * b[t-1]
			den += f[t]*f[t] + b[t-1]*b[t-1]
		}
		//lint:ignore floateq exact-zero division guard: only den exactly 0 makes the reflection coefficient non-finite
		if den == 0 {
			break
		}
		reflection := -2 * num / den
		a[k] = reflection
		for j := 1; j <= k/2; j++ {
			a[j], a[k-j] = a[j]+reflection*a[k-j], a[k-j]+reflection*a[j]
		}
		// Update the error sequences (in place, back to front for b).
		for t := n - 1; t >= k; t-- {
			ft := f[t]
			f[t] = ft + reflection*b[t-1]
			b[t] = b[t-1] + reflection*ft
		}
		e *= 1 - reflection*reflection
	}
	if e < 0 {
		e = 0
	}
	coeffs := append([]float64(nil), a[1:]...)
	rss := e * float64(n-order)
	rel := e / variance
	if rel > 1 {
		rel = 1
	}
	return Model{Coeffs: coeffs, Err: rss, RelErr: rel}, nil
}
