// Package armodel fits autoregressive (AR) signal models using the
// covariance method (Hayes, "Statistical Digital Signal Processing and
// Modeling") and exposes the model error the paper's signal-model-change
// detector thresholds: honest ratings behave like white noise (high,
// irreducible model error), while collaborative unfair ratings introduce a
// predictable "signal" component that drives the model error down.
package armodel

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/stats"
)

// Errors returned by the AR fitting routines.
var (
	// ErrTooShort indicates a window shorter than needed for the order.
	ErrTooShort = errors.New("armodel: window too short for order")
	// ErrBadOrder indicates a non-positive model order.
	ErrBadOrder = errors.New("armodel: bad order")
	// ErrSingular indicates numerically singular normal equations.
	ErrSingular = errors.New("armodel: singular normal equations")
)

// Model is a fitted AR(p) model: x(n) ≈ −Σ a_k·x(n−k) + e(n).
type Model struct {
	// Coeffs holds a_1 … a_p.
	Coeffs []float64
	// Err is the minimized residual sum of squares Σ e(n)².
	Err float64
	// RelErr is Err normalized per sample and divided by the signal's
	// variance: ≈1 for unpredictable white noise, →0 for a strong signal.
	RelErr float64
}

// degenerateVariance reports whether the mean-removed window is constant
// for fitting purposes. An exact ==0 test misses truly constant windows:
// summing n identical values rounds, so the subtracted mean differs from
// the samples by an ulp and the centered variance comes out tiny but
// nonzero — which previously sent a constant window into an
// ill-conditioned recursion instead of the constant-window fast path. The
// threshold is relative to the DC level: ~(1e-12·mean)² is far below any
// real rating variation but far above accumulated rounding noise.
func degenerateVariance(variance, mean float64) bool {
	return variance <= 1e-24*(1+mean*mean)
}

// Fit fits an AR(order) model to x with the covariance method. The window
// must contain at least 2·order+1 samples. The mean is removed before
// fitting (ratings have a large DC component that is not "signal").
func Fit(x []float64, order int) (Model, error) {
	if order <= 0 {
		return Model{}, fmt.Errorf("%w: %d", ErrBadOrder, order)
	}
	n := len(x)
	if n < 2*order+1 {
		return Model{}, fmt.Errorf("%w: n=%d, order=%d", ErrTooShort, n, order)
	}

	mean := stats.Mean(x)
	xc := make([]float64, n)
	for i, v := range x {
		xc[i] = v - mean
	}
	variance := stats.Variance(xc)
	if degenerateVariance(variance, mean) {
		// Constant window: perfectly predictable, zero residual.
		return Model{Coeffs: make([]float64, order), Err: 0, RelErr: 0}, nil
	}

	// Covariance sums c(j,k) = Σ_{t=order}^{n-1} x(t−j)·x(t−k).
	c := func(j, k int) float64 {
		var s float64
		for t := order; t < n; t++ {
			s += xc[t-j] * xc[t-k]
		}
		return s
	}
	// Normal equations: Σ_k a_k·c(j,k) = −c(j,0), j = 1…order.
	a := make([][]float64, order)
	b := make([]float64, order)
	for j := 1; j <= order; j++ {
		row := make([]float64, order)
		for k := 1; k <= order; k++ {
			row[k-1] = c(j, k)
		}
		a[j-1] = row
		b[j-1] = -c(j, 0)
	}
	coeffs, err := solveLinear(a, b)
	if err != nil {
		return Model{}, err
	}

	// Minimum error: E = c(0,0) + Σ_k a_k·c(0,k).
	residual := c(0, 0)
	for k := 1; k <= order; k++ {
		residual += coeffs[k-1] * c(0, k)
	}
	if residual < 0 {
		residual = 0 // numerical round-off
	}
	rel := residual / float64(n-order) / variance
	if rel > 1 {
		rel = 1
	}
	return Model{Coeffs: coeffs, Err: residual, RelErr: rel}, nil
}

// solveLinear solves a·x = b by Gaussian elimination with partial pivoting.
// It mutates its arguments.
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(b)
	for col := 0; col < n; col++ {
		// Pivot: largest |a[row][col]| for row ≥ col.
		pivot := col
		best := math.Abs(a[col][col])
		for row := col + 1; row < n; row++ {
			if v := math.Abs(a[row][col]); v > best {
				pivot, best = row, v
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		for row := col + 1; row < n; row++ {
			f := a[row][col] / a[col][col]
			//lint:ignore floateq exactly-zero multiplier row-skip is an optimization; any nonzero f, however tiny, must still be eliminated
			if f == 0 {
				continue
			}
			for k := col; k < n; k++ {
				a[row][k] -= f * a[col][k]
			}
			b[row] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for row := n - 1; row >= 0; row-- {
		sum := b[row]
		for k := row + 1; k < n; k++ {
			sum -= a[row][k] * x[k]
		}
		x[row] = sum / a[row][row]
	}
	return x, nil
}

// Predict returns the one-step AR prediction for position t (t ≥ order)
// given the zero-mean history xc. It is exported for diagnostics and tests.
func (m Model) Predict(xc []float64, t int) float64 {
	var p float64
	for k := 1; k <= len(m.Coeffs); k++ {
		p -= m.Coeffs[k-1] * xc[t-k]
	}
	return p
}
