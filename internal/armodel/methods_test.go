package armodel

import (
	"errors"
	"math"
	"testing"

	"repro/internal/stats"
)

func allMethods() []Method {
	return []Method{Covariance, Autocorrelation, Burg}
}

func TestMethodString(t *testing.T) {
	if Covariance.String() != "covariance" ||
		Autocorrelation.String() != "autocorrelation" ||
		Burg.String() != "burg" {
		t.Error("method names wrong")
	}
	if Method(9).String() != "method(9)" {
		t.Error("unknown method name wrong")
	}
}

func TestFitMethodValidation(t *testing.T) {
	x := make([]float64, 50)
	if _, err := FitMethod(x, 2, Method(42)); err == nil {
		t.Error("unknown method accepted")
	}
	for _, m := range allMethods() {
		if _, err := FitMethod([]float64{1, 2, 3}, 2, m); !errors.Is(err, ErrTooShort) {
			t.Errorf("%v: short window error = %v", m, err)
		}
		if _, err := FitMethod(x, 0, m); !errors.Is(err, ErrBadOrder) {
			t.Errorf("%v: order 0 error = %v", m, err)
		}
	}
}

func TestFitMethodZeroSelectsCovariance(t *testing.T) {
	x := make([]float64, 60)
	for i := range x {
		x[i] = math.Sin(0.3 * float64(i))
	}
	cov, err := Fit(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	def, err := FitMethod(x, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cov.Err != def.Err {
		t.Error("method 0 did not default to covariance")
	}
}

func TestAllMethodsAgreeOnAR1(t *testing.T) {
	// Long AR(1) series: all three estimators must converge to the truth.
	rng := stats.NewRNG(15)
	n := 4000
	x := make([]float64, n)
	for i := 1; i < n; i++ {
		x[i] = 0.7*x[i-1] + rng.NormFloat64()
	}
	for _, m := range allMethods() {
		model, err := FitMethod(x, 1, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if math.Abs(model.Coeffs[0]-(-0.7)) > 0.05 {
			t.Errorf("%v: a1 = %v, want ≈ -0.7", m, model.Coeffs[0])
		}
		// RelErr ≈ 1 − 0.49 = 0.51.
		if math.Abs(model.RelErr-0.51) > 0.07 {
			t.Errorf("%v: RelErr = %v, want ≈ 0.51", m, model.RelErr)
		}
	}
}

func TestAllMethodsLowErrorOnSinusoid(t *testing.T) {
	n := 80
	x := make([]float64, n)
	for i := range x {
		x[i] = 4 + 1.5*math.Sin(0.45*float64(i))
	}
	for _, m := range allMethods() {
		model, err := FitMethod(x, 2, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		// The autocorrelation method's windowing bias leaves more
		// residual than covariance/Burg; all must still be clearly below
		// the white-noise level.
		if model.RelErr > 0.2 {
			t.Errorf("%v: sinusoid RelErr = %v, want small", m, model.RelErr)
		}
	}
}

func TestAllMethodsHighErrorOnNoise(t *testing.T) {
	rng := stats.NewRNG(16)
	n := 300
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for _, m := range allMethods() {
		model, err := FitMethod(x, 4, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if model.RelErr < 0.8 {
			t.Errorf("%v: white noise RelErr = %v, want near 1", m, model.RelErr)
		}
	}
}

func TestAllMethodsConstantWindow(t *testing.T) {
	x := []float64{4, 4, 4, 4, 4, 4, 4, 4, 4, 4}
	for _, m := range allMethods() {
		model, err := FitMethod(x, 2, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if model.Err != 0 || model.RelErr != 0 {
			t.Errorf("%v: constant window Err=%v RelErr=%v", m, model.Err, model.RelErr)
		}
	}
}

func TestStableMethodsReflectionBound(t *testing.T) {
	// Autocorrelation and Burg guarantee |poles| < 1; spot-check that the
	// fitted models' RelErr stays within [0,1] on rough data.
	rng := stats.NewRNG(17)
	for trial := 0; trial < 20; trial++ {
		n := 25 + rng.IntN(60)
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(rng.IntN(11)) / 2
		}
		for _, m := range []Method{Autocorrelation, Burg} {
			model, err := FitMethod(x, 4, m)
			if err != nil {
				t.Fatalf("%v: %v", m, err)
			}
			if model.RelErr < 0 || model.RelErr > 1 {
				t.Fatalf("%v: RelErr = %v", m, model.RelErr)
			}
		}
	}
}
