package armodel

import (
	"errors"
	"math"
	"testing"

	"repro/internal/stats"
)

func TestFitValidation(t *testing.T) {
	if _, err := Fit([]float64{1, 2, 3}, 0); !errors.Is(err, ErrBadOrder) {
		t.Errorf("order 0 error = %v", err)
	}
	if _, err := Fit([]float64{1, 2, 3}, 2); !errors.Is(err, ErrTooShort) {
		t.Errorf("short window error = %v", err)
	}
}

func TestFitSinusoidLowError(t *testing.T) {
	// A pure sinusoid is perfectly predictable by an AR(2) model.
	n := 60
	x := make([]float64, n)
	for i := range x {
		x[i] = 4 + 1.5*math.Sin(0.4*float64(i))
	}
	m, err := Fit(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.RelErr > 0.01 {
		t.Errorf("sinusoid RelErr = %v, want ≈0", m.RelErr)
	}
	// AR(2) for sin(ω·n): a1 = −2cos(ω), a2 = 1. (Mean removal of a
	// partial period leaves a small DC residue, hence the loose tolerance.)
	if !close(m.Coeffs[0], -2*math.Cos(0.4), 0.05) || !close(m.Coeffs[1], 1, 0.05) {
		t.Errorf("coeffs = %v, want [−2cos0.4, 1]", m.Coeffs)
	}
}

func TestFitWhiteNoiseHighError(t *testing.T) {
	rng := stats.NewRNG(17)
	n := 200
	x := make([]float64, n)
	for i := range x {
		x[i] = 4 + rng.NormFloat64()*0.7
	}
	m, err := Fit(x, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.RelErr < 0.7 {
		t.Errorf("white noise RelErr = %v, want near 1", m.RelErr)
	}
}

func TestFitAR1Recovery(t *testing.T) {
	// Generate x(n) = 0.8·x(n−1) + e(n); covariance fit should recover
	// a1 ≈ −0.8 (our sign convention: x(n) + a1·x(n−1) = e(n)).
	rng := stats.NewRNG(5)
	n := 2000
	x := make([]float64, n)
	for i := 1; i < n; i++ {
		x[i] = 0.8*x[i-1] + rng.NormFloat64()
	}
	m, err := Fit(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !close(m.Coeffs[0], -0.8, 0.05) {
		t.Errorf("a1 = %v, want ≈−0.8", m.Coeffs[0])
	}
	// Residual power should be near the innovation variance (1), so
	// RelErr ≈ 1/Var(x) = 1−0.64 = 0.36.
	if !close(m.RelErr, 0.36, 0.08) {
		t.Errorf("RelErr = %v, want ≈0.36", m.RelErr)
	}
}

func TestFitConstantWindow(t *testing.T) {
	x := []float64{4, 4, 4, 4, 4, 4, 4, 4}
	m, err := Fit(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Err != 0 || m.RelErr != 0 {
		t.Errorf("constant window: Err=%v RelErr=%v, want 0", m.Err, m.RelErr)
	}
}

func TestFitRelErrBounds(t *testing.T) {
	rng := stats.NewRNG(23)
	for trial := 0; trial < 30; trial++ {
		n := 20 + rng.IntN(80)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64() * 5
		}
		m, err := Fit(x, 3)
		if err != nil {
			continue // singular is acceptable for adversarial data
		}
		if m.RelErr < 0 || m.RelErr > 1 {
			t.Fatalf("RelErr = %v out of [0,1]", m.RelErr)
		}
		if m.Err < 0 {
			t.Fatalf("Err = %v negative", m.Err)
		}
	}
}

func TestSolveLinear(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := solveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !close(x[0], 1, 1e-10) || !close(x[1], 3, 1e-10) {
		t.Errorf("solution = %v, want [1 3]", x)
	}
}

func TestSolveLinearNeedsPivoting(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	a := [][]float64{{0, 1}, {1, 0}}
	b := []float64{2, 3}
	x, err := solveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !close(x[0], 3, 1e-10) || !close(x[1], 2, 1e-10) {
		t.Errorf("solution = %v, want [3 2]", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	b := []float64{1, 2}
	if _, err := solveLinear(a, b); !errors.Is(err, ErrSingular) {
		t.Errorf("singular system error = %v", err)
	}
}

func TestPredictMatchesResidual(t *testing.T) {
	n := 50
	x := make([]float64, n)
	for i := range x {
		x[i] = 4 + math.Sin(0.5*float64(i))
	}
	m, err := Fit(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	mean := stats.Mean(x)
	xc := make([]float64, n)
	for i, v := range x {
		xc[i] = v - mean
	}
	var rss float64
	for tIdx := 2; tIdx < n; tIdx++ {
		e := xc[tIdx] - m.Predict(xc, tIdx)
		rss += e * e
	}
	if !close(rss, m.Err, 1e-6*(1+m.Err)) {
		t.Errorf("recomputed RSS = %v, Fit reported %v", rss, m.Err)
	}
}

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
