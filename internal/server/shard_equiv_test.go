package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"reflect"
	"testing"

	"repro/internal/agg"
	"repro/internal/faultfs"
	"repro/internal/stats"
	"repro/internal/wal"
)

// The sharded service must be observation-equivalent to the single-shard
// one: sharding is a storage layout, not a semantics change. These tests
// drive randomized streams — out-of-order days, duplicate raters, invalid
// submissions — into services differing only in shard count and require
// bit-exact agreement on every public read, through crashes included.

var equivProducts = func() []string {
	out := make([]string, 12)
	for i := range out {
		out[i] = fmt.Sprintf("prod-%02d", i)
	}
	return out
}()

// equivOp is one deterministic pseudo-random operation of the stream:
// mostly valid submissions, with invalid and duplicate ones mixed in.
func equivOp(rng *rand.Rand, i int) (product, rater string, value, day float64) {
	product = equivProducts[rng.IntN(len(equivProducts))]
	rater = fmt.Sprintf("r%03d", i)
	value = float64(rng.IntN(10)+1) * 0.5
	day = rng.Float64() * 90 // out-of-order arrival by construction
	switch i % 23 {
	case 7:
		rater = fmt.Sprintf("r%03d", i-2) // frequent duplicate-rater attempts
	case 11:
		value = 9 // out of range
	case 13:
		day = -3 // below range
	case 17:
		product = "prod-unregistered"
	case 19:
		rater = ""
	}
	return product, rater, value, day
}

// requireSameView asserts bit-exact agreement of every public read between
// the two services.
func requireSameView(t *testing.T, label string, a, b *Service) {
	t.Helper()
	ctx := context.Background()
	for _, p := range equivProducts {
		sa, errA := a.Scores(ctx, p)
		sb, errB := b.Scores(ctx, p)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%s: Scores(%s) errors diverge: %v vs %v", label, p, errA, errB)
		}
		if len(sa) != len(sb) {
			t.Fatalf("%s: Scores(%s) lengths diverge: %d vs %d", label, p, len(sa), len(sb))
		}
		for i := range sa {
			if math.Float64bits(sa[i]) != math.Float64bits(sb[i]) {
				t.Fatalf("%s: Scores(%s)[%d] = %v vs %v (bits %x vs %x)",
					label, p, i, sa[i], sb[i], math.Float64bits(sa[i]), math.Float64bits(sb[i]))
			}
		}
		ra, errA := a.Inspect(ctx, p)
		rb, errB := b.Inspect(ctx, p)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%s: Inspect(%s) errors diverge: %v vs %v", label, p, errA, errB)
		}
		// Scores may legitimately hold NaN (empty periods), so the report is
		// compared field-wise with bitwise float equality, not DeepEqual.
		if ra.Ratings != rb.Ratings || ra.Suspicious != rb.Suspicious ||
			ra.HasSuspicious != rb.HasSuspicious || ra.Stale != rb.Stale ||
			len(ra.Scores) != len(rb.Scores) {
			t.Fatalf("%s: Inspect(%s) diverges:\n  %+v\n  %+v", label, p, ra, rb)
		}
		for i := range ra.Scores {
			if math.Float64bits(ra.Scores[i]) != math.Float64bits(rb.Scores[i]) {
				t.Fatalf("%s: Inspect(%s).Scores[%d] = %v vs %v", label, p, i, ra.Scores[i], rb.Scores[i])
			}
		}
	}
	for i := 0; i < 600; i += 17 {
		rater := fmt.Sprintf("r%03d", i)
		ta, tb := a.Trust(ctx, rater), b.Trust(ctx, rater)
		if math.Float64bits(ta) != math.Float64bits(tb) {
			t.Fatalf("%s: Trust(%s) = %v vs %v", label, rater, ta, tb)
		}
	}
}

// TestShardedMatchesSingleShard is the core equivalence property: the same
// randomized stream fed to a 1-shard and an 8-shard durable service yields
// bit-exact Scores, Inspect, and Trust at every probe, every submission
// error matches in kind, and a clean restart recovers identical totals.
func TestShardedMatchesSingleShard(t *testing.T) {
	for _, tc := range []struct {
		name          string
		snapshotEvery int
	}{
		// With SnapshotEvery=0 nothing ever compacts, so on reopen both
		// layouts replay every rating from the log and the reports must be
		// literally identical. With snapshots enabled the snapshot/replay
		// split legitimately differs per layout (each shard snapshots on its
		// own count) and only the totals are comparable.
		{"no-snapshots", 0},
		{"snapshot-every-50", 50},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const ops = 600
			fs1, fs8 := faultfs.New(), faultfs.New()
			open := func(fs *faultfs.FS, shards int) *Service {
				t.Helper()
				svc, _, err := OpenWAL(agg.NewPScheme(), 90, equivProducts, WALOptions{
					FS: fs, Shards: shards, SyncEvery: 1, SnapshotEvery: tc.snapshotEvery,
				})
				if err != nil {
					t.Fatal(err)
				}
				return svc
			}
			s1, s8 := open(fs1, 1), open(fs8, 8)
			if got := s8.Shards(); got != 8 {
				t.Fatalf("Shards() = %d, want 8", got)
			}

			ctx := context.Background()
			rng := stats.NewRNG(41)
			accepted := 0
			for i := 0; i < ops; i++ {
				product, rater, value, day := equivOp(rng, i)
				err1 := s1.Submit(ctx, product, rater, value, day)
				err8 := s8.Submit(ctx, product, rater, value, day)
				if (err1 == nil) != (err8 == nil) ||
					!errors.Is(err8, categorize(err1)) && err1 != nil {
					t.Fatalf("op %d (%s/%s v=%v d=%v): errors diverge: %v vs %v",
						i, product, rater, value, day, err1, err8)
				}
				if err1 == nil {
					accepted++
				}
				if i%150 == 149 {
					requireSameView(t, fmt.Sprintf("op %d", i), s1, s8)
				}
			}
			requireSameView(t, "final", s1, s8)
			if !reflect.DeepEqual(s1.dataView(), s8.dataView()) {
				t.Fatal("combined datasets diverge between 1 and 8 shards")
			}

			if err := s1.Close(); err != nil {
				t.Fatal(err)
			}
			if err := s8.Close(); err != nil {
				t.Fatal(err)
			}
			r1Svc, rep1, err := OpenWAL(agg.NewPScheme(), 90, equivProducts, WALOptions{FS: fs1, Shards: 1})
			if err != nil {
				t.Fatal(err)
			}
			defer r1Svc.Close()
			r8Svc, rep8, err := OpenWAL(agg.NewPScheme(), 90, equivProducts, WALOptions{FS: fs8, Shards: 8})
			if err != nil {
				t.Fatal(err)
			}
			defer r8Svc.Close()
			tot1 := rep1.SnapshotRatings + rep1.ReplayedRatings
			tot8 := rep8.SnapshotRatings + rep8.ReplayedRatings
			if tot1 != accepted || tot8 != accepted {
				t.Fatalf("recovered totals %d (1-shard) / %d (8-shard), want %d accepted", tot1, tot8, accepted)
			}
			if rep1.SkippedRecords != 0 || rep8.SkippedRecords != 0 ||
				rep1.DuplicateRecords != rep8.DuplicateRecords {
				t.Fatalf("recovery reports diverge: %+v vs %+v", rep1, rep8)
			}
			if tc.snapshotEvery == 0 && !reflect.DeepEqual(rep1, rep8) {
				t.Fatalf("without snapshots the reports must be identical: %+v vs %+v", rep1, rep8)
			}
			requireSameView(t, "recovered", r1Svc, r8Svc)
			if !reflect.DeepEqual(r1Svc.dataView(), r8Svc.dataView()) {
				t.Fatal("recovered combined datasets diverge between 1 and 8 shards")
			}
		})
	}
}

// categorize maps a submission error to its sentinel for errors.Is
// comparison across services.
func categorize(err error) error {
	for _, sentinel := range []error{ErrBadRating, ErrDuplicateRating, ErrUnknownProduct, ErrUnavailable} {
		if errors.Is(err, sentinel) {
			return sentinel
		}
	}
	return err
}

// readShardSurvivors reads the ratings that survived a crash from a sharded
// WAL image: the manifest names the layout, each shard contributes its
// snapshot and log tail. (A local helper — internal/chaos has richer audit
// machinery, but importing it here would cycle.)
func readShardSurvivors(t *testing.T, fsys wal.FS, shards int) []wal.Record {
	t.Helper()
	m, err := wal.ReadManifest(fsys)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil || m.Shards != shards {
		t.Fatalf("manifest %+v, want %d shards", m, shards)
	}
	var out []wal.Record
	for i := 0; i < shards; i++ {
		sub, err := wal.Sub(fsys, wal.ShardDir(i))
		if err != nil {
			t.Fatal(err)
		}
		w, rec, err := wal.Open(sub, wal.Options{})
		if err != nil {
			t.Fatalf("open shard %d of crash image: %v", i, err)
		}
		if rec.Snapshot != nil {
			for _, p := range rec.Snapshot.Products {
				for _, r := range p.Ratings {
					out = append(out, wal.Record{Product: p.ID, Rater: r.Rater, Value: r.Value, Day: r.Day})
				}
			}
		}
		out = append(out, rec.Records...)
		w.Close()
	}
	return out
}

// TestShardedCrashRecoveryMatchesReplay kills a 5-shard service at
// arbitrary write budgets — the cut lands mid-record, mid-fsync, anywhere,
// and independently per shard stream — and requires recovery to equal a
// clean in-memory replay of exactly the records that survived on disk.
func TestShardedCrashRecoveryMatchesReplay(t *testing.T) {
	const shards = 5
	for _, budget := range []int64{150, 600, 1500, 4000, 12000} {
		t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
			fs := faultfs.New()
			svc, _, err := OpenWAL(agg.NewPScheme(), 90, equivProducts, WALOptions{
				FS: fs, Shards: shards, SyncEvery: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			fs.LimitWrites(budget)
			ctx := context.Background()
			rng := stats.NewRNG(97)
			for i := 0; i < 400; i++ {
				product, rater, value, day := equivOp(rng, i)
				if err := svc.Submit(ctx, product, rater, value, day); errors.Is(err, ErrUnavailable) {
					break // the disk died: this is the crash point
				}
			}
			img := fs.CrashImage()
			svc.Close()

			recovered, rep, err := OpenWAL(agg.NewPScheme(), 90, equivProducts, WALOptions{
				FS: img, Shards: shards,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer recovered.Close()

			survivors := readShardSurvivors(t, img.Clone(), shards)
			if got := rep.SnapshotRatings + rep.ReplayedRatings; got != len(survivors) {
				t.Fatalf("recovery applied %d ratings, crash image holds %d (report %+v)", got, len(survivors), rep)
			}
			ref, err := New(agg.NewPScheme(), 90, equivProducts)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range survivors {
				if err := ref.Submit(ctx, r.Product, r.Rater, r.Value, r.Day); err != nil {
					t.Fatalf("survivor %+v rejected by clean replay: %v", r, err)
				}
			}
			if !reflect.DeepEqual(recovered.dataView(), ref.dataView()) {
				t.Fatal("recovered dataset diverges from clean replay of the surviving records")
			}
			requireSameView(t, "crash-recovered", recovered, ref)
		})
	}
}
