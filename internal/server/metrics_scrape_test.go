package server

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/agg"
	"repro/internal/obs"
)

// TestMetricsScrapeDuringSubmits hammers the handler with concurrent
// submits while scraping /metrics from other goroutines. Under -race this
// pins the core claim of the metrics plane: recording is lock-free and
// scraping never blocks (or races with) the request path. Afterwards the
// counters must account for every request exactly once.
func TestMetricsScrapeDuringSubmits(t *testing.T) {
	svc, err := New(agg.SAScheme{}, 90, []string{"tv1", "tv2"})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	svc.SetLogger(log.New(io.Discard, "", 0))
	reg := obs.NewRegistry()
	svc.EnableMetrics(reg)
	h := svc.Handler()

	const (
		submitters = 4
		perG       = 50
	)
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				body := fmt.Sprintf(`{"product":"tv1","rater":"g%d-r%d","value":4,"day":%d}`, g, i, i%30)
				req := httptest.NewRequest("POST", "/ratings", strings.NewReader(body))
				rw := httptest.NewRecorder()
				h.ServeHTTP(rw, req)
				if rw.Code != http.StatusCreated {
					t.Errorf("submit g%d/%d = %d: %s", g, i, rw.Code, rw.Body.String())
					return
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				rw := httptest.NewRecorder()
				h.ServeHTTP(rw, httptest.NewRequest("GET", "/metrics", nil))
				if rw.Code != http.StatusOK {
					t.Errorf("concurrent scrape = %d", rw.Code)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/metrics", nil))
	scrape := rw.Body.String()

	want := fmt.Sprintf(`http_requests_total{route="submit",class="2xx"} %d`, submitters*perG)
	if !strings.Contains(scrape, want) {
		t.Errorf("scrape missing %q", want)
	}
	// Every submit landed on some store shard; the per-shard counters must
	// sum to the total with nothing lost or double-counted.
	total := 0
	for _, line := range strings.Split(scrape, "\n") {
		if !strings.HasPrefix(line, `store_submit_total{shard="`) {
			continue
		}
		n, err := strconv.Atoi(line[strings.LastIndexByte(line, ' ')+1:])
		if err != nil {
			t.Fatalf("unparseable shard counter %q: %v", line, err)
		}
		total += n
	}
	if total != submitters*perG {
		t.Errorf("store shard counters sum to %d, want %d", total, submitters*perG)
	}
}
