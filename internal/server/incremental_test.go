package server

import (
	"context"
	"fmt"
	"math"
	"testing"

	"repro/internal/agg"
	"repro/internal/dataset"
	"repro/internal/stats"
)

// The service's epoch-suffix invalidation must be invisible to clients:
// interleaved Submits with reads forced in between (so the engine resumes
// from checkpoints many times, including after out-of-order days that
// invalidate mid-history epochs) must end bit-exact with a from-scratch
// PScheme.Evaluate over the final dataset.
func TestIncrementalServerMatchesBatchEvaluate(t *testing.T) {
	const (
		horizon  = 150.0
		nSubmits = 400
	)
	products := []string{"tv1", "tv2", "tv3"}
	svc, err := New(agg.NewPScheme(), horizon, products)
	if err != nil {
		t.Fatal(err)
	}

	// Mirror dataset: the same ratings applied in the same order, so the
	// reference evaluation sees byte-identical series (Merge keeps
	// same-day ratings in insertion order).
	mirror := &dataset.Dataset{HorizonDays: horizon}
	for _, id := range products {
		mirror.Products = append(mirror.Products, dataset.Product{ID: id})
	}

	rng := stats.NewRNG(17)
	var raters []string
	for i := 0; i < nSubmits; i++ {
		product := products[rng.IntN(len(products))]
		rater := fmt.Sprintf("r%d", i)
		day := rng.Float64() * horizon // random order: constant mid-history invalidation
		value := dataset.QuantizeHalfStar(rng.Float64() * 5)
		if err := svc.Submit(context.Background(), product, rater, value, day); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		p, err := mirror.Product(product)
		if err != nil {
			t.Fatal(err)
		}
		p.Ratings = p.Ratings.Merge(dataset.Series{{Day: day, Value: value, Rater: rater}})
		raters = append(raters, rater)

		// Force a recompute mid-stream every so often, so the final state
		// is the product of many incremental resumes, not one.
		if i%25 == 24 {
			if _, err := svc.Scores(context.Background(), products[0]); err != nil {
				t.Fatal(err)
			}
		}
	}

	ref := agg.NewPScheme().Evaluate(mirror)
	for _, id := range products {
		got, err := svc.Scores(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		want := ref.Table[id]
		if len(got) != len(want) {
			t.Fatalf("product %s: %d periods, want %d", id, len(got), len(want))
		}
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Errorf("product %s period %d: incremental %v, batch %v", id, i, got[i], want[i])
			}
		}
		rep, err := svc.Inspect(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		wantSus := 0
		for _, m := range ref.Suspicious[id] {
			if m {
				wantSus++
			}
		}
		if rep.Suspicious != wantSus {
			t.Errorf("product %s: %d suspicious marks, batch says %d", id, rep.Suspicious, wantSus)
		}
	}
	for _, rater := range raters {
		if got, want := svc.Trust(context.Background(), rater), ref.Trust.Trust(rater); math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("trust(%s): incremental %v, batch %v", rater, got, want)
		}
	}
}

// A Submit on an already-evaluated early epoch must invalidate the whole
// suffix — the cheap path may only be taken when history after the
// submitted day is genuinely unchanged.
func TestOutOfOrderSubmitInvalidatesSuffix(t *testing.T) {
	svc, err := New(agg.NewPScheme(), 150, []string{"tv1"})
	if err != nil {
		t.Fatal(err)
	}
	mirror := &dataset.Dataset{HorizonDays: 150, Products: []dataset.Product{{ID: "tv1"}}}
	rng := stats.NewRNG(5)
	add := func(rater string, day, value float64) {
		t.Helper()
		if err := svc.Submit(context.Background(), "tv1", rater, value, day); err != nil {
			t.Fatal(err)
		}
		p, _ := mirror.Product("tv1")
		p.Ratings = p.Ratings.Merge(dataset.Series{{Day: day, Value: value, Rater: rater}})
	}
	for i := 0; i < 120; i++ {
		add(fmt.Sprintf("h%d", i), rng.Float64()*150, dataset.QuantizeHalfStar(3.5+rng.NormFloat64()*0.6))
	}
	if _, err := svc.Scores(context.Background(), "tv1"); err != nil { // checkpoint all epochs
		t.Fatal(err)
	}
	// A burst of day-5 low ratings lands in epoch 0 after everything was
	// evaluated: every checkpoint is stale.
	for i := 0; i < 25; i++ {
		add(fmt.Sprintf("late%d", i), 5+rng.Float64()*3, 0.5)
	}
	got, err := svc.Scores(context.Background(), "tv1")
	if err != nil {
		t.Fatal(err)
	}
	want := agg.NewPScheme().Evaluate(mirror).Table["tv1"]
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Errorf("period %d: incremental %v, batch %v", i, got[i], want[i])
		}
	}
}
