package server

import "repro/internal/dataset"

// dataView exposes a consistent combined-dataset snapshot of the store for
// white-box tests that compare full rating state between services.
func (s *Service) dataView() *dataset.Dataset {
	return s.store.View()
}
