package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/agg"
	"repro/internal/dataset"
	"repro/internal/stats"
)

func newService(t *testing.T, scheme agg.Scheme) *Service {
	t.Helper()
	s, err := New(scheme, 90, []string{"tv1", "tv2"})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 90, []string{"a"}); err == nil {
		t.Error("nil scheme accepted")
	}
	if _, err := New(agg.SAScheme{}, 0, []string{"a"}); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := New(agg.SAScheme{}, 90, nil); err == nil {
		t.Error("no products accepted")
	}
	if _, err := New(agg.SAScheme{}, 90, []string{"a", "a"}); err == nil {
		t.Error("duplicate product accepted")
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newService(t, agg.SAScheme{})
	if err := s.Submit(context.Background(), "tv1", "r1", 4, 10); err != nil {
		t.Fatalf("valid rating rejected: %v", err)
	}
	if err := s.Submit(context.Background(), "tv1", "r1", 3, 11); !errors.Is(err, ErrDuplicateRating) {
		t.Errorf("duplicate = %v", err)
	}
	if err := s.Submit(context.Background(), "tv9", "r2", 4, 10); !errors.Is(err, ErrUnknownProduct) {
		t.Errorf("unknown product = %v", err)
	}
	if err := s.Submit(context.Background(), "tv1", "r2", 9, 10); !errors.Is(err, ErrBadRating) {
		t.Errorf("bad value = %v", err)
	}
	if err := s.Submit(context.Background(), "tv1", "r2", 4, -1); !errors.Is(err, ErrBadRating) {
		t.Errorf("bad day = %v", err)
	}
	if err := s.Submit(context.Background(), "tv1", "r2", 4, 90); !errors.Is(err, ErrBadRating) {
		t.Errorf("day at horizon = %v", err)
	}
	if err := s.Submit(context.Background(), "tv1", "", 4, 10); !errors.Is(err, ErrBadRating) {
		t.Errorf("empty rater = %v", err)
	}
}

func TestScoresTrackSubmissions(t *testing.T) {
	s := newService(t, agg.SAScheme{})
	for i := 0; i < 10; i++ {
		if err := s.Submit(context.Background(), "tv1", fmt.Sprintf("r%d", i), 4, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	scores, err := s.Scores(context.Background(), "tv1")
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 3 {
		t.Fatalf("periods = %d", len(scores))
	}
	if scores[0] != 4 {
		t.Errorf("period 0 = %v, want 4", scores[0])
	}
	if !math.IsNaN(scores[1]) || !math.IsNaN(scores[2]) {
		t.Errorf("empty periods = %v, want NaN", scores[1:])
	}
	// A new rating invalidates the cache.
	if err := s.Submit(context.Background(), "tv1", "late", 2, 40); err != nil {
		t.Fatal(err)
	}
	scores, err = s.Scores(context.Background(), "tv1")
	if err != nil {
		t.Fatal(err)
	}
	if scores[1] != 2 {
		t.Errorf("period 1 after update = %v, want 2", scores[1])
	}
	if _, err := s.Scores(context.Background(), "nope"); !errors.Is(err, ErrUnknownProduct) {
		t.Errorf("unknown product = %v", err)
	}
}

func TestRatingCountAndProducts(t *testing.T) {
	s := newService(t, agg.SAScheme{})
	ids := s.Products()
	if len(ids) != 2 || ids[0] != "tv1" {
		t.Errorf("Products = %v", ids)
	}
	if err := s.Submit(context.Background(), "tv2", "a", 3, 5); err != nil {
		t.Fatal(err)
	}
	n, err := s.RatingCount("tv2")
	if err != nil || n != 1 {
		t.Errorf("RatingCount = %d, %v", n, err)
	}
	if _, err := s.RatingCount("nope"); !errors.Is(err, ErrUnknownProduct) {
		t.Errorf("unknown product = %v", err)
	}
}

func TestLoadSeedsHistory(t *testing.T) {
	cfg := dataset.DefaultFairConfig()
	cfg.Products = 2
	cfg.HorizonDays = 90
	d, err := dataset.GenerateFair(stats.NewRNG(8), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := newService(t, agg.SAScheme{})
	if err := s.Load(context.Background(), d); err != nil {
		t.Fatal(err)
	}
	n, err := s.RatingCount("tv1")
	if err != nil || n == 0 {
		t.Fatalf("RatingCount after Load = %d, %v", n, err)
	}
	scores, err := s.Scores(context.Background(), "tv1")
	if err != nil {
		t.Fatal(err)
	}
	if scores[0] < 3 || scores[0] > 5 {
		t.Errorf("loaded period 0 score = %v", scores[0])
	}
	// Duplicate raters in the loaded data are rejected.
	bad := d.Clone()
	p, _ := bad.Product("tv1")
	p.Ratings = append(p.Ratings, p.Ratings[0])
	if err := s.Load(context.Background(), bad); !errors.Is(err, ErrDuplicateRating) {
		t.Errorf("Load(dup) = %v", err)
	}
}

func TestPSchemeInspection(t *testing.T) {
	cfg := dataset.DefaultFairConfig()
	cfg.Products = 2
	cfg.HorizonDays = 90
	d, err := dataset.GenerateFair(stats.NewRNG(9), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := newService(t, agg.NewPScheme())
	if err := s.Load(context.Background(), d); err != nil {
		t.Fatal(err)
	}
	// Attack tv1 live: 50 low ratings in 15 days.
	for i := 0; i < 50; i++ {
		day := 40 + float64(i)*0.3
		if err := s.Submit(context.Background(), "tv1", fmt.Sprintf("evil%02d", i), 0.5, day); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := s.Inspect(context.Background(), "tv1")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.HasSuspicious {
		t.Fatal("P-scheme report missing suspicious data")
	}
	if rep.Suspicious < 25 {
		t.Errorf("suspicious = %d, want most of the 50 attack ratings", rep.Suspicious)
	}
	// Attackers lose trust; a rater with clean history keeps ≥ 0.5.
	if tr := s.Trust(context.Background(), "evil00"); tr >= 0.5 {
		t.Errorf("attacker trust = %v, want < 0.5", tr)
	}
	if tr := s.Trust(context.Background(), "stranger"); tr != 0.5 {
		t.Errorf("unknown rater trust = %v, want 0.5", tr)
	}
	if _, err := s.Inspect(context.Background(), "nope"); !errors.Is(err, ErrUnknownProduct) {
		t.Errorf("unknown product = %v", err)
	}
}

func TestInspectWithoutPScheme(t *testing.T) {
	s := newService(t, agg.SAScheme{})
	if err := s.Submit(context.Background(), "tv1", "a", 4, 1); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Inspect(context.Background(), "tv1")
	if err != nil {
		t.Fatal(err)
	}
	if rep.HasSuspicious || rep.Suspicious != 0 {
		t.Errorf("SA report claims suspicious data: %+v", rep)
	}
	if got := s.Trust(context.Background(), "a"); got != 0.5 {
		t.Errorf("SA trust = %v, want 0.5", got)
	}
}

func TestConcurrentSubmitAndRead(t *testing.T) {
	s := newService(t, agg.SAScheme{})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				rater := fmt.Sprintf("g%dr%d", g, i)
				if err := s.Submit(context.Background(), "tv1", rater, 4, float64(i)); err != nil {
					errs <- err
					return
				}
				if _, err := s.Scores(context.Background(), "tv1"); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	n, err := s.RatingCount("tv1")
	if err != nil || n != 64 {
		t.Fatalf("RatingCount = %d, %v", n, err)
	}
}
