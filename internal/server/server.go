// Package server wraps the reliable rating aggregation system in an online
// service: ratings are submitted as they happen, aggregates are recomputed
// lazily under a pluggable defense scheme, and the P-scheme's suspicious
// marks and rater trust are inspectable — the deployment shape a production
// rating system (the paper's motivating setting) would use.
package server

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/agg"
	"repro/internal/dataset"
)

// Errors returned by the rating service.
var (
	// ErrUnknownProduct indicates a rating or query for an unregistered
	// product.
	ErrUnknownProduct = errors.New("server: unknown product")
	// ErrBadRating indicates an out-of-range value or day.
	ErrBadRating = errors.New("server: bad rating")
	// ErrDuplicateRating indicates a rater rating the same product twice
	// (the one-rating-per-rater-per-object rule of Eq. 7).
	ErrDuplicateRating = errors.New("server: duplicate rating")
)

// Service is a thread-safe online rating system. The zero value is not
// usable; construct with New.
type Service struct {
	mu      sync.RWMutex
	data    *dataset.Dataset
	scheme  agg.Scheme
	seen    map[string]map[string]bool // product → rater → rated?
	dirty   bool
	cached  agg.Table
	pResult *agg.Result // set when scheme is the P-scheme
}

// New creates a service for the given products, aggregating with scheme
// over a horizon of horizonDays.
func New(scheme agg.Scheme, horizonDays float64, products []string) (*Service, error) {
	if scheme == nil {
		return nil, errors.New("server: nil scheme")
	}
	if horizonDays <= 0 {
		return nil, fmt.Errorf("server: horizon %v", horizonDays)
	}
	if len(products) == 0 {
		return nil, errors.New("server: no products")
	}
	d := &dataset.Dataset{HorizonDays: horizonDays}
	seen := make(map[string]map[string]bool, len(products))
	for _, id := range products {
		if _, dup := seen[id]; dup {
			return nil, fmt.Errorf("server: duplicate product %q", id)
		}
		d.Products = append(d.Products, dataset.Product{ID: id})
		seen[id] = make(map[string]bool)
	}
	return &Service{data: d, scheme: scheme, seen: seen, dirty: true}, nil
}

// Load seeds the service with an existing dataset (e.g. history read from
// disk), replacing all current ratings.
func (s *Service) Load(d *dataset.Dataset) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := make(map[string]map[string]bool, len(d.Products))
	for _, p := range d.Products {
		m := make(map[string]bool, len(p.Ratings))
		for _, r := range p.Ratings {
			if m[r.Rater] {
				return fmt.Errorf("%w: rater %q on %q", ErrDuplicateRating, r.Rater, p.ID)
			}
			m[r.Rater] = true
		}
		seen[p.ID] = m
	}
	s.data = d.Clone()
	s.seen = seen
	s.dirty = true
	return nil
}

// Submit records one rating. The ground-truth Unfair flag of incoming
// ratings is ignored — a live system has no oracle.
func (s *Service) Submit(product, rater string, value, day float64) error {
	if value < dataset.MinValue || value > dataset.MaxValue {
		return fmt.Errorf("%w: value %v", ErrBadRating, value)
	}
	if rater == "" {
		return fmt.Errorf("%w: empty rater", ErrBadRating)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if day < 0 || day >= s.data.HorizonDays {
		return fmt.Errorf("%w: day %v outside [0,%v)", ErrBadRating, day, s.data.HorizonDays)
	}
	p, err := s.data.Product(product)
	if err != nil {
		return fmt.Errorf("%w: %q", ErrUnknownProduct, product)
	}
	raters, ok := s.seen[product]
	if !ok {
		raters = make(map[string]bool)
		s.seen[product] = raters
	}
	if raters[rater] {
		return fmt.Errorf("%w: rater %q on %q", ErrDuplicateRating, rater, product)
	}
	raters[rater] = true
	p.Ratings = p.Ratings.Merge(dataset.Series{{Day: day, Value: value, Rater: rater}})
	s.dirty = true
	return nil
}

// Products returns the registered product IDs.
func (s *Service) Products() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.data.ProductIDs()
}

// RatingCount returns the number of ratings recorded for the product.
func (s *Service) RatingCount(product string) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, err := s.data.Product(product)
	if err != nil {
		return 0, fmt.Errorf("%w: %q", ErrUnknownProduct, product)
	}
	return len(p.Ratings), nil
}

// Scores returns the product's per-period aggregated ratings under the
// service's scheme, recomputing if ratings arrived since the last call.
func (s *Service) Scores(product string) ([]float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.data.Product(product); err != nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownProduct, product)
	}
	s.refreshLocked()
	scores := s.cached[product]
	out := make([]float64, len(scores))
	copy(out, scores)
	return out, nil
}

// Report is the defense-side view of one product.
type Report struct {
	Product string    `json:"product"`
	Ratings int       `json:"ratings"`
	Scores  []float64 `json:"scores"`
	// Suspicious counts the ratings the P-scheme marked (0 and false for
	// other schemes).
	Suspicious    int  `json:"suspicious"`
	HasSuspicious bool `json:"hasSuspicious"`
}

// Inspect returns the defense report for a product. Suspicious-mark data
// is only available when the service runs the P-scheme.
func (s *Service) Inspect(product string) (Report, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, err := s.data.Product(product)
	if err != nil {
		return Report{}, fmt.Errorf("%w: %q", ErrUnknownProduct, product)
	}
	s.refreshLocked()
	rep := Report{
		Product: product,
		Ratings: len(p.Ratings),
		Scores:  append([]float64(nil), s.cached[product]...),
	}
	if s.pResult != nil {
		rep.HasSuspicious = true
		for _, m := range s.pResult.Suspicious[product] {
			if m {
				rep.Suspicious++
			}
		}
	}
	return rep, nil
}

// Trust returns the current trust in a rater (0.5 for unknown raters, and
// always 0.5 when the scheme is not the P-scheme).
func (s *Service) Trust(rater string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.refreshLocked()
	if s.pResult == nil {
		return 0.5
	}
	return s.pResult.Trust.Trust(rater)
}

// refreshLocked recomputes aggregates if ratings arrived. Callers must hold
// the write lock.
func (s *Service) refreshLocked() {
	if !s.dirty {
		return
	}
	if p, ok := s.scheme.(*agg.PScheme); ok {
		res := p.Evaluate(s.data)
		s.cached = res.Table
		s.pResult = res
	} else {
		s.cached = s.scheme.Aggregates(s.data)
		s.pResult = nil
	}
	s.dirty = false
}
