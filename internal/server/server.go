// Package server wraps the reliable rating aggregation system in an online
// service: ratings are submitted as they happen, aggregates are recomputed
// lazily under a pluggable defense scheme, and the P-scheme's suspicious
// marks and rater trust are inspectable — the deployment shape a production
// rating system (the paper's motivating setting) would use.
//
// The service is optionally durable: constructed with Open it writes every
// accepted rating to a write-ahead log (internal/wal) before mutating
// in-memory state, periodically checkpoints the full dataset, and on boot
// replays snapshot + log so rating history — and with it the P-scheme's
// beta trust in every rater — survives crashes. An attacker cannot reset
// their trust by crashing the service.
package server

import (
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"sync"
	"time"

	"repro/internal/agg"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/wal"
)

// Errors returned by the rating service.
var (
	// ErrUnknownProduct indicates a rating or query for an unregistered
	// product.
	ErrUnknownProduct = errors.New("server: unknown product")
	// ErrBadRating indicates an out-of-range or non-finite value or day.
	ErrBadRating = errors.New("server: bad rating")
	// ErrDuplicateRating indicates a rater rating the same product twice
	// (the one-rating-per-rater-per-object rule of Eq. 7).
	ErrDuplicateRating = errors.New("server: duplicate rating")
	// ErrUnavailable indicates the durable log rejected the write; the
	// rating was NOT accepted and the client should retry after the
	// operator restores storage (HTTP 503).
	ErrUnavailable = errors.New("server: storage unavailable")
)

// Service is a thread-safe online rating system. The zero value is not
// usable; construct with New (in-memory) or Open (durable).
type Service struct {
	mu     sync.RWMutex
	data   *dataset.Dataset
	scheme agg.Scheme
	seen   map[string]map[string]bool // product → rater → rated?
	// dirtyFrom is the earliest rating day accepted since the last
	// successful recompute (+Inf = cache clean). It replaces a whole-table
	// dirty bit: under the P-scheme only the trust epochs at or after
	// epoch(dirtyFrom) are re-evaluated, the rest resume from engState's
	// checkpoints.
	dirtyFrom float64
	cached    agg.Table
	pResult   *agg.Result // set when scheme is the P-scheme
	// engState holds the P-scheme engine's per-epoch trust checkpoints
	// across recomputes (nil for other schemes, or after a failed
	// recompute — the next attempt then starts cold).
	engState *engine.EvalState

	// Durability (nil/zero for a purely in-memory service).
	wal           *wal.WAL
	snapshotEvery int
	sinceSnapshot int

	// Degradation: when a recompute panics, cached holds the last good
	// table, stale is set, and staleErr records the cause until a later
	// recompute succeeds.
	stale    bool
	staleErr error

	logger *log.Logger
	now    func() time.Time
}

// New creates an in-memory (non-durable) service for the given products,
// aggregating with scheme over a horizon of horizonDays.
func New(scheme agg.Scheme, horizonDays float64, products []string) (*Service, error) {
	if scheme == nil {
		return nil, errors.New("server: nil scheme")
	}
	if horizonDays <= 0 || math.IsInf(horizonDays, 0) || math.IsNaN(horizonDays) {
		return nil, fmt.Errorf("server: horizon %v", horizonDays)
	}
	if len(products) == 0 {
		return nil, errors.New("server: no products")
	}
	d := &dataset.Dataset{HorizonDays: horizonDays}
	seen := make(map[string]map[string]bool, len(products))
	for _, id := range products {
		if _, dup := seen[id]; dup {
			return nil, fmt.Errorf("server: duplicate product %q", id)
		}
		d.Products = append(d.Products, dataset.Product{ID: id})
		seen[id] = make(map[string]bool)
	}
	return &Service{
		data:      d,
		scheme:    scheme,
		seen:      seen,
		dirtyFrom: 0, // everything dirty: first read computes the table
		logger:    log.New(io.Discard, "", 0),
		now:       time.Now,
	}, nil
}

// WALOptions configures the durable variant of the service.
type WALOptions struct {
	// Dir is the WAL directory (ignored when FS is set).
	Dir string
	// FS overrides the filesystem the WAL writes through — used by tests
	// to inject faults (internal/faultfs). Defaults to wal.OSDir(Dir).
	FS wal.FS
	// SyncEvery and SyncInterval set the group-commit policy; see
	// wal.Options. Zero SyncEvery means fsync on every append.
	SyncEvery    int
	SyncInterval time.Duration
	// SnapshotEvery checkpoints the dataset and resets the log after this
	// many accepted ratings, bounding recovery time. 0 disables automatic
	// snapshots (the log grows until Close).
	SnapshotEvery int
}

// RecoveryReport describes what a durable boot found on disk.
type RecoveryReport struct {
	// SnapshotRatings and ReplayedRatings count ratings restored from the
	// checkpoint and from the log tail, respectively.
	SnapshotRatings int
	ReplayedRatings int
	// DuplicateRecords counts log records that exactly matched a rating
	// already restored — the benign artifact of a crash between snapshot
	// publication and log reset, deduplicated silently.
	DuplicateRecords int
	// SkippedRecords counts records that failed validation (unknown
	// product, out-of-range value or day, conflicting duplicate) and were
	// dropped; SkipReasons holds the first few, for logs.
	SkippedRecords int
	SkipReasons    []string
	// TruncatedBytes counts torn log-tail bytes discarded by the WAL.
	TruncatedBytes int64
}

// maxSkipReasons bounds the per-boot skip-reason sample in RecoveryReport.
const maxSkipReasons = 16

// Open creates a durable service backed by a write-ahead log in walDir
// with strict durability defaults (fsync every append, snapshot every
// 4096 ratings). It replays any existing snapshot + log before returning,
// so the service resumes exactly where a crashed predecessor stopped.
func Open(scheme agg.Scheme, horizonDays float64, products []string, walDir string) (*Service, *RecoveryReport, error) {
	return OpenWAL(scheme, horizonDays, products, WALOptions{Dir: walDir, SnapshotEvery: 4096})
}

// OpenWAL is Open with explicit durability options.
func OpenWAL(scheme agg.Scheme, horizonDays float64, products []string, opts WALOptions) (*Service, *RecoveryReport, error) {
	s, err := New(scheme, horizonDays, products)
	if err != nil {
		return nil, nil, err
	}
	fsys := opts.FS
	if fsys == nil {
		if opts.Dir == "" {
			return nil, nil, errors.New("server: WAL dir required")
		}
		fsys, err = wal.OSDir(opts.Dir)
		if err != nil {
			return nil, nil, fmt.Errorf("server: open WAL dir: %w", err)
		}
	}
	w, rec, err := wal.Open(fsys, wal.Options{
		SyncEvery:    opts.SyncEvery,
		SyncInterval: opts.SyncInterval,
	})
	if err != nil {
		return nil, nil, err
	}
	report := &RecoveryReport{TruncatedBytes: rec.TruncatedBytes}
	if rec.Snapshot != nil {
		for _, p := range rec.Snapshot.Products {
			for _, r := range p.Ratings {
				s.recoverRating(p.ID, r.Rater, r.Value, r.Day, &report.SnapshotRatings, report)
			}
		}
	}
	for _, r := range rec.Records {
		s.recoverRating(r.Product, r.Rater, r.Value, r.Day, &report.ReplayedRatings, report)
	}
	s.wal = w
	s.snapshotEvery = opts.SnapshotEvery
	s.sinceSnapshot = len(rec.Records)
	return s, report, nil
}

// recoverRating applies one recovered rating through the same validation
// as Submit, folding the outcome into the recovery report. An exact
// duplicate (same product, rater, value, day) is the expected residue of
// a crash mid-Compact and is dropped silently; anything else invalid is
// counted and sampled as a skip.
func (s *Service) recoverRating(product, rater string, value, day float64, applied *int, report *RecoveryReport) {
	err := s.applyLocked(product, rater, value, day)
	switch {
	case err == nil:
		*applied++
	case errors.Is(err, ErrDuplicateRating) && s.hasExactRating(product, rater, value, day):
		report.DuplicateRecords++
	default:
		report.SkippedRecords++
		if len(report.SkipReasons) < maxSkipReasons {
			report.SkipReasons = append(report.SkipReasons,
				fmt.Sprintf("%s/%s value=%v day=%v: %v", product, rater, value, day, err))
		}
	}
}

// hasExactRating reports whether rater's recorded rating on product has
// exactly this value and day.
//
//lint:ignore lockheld only called from recoverRating during OpenWAL, before the Service is returned to any other goroutine
func (s *Service) hasExactRating(product, rater string, value, day float64) bool {
	p, err := s.data.Product(product)
	if err != nil {
		return false
	}
	for _, r := range p.Ratings {
		if r.Rater == rater {
			//lint:ignore floateq WAL replay dedup is bit-exact by design: a re-replayed record carries the identical float bits, anything else is a conflicting duplicate
			return r.Value == value && r.Day == day
		}
	}
	return false
}

// SetLogger directs the service's operational log (request middleware,
// degraded-mode recomputes, snapshot failures). The default discards.
func (s *Service) SetLogger(l *log.Logger) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if l == nil {
		l = log.New(io.Discard, "", 0)
	}
	s.logger = l
}

func (s *Service) logf(format string, args ...any) {
	s.mu.RLock()
	l := s.logger
	s.mu.RUnlock()
	l.Printf(format, args...)
}

// Load seeds the service with an existing dataset (e.g. history read from
// disk), replacing all current ratings. On a durable service the loaded
// dataset is immediately checkpointed so it survives a crash.
func (s *Service) Load(d *dataset.Dataset) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := make(map[string]map[string]bool, len(d.Products))
	for _, p := range d.Products {
		m := make(map[string]bool, len(p.Ratings))
		for _, r := range p.Ratings {
			if m[r.Rater] {
				return fmt.Errorf("%w: rater %q on %q", ErrDuplicateRating, r.Rater, p.ID)
			}
			m[r.Rater] = true
		}
		seen[p.ID] = m
	}
	clone := d.Clone()
	if s.wal != nil {
		if err := s.wal.Compact(clone); err != nil {
			return fmt.Errorf("%w: checkpoint loaded dataset: %v", ErrUnavailable, err)
		}
		s.sinceSnapshot = 0
	}
	s.data = clone
	s.seen = seen
	s.markDirtyLocked(0) // a wholesale replacement invalidates everything
	s.engState = nil     // drop checkpoints computed for the old history
	return nil
}

// markDirtyLocked records that a rating on the given day arrived: every
// epoch from epoch(day) on must be re-evaluated before the next read.
func (s *Service) markDirtyLocked(day float64) {
	if day < s.dirtyFrom {
		s.dirtyFrom = day
	}
}

// dirtyLocked reports whether the cached table is out of date.
func (s *Service) dirtyLocked() bool { return !math.IsInf(s.dirtyFrom, 1) }

// Submit records one rating, durably if the service has a WAL: the rating
// is appended (and fsynced per the group-commit policy) before any
// in-memory state changes, so an acknowledgement implies the rating will
// survive a crash and a storage failure surfaces as ErrUnavailable rather
// than a silent ack. The ground-truth Unfair flag of incoming ratings is
// ignored — a live system has no oracle.
func (s *Service) Submit(product, rater string, value, day float64) error {
	// NaN fails every ordered comparison, so explicit finiteness checks
	// must come first: without them a NaN value or day sails past the
	// range guards and poisons every downstream aggregate.
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return fmt.Errorf("%w: non-finite value %v", ErrBadRating, value)
	}
	if math.IsNaN(day) || math.IsInf(day, 0) {
		return fmt.Errorf("%w: non-finite day %v", ErrBadRating, day)
	}
	if value < dataset.MinValue || value > dataset.MaxValue {
		return fmt.Errorf("%w: value %v", ErrBadRating, value)
	}
	if rater == "" {
		return fmt.Errorf("%w: empty rater", ErrBadRating)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkLocked(product, rater, day); err != nil {
		return err
	}
	if s.wal != nil {
		rec := wal.Record{
			Product: product, Rater: rater, Value: value, Day: day,
			ReceivedUnixNano: s.now().UnixNano(),
		}
		if err := s.wal.Append(rec); err != nil {
			return fmt.Errorf("%w: %v", ErrUnavailable, err)
		}
	}
	if err := s.applyLocked(product, rater, value, day); err != nil {
		return err // unreachable after checkLocked; kept for safety
	}
	s.maybeSnapshotLocked()
	return nil
}

// checkLocked runs the stateful Submit validations (day range, product
// existence, duplicate rater) without mutating anything.
func (s *Service) checkLocked(product, rater string, day float64) error {
	if day < 0 || day >= s.data.HorizonDays {
		return fmt.Errorf("%w: day %v outside [0,%v)", ErrBadRating, day, s.data.HorizonDays)
	}
	if _, err := s.data.Product(product); err != nil {
		return fmt.Errorf("%w: %q", ErrUnknownProduct, product)
	}
	if s.seen[product][rater] {
		return fmt.Errorf("%w: rater %q on %q", ErrDuplicateRating, rater, product)
	}
	return nil
}

// applyLocked validates and applies one rating to in-memory state. It is
// the single mutation path shared by live submission and WAL replay, so
// recovered state is governed by exactly the live rules.
func (s *Service) applyLocked(product, rater string, value, day float64) error {
	if math.IsNaN(value) || math.IsInf(value, 0) || value < dataset.MinValue || value > dataset.MaxValue {
		return fmt.Errorf("%w: value %v", ErrBadRating, value)
	}
	if rater == "" {
		return fmt.Errorf("%w: empty rater", ErrBadRating)
	}
	if math.IsNaN(day) || math.IsInf(day, 0) {
		return fmt.Errorf("%w: non-finite day %v", ErrBadRating, day)
	}
	if err := s.checkLocked(product, rater, day); err != nil {
		return err
	}
	p, _ := s.data.Product(product)
	raters, ok := s.seen[product]
	if !ok {
		raters = make(map[string]bool)
		s.seen[product] = raters
	}
	raters[rater] = true
	p.Ratings = p.Ratings.Merge(dataset.Series{{Day: day, Value: value, Rater: rater}})
	s.markDirtyLocked(day)
	return nil
}

// maybeSnapshotLocked checkpoints and compacts the WAL once SnapshotEvery
// ratings have accumulated since the last checkpoint. A checkpoint
// failure is logged, not returned: the triggering rating is already
// durable in the log, the snapshot only bounds recovery time.
func (s *Service) maybeSnapshotLocked() {
	s.sinceSnapshot++
	if s.wal == nil || s.snapshotEvery <= 0 || s.sinceSnapshot < s.snapshotEvery {
		return
	}
	s.sinceSnapshot = 0
	if err := s.wal.Compact(s.data); err != nil {
		s.logger.Printf("server: snapshot failed (will retry in %d ratings): %v", s.snapshotEvery, err)
	}
}

// Checkpoint forces a snapshot + log compaction now. It is a no-op on a
// non-durable service.
func (s *Service) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	if err := s.wal.Compact(s.data); err != nil {
		return fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	s.sinceSnapshot = 0
	return nil
}

// Close flushes and closes the WAL (if any). The service rejects further
// durable submissions afterwards.
func (s *Service) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	return s.wal.Close()
}

// Ready reports whether the service can safely take traffic: the WAL (if
// configured) has no sticky storage failure and the last aggregate
// recompute did not fail. It backs the /readyz probe.
func (s *Service) Ready() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.wal != nil {
		if err := s.wal.Err(); err != nil {
			return fmt.Errorf("%w: %v", ErrUnavailable, err)
		}
	}
	if s.stale && s.staleErr != nil {
		return fmt.Errorf("server: aggregates stale: %v", s.staleErr)
	}
	return nil
}

// Products returns the registered product IDs.
func (s *Service) Products() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.data.ProductIDs()
}

// RatingCount returns the number of ratings recorded for the product.
func (s *Service) RatingCount(product string) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, err := s.data.Product(product)
	if err != nil {
		return 0, fmt.Errorf("%w: %q", ErrUnknownProduct, product)
	}
	return len(p.Ratings), nil
}

// freshRLock returns holding the read lock with the aggregate cache
// refreshed if it was dirty. Readers therefore serve the newest table
// computed no later than their own start — when the cache is clean they
// proceed concurrently under RLock and never serialize on the write lock.
func (s *Service) freshRLock() {
	s.mu.RLock()
	if !s.dirtyLocked() {
		return
	}
	s.mu.RUnlock()
	s.mu.Lock()
	s.refreshLocked()
	s.mu.Unlock()
	s.mu.RLock()
}

// Scores returns the product's per-period aggregated ratings under the
// service's scheme, recomputing if ratings arrived since the last call.
func (s *Service) Scores(product string) ([]float64, error) {
	s.freshRLock()
	defer s.mu.RUnlock()
	if _, err := s.data.Product(product); err != nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownProduct, product)
	}
	scores := s.cached[product]
	out := make([]float64, len(scores))
	copy(out, scores)
	return out, nil
}

// Report is the defense-side view of one product.
type Report struct {
	Product string    `json:"product"`
	Ratings int       `json:"ratings"`
	Scores  []float64 `json:"scores"`
	// Suspicious counts the ratings the P-scheme marked (0 and false for
	// other schemes).
	Suspicious    int  `json:"suspicious"`
	HasSuspicious bool `json:"hasSuspicious"`
	// Stale is set when the last aggregate recompute failed (the scheme
	// panicked) and Scores is the last successfully computed table —
	// degraded service rather than no service.
	Stale bool `json:"stale,omitempty"`
}

// Inspect returns the defense report for a product. Suspicious-mark data
// is only available when the service runs the P-scheme.
func (s *Service) Inspect(product string) (Report, error) {
	s.freshRLock()
	defer s.mu.RUnlock()
	p, err := s.data.Product(product)
	if err != nil {
		return Report{}, fmt.Errorf("%w: %q", ErrUnknownProduct, product)
	}
	rep := Report{
		Product: product,
		Ratings: len(p.Ratings),
		Scores:  append([]float64(nil), s.cached[product]...),
		Stale:   s.stale,
	}
	if s.pResult != nil {
		rep.HasSuspicious = true
		for _, m := range s.pResult.Suspicious[product] {
			if m {
				rep.Suspicious++
			}
		}
	}
	return rep, nil
}

// Trust returns the current trust in a rater (0.5 for unknown raters, and
// always 0.5 when the scheme is not the P-scheme).
func (s *Service) Trust(rater string) float64 {
	s.freshRLock()
	defer s.mu.RUnlock()
	if s.pResult == nil {
		return 0.5
	}
	return s.pResult.Trust.Trust(rater)
}

// refreshLocked recomputes aggregates if ratings arrived. Callers must
// hold the write lock. A panicking scheme does not take the service down:
// the previous table keeps being served, reports carry Stale, Ready
// fails, and the next submission triggers another attempt.
func (s *Service) refreshLocked() {
	if !s.dirtyLocked() {
		return
	}
	table, pRes, err := s.evaluateLocked(s.dirtyFrom)
	s.dirtyFrom = math.Inf(1)
	if err != nil {
		s.stale = true
		s.staleErr = err
		// The engine state may hold checkpoints from a half-finished
		// resume; drop it so the retry starts from a clean slate (the
		// cost of one cold evaluation, only on the failure path).
		s.engState = nil
		s.logger.Printf("server: aggregate recompute failed, serving stale table: %v", err)
		return
	}
	s.cached = table
	s.pResult = pRes
	s.stale = false
	s.staleErr = nil
}

// evaluateLocked runs the scheme over the current dataset, converting a
// panic into an error. Callers must hold the write lock. Under the P-scheme
// it resumes the epoch-checkpointed engine: epochs before epoch(from) are
// reused from the previous evaluation's checkpoints, so steady-state
// recompute cost is proportional to the invalidated epoch suffix plus one
// final per-product pass, not the full history.
func (s *Service) evaluateLocked(from float64) (table agg.Table, pRes *agg.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			table, pRes = nil, nil
			err = fmt.Errorf("scheme %s panicked: %v", s.scheme.Name(), r)
		}
	}()
	if p, ok := s.scheme.(*agg.PScheme); ok {
		if s.engState == nil {
			s.engState = engine.NewState()
		}
		s.engState.Invalidate(from)
		res := p.Engine().Resume(s.engState, s.data)
		t := agg.Table(res.Table)
		return t, &agg.Result{Table: t, Suspicious: res.Suspicious, Trust: res.Trust}, nil
	}
	return s.scheme.Aggregates(s.data), nil, nil
}
