// Package server wraps the reliable rating aggregation system in an online
// service: ratings are submitted as they happen, aggregates are recomputed
// lazily under a pluggable defense scheme, and the P-scheme's suspicious
// marks and rater trust are inspectable — the deployment shape a production
// rating system (the paper's motivating setting) would use.
//
// Storage is the sharded layer in internal/store: rating state is
// partitioned into product-keyed shards (each with its own mutex, dataset
// partition, and WAL stream), so ingest scales with cores instead of
// serializing on one lock and one fsync pipeline. This package is the
// coordinator above it: it routes writes to the store, owns every
// cross-product concern — the P-scheme recompute with its epoch-
// checkpointed engine state, the trust fold, the cached table, and the
// degradation state — and refreshes them from consistent multi-shard cuts
// (store.BeginRecompute). With one shard (the default for New/Open) the
// behavior and on-disk layout are exactly the pre-sharding service's.
//
// The service is optionally durable: constructed with Open it writes every
// accepted rating to a write-ahead log (internal/wal) before mutating
// in-memory state, periodically checkpoints the full dataset, and on boot
// replays snapshot + log — in parallel across shards — so rating history,
// and with it the P-scheme's beta trust in every rater, survives crashes.
// An attacker cannot reset their trust by crashing the service.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/agg"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/wal"
)

// Errors returned by the rating service. They alias the storage layer's
// sentinels, so errors.Is works against either package.
var (
	// ErrUnknownProduct indicates a rating or query for an unregistered
	// product.
	ErrUnknownProduct = store.ErrUnknownProduct
	// ErrBadRating indicates an out-of-range or non-finite value or day.
	ErrBadRating = store.ErrBadRating
	// ErrDuplicateRating indicates a rater rating the same product twice
	// (the one-rating-per-rater-per-object rule of Eq. 7).
	ErrDuplicateRating = store.ErrDuplicateRating
	// ErrUnavailable indicates the durable log rejected the write; the
	// rating was NOT accepted and the client should retry after the
	// operator restores storage (HTTP 503).
	ErrUnavailable = store.ErrUnavailable
)

// RecoveryReport describes what a durable boot found on disk, merged
// across shards in shard order.
type RecoveryReport = store.RecoveryReport

// Service is a thread-safe online rating system. The zero value is not
// usable; construct with New/NewSharded (in-memory) or Open/OpenWAL
// (durable).
type Service struct {
	// mu guards the coordinator's cross-product state below. Rating state
	// lives in the store, which synchronizes itself — Submit never takes
	// this lock, so ingest proceeds while a recompute holds it.
	mu      sync.RWMutex
	scheme  agg.Scheme
	cached  agg.Table
	pResult *agg.Result // set when scheme is the P-scheme
	// engState holds the P-scheme engine's per-epoch trust checkpoints
	// across recomputes (nil for other schemes, or after a failed
	// recompute — the next attempt then starts cold). Each recompute hands
	// it a fresh combined dataset built from the shard cut; the engine
	// recognizes the identical product list + horizon and resumes from its
	// checkpoints (engine.EvalState.Matches).
	engState *engine.EvalState

	// Degradation: when a recompute panics, cached holds the last good
	// table, stale is set, and staleErr records the cause until a later
	// recompute succeeds.
	stale    bool
	staleErr error

	// store is the sharded storage layer (self-synchronized).
	store *store.Store
	// logger is atomic, not mu-guarded: the store logs through it while
	// holding shard locks, and taking mu there would invert the
	// coordinator-before-shard lock order.
	logger atomic.Pointer[log.Logger]

	// Observability (EnableMetrics): obsReg and evalSeconds are mu-guarded;
	// httpM is atomic because the middleware reads it without taking the
	// coordinator lock — a request must never queue behind a recompute just
	// to record its latency.
	obsReg      *obs.Registry
	evalSeconds *obs.Histogram
	httpM       atomic.Pointer[httpMetrics]
}

// New creates an in-memory (non-durable) single-shard service for the
// given products, aggregating with scheme over a horizon of horizonDays.
func New(scheme agg.Scheme, horizonDays float64, products []string) (*Service, error) {
	return NewSharded(scheme, horizonDays, products, 1)
}

// NewSharded is New with an explicit shard count: product state and lock
// striping are split across shards (0 and 1 both mean one shard, the
// original layout).
func NewSharded(scheme agg.Scheme, horizonDays float64, products []string, shards int) (*Service, error) {
	if scheme == nil {
		return nil, errors.New("server: nil scheme")
	}
	st, err := store.New(horizonDays, products, shards)
	if err != nil {
		return nil, err
	}
	s := &Service{scheme: scheme, store: st}
	s.logger.Store(log.New(io.Discard, "", 0))
	st.SetLogf(s.logf)
	return s, nil
}

// WALOptions configures the durable variant of the service.
type WALOptions struct {
	// Dir is the WAL base directory (ignored when FS is set).
	Dir string
	// FS overrides the filesystem the WAL writes through — used by tests
	// to inject faults (internal/faultfs). Defaults to wal.OSDir(Dir).
	FS wal.FS
	// Shards is the storage shard count; 0 or 1 reproduces the original
	// single-stream layout byte-for-byte (existing WAL directories stay
	// readable), larger values shard state and WAL streams by product,
	// migrating a legacy directory in place on first open. The count is
	// recorded in the directory's manifest and a mismatched reopen fails.
	Shards int
	// SyncEvery and SyncInterval set each shard's group-commit policy; see
	// wal.Options. Zero SyncEvery means fsync on every append.
	SyncEvery    int
	SyncInterval time.Duration
	// StallThreshold arms the WAL's fsync-latency circuit breaker: a
	// successful fsync slower than this trips the breaker and flips Submit
	// acks to durability=pending until a background probe observes a fast
	// fsync again. Zero disables the breaker. ProbeInterval sets how often
	// the open breaker probes (and group-commits pending records); zero
	// means the wal package default.
	StallThreshold time.Duration
	ProbeInterval  time.Duration
	// SnapshotEvery checkpoints a shard and resets its log after this many
	// ratings accepted on that shard, bounding recovery time. 0 disables
	// automatic snapshots (the logs grow until Close).
	SnapshotEvery int
}

// Open creates a durable single-shard service backed by a write-ahead log
// in walDir with strict durability defaults (fsync every append, snapshot
// every 4096 ratings). It replays any existing snapshot + log before
// returning, so the service resumes exactly where a crashed predecessor
// stopped.
func Open(scheme agg.Scheme, horizonDays float64, products []string, walDir string) (*Service, *RecoveryReport, error) {
	return OpenWAL(scheme, horizonDays, products, WALOptions{Dir: walDir, SnapshotEvery: 4096})
}

// OpenWAL is Open with explicit durability options, including the shard
// count. Recovery is parallel: every shard replays its own snapshot + log
// concurrently and the per-shard reports are merged in shard order.
func OpenWAL(scheme agg.Scheme, horizonDays float64, products []string, opts WALOptions) (*Service, *RecoveryReport, error) {
	if scheme == nil {
		return nil, nil, errors.New("server: nil scheme")
	}
	if opts.FS == nil && opts.Dir == "" {
		return nil, nil, errors.New("server: WAL dir required")
	}
	s := &Service{scheme: scheme}
	s.logger.Store(log.New(io.Discard, "", 0))
	st, report, err := store.Open(horizonDays, products, store.Options{
		Dir:            opts.Dir,
		FS:             opts.FS,
		Shards:         opts.Shards,
		SyncEvery:      opts.SyncEvery,
		SyncInterval:   opts.SyncInterval,
		StallThreshold: opts.StallThreshold,
		ProbeInterval:  opts.ProbeInterval,
		SnapshotEvery:  opts.SnapshotEvery,
		Logf:           s.logf,
	})
	if err != nil {
		return nil, nil, err
	}
	s.store = st
	return s, report, nil
}

// SetLogger directs the service's operational log (request middleware,
// degraded-mode recomputes, snapshot failures). The default discards.
func (s *Service) SetLogger(l *log.Logger) {
	if l == nil {
		l = log.New(io.Discard, "", 0)
	}
	s.logger.Store(l)
}

func (s *Service) logf(format string, args ...any) {
	s.logger.Load().Printf(format, args...)
}

// Load seeds the service with an existing dataset (e.g. history read from
// disk), replacing all current ratings. On a durable service the loaded
// dataset is immediately checkpointed — shard by shard — so it survives a
// crash.
func (s *Service) Load(ctx context.Context, d *dataset.Dataset) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.store.Load(ctx, d); err != nil {
		return err
	}
	s.engState = nil // drop checkpoints computed for the old history
	return nil
}

// Submit records one rating, durably if the service has a WAL. It is
// SubmitAck with the durability level discarded — callers that surface ack
// semantics to clients (the HTTP handler) use SubmitAck directly.
func (s *Service) Submit(ctx context.Context, product, rater string, value, day float64) error {
	_, err := s.SubmitAck(ctx, product, rater, value, day)
	return err
}

// SubmitAck records one rating, durably if the service has a WAL: the
// rating is appended to its product's shard WAL (and fsynced per that
// shard's group-commit policy) before any in-memory state changes, so an
// acknowledgement implies the rating will survive a crash and a storage
// failure surfaces as ErrUnavailable rather than a silent ack. The
// returned Ack qualifies the durability promise: AckDurable means the
// record is covered by a completed fsync (or by the group-commit policy's
// bounded window); AckPending means the shard's fsync circuit breaker is
// open — the record is written and will be group-committed by the
// breaker's probe, but a power loss before then may drop it. A cancelled
// ctx sheds the request before any WAL write. Submissions to different
// shards never contend: the coordinator lock is not taken here, so ingest
// continues while a recompute runs. The ground-truth Unfair flag of
// incoming ratings is ignored — a live system has no oracle.
func (s *Service) SubmitAck(ctx context.Context, product, rater string, value, day float64) (wal.Ack, error) {
	return s.store.Submit(ctx, product, rater, value, day)
}

// Checkpoint forces a snapshot + log compaction of every shard now. It is
// a no-op on a non-durable service. A ctx already cancelled when the
// store is reached skips the compaction (the logs keep growing until the
// next trigger).
func (s *Service) Checkpoint(ctx context.Context) error {
	return s.store.Checkpoint(ctx)
}

// Close flushes and closes every shard WAL (if any). The service rejects
// further durable submissions afterwards.
func (s *Service) Close() error {
	return s.store.Close()
}

// Ready reports whether the service is fully healthy: no shard WAL (if
// configured) has a sticky storage failure and the last aggregate
// recompute did not fail. Any departure from full health — including
// degraded-but-serving states — is an error here; the /readyz probe uses
// the finer-grained Health instead.
func (s *Service) Ready() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := s.store.WALErr(); err != nil {
		return fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	if s.stale && s.staleErr != nil {
		return fmt.Errorf("server: aggregates stale: %v", s.staleErr)
	}
	return nil
}

// Health statuses, in decreasing order of health. A degraded service keeps
// serving (load balancers should keep routing to it, operators should
// look at it); a not-ready service must be taken out of rotation.
const (
	StatusReady    = "ready"
	StatusDegraded = "degraded"
	StatusNotReady = "not-ready"
)

// Health is the structured readiness report behind /readyz.
type Health struct {
	// Status is StatusReady, StatusDegraded, or StatusNotReady.
	Status string `json:"status"`
	// Durability is the current Submit ack mode: "durable" under healthy
	// WALs, "pending" while any shard's fsync circuit breaker is open
	// (writes are logged and group-committed by the breaker's probe, but a
	// power loss may drop the tail), or "none" for an in-memory service.
	Durability string `json:"durability"`
	// Reasons lists why the service is not fully ready (empty when ready).
	Reasons []string `json:"reasons,omitempty"`
}

// Health classifies the service state for the /readyz probe:
//
//	not-ready — a shard WAL has a sticky failure; durable submissions on
//	            it are being rejected. Serve 503, pull from rotation.
//	degraded  — serving, but below full fidelity: the last recompute
//	            failed (aggregates stale) or an fsync breaker is open
//	            (acks pending). Serve 200 with the reasons as a warning.
//	ready     — full fidelity.
func (s *Service) Health() Health {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h := Health{Status: StatusReady, Durability: "none"}
	if s.store.Durable() {
		h.Durability = "durable"
		if err := s.store.WALErr(); err != nil {
			h.Status = StatusNotReady
			h.Reasons = append(h.Reasons, fmt.Sprintf("wal failed: %v", err))
			return h
		}
		if s.store.WALDegraded() {
			h.Status = StatusDegraded
			h.Durability = wal.AckPending.String()
			h.Reasons = append(h.Reasons, "fsync breaker open: submissions acknowledged durability=pending")
		}
	}
	if s.stale && s.staleErr != nil {
		h.Status = StatusDegraded
		h.Reasons = append(h.Reasons, fmt.Sprintf("aggregates stale: %v", s.staleErr))
	}
	return h
}

// Products returns the registered product IDs.
func (s *Service) Products() []string {
	return s.store.Products()
}

// RatingCount returns the number of ratings recorded for the product.
func (s *Service) RatingCount(product string) (int, error) {
	return s.store.RatingCount(product)
}

// Shards returns the storage shard count.
func (s *Service) Shards() int {
	return s.store.Shards()
}

// freshRLock returns holding the read lock with the aggregate cache
// refreshed if it was dirty. Readers therefore serve the newest table
// computed no later than their own start — when the cache is clean they
// proceed concurrently under RLock and never serialize on the write lock.
//
// On a non-nil error the read lock is NOT held: the caller's ctx was
// cancelled, either while queued for the lock or mid-recompute. The
// half-finished recompute's epoch checkpoints stay in engState and the
// shards' dirty watermarks are restored, so the cancelled work is resumed
// — not redone — by the next reader.
func (s *Service) freshRLock(ctx context.Context) error {
	s.mu.RLock()
	if !s.store.Dirty() {
		return nil
	}
	s.mu.RUnlock()
	s.mu.Lock()
	err := s.refreshLocked(ctx)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	s.mu.RLock()
	return nil
}

// Scores returns the product's per-period aggregated ratings under the
// service's scheme, recomputing if ratings arrived since the last call.
func (s *Service) Scores(ctx context.Context, product string) ([]float64, error) {
	if err := s.freshRLock(ctx); err != nil {
		return nil, err
	}
	defer s.mu.RUnlock()
	if !s.store.Has(product) {
		return nil, fmt.Errorf("%w: %q", ErrUnknownProduct, product)
	}
	scores := s.cached[product]
	out := make([]float64, len(scores))
	copy(out, scores)
	return out, nil
}

// Report is the defense-side view of one product.
type Report struct {
	Product string    `json:"product"`
	Ratings int       `json:"ratings"`
	Scores  []float64 `json:"scores"`
	// Suspicious counts the ratings the P-scheme marked (0 and false for
	// other schemes).
	Suspicious    int  `json:"suspicious"`
	HasSuspicious bool `json:"hasSuspicious"`
	// Stale is set when the last aggregate recompute failed (the scheme
	// panicked) and Scores is the last successfully computed table —
	// degraded service rather than no service.
	Stale bool `json:"stale,omitempty"`
	// Memo reports the engine memo plane's cache counters (P-scheme only).
	Memo *MemoStats `json:"memo,omitempty"`
}

// MemoStats mirrors the engine's process-wide memo-plane counters: lookups
// served from cache, lookups that fell through to analysis, and cached
// entries dropped because a product's series changed. The values are
// cumulative since process start, so operators diff successive reports the
// same way the deterministic counting tests do.
type MemoStats struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Invalidations uint64 `json:"invalidations"`
}

// Inspect returns the defense report for a product. Suspicious-mark data
// is only available when the service runs the P-scheme. The rating count
// is live (straight from the product's shard) even when Scores is stale.
func (s *Service) Inspect(ctx context.Context, product string) (Report, error) {
	if err := s.freshRLock(ctx); err != nil {
		return Report{}, err
	}
	defer s.mu.RUnlock()
	n, err := s.store.RatingCount(product)
	if err != nil {
		return Report{}, err
	}
	rep := Report{
		Product: product,
		Ratings: n,
		Scores:  append([]float64(nil), s.cached[product]...),
		Stale:   s.stale,
	}
	if s.pResult != nil {
		rep.HasSuspicious = true
		for _, m := range s.pResult.Suspicious[product] {
			if m {
				rep.Suspicious++
			}
		}
		es := engine.Stats()
		rep.Memo = &MemoStats{
			Hits:          es.MemoHits,
			Misses:        es.MemoMisses,
			Invalidations: es.MemoInvalidated,
		}
	}
	return rep, nil
}

// Trust returns the current trust in a rater (0.5 for unknown raters, and
// always 0.5 when the scheme is not the P-scheme). A cancelled ctx returns
// the neutral prior rather than an error — trust is advisory and the
// caller already chose not to wait — but the skipped refresh is logged
// like Scores/Inspect surface theirs, never swallowed. A recompute that
// fails outright (scheme panic) serves the prior trust from the last good
// evaluation, mirroring the stale-table degradation of Scores.
func (s *Service) Trust(ctx context.Context, rater string) float64 {
	if err := s.freshRLock(ctx); err != nil {
		s.logf("server: trust(%q): stale-cache refresh abandoned, serving neutral prior: %v", rater, err)
		return 0.5
	}
	defer s.mu.RUnlock()
	if s.pResult == nil {
		return 0.5
	}
	return s.pResult.Trust.Trust(rater)
}

// refreshLocked recomputes aggregates if ratings arrived. Callers must
// hold the write lock. It takes a consistent cut over every shard
// (store.BeginRecompute) — the cut consumes the shards' dirty watermarks,
// so a successful recompute covers exactly the dirtiness it observed. A
// panicking scheme does not take the service down: the previous table
// keeps being served, reports carry Stale, Ready fails, and the next
// submission triggers another attempt.
//
// A ctx cancellation mid-recompute returns the error without consuming
// dirtiness and without marking the service stale: the engine checkpoints
// completed so far stay in engState, the shards' watermarks are restored
// (store.AbortRecompute), and the next caller with a live context resumes
// from where this one stopped.
func (s *Service) refreshLocked(ctx context.Context) error {
	v := s.store.BeginRecompute()
	if !v.Dirty() {
		return nil
	}
	evalStart := time.Now()
	table, pRes, err := s.evaluateLocked(ctx, v)
	s.evalSeconds.Observe(time.Since(evalStart).Seconds())
	if err != nil && ctx.Err() != nil {
		s.store.AbortRecompute(v)
		return err
	}
	if err != nil {
		s.stale = true
		s.staleErr = err
		// The engine state may hold checkpoints from a half-finished
		// resume; drop it so the retry starts from a clean slate (the
		// cost of one cold evaluation, only on the failure path).
		s.engState = nil
		s.logf("server: aggregate recompute failed, serving stale table: %v", err)
		return nil
	}
	s.cached = table
	s.pResult = pRes
	s.stale = false
	s.staleErr = nil
	return nil
}

// evaluateLocked runs the scheme over the cut's combined dataset,
// converting a panic into an error. Callers must hold the write lock.
// Under the P-scheme it resumes the epoch-checkpointed engine: the cut's
// dataset is rebuilt from shard partitions each time, but it carries the
// same product list and horizon, so engine.EvalState.Matches recognizes it
// and epochs before epoch(v.DirtyFrom) are reused from the previous
// evaluation's checkpoints — steady-state recompute cost is proportional
// to the invalidated epoch suffix plus one final per-product pass, not the
// full history.
func (s *Service) evaluateLocked(ctx context.Context, v *store.RecomputeView) (table agg.Table, pRes *agg.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			table, pRes = nil, nil
			err = fmt.Errorf("scheme %s panicked: %v", s.scheme.Name(), r)
		}
	}()
	if p, ok := s.scheme.(*agg.PScheme); ok {
		if s.engState == nil {
			s.engState = engine.NewState()
		}
		s.engState.Invalidate(v.DirtyFrom)
		res, rerr := p.Engine().Resume(ctx, s.engState, v.Data)
		if rerr != nil {
			return nil, nil, rerr
		}
		t := agg.Table(res.Table)
		return t, &agg.Result{Table: t, Suspicious: res.Suspicious, Trust: res.Trust}, nil
	}
	return s.scheme.Aggregates(v.Data), nil, nil
}
