// Package server wraps the reliable rating aggregation system in an online
// service: ratings are submitted as they happen, aggregates are recomputed
// lazily under a pluggable defense scheme, and the P-scheme's suspicious
// marks and rater trust are inspectable — the deployment shape a production
// rating system (the paper's motivating setting) would use.
//
// The service is optionally durable: constructed with Open it writes every
// accepted rating to a write-ahead log (internal/wal) before mutating
// in-memory state, periodically checkpoints the full dataset, and on boot
// replays snapshot + log so rating history — and with it the P-scheme's
// beta trust in every rater — survives crashes. An attacker cannot reset
// their trust by crashing the service.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"sync"
	"time"

	"repro/internal/agg"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/wal"
)

// Errors returned by the rating service.
var (
	// ErrUnknownProduct indicates a rating or query for an unregistered
	// product.
	ErrUnknownProduct = errors.New("server: unknown product")
	// ErrBadRating indicates an out-of-range or non-finite value or day.
	ErrBadRating = errors.New("server: bad rating")
	// ErrDuplicateRating indicates a rater rating the same product twice
	// (the one-rating-per-rater-per-object rule of Eq. 7).
	ErrDuplicateRating = errors.New("server: duplicate rating")
	// ErrUnavailable indicates the durable log rejected the write; the
	// rating was NOT accepted and the client should retry after the
	// operator restores storage (HTTP 503).
	ErrUnavailable = errors.New("server: storage unavailable")
)

// Service is a thread-safe online rating system. The zero value is not
// usable; construct with New (in-memory) or Open (durable).
type Service struct {
	mu     sync.RWMutex
	data   *dataset.Dataset
	scheme agg.Scheme
	seen   map[string]map[string]bool // product → rater → rated?
	// dirtyFrom is the earliest rating day accepted since the last
	// successful recompute (+Inf = cache clean). It replaces a whole-table
	// dirty bit: under the P-scheme only the trust epochs at or after
	// epoch(dirtyFrom) are re-evaluated, the rest resume from engState's
	// checkpoints.
	dirtyFrom float64
	cached    agg.Table
	pResult   *agg.Result // set when scheme is the P-scheme
	// engState holds the P-scheme engine's per-epoch trust checkpoints
	// across recomputes (nil for other schemes, or after a failed
	// recompute — the next attempt then starts cold).
	engState *engine.EvalState

	// Durability (nil/zero for a purely in-memory service).
	wal           *wal.WAL
	snapshotEvery int
	sinceSnapshot int

	// Degradation: when a recompute panics, cached holds the last good
	// table, stale is set, and staleErr records the cause until a later
	// recompute succeeds.
	stale    bool
	staleErr error

	logger *log.Logger
	now    func() time.Time
}

// New creates an in-memory (non-durable) service for the given products,
// aggregating with scheme over a horizon of horizonDays.
func New(scheme agg.Scheme, horizonDays float64, products []string) (*Service, error) {
	if scheme == nil {
		return nil, errors.New("server: nil scheme")
	}
	if horizonDays <= 0 || math.IsInf(horizonDays, 0) || math.IsNaN(horizonDays) {
		return nil, fmt.Errorf("server: horizon %v", horizonDays)
	}
	if len(products) == 0 {
		return nil, errors.New("server: no products")
	}
	d := &dataset.Dataset{HorizonDays: horizonDays}
	seen := make(map[string]map[string]bool, len(products))
	for _, id := range products {
		if _, dup := seen[id]; dup {
			return nil, fmt.Errorf("server: duplicate product %q", id)
		}
		d.Products = append(d.Products, dataset.Product{ID: id})
		seen[id] = make(map[string]bool)
	}
	return &Service{
		data:      d,
		scheme:    scheme,
		seen:      seen,
		dirtyFrom: 0, // everything dirty: first read computes the table
		logger:    log.New(io.Discard, "", 0),
		now:       time.Now,
	}, nil
}

// WALOptions configures the durable variant of the service.
type WALOptions struct {
	// Dir is the WAL directory (ignored when FS is set).
	Dir string
	// FS overrides the filesystem the WAL writes through — used by tests
	// to inject faults (internal/faultfs). Defaults to wal.OSDir(Dir).
	FS wal.FS
	// SyncEvery and SyncInterval set the group-commit policy; see
	// wal.Options. Zero SyncEvery means fsync on every append.
	SyncEvery    int
	SyncInterval time.Duration
	// StallThreshold arms the WAL's fsync-latency circuit breaker: a
	// successful fsync slower than this trips the breaker and flips Submit
	// acks to durability=pending until a background probe observes a fast
	// fsync again. Zero disables the breaker. ProbeInterval sets how often
	// the open breaker probes (and group-commits pending records); zero
	// means the wal package default.
	StallThreshold time.Duration
	ProbeInterval  time.Duration
	// SnapshotEvery checkpoints the dataset and resets the log after this
	// many accepted ratings, bounding recovery time. 0 disables automatic
	// snapshots (the log grows until Close).
	SnapshotEvery int
}

// RecoveryReport describes what a durable boot found on disk.
type RecoveryReport struct {
	// SnapshotRatings and ReplayedRatings count ratings restored from the
	// checkpoint and from the log tail, respectively.
	SnapshotRatings int
	ReplayedRatings int
	// DuplicateRecords counts log records that exactly matched a rating
	// already restored — the benign artifact of a crash between snapshot
	// publication and log reset, deduplicated silently.
	DuplicateRecords int
	// SkippedRecords counts records that failed validation (unknown
	// product, out-of-range value or day, conflicting duplicate) and were
	// dropped; SkipReasons holds the first few, for logs.
	SkippedRecords int
	SkipReasons    []string
	// TruncatedBytes counts torn log-tail bytes discarded by the WAL.
	TruncatedBytes int64
}

// maxSkipReasons bounds the per-boot skip-reason sample in RecoveryReport.
const maxSkipReasons = 16

// Open creates a durable service backed by a write-ahead log in walDir
// with strict durability defaults (fsync every append, snapshot every
// 4096 ratings). It replays any existing snapshot + log before returning,
// so the service resumes exactly where a crashed predecessor stopped.
//
//lint:ignore ctxfirst boot-time recovery precedes serving; there is no request context to propagate and a partial replay must not be served
func Open(scheme agg.Scheme, horizonDays float64, products []string, walDir string) (*Service, *RecoveryReport, error) {
	return OpenWAL(scheme, horizonDays, products, WALOptions{Dir: walDir, SnapshotEvery: 4096})
}

// OpenWAL is Open with explicit durability options.
//
//lint:ignore ctxfirst boot-time recovery precedes serving; there is no request context to propagate and a partial replay must not be served
func OpenWAL(scheme agg.Scheme, horizonDays float64, products []string, opts WALOptions) (*Service, *RecoveryReport, error) {
	s, err := New(scheme, horizonDays, products)
	if err != nil {
		return nil, nil, err
	}
	fsys := opts.FS
	if fsys == nil {
		if opts.Dir == "" {
			return nil, nil, errors.New("server: WAL dir required")
		}
		fsys, err = wal.OSDir(opts.Dir)
		if err != nil {
			return nil, nil, fmt.Errorf("server: open WAL dir: %w", err)
		}
	}
	w, rec, err := wal.Open(fsys, wal.Options{
		SyncEvery:      opts.SyncEvery,
		SyncInterval:   opts.SyncInterval,
		StallThreshold: opts.StallThreshold,
		ProbeInterval:  opts.ProbeInterval,
	})
	if err != nil {
		return nil, nil, err
	}
	report := &RecoveryReport{TruncatedBytes: rec.TruncatedBytes}
	if rec.Snapshot != nil {
		for _, p := range rec.Snapshot.Products {
			for _, r := range p.Ratings {
				s.recoverRating(p.ID, r.Rater, r.Value, r.Day, &report.SnapshotRatings, report)
			}
		}
	}
	for _, r := range rec.Records {
		s.recoverRating(r.Product, r.Rater, r.Value, r.Day, &report.ReplayedRatings, report)
	}
	s.wal = w
	s.snapshotEvery = opts.SnapshotEvery
	s.sinceSnapshot = len(rec.Records)
	return s, report, nil
}

// recoverRating applies one recovered rating through the same validation
// as Submit, folding the outcome into the recovery report. An exact
// duplicate (same product, rater, value, day) is the expected residue of
// a crash mid-Compact and is dropped silently; anything else invalid is
// counted and sampled as a skip.
func (s *Service) recoverRating(product, rater string, value, day float64, applied *int, report *RecoveryReport) {
	err := s.applyLocked(product, rater, value, day)
	switch {
	case err == nil:
		*applied++
	case errors.Is(err, ErrDuplicateRating) && s.hasExactRating(product, rater, value, day):
		report.DuplicateRecords++
	default:
		report.SkippedRecords++
		if len(report.SkipReasons) < maxSkipReasons {
			report.SkipReasons = append(report.SkipReasons,
				fmt.Sprintf("%s/%s value=%v day=%v: %v", product, rater, value, day, err))
		}
	}
}

// hasExactRating reports whether rater's recorded rating on product has
// exactly this value and day.
//
//lint:ignore lockheld only called from recoverRating during OpenWAL, before the Service is returned to any other goroutine
func (s *Service) hasExactRating(product, rater string, value, day float64) bool {
	p, err := s.data.Product(product)
	if err != nil {
		return false
	}
	for _, r := range p.Ratings {
		if r.Rater == rater {
			//lint:ignore floateq WAL replay dedup is bit-exact by design: a re-replayed record carries the identical float bits, anything else is a conflicting duplicate
			return r.Value == value && r.Day == day
		}
	}
	return false
}

// SetLogger directs the service's operational log (request middleware,
// degraded-mode recomputes, snapshot failures). The default discards.
func (s *Service) SetLogger(l *log.Logger) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if l == nil {
		l = log.New(io.Discard, "", 0)
	}
	s.logger = l
}

func (s *Service) logf(format string, args ...any) {
	s.mu.RLock()
	l := s.logger
	s.mu.RUnlock()
	l.Printf(format, args...)
}

// Load seeds the service with an existing dataset (e.g. history read from
// disk), replacing all current ratings. On a durable service the loaded
// dataset is immediately checkpointed so it survives a crash.
func (s *Service) Load(ctx context.Context, d *dataset.Dataset) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	seen := make(map[string]map[string]bool, len(d.Products))
	for _, p := range d.Products {
		m := make(map[string]bool, len(p.Ratings))
		for _, r := range p.Ratings {
			if m[r.Rater] {
				return fmt.Errorf("%w: rater %q on %q", ErrDuplicateRating, r.Rater, p.ID)
			}
			m[r.Rater] = true
		}
		seen[p.ID] = m
	}
	clone := d.Clone()
	if s.wal != nil {
		if err := s.wal.Compact(clone); err != nil {
			return fmt.Errorf("%w: checkpoint loaded dataset: %v", ErrUnavailable, err)
		}
		s.sinceSnapshot = 0
	}
	s.data = clone
	s.seen = seen
	s.markDirtyLocked(0) // a wholesale replacement invalidates everything
	s.engState = nil     // drop checkpoints computed for the old history
	return nil
}

// markDirtyLocked records that a rating on the given day arrived: every
// epoch from epoch(day) on must be re-evaluated before the next read.
func (s *Service) markDirtyLocked(day float64) {
	if day < s.dirtyFrom {
		s.dirtyFrom = day
	}
}

// dirtyLocked reports whether the cached table is out of date.
func (s *Service) dirtyLocked() bool { return !math.IsInf(s.dirtyFrom, 1) }

// Submit records one rating, durably if the service has a WAL. It is
// SubmitAck with the durability level discarded — callers that surface ack
// semantics to clients (the HTTP handler) use SubmitAck directly.
func (s *Service) Submit(ctx context.Context, product, rater string, value, day float64) error {
	_, err := s.SubmitAck(ctx, product, rater, value, day)
	return err
}

// SubmitAck records one rating, durably if the service has a WAL: the
// rating is appended (and fsynced per the group-commit policy) before any
// in-memory state changes, so an acknowledgement implies the rating will
// survive a crash and a storage failure surfaces as ErrUnavailable rather
// than a silent ack. The returned Ack qualifies the durability promise:
// AckDurable means the record is covered by a completed fsync (or by the
// group-commit policy's bounded window); AckPending means the WAL's fsync
// circuit breaker is open — the record is written and will be group-
// committed by the breaker's probe, but a power loss before then may drop
// it. A cancelled ctx sheds the request before any WAL write. The
// ground-truth Unfair flag of incoming ratings is ignored — a live system
// has no oracle.
func (s *Service) SubmitAck(ctx context.Context, product, rater string, value, day float64) (wal.Ack, error) {
	// NaN fails every ordered comparison, so explicit finiteness checks
	// must come first: without them a NaN value or day sails past the
	// range guards and poisons every downstream aggregate.
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return wal.AckDurable, fmt.Errorf("%w: non-finite value %v", ErrBadRating, value)
	}
	if math.IsNaN(day) || math.IsInf(day, 0) {
		return wal.AckDurable, fmt.Errorf("%w: non-finite day %v", ErrBadRating, day)
	}
	if value < dataset.MinValue || value > dataset.MaxValue {
		return wal.AckDurable, fmt.Errorf("%w: value %v", ErrBadRating, value)
	}
	if rater == "" {
		return wal.AckDurable, fmt.Errorf("%w: empty rater", ErrBadRating)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// A request whose deadline expired while queued on the lock is shed
	// before it costs an fsync; nothing has been written for it yet.
	if err := ctx.Err(); err != nil {
		return wal.AckDurable, err
	}
	if err := s.checkLocked(product, rater, day); err != nil {
		return wal.AckDurable, err
	}
	ack := wal.AckDurable
	if s.wal != nil {
		rec := wal.Record{
			Product: product, Rater: rater, Value: value, Day: day,
			ReceivedUnixNano: s.now().UnixNano(),
		}
		var err error
		ack, err = s.wal.AppendAck(rec)
		if err != nil {
			return ack, fmt.Errorf("%w: %v", ErrUnavailable, err)
		}
	}
	if err := s.applyLocked(product, rater, value, day); err != nil {
		return ack, err // unreachable after checkLocked; kept for safety
	}
	s.maybeSnapshotLocked()
	return ack, nil
}

// checkLocked runs the stateful Submit validations (day range, product
// existence, duplicate rater) without mutating anything.
func (s *Service) checkLocked(product, rater string, day float64) error {
	if day < 0 || day >= s.data.HorizonDays {
		return fmt.Errorf("%w: day %v outside [0,%v)", ErrBadRating, day, s.data.HorizonDays)
	}
	if _, err := s.data.Product(product); err != nil {
		return fmt.Errorf("%w: %q", ErrUnknownProduct, product)
	}
	if s.seen[product][rater] {
		return fmt.Errorf("%w: rater %q on %q", ErrDuplicateRating, rater, product)
	}
	return nil
}

// applyLocked validates and applies one rating to in-memory state. It is
// the single mutation path shared by live submission and WAL replay, so
// recovered state is governed by exactly the live rules.
func (s *Service) applyLocked(product, rater string, value, day float64) error {
	if math.IsNaN(value) || math.IsInf(value, 0) || value < dataset.MinValue || value > dataset.MaxValue {
		return fmt.Errorf("%w: value %v", ErrBadRating, value)
	}
	if rater == "" {
		return fmt.Errorf("%w: empty rater", ErrBadRating)
	}
	if math.IsNaN(day) || math.IsInf(day, 0) {
		return fmt.Errorf("%w: non-finite day %v", ErrBadRating, day)
	}
	if err := s.checkLocked(product, rater, day); err != nil {
		return err
	}
	p, _ := s.data.Product(product)
	raters, ok := s.seen[product]
	if !ok {
		raters = make(map[string]bool)
		s.seen[product] = raters
	}
	raters[rater] = true
	p.Ratings = p.Ratings.Merge(dataset.Series{{Day: day, Value: value, Rater: rater}})
	s.markDirtyLocked(day)
	return nil
}

// maybeSnapshotLocked checkpoints and compacts the WAL once SnapshotEvery
// ratings have accumulated since the last checkpoint. A checkpoint
// failure is logged, not returned: the triggering rating is already
// durable in the log, the snapshot only bounds recovery time.
func (s *Service) maybeSnapshotLocked() {
	s.sinceSnapshot++
	if s.wal == nil || s.snapshotEvery <= 0 || s.sinceSnapshot < s.snapshotEvery {
		return
	}
	s.sinceSnapshot = 0
	if err := s.wal.Compact(s.data); err != nil {
		s.logger.Printf("server: snapshot failed (will retry in %d ratings): %v", s.snapshotEvery, err)
	}
}

// Checkpoint forces a snapshot + log compaction now. It is a no-op on a
// non-durable service. A ctx already cancelled when the lock is acquired
// skips the compaction (the log keeps growing until the next trigger).
func (s *Service) Checkpoint(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := s.wal.Compact(s.data); err != nil {
		return fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	s.sinceSnapshot = 0
	return nil
}

// Close flushes and closes the WAL (if any). The service rejects further
// durable submissions afterwards.
func (s *Service) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	return s.wal.Close()
}

// Ready reports whether the service is fully healthy: the WAL (if
// configured) has no sticky storage failure and the last aggregate
// recompute did not fail. Any departure from full health — including
// degraded-but-serving states — is an error here; the /readyz probe uses
// the finer-grained Health instead.
func (s *Service) Ready() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.wal != nil {
		if err := s.wal.Err(); err != nil {
			return fmt.Errorf("%w: %v", ErrUnavailable, err)
		}
	}
	if s.stale && s.staleErr != nil {
		return fmt.Errorf("server: aggregates stale: %v", s.staleErr)
	}
	return nil
}

// Health statuses, in decreasing order of health. A degraded service keeps
// serving (load balancers should keep routing to it, operators should
// look at it); a not-ready service must be taken out of rotation.
const (
	StatusReady    = "ready"
	StatusDegraded = "degraded"
	StatusNotReady = "not-ready"
)

// Health is the structured readiness report behind /readyz.
type Health struct {
	// Status is StatusReady, StatusDegraded, or StatusNotReady.
	Status string `json:"status"`
	// Durability is the current Submit ack mode: "durable" under a healthy
	// WAL, "pending" while the fsync circuit breaker is open (writes are
	// logged and group-committed by the breaker's probe, but a power loss
	// may drop the tail), or "none" for an in-memory service.
	Durability string `json:"durability"`
	// Reasons lists why the service is not fully ready (empty when ready).
	Reasons []string `json:"reasons,omitempty"`
}

// Health classifies the service state for the /readyz probe:
//
//	not-ready — the WAL has a sticky failure; durable submissions are
//	            being rejected. Serve 503, pull from rotation.
//	degraded  — serving, but below full fidelity: the last recompute
//	            failed (aggregates stale) or the fsync breaker is open
//	            (acks pending). Serve 200 with the reasons as a warning.
//	ready     — full fidelity.
func (s *Service) Health() Health {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h := Health{Status: StatusReady, Durability: "none"}
	if s.wal != nil {
		h.Durability = "durable"
		if err := s.wal.Err(); err != nil {
			h.Status = StatusNotReady
			h.Reasons = append(h.Reasons, fmt.Sprintf("wal failed: %v", err))
			return h
		}
		if s.wal.Degraded() {
			h.Status = StatusDegraded
			h.Durability = wal.AckPending.String()
			h.Reasons = append(h.Reasons, "fsync breaker open: submissions acknowledged durability=pending")
		}
	}
	if s.stale && s.staleErr != nil {
		h.Status = StatusDegraded
		h.Reasons = append(h.Reasons, fmt.Sprintf("aggregates stale: %v", s.staleErr))
	}
	return h
}

// Products returns the registered product IDs.
func (s *Service) Products() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.data.ProductIDs()
}

// RatingCount returns the number of ratings recorded for the product.
func (s *Service) RatingCount(product string) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, err := s.data.Product(product)
	if err != nil {
		return 0, fmt.Errorf("%w: %q", ErrUnknownProduct, product)
	}
	return len(p.Ratings), nil
}

// freshRLock returns holding the read lock with the aggregate cache
// refreshed if it was dirty. Readers therefore serve the newest table
// computed no later than their own start — when the cache is clean they
// proceed concurrently under RLock and never serialize on the write lock.
//
// On a non-nil error the read lock is NOT held: the caller's ctx was
// cancelled, either while queued for the lock or mid-recompute. The
// half-finished recompute's epoch checkpoints stay in engState and the
// dirty range is preserved, so the cancelled work is resumed — not
// redone — by the next reader.
func (s *Service) freshRLock(ctx context.Context) error {
	s.mu.RLock()
	if !s.dirtyLocked() {
		return nil
	}
	s.mu.RUnlock()
	s.mu.Lock()
	err := s.refreshLocked(ctx)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	s.mu.RLock()
	return nil
}

// Scores returns the product's per-period aggregated ratings under the
// service's scheme, recomputing if ratings arrived since the last call.
func (s *Service) Scores(ctx context.Context, product string) ([]float64, error) {
	if err := s.freshRLock(ctx); err != nil {
		return nil, err
	}
	defer s.mu.RUnlock()
	if _, err := s.data.Product(product); err != nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownProduct, product)
	}
	scores := s.cached[product]
	out := make([]float64, len(scores))
	copy(out, scores)
	return out, nil
}

// Report is the defense-side view of one product.
type Report struct {
	Product string    `json:"product"`
	Ratings int       `json:"ratings"`
	Scores  []float64 `json:"scores"`
	// Suspicious counts the ratings the P-scheme marked (0 and false for
	// other schemes).
	Suspicious    int  `json:"suspicious"`
	HasSuspicious bool `json:"hasSuspicious"`
	// Stale is set when the last aggregate recompute failed (the scheme
	// panicked) and Scores is the last successfully computed table —
	// degraded service rather than no service.
	Stale bool `json:"stale,omitempty"`
}

// Inspect returns the defense report for a product. Suspicious-mark data
// is only available when the service runs the P-scheme.
func (s *Service) Inspect(ctx context.Context, product string) (Report, error) {
	if err := s.freshRLock(ctx); err != nil {
		return Report{}, err
	}
	defer s.mu.RUnlock()
	p, err := s.data.Product(product)
	if err != nil {
		return Report{}, fmt.Errorf("%w: %q", ErrUnknownProduct, product)
	}
	rep := Report{
		Product: product,
		Ratings: len(p.Ratings),
		Scores:  append([]float64(nil), s.cached[product]...),
		Stale:   s.stale,
	}
	if s.pResult != nil {
		rep.HasSuspicious = true
		for _, m := range s.pResult.Suspicious[product] {
			if m {
				rep.Suspicious++
			}
		}
	}
	return rep, nil
}

// Trust returns the current trust in a rater (0.5 for unknown raters, and
// always 0.5 when the scheme is not the P-scheme). A cancelled ctx returns
// the neutral prior rather than an error: trust is advisory and the caller
// already chose not to wait.
func (s *Service) Trust(ctx context.Context, rater string) float64 {
	if err := s.freshRLock(ctx); err != nil {
		return 0.5
	}
	defer s.mu.RUnlock()
	if s.pResult == nil {
		return 0.5
	}
	return s.pResult.Trust.Trust(rater)
}

// refreshLocked recomputes aggregates if ratings arrived. Callers must
// hold the write lock. A panicking scheme does not take the service down:
// the previous table keeps being served, reports carry Stale, Ready
// fails, and the next submission triggers another attempt.
//
// A ctx cancellation mid-recompute returns the error without consuming
// dirtiness and without marking the service stale: the engine checkpoints
// completed so far stay in engState, dirtyFrom is preserved, and the next
// caller with a live context resumes from where this one stopped.
func (s *Service) refreshLocked(ctx context.Context) error {
	if !s.dirtyLocked() {
		return nil
	}
	table, pRes, err := s.evaluateLocked(ctx, s.dirtyFrom)
	if err != nil && ctx.Err() != nil {
		return err
	}
	s.dirtyFrom = math.Inf(1)
	if err != nil {
		s.stale = true
		s.staleErr = err
		// The engine state may hold checkpoints from a half-finished
		// resume; drop it so the retry starts from a clean slate (the
		// cost of one cold evaluation, only on the failure path).
		s.engState = nil
		s.logger.Printf("server: aggregate recompute failed, serving stale table: %v", err)
		return nil
	}
	s.cached = table
	s.pResult = pRes
	s.stale = false
	s.staleErr = nil
	return nil
}

// evaluateLocked runs the scheme over the current dataset, converting a
// panic into an error. Callers must hold the write lock. Under the P-scheme
// it resumes the epoch-checkpointed engine: epochs before epoch(from) are
// reused from the previous evaluation's checkpoints, so steady-state
// recompute cost is proportional to the invalidated epoch suffix plus one
// final per-product pass, not the full history.
func (s *Service) evaluateLocked(ctx context.Context, from float64) (table agg.Table, pRes *agg.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			table, pRes = nil, nil
			err = fmt.Errorf("scheme %s panicked: %v", s.scheme.Name(), r)
		}
	}()
	if p, ok := s.scheme.(*agg.PScheme); ok {
		if s.engState == nil {
			s.engState = engine.NewState()
		}
		s.engState.Invalidate(from)
		res, rerr := p.Engine().Resume(ctx, s.engState, s.data)
		if rerr != nil {
			return nil, nil, rerr
		}
		t := agg.Table(res.Table)
		return t, &agg.Result{Table: t, Suspicious: res.Suspicious, Trust: res.Trust}, nil
	}
	return s.scheme.Aggregates(s.data), nil, nil
}
