package server

import (
	"net/http"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

// httpRoutes is the bounded route vocabulary of the metrics plane. Every
// request is classified into one of these by routeLabel — label values are
// never derived from request strings, so the child set is fixed at
// registration time.
var httpRoutes = []string{
	"submit", "products", "scores", "report", "trust",
	"healthz", "readyz", "metrics", "other",
}

// statusClasses are the response status classes counted per route; index 4
// ("other") catches informational and never-committed statuses.
var statusClasses = []string{"2xx", "3xx", "4xx", "5xx", "other"}

// httpMetrics pre-registers every route × status-class child so the
// per-request path is two map lookups (no allocation) plus lock-free
// atomic recording.
type httpMetrics struct {
	latency map[string]*obs.Histogram
	classes map[string][5]*obs.Counter
}

func newHTTPMetrics(reg *obs.Registry) *httpMetrics {
	m := &httpMetrics{
		latency: make(map[string]*obs.Histogram, len(httpRoutes)),
		classes: make(map[string][5]*obs.Counter, len(httpRoutes)),
	}
	for _, route := range httpRoutes {
		m.latency[route] = reg.Histogram("http_request_seconds",
			"HTTP request latency in seconds, by route.", obs.LatencyBuckets, obs.L("route", route))
		var cs [5]*obs.Counter
		for i, class := range statusClasses {
			cs[i] = reg.Counter("http_requests_total",
				"HTTP requests served, by route and status class.",
				obs.L("route", route), obs.L("class", class))
		}
		m.classes[route] = cs
	}
	return m
}

// observe records one finished request. A nil receiver (metrics disabled)
// records nothing.
func (m *httpMetrics) observe(route string, status int, elapsed time.Duration) {
	if m == nil {
		return
	}
	m.latency[route].Observe(elapsed.Seconds())
	idx := status/100 - 2
	if idx < 0 || idx > 3 {
		idx = 4
	}
	m.classes[route][idx].Inc()
}

// routeLabel classifies a request into the bounded route vocabulary. It
// mirrors the Handler's mux patterns without depending on mux internals,
// so the middleware can label a request even when no pattern matched.
func routeLabel(r *http.Request) string {
	p := r.URL.Path
	switch {
	case p == "/ratings":
		return "submit"
	case p == "/products":
		return "products"
	case strings.HasPrefix(p, "/products/") && strings.HasSuffix(p, "/scores"):
		return "scores"
	case strings.HasPrefix(p, "/products/") && strings.HasSuffix(p, "/report"):
		return "report"
	case strings.HasPrefix(p, "/raters/") && strings.HasSuffix(p, "/trust"):
		return "trust"
	case p == "/healthz":
		return "healthz"
	case p == "/readyz":
		return "readyz"
	case p == "/metrics":
		return "metrics"
	}
	return "other"
}

// EnableMetrics registers the service's observability with reg and turns
// on the /metrics route of Handler: per-route request latency histograms
// and status-class counters in the middleware, aggregate recompute
// duration, the engine memo plane's counters, and the storage layer's
// per-shard submit/WAL/replay metrics. Call it before Handler (the route
// set is fixed when the mux is built); the recording paths themselves are
// lock-free and nil-safe, so a service without metrics pays only nil
// checks. A nil reg is a no-op.
func (s *Service) EnableMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.mu.Lock()
	s.obsReg = reg
	s.evalSeconds = reg.Histogram("engine_eval_seconds",
		"Aggregate recompute (scheme evaluation) duration in seconds.", obs.LatencyBuckets)
	s.mu.Unlock()
	s.httpM.Store(newHTTPMetrics(reg))
	// The engine memo plane keeps process-wide atomic counters; export them
	// at scrape time rather than double-counting on the hot path.
	reg.GaugeFunc("engine_memo_hits", "Memo lookups served from cache.",
		func() float64 { return float64(engine.Stats().MemoHits) })
	reg.GaugeFunc("engine_memo_misses", "Memo lookups that fell through to analysis.",
		func() float64 { return float64(engine.Stats().MemoMisses) })
	reg.GaugeFunc("engine_memo_invalidated", "Memo entries dropped because a product's series changed.",
		func() float64 { return float64(engine.Stats().MemoInvalidated) })
	reg.CounterFunc("engine_products_analyzed_total", "Products analyzed by the detector pool.",
		func() float64 { return float64(engine.Stats().Analyzed) })
	reg.CounterFunc("engine_products_skipped_total", "Detector-pool analyses skipped by the memo plane.",
		func() float64 { return float64(engine.Stats().Skipped) })
	s.store.EnableMetrics(reg)
}

// metricsRegistry returns the registry handed to EnableMetrics, or nil.
func (s *Service) metricsRegistry() *obs.Registry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.obsReg
}
