package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/agg"
	"repro/internal/engine"
)

// TestInspectMemoCounting pins the end-to-end memo contract behind the
// /products/{id}/report counters: on a warmed service whose products share
// no raters, submitting one rating makes exactly one product miss the
// memo — once in the dirty epoch and once in the final pass — while every
// other product replays from cache, and the report JSON carries the
// counters.
func TestInspectMemoCounting(t *testing.T) {
	p := agg.NewPScheme()
	p.Workers = 1
	products := []string{"tv1", "tv2", "tv3", "tv4"}
	svc, err := New(p, 90, products)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Disjoint raters per product, ratings in all three epochs.
	for _, id := range products {
		for i := 0; i < 24; i++ {
			day := float64(i) * 89 / 24
			if err := svc.Submit(ctx, id, fmt.Sprintf("%s-r%d", id, i), 4, day); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := svc.Scores(ctx, "tv1"); err != nil { // warm the memo
		t.Fatal(err)
	}

	before := engine.Stats()
	if err := svc.Submit(ctx, "tv2", "tv2-late", 1, 75); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Scores(ctx, "tv1"); err != nil {
		t.Fatal(err)
	}
	after := engine.Stats()

	if got := after.MemoMisses - before.MemoMisses; got != 2 {
		t.Errorf("misses = %d, want 2 (touched product in dirty epoch + final pass)", got)
	}
	if got := after.MemoHits - before.MemoHits; got != 6 {
		t.Errorf("hits = %d, want 6 (3 untouched products × {dirty epoch, final pass})", got)
	}
	if got := after.Analyzed - before.Analyzed; got != 2 {
		t.Errorf("analyses = %d, want 2 — one submit must cost O(changed product)", got)
	}

	// The counters surface through the inspect endpoint's JSON.
	rw := httptest.NewRecorder()
	svc.Handler().ServeHTTP(rw, httptest.NewRequest("GET", "/products/tv2/report", nil))
	if rw.Code != http.StatusOK {
		t.Fatalf("report status = %d", rw.Code)
	}
	var rep Report
	if err := json.Unmarshal(rw.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Memo == nil {
		t.Fatal("report JSON missing memo counters")
	}
	if rep.Memo.Hits != after.MemoHits || rep.Memo.Misses != after.MemoMisses ||
		rep.Memo.Invalidations != after.MemoInvalidated {
		t.Errorf("report memo = %+v, want engine stats %+v", rep.Memo, after)
	}
}
