package server

import (
	"context"
	"math"
	"sync/atomic"
	"testing"

	"repro/internal/agg"
	"repro/internal/dataset"
)

// flakyScheme aggregates like SA until fail is set, then panics — the
// stand-in for a defense-scheme bug hit by live data.
type flakyScheme struct{ fail *atomic.Bool }

func (f flakyScheme) Name() string { return "flaky" }

func (f flakyScheme) Aggregates(d *dataset.Dataset) agg.Table {
	if f.fail.Load() {
		panic("injected aggregation failure")
	}
	return agg.SAScheme{}.Aggregates(d)
}

// TestDegradedRecomputeServesStale: a panicking scheme must not take the
// service down — reads serve the last good table marked stale, readiness
// fails, and the next recompute after the bug clears heals everything.
func TestDegradedRecomputeServesStale(t *testing.T) {
	var fail atomic.Bool
	s := newService(t, flakyScheme{fail: &fail})
	if err := s.Submit(context.Background(), "tv1", "r1", 4, 1); err != nil {
		t.Fatal(err)
	}
	good, err := s.Scores(context.Background(), "tv1")
	if err != nil || good[0] != 4 {
		t.Fatalf("healthy scores = %v, %v", good, err)
	}
	if err := s.Ready(); err != nil {
		t.Fatalf("healthy Ready = %v", err)
	}

	// Break the scheme, then dirty the cache.
	fail.Store(true)
	if err := s.Submit(context.Background(), "tv1", "r2", 2, 1); err != nil {
		t.Fatal(err)
	}
	stale, err := s.Scores(context.Background(), "tv1")
	if err != nil {
		t.Fatalf("degraded read failed outright: %v", err)
	}
	if stale[0] != 4 {
		t.Errorf("degraded scores = %v, want the last good table (period 0 = 4)", stale)
	}
	rep, err := s.Inspect(context.Background(), "tv1")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Stale {
		t.Error("degraded report not marked stale")
	}
	if rep.Ratings != 2 {
		t.Errorf("degraded report ratings = %d; raw counts must stay live", rep.Ratings)
	}
	if err := s.Ready(); err == nil {
		t.Error("Ready() = nil while serving stale aggregates")
	}
	// A repeated read must serve the cached stale table without invoking
	// the broken scheme again (no panic storm): dirty was consumed.
	if _, err := s.Scores(context.Background(), "tv1"); err != nil {
		t.Fatal(err)
	}

	// Heal the scheme; the next data change triggers a clean recompute.
	fail.Store(false)
	if err := s.Submit(context.Background(), "tv1", "r3", 3, 1); err != nil {
		t.Fatal(err)
	}
	healed, err := s.Scores(context.Background(), "tv1")
	if err != nil {
		t.Fatal(err)
	}
	if want := (4.0 + 2.0 + 3.0) / 3.0; healed[0] != want {
		t.Errorf("healed scores[0] = %v, want %v", healed[0], want)
	}
	rep, _ = s.Inspect(context.Background(), "tv1")
	if rep.Stale {
		t.Error("report still stale after successful recompute")
	}
	if err := s.Ready(); err != nil {
		t.Errorf("Ready after heal = %v", err)
	}
}

// TestSubmitRejectsNonFinite is the NaN/Inf-bypass regression test: NaN
// compares false against every bound, so without explicit finiteness
// checks a NaN value or day is accepted and poisons every aggregate.
func TestSubmitRejectsNonFinite(t *testing.T) {
	s := newService(t, agg.SAScheme{})
	cases := []struct {
		name       string
		value, day float64
	}{
		{"NaN value", math.NaN(), 1},
		{"+Inf value", math.Inf(1), 1},
		{"-Inf value", math.Inf(-1), 1},
		{"NaN day", 4, math.NaN()},
		{"+Inf day", 4, math.Inf(1)},
		{"-Inf day", 4, math.Inf(-1)},
	}
	for _, tc := range cases {
		if err := s.Submit(context.Background(), "tv1", "r-"+tc.name, tc.value, tc.day); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
	if n, _ := s.RatingCount("tv1"); n != 0 {
		t.Fatalf("non-finite submissions mutated state: %d ratings", n)
	}
	// The aggregate path stays NaN-free for rated periods.
	if err := s.Submit(context.Background(), "tv1", "honest", 4, 1); err != nil {
		t.Fatal(err)
	}
	scores, err := s.Scores(context.Background(), "tv1")
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(scores[0]) {
		t.Error("rated period aggregates to NaN")
	}
}
