package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/agg"
)

func newTestServer(t *testing.T, scheme agg.Scheme) *httptest.Server {
	t.Helper()
	svc, err := New(scheme, 90, []string{"tv1", "tv2"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postRating(t *testing.T, ts *httptest.Server, req SubmitRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/ratings", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestHTTPSubmitAndScores(t *testing.T) {
	ts := newTestServer(t, agg.SAScheme{})
	resp := postRating(t, ts, SubmitRequest{Product: "tv1", Rater: "alice", Value: 4.5, Day: 3})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	r, err := http.Get(ts.URL + "/products/tv1/scores")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("scores status = %d", r.StatusCode)
	}
	var scores []float64
	if err := json.NewDecoder(r.Body).Decode(&scores); err != nil {
		t.Fatal(err)
	}
	if len(scores) != 3 || scores[0] != 4.5 {
		t.Errorf("scores = %v", scores)
	}
	// Empty periods surface as −1, not NaN (JSON-safe).
	if scores[1] != -1 || scores[2] != -1 {
		t.Errorf("empty periods = %v, want -1", scores[1:])
	}
}

func TestHTTPStatusMapping(t *testing.T) {
	ts := newTestServer(t, agg.SAScheme{})
	// Bad value → 400.
	if resp := postRating(t, ts, SubmitRequest{Product: "tv1", Rater: "a", Value: 11, Day: 1}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad value status = %d", resp.StatusCode)
	}
	// Unknown product → 404.
	if resp := postRating(t, ts, SubmitRequest{Product: "tvX", Rater: "a", Value: 4, Day: 1}); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown product status = %d", resp.StatusCode)
	}
	// Duplicate → 409.
	postRating(t, ts, SubmitRequest{Product: "tv1", Rater: "dup", Value: 4, Day: 1})
	if resp := postRating(t, ts, SubmitRequest{Product: "tv1", Rater: "dup", Value: 4, Day: 2}); resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate status = %d", resp.StatusCode)
	}
	// Malformed body → 400.
	resp, err := http.Post(ts.URL+"/ratings", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status = %d", resp.StatusCode)
	}
	var errBody errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&errBody); err != nil || errBody.Error == "" {
		t.Errorf("error body = %+v, %v", errBody, err)
	}
}

func TestHTTPProductsAndTrust(t *testing.T) {
	ts := newTestServer(t, agg.SAScheme{})
	r, err := http.Get(ts.URL + "/products")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var ids []string
	if err := json.NewDecoder(r.Body).Decode(&ids); err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Errorf("products = %v", ids)
	}
	r2, err := http.Get(ts.URL + "/raters/unknown/trust")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	var tr map[string]float64
	if err := json.NewDecoder(r2.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if tr["trust"] != 0.5 {
		t.Errorf("trust = %v", tr)
	}
}

func TestHTTPReportUnderAttack(t *testing.T) {
	ts := newTestServer(t, agg.NewPScheme())
	// Build an honest history then a live attack.
	for i := 0; i < 120; i++ {
		day := float64(i) * 0.7
		if day >= 90 {
			break
		}
		resp := postRating(t, ts, SubmitRequest{
			Product: "tv1", Rater: fmt.Sprintf("h%03d", i), Value: 4, Day: day,
		})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("seed submit status = %d", resp.StatusCode)
		}
	}
	for i := 0; i < 40; i++ {
		resp := postRating(t, ts, SubmitRequest{
			Product: "tv1", Rater: fmt.Sprintf("evil%02d", i), Value: 0.5, Day: 45 + float64(i)*0.25,
		})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("attack submit status = %d", resp.StatusCode)
		}
	}
	r, err := http.Get(ts.URL + "/products/tv1/report")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var rep Report
	if err := json.NewDecoder(r.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Ratings < 150 {
		t.Errorf("report ratings = %d", rep.Ratings)
	}
	if !rep.HasSuspicious || rep.Suspicious == 0 {
		t.Errorf("attack not visible in report: %+v", rep)
	}
	// 404 for unknown product.
	r2, err := http.Get(ts.URL + "/products/none/report")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown report status = %d", r2.StatusCode)
	}
}
