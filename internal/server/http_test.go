package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/agg"
	"repro/internal/faultfs"
)

func newTestServer(t *testing.T, scheme agg.Scheme) *httptest.Server {
	t.Helper()
	svc, err := New(scheme, 90, []string{"tv1", "tv2"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postRating(t *testing.T, ts *httptest.Server, req SubmitRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/ratings", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestHTTPSubmitAndScores(t *testing.T) {
	ts := newTestServer(t, agg.SAScheme{})
	resp := postRating(t, ts, SubmitRequest{Product: "tv1", Rater: "alice", Value: 4.5, Day: 3})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	r, err := http.Get(ts.URL + "/products/tv1/scores")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("scores status = %d", r.StatusCode)
	}
	var scores []float64
	if err := json.NewDecoder(r.Body).Decode(&scores); err != nil {
		t.Fatal(err)
	}
	if len(scores) != 3 || scores[0] != 4.5 {
		t.Errorf("scores = %v", scores)
	}
	// Empty periods surface as −1, not NaN (JSON-safe).
	if scores[1] != -1 || scores[2] != -1 {
		t.Errorf("empty periods = %v, want -1", scores[1:])
	}
}

func TestHTTPStatusMapping(t *testing.T) {
	ts := newTestServer(t, agg.SAScheme{})
	// Bad value → 400.
	if resp := postRating(t, ts, SubmitRequest{Product: "tv1", Rater: "a", Value: 11, Day: 1}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad value status = %d", resp.StatusCode)
	}
	// Unknown product → 404.
	if resp := postRating(t, ts, SubmitRequest{Product: "tvX", Rater: "a", Value: 4, Day: 1}); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown product status = %d", resp.StatusCode)
	}
	// Duplicate → 409.
	postRating(t, ts, SubmitRequest{Product: "tv1", Rater: "dup", Value: 4, Day: 1})
	if resp := postRating(t, ts, SubmitRequest{Product: "tv1", Rater: "dup", Value: 4, Day: 2}); resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate status = %d", resp.StatusCode)
	}
	// Malformed body → 400.
	resp, err := http.Post(ts.URL+"/ratings", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status = %d", resp.StatusCode)
	}
	var errBody errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&errBody); err != nil || errBody.Error == "" {
		t.Errorf("error body = %+v, %v", errBody, err)
	}
}

func TestHTTPProductsAndTrust(t *testing.T) {
	ts := newTestServer(t, agg.SAScheme{})
	r, err := http.Get(ts.URL + "/products")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var ids []string
	if err := json.NewDecoder(r.Body).Decode(&ids); err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Errorf("products = %v", ids)
	}
	r2, err := http.Get(ts.URL + "/raters/unknown/trust")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	var tr map[string]float64
	if err := json.NewDecoder(r2.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if tr["trust"] != 0.5 {
		t.Errorf("trust = %v", tr)
	}
}

func TestHTTPReportUnderAttack(t *testing.T) {
	ts := newTestServer(t, agg.NewPScheme())
	// Build an honest history then a live attack.
	for i := 0; i < 120; i++ {
		day := float64(i) * 0.7
		if day >= 90 {
			break
		}
		resp := postRating(t, ts, SubmitRequest{
			Product: "tv1", Rater: fmt.Sprintf("h%03d", i), Value: 4, Day: day,
		})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("seed submit status = %d", resp.StatusCode)
		}
	}
	for i := 0; i < 40; i++ {
		resp := postRating(t, ts, SubmitRequest{
			Product: "tv1", Rater: fmt.Sprintf("evil%02d", i), Value: 0.5, Day: 45 + float64(i)*0.25,
		})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("attack submit status = %d", resp.StatusCode)
		}
	}
	r, err := http.Get(ts.URL + "/products/tv1/report")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var rep Report
	if err := json.NewDecoder(r.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Ratings < 150 {
		t.Errorf("report ratings = %d", rep.Ratings)
	}
	if !rep.HasSuspicious || rep.Suspicious == 0 {
		t.Errorf("attack not visible in report: %+v", rep)
	}
	// 404 for unknown product.
	r2, err := http.Get(ts.URL + "/products/none/report")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown report status = %d", r2.StatusCode)
	}
}

func TestHTTPHealthAndReady(t *testing.T) {
	ts := newTestServer(t, agg.SAScheme{})
	for _, path := range []string{"/healthz", "/readyz"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("%s status = %d, want 200", path, r.StatusCode)
		}
	}
}

// TestHTTPReadyz503OnWALFailure: once the log is poisoned, readiness must
// flip to 503 (so a balancer drains the instance) while liveness stays 200.
func TestHTTPReadyz503OnWALFailure(t *testing.T) {
	fs := faultfs.New()
	svc, _, err := OpenWAL(agg.SAScheme{}, 90, []string{"tv1"}, WALOptions{FS: fs, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	fs.FailSyncsAfter(0)
	resp := postRating(t, ts, SubmitRequest{Product: "tv1", Rater: "a", Value: 4, Day: 1})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit with failed WAL status = %d, want 503", resp.StatusCode)
	}
	r, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz status = %d, want 503", r.StatusCode)
	}
	r2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Errorf("/healthz status = %d, want 200 (process is still alive)", r2.StatusCode)
	}
}

// TestHTTPSubmitBodyLimit: a body past MaxBytesReader's cap must yield
// 413, not an unbounded read.
func TestHTTPSubmitBodyLimit(t *testing.T) {
	ts := newTestServer(t, agg.SAScheme{})
	huge := append([]byte(`{"product":"`), bytes.Repeat([]byte("x"), maxSubmitBody+1024)...)
	huge = append(huge, []byte(`","rater":"a","value":4,"day":1}`)...)
	resp, err := http.Post(ts.URL+"/ratings", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body status = %d, want 413", resp.StatusCode)
	}
}

// TestHTTPSubmitContentType is the writeJSON regression test: the 201
// path used to set Content-Type after WriteHeader, which drops it.
func TestHTTPSubmitContentType(t *testing.T) {
	ts := newTestServer(t, agg.SAScheme{})
	resp := postRating(t, ts, SubmitRequest{Product: "tv1", Rater: "ct", Value: 4, Day: 1})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", got)
	}
}

// TestMiddlewarePanicRecovery drives the middleware with a handler that
// panics: the client gets a JSON 500 and the server goroutine survives.
func TestMiddlewarePanicRecovery(t *testing.T) {
	svc, err := New(agg.SAScheme{}, 90, []string{"tv1"})
	if err != nil {
		t.Fatal(err)
	}
	var logged bytes.Buffer
	svc.SetLogger(log.New(&logged, "", 0))
	h := svc.middleware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("handler exploded")
	}))
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/boom", nil))
	if rw.Code != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", rw.Code)
	}
	var body errorResponse
	if err := json.NewDecoder(rw.Body).Decode(&body); err != nil || body.Error == "" {
		t.Errorf("error body = %+v, %v", body, err)
	}
	if !strings.Contains(logged.String(), "handler exploded") {
		t.Errorf("panic not logged: %q", logged.String())
	}
	if !strings.Contains(logged.String(), "GET /boom") {
		t.Errorf("request line not logged: %q", logged.String())
	}
}
