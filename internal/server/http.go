package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// Handler exposes the service over HTTP:
//
//	POST /ratings                  {"product","rater","value","day"}
//	GET  /products                 list product IDs
//	GET  /products/{id}/scores     per-period aggregates
//	GET  /products/{id}/report     defense report (ratings, marks, scores)
//	GET  /raters/{id}/trust        current beta trust
//
// All responses are JSON. Errors map to 400 (bad input), 404 (unknown
// product) and 409 (duplicate rating).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ratings", s.handleSubmit)
	mux.HandleFunc("GET /products", s.handleProducts)
	mux.HandleFunc("GET /products/{id}/scores", s.handleScores)
	mux.HandleFunc("GET /products/{id}/report", s.handleReport)
	mux.HandleFunc("GET /raters/{id}/trust", s.handleTrust)
	return mux
}

// SubmitRequest is the POST /ratings payload.
type SubmitRequest struct {
	Product string  `json:"product"`
	Rater   string  `json:"rater"`
	Value   float64 `json:"value"`
	Day     float64 `json:"day"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if err := s.Submit(req.Product, req.Rater, req.Value, req.Day); err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, map[string]string{"status": "accepted"})
}

func (s *Service) handleProducts(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.Products())
}

func (s *Service) handleScores(w http.ResponseWriter, r *http.Request) {
	scores, err := s.Scores(r.PathValue("id"))
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, sanitizeNaN(scores))
}

func (s *Service) handleReport(w http.ResponseWriter, r *http.Request) {
	rep, err := s.Inspect(r.PathValue("id"))
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	rep.Scores = sanitizeNaN(rep.Scores)
	writeJSON(w, rep)
}

func (s *Service) handleTrust(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]float64{"trust": s.Trust(r.PathValue("id"))})
}

// sanitizeNaN replaces NaN (periods without ratings) with -1, which JSON
// can carry.
func sanitizeNaN(scores []float64) []float64 {
	out := make([]float64, len(scores))
	for i, v := range scores {
		if v != v { // NaN
			out[i] = -1
			continue
		}
		out[i] = v
	}
	return out
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrUnknownProduct):
		return http.StatusNotFound
	case errors.Is(err, ErrDuplicateRating):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	// Encoding errors after headers are sent can only be logged by the
	// caller's middleware; the payloads here are always encodable.
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: err.Error()})
}
