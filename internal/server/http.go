package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/obs"
)

// maxSubmitBody bounds POST /ratings bodies. A rating submission is a
// four-field JSON object; anything larger is abuse, not data.
const maxSubmitBody = 1 << 16

// Handler exposes the service over HTTP:
//
//	POST /ratings                  {"product","rater","value","day"}
//	GET  /products                 list product IDs
//	GET  /products/{id}/scores     per-period aggregates
//	GET  /products/{id}/report     defense report (ratings, marks, scores)
//	GET  /raters/{id}/trust        current beta trust
//	GET  /healthz                  liveness (always 200 while serving)
//	GET  /readyz                   readiness (200 ready/degraded with JSON detail, 503 + Retry-After on WAL failure)
//
// All responses are JSON. Errors map to 400 (bad input), 404 (unknown
// product), 409 (duplicate rating), 413 (oversized body) and 503 (storage
// unavailable). Every handler runs behind a middleware that recovers
// panics into a 500 and logs one line per request to the service logger.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ratings", s.handleSubmit)
	mux.HandleFunc("GET /products", s.handleProducts)
	mux.HandleFunc("GET /products/{id}/scores", s.handleScores)
	mux.HandleFunc("GET /products/{id}/report", s.handleReport)
	mux.HandleFunc("GET /raters/{id}/trust", s.handleTrust)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	if reg := s.metricsRegistry(); reg != nil {
		// GET /metrics — Prometheus text exposition of the registry handed
		// to EnableMetrics. Scrapes are lock-free with respect to request
		// recording, so the endpoint stays live under saturation.
		mux.Handle("GET /metrics", reg.Handler())
	}
	return s.middleware(mux)
}

// statusWriter captures the response status and size for the request log
// and the metrics plane. Because it wraps the connection's ResponseWriter
// in a new concrete type, it must re-expose the optional interfaces
// handlers probe for: an embedded interface field does not promote the
// underlying writer's Flush/ReadFrom, and without Unwrap an
// http.ResponseController cannot reach the real connection.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

// WriteHeader latches the first explicit status — the one that went on the
// wire — and drops duplicates. Forwarding a second call would only make
// net/http log a "superfluous WriteHeader" for a call this layer has
// already absorbed into its accounting.
func (w *statusWriter) WriteHeader(status int) {
	if w.status != 0 {
		return
	}
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// Write counts response bytes and latches the implicit 200 a handler
// commits by writing the body without calling WriteHeader first.
func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// Flush passes http.Flusher through to the connection so streaming
// handlers keep flushing behind the middleware. Flushing commits the
// response headers, which is an implicit 200 when none was set.
func (w *statusWriter) Flush() {
	f, ok := w.ResponseWriter.(http.Flusher)
	if !ok {
		return
	}
	if w.status == 0 {
		w.status = http.StatusOK
	}
	f.Flush()
}

// ReadFrom keeps the io.ReaderFrom fast path (sendfile for file-backed
// bodies) available through the wrapper while preserving the byte count
// and the implicit-200 latch. io.Copy uses the underlying writer's own
// ReadFrom when it has one.
func (w *statusWriter) ReadFrom(src io.Reader) (int64, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := io.Copy(w.ResponseWriter, src)
	w.bytes += int(n)
	return n, err
}

// Unwrap lets http.ResponseController reach the underlying connection for
// deadline and flush control.
func (w *statusWriter) Unwrap() http.ResponseWriter {
	return w.ResponseWriter
}

// middleware wraps a handler with panic recovery, request logging, and the
// metrics plane's per-route recording. A panicking handler yields a JSON
// 500 (when the response has not started) instead of tearing down the
// connection without a trace. Each request gets a process-unique ID that
// appears in every log line about it.
func (s *Service) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqID := obs.NextRequestID()
		route := routeLabel(r)
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			if p := recover(); p != nil {
				s.logf("http: panic serving %s %s req=%s: %v", r.Method, r.URL.Path, reqID, p)
				if sw.status == 0 {
					s.writeError(sw, http.StatusInternalServerError, errors.New("internal error"))
				}
			}
			elapsed := time.Since(start)
			s.httpM.Load().observe(route, sw.status, elapsed)
			s.logf("http: %s %s → %d (%dB, %v) req=%s",
				r.Method, r.URL.Path, sw.status, sw.bytes, elapsed.Round(time.Microsecond), reqID)
		}()
		next.ServeHTTP(sw, r)
	})
}

// SubmitRequest is the POST /ratings payload.
type SubmitRequest struct {
	Product string  `json:"product"`
	Rater   string  `json:"rater"`
	Value   float64 `json:"value"`
	Day     float64 `json:"day"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxSubmitBody)
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		s.writeError(w, status, fmt.Errorf("decode request: %w", err))
		return
	}
	ack, err := s.SubmitAck(r.Context(), req.Product, req.Rater, req.Value, req.Day)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	// The ack is explicit in every 201: "durable" means the rating survives
	// a crash from this instant; "pending" means the WAL's fsync breaker is
	// open and the rating rides the next group commit — never silently
	// dropped, but a client that requires hard durability can retry later.
	s.writeJSON(w, http.StatusCreated, map[string]string{
		"status":     "accepted",
		"durability": ack.String(),
	})
}

func (s *Service) handleProducts(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, s.Products())
}

func (s *Service) handleScores(w http.ResponseWriter, r *http.Request) {
	scores, err := s.Scores(r.Context(), r.PathValue("id"))
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	s.writeJSON(w, http.StatusOK, sanitizeNaN(scores))
}

func (s *Service) handleReport(w http.ResponseWriter, r *http.Request) {
	rep, err := s.Inspect(r.Context(), r.PathValue("id"))
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	rep.Scores = sanitizeNaN(rep.Scores)
	s.writeJSON(w, http.StatusOK, rep)
}

func (s *Service) handleTrust(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]float64{"trust": s.Trust(r.Context(), r.PathValue("id"))})
}

// handleHealthz is the liveness probe: the process is up and serving.
func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the readiness probe. The JSON body is server.Health;
// the status code separates "pull from rotation" from "keep serving":
//
//	ready     → 200 {"status":"ready",...}
//	degraded  → 200 {"status":"degraded","reasons":[...]} — stale
//	            aggregates or pending-durability acks; the instance keeps
//	            serving, operators get the warning.
//	not-ready → 503 + Retry-After — the WAL is failed, durable writes are
//	            rejected; load balancers drain the instance.
func (s *Service) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	h := s.Health()
	if h.Status == StatusNotReady {
		w.Header().Set("Retry-After", retryAfterSeconds)
		s.writeJSON(w, http.StatusServiceUnavailable, h)
		return
	}
	s.writeJSON(w, http.StatusOK, h)
}

// sanitizeNaN replaces NaN (periods without ratings) with -1, which JSON
// can carry.
func sanitizeNaN(scores []float64) []float64 {
	out := make([]float64, len(scores))
	for i, v := range scores {
		if v != v { // NaN
			out[i] = -1
			continue
		}
		out[i] = v
	}
	return out
}

// retryAfterSeconds is the Retry-After hint attached to every shed or
// unavailable response: long enough for a breaker probe or a recompute to
// finish, short enough that clients re-offer load promptly.
const retryAfterSeconds = "1"

func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrUnknownProduct):
		return http.StatusNotFound
	case errors.Is(err, ErrDuplicateRating):
		return http.StatusConflict
	case errors.Is(err, ErrUnavailable):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client's deadline expired (or it went away) while the request
		// was queued or mid-evaluation; the work was shed, nothing was
		// committed. 503 + Retry-After tells a proxy to re-offer the
		// request when there is budget again.
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// writeJSON sets Content-Type before committing headers (a header set
// after WriteHeader is silently dropped) and logs encoding failures —
// they indicate a programming error or a dead client, neither of which
// should vanish silently.
func (s *Service) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.logf("http: encode response: %v", err)
	}
}

func (s *Service) writeError(w http.ResponseWriter, status int, err error) {
	if status == http.StatusServiceUnavailable || status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", retryAfterSeconds)
	}
	s.writeJSON(w, status, errorResponse{Error: err.Error()})
}
