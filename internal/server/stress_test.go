package server

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/agg"
	"repro/internal/dataset"
	"repro/internal/faultfs"
	"repro/internal/stats"
)

// TestConcurrentStress interleaves Submit, Scores, Inspect, Trust,
// RatingCount, Products and Load across many goroutines on a durable
// service. Run under -race it is the data-race gate for the whole
// submit/recompute/snapshot/read machinery; the closing invariant check
// catches logical corruption (duplicate raters, out-of-range values).
func TestConcurrentStress(t *testing.T) {
	fs := faultfs.New()
	svc, _, err := OpenWAL(agg.SAScheme{}, 90, []string{"tv1", "tv2"}, WALOptions{
		FS: fs, SyncEvery: 8, SnapshotEvery: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	cfg := dataset.DefaultFairConfig()
	cfg.Products = 2
	cfg.HorizonDays = 90
	seedData, err := dataset.GenerateFair(stats.NewRNG(3), cfg)
	if err != nil {
		t.Fatal(err)
	}

	const (
		writers          = 8
		ratingsPerWriter = 40
		readers          = 4
	)
	var writeWG, readWG sync.WaitGroup
	errs := make(chan error, writers+readers+1)
	stop := make(chan struct{}) // closed once all writers (and Load) finish

	for g := 0; g < writers; g++ {
		writeWG.Add(1)
		go func(g int) {
			defer writeWG.Done()
			product := []string{"tv1", "tv2"}[g%2]
			for i := 0; i < ratingsPerWriter; i++ {
				rater := fmt.Sprintf("w%dr%d", g, i)
				if err := svc.Submit(context.Background(), product, rater, float64(i%6), float64(i%90)); err != nil {
					errs <- fmt.Errorf("writer %d: %w", g, err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < readers; g++ {
		readWG.Add(1)
		go func(g int) {
			defer readWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := svc.Scores(context.Background(), "tv1"); err != nil {
					errs <- fmt.Errorf("reader %d scores: %w", g, err)
					return
				}
				if _, err := svc.Inspect(context.Background(), "tv2"); err != nil {
					errs <- fmt.Errorf("reader %d inspect: %w", g, err)
					return
				}
				svc.Trust(context.Background(), fmt.Sprintf("w0r%d", g))
				if _, err := svc.RatingCount("tv1"); err != nil {
					errs <- err
					return
				}
				if got := len(svc.Products()); got != 2 {
					errs <- fmt.Errorf("reader %d products = %d", g, got)
					return
				}
			}
		}(g)
	}
	// One goroutine races Load against the writers: a full dataset swap
	// mid-traffic must neither trip the race detector nor corrupt the
	// duplicate-rater index.
	writeWG.Add(1)
	go func() {
		defer writeWG.Done()
		if err := svc.Load(context.Background(), seedData); err != nil {
			errs <- fmt.Errorf("load: %w", err)
		}
	}()

	writeWG.Wait()
	close(stop)
	readWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Invariants: every product series is duplicate-free and every
	// value/day in range, regardless of interleaving.
	for _, p := range svc.dataView().Products {
		seen := make(map[string]bool, len(p.Ratings))
		for _, r := range p.Ratings {
			if seen[r.Rater] {
				t.Errorf("%s: rater %q appears twice", p.ID, r.Rater)
			}
			seen[r.Rater] = true
			if r.Value < dataset.MinValue || r.Value > dataset.MaxValue {
				t.Errorf("%s: value %v out of range", p.ID, r.Value)
			}
			if r.Day < 0 || r.Day >= 90 {
				t.Errorf("%s: day %v out of range", p.ID, r.Day)
			}
		}
	}
}

// BenchmarkScoresParallel measures the read path under concurrency with a
// clean cache — the case the RLock fast path exists for. Before the
// upgrade-on-dirty pattern every reader took the exclusive lock and
// serialized; now clean reads proceed concurrently.
func BenchmarkScoresParallel(b *testing.B) {
	svc, err := New(agg.SAScheme{}, 90, []string{"tv1", "tv2"})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := svc.Submit(context.Background(), "tv1", fmt.Sprintf("r%d", i), float64(i%6), float64(i%90)); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := svc.Scores(context.Background(), "tv1"); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := svc.Scores(context.Background(), "tv1"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSubmitDurable measures the durable write path end to end
// (validate → WAL append+fsync policy → merge) on the in-memory fault FS.
func BenchmarkSubmitDurable(b *testing.B) {
	for _, syncEvery := range []int{1, 32} {
		b.Run(fmt.Sprintf("syncEvery=%d", syncEvery), func(b *testing.B) {
			svc, _, err := OpenWAL(agg.SAScheme{}, 90, []string{"tv1"}, WALOptions{
				FS: faultfs.New(), SyncEvery: syncEvery,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer svc.Close()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := svc.Submit(context.Background(), "tv1", fmt.Sprintf("r%d", i), 4, float64(i%90)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
