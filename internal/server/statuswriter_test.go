package server

import (
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/agg"
)

// lineCapture collects log lines for assertions; safe for the concurrent
// writes a log.Logger can make.
type lineCapture struct {
	mu    sync.Mutex
	lines []string
}

func (c *lineCapture) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.lines = append(c.lines, strings.TrimRight(string(p), "\n"))
	c.mu.Unlock()
	return len(p), nil
}

// recordingRW is a minimal ResponseWriter that records WriteHeader calls so
// the tests can see exactly what reaches the underlying connection. It also
// implements http.Flusher so the wrapper's pass-through can be observed.
type recordingRW struct {
	header  http.Header
	headers []int // every WriteHeader that reached the connection
	body    strings.Builder
	flushes int
}

func newRecordingRW() *recordingRW { return &recordingRW{header: make(http.Header)} }

func (rw *recordingRW) Header() http.Header { return rw.header }

func (rw *recordingRW) WriteHeader(status int) { rw.headers = append(rw.headers, status) }

func (rw *recordingRW) Write(p []byte) (int, error) { return rw.body.Write(p) }

func (rw *recordingRW) Flush() { rw.flushes++ }

// TestStatusWriterLatch drives the wrapper through the status-commit
// orderings handlers actually produce and asserts two things for each: the
// status the middleware accounts for, and what reached the connection. The
// duplicate-WriteHeader case is the regression pin: the wrapper must latch
// the first status and absorb the second instead of forwarding it for
// net/http to log as superfluous.
func TestStatusWriterLatch(t *testing.T) {
	tests := []struct {
		name        string
		drive       func(w *statusWriter)
		wantStatus  int
		wantBytes   int
		wantHeaders []int // WriteHeader calls that reach the connection
		wantBody    string
	}{
		{
			name:        "explicit status then body",
			drive:       func(w *statusWriter) { w.WriteHeader(201); w.Write([]byte("ok")) },
			wantStatus:  201,
			wantBytes:   2,
			wantHeaders: []int{201},
			wantBody:    "ok",
		},
		{
			name:        "write-only handler is an implicit 200",
			drive:       func(w *statusWriter) { w.Write([]byte("body")) },
			wantStatus:  200,
			wantBytes:   4,
			wantHeaders: nil, // net/http supplies the implicit 200; the wrapper must not
			wantBody:    "body",
		},
		{
			name:        "double WriteHeader latches the first",
			drive:       func(w *statusWriter) { w.WriteHeader(500); w.WriteHeader(200) },
			wantStatus:  500,
			wantHeaders: []int{500},
		},
		{
			name: "WriteHeader after Write is dropped",
			drive: func(w *statusWriter) {
				w.Write([]byte("x"))
				w.WriteHeader(404) // headers already committed by the Write
			},
			wantStatus:  200,
			wantBytes:   1,
			wantHeaders: nil,
			wantBody:    "x",
		},
		{
			name:        "flush-only handler commits an implicit 200",
			drive:       func(w *statusWriter) { w.Flush() },
			wantStatus:  200,
			wantHeaders: nil,
		},
		{
			name: "ReadFrom counts bytes and latches 200",
			drive: func(w *statusWriter) {
				if _, err := w.ReadFrom(strings.NewReader("streamed")); err != nil {
					t.Fatal(err)
				}
			},
			wantStatus: 200,
			wantBytes:  8,
			wantBody:   "streamed",
		},
		{
			name: "ReadFrom after explicit status keeps it",
			drive: func(w *statusWriter) {
				w.WriteHeader(206)
				if _, err := w.ReadFrom(strings.NewReader("part")); err != nil {
					t.Fatal(err)
				}
			},
			wantStatus:  206,
			wantBytes:   4,
			wantHeaders: []int{206},
			wantBody:    "part",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rw := newRecordingRW()
			sw := &statusWriter{ResponseWriter: rw}
			tt.drive(sw)
			if sw.status != tt.wantStatus {
				t.Errorf("accounted status = %d, want %d", sw.status, tt.wantStatus)
			}
			if sw.bytes != tt.wantBytes {
				t.Errorf("accounted bytes = %d, want %d", sw.bytes, tt.wantBytes)
			}
			if len(rw.headers) != len(tt.wantHeaders) {
				t.Errorf("connection saw WriteHeader%v, want %v", rw.headers, tt.wantHeaders)
			} else {
				for i, h := range tt.wantHeaders {
					if rw.headers[i] != h {
						t.Errorf("connection saw WriteHeader%v, want %v", rw.headers, tt.wantHeaders)
						break
					}
				}
			}
			if rw.body.String() != tt.wantBody {
				t.Errorf("connection body = %q, want %q", rw.body.String(), tt.wantBody)
			}
		})
	}
}

// TestStatusWriterFlushPassthrough is the regression test for the embedded-
// interface trap: wrapping the ResponseWriter in a struct hides the
// underlying Flusher unless the wrapper re-implements it. A streaming
// handler behind the full middleware chain must still reach the connection's
// Flush — both via a direct http.Flusher assertion and via
// http.ResponseController, which walks Unwrap.
func TestStatusWriterFlushPassthrough(t *testing.T) {
	svc, err := New(agg.SAScheme{}, 90, []string{"tv1"})
	if err != nil {
		t.Fatal(err)
	}
	svc.SetLogger(log.New(io.Discard, "", 0))

	flushed := make(chan struct{}, 2)
	streaming := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		f, ok := w.(http.Flusher)
		if !ok {
			t.Error("middleware-wrapped writer does not implement http.Flusher")
			return
		}
		io.WriteString(w, "first chunk\n")
		f.Flush()
		flushed <- struct{}{}

		rc := http.NewResponseController(w)
		io.WriteString(w, "second chunk\n")
		if err := rc.Flush(); err != nil {
			t.Errorf("ResponseController.Flush through Unwrap: %v", err)
			return
		}
		flushed <- struct{}{}
	})

	ts := httptest.NewServer(svc.middleware(streaming))
	defer ts.Close()

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(body); got != "first chunk\nsecond chunk\n" {
		t.Errorf("streamed body = %q", got)
	}
	if len(flushed) != 2 {
		t.Errorf("handler completed %d flushes, want 2", len(flushed))
	}
}

// TestStatusWriterFlushWithoutFlusher pins the wrapper's behavior over a
// connection that cannot flush (recordingRW without the method would be one;
// here we hide it behind a plain struct): Flush must be a safe no-op, not a
// panic, because the middleware wraps every writer unconditionally.
func TestStatusWriterFlushWithoutFlusher(t *testing.T) {
	// A writer that is deliberately NOT an http.Flusher.
	bare := struct{ http.ResponseWriter }{ResponseWriter: newRecordingRW()}
	sw := &statusWriter{ResponseWriter: bare}
	sw.Flush() // must not panic
	if sw.status != 0 {
		t.Errorf("no-op Flush committed status %d", sw.status)
	}
}

// TestMiddlewareImplicit200InLog asserts end-to-end that a write-only
// handler is accounted as 200, not 0, by the middleware (the value that
// feeds both the request log and the status-class counters).
func TestMiddlewareImplicit200InLog(t *testing.T) {
	svc, err := New(agg.SAScheme{}, 90, []string{"tv1"})
	if err != nil {
		t.Fatal(err)
	}
	var cap lineCapture
	svc.SetLogger(log.New(&cap, "", 0))

	writeOnly := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "hello")
	})
	rw := httptest.NewRecorder()
	svc.middleware(writeOnly).ServeHTTP(rw, httptest.NewRequest("GET", "/hello", nil))

	if rw.Code != 200 {
		t.Fatalf("response code = %d", rw.Code)
	}
	if len(cap.lines) != 1 {
		t.Fatalf("logged %d lines, want 1: %v", len(cap.lines), cap.lines)
	}
	if !strings.Contains(cap.lines[0], "→ 200 (5B") {
		t.Errorf("request log does not account implicit 200: %q", cap.lines[0])
	}
}
