package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/agg"
	"repro/internal/faultfs"
	"repro/internal/wal"
)

// workloadRating returns the i-th rating of the deterministic recovery
// workload: three products, unique raters, valid values and days.
func workloadRating(i int) (product, rater string, value, day float64) {
	product = fmt.Sprintf("tv%d", i%3)
	rater = fmt.Sprintf("r%04d", i)
	value = float64((i*7)%11) / 2               // 0, 3.5, 1.5 … ∈ [0,5]
	day = math.Mod(float64(i)*1.37+0.11, 89.75) // ∈ [0, 90)
	return
}

var workloadProducts = []string{"tv0", "tv1", "tv2"}

// runWorkload opens a durable service over a fresh fault FS, submits n
// workload ratings, and returns the FS, the final log image, and the log
// size after each accepted rating (the record boundaries).
func runWorkload(t *testing.T, scheme agg.Scheme, n int) (fs *faultfs.FS, logBytes []byte, boundaries []int64) {
	t.Helper()
	fs = faultfs.New()
	svc, _, err := OpenWAL(scheme, 90, workloadProducts, WALOptions{FS: fs, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		p, r, v, d := workloadRating(i)
		if err := svc.Submit(context.Background(), p, r, v, d); err != nil {
			t.Fatalf("workload submit %d: %v", i, err)
		}
		size, err := fs.Size("wal.log")
		if err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, size)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	logBytes, err = fs.ReadFile("wal.log")
	if err != nil {
		t.Fatal(err)
	}
	return fs, logBytes, boundaries
}

// recordsContained counts workload records fully inside the first n log
// bytes.
func recordsContained(boundaries []int64, n int64) int {
	k := 0
	for _, b := range boundaries {
		if b <= n {
			k++
		}
	}
	return k
}

// recoverAt builds the crash image holding the first n log bytes and
// opens a recovered service over it.
func recoverAt(t *testing.T, scheme agg.Scheme, logBytes []byte, n int64) (*Service, *RecoveryReport) {
	t.Helper()
	img := faultfs.New()
	img.WriteFile("wal.log", logBytes[:n])
	svc, rep, err := OpenWAL(scheme, 90, workloadProducts, WALOptions{FS: img, SyncEvery: 1})
	if err != nil {
		t.Fatalf("recover at byte %d: %v", n, err)
	}
	return svc, rep
}

// TestCrashRecoveryEveryByte is the exhaustive kill-anywhere property
// test at small scale: a 60-rating workload, a simulated crash after
// every single byte of the log. Each recovery must yield exactly the
// accepted prefix that fit in the surviving bytes — no torn records
// applied, no phantom ratings, no records lost before the crash point.
func TestCrashRecoveryEveryByte(t *testing.T) {
	const n = 60
	_, logBytes, boundaries := runWorkload(t, agg.SAScheme{}, n)

	// Reference services fed the accepted prefix directly, grown in step
	// with the crash point so each prefix dataset is built exactly once.
	ref, err := New(agg.SAScheme{}, 90, workloadProducts)
	if err != nil {
		t.Fatal(err)
	}
	refK := 0
	for cut := int64(0); cut <= int64(len(logBytes)); cut++ {
		svc, rep := recoverAt(t, agg.SAScheme{}, logBytes, cut)
		wantK := recordsContained(boundaries, cut)
		if rep.ReplayedRatings != wantK {
			t.Fatalf("crash at byte %d: recovered %d ratings, want %d", cut, rep.ReplayedRatings, wantK)
		}
		if rep.SkippedRecords != 0 || rep.DuplicateRecords != 0 {
			t.Fatalf("crash at byte %d: unexpected skips %d / duplicates %d", cut, rep.SkippedRecords, rep.DuplicateRecords)
		}
		for refK < wantK {
			p, r, v, d := workloadRating(refK)
			if err := ref.Submit(context.Background(), p, r, v, d); err != nil {
				t.Fatal(err)
			}
			refK++
		}
		if !reflect.DeepEqual(svc.dataView(), ref.dataView()) {
			t.Fatalf("crash at byte %d: recovered dataset diverges from accepted prefix of %d", cut, wantK)
		}
		svc.Close()
	}
}

// TestCrashRecoveryPropertyP is the full-scale acceptance property: a
// 500-rating workload under the P-scheme, crashes injected at every
// record boundary and at torn offsets inside the following record. Every
// recovery yields a clean prefix, and the recomputed P-scheme scores are
// exactly those of a crash-free run over the same prefix.
func TestCrashRecoveryPropertyP(t *testing.T) {
	const n = 500
	_, logBytes, boundaries := runWorkload(t, agg.NewPScheme(), n)

	// Crash points: byte 0, every record boundary, and two torn offsets
	// inside the record after each boundary.
	cuts := []int64{0}
	for i, b := range boundaries {
		next := int64(len(logBytes))
		if i+1 < len(boundaries) {
			next = boundaries[i+1]
		}
		for _, off := range []int64{b, b + 1, b + (next-b)/2} {
			if off <= int64(len(logBytes)) && off >= b && (off == b || off < next) {
				cuts = append(cuts, off)
			}
		}
	}

	ref, err := New(agg.NewPScheme(), 90, workloadProducts)
	if err != nil {
		t.Fatal(err)
	}
	refK := 0
	// P-scheme evaluation costs a few ms; run the exact-score comparison
	// at every scoreStride-th record boundary and at the final state, and
	// the cheap dataset-prefix comparison at every cut.
	const scoreStride = 10
	for _, cut := range cuts {
		svc, rep := recoverAt(t, agg.NewPScheme(), logBytes, cut)
		wantK := recordsContained(boundaries, cut)
		if rep.ReplayedRatings != wantK || rep.SkippedRecords != 0 || rep.DuplicateRecords != 0 {
			t.Fatalf("crash at byte %d: report %+v, want %d clean replays", cut, rep, wantK)
		}
		for refK < wantK {
			p, r, v, d := workloadRating(refK)
			if err := ref.Submit(context.Background(), p, r, v, d); err != nil {
				t.Fatal(err)
			}
			refK++
		}
		if !reflect.DeepEqual(svc.dataView(), ref.dataView()) {
			t.Fatalf("crash at byte %d: recovered dataset diverges from accepted prefix of %d", cut, wantK)
		}
		atBoundary := cut == 0 || (wantK > 0 && boundaries[wantK-1] == cut)
		if atBoundary && (wantK%scoreStride == 0 || wantK == n) {
			compareScores(t, svc, ref, cut)
		}
		svc.Close()
	}
	if refK != n {
		t.Fatalf("workload only reached %d/%d ratings", refK, n)
	}
}

// compareScores asserts bit-exact P-scheme score equality between the
// recovered service and the crash-free reference.
func compareScores(t *testing.T, got, want *Service, cut int64) {
	t.Helper()
	for _, id := range workloadProducts {
		gs, err := got.Scores(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		ws, err := want.Scores(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if len(gs) != len(ws) {
			t.Fatalf("crash at byte %d: %s has %d periods, want %d", cut, id, len(gs), len(ws))
		}
		for i := range gs {
			if math.Float64bits(gs[i]) != math.Float64bits(ws[i]) {
				t.Fatalf("crash at byte %d: %s period %d score %v, want %v (bit-exact)", cut, id, i, gs[i], ws[i])
			}
		}
	}
}

// TestFsyncFailureDoesNotCorruptState: when the log cannot make a rating
// durable, the client gets an error, in-memory state is untouched, reads
// keep working, and the service reports itself unready.
func TestFsyncFailureDoesNotCorruptState(t *testing.T) {
	fs := faultfs.New()
	svc, _, err := OpenWAL(agg.SAScheme{}, 90, workloadProducts, WALOptions{FS: fs, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		p, r, v, d := workloadRating(i)
		if err := svc.Submit(context.Background(), p, r, v, d); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := svc.Scores(context.Background(), "tv0")

	fs.FailSyncsAfter(0)
	if err := svc.Submit(context.Background(), "tv0", "victim", 4, 10); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("submit with failing fsync = %v, want ErrUnavailable", err)
	}
	if n, _ := svc.RatingCount("tv0"); n != 1 {
		t.Errorf("failed submit mutated state: tv0 has %d ratings, want 1", n)
	}
	// The failed rating's rater is not burned: the duplicate-rater map
	// must not remember a rating that was never accepted.
	fs.ClearFaults()
	// The WAL failure is sticky even after the FS heals — acknowledged-
	// but-unsynced bytes cannot be trusted, so only a restart recovers.
	if err := svc.Submit(context.Background(), "tv0", "victim", 4, 10); !errors.Is(err, ErrUnavailable) {
		t.Errorf("submit after heal = %v, want sticky ErrUnavailable", err)
	}
	if err := svc.Ready(); err == nil {
		t.Error("Ready() = nil on a service with a poisoned WAL")
	}
	after, err := svc.Scores(context.Background(), "tv0")
	if err != nil {
		t.Fatalf("reads must keep working while degraded: %v", err)
	}
	if len(before) != len(after) {
		t.Fatalf("score table reshaped across failed submit: %v → %v", before, after)
	}
	for i := range before {
		if math.Float64bits(before[i]) != math.Float64bits(after[i]) {
			t.Errorf("scores changed across failed submit: %v → %v", before, after)
		}
	}
	svc.Close()

	// A restart over the surviving bytes recovers cleanly. The rejected
	// record's bytes reached the OS before the fsync failed, so recovery
	// may legitimately resurrect it — an error response promises the
	// rating was not silently lost, not that it cannot survive a crash.
	svc2, rep := recoverAt(t, agg.SAScheme{}, mustRead(t, fs, "wal.log"), mustSize(t, fs, "wal.log"))
	defer svc2.Close()
	if rep.SkippedRecords != 0 {
		t.Errorf("restart skipped %d records", rep.SkippedRecords)
	}
	if got := rep.ReplayedRatings; got != 3 && got != 4 {
		t.Errorf("restart recovered %d ratings, want 3 (victim lost) or 4 (victim survived)", got)
	}
	if err := svc2.Ready(); err != nil {
		t.Errorf("restarted service not ready: %v", err)
	}
}

func mustRead(t *testing.T, fs *faultfs.FS, name string) []byte {
	t.Helper()
	data, err := fs.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func mustSize(t *testing.T, fs *faultfs.FS, name string) int64 {
	t.Helper()
	size, err := fs.Size(name)
	if err != nil {
		t.Fatal(err)
	}
	return size
}

// TestSnapshotCompactBoundsLog: with SnapshotEvery=10, 35 ratings leave a
// 5-record log tail behind a 30-rating snapshot, and recovery stitches
// both halves back together.
func TestSnapshotCompactBoundsLog(t *testing.T) {
	fs := faultfs.New()
	svc, _, err := OpenWAL(agg.SAScheme{}, 90, workloadProducts, WALOptions{FS: fs, SyncEvery: 1, SnapshotEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	fullRecord := int64(0)
	for i := 0; i < 35; i++ {
		p, r, v, d := workloadRating(i)
		if err := svc.Submit(context.Background(), p, r, v, d); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			fullRecord = mustSize(t, fs, "wal.log")
		}
	}
	svc.Close()
	if size := mustSize(t, fs, "wal.log"); size > 6*fullRecord {
		t.Errorf("log after compaction = %d bytes; want ≈ 5 records (~%d bytes)", size, 5*fullRecord)
	}

	svc2, rep, err := OpenWAL(agg.SAScheme{}, 90, workloadProducts, WALOptions{FS: fs, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if rep.SnapshotRatings != 30 || rep.ReplayedRatings != 5 {
		t.Errorf("recovery = %d snapshot + %d replayed, want 30 + 5", rep.SnapshotRatings, rep.ReplayedRatings)
	}
	ref, _ := New(agg.SAScheme{}, 90, workloadProducts)
	for i := 0; i < 35; i++ {
		p, r, v, d := workloadRating(i)
		ref.Submit(context.Background(), p, r, v, d)
	}
	for _, id := range workloadProducts {
		got, _ := svc2.Scores(context.Background(), id)
		want, _ := ref.Scores(context.Background(), id)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("%s period %d: recovered score %v, want %v", id, i, got[i], want[i])
			}
		}
	}
}

// TestCrashBetweenSnapshotAndLogReset covers the one crash window where
// the snapshot and the log overlap: the snapshot is published but the log
// was not yet reset. Replay must deduplicate the log's records against
// the snapshot silently.
func TestCrashBetweenSnapshotAndLogReset(t *testing.T) {
	fs := faultfs.New()
	svc, _, err := OpenWAL(agg.SAScheme{}, 90, workloadProducts, WALOptions{FS: fs, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		p, r, v, d := workloadRating(i)
		if err := svc.Submit(context.Background(), p, r, v, d); err != nil {
			t.Fatal(err)
		}
	}
	svc.Close()
	logBytes := mustRead(t, fs, "wal.log")

	// Publish a snapshot of the full dataset, then put the un-reset log
	// back — exactly the on-disk state of a crash between Compact's
	// rename and truncate steps.
	img := fs.Clone()
	w, _, err := wal.Open(img, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Compact(svc.dataView()); err != nil {
		t.Fatal(err)
	}
	w.Close()
	img.WriteFile("wal.log", logBytes)

	svc2, rep, err := OpenWAL(agg.SAScheme{}, 90, workloadProducts, WALOptions{FS: img, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if rep.SnapshotRatings != 10 || rep.DuplicateRecords != 10 || rep.SkippedRecords != 0 {
		t.Fatalf("overlap recovery = %+v, want 10 snapshot ratings and 10 silent duplicates", rep)
	}
	for _, id := range workloadProducts {
		n1, _ := svc.RatingCount(id)
		n2, _ := svc2.RatingCount(id)
		if n1 != n2 {
			t.Errorf("%s: %d ratings after overlap recovery, want %d", id, n2, n1)
		}
	}
}

// TestRecoveryReportsInvalidRecords: records that violate live validation
// (here: a day beyond a shrunken horizon, and a rating for a product no
// longer registered) are skipped, counted and sampled — never applied.
func TestRecoveryReportsInvalidRecords(t *testing.T) {
	fs := faultfs.New()
	svc, _, err := OpenWAL(agg.SAScheme{}, 90, workloadProducts, WALOptions{FS: fs, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Submit(context.Background(), "tv0", "ok", 4, 10); err != nil {
		t.Fatal(err)
	}
	if err := svc.Submit(context.Background(), "tv1", "gone", 3, 20); err != nil { // product dropped below
		t.Fatal(err)
	}
	if err := svc.Submit(context.Background(), "tv0", "late", 5, 80); err != nil { // beyond the new horizon
		t.Fatal(err)
	}
	svc.Close()

	svc2, rep, err := OpenWAL(agg.SAScheme{}, 60, []string{"tv0"}, WALOptions{FS: fs, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if rep.ReplayedRatings != 1 || rep.SkippedRecords != 2 {
		t.Fatalf("recovery = %+v, want 1 replayed + 2 skipped", rep)
	}
	if len(rep.SkipReasons) != 2 {
		t.Errorf("SkipReasons = %v, want 2 samples", rep.SkipReasons)
	}
	if n, _ := svc2.RatingCount("tv0"); n != 1 {
		t.Errorf("tv0 = %d ratings, want 1", n)
	}
}
