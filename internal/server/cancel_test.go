package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/agg"
	"repro/internal/engine"
	"repro/internal/faultfs"
)

// stepCtx cancels itself after a fixed number of Err checks — the same
// deterministic mid-evaluation cancellation device as the engine's
// countingCtx, here driven through the Service API.
type stepCtx struct{ budget int }

func (c *stepCtx) Err() error {
	if c.budget <= 0 {
		return context.Canceled
	}
	c.budget--
	return nil
}
func (c *stepCtx) Done() <-chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}
func (c *stepCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *stepCtx) Value(any) any               { return nil }

func seedRatings(t *testing.T, s *Service, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		day := math.Mod(float64(i)*0.7, 90)
		if err := s.Submit(context.Background(), "tv1", fmt.Sprintf("r%03d", i), 4, day); err != nil {
			t.Fatal(err)
		}
	}
}

// TestScoresCancelledMidRecompute: a reader whose ctx dies mid-recompute
// gets the error back, the dirty range survives, and the next reader with
// a live ctx resumes the interrupted evaluation to the same table an
// uninterrupted service computes.
func TestScoresCancelledMidRecompute(t *testing.T) {
	mk := func() *Service {
		p := agg.NewPScheme()
		p.Workers = 1
		s, err := New(p, 90, []string{"tv1"})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	svc, ref := mk(), mk()
	seedRatings(t, svc, 150)
	seedRatings(t, ref, 150)

	cancelled := false
	for _, budget := range []int{2, 5, 9} {
		if _, err := svc.Scores(&stepCtx{budget: budget}, "tv1"); err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("budget %d: err = %v", budget, err)
			}
			cancelled = true
		}
	}
	if !cancelled {
		t.Fatal("no budget cancelled the recompute; deepen the seed data")
	}
	got, err := svc.Scores(context.Background(), "tv1")
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Scores(context.Background(), "tv1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("score lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Errorf("period %d: %v vs %v after cancelled recompute", i, got[i], want[i])
		}
	}
}

// TestHTTPCancelledRequestShedsEngineWork pins deadline propagation end to
// end: a request arriving with an already-dead context is shed with 503 +
// Retry-After and — per the engine's worker-pool counters — burns zero
// detector analyses, while the same request with a live context does the
// work.
func TestHTTPCancelledRequestShedsEngineWork(t *testing.T) {
	p := agg.NewPScheme()
	p.Workers = 1
	svc, err := New(p, 90, []string{"tv1"})
	if err != nil {
		t.Fatal(err)
	}
	seedRatings(t, svc, 60)
	h := svc.Handler()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := engine.Stats()
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/products/tv1/scores", nil).WithContext(ctx))
	after := engine.Stats()
	if rw.Code != http.StatusServiceUnavailable {
		t.Errorf("cancelled request status = %d, want 503", rw.Code)
	}
	if rw.Header().Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	if after.Analyzed != before.Analyzed {
		t.Errorf("cancelled request burned %d product analyses", after.Analyzed-before.Analyzed)
	}

	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/products/tv1/scores", nil))
	if rw.Code != http.StatusOK {
		t.Fatalf("live request status = %d", rw.Code)
	}
	if live := engine.Stats(); live.Analyzed == after.Analyzed {
		t.Error("live request did no engine work; instrumentation broken?")
	}
}

// TestHTTPReadyzDegradedOnBreakerOpen: a stalled-but-working disk trips the
// WAL breaker; /readyz must stay 200 but report degraded + pending
// durability, and Submit acks must carry "durability":"pending" — the
// explicit no-silent-loss contract.
func TestHTTPReadyzDegradedOnBreakerOpen(t *testing.T) {
	fs := faultfs.New()
	svc, _, err := OpenWAL(agg.SAScheme{}, 90, []string{"tv1"}, WALOptions{
		FS:             fs,
		StallThreshold: time.Millisecond,
		ProbeInterval:  time.Hour, // keep the breaker open for the whole test
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	fs.StallSyncs(5 * time.Millisecond)
	// First submit eats the slow fsync and trips the breaker (still 201
	// durable: its own fsync completed).
	resp := postRating(t, ts, SubmitRequest{Product: "tv1", Rater: "slow", Value: 4, Day: 1})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("tripping submit status = %d", resp.StatusCode)
	}
	// Second submit lands while the breaker is open: acked pending.
	resp = postRating(t, ts, SubmitRequest{Product: "tv1", Rater: "pend", Value: 4, Day: 2})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("pending submit status = %d", resp.StatusCode)
	}
	var ackBody map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&ackBody); err != nil {
		t.Fatal(err)
	}
	if ackBody["durability"] != "pending" {
		t.Errorf(`submit ack durability = %q, want "pending"`, ackBody["durability"])
	}

	r, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("/readyz with open breaker = %d, want 200 (degraded but serving)", r.StatusCode)
	}
	var h Health
	if err := json.NewDecoder(r.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != StatusDegraded || h.Durability != "pending" || len(h.Reasons) == 0 {
		t.Errorf("health = %+v, want degraded/pending with reasons", h)
	}
}

// TestHTTPReadyzBodyStates pins the JSON bodies of the three readiness
// states end to end: ready (200), not-ready on WAL poison (503 +
// Retry-After).
func TestHTTPReadyzBodyStates(t *testing.T) {
	fs := faultfs.New()
	svc, _, err := OpenWAL(agg.SAScheme{}, 90, []string{"tv1"}, WALOptions{FS: fs, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	var h Health
	r, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(r.Body).Decode(&h)
	r.Body.Close()
	if r.StatusCode != http.StatusOK || h.Status != StatusReady || h.Durability != "durable" {
		t.Errorf("healthy readyz = %d %+v", r.StatusCode, h)
	}

	fs.FailSyncsAfter(0)
	postRating(t, ts, SubmitRequest{Product: "tv1", Rater: "x", Value: 4, Day: 1})
	r, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	h = Health{}
	json.NewDecoder(r.Body).Decode(&h)
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable || h.Status != StatusNotReady {
		t.Errorf("poisoned readyz = %d %+v, want 503 not-ready", r.StatusCode, h)
	}
	if r.Header.Get("Retry-After") == "" {
		t.Error("not-ready response missing Retry-After")
	}
}
