package server

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"strings"
	"testing"

	"repro/internal/agg"
	"repro/internal/dataset"
	"repro/internal/stats"
)

// panicScheme stands in for an aggregation scheme whose recompute blows up,
// so tests can exercise the serve-stale path deterministically.
type panicScheme struct{}

func (panicScheme) Name() string { return "panic" }

func (panicScheme) Aggregates(*dataset.Dataset) agg.Table { panic("boom") }

// primeAttackedPScheme builds a P-scheme service with a fair history plus a
// live attack on tv1, so raters have non-neutral trust to serve.
func primeAttackedPScheme(t *testing.T) *Service {
	t.Helper()
	cfg := dataset.DefaultFairConfig()
	cfg.Products = 2
	cfg.HorizonDays = 90
	d, err := dataset.GenerateFair(stats.NewRNG(9), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := newService(t, agg.NewPScheme())
	if err := s.Load(context.Background(), d); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		day := 40 + float64(i)*0.3
		if err := s.Submit(context.Background(), "tv1", fmt.Sprintf("evil%02d", i), 0.5, day); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestTrustServesPriorWhenRecomputeFails pins the serve-stale contract for
// Trust: when a recompute fails outright, callers keep seeing the last good
// trust estimate — not a silent reset to the neutral prior.
func TestTrustServesPriorWhenRecomputeFails(t *testing.T) {
	s := primeAttackedPScheme(t)
	ctx := context.Background()

	tr0 := s.Trust(ctx, "evil00") // fresh recompute happens here
	if tr0 >= 0.5 {
		t.Fatalf("attacker trust = %v, want < 0.5 before the failure", tr0)
	}

	// Break the scheme, then dirty the cache so the next read must recompute.
	s.mu.Lock()
	s.scheme = panicScheme{}
	s.mu.Unlock()
	if err := s.Submit(ctx, "tv1", "late-rater", 3, 60); err != nil {
		t.Fatal(err)
	}

	if tr := s.Trust(ctx, "evil00"); tr != tr0 {
		t.Fatalf("trust after failed recompute = %v, want prior %v", tr, tr0)
	}
	rep, err := s.Inspect(ctx, "tv1")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Stale {
		t.Fatal("report not marked stale after failed recompute")
	}
}

// TestTrustLogsAbandonedRefresh pins the fix for the silently swallowed
// refresh error: when the caller's context dies mid-recompute, Trust returns
// the neutral prior AND says so in the log instead of dropping the error.
func TestTrustLogsAbandonedRefresh(t *testing.T) {
	s := primeAttackedPScheme(t)
	var buf bytes.Buffer
	s.SetLogger(log.New(&buf, "", 0))

	// Dirty the cache, then ask with a context that is already dead: the
	// refresh is abandoned, not failed, so the prior result is NOT safe to
	// serve (it may be mid-invalidation) and the neutral prior comes back.
	if err := s.Submit(context.Background(), "tv1", "very-late-rater", 3, 61); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if tr := s.Trust(ctx, "evil00"); tr != 0.5 {
		t.Fatalf("trust with dead context = %v, want neutral 0.5", tr)
	}
	logged := buf.String()
	if !strings.Contains(logged, `trust("evil00")`) || !strings.Contains(logged, "abandoned") {
		t.Fatalf("abandoned refresh not logged; log output: %q", logged)
	}

	// A live context afterwards recomputes and serves the real estimate.
	if tr := s.Trust(context.Background(), "evil00"); tr >= 0.5 {
		t.Fatalf("attacker trust after recovery = %v, want < 0.5", tr)
	}
}
