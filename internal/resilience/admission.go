package resilience

import (
	"encoding/json"
	"net"
	"net/http"
	"time"
)

// AdmissionOptions configures the Admission middleware. Both limiters are
// optional; a nil field disables that control.
type AdmissionOptions struct {
	// Limiter bounds concurrent in-flight requests (503 on overflow).
	Limiter *Limiter
	// Rate caps each client's request rate (429 on exhaustion).
	Rate *RateLimiter
	// KeyFunc extracts the rate-limit key from a request. Defaults to the
	// X-API-Key header when present, else the remote host (without port).
	KeyFunc func(*http.Request) string
	// ExemptPaths bypass admission entirely — health probes must answer
	// even (especially) when the service is saturated, or the balancer
	// would kill exactly the instances that are busiest.
	ExemptPaths map[string]bool
	// RetryAfter is the Retry-After header value on 429/503 responses;
	// defaults to "1".
	RetryAfter string
	// Metrics holds the layer's observability handles (queue wait, shed
	// counts); the zero value records nothing. See NewAdmissionMetrics.
	Metrics AdmissionMetrics
}

// ClientKey is the default KeyFunc: the X-API-Key header when present,
// else the remote address with the ephemeral port stripped so one client
// is one bucket regardless of connection churn.
func ClientKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// Admission wraps next with admission control. Order matters: the
// per-client rate check runs first so a flooding client is billed before
// it can occupy a concurrency slot or queue position; then the
// concurrency limiter admits, queues, or sheds. The request's own context
// governs its time in the queue — a deadline that expires while waiting
// sheds the request immediately with 503.
func Admission(next http.Handler, opts AdmissionOptions) http.Handler {
	keyFunc := opts.KeyFunc
	if keyFunc == nil {
		keyFunc = ClientKey
	}
	retryAfter := opts.RetryAfter
	if retryAfter == "" {
		retryAfter = "1"
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if opts.ExemptPaths[r.URL.Path] {
			next.ServeHTTP(w, r)
			return
		}
		if opts.Rate != nil && !opts.Rate.Allow(keyFunc(r)) {
			opts.Metrics.ShedRateLimited.Inc()
			shed(w, http.StatusTooManyRequests, "client rate limit exceeded", retryAfter)
			return
		}
		if opts.Limiter != nil {
			start := time.Now()
			if err := opts.Limiter.Acquire(r.Context()); err != nil {
				opts.Metrics.ShedCapacity.Inc()
				shed(w, http.StatusServiceUnavailable, "server at capacity: "+err.Error(), retryAfter)
				return
			}
			opts.Metrics.QueueWaitSeconds.Observe(time.Since(start).Seconds())
			defer opts.Limiter.Release()
		}
		next.ServeHTTP(w, r)
	})
}

// shed writes a fast-fail rejection in the serving stack's JSON error
// shape, always with Retry-After: every shed response is an invitation to
// come back, not a closed door.
func shed(w http.ResponseWriter, status int, msg, retryAfter string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Retry-After", retryAfter)
	w.WriteHeader(status)
	// Encoding a flat map cannot fail; the client may already be gone,
	// which is fine — it asked us to stop.
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
