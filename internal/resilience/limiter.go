// Package resilience is the serving stack's overload-control layer:
// admission control for a rating service that must degrade predictably
// under a client storm instead of queueing unboundedly and falling over.
//
// Two mechanisms compose:
//
//   - Limiter bounds concurrent in-flight work with a bounded FIFO wait
//     queue. A request past both bounds is shed immediately; a queued
//     request whose deadline expires is shed the moment it expires, not
//     after it finally reaches the head. Shedding is therefore fast-fail
//     by construction — the worst-case latency of a rejected request is
//     its own deadline, never the backlog's.
//
//   - RateLimiter is a per-client token bucket (keyed on remote address
//     or API key) that caps each client's sustained request rate, so one
//     flooding client — the Sybil flood of the paper's attack model,
//     translated to the serving plane — cannot monopolize the global
//     concurrency budget.
//
// Admission wires both in front of an http.Handler, mapping rate
// exhaustion to 429 and concurrency exhaustion to 503, both with
// Retry-After, while exempting health probes.
package resilience

import (
	"context"
	"errors"
	"sync"
)

// ErrQueueFull is returned by Acquire when both the concurrency budget
// and the wait queue are exhausted — the caller should shed the request
// (HTTP 503) rather than wait.
var ErrQueueFull = errors.New("resilience: wait queue full")

// waiter is one queued Acquire. granted marks slot handoff: set under the
// Limiter lock before ch is closed, read under the same lock by the
// cancellation path to decide whether it lost the race to a handoff.
type waiter struct {
	ch      chan struct{}
	granted bool
}

// Limiter is a concurrency limiter with a bounded FIFO wait queue. The
// zero value is not usable; construct with NewLimiter. All methods are
// safe for concurrent use.
type Limiter struct {
	mu       sync.Mutex
	inflight int
	max      int
	queue    []*waiter // FIFO; popped by Release (handoff) or cancellation
	maxQueue int

	// Counters for observability and chaos assertions (read via Stats).
	admitted  uint64
	shedFull  uint64
	shedDead  uint64
	handoffs  uint64
	peakQueue int
}

// NewLimiter bounds work at maxInflight concurrent acquisitions with up
// to maxQueue callers waiting FIFO behind them. maxInflight must be ≥ 1;
// maxQueue may be 0 (no waiting: at capacity every Acquire sheds).
func NewLimiter(maxInflight, maxQueue int) *Limiter {
	if maxInflight < 1 {
		panic("resilience: maxInflight must be >= 1")
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Limiter{max: maxInflight, maxQueue: maxQueue}
}

// Acquire claims a concurrency slot, waiting FIFO behind earlier callers
// when the limiter is at capacity. It returns nil when the slot is held
// (the caller MUST call Release exactly once), ErrQueueFull when the wait
// queue is also at capacity, or ctx.Err() when the caller's deadline
// expired first — in which case no slot is held and Release must not be
// called. A caller that waited does not re-race for the slot: Release
// hands the slot directly to the head of the queue, so admission order is
// arrival order.
func (l *Limiter) Acquire(ctx context.Context) error {
	l.mu.Lock()
	if err := ctx.Err(); err != nil {
		l.shedDead++
		l.mu.Unlock()
		return err
	}
	if l.inflight < l.max {
		l.inflight++
		l.admitted++
		l.mu.Unlock()
		return nil
	}
	if len(l.queue) >= l.maxQueue {
		l.shedFull++
		l.mu.Unlock()
		return ErrQueueFull
	}
	w := &waiter{ch: make(chan struct{})}
	l.queue = append(l.queue, w)
	if len(l.queue) > l.peakQueue {
		l.peakQueue = len(l.queue)
	}
	l.mu.Unlock()

	select {
	case <-w.ch:
		// Slot handed off by Release; inflight already accounts for us.
		return nil
	case <-ctx.Done():
		l.mu.Lock()
		if w.granted {
			// Release closed our channel between ctx firing and the lock:
			// we own a slot we no longer want. Pass it on (or free it)
			// so the handoff chain never leaks capacity.
			l.releaseLocked()
			l.shedDead++
			l.mu.Unlock()
			return ctx.Err()
		}
		// Still queued: unlink ourselves. O(queue) — acceptable because
		// the queue is bounded and shallow by configuration.
		for i, q := range l.queue {
			if q == w {
				l.queue = append(l.queue[:i], l.queue[i+1:]...)
				break
			}
		}
		l.shedDead++
		l.mu.Unlock()
		return ctx.Err()
	}
}

// Release returns a slot claimed by a successful Acquire. If anyone is
// waiting, the slot transfers to the queue head without touching the
// inflight count — admission stays FIFO and capacity never dips.
func (l *Limiter) Release() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.releaseLocked()
}

func (l *Limiter) releaseLocked() {
	if len(l.queue) > 0 {
		w := l.queue[0]
		l.queue = l.queue[1:]
		w.granted = true
		l.handoffs++
		l.admitted++
		close(w.ch)
		return
	}
	if l.inflight <= 0 {
		panic("resilience: Release without Acquire")
	}
	l.inflight--
}

// LimiterStats is a snapshot of the limiter's counters.
type LimiterStats struct {
	// Inflight and Queued are instantaneous; the rest are cumulative.
	Inflight, Queued int
	// Admitted counts successful acquisitions (immediate or via handoff).
	Admitted uint64
	// ShedQueueFull and ShedDeadline count rejections: queue overflow and
	// context expiry (before or while queued), respectively.
	ShedQueueFull, ShedDeadline uint64
	// Handoffs counts slots transferred directly to a waiter.
	Handoffs uint64
	// PeakQueue is the deepest the wait queue has been.
	PeakQueue int
}

// Stats returns a snapshot of the limiter's state and counters.
func (l *Limiter) Stats() LimiterStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LimiterStats{
		Inflight:      l.inflight,
		Queued:        len(l.queue),
		Admitted:      l.admitted,
		ShedQueueFull: l.shedFull,
		ShedDeadline:  l.shedDead,
		Handoffs:      l.handoffs,
		PeakQueue:     l.peakQueue,
	}
}
