package resilience

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLimiterAdmitsUpToCapacity(t *testing.T) {
	l := NewLimiter(3, 0)
	for i := 0; i < 3; i++ {
		if err := l.Acquire(context.Background()); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
	}
	if err := l.Acquire(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("acquire past capacity with no queue = %v, want ErrQueueFull", err)
	}
	l.Release()
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	st := l.Stats()
	if st.Inflight != 3 || st.ShedQueueFull != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestLimiterFIFOHandoff: waiters are admitted in arrival order via
// direct slot handoff, never re-racing newcomers.
func TestLimiterFIFOHandoff(t *testing.T) {
	l := NewLimiter(1, 8)
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	ready := make(chan struct{}, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Serialize queue entry so arrival order is deterministic.
			<-ready
			if err := l.Acquire(context.Background()); err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			l.Release()
		}(i)
		ready <- struct{}{}
		waitForQueued(t, l, i+1)
	}
	l.Release()
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("admission order = %v, want FIFO", order)
		}
	}
	if st := l.Stats(); st.Handoffs != 8 {
		t.Errorf("handoffs = %d, want 8", st.Handoffs)
	}
}

// waitForQueued polls until the limiter reports n queued waiters.
func waitForQueued(t *testing.T, l *Limiter, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for l.Stats().Queued < n {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d (stats %+v)", n, l.Stats())
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestLimiterDeadlineShedsQueuedWaiter: a waiter whose ctx dies in the
// queue is shed promptly and leaves no hole — the slot still reaches the
// survivors behind it.
func TestLimiterDeadlineShedsQueuedWaiter(t *testing.T) {
	l := NewLimiter(1, 4)
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	doomed := make(chan error, 1)
	go func() { doomed <- l.Acquire(ctx) }()
	waitForQueued(t, l, 1)

	survivor := make(chan error, 1)
	go func() { survivor <- l.Acquire(context.Background()) }()
	waitForQueued(t, l, 2)

	cancel()
	if err := <-doomed; !errors.Is(err, context.Canceled) {
		t.Fatalf("doomed waiter err = %v", err)
	}
	l.Release()
	if err := <-survivor; err != nil {
		t.Fatalf("survivor err = %v (slot lost to the cancelled waiter?)", err)
	}
	if st := l.Stats(); st.ShedDeadline != 1 {
		t.Errorf("stats = %+v, want ShedDeadline=1", st)
	}
}

// TestLimiterNeverExceedsCapacity hammers the limiter from many
// goroutines with mixed cancellation and asserts the inflight invariant
// with an independent atomic counter. Run with -race in CI.
func TestLimiterNeverExceedsCapacity(t *testing.T) {
	const capacity, workers, rounds = 4, 32, 200
	l := NewLimiter(capacity, 8)
	var inflight, peak atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				if (w+i)%3 == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(i%5)*100*time.Microsecond)
				}
				err := l.Acquire(ctx)
				cancel()
				if err != nil {
					continue
				}
				cur := inflight.Add(1)
				for {
					p := peak.Load()
					if cur <= p || peak.CompareAndSwap(p, cur) {
						break
					}
				}
				inflight.Add(-1)
				l.Release()
			}
		}(w)
	}
	wg.Wait()
	if p := peak.Load(); p > capacity {
		t.Fatalf("observed %d concurrent holders, capacity %d", p, capacity)
	}
	st := l.Stats()
	if st.Inflight != 0 || st.Queued != 0 {
		t.Fatalf("limiter did not quiesce: %+v", st)
	}
}

func TestRateLimiterBurstAndRefill(t *testing.T) {
	r := NewRateLimiter(1, 3) // 1 rps, burst 3
	now := time.Unix(1000, 0)
	r.SetClock(func() time.Time { return now })

	for i := 0; i < 3; i++ {
		if !r.Allow("c1") {
			t.Fatalf("burst request %d denied", i)
		}
	}
	if r.Allow("c1") {
		t.Fatal("request past burst allowed")
	}
	// An independent client has its own bucket.
	if !r.Allow("c2") {
		t.Fatal("second client denied by first client's exhaustion")
	}
	// Half a second refills half a token: still denied.
	now = now.Add(500 * time.Millisecond)
	if r.Allow("c1") {
		t.Fatal("allowed with a fractional token")
	}
	// Another 600ms crosses one whole token.
	now = now.Add(600 * time.Millisecond)
	if !r.Allow("c1") {
		t.Fatal("denied after a full token refilled")
	}
	if st := r.Stats(); st.Denied != 2 {
		t.Errorf("denied = %d, want 2", st.Denied)
	}
}

// TestRateLimiterPrunesIdleBuckets: rotating keys must not grow the map
// forever — fully refilled idle buckets are swept.
func TestRateLimiterPrunesIdleBuckets(t *testing.T) {
	r := NewRateLimiter(10, 10)
	now := time.Unix(1000, 0)
	r.SetClock(func() time.Time { return now })
	for i := 0; i < 100; i++ {
		r.Allow(fmt.Sprintf("churn%d", i))
	}
	if st := r.Stats(); st.Keys != 100 {
		t.Fatalf("keys = %d", st.Keys)
	}
	// Past the idle floor every churn bucket is refilled and sweepable;
	// the next new key triggers the sweep.
	now = now.Add(2 * time.Minute)
	r.Allow("fresh")
	if st := r.Stats(); st.Keys != 1 {
		t.Errorf("keys after sweep = %d, want 1 (just \"fresh\")", st.Keys)
	}
}

func TestAdmissionMiddleware(t *testing.T) {
	var served atomic.Int64
	next := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		served.Add(1)
		w.WriteHeader(http.StatusOK)
	})
	rate := NewRateLimiter(1, 2)
	now := time.Unix(0, 0)
	rate.SetClock(func() time.Time { return now })
	h := Admission(next, AdmissionOptions{
		Limiter:     NewLimiter(2, 0),
		Rate:        rate,
		ExemptPaths: map[string]bool{"/healthz": true},
	})

	get := func(path, addr, key string) *httptest.ResponseRecorder {
		req := httptest.NewRequest("GET", path, nil)
		req.RemoteAddr = addr
		if key != "" {
			req.Header.Set("X-API-Key", key)
		}
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		return rw
	}

	// Within burst: served.
	if rw := get("/x", "10.0.0.1:1111", ""); rw.Code != http.StatusOK {
		t.Fatalf("first request = %d", rw.Code)
	}
	// Same client, new ephemeral port: same bucket; burst 2 exhausts on
	// the third call.
	get("/x", "10.0.0.1:2222", "")
	rw := get("/x", "10.0.0.1:3333", "")
	if rw.Code != http.StatusTooManyRequests {
		t.Fatalf("flooded client = %d, want 429", rw.Code)
	}
	if rw.Header().Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}
	// An API key overrides the address bucket.
	if rw := get("/x", "10.0.0.1:4444", "partner"); rw.Code != http.StatusOK {
		t.Errorf("keyed client = %d, want 200", rw.Code)
	}
	// Health probes bypass admission even for the flooded address.
	if rw := get("/healthz", "10.0.0.1:5555", ""); rw.Code != http.StatusOK {
		t.Errorf("exempt path = %d, want 200", rw.Code)
	}
}

// TestAdmissionShedsAtCapacity: with the limiter saturated and no queue,
// a new request sheds 503 fast.
func TestAdmissionShedsAtCapacity(t *testing.T) {
	release := make(chan struct{})
	next := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		<-release
		w.WriteHeader(http.StatusOK)
	})
	lim := NewLimiter(1, 0)
	h := Admission(next, AdmissionOptions{Limiter: lim})
	ts := httptest.NewServer(h)
	defer ts.Close()
	defer close(release)

	first := make(chan error, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/slow")
		if err == nil {
			resp.Body.Close()
		}
		first <- err
	}()
	// Wait until the first request holds the slot.
	deadline := time.Now().Add(5 * time.Second)
	for lim.Stats().Inflight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never acquired")
		}
		time.Sleep(100 * time.Microsecond)
	}
	start := time.Now()
	resp, err := http.Get(ts.URL + "/shed")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed request = %d, want 503", resp.StatusCode)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("shed took %v, want fast-fail", d)
	}
	release <- struct{}{}
	if err := <-first; err != nil {
		t.Fatal(err)
	}
}
