package resilience

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
)

// The benchmarks pin the admission path's overhead: these run on every
// request the server admits, so the uncontended path must stay
// allocation-free (cmd/benchdiff gates allocs/op against
// BENCH_resilience.json; ns/op is informational).

func BenchmarkLimiterAcquireRelease(b *testing.B) {
	l := NewLimiter(64, 64)
	ctx := context.Background()
	warmup(b, func() {
		if err := l.Acquire(ctx); err != nil {
			b.Fatal(err)
		}
		l.Release()
	})
	for i := 0; i < b.N; i++ {
		if err := l.Acquire(ctx); err != nil {
			b.Fatal(err)
		}
		l.Release()
	}
}

func BenchmarkLimiterParallel(b *testing.B) {
	// Capacity above GOMAXPROCS: measures lock contention on the admit
	// path, not queue handoff.
	l := NewLimiter(64, 64)
	ctx := context.Background()
	warmup(b, func() {
		if err := l.Acquire(ctx); err != nil {
			b.Fatal(err)
		}
		l.Release()
	})
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := l.Acquire(ctx); err != nil {
				b.Fatal(err)
			}
			l.Release()
		}
	})
}

func BenchmarkRateLimiterAllow(b *testing.B) {
	// A refill rate high enough that the steady-state path always has a
	// token: measures the bucket bookkeeping, not denial.
	r := NewRateLimiter(1e9, 1e9)
	warmup(b, func() { r.Allow("bench-client") })
	for i := 0; i < b.N; i++ {
		r.Allow("bench-client")
	}
}

// warmup runs op a few times outside the measured window so one-time
// lazy setup (bucket creation, map growth) is not billed to allocs/op —
// the gate is the steady-state request path, and CI measures at
// -benchtime=1x where a single setup alloc would swamp the signal.
func warmup(b *testing.B, op func()) {
	b.Helper()
	for i := 0; i < 16; i++ {
		op()
	}
	b.ReportAllocs()
	b.ResetTimer()
}

// nopResponseWriter absorbs the response without the allocation noise of
// httptest.ResponseRecorder, so the benchmark isolates admission overhead.
type nopResponseWriter struct{ h http.Header }

func (w nopResponseWriter) Header() http.Header         { return w.h }
func (w nopResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (nopResponseWriter) WriteHeader(int)               {}

func BenchmarkAdmissionOverhead(b *testing.B) {
	next := http.HandlerFunc(func(http.ResponseWriter, *http.Request) {})
	h := Admission(next, AdmissionOptions{
		Limiter: NewLimiter(64, 64),
		Rate:    NewRateLimiter(1e9, 1e9),
	})
	req := httptest.NewRequest("GET", "/ratings", nil)
	req.RemoteAddr = "10.0.0.1:1111"
	rw := nopResponseWriter{h: make(http.Header)}
	warmup(b, func() { h.ServeHTTP(rw, req) })
	for i := 0; i < b.N; i++ {
		h.ServeHTTP(rw, req)
	}
}
