package resilience

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestAdmissionMetricsRecording drives each admission outcome once and
// asserts the scrape reflects it: an admitted request observes its queue
// wait, a rate-limited request counts shed{reason="rate_limited"}, a
// capacity rejection counts shed{reason="capacity"}, and the limiter and
// rate-limiter Stats() surface as scrape-time series.
func TestAdmissionMetricsRecording(t *testing.T) {
	reg := obs.NewRegistry()
	l := NewLimiter(1, 0)
	rate := NewRateLimiter(1, 1) // burst 1: the second request from a key is denied
	h := Admission(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	}), AdmissionOptions{
		Limiter: l,
		Rate:    rate,
		Metrics: NewAdmissionMetrics(reg, l, rate),
	})

	get := func(key string) int {
		req := httptest.NewRequest("GET", "/x", nil)
		req.Header.Set("X-API-Key", key)
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		return rw.Code
	}

	if code := get("k1"); code != http.StatusOK {
		t.Fatalf("admitted request = %d", code)
	}
	if code := get("k1"); code != http.StatusTooManyRequests {
		t.Fatalf("flooded client = %d, want 429", code)
	}
	// Occupy the only slot (queue depth 0) so a fresh client hits capacity.
	// This manual Acquire is itself an admission, so the scrape below
	// expects admitted_total 2: one HTTP request plus this slot-holder.
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if code := get("k2"); code != http.StatusServiceUnavailable {
		t.Fatalf("at-capacity request = %d, want 503", code)
	}
	l.Release()

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, want := range []string{
		`admission_shed_total{reason="rate_limited"} 1`,
		`admission_shed_total{reason="capacity"} 1`,
		`admission_queue_wait_seconds_count 1`,
		`admission_admitted_total 2`,
		`admission_inflight 0`,
		`ratelimit_denied_total 1`,
		`ratelimit_keys 2`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("scrape missing %q\n%s", want, got)
		}
	}
}
