package resilience

import (
	"math"
	"sync"
	"time"
)

// RateLimiter is a keyed token-bucket rate limiter: each client key gets
// an independent bucket of burst tokens refilled at rate tokens/second.
// The zero value is not usable; construct with NewRateLimiter. All
// methods are safe for concurrent use.
type RateLimiter struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64
	buckets map[string]*bucket
	now     func() time.Time

	// lastSweep tracks idle-bucket pruning so a rotating attacker cannot
	// grow the map without bound: a bucket untouched for a full refill
	// (burst/rate seconds, floored at idleFloor) is indistinguishable
	// from a fresh one and is dropped.
	lastSweep time.Time

	denied uint64
}

// idleFloor is the minimum idle age before a bucket may be pruned.
const idleFloor = time.Minute

type bucket struct {
	tokens float64
	last   time.Time
}

// NewRateLimiter allows each key rate requests/second sustained with
// bursts of burst. rate must be > 0; burst is floored at 1.
func NewRateLimiter(rate, burst float64) *RateLimiter {
	if rate <= 0 {
		panic("resilience: rate must be > 0")
	}
	if burst < 1 {
		burst = 1
	}
	return &RateLimiter{
		rate:    rate,
		burst:   burst,
		buckets: make(map[string]*bucket),
		now:     time.Now,
	}
}

// SetClock overrides the limiter's clock (tests).
func (r *RateLimiter) SetClock(now func() time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.now = now
}

// Allow reports whether one request from key may proceed now, consuming a
// token if so. A new key starts with a full burst.
func (r *RateLimiter) Allow(key string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	b, ok := r.buckets[key]
	if !ok {
		if r.lastSweep.IsZero() {
			r.lastSweep = now
		}
		r.sweepLocked(now)
		b = &bucket{tokens: r.burst, last: now}
		r.buckets[key] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * r.rate
		if b.tokens > r.burst {
			b.tokens = r.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		r.denied++
		return false
	}
	b.tokens--
	return true
}

// sweepLocked prunes buckets idle long enough to have fully refilled —
// dropping them cannot grant anyone extra tokens. Runs at most once per
// idle window, only on the new-key path, so steady-state Allow stays O(1).
func (r *RateLimiter) sweepLocked(now time.Time) {
	// Round the refill window UP to whole nanoseconds: truncation would let
	// a bucket be pruned (and resurrect with a full burst) up to 1ns before
	// it had actually refilled — a hairline over-grant, but one the sweep's
	// "cannot grant anyone extra tokens" invariant must not have.
	idle := time.Duration(math.Ceil(r.burst / r.rate * float64(time.Second)))
	if idle < idleFloor {
		idle = idleFloor
	}
	if now.Sub(r.lastSweep) < idle {
		return
	}
	r.lastSweep = now
	for key, b := range r.buckets {
		if now.Sub(b.last) >= idle {
			delete(r.buckets, key)
		}
	}
}

// RateStats is a snapshot of the rate limiter's counters.
type RateStats struct {
	// Keys is the number of live client buckets; Denied counts rejected
	// requests across all keys.
	Keys   int
	Denied uint64
}

// Stats returns a snapshot of the limiter's counters.
func (r *RateLimiter) Stats() RateStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RateStats{Keys: len(r.buckets), Denied: r.denied}
}
