package resilience

import (
	"testing"
	"time"
)

// TestRateLimiterSweepBoundary pins the idle-sweep threshold at the exact
// refill instant. The refill window burst/rate is 100/0.9 ≈ 111.1̄ seconds —
// not a whole number of nanoseconds — and the old threshold truncated it:
// a fully drained bucket could be pruned (and the key resurrected with a
// full burst) at the truncated instant, a hair before it had actually
// refilled, granting the client one token it never waited for. The
// threshold now rounds up, so at the truncated instant the bucket must
// survive (and re-grant only the 99 tokens that really accrued), while one
// nanosecond later — the ceil — it is sweepable.
func TestRateLimiterSweepBoundary(t *testing.T) {
	var (
		rate  = 0.9
		burst = 100.0
	)
	// The truncated window, computed with the same float expression the
	// sweep uses; the correct threshold is one nanosecond later.
	trunc := time.Duration(burst / rate * float64(time.Second))
	if trunc == time.Duration(int64(burst/rate))*time.Second {
		t.Fatalf("window %v is a whole second; pick parameters with a fractional-ns window", trunc)
	}
	t0 := time.Unix(1000, 0)

	drain := func(r *RateLimiter, key string) {
		t.Helper()
		for i := 0; i < int(burst); i++ {
			if !r.Allow(key) {
				t.Fatalf("burst allow %d denied", i)
			}
		}
		if r.Allow(key) {
			t.Fatal("drained bucket allowed")
		}
	}

	t.Run("no resurrection at the truncated instant", func(t *testing.T) {
		r := NewRateLimiter(rate, burst)
		now := t0
		r.SetClock(func() time.Time { return now })
		drain(r, "A")

		// Exactly the old (truncated) threshold after the drain: the bucket
		// has refilled 99.99…9 tokens, not 100, so it must not be swept.
		now = t0.Add(trunc)
		r.Allow("B") // new key: the only path that triggers a sweep
		r.mu.Lock()
		_, survived := r.buckets["A"]
		r.mu.Unlock()
		if !survived {
			t.Fatal("bucket pruned before its refill completed")
		}
		// And the surviving bucket grants exactly the 99 whole tokens that
		// actually accrued — a pruned-and-recreated bucket would grant 100.
		granted := 0
		for i := 0; i < int(burst); i++ {
			if r.Allow("A") {
				granted++
			}
		}
		if granted != int(burst)-1 {
			t.Errorf("granted %d tokens at the truncated instant, want %d", granted, int(burst)-1)
		}
	})

	t.Run("sweepable one nanosecond later", func(t *testing.T) {
		r := NewRateLimiter(rate, burst)
		now := t0
		r.SetClock(func() time.Time { return now })
		drain(r, "A")

		now = t0.Add(trunc + 1) // the ceil: refill is complete
		r.Allow("B")
		r.mu.Lock()
		_, survived := r.buckets["A"]
		r.mu.Unlock()
		if survived {
			t.Error("fully refilled idle bucket not pruned at the rounded-up threshold")
		}
	})

	t.Run("whole-nanosecond window is not delayed", func(t *testing.T) {
		// 90/1 s is exact in nanoseconds: ceil must be a no-op and the
		// bucket sweepable at precisely the refill instant.
		r := NewRateLimiter(1, 90)
		now := t0
		r.SetClock(func() time.Time { return now })
		if !r.Allow("A") {
			t.Fatal("first allow denied")
		}
		now = t0.Add(90 * time.Second)
		r.Allow("B")
		r.mu.Lock()
		_, survived := r.buckets["A"]
		r.mu.Unlock()
		if survived {
			t.Error("exactly-refilled bucket not pruned at its refill instant")
		}
	})
}
