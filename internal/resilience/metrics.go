package resilience

import "repro/internal/obs"

// AdmissionMetrics holds the admission layer's hot-path observability
// handles. Every field is optional: nil handles record nothing, so an
// uninstrumented Admission chain pays one nil check per event.
type AdmissionMetrics struct {
	// QueueWaitSeconds observes how long each admitted request waited in
	// Acquire — near zero while a slot is free, the queueing delay under
	// saturation.
	QueueWaitSeconds *obs.Histogram
	// ShedRateLimited counts 429s (per-client token bucket exhausted).
	ShedRateLimited *obs.Counter
	// ShedCapacity counts 503s (concurrency budget and wait queue full, or
	// the caller's deadline expired while queued).
	ShedCapacity *obs.Counter
}

// NewAdmissionMetrics registers the admission layer's metrics with reg and
// returns the hot-path handles for AdmissionOptions.Metrics. The limiter
// and rate limiter already keep cumulative counters behind their Stats()
// snapshots, so those export as scrape-time callbacks — they cost nothing
// until /metrics is read. l and r may be nil (matching AdmissionOptions);
// a nil reg returns zero-valued (no-op) metrics.
func NewAdmissionMetrics(reg *obs.Registry, l *Limiter, r *RateLimiter) AdmissionMetrics {
	if reg == nil {
		return AdmissionMetrics{}
	}
	m := AdmissionMetrics{
		QueueWaitSeconds: reg.Histogram("admission_queue_wait_seconds", "Time admitted requests spent waiting for a concurrency slot.", obs.LatencyBuckets),
		ShedRateLimited:  reg.Counter("admission_shed_total", "Requests shed by admission control, by reason.", obs.L("reason", "rate_limited")),
		ShedCapacity:     reg.Counter("admission_shed_total", "Requests shed by admission control, by reason.", obs.L("reason", "capacity")),
	}
	if l != nil {
		reg.GaugeFunc("admission_inflight", "Requests currently holding a concurrency slot.", func() float64 {
			return float64(l.Stats().Inflight)
		})
		reg.GaugeFunc("admission_queued", "Requests currently waiting FIFO for a slot.", func() float64 {
			return float64(l.Stats().Queued)
		})
		reg.GaugeFunc("admission_peak_queue", "Deepest the wait queue has been.", func() float64 {
			return float64(l.Stats().PeakQueue)
		})
		reg.CounterFunc("admission_admitted_total", "Requests admitted through the concurrency limiter.", func() float64 {
			return float64(l.Stats().Admitted)
		})
		reg.CounterFunc("admission_handoffs_total", "Slots handed directly to a queued waiter on release.", func() float64 {
			return float64(l.Stats().Handoffs)
		})
	}
	if r != nil {
		reg.GaugeFunc("ratelimit_keys", "Live per-client token buckets.", func() float64 {
			return float64(r.Stats().Keys)
		})
		reg.CounterFunc("ratelimit_denied_total", "Requests denied by the per-client rate limiter.", func() float64 {
			return float64(r.Stats().Denied)
		})
	}
	return m
}
