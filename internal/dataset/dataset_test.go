package dataset

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func sampleSeries() Series {
	return Series{
		{Day: 3.5, Value: 4, Rater: "a"},
		{Day: 1.0, Value: 5, Rater: "b"},
		{Day: 2.2, Value: 3, Rater: "c", Unfair: true},
		{Day: 9.9, Value: 1, Rater: "d"},
	}
}

func TestSeriesSort(t *testing.T) {
	s := sampleSeries()
	s.Sort()
	if !sort.SliceIsSorted(s, func(i, j int) bool { return s[i].Day < s[j].Day }) {
		t.Errorf("series not sorted: %v", s.Days())
	}
}

func TestSeriesSortStable(t *testing.T) {
	s := Series{
		{Day: 1, Value: 1, Rater: "first"},
		{Day: 1, Value: 2, Rater: "second"},
	}
	s.Sort()
	if s[0].Rater != "first" || s[1].Rater != "second" {
		t.Error("same-day order not preserved")
	}
}

func TestSeriesValuesDaysMean(t *testing.T) {
	s := sampleSeries()
	s.Sort()
	if got := s.Mean(); !almost(got, 3.25) {
		t.Errorf("Mean = %v, want 3.25", got)
	}
	if got := len(s.Values()); got != 4 {
		t.Errorf("Values length = %d", got)
	}
	if got := s.Days(); got[0] != 1.0 {
		t.Errorf("Days[0] = %v", got[0])
	}
	var empty Series
	if empty.Mean() != 0 {
		t.Error("empty Mean should be 0")
	}
}

func TestSeriesBetween(t *testing.T) {
	s := sampleSeries()
	s.Sort()
	mid := s.Between(2, 4)
	if len(mid) != 2 {
		t.Fatalf("Between(2,4) length = %d, want 2", len(mid))
	}
	if mid[0].Day != 2.2 || mid[1].Day != 3.5 {
		t.Errorf("Between days = %v", mid.Days())
	}
	if got := s.Between(100, 200); len(got) != 0 {
		t.Errorf("Between(empty range) = %v", got)
	}
	// Half-open: lo inclusive, hi exclusive.
	if got := s.Between(1.0, 2.2); len(got) != 1 || got[0].Day != 1.0 {
		t.Errorf("Between half-open = %v", got.Days())
	}
}

func TestSeriesFairUnfair(t *testing.T) {
	s := sampleSeries()
	if got := len(s.Fair()); got != 3 {
		t.Errorf("Fair length = %d, want 3", got)
	}
	if got := len(s.UnfairOnly()); got != 1 {
		t.Errorf("UnfairOnly length = %d, want 1", got)
	}
}

func TestSeriesMerge(t *testing.T) {
	a := Series{{Day: 1, Value: 4}, {Day: 5, Value: 4}}
	b := Series{{Day: 3, Value: 2}}
	m := a.Merge(b)
	if len(m) != 3 || m[1].Day != 3 {
		t.Errorf("Merge = %v", m.Days())
	}
	// Inputs untouched.
	if len(a) != 2 || len(b) != 1 {
		t.Error("Merge mutated inputs")
	}
}

func TestSeriesDailyCounts(t *testing.T) {
	s := Series{{Day: 0.1}, {Day: 0.9}, {Day: 2.5}, {Day: -1}, {Day: 10}}
	counts := s.DailyCounts(3)
	want := []float64{2, 0, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("DailyCounts[%d] = %v, want %v", i, counts[i], want[i])
		}
	}
	if got := len(s.DailyCounts(-2)); got != 0 {
		t.Errorf("DailyCounts(neg horizon) length = %d", got)
	}
}

func TestSeriesSpan(t *testing.T) {
	s := sampleSeries()
	s.Sort()
	first, last := s.Span()
	if first != 1.0 || last != 9.9 {
		t.Errorf("Span = (%v, %v)", first, last)
	}
	var empty Series
	if f, l := empty.Span(); f != 0 || l != 0 {
		t.Error("empty Span should be (0,0)")
	}
}

func TestDatasetProductLookup(t *testing.T) {
	d := &Dataset{Products: []Product{{ID: "tv1"}, {ID: "tv2"}}}
	p, err := d.Product("tv2")
	if err != nil || p.ID != "tv2" {
		t.Errorf("Product(tv2) = %v, %v", p, err)
	}
	if _, err := d.Product("nope"); !errors.Is(err, ErrUnknownProduct) {
		t.Errorf("Product(nope) error = %v, want ErrUnknownProduct", err)
	}
	ids := d.ProductIDs()
	if len(ids) != 2 || ids[0] != "tv1" {
		t.Errorf("ProductIDs = %v", ids)
	}
}

func TestDatasetCloneIsDeep(t *testing.T) {
	d := &Dataset{HorizonDays: 10, Products: []Product{{ID: "tv1", Ratings: sampleSeries()}}}
	c := d.Clone()
	c.Products[0].Ratings[0].Value = -99
	if d.Products[0].Ratings[0].Value == -99 {
		t.Error("Clone shares rating storage")
	}
}

func TestInjectUnfair(t *testing.T) {
	d := &Dataset{Products: []Product{{ID: "tv1", Ratings: Series{{Day: 1, Value: 4}}}}}
	unfair := Series{{Day: 0.5, Value: 0, Rater: "x"}}
	if err := d.InjectUnfair("tv1", unfair); err != nil {
		t.Fatal(err)
	}
	p, _ := d.Product("tv1")
	if len(p.Ratings) != 2 {
		t.Fatalf("ratings length = %d", len(p.Ratings))
	}
	if !p.Ratings[0].Unfair {
		t.Error("injected rating not tagged Unfair")
	}
	if unfair[0].Unfair {
		t.Error("InjectUnfair mutated caller's slice")
	}
	if err := d.InjectUnfair("missing", unfair); !errors.Is(err, ErrUnknownProduct) {
		t.Errorf("InjectUnfair(missing) = %v", err)
	}
}

func TestQuantizeHalfStar(t *testing.T) {
	tests := []struct{ in, want float64 }{
		{4.24, 4.0}, {4.26, 4.5}, {-1, 0}, {6, 5}, {2.75, 3.0}, {0.2, 0},
	}
	for _, tt := range tests {
		if got := QuantizeHalfStar(tt.in); got != tt.want {
			t.Errorf("QuantizeHalfStar(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestGenerateFairStatistics(t *testing.T) {
	rng := stats.NewRNG(11)
	cfg := DefaultFairConfig()
	d, err := GenerateFair(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Products) != cfg.Products {
		t.Fatalf("products = %d, want %d", len(d.Products), cfg.Products)
	}
	for _, p := range d.Products {
		if len(p.Ratings) == 0 {
			t.Fatalf("product %s has no ratings", p.ID)
		}
		m := p.Ratings.Mean()
		if m < 3.2 || m > 4.6 {
			t.Errorf("product %s mean = %v, want ≈4", p.ID, m)
		}
		perDay := float64(len(p.Ratings)) / cfg.HorizonDays
		if perDay < cfg.ArrivalRate*0.6 || perDay > cfg.ArrivalRate*1.6 {
			t.Errorf("product %s arrival = %v/day, want ≈%v", p.ID, perDay, cfg.ArrivalRate)
		}
		if !sort.SliceIsSorted(p.Ratings, func(i, j int) bool {
			return p.Ratings[i].Day < p.Ratings[j].Day
		}) {
			t.Errorf("product %s not sorted", p.ID)
		}
		for _, r := range p.Ratings {
			if r.Value < MinValue || r.Value > MaxValue {
				t.Fatalf("value %v out of range", r.Value)
			}
			if r.Unfair {
				t.Fatal("fair generator produced Unfair rating")
			}
			if math.Mod(r.Value*2, 1) != 0 {
				t.Fatalf("value %v not half-star quantized", r.Value)
			}
		}
	}
}

func TestGenerateFairDeterministic(t *testing.T) {
	cfg := DefaultFairConfig()
	d1, err := GenerateFair(stats.NewRNG(5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := GenerateFair(stats.NewRNG(5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(d1.Products[0].Ratings) != len(d2.Products[0].Ratings) {
		t.Fatal("same seed produced different rating counts")
	}
	for i, r := range d1.Products[0].Ratings {
		if r != d2.Products[0].Ratings[i] {
			t.Fatalf("same seed diverged at rating %d", i)
		}
	}
}

func TestGenerateFairOneRatingPerRaterPerProduct(t *testing.T) {
	cfg := DefaultFairConfig()
	cfg.Products = 2
	d, err := GenerateFair(stats.NewRNG(3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range d.Products {
		seen := make(map[string]bool, len(p.Ratings))
		for _, r := range p.Ratings {
			if seen[r.Rater] {
				t.Fatalf("rater %s rated product %s twice", r.Rater, p.ID)
			}
			seen[r.Rater] = true
		}
	}
}

func TestFairConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*FairConfig)
	}{
		{"zero products", func(c *FairConfig) { c.Products = 0 }},
		{"negative horizon", func(c *FairConfig) { c.HorizonDays = -1 }},
		{"negative arrival", func(c *FairConfig) { c.ArrivalRate = -0.1 }},
		{"negative noise", func(c *FairConfig) { c.NoiseSigma = -1 }},
		{"zero pool", func(c *FairConfig) { c.RaterPool = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultFairConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); !errors.Is(err, ErrBadConfig) {
				t.Errorf("Validate = %v, want ErrBadConfig", err)
			}
			if _, err := GenerateFair(stats.NewRNG(1), cfg); err == nil {
				t.Error("GenerateFair accepted invalid config")
			}
		})
	}
	if err := DefaultFairConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

// Property: merging two sorted series yields a sorted series whose length is
// the sum of the inputs.
func TestMergeProperty(t *testing.T) {
	f := func(d1, d2 []uint16) bool {
		a := make(Series, len(d1))
		for i, v := range d1 {
			a[i] = Rating{Day: float64(v) / 100}
		}
		b := make(Series, len(d2))
		for i, v := range d2 {
			b[i] = Rating{Day: float64(v) / 100}
		}
		a.Sort()
		b.Sort()
		m := a.Merge(b)
		if len(m) != len(a)+len(b) {
			return false
		}
		return sort.SliceIsSorted(m, func(i, j int) bool { return m[i].Day < m[j].Day })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSeriesStats(t *testing.T) {
	s := Series{{Value: 2}, {Value: 4}, {Value: 4}}
	sum := s.Stats()
	if sum.Count != 3 || !almost(sum.Mean, 10.0/3) {
		t.Errorf("Stats = %+v", sum)
	}
}

func TestGenerateFairJShape(t *testing.T) {
	cfg := DefaultFairConfig()
	cfg.Products = 1
	cfg.JShare = 0.35
	d, err := GenerateFair(stats.NewRNG(12), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := d.Products[0].Ratings
	var raves, rants int
	for _, r := range s {
		if r.Value >= 4.5 {
			raves++
		}
		if r.Value <= 1 {
			rants++
		}
	}
	fracExtreme := float64(raves+rants) / float64(len(s))
	if fracExtreme < 0.25 {
		t.Errorf("J-shape extremes = %.2f of ratings, want ≳0.3", fracExtreme)
	}
	if rants == 0 {
		t.Error("J-shape produced no rants")
	}
	// The spread must clearly exceed the Gaussian-only profile's.
	if got := s.Stats().StdDev; got < 0.9 {
		t.Errorf("J-shape stddev = %v, want > 0.9", got)
	}
	// Invalid share rejected.
	cfg.JShare = 1.5
	if err := cfg.Validate(); err == nil {
		t.Error("JShare > 1 accepted")
	}
}

func TestBetweenIndex(t *testing.T) {
	s := sampleSeries()
	s.Sort() // days 1.0, 2.2, 3.5, 9.9
	tests := []struct {
		lo, hi     float64
		start, end int
	}{
		{0, 10, 0, 4},
		{1.0, 3.5, 0, 2}, // half-open: day 3.5 excluded
		{2.2, 10, 1, 4},
		{4, 9, 3, 3}, // empty range between ratings
		{-5, 0, 0, 0},
	}
	for _, tt := range tests {
		start, end := s.BetweenIndex(tt.lo, tt.hi)
		if start != tt.start || end != tt.end {
			t.Errorf("BetweenIndex(%v,%v) = (%d,%d), want (%d,%d)",
				tt.lo, tt.hi, start, end, tt.start, tt.end)
		}
	}
}

// Property: Between is exactly the subslice named by BetweenIndex, and every
// in-range rating is inside it.
func TestBetweenIndexMatchesBetweenProperty(t *testing.T) {
	f := func(days []float64, loRaw, spanRaw float64) bool {
		s := make(Series, len(days))
		for i, d := range days {
			s[i] = Rating{Day: math.Mod(math.Abs(d), 100), Value: 3}
		}
		s.Sort()
		lo := math.Mod(math.Abs(loRaw), 100)
		hi := lo + math.Mod(math.Abs(spanRaw), 100)
		start, end := s.BetweenIndex(lo, hi)
		if start < 0 || end < start || end > len(s) {
			return false
		}
		for i, r := range s {
			inRange := r.Day >= lo && r.Day < hi
			inSlice := i >= start && i < end
			if inRange != inSlice {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
