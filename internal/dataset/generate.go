package dataset

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/stats"
)

// FairConfig parameterizes the synthetic fair-rating generator that stands
// in for the paper's real flat-panel-TV data. Defaults (DefaultFairConfig)
// reproduce the statistical features the paper reports: 9 similar products,
// mean fair rating ≈ 4 on a 0–5 scale, Poisson daily arrivals, and mild
// non-stationarity in both mean and arrival rate.
type FairConfig struct {
	// Products is the number of rated objects (paper: 9 TVs).
	Products int
	// HorizonDays is the length of the rating history in days.
	HorizonDays float64
	// ArrivalRate is the mean fair ratings per product per day.
	ArrivalRate float64
	// QualityMean is the cross-product mean true quality (paper: ≈ 4).
	QualityMean float64
	// QualityJitter is the half-range of the uniform per-product quality
	// offset ("similar features" → small jitter).
	QualityJitter float64
	// NoiseSigma is the honest-rater noise standard deviation.
	NoiseSigma float64
	// DriftAmp is the amplitude of a slow sinusoidal quality-perception
	// drift (natural mean non-stationarity that stresses false alarms).
	DriftAmp float64
	// DriftPeriodDays is the drift period.
	DriftPeriodDays float64
	// BurstProb is the per-day probability of an arrival burst (promo /
	// review-site link), during which the arrival rate triples.
	BurstProb float64
	// HalfStars quantizes values to 0.5 steps when true.
	HalfStars bool
	// JShare, when positive, mixes in the J-shaped opinion profile real
	// rating sites exhibit: this fraction of honest ratings is drawn from
	// the extremes (a 5-star rave or a 1-star rant, 4:1) instead of the
	// Gaussian around the product quality. 0 disables it.
	JShare float64
	// RaterPool is the number of distinct honest raters shared across
	// products. Each rater rates a given product at most once.
	RaterPool int
}

// DefaultFairConfig returns the challenge-like configuration used by the
// experiments: 9 products over 150 days at ≈ 3.5 fair ratings/day.
func DefaultFairConfig() FairConfig {
	return FairConfig{
		Products:        9,
		HorizonDays:     150,
		ArrivalRate:     3.5,
		QualityMean:     4.0,
		QualityJitter:   0.25,
		NoiseSigma:      0.6,
		DriftAmp:        0.15,
		DriftPeriodDays: 60,
		BurstProb:       0.03,
		HalfStars:       true,
		RaterPool:       1200,
	}
}

// Validate reports the first problem with the configuration.
func (c FairConfig) Validate() error {
	switch {
	case c.Products <= 0:
		return fmt.Errorf("%w: products %d", ErrBadConfig, c.Products)
	case c.HorizonDays <= 0:
		return fmt.Errorf("%w: horizon %v", ErrBadConfig, c.HorizonDays)
	case c.ArrivalRate < 0:
		return fmt.Errorf("%w: arrival rate %v", ErrBadConfig, c.ArrivalRate)
	case c.NoiseSigma < 0:
		return fmt.Errorf("%w: noise sigma %v", ErrBadConfig, c.NoiseSigma)
	case c.RaterPool <= 0:
		return fmt.Errorf("%w: rater pool %d", ErrBadConfig, c.RaterPool)
	case c.JShare < 0 || c.JShare > 1:
		return fmt.Errorf("%w: J share %v", ErrBadConfig, c.JShare)
	}
	return nil
}

// GenerateFair synthesizes a fair-ratings-only dataset according to cfg.
// All randomness comes from rng, so a fixed seed yields a fixed dataset.
func GenerateFair(rng *rand.Rand, cfg FairConfig) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Dataset{
		HorizonDays: cfg.HorizonDays,
		Products:    make([]Product, cfg.Products),
	}
	for p := 0; p < cfg.Products; p++ {
		quality := cfg.QualityMean + (rng.Float64()*2-1)*cfg.QualityJitter
		phase := rng.Float64() * 2 * math.Pi
		series := generateProductSeries(rng, cfg, quality, phase)
		d.Products[p] = Product{ID: ProductID(p), Ratings: series}
	}
	return d, nil
}

// ProductID returns the canonical product identifier for index i ("tv1"…).
func ProductID(i int) string { return fmt.Sprintf("tv%d", i+1) }

func generateProductSeries(rng *rand.Rand, cfg FairConfig, quality, phase float64) Series {
	days := int(math.Ceil(cfg.HorizonDays))
	var series Series
	used := make(map[int]bool) // raters that already rated this product
	for day := 0; day < days; day++ {
		rate := cfg.ArrivalRate
		if cfg.BurstProb > 0 && rng.Float64() < cfg.BurstProb {
			rate *= 3
		}
		n := (stats.Poisson{Lambda: rate}).Sample(rng)
		drift := 0.0
		if cfg.DriftAmp > 0 && cfg.DriftPeriodDays > 0 {
			drift = cfg.DriftAmp * math.Sin(2*math.Pi*float64(day)/cfg.DriftPeriodDays+phase)
		}
		for i := 0; i < n; i++ {
			v := quality + drift + rng.NormFloat64()*cfg.NoiseSigma
			if cfg.JShare > 0 && rng.Float64() < cfg.JShare {
				// An extreme opinion: raves outnumber rants 4:1.
				if rng.Float64() < 0.8 {
					v = MaxValue - rng.Float64()*0.5
				} else {
					v = MinValue + rng.Float64()
				}
			}
			v = stats.Clamp(v, MinValue, MaxValue)
			if cfg.HalfStars {
				v = QuantizeHalfStar(v)
			}
			series = append(series, Rating{
				Day:   float64(day) + rng.Float64(),
				Value: v,
				Rater: honestRater(rng, cfg.RaterPool, used),
			})
		}
	}
	series.Sort()
	return series
}

// honestRater draws a rater ID from the pool, avoiding repeats within one
// product (each rater rates a product at most once, as Eq. 7 assumes).
func honestRater(rng *rand.Rand, pool int, used map[int]bool) string {
	for attempt := 0; attempt < 16; attempt++ {
		id := rng.IntN(pool)
		if !used[id] {
			used[id] = true
			return fmt.Sprintf("h%04d", id)
		}
	}
	// Pool nearly exhausted; fall back to a fresh synthetic ID.
	id := pool + len(used)
	used[id] = true
	return fmt.Sprintf("h%04d", id)
}
