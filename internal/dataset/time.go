package dataset

import "time"

// Epoch is the wall-clock anchor of simulation day 0. The rating challenge
// opened on April 25, 2007 (Section V-A), so that date anchors exported
// timestamps.
var Epoch = time.Date(2007, time.April, 25, 0, 0, 0, 0, time.UTC)

// DayToTime converts a simulation day (fractional days since the epoch) to
// a wall-clock instant.
func DayToTime(day float64) time.Time {
	return Epoch.Add(time.Duration(day * 24 * float64(time.Hour)))
}

// TimeToDay converts a wall-clock instant back to a simulation day.
func TimeToDay(t time.Time) float64 {
	return t.Sub(Epoch).Hours() / 24
}

// Time returns the rating's wall-clock timestamp.
func (r Rating) Time() time.Time {
	return DayToTime(r.Day)
}
