package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV checks the CSV reader never panics and that everything it
// accepts survives a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("product,day,value,rater,unfair\ntv1,1.5,4,h1,false\n")
	f.Add("tv1,0,0,x,true\n")
	f.Add("")
	f.Add("a,b,c\n")
	f.Add("tv1,1e308,5,h,false\ntv1,-5,0,h,true\n")
	f.Fuzz(func(t *testing.T, input string) {
		d, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := d.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted dataset failed to serialize: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(back.Products) != len(d.Products) {
			t.Fatalf("round trip changed product count")
		}
	})
}

// FuzzReadJSON checks the JSON reader never panics.
func FuzzReadJSON(f *testing.F) {
	f.Add(`{"horizonDays":10,"products":[{"id":"tv1","ratings":[{"day":1,"value":4,"rater":"h"}]}]}`)
	f.Add(`{}`)
	f.Add(`[`)
	f.Fuzz(func(t *testing.T, input string) {
		d, err := ReadJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		for _, p := range d.Products {
			_ = p.Ratings.Mean()
			_ = p.Ratings.DailyCounts(d.HorizonDays)
		}
	})
}
