package dataset

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDayToTimeRoundTrip(t *testing.T) {
	f := func(raw uint16) bool {
		day := float64(raw) / 100 // 0 … 655.35 days
		back := TimeToDay(DayToTime(day))
		return almost(back, day)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDayZeroIsEpoch(t *testing.T) {
	if !DayToTime(0).Equal(Epoch) {
		t.Errorf("DayToTime(0) = %v", DayToTime(0))
	}
	if got := TimeToDay(Epoch); got != 0 {
		t.Errorf("TimeToDay(Epoch) = %v", got)
	}
}

func TestDayToTimeArithmetic(t *testing.T) {
	got := DayToTime(1.5)
	want := time.Date(2007, time.April, 26, 12, 0, 0, 0, time.UTC)
	if !got.Equal(want) {
		t.Errorf("DayToTime(1.5) = %v, want %v", got, want)
	}
}

func TestRatingTime(t *testing.T) {
	r := Rating{Day: 2}
	want := time.Date(2007, time.April, 27, 0, 0, 0, 0, time.UTC)
	if !r.Time().Equal(want) {
		t.Errorf("Rating.Time() = %v, want %v", r.Time(), want)
	}
}
