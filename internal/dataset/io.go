package dataset

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WriteJSON encodes the dataset as indented JSON.
func (d *Dataset) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		return fmt.Errorf("encode dataset: %w", err)
	}
	return nil
}

// ReadJSON decodes a dataset from JSON and sorts every series.
func ReadJSON(r io.Reader) (*Dataset, error) {
	var d Dataset
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("decode dataset: %w", err)
	}
	for i := range d.Products {
		d.Products[i].Ratings.Sort()
	}
	return &d, nil
}

// WriteCSV writes the dataset as flat CSV rows:
// product,day,value,rater,unfair.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"product", "day", "value", "rater", "unfair"}); err != nil {
		return fmt.Errorf("write csv header: %w", err)
	}
	for _, p := range d.Products {
		for _, r := range p.Ratings {
			rec := []string{
				p.ID,
				strconv.FormatFloat(r.Day, 'f', 4, 64),
				strconv.FormatFloat(r.Value, 'f', 2, 64),
				r.Rater,
				strconv.FormatBool(r.Unfair),
			}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("write csv row: %w", err)
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("flush csv: %w", err)
	}
	return nil
}

// ReadCSV parses the flat CSV layout produced by WriteCSV.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("read csv: %w", err)
	}
	if len(records) == 0 {
		return &Dataset{}, nil
	}
	d := &Dataset{}
	index := make(map[string]int)
	var horizon float64
	for i, rec := range records {
		if i == 0 && rec[0] == "product" {
			continue // header
		}
		if len(rec) < 5 {
			return nil, fmt.Errorf("csv row %d: want 5 fields, got %d", i, len(rec))
		}
		day, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("csv row %d day: %w", i, err)
		}
		val, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("csv row %d value: %w", i, err)
		}
		unfair, err := strconv.ParseBool(rec[4])
		if err != nil {
			return nil, fmt.Errorf("csv row %d unfair: %w", i, err)
		}
		pi, ok := index[rec[0]]
		if !ok {
			pi = len(d.Products)
			index[rec[0]] = pi
			d.Products = append(d.Products, Product{ID: rec[0]})
		}
		d.Products[pi].Ratings = append(d.Products[pi].Ratings, Rating{
			Day: day, Value: val, Rater: rec[3], Unfair: unfair,
		})
		if day > horizon {
			horizon = day
		}
	}
	d.HorizonDays = horizon
	for i := range d.Products {
		d.Products[i].Ratings.Sort()
	}
	return d, nil
}
