package dataset

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestJSONRoundTrip(t *testing.T) {
	cfg := DefaultFairConfig()
	cfg.Products = 2
	cfg.HorizonDays = 20
	d, err := GenerateFair(stats.NewRNG(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.HorizonDays != d.HorizonDays {
		t.Errorf("horizon = %v, want %v", got.HorizonDays, d.HorizonDays)
	}
	if len(got.Products) != len(d.Products) {
		t.Fatalf("products = %d, want %d", len(got.Products), len(d.Products))
	}
	for i := range d.Products {
		if len(got.Products[i].Ratings) != len(d.Products[i].Ratings) {
			t.Fatalf("product %d rating count mismatch", i)
		}
	}
}

func TestReadJSONInvalid(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{nonsense")); err == nil {
		t.Error("ReadJSON(invalid): want error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := &Dataset{
		HorizonDays: 5,
		Products: []Product{
			{ID: "tv1", Ratings: Series{
				{Day: 1.5, Value: 4, Rater: "h1"},
				{Day: 2.25, Value: 2.5, Rater: "h2", Unfair: true},
			}},
			{ID: "tv2", Ratings: Series{{Day: 0.5, Value: 5, Rater: "h3"}}},
		},
	}
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Products) != 2 {
		t.Fatalf("products = %d", len(got.Products))
	}
	p1, err := got.Product("tv1")
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Ratings) != 2 {
		t.Fatalf("tv1 ratings = %d", len(p1.Ratings))
	}
	if !p1.Ratings[1].Unfair {
		t.Error("unfair flag lost in CSV round trip")
	}
	if p1.Ratings[0].Value != 4 || p1.Ratings[1].Value != 2.5 {
		t.Errorf("values = %v", p1.Ratings.Values())
	}
}

func TestReadCSVMalformed(t *testing.T) {
	cases := []string{
		"product,day,value,rater,unfair\ntv1,notanumber,4,h1,false\n",
		"product,day,value,rater,unfair\ntv1,1,notanumber,h1,false\n",
		"product,day,value,rater,unfair\ntv1,1,4,h1,notabool\n",
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: want parse error", i)
		}
	}
}

func TestReadCSVEmpty(t *testing.T) {
	d, err := ReadCSV(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Products) != 0 {
		t.Errorf("products = %d, want 0", len(d.Products))
	}
}
