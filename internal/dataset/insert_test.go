package dataset

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/stats"
)

// TestInsertMatchesMerge pins Insert's contract: for any sorted series and
// any single rating, Insert is bit-identical to Merge of a one-element
// series (which stable-sorts, so same-day ratings keep insertion order).
func TestInsertMatchesMerge(t *testing.T) {
	rng := stats.NewRNG(17)
	for trial := 0; trial < 200; trial++ {
		var s Series
		n := rng.IntN(20)
		for i := 0; i < n; i++ {
			// Coarse days force plenty of exact-day ties.
			s = append(s, Rating{Day: float64(rng.IntN(8)), Value: float64(rng.IntN(10)) / 2,
				Rater: fmt.Sprintf("r%d", i)})
		}
		s.Sort()
		r := Rating{Day: float64(rng.IntN(8)), Value: 3, Rater: "new"}
		got := s.Insert(r)
		want := s.Merge(Series{r})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: Insert = %v, Merge = %v", trial, got, want)
		}
		if len(got) != len(s)+1 || cap(got) != len(s)+1 {
			t.Fatalf("trial %d: len/cap = %d/%d, want exact presize %d", trial, len(got), cap(got), len(s)+1)
		}
	}
}

// TestInsertCopyOnWrite: the receiver must be untouched and unaliased.
func TestInsertCopyOnWrite(t *testing.T) {
	s := Series{{Day: 1, Rater: "a"}, {Day: 3, Rater: "b"}}
	orig := s.Clone()
	out := s.Insert(Rating{Day: 2, Rater: "c"})
	out[0].Rater = "mutated"
	if !reflect.DeepEqual(s, orig) {
		t.Fatalf("receiver mutated by Insert: %v", s)
	}
}

// TestCloneKeepsVersion: dataset clones must carry product versions, or a
// cloned dataset would silently opt out of version-keyed caching.
func TestCloneKeepsVersion(t *testing.T) {
	d := &Dataset{HorizonDays: 90, Products: []Product{
		{ID: "p", Ratings: Series{{Day: 1}}, Version: 7},
	}}
	if got := d.Clone().Products[0].Version; got != 7 {
		t.Fatalf("cloned Version = %d, want 7", got)
	}
}
