// Package dataset defines the rating data model shared by the whole
// reproduction: ratings, per-product rating series, multi-product datasets,
// a synthetic fair-rating generator (the substitute for the paper's
// commercial flat-panel-TV data), and JSON/CSV I/O.
//
// Simulation time is measured in fractional days since the challenge epoch
// (day 0). All series are kept sorted by day.
package dataset

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
)

// Errors returned by the dataset package.
var (
	// ErrUnknownProduct indicates a lookup for a product ID that is not in
	// the dataset.
	ErrUnknownProduct = errors.New("dataset: unknown product")
	// ErrBadConfig indicates an invalid generator configuration.
	ErrBadConfig = errors.New("dataset: bad config")
)

// Rating value bounds used throughout the paper (0–5 star scale).
const (
	MinValue = 0.0
	MaxValue = 5.0
)

// Rating is a single rating event: rater Rater gave value Value on day Day.
// Unfair is the ground-truth label carried through the simulation for
// evaluation only; no detector or aggregation scheme may read it.
type Rating struct {
	Day    float64 `json:"day"`
	Value  float64 `json:"value"`
	Rater  string  `json:"rater"`
	Unfair bool    `json:"unfair,omitempty"`
}

// Series is a time-ordered sequence of ratings for one product.
type Series []Rating

// Sort orders the series by day (stable, so same-day ratings keep their
// insertion order).
func (s Series) Sort() {
	sort.SliceStable(s, func(i, j int) bool { return s[i].Day < s[j].Day })
}

// Clone returns a deep copy of the series.
func (s Series) Clone() Series {
	out := make(Series, len(s))
	copy(out, s)
	return out
}

// Values returns the rating values in series order.
func (s Series) Values() []float64 {
	out := make([]float64, len(s))
	for i, r := range s {
		out[i] = r.Value
	}
	return out
}

// Days returns the rating days in series order.
func (s Series) Days() []float64 {
	out := make([]float64, len(s))
	for i, r := range s {
		out[i] = r.Day
	}
	return out
}

// Mean returns the mean rating value, or 0 for an empty series.
func (s Series) Mean() float64 {
	if len(s) == 0 {
		return 0
	}
	var sum float64
	for _, r := range s {
		sum += r.Value
	}
	return sum / float64(len(s))
}

// Merge returns a new sorted series containing the ratings of both inputs.
func (s Series) Merge(other Series) Series {
	out := make(Series, 0, len(s)+len(other))
	out = append(out, s...)
	out = append(out, other...)
	out.Sort()
	return out
}

// Insert returns a new sorted series with r added, leaving the receiver
// untouched (copy-on-write, exactly presized from both input lengths). The
// result is bit-identical to Merge(Series{r}): the new rating lands after
// any existing same-day ratings, matching Merge's stable sort, at the cost
// of one binary search and one copy instead of a full re-sort.
func (s Series) Insert(r Rating) Series {
	i := sort.Search(len(s), func(j int) bool { return s[j].Day > r.Day })
	out := make(Series, len(s)+1)
	copy(out, s[:i])
	out[i] = r
	copy(out[i+1:], s[i:])
	return out
}

// Between returns the sub-series with Day in [lo, hi). The receiver must be
// sorted. The result aliases the receiver's backing array.
func (s Series) Between(lo, hi float64) Series {
	start, end := s.BetweenIndex(lo, hi)
	return s[start:end]
}

// BetweenIndex returns the index range [start, end) of the ratings with Day
// in [lo, hi). The receiver must be sorted. It lets callers holding
// per-rating side data (e.g. suspicious marks aligned with the series) slice
// a period and its marks by offset instead of rescanning the whole series.
func (s Series) BetweenIndex(lo, hi float64) (start, end int) {
	start = sort.Search(len(s), func(i int) bool { return s[i].Day >= lo })
	end = sort.Search(len(s), func(i int) bool { return s[i].Day >= hi })
	return start, end
}

// Fair returns only the fair (ground-truth honest) ratings.
func (s Series) Fair() Series {
	out := make(Series, 0, len(s))
	for _, r := range s {
		if !r.Unfair {
			out = append(out, r)
		}
	}
	return out
}

// UnfairOnly returns only the ground-truth unfair ratings.
func (s Series) UnfairOnly() Series {
	out := make(Series, 0, len(s))
	for _, r := range s {
		if r.Unfair {
			out = append(out, r)
		}
	}
	return out
}

// DailyCounts buckets the series into integer days [0, horizon) and returns
// the rating count per day.
func (s Series) DailyCounts(horizon float64) []float64 {
	n := int(math.Ceil(horizon))
	if n < 0 {
		n = 0
	}
	out := make([]float64, n)
	for _, r := range s {
		d := int(math.Floor(r.Day))
		if d < 0 || d >= n {
			continue
		}
		out[d]++
	}
	return out
}

// Span returns the first and last rating day, or (0,0) for an empty series.
func (s Series) Span() (first, last float64) {
	if len(s) == 0 {
		return 0, 0
	}
	return s[0].Day, s[len(s)-1].Day
}

// Product is a rated object with its rating history.
//
// Version is a monotone content version of Ratings, maintained by whoever
// owns the product's mutations (internal/store bumps it on every applied
// submit). It lets consumers detect series changes without rehashing: equal
// versions on the same product ID promise a bit-identical series. Version 0
// means "unversioned" — mutators that do not maintain the counter must
// leave it at 0, which opts the product out of version-keyed caching
// (internal/engine's memo plane). It is deliberately not serialized:
// versions are only meaningful within one owner's lifetime.
type Product struct {
	ID      string `json:"id"`
	Ratings Series `json:"ratings"`
	Version uint64 `json:"-"`
}

// Dataset is a collection of products rated over a common horizon.
type Dataset struct {
	HorizonDays float64   `json:"horizonDays"`
	Products    []Product `json:"products"`
}

// Product returns the product with the given ID.
func (d *Dataset) Product(id string) (*Product, error) {
	for i := range d.Products {
		if d.Products[i].ID == id {
			return &d.Products[i], nil
		}
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownProduct, id)
}

// ProductIDs returns the product IDs in dataset order.
func (d *Dataset) ProductIDs() []string {
	out := make([]string, len(d.Products))
	for i, p := range d.Products {
		out[i] = p.ID
	}
	return out
}

// Clone returns a deep copy of the dataset.
func (d *Dataset) Clone() *Dataset {
	out := &Dataset{HorizonDays: d.HorizonDays, Products: make([]Product, len(d.Products))}
	for i, p := range d.Products {
		out.Products[i] = Product{ID: p.ID, Ratings: p.Ratings.Clone(), Version: p.Version}
	}
	return out
}

// InjectUnfair merges unfair ratings into the named product, marking them
// with the ground-truth Unfair label, and returns the dataset for chaining.
func (d *Dataset) InjectUnfair(productID string, unfair Series) error {
	p, err := d.Product(productID)
	if err != nil {
		return err
	}
	tagged := unfair.Clone()
	for i := range tagged {
		tagged[i].Unfair = true
	}
	p.Ratings = p.Ratings.Merge(tagged)
	return nil
}

// QuantizeHalfStar rounds v to the nearest 0.5 and clamps it to the valid
// rating range, mimicking the discrete rating widgets of commercial sites.
func QuantizeHalfStar(v float64) float64 {
	q := math.Round(v*2) / 2
	if q < MinValue {
		q = MinValue
	}
	if q > MaxValue {
		q = MaxValue
	}
	return q
}

// Stats returns the descriptive summary of the series' rating values.
func (s Series) Stats() stats.Summary {
	return stats.Summarize(s.Values())
}
