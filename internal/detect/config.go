package detect

import "repro/internal/armodel"

// Config collects every window size and threshold of the detector stack.
// Defaults follow Section V-A of the paper: MC window 30 days, H-ARC/L-ARC
// window 30 days, HC window 40 ratings, ME window 40 ratings; thresholds are
// calibrated on the synthetic fair data so that attack-free series stay
// below alarm level (see the package tests).
type Config struct {
	// MCWindowDays is the total mean-change window (2 half-windows).
	MCWindowDays float64
	// MCPeakThreshold is the GLRT level above which an MC peak is declared.
	MCPeakThreshold float64
	// MCPeakMinSepDays suppresses secondary peaks closer than this.
	MCPeakMinSepDays float64
	// MCThreshold1 marks a segment suspicious on |Bj−Bavg| alone.
	MCThreshold1 float64
	// MCThreshold2 marks a segment suspicious on a moderate mean change
	// combined with below-par rater trust (MCThreshold2 < MCThreshold1).
	MCThreshold2 float64
	// MCTrustRatio is the Tj/Tavg level below which a segment's raters are
	// considered less trustworthy.
	MCTrustRatio float64

	// ARCWindowDays is the total arrival-rate-change window (2D).
	ARCWindowDays float64
	// ARCPeakThreshold is the normalized Poisson GLRT alarm level.
	ARCPeakThreshold float64
	// ARCPeakMinSepDays suppresses secondary ARC peaks closer than this.
	ARCPeakMinSepDays float64
	// ARCRateDelta is the minimum absolute elevation (ratings/day) of a
	// segment's band arrival rate over the median daily rate for the
	// segment to be suspicious.
	ARCRateDelta float64
	// ARCRelDelta is the minimum relative elevation (fraction of the
	// median daily rate); the larger of the two margins applies.
	ARCRelDelta float64

	// HCWindowRatings is the histogram-change window length in ratings.
	HCWindowRatings int
	// HCStepRatings is the slide step between HC windows.
	HCStepRatings int
	// HCThreshold marks a window suspicious when the two-cluster size
	// ratio is at or above it (a second rating population has appeared).
	HCThreshold float64
	// HCMinGap is the minimum value separation between the two clusters
	// for the split to count (guards against splitting one noisy mode).
	HCMinGap float64

	// MEWindowRatings is the model-error window length in ratings.
	MEWindowRatings int
	// MEStepRatings is the slide step between ME windows.
	MEStepRatings int
	// MEOrder is the AR model order.
	MEOrder int
	// MEMethod selects the AR fitting algorithm (zero value = the paper's
	// covariance method; armodel.Autocorrelation and armodel.Burg are
	// available for ablation).
	MEMethod armodel.Method
	// METhreshold marks a window suspicious when the relative model error
	// drops below it (a predictable "signal" is present).
	METhreshold float64
}

// DefaultConfig returns the paper's published parameters with calibrated
// thresholds.
func DefaultConfig() Config {
	return Config{
		MCWindowDays:      30,
		MCPeakThreshold:   9,
		MCPeakMinSepDays:  6,
		MCThreshold1:      0.9,
		MCThreshold2:      0.35,
		MCTrustRatio:      0.9,
		ARCWindowDays:     30,
		ARCPeakThreshold:  0.12,
		ARCPeakMinSepDays: 6,
		ARCRateDelta:      0.2,
		ARCRelDelta:       0.5,
		HCWindowRatings:   40,
		HCStepRatings:     5,
		HCThreshold:       0.12,
		HCMinGap:          1.0,
		MEWindowRatings:   40,
		MEStepRatings:     5,
		MEOrder:           4,
		METhreshold:       0.55,
	}
}
