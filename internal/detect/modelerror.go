package detect

import (
	"repro/internal/armodel"
	"repro/internal/dataset"
)

// MEResult is the outcome of the signal-model-change detector on one series.
type MEResult struct {
	Curve     Curve      // relative AR model error per window center
	Intervals []Interval // windows whose model error dropped below threshold
}

// Suspicious reports whether any window dropped below the ME threshold.
func (r MEResult) Suspicious() bool { return len(r.Intervals) > 0 }

// ModelError runs the signal-model-change detector of Section IV-E (the
// detector of Yang et al. 2007): the ratings in each sliding window of
// MEWindowRatings ratings are fitted with an AR(MEOrder) model via the
// covariance method; honest ratings look like white noise (relative model
// error near 1) and a window is suspicious when the relative model error
// drops below METhreshold — a predictable "signal" from collaborative
// raters is present.
func ModelError(s dataset.Series, cfg Config) MEResult {
	return modelErrorWith(NewScratch(), s, cfg)
}

// modelErrorWith is ModelError with the per-window Values() copy replaced
// by one reused scratch buffer: each window's values are copied into the
// same backing array and handed to the AR fit, which reads but never
// retains its input. The fitted numbers are untouched, so the curve is
// bit-identical to modelErrorRef.
func modelErrorWith(sc *Scratch, s dataset.Series, cfg Config) MEResult {
	res := MEResult{}
	w := cfg.MEWindowRatings
	step := cfg.MEStepRatings
	if step <= 0 {
		step = 1
	}
	if w <= 2*cfg.MEOrder || len(s) < w {
		return res
	}
	// The curve grows by append (not an exact preallocation): a window can
	// drop out when its AR fit fails, so the point count is not known up
	// front and a sized-but-empty slice would differ from the reference's
	// nil curve in the degenerate all-windows-fail case.
	vals := sc.valsBuf(w)
	for start := 0; start+w <= len(s); start += step {
		win := s[start : start+w]
		for i := 0; i < w; i++ {
			vals[i] = win[i].Value
		}
		m, err := armodel.FitMethod(vals, cfg.MEOrder, cfg.MEMethod)
		if err != nil {
			continue
		}
		center := (win[0].Day + win[w-1].Day) / 2
		res.Curve.X = append(res.Curve.X, center)
		res.Curve.Y = append(res.Curve.Y, m.RelErr)
		if m.RelErr < cfg.METhreshold {
			res.Intervals = append(res.Intervals, Interval{Start: win[0].Day, End: win[w-1].Day})
		}
	}
	res.Intervals = mergeIntervals(res.Intervals)
	return res
}
