package detect

import (
	"math"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// ARCBand selects which ratings feed the arrival-rate-change detector.
type ARCBand int

// ARC bands (Section IV-C.4). AllRatings is the plain ARC detector; HighBand
// counts ratings above threshold_a (H-ARC); LowBand counts ratings below
// threshold_b (L-ARC).
const (
	AllRatings ARCBand = iota + 1
	HighBand
	LowBand
)

// String returns the band name.
func (b ARCBand) String() string {
	switch b {
	case AllRatings:
		return "ARC"
	case HighBand:
		return "H-ARC"
	case LowBand:
		return "L-ARC"
	default:
		return "ARC(?)"
	}
}

// BandThresholds returns threshold_a and threshold_b for a window whose
// rating mean is m (Section V-A): threshold_a = 0.5·m, threshold_b =
// 0.5·m + 0.5. Because rating widgets quantize to half stars, threshold_b
// is snapped up just past the next half-star grid point — otherwise an
// attacker rating exactly on the boundary value (2.5 for a mean-4 product)
// would fall outside the "lower than threshold_b" band by a hair and the
// L-ARC detector would never see the attack.
//
//lint:hotpath
func BandThresholds(mean float64) (thresholdA, thresholdB float64) {
	tb := 0.5*mean + 0.5
	tb = math.Ceil(tb*2)/2 + 0.01
	return 0.5 * mean, tb
}

// bandCountsInto buckets the ratings selected by band into daily counts
// over [0, horizon), writing into buf (grown and zeroed as needed) and
// returning the counts slice. Band membership is tested while bucketing —
// one pass, no intermediate filtered series — which produces the same
// integer counts as filtering first (bandCountsRef): each selected rating
// increments exactly one bucket either way.
func bandCountsInto(s dataset.Series, horizon float64, band ARCBand, sc *Scratch) []float64 {
	n := int(math.Ceil(horizon))
	if n < 0 {
		n = 0
	}
	counts := sc.countsBuf(n)
	var ta, tb float64
	if band == HighBand || band == LowBand {
		ta, tb = BandThresholds(s.Mean())
	}
	for i := range s {
		r := &s[i]
		switch band {
		case HighBand:
			if !(r.Value > ta) {
				continue
			}
		case LowBand:
			if !(r.Value < tb) {
				continue
			}
		}
		d := int(math.Floor(r.Day))
		if d < 0 || d >= n {
			continue
		}
		counts[d]++
	}
	return counts
}

// arcCurveFromCounts computes the ARC indicator curve from precomputed
// daily counts. Each position's Poisson GLRT is evaluated exactly over the
// count sub-ranges (no rolling sums: the per-window statistic must stay
// bit-identical to the reference), but the counts themselves are computed
// once per detector run instead of once per pass.
func arcCurveFromCounts(counts []float64, cfg Config) Curve {
	n := len(counts)
	d := int(cfg.ARCWindowDays / 2)
	if d < 3 {
		d = 3
	}
	c := Curve{}
	if n >= 6 {
		// Points exist exactly for k in [3, n-3]; preallocate once.
		c.X = make([]float64, 0, n-5)
		c.Y = make([]float64, 0, n-5)
	}
	for k := 0; k < n; k++ {
		lo := k - d
		if lo < 0 {
			lo = 0
		}
		hi := k + d
		if hi > n {
			hi = n
		}
		if k-lo < 3 || hi-k < 3 {
			continue
		}
		c.X = append(c.X, float64(k))
		c.Y = append(c.Y, stats.RateChangeGLRT(counts[lo:k], counts[k:hi]))
	}
	return c
}

// ARCCurve computes the arrival-rate-change curve of Section IV-C.2 for the
// chosen band: at each day k′, the normalized Poisson GLRT statistic over
// the 2D-day window centred at k′ (smaller windows at the boundaries, with a
// minimum of 3 days per side).
func ARCCurve(s dataset.Series, horizon float64, band ARCBand, cfg Config) Curve {
	return arcCurveFromCounts(bandCountsInto(s, horizon, band, NewScratch()), cfg)
}

// ARCSegment is a run of days between consecutive ARC peaks.
type ARCSegment struct {
	Interval   Interval
	Rate       float64 // mean daily count of band ratings in the segment
	Suspicious bool    // band rate elevated above the series baseline
}

// ARCResult is the outcome of the (H-/L-)ARC detector on one series.
type ARCResult struct {
	Band     ARCBand
	Curve    Curve
	Peaks    []int // indices into Curve
	Segments []ARCSegment
	// ThresholdA and ThresholdB are the band thresholds derived from the
	// series mean, echoed for the fusion stage.
	ThresholdA float64
	ThresholdB float64
}

// Alarm reports whether the detector saw a rate-change peak or an elevated
// segment (Figure 1's "H-ARC alarm" / "L-ARC alarm"). An attack spanning
// the whole history produces no change point, but its band rate still sits
// above the median baseline, which is just as alarming.
func (r ARCResult) Alarm() bool { return len(r.Peaks) > 0 || r.Suspicious() }

// Suspicious reports whether any segment shows a suspicious rate increase.
func (r ARCResult) Suspicious() bool {
	for _, seg := range r.Segments {
		if seg.Suspicious {
			return true
		}
	}
	return false
}

// SuspiciousIntervals returns the intervals of the suspicious segments.
func (r ARCResult) SuspiciousIntervals() []Interval {
	var out []Interval
	for _, seg := range r.Segments {
		if seg.Suspicious {
			out = append(out, seg.Interval)
		}
	}
	return out
}

// UShape returns, for each pair of consecutive peaks, the interval between
// them — the candidate attack interval of Figure 1's Path 1 ("the U-shape").
func (r ARCResult) UShape() []Interval {
	var out []Interval
	for i := 0; i+1 < len(r.Peaks); i++ {
		out = append(out, Interval{
			Start: r.Curve.X[r.Peaks[i]],
			End:   r.Curve.X[r.Peaks[i+1]],
		})
	}
	return out
}

// ArrivalRateChange runs the full (H-/L-)ARC detector of Section IV-C:
// curve, peaks, segmentation, and the elevated-rate segment test.
func ArrivalRateChange(s dataset.Series, horizon float64, band ARCBand, cfg Config) ARCResult {
	return arrivalRateChangeWith(NewScratch(), s, horizon, band, cfg)
}

// arrivalRateChangeWith is ArrivalRateChange on reusable scratch buffers:
// the daily band counts are bucketed once (the reference recomputes them
// for the curve pass and again for the segment pass) and the baseline
// quantile sorts a scratch copy in place instead of allocating one.
func arrivalRateChangeWith(sc *Scratch, s dataset.Series, horizon float64, band ARCBand, cfg Config) ARCResult {
	counts := bandCountsInto(s, horizon, band, sc)
	res := ARCResult{Band: band, Curve: arcCurveFromCounts(counts, cfg)}
	res.ThresholdA, res.ThresholdB = BandThresholds(s.Mean())
	if res.Curve.Len() == 0 {
		return res
	}
	res.Peaks = res.Curve.Peaks(cfg.ARCPeakThreshold, cfg.ARCPeakMinSepDays)

	bounds := daySegments(len(counts), res.Curve, res.Peaks)
	// Baseline band rate, estimated from the lower-quartile daily count.
	// A quantile baseline — rather than a previous-segment comparison —
	// gives attacks that start on day 0 no place to hide, and the 25th
	// percentile stays honest even when unfair ratings land on up to three
	// quarters of all days (a dilute long-duration attack poisons the
	// median). For a Poisson(λ) band the lower quartile sits ≈ 0.7·√λ
	// below the mean, so that gap is added back to recover λ.
	quant := sc.quantBuf(len(counts))
	copy(quant, counts)
	q25 := stats.QuantileInPlace(quant, 0.25)
	baseline := q25 + 0.7*math.Sqrt(q25)
	// The alarm margin scales with the baseline: busy bands (H-ARC on a
	// popular product counts nearly every rating) fluctuate in absolute
	// terms far more than quiet ones, so a purely absolute delta would
	// fire on ordinary bursts.
	margin := cfg.ARCRateDelta
	if rel := cfg.ARCRelDelta * baseline; rel > margin {
		margin = rel
	}
	res.Segments = make([]ARCSegment, 0, len(bounds))
	for _, iv := range bounds {
		seg := ARCSegment{Interval: iv, Rate: meanCounts(counts, iv)}
		seg.Suspicious = seg.Rate-baseline > margin
		res.Segments = append(res.Segments, seg)
	}
	return res
}

// daySegments splits [0, days) at the peak day positions.
func daySegments(days int, c Curve, peaks []int) []Interval {
	end := float64(days)
	if len(peaks) == 0 {
		return []Interval{{Start: 0, End: end}}
	}
	var out []Interval
	prev := 0.0
	for _, p := range peaks {
		t := c.X[p]
		if t > prev {
			out = append(out, Interval{Start: prev, End: t})
		}
		prev = t
	}
	if prev < end {
		out = append(out, Interval{Start: prev, End: end})
	}
	return out
}

func meanCounts(counts []float64, iv Interval) float64 {
	lo := int(iv.Start)
	hi := int(math.Ceil(iv.End))
	if lo < 0 {
		lo = 0
	}
	if hi > len(counts) {
		hi = len(counts)
	}
	if hi <= lo {
		return 0
	}
	return stats.Mean(counts[lo:hi])
}
