package detect

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
	"repro/internal/trust"
)

// The incremental kernels (MCCurve's two-pointer sweep, the ARC single-pass
// band counts, HC's order-maintained window, ME's reused value buffer) must
// be bit-identical to the straightforward reference kernels in
// reference.go. These tests pin that contract over randomized series —
// including duplicate days, all-equal values, single ratings and empty
// windows — and over randomized configurations including degenerate window
// and step sizes (step larger than the window, windows longer than the
// series).

// bitsEqual compares float64 slices bit-for-bit (NaN-safe); nil and empty
// compare equal, matching every consumer (all are length-based).
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func curvesEqual(a, b Curve) bool {
	return bitsEqual(a.X, b.X) && bitsEqual(a.Y, b.Y)
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func intervalsEqual(a, b []Interval) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i].Start) != math.Float64bits(b[i].Start) ||
			math.Float64bits(a[i].End) != math.Float64bits(b[i].End) {
			return false
		}
	}
	return true
}

func mcResultsEqual(a, b MCResult) bool {
	if !curvesEqual(a.Curve, b.Curve) || !intsEqual(a.Peaks, b.Peaks) {
		return false
	}
	if len(a.Segments) != len(b.Segments) {
		return false
	}
	for i := range a.Segments {
		x, y := a.Segments[i], b.Segments[i]
		if x.Interval != y.Interval || x.Suspicious != y.Suspicious {
			return false
		}
		if math.Float64bits(x.Mean) != math.Float64bits(y.Mean) ||
			math.Float64bits(x.AvgTrust) != math.Float64bits(y.AvgTrust) ||
			math.Float64bits(x.Shift) != math.Float64bits(y.Shift) {
			return false
		}
	}
	return true
}

func arcResultsEqual(a, b ARCResult) bool {
	if a.Band != b.Band || !curvesEqual(a.Curve, b.Curve) || !intsEqual(a.Peaks, b.Peaks) {
		return false
	}
	if math.Float64bits(a.ThresholdA) != math.Float64bits(b.ThresholdA) ||
		math.Float64bits(a.ThresholdB) != math.Float64bits(b.ThresholdB) {
		return false
	}
	if len(a.Segments) != len(b.Segments) {
		return false
	}
	for i := range a.Segments {
		x, y := a.Segments[i], b.Segments[i]
		if x.Interval != y.Interval || x.Suspicious != y.Suspicious ||
			math.Float64bits(x.Rate) != math.Float64bits(y.Rate) {
			return false
		}
	}
	return true
}

func reportsEqual(a, b Report) bool {
	if !mcResultsEqual(a.MC, b.MC) ||
		!arcResultsEqual(a.HARC, b.HARC) || !arcResultsEqual(a.LARC, b.LARC) ||
		!curvesEqual(a.HC.Curve, b.HC.Curve) || !intervalsEqual(a.HC.Intervals, b.HC.Intervals) ||
		!curvesEqual(a.ME.Curve, b.ME.Curve) || !intervalsEqual(a.ME.Intervals, b.ME.Intervals) {
		return false
	}
	if len(a.Suspicious) != len(b.Suspicious) || !intervalsEqual(a.Intervals, b.Intervals) {
		return false
	}
	for i := range a.Suspicious {
		if a.Suspicious[i] != b.Suspicious[i] {
			return false
		}
	}
	return true
}

// equivSeries generates a sorted series stressing the kernel edge cases:
// mode selects duplicate-day runs, all-equal values, bimodal values (so HC
// fires), a lone rating, or the empty series.
func equivSeries(rng *rand.Rand, mode, n int) dataset.Series {
	switch mode % 5 {
	case 1: // all-equal values on distinct days
		s := make(dataset.Series, n)
		for i := range s {
			s[i] = dataset.Rating{Day: float64(i), Value: 3.5, Rater: fmt.Sprintf("r%02d", i%17)}
		}
		return s
	case 2: // duplicate days: bursts of ratings on the same day
		var s dataset.Series
		day := 0.0
		for len(s) < n {
			burst := 1 + int(rng.UintN(5))
			for j := 0; j < burst && len(s) < n; j++ {
				s = append(s, dataset.Rating{
					Day:   day,
					Value: float64(rng.UintN(11)) / 2,
					Rater: fmt.Sprintf("r%02d", rng.UintN(23)),
				})
			}
			day += float64(rng.UintN(4))
		}
		return s
	case 3: // bimodal: honest band plus a low-value population
		s := make(dataset.Series, n)
		for i := range s {
			v := 4.0 + float64(rng.UintN(3))/2
			if rng.UintN(3) == 0 {
				v = float64(rng.UintN(3)) / 2
			}
			s[i] = dataset.Rating{
				Day:   float64(i) * 0.8,
				Value: v,
				Rater: fmt.Sprintf("r%02d", rng.UintN(9)),
			}
		}
		return s
	case 4: // degenerate sizes: empty or single rating
		if n%2 == 0 {
			return nil
		}
		return dataset.Series{{Day: 2, Value: 1.5, Rater: "solo"}}
	default: // generic random walk over days
		var s dataset.Series
		day := 0.0
		for i := 0; i < n; i++ {
			day += float64(rng.UintN(16)) / 4
			s = append(s, dataset.Rating{
				Day:   day,
				Value: float64(rng.UintN(11)) / 2,
				Rater: fmt.Sprintf("r%02d", rng.UintN(29)),
			})
		}
		return s
	}
}

// equivConfig perturbs the default configuration into degenerate corners:
// tiny windows, zero steps, steps larger than the window.
func equivConfig(rng *rand.Rand) Config {
	cfg := DefaultConfig()
	switch rng.UintN(4) {
	case 1:
		cfg.MCWindowDays = float64(rng.UintN(8))
		cfg.ARCWindowDays = float64(rng.UintN(10))
		cfg.HCWindowRatings = int(rng.UintN(6)) // incl. 0 and 1
		cfg.HCStepRatings = int(rng.UintN(4))   // incl. 0 (→ 1)
		cfg.MEWindowRatings = int(rng.UintN(12))
		cfg.MEOrder = int(rng.UintN(3)) + 1
	case 2:
		cfg.HCWindowRatings = 2 + int(rng.UintN(5))
		cfg.HCStepRatings = cfg.HCWindowRatings + 1 + int(rng.UintN(40)) // step > window
		cfg.MEWindowRatings = 2*cfg.MEOrder + 1 + int(rng.UintN(4))
		cfg.MEStepRatings = cfg.MEWindowRatings + int(rng.UintN(20))
	case 3:
		cfg.HCWindowRatings = 200 // window longer than most series
		cfg.MEWindowRatings = 150
		cfg.MCWindowDays = 1000
	}
	return cfg
}

// trustSources returns the sources the MC segment test is exercised with: a
// real manager with accumulated evidence, the neutral source, and nil.
func trustSources(rng *rand.Rand) []TrustSource {
	mgr := trust.NewManager()
	for i := 0; i < 40; i++ {
		n := int(rng.UintN(20))
		f := int(rng.UintN(20))
		mgr.Observe(fmt.Sprintf("r%02d", rng.UintN(29)), n, f)
	}
	return []TrustSource{mgr, NeutralTrust(), nil}
}

func TestKernelEquivalenceRandomized(t *testing.T) {
	for seed := uint64(0); seed < 60; seed++ {
		rng := stats.NewRNG(seed)
		s := equivSeries(rng, int(seed), 20+int(rng.UintN(300)))
		cfg := equivConfig(rng)
		horizon := 1.0
		if len(s) > 0 {
			_, last := s.Span()
			horizon = last + 1
		}

		if got, want := MCCurve(s, cfg), mcCurveRef(s, cfg); !curvesEqual(got, want) {
			t.Fatalf("seed %d: MCCurve diverges from reference", seed)
		}
		for _, ts := range trustSources(rng) {
			if got, want := MeanChange(s, cfg, ts), meanChangeRef(s, cfg, ts); !mcResultsEqual(got, want) {
				t.Fatalf("seed %d: MeanChange diverges from reference (ts=%T)", seed, ts)
			}
		}
		for _, band := range []ARCBand{AllRatings, HighBand, LowBand} {
			got := ArrivalRateChange(s, horizon, band, cfg)
			want := arrivalRateChangeRef(s, horizon, band, cfg)
			if !arcResultsEqual(got, want) {
				t.Fatalf("seed %d: ArrivalRateChange(%v) diverges from reference", seed, band)
			}
		}
		gotHC, wantHC := HistogramChange(s, cfg), histogramChangeRef(s, cfg)
		if !curvesEqual(gotHC.Curve, wantHC.Curve) || !intervalsEqual(gotHC.Intervals, wantHC.Intervals) {
			t.Fatalf("seed %d: HistogramChange diverges from reference", seed)
		}
		gotME, wantME := ModelError(s, cfg), modelErrorRef(s, cfg)
		if !curvesEqual(gotME.Curve, wantME.Curve) || !intervalsEqual(gotME.Intervals, wantME.Intervals) {
			t.Fatalf("seed %d: ModelError diverges from reference", seed)
		}
	}
}

// TestScratchReuseBitExact drives one Scratch through many different series
// and configurations and checks every Report against a fresh-buffer run:
// leftover buffer contents from a previous, larger series must never leak
// into a result.
func TestScratchReuseBitExact(t *testing.T) {
	sc := NewScratch()
	for seed := uint64(100); seed < 140; seed++ {
		rng := stats.NewRNG(seed)
		s := equivSeries(rng, int(seed), 10+int(rng.UintN(250)))
		cfg := equivConfig(rng)
		horizon := 1.0
		if len(s) > 0 {
			_, last := s.Span()
			horizon = last + 1
		}
		got := AnalyzeWith(s, horizon, cfg, nil, sc)
		want := Analyze(s, horizon, cfg, nil)
		if !reportsEqual(got, want) {
			t.Fatalf("seed %d: scratch-reuse Analyze diverges from fresh run", seed)
		}
	}
}

// TestKernelEquivalenceEdgeCases pins the hand-picked corners: empty
// series, single rating, two ratings on one day, all-equal window values
// (every gap zero), and a window exactly the series length.
func TestKernelEquivalenceEdgeCases(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HCWindowRatings = 4
	cfg.HCStepRatings = 3
	cfg.MEWindowRatings = 9
	cfg.MEOrder = 4

	cases := []dataset.Series{
		nil,
		{{Day: 0, Value: 2.5, Rater: "a"}},
		{{Day: 1, Value: 2.5, Rater: "a"}, {Day: 1, Value: 2.5, Rater: "b"}},
		func() dataset.Series { // all-equal values, duplicate days
			var s dataset.Series
			for i := 0; i < 12; i++ {
				s = append(s, dataset.Rating{Day: float64(i / 3), Value: 4, Rater: fmt.Sprintf("r%d", i)})
			}
			return s
		}(),
		func() dataset.Series { // window == series length
			var s dataset.Series
			for i := 0; i < 4; i++ {
				s = append(s, dataset.Rating{Day: float64(i), Value: float64(i), Rater: "x"})
			}
			return s
		}(),
	}
	for i, s := range cases {
		horizon := 1.0
		if len(s) > 0 {
			_, last := s.Span()
			horizon = last + 1
		}
		if got, want := MCCurve(s, cfg), mcCurveRef(s, cfg); !curvesEqual(got, want) {
			t.Errorf("case %d: MCCurve diverges", i)
		}
		if got, want := MeanChange(s, cfg, nil), meanChangeRef(s, cfg, nil); !mcResultsEqual(got, want) {
			t.Errorf("case %d: MeanChange diverges", i)
		}
		for _, band := range []ARCBand{AllRatings, HighBand, LowBand} {
			if got, want := ArrivalRateChange(s, horizon, band, cfg), arrivalRateChangeRef(s, horizon, band, cfg); !arcResultsEqual(got, want) {
				t.Errorf("case %d: ARC(%v) diverges", i, band)
			}
		}
		gotHC, wantHC := HistogramChange(s, cfg), histogramChangeRef(s, cfg)
		if !curvesEqual(gotHC.Curve, wantHC.Curve) || !intervalsEqual(gotHC.Intervals, wantHC.Intervals) {
			t.Errorf("case %d: HistogramChange diverges", i)
		}
		gotME, wantME := ModelError(s, cfg), modelErrorRef(s, cfg)
		if !curvesEqual(gotME.Curve, wantME.Curve) || !intervalsEqual(gotME.Intervals, wantME.Intervals) {
			t.Errorf("case %d: ModelError diverges", i)
		}
	}
}

// TestAverageTrustRangeMatchesAverageTrust pins the satellite contract: the
// slice-free trust walk equals TrustSource.AverageTrust over the same
// raters, bit for bit, for both the manager and the neutral source.
func TestAverageTrustRangeMatchesAverageTrust(t *testing.T) {
	rng := stats.NewRNG(7)
	s := equivSeries(rng, 0, 120)
	raters := make([]string, len(s))
	for i, r := range s {
		raters[i] = r.Rater
	}
	for _, ts := range trustSources(rng)[:2] {
		got := averageTrustRange(ts, s)
		want := ts.AverageTrust(raters)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("%T: averageTrustRange = %v, AverageTrust = %v", ts, got, want)
		}
	}
}
