package detect

// Scratch holds the reusable working buffers of the incremental detector
// kernels: the ARC daily-count and quantile buffers, the HC
// order-maintained sliding window, and the ME window-value buffer. A
// Scratch is plain memory with no result state — reusing one across series
// cannot change any output bit (pinned by the equivalence tests) — but it
// is not safe for concurrent use; give each goroutine its own (the engine's
// worker pool does exactly that).
//
// Results returned by the detectors never alias scratch memory: curves,
// peaks, segments and intervals are freshly allocated, so a Report outlives
// any later reuse of the Scratch that produced it. With a warm Scratch a
// full Analyze performs O(1) allocations per product (the returned result
// itself) instead of O(windows).
type Scratch struct {
	counts []float64 // ARC: daily band counts for the current series
	quant  []float64 // ARC: sorted copy of counts for the baseline quantile
	window []float64 // HC: ascending-sorted sliding window values
	vals   []float64 // ME: current window values for the AR fit
}

// NewScratch returns an empty scratch; buffers grow on first use and are
// reused afterwards.
func NewScratch() *Scratch { return &Scratch{} }

// grow returns buf resized to n, reusing its backing array when capacity
// allows. Contents are unspecified; callers overwrite every element.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// countsBuf returns the ARC counts buffer resized to n and zeroed.
func (sc *Scratch) countsBuf(n int) []float64 {
	sc.counts = grow(sc.counts, n)
	clearFloats(sc.counts)
	return sc.counts
}

// quantBuf returns the quantile buffer resized to n (contents unspecified).
func (sc *Scratch) quantBuf(n int) []float64 {
	sc.quant = grow(sc.quant, n)
	return sc.quant
}

// windowBuf returns the HC window buffer emptied with capacity ≥ n.
func (sc *Scratch) windowBuf(n int) []float64 {
	sc.window = grow(sc.window, n)
	return sc.window[:0]
}

// valsBuf returns the ME values buffer resized to n (contents unspecified).
func (sc *Scratch) valsBuf(n int) []float64 {
	sc.vals = grow(sc.vals, n)
	return sc.vals
}

//lint:hotpath
func clearFloats(xs []float64) {
	for i := range xs {
		xs[i] = 0
	}
}
