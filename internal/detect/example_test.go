package detect_test

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/detect"
)

func ExampleAnalyze() {
	// 100 days of honest 4-star ratings with a 10-day block of 0.5-star
	// unfair ratings planted on days 40–50.
	var s dataset.Series
	for d := 0; d < 100; d++ {
		for i := 0; i < 3; i++ {
			s = append(s, dataset.Rating{
				Day:   float64(d) + float64(i)/3,
				Value: 4,
				Rater: fmt.Sprintf("h%d-%d", d, i),
			})
		}
	}
	for i := 0; i < 30; i++ {
		s = append(s, dataset.Rating{
			Day:    40 + float64(i)/3,
			Value:  0.5,
			Rater:  fmt.Sprintf("bot%02d", i),
			Unfair: true,
		})
	}
	s.Sort()

	rep := detect.Analyze(s, 100, detect.DefaultConfig(), nil)
	caught := 0
	for i, r := range s {
		if r.Unfair && rep.Suspicious[i] {
			caught++
		}
	}
	fmt.Printf("flagged %d ratings, %d of the 30 unfair ones\n", rep.SuspiciousCount(), caught)
	fmt.Printf("suspicious interval starts near day %.0f\n", rep.Intervals[0].Start)
	// Output:
	// flagged 30 ratings, 30 of the 30 unfair ones
	// suspicious interval starts near day 35
}
