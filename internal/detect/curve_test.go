package detect

import "testing"

func TestCurvePeaks(t *testing.T) {
	c := Curve{
		X: []float64{0, 1, 2, 3, 4, 5, 6, 7, 8},
		Y: []float64{0, 1, 5, 1, 0, 2, 9, 2, 0},
	}
	peaks := c.Peaks(3, 1)
	if len(peaks) != 2 || peaks[0] != 2 || peaks[1] != 6 {
		t.Errorf("Peaks = %v, want [2 6]", peaks)
	}
	// High threshold keeps only the strongest.
	if got := c.Peaks(8, 1); len(got) != 1 || got[0] != 6 {
		t.Errorf("Peaks(8) = %v, want [6]", got)
	}
	if got := c.Peaks(100, 1); got != nil {
		t.Errorf("Peaks(100) = %v, want nil", got)
	}
}

func TestCurvePeaksMinSeparation(t *testing.T) {
	// Two nearby maxima: only the larger survives with wide minSep.
	c := Curve{
		X: []float64{0, 1, 2, 3, 4},
		Y: []float64{0, 5, 1, 7, 0},
	}
	peaks := c.Peaks(3, 5)
	if len(peaks) != 1 || peaks[0] != 3 {
		t.Errorf("Peaks = %v, want [3]", peaks)
	}
	// Narrow separation keeps both.
	peaks = c.Peaks(3, 1.5)
	if len(peaks) != 2 {
		t.Errorf("Peaks = %v, want two", peaks)
	}
}

func TestCurvePeaksPlateau(t *testing.T) {
	// A flat-topped peak still yields at least one peak.
	c := Curve{
		X: []float64{0, 1, 2, 3, 4},
		Y: []float64{0, 4, 4, 4, 0},
	}
	peaks := c.Peaks(3, 0.5)
	if len(peaks) == 0 {
		t.Error("plateau produced no peak")
	}
}

func TestCurveMax(t *testing.T) {
	if got := (Curve{}).Max(); got != 0 {
		t.Errorf("empty Max = %v", got)
	}
	c := Curve{X: []float64{0, 1}, Y: []float64{-3, -7}}
	if got := c.Max(); got != -3 {
		t.Errorf("Max = %v, want -3", got)
	}
}

func TestIntervalOps(t *testing.T) {
	a := Interval{Start: 1, End: 5}
	b := Interval{Start: 4, End: 9}
	c := Interval{Start: 6, End: 7}

	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("a and b should overlap")
	}
	if a.Overlaps(c) {
		t.Error("a and c should not overlap")
	}
	got := a.Intersect(b)
	if got.Start != 4 || got.End != 5 {
		t.Errorf("Intersect = %+v", got)
	}
	if !a.Intersect(c).Empty() {
		t.Error("disjoint Intersect should be empty")
	}
	if !a.Contains(1) || a.Contains(5) || a.Contains(0.5) {
		t.Error("Contains half-open semantics violated")
	}
	if got := a.Duration(); got != 4 {
		t.Errorf("Duration = %v", got)
	}
	if got := (Interval{Start: 5, End: 2}).Duration(); got != 0 {
		t.Errorf("empty Duration = %v", got)
	}
}

func TestMergeIntervals(t *testing.T) {
	ivs := []Interval{{0, 2}, {1, 4}, {4, 5}, {7, 9}}
	got := mergeIntervals(ivs)
	if len(got) != 2 {
		t.Fatalf("merged = %v", got)
	}
	if got[0] != (Interval{0, 5}) || got[1] != (Interval{7, 9}) {
		t.Errorf("merged = %v", got)
	}
	if got := mergeIntervals(nil); got != nil {
		t.Errorf("merge(nil) = %v", got)
	}
}

func TestNormalizeIntervals(t *testing.T) {
	ivs := []Interval{{7, 9}, {0, 2}, {1, 3}}
	got := normalizeIntervals(ivs)
	if len(got) != 2 || got[0] != (Interval{0, 3}) || got[1] != (Interval{7, 9}) {
		t.Errorf("normalized = %v", got)
	}
}
