package detect

import (
	"repro/internal/dataset"
)

// TrustSource supplies rater trust to the detectors. The zero-history trust
// is 0.5 (beta model), so a source returning 0.5 for everyone disables the
// trust-assisted branch of the MC segment test.
type TrustSource interface {
	// Trust returns the current trust in the given rater.
	Trust(rater string) float64
	// AverageTrust returns the mean trust over the raters (0.5 for none).
	AverageTrust(raters []string) float64
}

// neutralTrust is the TrustSource used when no trust manager is wired in.
type neutralTrust struct{}

func (neutralTrust) Trust(string) float64          { return 0.5 }
func (neutralTrust) AverageTrust([]string) float64 { return 0.5 }

// NeutralTrust returns a TrustSource that reports 0.5 for every rater.
func NeutralTrust() TrustSource { return neutralTrust{} }

// averageTrustRange averages ts's trust over the raters of s by walking the
// series directly instead of materializing a []string. Summing Trust() per
// rating in series order is bit-identical to AverageTrust over the same
// raters for every TrustSource in the repo (trust.Manager sums Trust(id) in
// input order; the neutral source's constant 0.5 averages back to exactly
// 0.5 since n·0.5 and its division by n are both exact).
func averageTrustRange(ts TrustSource, s dataset.Series) float64 {
	if len(s) == 0 {
		return ts.AverageTrust(nil)
	}
	var sum float64
	for i := range s {
		sum += ts.Trust(s[i].Rater)
	}
	return sum / float64(len(s))
}

// MCCurve computes the mean-change indicator curve of Section IV-B.2: for
// each rating k, the GLRT statistic for a mean change at t(k) between the
// ratings in [t(k)−W, t(k)) and [t(k), t(k)+W) with W = MCWindowDays/2.
// Boundary positions use whatever smaller half-windows are available.
//
// The kernel is an incremental two-pointer sweep: because the series is
// sorted, the three window boundaries (t−W, t, t+W) are non-decreasing in
// k, so each advances monotonically across the whole series — O(n) pointer
// work total instead of two binary searches per rating — and the GLRT
// statistics are computed directly over series index ranges, with no
// per-rating Values() copies. The window statistics themselves are
// recomputed exactly per position (same summation order as the reference
// kernel), so the curve is bit-identical to mcCurveRef.
func MCCurve(s dataset.Series, cfg Config) Curve {
	n := len(s)
	c := Curve{X: make([]float64, n), Y: make([]float64, n)}
	half := cfg.MCWindowDays / 2
	lo, mid, hi := 0, 0, 0
	for k := 0; k < n; k++ {
		t := s[k].Day
		for lo < n && s[lo].Day < t-half {
			lo++
		}
		for mid < n && s[mid].Day < t {
			mid++
		}
		for hi < n && s[hi].Day < t+half {
			hi++
		}
		x1 := s[lo:mid]
		x2 := s[mid:hi]
		sigma2 := seriesPooledVariance(x1, x2, 0.25)
		c.X[k] = t
		c.Y[k] = seriesMeanChangeGLRT(x1, x2, sigma2)
	}
	return c
}

// seriesMean mirrors stats.Mean over a series' values (same summation
// order, no copy).
//
//lint:hotpath
func seriesMean(s dataset.Series) float64 {
	if len(s) == 0 {
		return 0
	}
	var sum float64
	for i := range s {
		sum += s[i].Value
	}
	return sum / float64(len(s))
}

// seriesSum mirrors stats.Sum over a series' values.
//
//lint:hotpath
func seriesSum(s dataset.Series) float64 {
	var sum float64
	for i := range s {
		sum += s[i].Value
	}
	return sum
}

// seriesPooledVariance mirrors stats.PooledVariance over two series
// segments (identical arithmetic, no copies).
//
//lint:hotpath
func seriesPooledVariance(x1, x2 dataset.Series, fallback float64) float64 {
	n := len(x1) + len(x2)
	if n < 3 {
		return fallback
	}
	m1, m2 := seriesMean(x1), seriesMean(x2)
	var ss float64
	for i := range x1 {
		d := x1[i].Value - m1
		ss += d * d
	}
	for i := range x2 {
		d := x2[i].Value - m2
		ss += d * d
	}
	v := ss / float64(n-2)
	if v <= 0 {
		return fallback
	}
	return v
}

// seriesMeanChangeGLRT mirrors stats.MeanChangeGLRT over two series
// segments.
//
//lint:hotpath
func seriesMeanChangeGLRT(x1, x2 dataset.Series, sigma2 float64) float64 {
	n1, n2 := len(x1), len(x2)
	if n1 == 0 || n2 == 0 || sigma2 <= 0 {
		return 0
	}
	d := seriesMean(x1) - seriesMean(x2)
	w := 2 * float64(n1) * float64(n2) / float64(n1+n2)
	return w * d * d / (2 * sigma2)
}

// MCSegment is one run of ratings between consecutive MC peaks.
type MCSegment struct {
	Interval Interval
	Mean     float64 // Bj: mean rating value in the segment
	AvgTrust float64 // Tj: mean trust of the segment's raters
	// Shift is Bj minus the mean of the other segments; its sign tells a
	// downgrade-shaped anomaly (negative) from a boost-shaped one.
	Shift      float64
	Suspicious bool
}

// MCResult is the outcome of the mean-change detector on one series.
type MCResult struct {
	Curve    Curve
	Peaks    []int // indices into Curve (== series indices)
	Segments []MCSegment
}

// Suspicious reports whether any segment was marked suspicious.
func (r MCResult) Suspicious() bool {
	for _, seg := range r.Segments {
		if seg.Suspicious {
			return true
		}
	}
	return false
}

// SuspiciousIntervals returns the intervals of the suspicious segments.
func (r MCResult) SuspiciousIntervals() []Interval {
	var out []Interval
	for _, seg := range r.Segments {
		if seg.Suspicious {
			out = append(out, seg.Interval)
		}
	}
	return out
}

// MeanChange runs the full MC detector of Section IV-B: indicator curve,
// peak detection, segmentation at the peaks, and the two-condition segment
// suspiciousness test (large mean change, or moderate mean change plus
// below-par rater trust). Segment means and trust averages walk series
// index ranges directly — the detector performs no per-segment slice
// materialization (bit-identical to meanChangeRef, which does).
func MeanChange(s dataset.Series, cfg Config, ts TrustSource) MCResult {
	if ts == nil {
		ts = NeutralTrust()
	}
	res := MCResult{Curve: MCCurve(s, cfg)}
	if len(s) == 0 {
		return res
	}
	res.Peaks = res.Curve.Peaks(cfg.MCPeakThreshold, cfg.MCPeakMinSepDays)

	bounds := segmentBounds(s, res.Peaks)
	totalSum := seriesSum(s)
	totalN := float64(len(s))
	tAvg := averageTrustRange(ts, s)

	res.Segments = make([]MCSegment, 0, len(bounds))
	for _, iv := range bounds {
		seg := s.Between(iv.Start, iv.End)
		if len(seg) == 0 {
			continue
		}
		m := MCSegment{
			Interval: iv,
			Mean:     seriesMean(seg),
			AvgTrust: averageTrustRange(ts, seg),
		}
		// Compare the segment mean against the mean of the *other*
		// segments: a long attack segment would otherwise drag the global
		// average toward itself and dilute its own evidence.
		bAvg := m.Mean
		if rest := totalN - float64(len(seg)); rest > 0 {
			bAvg = (totalSum - m.Mean*float64(len(seg))) / rest
		}
		m.Shift = m.Mean - bAvg
		dev := abs(m.Shift)
		switch {
		case dev > cfg.MCThreshold1:
			m.Suspicious = true
		case dev > cfg.MCThreshold2 && tAvg > 0 && m.AvgTrust/tAvg < cfg.MCTrustRatio:
			m.Suspicious = true
		}
		res.Segments = append(res.Segments, m)
	}
	return res
}

// segmentBounds splits the series' time span at the peak positions,
// returning M+1 intervals for M peaks (or one interval covering everything
// when there are no peaks).
func segmentBounds(s dataset.Series, peaks []int) []Interval {
	first, last := s.Span()
	end := last + 1e-9 // make the final interval include the last rating
	if len(peaks) == 0 {
		return []Interval{{Start: first, End: end}}
	}
	var out []Interval
	prev := first
	for _, p := range peaks {
		t := s[p].Day
		if t > prev {
			out = append(out, Interval{Start: prev, End: t})
		}
		prev = t
	}
	if prev < end {
		out = append(out, Interval{Start: prev, End: end})
	}
	return out
}
