package detect

import (
	"repro/internal/dataset"
	"repro/internal/stats"
)

// TrustSource supplies rater trust to the detectors. The zero-history trust
// is 0.5 (beta model), so a source returning 0.5 for everyone disables the
// trust-assisted branch of the MC segment test.
type TrustSource interface {
	// Trust returns the current trust in the given rater.
	Trust(rater string) float64
	// AverageTrust returns the mean trust over the raters (0.5 for none).
	AverageTrust(raters []string) float64
}

// neutralTrust is the TrustSource used when no trust manager is wired in.
type neutralTrust struct{}

func (neutralTrust) Trust(string) float64          { return 0.5 }
func (neutralTrust) AverageTrust([]string) float64 { return 0.5 }

// NeutralTrust returns a TrustSource that reports 0.5 for every rater.
func NeutralTrust() TrustSource { return neutralTrust{} }

// MCCurve computes the mean-change indicator curve of Section IV-B.2: for
// each rating k, the GLRT statistic for a mean change at t(k) between the
// ratings in [t(k)−W, t(k)) and [t(k), t(k)+W) with W = MCWindowDays/2.
// Boundary positions use whatever smaller half-windows are available.
func MCCurve(s dataset.Series, cfg Config) Curve {
	n := len(s)
	c := Curve{X: make([]float64, n), Y: make([]float64, n)}
	half := cfg.MCWindowDays / 2
	for k := 0; k < n; k++ {
		t := s[k].Day
		x1 := s.Between(t-half, t).Values()
		x2 := s.Between(t, t+half).Values()
		sigma2 := stats.PooledVariance(x1, x2, 0.25)
		c.X[k] = t
		c.Y[k] = stats.MeanChangeGLRT(x1, x2, sigma2)
	}
	return c
}

// MCSegment is one run of ratings between consecutive MC peaks.
type MCSegment struct {
	Interval Interval
	Mean     float64 // Bj: mean rating value in the segment
	AvgTrust float64 // Tj: mean trust of the segment's raters
	// Shift is Bj minus the mean of the other segments; its sign tells a
	// downgrade-shaped anomaly (negative) from a boost-shaped one.
	Shift      float64
	Suspicious bool
}

// MCResult is the outcome of the mean-change detector on one series.
type MCResult struct {
	Curve    Curve
	Peaks    []int // indices into Curve (== series indices)
	Segments []MCSegment
}

// Suspicious reports whether any segment was marked suspicious.
func (r MCResult) Suspicious() bool {
	for _, seg := range r.Segments {
		if seg.Suspicious {
			return true
		}
	}
	return false
}

// SuspiciousIntervals returns the intervals of the suspicious segments.
func (r MCResult) SuspiciousIntervals() []Interval {
	var out []Interval
	for _, seg := range r.Segments {
		if seg.Suspicious {
			out = append(out, seg.Interval)
		}
	}
	return out
}

// MeanChange runs the full MC detector of Section IV-B: indicator curve,
// peak detection, segmentation at the peaks, and the two-condition segment
// suspiciousness test (large mean change, or moderate mean change plus
// below-par rater trust).
func MeanChange(s dataset.Series, cfg Config, ts TrustSource) MCResult {
	if ts == nil {
		ts = NeutralTrust()
	}
	res := MCResult{Curve: MCCurve(s, cfg)}
	if len(s) == 0 {
		return res
	}
	res.Peaks = res.Curve.Peaks(cfg.MCPeakThreshold, cfg.MCPeakMinSepDays)

	bounds := segmentBounds(s, res.Peaks)
	overall := s.Values()
	totalSum := stats.Sum(overall)
	totalN := float64(len(overall))

	// Tavg over all raters in the series.
	allRaters := make([]string, len(s))
	for i, r := range s {
		allRaters[i] = r.Rater
	}
	tAvg := ts.AverageTrust(allRaters)

	for _, iv := range bounds {
		seg := s.Between(iv.Start, iv.End)
		if len(seg) == 0 {
			continue
		}
		raters := make([]string, len(seg))
		for i, r := range seg {
			raters[i] = r.Rater
		}
		m := MCSegment{
			Interval: iv,
			Mean:     stats.Mean(seg.Values()),
			AvgTrust: ts.AverageTrust(raters),
		}
		// Compare the segment mean against the mean of the *other*
		// segments: a long attack segment would otherwise drag the global
		// average toward itself and dilute its own evidence.
		bAvg := m.Mean
		if rest := totalN - float64(len(seg)); rest > 0 {
			bAvg = (totalSum - m.Mean*float64(len(seg))) / rest
		}
		m.Shift = m.Mean - bAvg
		dev := abs(m.Shift)
		switch {
		case dev > cfg.MCThreshold1:
			m.Suspicious = true
		case dev > cfg.MCThreshold2 && tAvg > 0 && m.AvgTrust/tAvg < cfg.MCTrustRatio:
			m.Suspicious = true
		}
		res.Segments = append(res.Segments, m)
	}
	return res
}

// segmentBounds splits the series' time span at the peak positions,
// returning M+1 intervals for M peaks (or one interval covering everything
// when there are no peaks).
func segmentBounds(s dataset.Series, peaks []int) []Interval {
	first, last := s.Span()
	end := last + 1e-9 // make the final interval include the last rating
	if len(peaks) == 0 {
		return []Interval{{Start: first, End: end}}
	}
	var out []Interval
	prev := first
	for _, p := range peaks {
		t := s[p].Day
		if t > prev {
			out = append(out, Interval{Start: prev, End: t})
		}
		prev = t
	}
	if prev < end {
		out = append(out, Interval{Start: prev, End: end})
	}
	return out
}
