package detect

import "repro/internal/dataset"

// Report is the joint outcome of the four detectors plus the two-path
// fusion of Figure 1 on one product's rating series.
type Report struct {
	MC   MCResult
	HARC ARCResult
	LARC ARCResult
	HC   HCResult
	ME   MEResult

	// Suspicious marks each rating index judged suspicious by the fusion.
	Suspicious []bool
	// Intervals is the merged set of time intervals in which suspicious
	// ratings were marked.
	Intervals []Interval
}

// SuspiciousCount returns the number of ratings marked suspicious.
func (r Report) SuspiciousCount() int {
	n := 0
	for _, s := range r.Suspicious {
		if s {
			n++
		}
	}
	return n
}

// Analyze runs the full detector stack and Figure 1 fusion on the series.
//
// Path 1 (strong attacks): when the MC detector flags a segment (a U-shape
// on the MC indicator curve) and the H-ARC (resp. L-ARC) detector shows a
// U-shape or a suspicious rate-increase segment overlapping it, the high
// (resp. low) ratings inside the overlap are marked suspicious.
//
// Path 2 (suspicious intervals): when H-ARC (resp. L-ARC) raises an alarm
// and the ME or HC detector flags an overlapping window, the high (resp.
// low) ratings inside the overlap are marked suspicious.
//
// Both paths always run (there may be multiple attacks against one
// product). horizon is the dataset horizon in days; ts supplies rater trust
// for the MC segment test (pass nil for the neutral 0.5 source).
func Analyze(s dataset.Series, horizon float64, cfg Config, ts TrustSource) Report {
	return AnalyzeWith(s, horizon, cfg, ts, nil)
}

// AnalyzeWith is Analyze with caller-owned scratch buffers: sc (from
// NewScratch) carries the detector kernels' working memory across calls, so
// a loop over many products performs O(1) window allocations per product
// instead of O(windows). Pass nil to allocate fresh buffers (equivalent to
// Analyze). The returned Report never aliases scratch memory; a Scratch
// must not be shared between concurrent calls.
func AnalyzeWith(s dataset.Series, horizon float64, cfg Config, ts TrustSource, sc *Scratch) Report {
	if sc == nil {
		sc = NewScratch()
	}
	rep := Report{
		MC:         MeanChange(s, cfg, ts),
		HARC:       arrivalRateChangeWith(sc, s, horizon, HighBand, cfg),
		LARC:       arrivalRateChangeWith(sc, s, horizon, LowBand, cfg),
		HC:         histogramChangeWith(sc, s, cfg),
		ME:         modelErrorWith(sc, s, cfg),
		Suspicious: make([]bool, len(s)),
	}
	if len(s) == 0 {
		return rep
	}

	var marked []Interval

	// Path 1: MC suspicious segment ∧ (H-ARC | L-ARC) U-shape or segment.
	// The bands are paired by direction: a downward mean shift can only be
	// explained by extra low ratings (L-ARC), an upward one by extra high
	// ratings (H-ARC).
	for _, seg := range rep.MC.Segments {
		if !seg.Suspicious {
			continue
		}
		arc := &rep.LARC
		if seg.Shift > 0 {
			arc = &rep.HARC
		}
		for _, arcIv := range append(arc.UShape(), arc.SuspiciousIntervals()...) {
			common := seg.Interval.Intersect(arcIv)
			if common.Empty() {
				continue
			}
			markBand(s, common, *arc, rep.Suspicious)
			marked = append(marked, common)
		}
	}

	// Path 2: (H-ARC | L-ARC) alarm ∧ (ME | HC) suspicious window. Once a
	// second-stage detector confirms any part of an ARC-suspicious
	// segment, the band ratings of the *whole* segment are marked: the
	// confirmation says the elevated band rate is an attack, and the
	// attack spans the segment, not just the confirming window.
	secondStage := append(append([]Interval(nil), rep.ME.Intervals...), rep.HC.Intervals...)
	for _, arc := range []*ARCResult{&rep.HARC, &rep.LARC} {
		if !arc.Alarm() {
			continue
		}
		for _, arcIv := range arc.SuspiciousIntervals() {
			for _, sig := range secondStage {
				if !arcIv.Overlaps(sig) {
					continue
				}
				markBand(s, arcIv, *arc, rep.Suspicious)
				marked = append(marked, arcIv)
				break
			}
		}
	}

	rep.Intervals = normalizeIntervals(marked)
	return rep
}

// markBand marks ratings inside iv whose value falls in the detector's band
// — above threshold_a for H-ARC, below threshold_b for L-ARC. The band
// threshold is additionally clamped to the mean of the ratings *outside*
// the interval: for a mean-4 product, threshold_a ≈ 2 would otherwise mark
// virtually every rating in a boost-suspicious interval, and removing them
// all would distort the aggregate more than the attack itself (the MP
// metric counts over-correction as manipulation too).
func markBand(s dataset.Series, iv Interval, arc ARCResult, suspicious []bool) {
	context := contextMean(s, iv)
	hi := maxF(arc.ThresholdA, context)
	lo := minF(arc.ThresholdB, context)
	for i, r := range s {
		if !iv.Contains(r.Day) {
			continue
		}
		switch arc.Band {
		case HighBand:
			if r.Value > hi {
				suspicious[i] = true
			}
		case LowBand:
			if r.Value < lo {
				suspicious[i] = true
			}
		default:
			suspicious[i] = true
		}
	}
}

// contextMean returns the mean rating value outside the interval (falling
// back to the whole-series mean when the interval covers everything).
//
//lint:hotpath
func contextMean(s dataset.Series, iv Interval) float64 {
	var sum float64
	var n int
	for _, r := range s {
		if iv.Contains(r.Day) {
			continue
		}
		sum += r.Value
		n++
	}
	if n == 0 {
		return s.Mean()
	}
	return sum / float64(n)
}

// normalizeIntervals sorts and merges a bag of intervals.
func normalizeIntervals(ivs []Interval) []Interval {
	if len(ivs) == 0 {
		return nil
	}
	sorted := make([]Interval, len(ivs))
	copy(sorted, ivs)
	for i := 1; i < len(sorted); i++ { // insertion sort: small inputs
		for j := i; j > 0 && sorted[j].Start < sorted[j-1].Start; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return mergeIntervals(sorted)
}
