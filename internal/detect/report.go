package detect

// Clone returns a deep copy of the report: the copy shares no mutable
// memory with the original, so a cached Report can be replayed (its
// Suspicious marks handed to a caller that may keep or mutate them) while
// the cache retains a pristine snapshot. This is the snapshot contract the
// engine's memo plane relies on — AnalyzeWith already guarantees a Report
// never aliases scratch memory, and Clone extends that to "never aliases
// another Report".
func (r Report) Clone() Report {
	out := r
	out.MC = r.MC.clone()
	out.HARC = r.HARC.clone()
	out.LARC = r.LARC.clone()
	out.HC = r.HC.clone()
	out.ME = r.ME.clone()
	out.Suspicious = cloneBools(r.Suspicious)
	out.Intervals = cloneIntervals(r.Intervals)
	return out
}

func (c Curve) clone() Curve {
	return Curve{X: cloneFloats(c.X), Y: cloneFloats(c.Y)}
}

func (r MCResult) clone() MCResult {
	out := r
	out.Curve = r.Curve.clone()
	out.Peaks = cloneInts(r.Peaks)
	// MCSegment is a pure value struct; copying the slice copies the data.
	out.Segments = append([]MCSegment(nil), r.Segments...)
	return out
}

func (r ARCResult) clone() ARCResult {
	out := r
	out.Curve = r.Curve.clone()
	out.Peaks = cloneInts(r.Peaks)
	out.Segments = append([]ARCSegment(nil), r.Segments...)
	return out
}

func (r HCResult) clone() HCResult {
	return HCResult{Curve: r.Curve.clone(), Intervals: cloneIntervals(r.Intervals)}
}

func (r MEResult) clone() MEResult {
	return MEResult{Curve: r.Curve.clone(), Intervals: cloneIntervals(r.Intervals)}
}

func cloneFloats(xs []float64) []float64 { return append([]float64(nil), xs...) }
func cloneInts(xs []int) []int           { return append([]int(nil), xs...) }
func cloneBools(xs []bool) []bool        { return append([]bool(nil), xs...) }

func cloneIntervals(ivs []Interval) []Interval { return append([]Interval(nil), ivs...) }
