package detect

import (
	"testing"

	"repro/internal/armodel"
)

func TestMEMethodAblation(t *testing.T) {
	// All three AR fitting methods must agree on the detector-level
	// decision for a clearly suspicious and a clearly clean series.
	atk := attacked(t, 19, 60, 75, 80, 1.0, 0.05)
	fair := fairSeries(t, 3)
	for _, m := range []armodel.Method{armodel.Covariance, armodel.Autocorrelation, armodel.Burg} {
		cfg := DefaultConfig()
		cfg.MEMethod = m
		if !ModelError(atk, cfg).Suspicious() {
			t.Errorf("method %v: dense constant attack not ME-suspicious", m)
		}
		if ModelError(fair, cfg).Suspicious() {
			t.Errorf("method %v: fair data ME-suspicious", m)
		}
	}
}

func TestFusionPathAblation(t *testing.T) {
	// Disable each path via its thresholds and check the other still
	// catches its kind of attack.
	strong := attacked(t, 23, 60, 80, 50, 1.0, 0.3)

	// Path 2 only (MC segments never fire with an impossible threshold):
	// the L-ARC + HC/ME stage must still mark the attack.
	cfg := DefaultConfig()
	cfg.MCThreshold1 = 99
	cfg.MCThreshold2 = 99
	rep := Analyze(strong, testHorizon, cfg, nil)
	recall, _ := recallPrecision(strong, rep.Suspicious)
	if recall < 0.4 {
		t.Errorf("path-2-only recall = %v", recall)
	}

	// Path 1 only (second-stage detectors never confirm): the MC + ARC
	// stage must still mark the attack.
	cfg = DefaultConfig()
	cfg.METhreshold = -1 // RelErr can never drop below −1
	cfg.HCThreshold = 99
	rep = Analyze(strong, testHorizon, cfg, nil)
	recall, _ = recallPrecision(strong, rep.Suspicious)
	if recall < 0.4 {
		t.Errorf("path-1-only recall = %v", recall)
	}
}

func TestWindowSizeSensitivity(t *testing.T) {
	// Halving / doubling the MC window must not break detection of the
	// canonical strong attack (threshold robustness ablation).
	strong := attacked(t, 23, 60, 80, 50, 1.0, 0.3)
	for _, wnd := range []float64{15, 30, 60} {
		cfg := DefaultConfig()
		cfg.MCWindowDays = wnd
		res := MeanChange(strong, cfg, nil)
		if !res.Suspicious() {
			t.Errorf("MC window %v days: attack not suspicious", wnd)
		}
	}
}
