package detect

import (
	"testing"

	"repro/internal/dataset"
)

func TestMCCurveSpikesAtChangePoint(t *testing.T) {
	// Synthetic series: mean 4 for days 0–50, mean 2 for days 50–100.
	var s dataset.Series
	for d := 0; d < 100; d++ {
		v := 4.0
		if d >= 50 {
			v = 2.0
		}
		for i := 0; i < 3; i++ {
			s = append(s, dataset.Rating{Day: float64(d) + float64(i)/3, Value: v})
		}
	}
	cfg := DefaultConfig()
	c := MCCurve(s, cfg)
	// The maximum statistic should be near day 50.
	best, bestY := 0.0, -1.0
	for i, y := range c.Y {
		if y > bestY {
			best, bestY = c.X[i], y
		}
	}
	if best < 45 || best > 55 {
		t.Errorf("MC max at day %v, want ≈50", best)
	}
	if bestY < cfg.MCPeakThreshold {
		t.Errorf("MC max %v below peak threshold %v", bestY, cfg.MCPeakThreshold)
	}
}

func TestMeanChangeQuietOnFairData(t *testing.T) {
	cfg := DefaultConfig()
	for seed := uint64(1); seed <= 5; seed++ {
		s := fairSeries(t, seed)
		res := MeanChange(s, cfg, nil)
		if res.Suspicious() {
			t.Errorf("seed %d: fair data flagged MC-suspicious (segments %+v)", seed, res.Segments)
		}
	}
}

func TestMeanChangeFlagsDowngradeAttack(t *testing.T) {
	cfg := DefaultConfig()
	// 50 ratings at ≈1.0 over days 60–80 against a mean-4 product.
	s := attacked(t, 7, 60, 80, 50, 1.0, 0.3)
	res := MeanChange(s, cfg, nil)
	if !res.Suspicious() {
		t.Fatalf("strong downgrade not MC-suspicious (peaks %v, max %v)", res.Peaks, res.Curve.Max())
	}
	// A suspicious segment should overlap the attack window.
	overlap := false
	for _, iv := range res.SuspiciousIntervals() {
		if iv.Overlaps(Interval{Start: 60, End: 80}) {
			overlap = true
		}
	}
	if !overlap {
		t.Errorf("suspicious intervals %v do not overlap attack window", res.SuspiciousIntervals())
	}
}

func TestMeanChangeSegmentBoundsCoverSeries(t *testing.T) {
	s := attacked(t, 3, 40, 60, 40, 1.5, 0.4)
	res := MeanChange(s, DefaultConfig(), nil)
	total := 0
	for _, seg := range res.Segments {
		total += len(s.Between(seg.Interval.Start, seg.Interval.End))
	}
	if total != len(s) {
		t.Errorf("segments cover %d of %d ratings", total, len(s))
	}
}

func TestARCQuietOnFairData(t *testing.T) {
	cfg := DefaultConfig()
	quietSeeds := 0
	for seed := uint64(1); seed <= 5; seed++ {
		s := fairSeries(t, seed)
		res := ArrivalRateChange(s, testHorizon, AllRatings, cfg)
		if !res.Suspicious() {
			quietSeeds++
		}
	}
	// Fair data has bursts (BurstProb), so allow occasional alarms, but
	// most seeds must stay quiet.
	if quietSeeds < 3 {
		t.Errorf("only %d/5 fair seeds quiet under ARC", quietSeeds)
	}
}

func TestARCFlagsRateBurst(t *testing.T) {
	cfg := DefaultConfig()
	// 60 extra low ratings in 10 days ≈ +6/day on a 3.5/day baseline.
	s := attacked(t, 11, 70, 80, 60, 1.0, 0.3)
	res := ArrivalRateChange(s, testHorizon, AllRatings, cfg)
	if !res.Alarm() {
		t.Fatalf("rate burst raised no ARC alarm (max %v)", res.Curve.Max())
	}
	if !res.Suspicious() {
		t.Fatalf("rate burst has no suspicious segment (segments %+v)", res.Segments)
	}
	found := false
	for _, iv := range res.SuspiciousIntervals() {
		if iv.Overlaps(Interval{Start: 68, End: 82}) {
			found = true
		}
	}
	if !found {
		t.Errorf("suspicious segments %v miss the burst window", res.SuspiciousIntervals())
	}
}

func TestLARCSelectsLowRatings(t *testing.T) {
	cfg := DefaultConfig()
	s := attacked(t, 13, 70, 80, 60, 1.0, 0.3)
	res := ArrivalRateChange(s, testHorizon, LowBand, cfg)
	if !res.Alarm() {
		t.Errorf("L-ARC missed a low-value burst")
	}
	// H-ARC should see far less signal from a low-value attack.
	h := ArrivalRateChange(s, testHorizon, HighBand, cfg)
	if h.Curve.Max() >= res.Curve.Max() {
		t.Errorf("H-ARC max %v ≥ L-ARC max %v for low-value attack", h.Curve.Max(), res.Curve.Max())
	}
}

func TestBandThresholds(t *testing.T) {
	ta, tb := BandThresholds(4.0)
	if ta != 2.0 || tb != 2.51 {
		t.Errorf("BandThresholds(4) = (%v,%v), want (2, 2.51)", ta, tb)
	}
}

func TestARCBandString(t *testing.T) {
	if AllRatings.String() != "ARC" || HighBand.String() != "H-ARC" || LowBand.String() != "L-ARC" {
		t.Error("ARCBand String values wrong")
	}
	if ARCBand(0).String() != "ARC(?)" {
		t.Error("unknown band String wrong")
	}
}

func TestHCQuietOnFairData(t *testing.T) {
	cfg := DefaultConfig()
	quiet := 0
	for seed := uint64(1); seed <= 5; seed++ {
		s := fairSeries(t, seed)
		if !HistogramChange(s, cfg).Suspicious() {
			quiet++
		}
	}
	if quiet < 4 {
		t.Errorf("only %d/5 fair seeds quiet under HC", quiet)
	}
}

func TestHCFlagsBimodalWindow(t *testing.T) {
	cfg := DefaultConfig()
	s := attacked(t, 17, 60, 90, 60, 0.8, 0.2)
	res := HistogramChange(s, cfg)
	if !res.Suspicious() {
		t.Fatalf("bimodal attack not HC-suspicious (max ratio %v)", res.Curve.Max())
	}
}

func TestMEQuietOnFairData(t *testing.T) {
	cfg := DefaultConfig()
	quiet := 0
	for seed := uint64(1); seed <= 5; seed++ {
		s := fairSeries(t, seed)
		if !ModelError(s, cfg).Suspicious() {
			quiet++
		}
	}
	if quiet < 4 {
		t.Errorf("only %d/5 fair seeds quiet under ME", quiet)
	}
}

func TestMEFlagsConstantSignal(t *testing.T) {
	cfg := DefaultConfig()
	// A dense constant-value attack makes windows highly predictable.
	s := attacked(t, 19, 60, 75, 80, 1.0, 0.05)
	res := ModelError(s, cfg)
	if !res.Suspicious() {
		min := 2.0
		for _, y := range res.Curve.Y {
			if y < min {
				min = y
			}
		}
		t.Fatalf("constant-signal attack not ME-suspicious (min RelErr %v)", min)
	}
}

func TestAnalyzeMarksStrongAttack(t *testing.T) {
	cfg := DefaultConfig()
	s := attacked(t, 23, 60, 80, 50, 1.0, 0.3)
	rep := Analyze(s, testHorizon, cfg, nil)
	recall, precision := recallPrecision(s, rep.Suspicious)
	if recall < 0.5 {
		t.Errorf("recall = %v, want ≥ 0.5", recall)
	}
	if precision < 0.5 {
		t.Errorf("precision = %v, want ≥ 0.5", precision)
	}
	if len(rep.Intervals) == 0 {
		t.Error("no suspicious intervals reported")
	}
}

func TestAnalyzeQuietOnFairData(t *testing.T) {
	cfg := DefaultConfig()
	for seed := uint64(1); seed <= 5; seed++ {
		s := fairSeries(t, seed)
		rep := Analyze(s, testHorizon, cfg, nil)
		frac := float64(rep.SuspiciousCount()) / float64(len(s))
		if frac > 0.10 {
			t.Errorf("seed %d: %.1f%% of fair ratings marked suspicious", seed, 100*frac)
		}
	}
}

func TestAnalyzeEmptySeries(t *testing.T) {
	rep := Analyze(nil, testHorizon, DefaultConfig(), nil)
	if rep.SuspiciousCount() != 0 || len(rep.Intervals) != 0 {
		t.Error("empty series produced marks")
	}
}

func TestBoostAttackWeakerSignatureThanDowngrade(t *testing.T) {
	// Section V-B: boosting a product whose fair mean is already ≈4 leaves
	// little room, so its detector signature (and harm) is much weaker
	// than an equal-size downgrade. The boost must still trip the H-ARC
	// alarm, but the MC response must be far below the downgrade's.
	cfg := DefaultConfig()
	boost := attacked(t, 29, 60, 72, 50, 5.0, 0.1)
	down := attacked(t, 29, 60, 72, 50, 1.0, 0.1)

	h := ArrivalRateChange(boost, testHorizon, HighBand, cfg)
	if !h.Alarm() {
		t.Error("boost attack raised no H-ARC alarm")
	}
	mcBoost := MeanChange(boost, cfg, nil).Curve.Max()
	mcDown := MeanChange(down, cfg, nil).Curve.Max()
	if mcBoost >= mcDown*0.8 {
		t.Errorf("boost MC max %v not clearly below downgrade MC max %v", mcBoost, mcDown)
	}
}

func TestNeutralTrustSource(t *testing.T) {
	ts := NeutralTrust()
	if ts.Trust("anyone") != 0.5 {
		t.Error("neutral Trust != 0.5")
	}
	if ts.AverageTrust([]string{"a", "b"}) != 0.5 {
		t.Error("neutral AverageTrust != 0.5")
	}
}
