package detect

import (
	"math"

	"repro/internal/armodel"
	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/stats"
)

// This file keeps the original straightforward detector loops as unexported
// reference kernels. The shipped kernels (meanchange.go, arrival.go,
// histchange.go, modelerror.go) are incremental sliding-window rewrites that
// must match these bit-for-bit; the randomized equivalence property tests
// and FuzzKernelEquivalence pin that contract (see DESIGN.md §10 for the
// equivalence argument). The reference kernels recompute every window from
// scratch — O(n·w) work and one or more allocations per window — which is
// exactly the cost the incremental kernels eliminate.

// mcCurveRef recomputes both MC half-windows per rating with two binary
// searches and two fresh Values() copies (the original MCCurve).
func mcCurveRef(s dataset.Series, cfg Config) Curve {
	n := len(s)
	c := Curve{X: make([]float64, n), Y: make([]float64, n)}
	half := cfg.MCWindowDays / 2
	for k := 0; k < n; k++ {
		t := s[k].Day
		x1 := s.Between(t-half, t).Values()
		x2 := s.Between(t, t+half).Values()
		sigma2 := stats.PooledVariance(x1, x2, 0.25)
		c.X[k] = t
		c.Y[k] = stats.MeanChangeGLRT(x1, x2, sigma2)
	}
	return c
}

// meanChangeRef is the original MeanChange: per-segment []float64 and
// []string materialization, trust averaged via TrustSource.AverageTrust.
func meanChangeRef(s dataset.Series, cfg Config, ts TrustSource) MCResult {
	if ts == nil {
		ts = NeutralTrust()
	}
	res := MCResult{Curve: mcCurveRef(s, cfg)}
	if len(s) == 0 {
		return res
	}
	res.Peaks = res.Curve.Peaks(cfg.MCPeakThreshold, cfg.MCPeakMinSepDays)

	bounds := segmentBounds(s, res.Peaks)
	overall := s.Values()
	totalSum := stats.Sum(overall)
	totalN := float64(len(overall))

	// Tavg over all raters in the series.
	allRaters := make([]string, len(s))
	for i, r := range s {
		allRaters[i] = r.Rater
	}
	tAvg := ts.AverageTrust(allRaters)

	for _, iv := range bounds {
		seg := s.Between(iv.Start, iv.End)
		if len(seg) == 0 {
			continue
		}
		raters := make([]string, len(seg))
		for i, r := range seg {
			raters[i] = r.Rater
		}
		m := MCSegment{
			Interval: iv,
			Mean:     stats.Mean(seg.Values()),
			AvgTrust: ts.AverageTrust(raters),
		}
		bAvg := m.Mean
		if rest := totalN - float64(len(seg)); rest > 0 {
			bAvg = (totalSum - m.Mean*float64(len(seg))) / rest
		}
		m.Shift = m.Mean - bAvg
		dev := abs(m.Shift)
		switch {
		case dev > cfg.MCThreshold1:
			m.Suspicious = true
		case dev > cfg.MCThreshold2 && tAvg > 0 && m.AvgTrust/tAvg < cfg.MCTrustRatio:
			m.Suspicious = true
		}
		res.Segments = append(res.Segments, m)
	}
	return res
}

// bandCountsRef materializes a filtered sub-series before bucketing it into
// daily counts (the original bandCounts).
func bandCountsRef(s dataset.Series, horizon float64, band ARCBand) []float64 {
	switch band {
	case HighBand, LowBand:
		ta, tb := BandThresholds(s.Mean())
		filtered := make(dataset.Series, 0, len(s))
		for _, r := range s {
			if band == HighBand && r.Value > ta {
				filtered = append(filtered, r)
			}
			if band == LowBand && r.Value < tb {
				filtered = append(filtered, r)
			}
		}
		return filtered.DailyCounts(horizon)
	default:
		return s.DailyCounts(horizon)
	}
}

// arcCurveRef recomputes the band counts for the curve pass (the original
// ARCCurve).
func arcCurveRef(s dataset.Series, horizon float64, band ARCBand, cfg Config) Curve {
	counts := bandCountsRef(s, horizon, band)
	n := len(counts)
	d := int(cfg.ARCWindowDays / 2)
	if d < 3 {
		d = 3
	}
	c := Curve{}
	for k := 0; k < n; k++ {
		lo := k - d
		if lo < 0 {
			lo = 0
		}
		hi := k + d
		if hi > n {
			hi = n
		}
		if k-lo < 3 || hi-k < 3 {
			continue
		}
		c.X = append(c.X, float64(k))
		c.Y = append(c.Y, stats.RateChangeGLRT(counts[lo:k], counts[k:hi]))
	}
	return c
}

// arrivalRateChangeRef recomputes the band counts a second time for the
// segment pass and takes the quantile via an allocating copy (the original
// ArrivalRateChange).
func arrivalRateChangeRef(s dataset.Series, horizon float64, band ARCBand, cfg Config) ARCResult {
	res := ARCResult{Band: band, Curve: arcCurveRef(s, horizon, band, cfg)}
	res.ThresholdA, res.ThresholdB = BandThresholds(s.Mean())
	if res.Curve.Len() == 0 {
		return res
	}
	res.Peaks = res.Curve.Peaks(cfg.ARCPeakThreshold, cfg.ARCPeakMinSepDays)

	counts := bandCountsRef(s, horizon, band)
	bounds := daySegments(len(counts), res.Curve, res.Peaks)
	q25 := stats.Quantile(counts, 0.25)
	baseline := q25 + 0.7*math.Sqrt(q25)
	margin := cfg.ARCRateDelta
	if rel := cfg.ARCRelDelta * baseline; rel > margin {
		margin = rel
	}
	for _, iv := range bounds {
		seg := ARCSegment{Interval: iv, Rate: meanCounts(counts, iv)}
		seg.Suspicious = seg.Rate-baseline > margin
		res.Segments = append(res.Segments, seg)
	}
	return res
}

// histogramChangeRef re-sorts and re-clusters every window from scratch via
// cluster.SingleLinkage (the original HistogramChange).
func histogramChangeRef(s dataset.Series, cfg Config) HCResult {
	res := HCResult{}
	w := cfg.HCWindowRatings
	step := cfg.HCStepRatings
	if step <= 0 {
		step = 1
	}
	if w <= 1 || len(s) < w {
		return res
	}
	for start := 0; start+w <= len(s); start += step {
		win := s[start : start+w]
		vals := win.Values()
		ratio := clusterGapRatio(vals, cfg.HCMinGap)
		center := (win[0].Day + win[w-1].Day) / 2
		res.Curve.X = append(res.Curve.X, center)
		res.Curve.Y = append(res.Curve.Y, ratio)
		if ratio >= cfg.HCThreshold {
			res.Intervals = append(res.Intervals, Interval{Start: win[0].Day, End: win[w-1].Day})
		}
	}
	res.Intervals = mergeIntervals(res.Intervals)
	return res
}

// clusterGapRatio computes the two-cluster size ratio, but returns 0 when
// the value gap between the clusters is below minGap (one noisy population,
// not a histogram change). One SingleLinkage call supplies everything: the
// cluster sizes give the ratio directly, and the gap is min(high cluster) −
// max(low cluster), read off the assignment in a single pass (this function
// used to sort a second copy for the gap and then call cluster.SizeRatio,
// which re-clustered the same window a third time).
func clusterGapRatio(vals []float64, minGap float64) float64 {
	if len(vals) < 2 {
		return 0
	}
	asg, err := cluster.SingleLinkage(vals, 2)
	if err != nil {
		return 0
	}
	sizes := asg.Sizes(2)
	if sizes[0] == 0 || sizes[1] == 0 {
		return 0
	}
	// Gap = min(high cluster) − max(low cluster).
	lowMax, highMin := 0.0, 0.0
	seenLow, seenHigh := false, false
	for i, label := range asg {
		v := vals[i]
		if label == 0 {
			if !seenLow || v > lowMax {
				lowMax = v
				seenLow = true
			}
		} else {
			if !seenHigh || v < highMin {
				highMin = v
				seenHigh = true
			}
		}
	}
	gap := highMin - lowMax
	if gap < minGap {
		return 0
	}
	r := float64(sizes[0]) / float64(sizes[1])
	if r > 1 {
		r = 1 / r
	}
	return r
}

// modelErrorRef copies every window's values before fitting (the original
// ModelError).
func modelErrorRef(s dataset.Series, cfg Config) MEResult {
	res := MEResult{}
	w := cfg.MEWindowRatings
	step := cfg.MEStepRatings
	if step <= 0 {
		step = 1
	}
	if w <= 2*cfg.MEOrder || len(s) < w {
		return res
	}
	for start := 0; start+w <= len(s); start += step {
		win := s[start : start+w]
		m, err := armodel.FitMethod(win.Values(), cfg.MEOrder, cfg.MEMethod)
		if err != nil {
			continue
		}
		center := (win[0].Day + win[w-1].Day) / 2
		res.Curve.X = append(res.Curve.X, center)
		res.Curve.Y = append(res.Curve.Y, m.RelErr)
		if m.RelErr < cfg.METhreshold {
			res.Intervals = append(res.Intervals, Interval{Start: win[0].Day, End: win[w-1].Day})
		}
	}
	res.Intervals = mergeIntervals(res.Intervals)
	return res
}
