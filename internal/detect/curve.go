// Package detect implements the four unfair-rating detectors of the paper's
// reliable rating aggregation system — Mean Change (MC, Gaussian GLRT),
// Arrival Rate Change (ARC / H-ARC / L-ARC, Poisson GLRT), Histogram Change
// (HC, single-linkage clustering) and Model Error (ME, AR covariance fit) —
// together with the two-path detector fusion of Figure 1 that turns
// indicator curves into suspicious ratings and suspicious time intervals.
package detect

import "sort"

// Curve is an indicator curve: statistic Y sampled at time positions X
// (days). X is non-decreasing.
type Curve struct {
	X []float64
	Y []float64
}

// Len returns the number of samples.
func (c Curve) Len() int { return len(c.X) }

// Max returns the largest Y value, or 0 for an empty curve.
func (c Curve) Max() float64 {
	var m float64
	for i, y := range c.Y {
		if i == 0 || y > m {
			m = y
		}
	}
	return m
}

// Peaks returns the indices of local maxima with Y ≥ threshold, separated by
// at least minSep on the X axis. Within any run of candidates closer than
// minSep, only the largest survives (ties resolve to the earliest).
func (c Curve) Peaks(threshold, minSep float64) []int {
	n := len(c.Y)
	var candidates []int
	for i := 0; i < n; i++ {
		if c.Y[i] < threshold {
			continue
		}
		if (i == 0 || c.Y[i] >= c.Y[i-1]) && (i == n-1 || c.Y[i] >= c.Y[i+1]) {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	// Greedy non-maximum suppression, strongest first.
	order := make([]int, len(candidates))
	copy(order, candidates)
	sort.SliceStable(order, func(a, b int) bool { return c.Y[order[a]] > c.Y[order[b]] })
	kept := make([]int, 0, len(order))
	for _, idx := range order {
		ok := true
		for _, k := range kept {
			if abs(c.X[idx]-c.X[k]) < minSep {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, idx)
		}
	}
	sort.Ints(kept)
	return kept
}

// Interval is a half-open time interval [Start, End) in days.
type Interval struct {
	Start float64
	End   float64
}

// Contains reports whether day t falls inside the interval.
func (iv Interval) Contains(t float64) bool {
	return t >= iv.Start && t < iv.End
}

// Overlaps reports whether two intervals intersect.
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Start < other.End && other.Start < iv.End
}

// Intersect returns the intersection (empty Interval with Start ≥ End when
// disjoint).
func (iv Interval) Intersect(other Interval) Interval {
	lo := maxF(iv.Start, other.Start)
	hi := minF(iv.End, other.End)
	return Interval{Start: lo, End: hi}
}

// Empty reports whether the interval contains no time.
func (iv Interval) Empty() bool { return iv.Start >= iv.End }

// Duration returns End − Start (0 for empty intervals).
func (iv Interval) Duration() float64 {
	if iv.Empty() {
		return 0
	}
	return iv.End - iv.Start
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
