package detect

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
)

const testHorizon = 150.0

// fairSeries generates one product's honest ratings with the default
// challenge-like configuration.
func fairSeries(t *testing.T, seed uint64) dataset.Series {
	t.Helper()
	cfg := dataset.DefaultFairConfig()
	cfg.Products = 1
	cfg.HorizonDays = testHorizon
	d, err := dataset.GenerateFair(stats.NewRNG(seed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d.Products[0].Ratings
}

// blockAttack builds n unfair ratings uniformly spread over [start, end)
// with Gaussian values (mean, sigma) clamped to the rating range.
func blockAttack(rng *rand.Rand, start, end float64, n int, mean, sigma float64) dataset.Series {
	out := make(dataset.Series, n)
	for i := 0; i < n; i++ {
		v := stats.Clamp(mean+rng.NormFloat64()*sigma, dataset.MinValue, dataset.MaxValue)
		out[i] = dataset.Rating{
			Day:    start + (end-start)*float64(i)/float64(n) + rng.Float64()*0.3,
			Value:  dataset.QuantizeHalfStar(v),
			Rater:  fmt.Sprintf("atk%03d", i),
			Unfair: true,
		}
	}
	out.Sort()
	return out
}

// attacked merges a block attack into a fair series.
func attacked(t *testing.T, seed uint64, start, end float64, n int, mean, sigma float64) dataset.Series {
	t.Helper()
	fair := fairSeries(t, seed)
	atk := blockAttack(stats.NewRNG(seed+1000), start, end, n, mean, sigma)
	return fair.Merge(atk)
}

// recallPrecision scores marked ratings against the ground-truth labels.
func recallPrecision(s dataset.Series, suspicious []bool) (recall, precision float64) {
	var tp, fp, fn int
	for i, r := range s {
		switch {
		case r.Unfair && suspicious[i]:
			tp++
		case !r.Unfair && suspicious[i]:
			fp++
		case r.Unfair && !suspicious[i]:
			fn++
		}
	}
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	}
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	return recall, precision
}
