package detect

import (
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// TestReportCloneDeep pins the snapshot contract the engine's memo plane
// relies on: a clone is structurally identical to the original and shares
// none of its mutable memory, so mutating either side never leaks into the
// other.
func TestReportCloneDeep(t *testing.T) {
	rng := stats.NewRNG(31)
	var s dataset.Series
	for i := 0; i < 120; i++ {
		v := dataset.QuantizeHalfStar(1 + rng.NormFloat64())
		if i > 60 && i < 90 {
			v = 5 // a burst so segments, peaks and intervals are non-empty
		}
		s = append(s, dataset.Rating{Day: float64(i), Value: v, Rater: "r"})
	}
	s.Sort()
	rep := Analyze(s, 120, DefaultConfig(), nil)
	cl := rep.Clone()
	if !reflect.DeepEqual(rep, cl) {
		t.Fatal("clone differs structurally from the original")
	}

	// Mutate every slice in the clone; the original must not move.
	orig := rep.Clone() // second pristine copy for comparison
	mutate := func(f []float64) {
		if len(f) > 0 {
			f[0] += 100
		}
	}
	mutate(cl.MC.Curve.Y)
	mutate(cl.HARC.Curve.Y)
	mutate(cl.LARC.Curve.Y)
	mutate(cl.HC.Curve.Y)
	mutate(cl.ME.Curve.Y)
	if len(cl.Suspicious) > 0 {
		cl.Suspicious[0] = !cl.Suspicious[0]
	}
	if len(cl.Intervals) > 0 {
		cl.Intervals[0].Start -= 100
	}
	if len(cl.MC.Segments) > 0 {
		cl.MC.Segments[0].Mean += 100
	}
	if len(cl.HARC.Peaks) > 0 {
		cl.HARC.Peaks[0] += 100
	}
	if !reflect.DeepEqual(rep, orig) {
		t.Fatal("mutating the clone changed the original — shallow copy somewhere")
	}
	if reflect.DeepEqual(rep, cl) {
		t.Fatal("mutation did not take; test fixture produced empty report")
	}
}
