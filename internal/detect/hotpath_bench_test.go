package detect

import (
	"testing"

	"repro/internal/dataset"
)

// The benchmarks and the alloc-free guard below back the //lint:hotpath
// annotations in this package: hotalloc proves statically that the kernels
// cannot allocate or lock, and AllocsPerRun proves it at runtime, so the
// two gates cross-check each other.

func hotpathSeries(n int) dataset.Series {
	s := make(dataset.Series, n)
	for i := range s {
		s[i] = dataset.Rating{Day: float64(i), Value: 1 + float64(i%9)*0.5}
	}
	return s
}

func hotpathSorted(n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i) * 0.5
	}
	return xs
}

func TestHotpathKernelsAllocFree(t *testing.T) {
	s := hotpathSeries(256)
	x1, x2 := s[:128], s[128:]
	sorted := hotpathSorted(64)
	buf := make([]float64, 512)
	iv := Interval{Start: 32, End: 96}
	kernels := map[string]func(){
		"seriesMean":           func() { seriesMean(s) },
		"seriesSum":            func() { seriesSum(s) },
		"seriesPooledVariance": func() { seriesPooledVariance(x1, x2, 1) },
		"seriesMeanChangeGLRT": func() { seriesMeanChangeGLRT(x1, x2, 1) },
		"sortedGapRatio":       func() { sortedGapRatio(sorted, 0.1) },
		"contextMean":          func() { contextMean(s, iv) },
		"BandThresholds":       func() { BandThresholds(3.5) },
		"clearFloats":          func() { clearFloats(buf) },
	}
	for name, fn := range kernels {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("hotpath kernel %s: %v allocs/op, want 0", name, allocs)
		}
	}
}

func BenchmarkSeriesMean(b *testing.B) {
	s := hotpathSeries(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		seriesMean(s)
	}
}

func BenchmarkSeriesPooledVariance(b *testing.B) {
	s := hotpathSeries(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		seriesPooledVariance(s[:128], s[128:], 1)
	}
}

func BenchmarkSeriesMeanChangeGLRT(b *testing.B) {
	s := hotpathSeries(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		seriesMeanChangeGLRT(s[:128], s[128:], 1)
	}
}

func BenchmarkSortedGapRatio(b *testing.B) {
	sorted := hotpathSorted(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sortedGapRatio(sorted, 0.1)
	}
}

func BenchmarkContextMean(b *testing.B) {
	s := hotpathSeries(256)
	iv := Interval{Start: 32, End: 96}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		contextMean(s, iv)
	}
}
