package detect

import (
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// randomSeries builds an arbitrary (but valid) rating series from fuzz
// bytes: one rating per byte pair, quantized values, ordered days.
func randomSeries(raw []byte) dataset.Series {
	var s dataset.Series
	day := 0.0
	for i := 0; i+1 < len(raw); i += 2 {
		day += float64(raw[i]%16) / 4 // 0–3.75 day gaps
		s = append(s, dataset.Rating{
			Day:   day,
			Value: float64(raw[i+1]%11) / 2,
			Rater: string(rune('a' + i%26)),
		})
	}
	return s
}

// Property: every suspicious mark lies inside a reported interval, and the
// suspicious count never exceeds the series length.
func TestAnalyzeMarksInsideIntervalsProperty(t *testing.T) {
	cfg := DefaultConfig()
	f := func(raw []byte) bool {
		s := randomSeries(raw)
		horizon := 1.0
		if len(s) > 0 {
			_, last := s.Span()
			horizon = last + 1
		}
		rep := Analyze(s, horizon, cfg, nil)
		if len(rep.Suspicious) != len(s) {
			return false
		}
		for i, marked := range rep.Suspicious {
			if !marked {
				continue
			}
			inside := false
			for _, iv := range rep.Intervals {
				if iv.Contains(s[i].Day) {
					inside = true
					break
				}
			}
			if !inside {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: detector outputs are deterministic — the same series yields the
// same report.
func TestAnalyzeDeterministicProperty(t *testing.T) {
	cfg := DefaultConfig()
	f := func(seed uint16) bool {
		rng := stats.NewRNG(uint64(seed))
		raw := make([]byte, 160)
		for i := range raw {
			raw[i] = byte(rng.UintN(256))
		}
		s := randomSeries(raw)
		_, last := s.Span()
		a := Analyze(s, last+1, cfg, nil)
		b := Analyze(s, last+1, cfg, nil)
		if a.SuspiciousCount() != b.SuspiciousCount() || len(a.Intervals) != len(b.Intervals) {
			return false
		}
		for i := range a.Suspicious {
			if a.Suspicious[i] != b.Suspicious[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: MC segments always tile the series span (no rating outside all
// segments) for arbitrary data.
func TestMCSegmentsTileProperty(t *testing.T) {
	cfg := DefaultConfig()
	f := func(raw []byte) bool {
		s := randomSeries(raw)
		if len(s) == 0 {
			return true
		}
		res := MeanChange(s, cfg, nil)
		covered := 0
		for _, seg := range res.Segments {
			covered += len(s.Between(seg.Interval.Start, seg.Interval.End))
		}
		return covered == len(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
