package detect

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/dataset"
)

// HCResult is the outcome of the histogram-change detector on one series.
type HCResult struct {
	Curve     Curve
	Intervals []Interval // windows whose statistic crossed the threshold
}

// Suspicious reports whether any window crossed the HC threshold.
func (r HCResult) Suspicious() bool { return len(r.Intervals) > 0 }

// HistogramChange runs the histogram-change detector of Section IV-D:
// within each sliding window of HCWindowRatings ratings, the values are cut
// into two single-linkage clusters and HC(k) = min(n1/n2, n2/n1) (Eq. 6). A
// window is suspicious when a *separated* second population appears — the
// size ratio reaches HCThreshold and the gap between the clusters is at
// least HCMinGap rating points.
func HistogramChange(s dataset.Series, cfg Config) HCResult {
	res := HCResult{}
	w := cfg.HCWindowRatings
	step := cfg.HCStepRatings
	if step <= 0 {
		step = 1
	}
	if w <= 1 || len(s) < w {
		return res
	}
	for start := 0; start+w <= len(s); start += step {
		win := s[start : start+w]
		vals := win.Values()
		ratio := clusterGapRatio(vals, cfg.HCMinGap)
		center := (win[0].Day + win[w-1].Day) / 2
		res.Curve.X = append(res.Curve.X, center)
		res.Curve.Y = append(res.Curve.Y, ratio)
		if ratio >= cfg.HCThreshold {
			res.Intervals = append(res.Intervals, Interval{Start: win[0].Day, End: win[w-1].Day})
		}
	}
	res.Intervals = mergeIntervals(res.Intervals)
	return res
}

// clusterGapRatio computes the two-cluster size ratio, but returns 0 when
// the value gap between the clusters is below minGap (one noisy population,
// not a histogram change).
func clusterGapRatio(vals []float64, minGap float64) float64 {
	if len(vals) < 2 {
		return 0
	}
	asg, err := cluster.SingleLinkage(vals, 2)
	if err != nil {
		return 0
	}
	// Gap = min(high cluster) − max(low cluster).
	sorted := make([]float64, len(vals))
	copy(sorted, vals)
	sort.Float64s(sorted)
	sizes := asg.Sizes(2)
	if sizes[0] == 0 || sizes[1] == 0 {
		return 0
	}
	gap := sorted[sizes[0]] - sorted[sizes[0]-1]
	if gap < minGap {
		return 0
	}
	return cluster.SizeRatio(vals)
}

// mergeIntervals coalesces overlapping or touching intervals (inputs must be
// ordered by Start, which sliding windows guarantee).
func mergeIntervals(ivs []Interval) []Interval {
	if len(ivs) == 0 {
		return nil
	}
	out := []Interval{ivs[0]}
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.Start <= last.End {
			if iv.End > last.End {
				last.End = iv.End
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}
