package detect

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/dataset"
)

// HCResult is the outcome of the histogram-change detector on one series.
type HCResult struct {
	Curve     Curve
	Intervals []Interval // windows whose statistic crossed the threshold
}

// Suspicious reports whether any window crossed the HC threshold.
func (r HCResult) Suspicious() bool { return len(r.Intervals) > 0 }

// HistogramChange runs the histogram-change detector of Section IV-D:
// within each sliding window of HCWindowRatings ratings, the values are cut
// into two single-linkage clusters and HC(k) = min(n1/n2, n2/n1) (Eq. 6). A
// window is suspicious when a *separated* second population appears — the
// size ratio reaches HCThreshold and the gap between the clusters is at
// least HCMinGap rating points.
func HistogramChange(s dataset.Series, cfg Config) HCResult {
	return histogramChangeWith(NewScratch(), s, cfg)
}

// histogramChangeWith is the incremental HC kernel: the window values are
// kept in an order-maintained buffer (binary-search insert and evict per
// slide instead of a fresh sort per window), on which single-linkage
// 2-clustering degenerates to one max-adjacent-gap scan
// (cluster.Split2Sorted). The reference kernel sorts every window and
// clusters it via cluster.SingleLinkage; the sorted buffer here holds the
// same value multiset, so every gap, cut and ratio is bit-identical (see
// DESIGN.md §10). Cost per window drops from O(w log w) + allocations to
// O(w) with none.
func histogramChangeWith(sc *Scratch, s dataset.Series, cfg Config) HCResult {
	res := HCResult{}
	w := cfg.HCWindowRatings
	step := cfg.HCStepRatings
	if step <= 0 {
		step = 1
	}
	if w <= 1 || len(s) < w {
		return res
	}
	nWin := (len(s)-w)/step + 1
	res.Curve.X = make([]float64, 0, nWin)
	res.Curve.Y = make([]float64, 0, nWin)

	win := sc.windowBuf(w)
	for i := 0; i < w; i++ {
		win = insertSorted(win, s[i].Value)
	}
	for start := 0; ; start += step {
		ratio := sortedGapRatio(win, cfg.HCMinGap)
		center := (s[start].Day + s[start+w-1].Day) / 2
		res.Curve.X = append(res.Curve.X, center)
		res.Curve.Y = append(res.Curve.Y, ratio)
		if ratio >= cfg.HCThreshold {
			res.Intervals = append(res.Intervals, Interval{Start: s[start].Day, End: s[start+w-1].Day})
		}
		next := start + step
		if next+w > len(s) {
			break
		}
		// Slide: evict the ratings leaving the window, insert the ones
		// entering it. When step ≥ w the ranges are disjoint and this
		// degenerates to a full drain and refill.
		evictEnd := start + w
		if evictEnd > next {
			evictEnd = next
		}
		for i := start; i < evictEnd; i++ {
			win = removeSorted(win, s[i].Value)
		}
		insStart := start + w
		if insStart < next {
			insStart = next
		}
		for i := insStart; i < next+w; i++ {
			win = insertSorted(win, s[i].Value)
		}
	}
	res.Intervals = mergeIntervals(res.Intervals)
	return res
}

// sortedGapRatio is clusterGapRatio on an already-sorted window: the
// 2-cluster single-linkage cut is the largest adjacent gap (earliest
// position on ties, matching SingleLinkage's deterministic tie-break), so
// the cluster sizes and the separating gap fall out of one scan.
//
//lint:hotpath
func sortedGapRatio(sorted []float64, minGap float64) float64 {
	if len(sorted) < 2 {
		return 0
	}
	n1, gap := cluster.Split2Sorted(sorted)
	if gap < minGap {
		return 0
	}
	r := float64(n1) / float64(len(sorted)-n1)
	if r > 1 {
		r = 1 / r
	}
	return r
}

// insertSorted inserts v into ascending-sorted win, keeping it sorted.
func insertSorted(win []float64, v float64) []float64 {
	i := sort.SearchFloat64s(win, v)
	win = append(win, 0)
	copy(win[i+1:], win[i:])
	win[i] = v
	return win
}

// removeSorted removes one occurrence of v from ascending-sorted win. v
// must be present (the kernel only evicts values it previously inserted);
// with duplicates, removing any occurrence leaves the same multiset.
func removeSorted(win []float64, v float64) []float64 {
	i := sort.SearchFloat64s(win, v)
	copy(win[i:], win[i+1:])
	return win[:len(win)-1]
}

// mergeIntervals coalesces overlapping or touching intervals (inputs must be
// ordered by Start, which sliding windows guarantee).
func mergeIntervals(ivs []Interval) []Interval {
	if len(ivs) == 0 {
		return nil
	}
	out := []Interval{ivs[0]}
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.Start <= last.End {
			if iv.End > last.End {
				last.End = iv.End
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}
