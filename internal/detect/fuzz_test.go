package detect

import (
	"testing"

	"repro/internal/dataset"
)

// fuzzSeries decodes fuzz bytes into a sorted rating series: two bytes per
// rating (day-gap nibble ×0.25 — gap 0 produces duplicate days — and a
// half-star value). Mirrors randomSeries in property_test.go but kept
// separate so the fuzz corpus stays decoupled from the quick.Check
// generator.
func fuzzSeries(raw []byte) dataset.Series {
	var s dataset.Series
	day := 0.0
	for i := 0; i+1 < len(raw) && len(s) < 300; i += 2 {
		day += float64(raw[i]%16) / 4
		s = append(s, dataset.Rating{
			Day:   day,
			Value: float64(raw[i+1]%11) / 2,
			Rater: string(rune('a' + i%26)),
		})
	}
	return s
}

// fuzzConfig derives a detector configuration from three fuzz bytes,
// covering degenerate windows (0, 1), steps of 0 (clamped to 1) and steps
// far beyond the window length.
func fuzzConfig(a, b, c byte) Config {
	cfg := DefaultConfig()
	cfg.HCWindowRatings = int(a % 50)
	cfg.HCStepRatings = int(b % 60)
	cfg.MEWindowRatings = int(c % 50)
	cfg.MEOrder = 1 + int(a%4)
	cfg.MCWindowDays = float64(b % 40)
	cfg.ARCWindowDays = float64(c % 40)
	return cfg
}

// FuzzKernelEquivalence throws arbitrary series and configurations at the
// incremental kernels and requires bit-exact agreement with the reference
// kernels, plus scratch-reuse hygiene (a warm Scratch must reproduce the
// fresh-buffer Report exactly).
func FuzzKernelEquivalence(f *testing.F) {
	f.Add([]byte{}, byte(40), byte(5), byte(40))
	f.Add([]byte{0, 5, 0, 5, 0, 5, 0, 5}, byte(2), byte(1), byte(9))              // duplicate days, tiny windows
	f.Add([]byte{1, 10, 2, 10, 3, 10, 4, 10, 5, 10}, byte(3), byte(50), byte(12)) // step ≫ window
	f.Add([]byte{15, 0, 15, 0, 15, 0, 15, 0}, byte(4), byte(2), byte(4))          // all-equal values
	f.Add([]byte{2, 9}, byte(1), byte(0), byte(0))                                // single rating, zero windows

	sc := NewScratch()
	f.Fuzz(func(t *testing.T, raw []byte, a, b, c byte) {
		s := fuzzSeries(raw)
		cfg := fuzzConfig(a, b, c)
		horizon := 1.0
		if len(s) > 0 {
			_, last := s.Span()
			horizon = last + 1
		}

		if got, want := MCCurve(s, cfg), mcCurveRef(s, cfg); !curvesEqual(got, want) {
			t.Fatal("MCCurve diverges from reference")
		}
		if got, want := MeanChange(s, cfg, nil), meanChangeRef(s, cfg, nil); !mcResultsEqual(got, want) {
			t.Fatal("MeanChange diverges from reference")
		}
		for _, band := range []ARCBand{AllRatings, HighBand, LowBand} {
			got := ArrivalRateChange(s, horizon, band, cfg)
			want := arrivalRateChangeRef(s, horizon, band, cfg)
			if !arcResultsEqual(got, want) {
				t.Fatalf("ArrivalRateChange(%v) diverges from reference", band)
			}
		}
		gotHC, wantHC := HistogramChange(s, cfg), histogramChangeRef(s, cfg)
		if !curvesEqual(gotHC.Curve, wantHC.Curve) || !intervalsEqual(gotHC.Intervals, wantHC.Intervals) {
			t.Fatal("HistogramChange diverges from reference")
		}
		gotME, wantME := ModelError(s, cfg), modelErrorRef(s, cfg)
		if !curvesEqual(gotME.Curve, wantME.Curve) || !intervalsEqual(gotME.Intervals, wantME.Intervals) {
			t.Fatal("ModelError diverges from reference")
		}
		// Scratch hygiene: the shared warm scratch (reused across every
		// fuzz input) must reproduce the fresh-buffer fusion bit-for-bit.
		if !reportsEqual(AnalyzeWith(s, horizon, cfg, nil, sc), Analyze(s, horizon, cfg, nil)) {
			t.Fatal("warm-scratch Analyze diverges from fresh run")
		}
	})
}
