package cluster_test

import (
	"fmt"

	"repro/internal/cluster"
)

func ExampleSingleLinkage() {
	// Honest ratings near 4 and a colluding block near 1.
	values := []float64{4.0, 4.5, 1.0, 4.0, 1.5, 3.5, 1.0}
	assignment, err := cluster.SingleLinkage(values, 2)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("labels:", assignment)
	fmt.Println("sizes: ", assignment.Sizes(2))
	fmt.Printf("HC statistic: %.2f\n", cluster.SizeRatio(values))
	// Output:
	// labels: [1 1 0 1 0 1 0]
	// sizes:  [3 4]
	// HC statistic: 0.75
}
