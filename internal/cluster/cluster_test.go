package cluster

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// naiveSingleLinkage is an O(n³) reference implementation used to validate
// the gap-based fast path.
func naiveSingleLinkage(xs []float64, k int) Assignment {
	n := len(xs)
	clusters := make([][]int, n)
	for i := range clusters {
		clusters[i] = []int{i}
	}
	dist := func(a, b []int) float64 {
		best := math.Inf(1)
		for _, i := range a {
			for _, j := range b {
				if d := math.Abs(xs[i] - xs[j]); d < best {
					best = d
				}
			}
		}
		return best
	}
	for len(clusters) > k {
		bi, bj, best := 0, 1, math.Inf(1)
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				if d := dist(clusters[i], clusters[j]); d < best {
					bi, bj, best = i, j, d
				}
			}
		}
		clusters[bi] = append(clusters[bi], clusters[bj]...)
		clusters = append(clusters[:bj], clusters[bj+1:]...)
	}
	// Label clusters by their minimum value, like SingleLinkage.
	minOf := func(c []int) float64 {
		m := xs[c[0]]
		for _, i := range c[1:] {
			if xs[i] < m {
				m = xs[i]
			}
		}
		return m
	}
	for i := 0; i < len(clusters); i++ {
		for j := i + 1; j < len(clusters); j++ {
			if minOf(clusters[j]) < minOf(clusters[i]) {
				clusters[i], clusters[j] = clusters[j], clusters[i]
			}
		}
	}
	out := make(Assignment, n)
	for label, c := range clusters {
		for _, i := range c {
			out[i] = label
		}
	}
	return out
}

func TestSingleLinkageTwoGroups(t *testing.T) {
	xs := []float64{4.0, 4.5, 4.2, 0.5, 0.7, 4.1}
	asg, err := SingleLinkage(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Low cluster = {0.5, 0.7} must share a label distinct from the 4s.
	if asg[3] != asg[4] {
		t.Errorf("low values split: %v", asg)
	}
	if asg[0] != asg[1] || asg[0] != asg[2] || asg[0] != asg[5] {
		t.Errorf("high values split: %v", asg)
	}
	if asg[0] == asg[3] {
		t.Errorf("clusters merged: %v", asg)
	}
	if asg[3] != 0 {
		t.Errorf("low cluster should be label 0: %v", asg)
	}
	sizes := asg.Sizes(2)
	if sizes[0] != 2 || sizes[1] != 4 {
		t.Errorf("Sizes = %v, want [2 4]", sizes)
	}
}

func TestSingleLinkageBadK(t *testing.T) {
	if _, err := SingleLinkage([]float64{1, 2}, 0); !errors.Is(err, ErrBadK) {
		t.Errorf("k=0 error = %v", err)
	}
	if _, err := SingleLinkage([]float64{1, 2}, 3); !errors.Is(err, ErrBadK) {
		t.Errorf("k>n error = %v", err)
	}
}

func TestSingleLinkageKEqualsN(t *testing.T) {
	xs := []float64{3, 1, 2}
	asg, err := SingleLinkage(xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Every point its own cluster, labels by value order: 1→0, 2→1, 3→2.
	if asg[0] != 2 || asg[1] != 0 || asg[2] != 1 {
		t.Errorf("assignment = %v", asg)
	}
}

func TestSingleLinkageMatchesNaive(t *testing.T) {
	rng := stats.NewRNG(99)
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.IntN(20)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 5
		}
		k := 1 + rng.IntN(3)
		if k > n {
			k = n
		}
		got, err := SingleLinkage(xs, k)
		if err != nil {
			t.Fatal(err)
		}
		want := naiveSingleLinkage(xs, k)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: fast %v != naive %v (xs=%v, k=%d)", trial, got, want, xs, k)
			}
		}
	}
}

func TestTwoClusterSizes(t *testing.T) {
	if n1, n2 := TwoClusterSizes(nil); n1 != 0 || n2 != 0 {
		t.Errorf("empty = (%d,%d)", n1, n2)
	}
	if n1, n2 := TwoClusterSizes([]float64{4}); n1 != 1 || n2 != 0 {
		t.Errorf("single = (%d,%d)", n1, n2)
	}
	n1, n2 := TwoClusterSizes([]float64{1, 1.1, 4, 4.1, 4.2})
	if n1 != 2 || n2 != 3 {
		t.Errorf("sizes = (%d,%d), want (2,3)", n1, n2)
	}
}

func TestSizeRatio(t *testing.T) {
	// Balanced bimodal → ratio near 1.
	balanced := []float64{1, 1.1, 1.2, 4, 4.1, 4.2}
	if got := SizeRatio(balanced); got != 1 {
		t.Errorf("balanced SizeRatio = %v, want 1", got)
	}
	// Lone outlier → small ratio.
	outlier := []float64{4, 4.1, 4.2, 4.3, 0.1}
	if got := SizeRatio(outlier); got != 0.25 {
		t.Errorf("outlier SizeRatio = %v, want 0.25", got)
	}
	if got := SizeRatio([]float64{3}); got != 0 {
		t.Errorf("degenerate SizeRatio = %v, want 0", got)
	}
}

// Property: assignments are a valid labeling — every label in [0,k), all k
// labels used, sizes sum to n.
func TestSingleLinkageValidLabelingProperty(t *testing.T) {
	f := func(raw []uint16, kRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v) / 100
		}
		k := 1 + int(kRaw)%len(xs)
		asg, err := SingleLinkage(xs, k)
		if err != nil {
			return false
		}
		sizes := asg.Sizes(k)
		total := 0
		for _, s := range sizes {
			if s == 0 {
				return false // every label must be used
			}
			total += s
		}
		return total == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Split2Sorted on the sorted values agrees with the full
// SingleLinkage 2-cluster cut — same low-cluster size and same separating
// gap, bit for bit. This is the equivalence the histogram-change detector's
// order-maintained window kernel rests on (DESIGN.md §10).
func TestSplit2SortedMatchesSingleLinkage(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v%101) / 10 // duplicates are common on purpose
		}
		asg, err := SingleLinkage(xs, 2)
		if err != nil {
			return false
		}
		sizes := asg.Sizes(2)
		sorted := make([]float64, len(xs))
		copy(sorted, xs)
		sort.Float64s(sorted)
		n1, gap := Split2Sorted(sorted)
		if n1 != sizes[0] {
			return false
		}
		wantGap := sorted[sizes[0]] - sorted[sizes[0]-1]
		return math.Float64bits(gap) == math.Float64bits(wantGap)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplit2SortedTieBreak(t *testing.T) {
	// Two equal largest gaps: the cut must land on the earliest, matching
	// SingleLinkage's deterministic (size desc, position asc) gap order.
	n1, gap := Split2Sorted([]float64{0, 1, 2, 3})
	if n1 != 1 || gap != 1 {
		t.Errorf("Split2Sorted = (%d, %v), want (1, 1)", n1, gap)
	}
	// All-equal values: every gap is zero, cut after the first element.
	n1, gap = Split2Sorted([]float64{2, 2, 2})
	if n1 != 1 || gap != 0 {
		t.Errorf("all-equal Split2Sorted = (%d, %v), want (1, 0)", n1, gap)
	}
}
