// Package cluster implements single-linkage agglomerative hierarchical
// clustering over one-dimensional data. It replaces the Matlab
// clusterdata() call the paper uses inside the histogram-change detector:
// the rating values in a window are cut into two clusters and the cluster
// size ratio is the detector statistic.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrBadK indicates a requested cluster count outside [1, len(data)].
var ErrBadK = errors.New("cluster: bad cluster count")

// Assignment maps each input index to a cluster label in [0, k).
type Assignment []int

// Sizes returns the number of points per cluster label.
func (a Assignment) Sizes(k int) []int {
	sizes := make([]int, k)
	for _, label := range a {
		if label >= 0 && label < k {
			sizes[label]++
		}
	}
	return sizes
}

// SingleLinkage cuts xs into k clusters using single-linkage agglomerative
// clustering (merge order: smallest inter-cluster minimum distance first)
// and returns the per-point cluster assignment. Labels are assigned in order
// of each cluster's smallest member value, so label 0 is the cluster
// containing the minimum.
//
// For one-dimensional data, single linkage cut at k clusters is equivalent
// to splitting the sorted values at the k−1 largest gaps; this implementation
// uses that equivalence (O(n log n)) and is validated against a naive
// agglomerative reference in the tests.
func SingleLinkage(xs []float64, k int) (Assignment, error) {
	n := len(xs)
	if k < 1 || k > n {
		return nil, fmt.Errorf("%w: k=%d with n=%d", ErrBadK, k, n)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return xs[order[a]] < xs[order[b]] })

	// Find the k−1 largest adjacent gaps in the sorted order.
	type gap struct {
		pos  int // boundary after sorted position pos
		size float64
	}
	gaps := make([]gap, 0, n-1)
	for i := 0; i+1 < n; i++ {
		gaps = append(gaps, gap{pos: i, size: xs[order[i+1]] - xs[order[i]]})
	}
	sort.Slice(gaps, func(a, b int) bool {
		//lint:ignore floateq sort comparator: a tolerance here would break strict weak ordering; exact inequality plus the index tie-break is deterministic
		if gaps[a].size != gaps[b].size {
			return gaps[a].size > gaps[b].size
		}
		return gaps[a].pos < gaps[b].pos // deterministic tie-break
	})
	cut := make(map[int]bool, k-1)
	for i := 0; i < k-1; i++ {
		cut[gaps[i].pos] = true
	}

	out := make(Assignment, n)
	label := 0
	for rank, idx := range order {
		out[idx] = label
		if cut[rank] {
			label++
		}
	}
	return out, nil
}

// TwoClusterSizes cuts xs into two single-linkage clusters and returns the
// two cluster sizes (n1 for the low-value cluster, n2 for the high-value
// cluster). When xs has fewer than 2 points, it returns (len(xs), 0).
func TwoClusterSizes(xs []float64) (n1, n2 int) {
	if len(xs) < 2 {
		return len(xs), 0
	}
	asg, err := SingleLinkage(xs, 2)
	if err != nil {
		return len(xs), 0
	}
	sizes := asg.Sizes(2)
	return sizes[0], sizes[1]
}

// Split2Sorted returns the single-linkage 2-cluster cut of an
// ascending-sorted slice without allocating: the size of the low-value
// cluster and the value gap separating the clusters. For one-dimensional
// data the 2-cluster single-linkage dendrogram cut is exactly the largest
// adjacent gap in sorted order (the last merge joins the two groups across
// that gap), with ties resolving to the earliest position — the same
// deterministic tie-break SingleLinkage applies. Callers that maintain an
// order-preserved sliding window (the histogram-change detector) get the
// full clustering result from one O(n) scan per window.
//
// sorted must be ascending and hold at least 2 values; the equivalence with
// SingleLinkage(xs, 2) is pinned by the package tests.
func Split2Sorted(sorted []float64) (n1 int, gap float64) {
	cut := 0
	gap = sorted[1] - sorted[0]
	for i := 1; i+1 < len(sorted); i++ {
		if g := sorted[i+1] - sorted[i]; g > gap {
			gap = g
			cut = i
		}
	}
	return cut + 1, gap
}

// SizeRatio returns min(n1/n2, n2/n1) for the two-cluster split of xs — the
// paper's Histogram Change statistic (Eq. 6). A balanced split (two real
// rating populations) yields a value near 1; a lone outlier cluster yields a
// value near 0. Degenerate inputs (n < 2 or an empty cluster) return 0.
func SizeRatio(xs []float64) float64 {
	n1, n2 := TwoClusterSizes(xs)
	if n1 == 0 || n2 == 0 {
		return 0
	}
	r := float64(n1) / float64(n2)
	return math.Min(r, 1/r)
}
