package cluster

import "testing"

// FuzzSingleLinkage checks the clusterer never panics and always yields a
// valid labeling for arbitrary inputs.
func FuzzSingleLinkage(f *testing.F) {
	f.Add([]byte{1, 2, 3, 200, 201}, uint8(2))
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{5}, uint8(1))
	f.Add([]byte{0, 0, 0, 0}, uint8(3))
	f.Fuzz(func(t *testing.T, raw []byte, kRaw uint8) {
		xs := make([]float64, len(raw))
		for i, b := range raw {
			xs[i] = float64(b) / 51 // 0 … 5
		}
		k := int(kRaw)
		asg, err := SingleLinkage(xs, k)
		if err != nil {
			if k >= 1 && k <= len(xs) {
				t.Fatalf("valid k=%d rejected: %v", k, err)
			}
			return
		}
		if len(asg) != len(xs) {
			t.Fatalf("assignment length %d != %d", len(asg), len(xs))
		}
		sizes := asg.Sizes(k)
		total := 0
		for _, s := range sizes {
			if s == 0 {
				t.Fatal("empty cluster")
			}
			total += s
		}
		if total != len(xs) {
			t.Fatalf("sizes sum %d != %d", total, len(xs))
		}
	})
}
