// Package plot renders small ASCII scatter and line plots for the
// command-line tools: the variance–bias figures, the indicator curves and
// the MP-vs-interval series can be eyeballed directly in a terminal, the
// way the paper presents them as figures.
package plot

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrEmptyPlot indicates rendering with no plottable points.
var ErrEmptyPlot = errors.New("plot: nothing to draw")

// Series is one glyph's worth of points.
type Series struct {
	Glyph rune
	Label string
	X     []float64
	Y     []float64
}

// Plot is an ASCII canvas with auto-scaled axes. The zero value is not
// usable; construct with New.
type Plot struct {
	width  int
	height int
	title  string
	xlabel string
	ylabel string
	series []Series

	// Optional fixed bounds; NaN means auto.
	xmin, xmax, ymin, ymax float64
}

// New returns a plot with the given canvas size (columns × rows of the
// drawing area, excluding axes). Sizes are clamped to at least 16×8.
func New(title string, width, height int) *Plot {
	if width < 16 {
		width = 16
	}
	if height < 8 {
		height = 8
	}
	return &Plot{
		title: title, width: width, height: height,
		xmin: math.NaN(), xmax: math.NaN(), ymin: math.NaN(), ymax: math.NaN(),
	}
}

// Labels sets the axis labels.
func (p *Plot) Labels(x, y string) *Plot {
	p.xlabel, p.ylabel = x, y
	return p
}

// XRange fixes the horizontal bounds (otherwise auto-scaled to the data).
func (p *Plot) XRange(lo, hi float64) *Plot {
	p.xmin, p.xmax = lo, hi
	return p
}

// YRange fixes the vertical bounds.
func (p *Plot) YRange(lo, hi float64) *Plot {
	p.ymin, p.ymax = lo, hi
	return p
}

// Add appends a series. Points with NaN/Inf coordinates are skipped at
// render time.
func (p *Plot) Add(s Series) *Plot {
	p.series = append(p.series, s)
	return p
}

// Render draws the canvas.
func (p *Plot) Render() (string, error) {
	xmin, xmax, ymin, ymax, any := p.bounds()
	if !any {
		return "", ErrEmptyPlot
	}
	//lint:ignore floateq axis-range degeneracy only occurs at exact equality; any nonzero span scales fine
	if xmax == xmin {
		xmax = xmin + 1
	}
	//lint:ignore floateq axis-range degeneracy only occurs at exact equality; any nonzero span scales fine
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]rune, p.height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", p.width))
	}
	for _, s := range p.series {
		glyph := s.Glyph
		if glyph == 0 {
			glyph = '•'
		}
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if !finite(x) || !finite(y) {
				continue
			}
			col := int(math.Round((x - xmin) / (xmax - xmin) * float64(p.width-1)))
			row := int(math.Round((ymax - y) / (ymax - ymin) * float64(p.height-1)))
			if col < 0 || col >= p.width || row < 0 || row >= p.height {
				continue
			}
			grid[row][col] = glyph
		}
	}

	var b strings.Builder
	if p.title != "" {
		fmt.Fprintf(&b, "%s\n", p.title)
	}
	for r, rowRunes := range grid {
		switch r {
		case 0:
			fmt.Fprintf(&b, "%9.3g ┤%s\n", ymax, string(rowRunes))
		case p.height - 1:
			fmt.Fprintf(&b, "%9.3g ┤%s\n", ymin, string(rowRunes))
		default:
			fmt.Fprintf(&b, "%9s │%s\n", "", string(rowRunes))
		}
	}
	fmt.Fprintf(&b, "%9s └%s\n", "", strings.Repeat("─", p.width))
	fmt.Fprintf(&b, "%10s %-.3g%s%.3g\n", "",
		xmin, strings.Repeat(" ", maxInt(1, p.width-12)), xmax)
	if p.xlabel != "" || p.ylabel != "" {
		fmt.Fprintf(&b, "%10s x: %s, y: %s\n", "", p.xlabel, p.ylabel)
	}
	var legend []string
	for _, s := range p.series {
		if s.Label == "" {
			continue
		}
		glyph := s.Glyph
		if glyph == 0 {
			glyph = '•'
		}
		legend = append(legend, fmt.Sprintf("%c %s", glyph, s.Label))
	}
	if len(legend) > 0 {
		fmt.Fprintf(&b, "%10s %s\n", "", strings.Join(legend, "   "))
	}
	return b.String(), nil
}

// bounds computes the effective data window.
func (p *Plot) bounds() (xmin, xmax, ymin, ymax float64, any bool) {
	xmin, xmax = p.xmin, p.xmax
	ymin, ymax = p.ymin, p.ymax
	autoX := math.IsNaN(xmin) || math.IsNaN(xmax)
	autoY := math.IsNaN(ymin) || math.IsNaN(ymax)
	if autoX {
		xmin, xmax = math.Inf(1), math.Inf(-1)
	}
	if autoY {
		ymin, ymax = math.Inf(1), math.Inf(-1)
	}
	for _, s := range p.series {
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if !finite(x) || !finite(y) {
				continue
			}
			any = true
			if autoX {
				xmin = math.Min(xmin, x)
				xmax = math.Max(xmax, x)
			}
			if autoY {
				ymin = math.Min(ymin, y)
				ymax = math.Max(ymax, y)
			}
		}
	}
	return xmin, xmax, ymin, ymax, any
}

func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
