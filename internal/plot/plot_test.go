package plot

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestRenderEmpty(t *testing.T) {
	p := New("empty", 20, 8)
	if _, err := p.Render(); !errors.Is(err, ErrEmptyPlot) {
		t.Errorf("Render(empty) = %v", err)
	}
	// All-NaN series count as empty too.
	p.Add(Series{X: []float64{math.NaN()}, Y: []float64{1}})
	if _, err := p.Render(); !errors.Is(err, ErrEmptyPlot) {
		t.Errorf("Render(NaN-only) = %v", err)
	}
}

func TestRenderScatter(t *testing.T) {
	p := New("demo", 30, 10).Labels("bias", "sigma")
	p.Add(Series{Glyph: 'x', Label: "strong", X: []float64{-3, -2, -1}, Y: []float64{0.2, 1.0, 1.8}})
	p.Add(Series{Glyph: 'o', Label: "weak", X: []float64{-0.5}, Y: []float64{0.5}})
	out, err := p.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "demo") {
		t.Error("missing title")
	}
	if strings.Count(out, "x") < 3 {
		t.Errorf("missing scatter glyphs:\n%s", out)
	}
	if !strings.Contains(out, "o ") {
		t.Errorf("missing second glyph:\n%s", out)
	}
	if !strings.Contains(out, "x: bias, y: sigma") {
		t.Error("missing axis labels")
	}
	if !strings.Contains(out, "x strong") || !strings.Contains(out, "o weak") {
		t.Error("missing legend")
	}
}

func TestRenderCornersLandOnEdges(t *testing.T) {
	p := New("", 20, 8)
	p.Add(Series{Glyph: '#', X: []float64{0, 10}, Y: []float64{0, 5}})
	out, err := p.Render()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// First canvas row holds the max-Y point at the right edge.
	if !strings.HasSuffix(lines[0], "#") {
		t.Errorf("top-right corner missing:\n%s", out)
	}
	// Last canvas row (before the axis) holds the min point at the left.
	axis := len(lines) - 2
	if !strings.Contains(lines[axis-1], "┤#") {
		t.Errorf("bottom-left corner missing:\n%s", out)
	}
}

func TestFixedRangesClipOutliers(t *testing.T) {
	p := New("", 20, 8).XRange(0, 1).YRange(0, 1)
	p.Add(Series{Glyph: '*', X: []float64{0.5, 50}, Y: []float64{0.5, 50}})
	out, err := p.Render()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "*") != 1 {
		t.Errorf("outlier not clipped:\n%s", out)
	}
}

func TestDegenerateRangeExpands(t *testing.T) {
	p := New("", 20, 8)
	p.Add(Series{X: []float64{2, 2}, Y: []float64{3, 3}})
	if _, err := p.Render(); err != nil {
		t.Fatalf("constant data failed: %v", err)
	}
}

func TestMinimumCanvasSize(t *testing.T) {
	p := New("", 1, 1)
	p.Add(Series{X: []float64{0, 1}, Y: []float64{0, 1}})
	out, err := p.Render()
	if err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(out, "\n")) < 8 {
		t.Errorf("canvas not clamped to minimum:\n%s", out)
	}
}

func TestDefaultGlyph(t *testing.T) {
	p := New("", 20, 8)
	p.Add(Series{X: []float64{1}, Y: []float64{1}})
	out, err := p.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "•") {
		t.Error("default glyph missing")
	}
}
