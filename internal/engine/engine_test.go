package engine

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"testing"

	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/epoch"
	"repro/internal/stats"
)

// testDataset builds a fair dataset with an injected low-rating burst so
// the detector stack and trust fold actually fire.
func testDataset(t testing.TB, seed uint64, products int, horizon float64) *dataset.Dataset {
	t.Helper()
	cfg := dataset.DefaultFairConfig()
	cfg.Products = products
	cfg.HorizonDays = horizon
	d, err := dataset.GenerateFair(stats.NewRNG(seed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A 40-rating downgrade burst against the first product, mid-history.
	rng := stats.NewRNG(seed + 1)
	var atk dataset.Series
	start := horizon * 0.4
	for i := 0; i < 40; i++ {
		atk = append(atk, dataset.Rating{
			Day:   start + rng.Float64()*20,
			Value: dataset.QuantizeHalfStar(0.5 + rng.Float64()),
			Rater: fmt.Sprintf("attacker%d", i),
		})
	}
	if err := d.InjectUnfair(d.Products[0].ID, atk); err != nil {
		t.Fatal(err)
	}
	return d
}

// mustEvaluate and mustResume run the engine under a background context,
// failing the test on the (impossible without cancellation) error path.
func mustEvaluate(t *testing.T, e *Engine, d *dataset.Dataset) *Result {
	t.Helper()
	res, err := e.Evaluate(context.Background(), d)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	return res
}

func mustResume(t *testing.T, e *Engine, st *EvalState, d *dataset.Dataset) *Result {
	t.Helper()
	res, err := e.Resume(context.Background(), st, d)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	return res
}

// requireEqualResults fails unless a and b agree bit-for-bit on tables
// (NaN included), suspicious marks and trust records.
func requireEqualResults(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if len(a.Table) != len(b.Table) {
		t.Fatalf("%s: table sizes differ: %d vs %d", label, len(a.Table), len(b.Table))
	}
	for id, as := range a.Table {
		bs, ok := b.Table[id]
		if !ok || len(as) != len(bs) {
			t.Fatalf("%s: product %s tables differ in shape", label, id)
		}
		for i := range as {
			if math.Float64bits(as[i]) != math.Float64bits(bs[i]) {
				t.Errorf("%s: product %s period %d: %v vs %v (bits %x vs %x)",
					label, id, i, as[i], bs[i], math.Float64bits(as[i]), math.Float64bits(bs[i]))
			}
		}
	}
	for id, am := range a.Suspicious {
		bm := b.Suspicious[id]
		if len(am) != len(bm) {
			t.Fatalf("%s: product %s marks differ in length: %d vs %d", label, id, len(am), len(bm))
		}
		for i := range am {
			if am[i] != bm[i] {
				t.Errorf("%s: product %s rating %d: mark %v vs %v", label, id, i, am[i], bm[i])
			}
		}
	}
	if a.Trust.Len() != b.Trust.Len() {
		t.Fatalf("%s: trust sizes differ: %d vs %d", label, a.Trust.Len(), b.Trust.Len())
	}
	for _, rt := range a.Trust.Snapshot() {
		ra, rb := a.Trust.Record(rt.Rater), b.Trust.Record(rt.Rater)
		if math.Float64bits(ra.S) != math.Float64bits(rb.S) ||
			math.Float64bits(ra.F) != math.Float64bits(rb.F) {
			t.Errorf("%s: rater %s records differ: %+v vs %+v", label, rt.Rater, ra, rb)
		}
	}
}

// Parallel evaluation must be bit-exact with serial evaluation: within an
// epoch no product's analysis feeds another, and the trust fold only
// consumes integer counts.
func TestParallelMatchesSerial(t *testing.T) {
	for _, seed := range []uint64{1, 7, 23} {
		d := testDataset(t, seed, 6, 150)
		serial := &Engine{Detect: detect.DefaultConfig(), Workers: 1}
		for _, w := range []int{2, runtime.GOMAXPROCS(0), 16} {
			par := &Engine{Detect: detect.DefaultConfig(), Workers: w}
			requireEqualResults(t, fmt.Sprintf("seed %d workers %d", seed, w),
				mustEvaluate(t, par, d), mustEvaluate(t, serial, d))
		}
	}
}

// Resuming from checkpoints after interleaved insertions must be bit-exact
// with a cold evaluation of the final dataset — the engine's core
// correctness claim. Days are drawn at random, so insertions routinely land
// before already-evaluated epochs (out-of-order arrival) and must
// invalidate the mid-history checkpoints they touch.
func TestIncrementalMatchesColdProperty(t *testing.T) {
	const horizon = 150.0
	for _, seed := range []uint64{3, 11} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := stats.NewRNG(seed)
			base := testDataset(t, seed, 3, horizon)
			// Live dataset starts with roughly half of each product's
			// history; the rest arrives interleaved, in random order.
			live := &dataset.Dataset{HorizonDays: horizon}
			type pending struct {
				product string
				r       dataset.Rating
			}
			var backlog []pending
			for _, p := range base.Products {
				var keep dataset.Series
				for _, r := range p.Ratings {
					if rng.Float64() < 0.5 {
						keep = append(keep, r)
					} else {
						backlog = append(backlog, pending{p.ID, r})
					}
				}
				live.Products = append(live.Products, dataset.Product{ID: p.ID, Ratings: keep.Clone()})
			}
			rng.Shuffle(len(backlog), func(i, j int) { backlog[i], backlog[j] = backlog[j], backlog[i] })

			eng := &Engine{Detect: detect.DefaultConfig()}
			cold := &Engine{Detect: detect.DefaultConfig()}
			st := NewState()
			res := mustResume(t, eng, st, live)
			requireEqualResults(t, "initial", res, mustEvaluate(t, cold, live))

			for batch := 0; len(backlog) > 0; batch++ {
				// Apply a random-sized batch of pending ratings.
				n := 1 + rng.IntN(8)
				if n > len(backlog) {
					n = len(backlog)
				}
				for _, ins := range backlog[:n] {
					p, err := live.Product(ins.product)
					if err != nil {
						t.Fatal(err)
					}
					p.Ratings = p.Ratings.Merge(dataset.Series{ins.r})
					st.Invalidate(ins.r.Day)
				}
				backlog = backlog[n:]
				res = mustResume(t, eng, st, live)
				// The incremental state must stay consistent through every
				// batch; the (expensive) cold reference runs on a sample of
				// batches plus the final state.
				if batch%5 == 0 || len(backlog) == 0 {
					requireEqualResults(t, fmt.Sprintf("%d ratings left", len(backlog)),
						res, mustEvaluate(t, cold, live))
				}
			}
			if got, want := st.CompletedEpochs(), epoch.Periods(horizon); got != want {
				t.Errorf("CompletedEpochs = %d, want %d", got, want)
			}
		})
	}
}

// Invalidate must drop exactly the epochs at or after the given day.
func TestInvalidate(t *testing.T) {
	d := testDataset(t, 5, 2, 150)
	eng := &Engine{Detect: detect.DefaultConfig()}
	st := NewState()
	mustResume(t, eng, st, d)
	n := epoch.Periods(150) // 5
	if st.CompletedEpochs() != n {
		t.Fatalf("CompletedEpochs = %d, want %d", st.CompletedEpochs(), n)
	}
	st.Invalidate(200) // past the horizon: nothing to drop
	if st.CompletedEpochs() != n {
		t.Errorf("Invalidate(past horizon) dropped epochs: %d", st.CompletedEpochs())
	}
	st.Invalidate(95) // epoch 3: epochs 3,4 drop
	if st.CompletedEpochs() != 3 {
		t.Errorf("Invalidate(95): CompletedEpochs = %d, want 3", st.CompletedEpochs())
	}
	st.Invalidate(100) // later day, already-invalid suffix: no-op
	if st.CompletedEpochs() != 3 {
		t.Errorf("Invalidate(100) after Invalidate(95): CompletedEpochs = %d, want 3", st.CompletedEpochs())
	}
	st.Invalidate(-4) // defensive: clamps to epoch 0
	if st.CompletedEpochs() != 0 {
		t.Errorf("Invalidate(-4): CompletedEpochs = %d, want 0", st.CompletedEpochs())
	}
	requireEqualResults(t, "after full invalidation", mustResume(t, eng, st, d), mustEvaluate(t, eng, d))
}

// A state bound to one dataset identity must transparently reset — not
// reuse bogus checkpoints — when the horizon or product set changes.
func TestStateResetsOnDatasetChange(t *testing.T) {
	d1 := testDataset(t, 9, 3, 150)
	eng := &Engine{Detect: detect.DefaultConfig()}
	st := NewState()
	mustResume(t, eng, st, d1)

	d2 := testDataset(t, 9, 3, 120) // different horizon
	requireEqualResults(t, "horizon change", mustResume(t, eng, st, d2), mustEvaluate(t, eng, d2))

	d3 := testDataset(t, 9, 4, 120) // different product set
	requireEqualResults(t, "product change", mustResume(t, eng, st, d3), mustEvaluate(t, eng, d3))
}

// An empty dataset and empty products must evaluate without panicking.
func TestEvaluateDegenerate(t *testing.T) {
	d := &dataset.Dataset{HorizonDays: 90, Products: []dataset.Product{{ID: "empty"}}}
	eng := &Engine{Detect: detect.DefaultConfig()}
	res := mustEvaluate(t, eng, d)
	scores := res.Table["empty"]
	if len(scores) != epoch.Periods(90) {
		t.Fatalf("scores length = %d, want %d", len(scores), epoch.Periods(90))
	}
	for i, v := range scores {
		if !math.IsNaN(v) {
			t.Errorf("period %d of empty product = %v, want NaN", i, v)
		}
	}
	if len(res.Suspicious["empty"]) != 0 {
		t.Errorf("marks for empty product = %v", res.Suspicious["empty"])
	}
}

// TestMatchesRebuiltDataset pins the content-based identity contract the
// sharded store relies on: the coordinator rebuilds the combined dataset
// from per-shard partitions on every consistent cut, so the engine must
// recognize a rebuilt (content-identical, pointer-distinct) dataset and
// keep resuming from its checkpoints instead of resetting to a cold start.
func TestMatchesRebuiltDataset(t *testing.T) {
	d := testDataset(t, 5, 4, 150)
	eng := &Engine{Detect: detect.DefaultConfig()}
	st := NewState()
	res := mustResume(t, eng, st, d)
	epochs := st.CompletedEpochs()
	if epochs == 0 {
		t.Fatal("no checkpoints after a full evaluation")
	}

	rebuilt := d.Clone()
	if !st.Matches(rebuilt) {
		t.Fatal("state does not match a rebuilt content-identical dataset")
	}
	res2 := mustResume(t, eng, st, rebuilt)
	if got := st.CompletedEpochs(); got != epochs {
		t.Fatalf("resume on rebuilt dataset kept %d epochs, want %d (state was reset)", got, epochs)
	}
	requireEqualResults(t, "rebuilt resume", res, res2)

	// The identity is the content: a changed horizon or product order is a
	// different dataset and must not match.
	horizonChanged := d.Clone()
	horizonChanged.HorizonDays += 30
	if st.Matches(horizonChanged) {
		t.Error("state matches a dataset with a different horizon")
	}
	reordered := d.Clone()
	reordered.Products[0], reordered.Products[1] = reordered.Products[1], reordered.Products[0]
	if st.Matches(reordered) {
		t.Error("state matches a dataset with reordered products")
	}
	if NewState().Matches(d) {
		t.Error("fresh state (no checkpoints) claims to match")
	}
}
