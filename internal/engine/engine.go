// Package engine is the epoch-structured evaluation engine behind the
// P-scheme (internal/agg.PScheme). It decomposes the pipeline of Section IV
// into explicit stages
//
//	per-product epoch analysis → per-rater trust fold → final marks → Eq. 7 aggregation
//
// operating on a checkpointable EvalState that snapshots rater trust at
// every epoch boundary. Two properties of Procedure 1 make the engine both
// parallel and incremental:
//
//   - Within one epoch, rater trust is frozen: every product's detector
//     analysis reads the same trust snapshot and no product's marks feed
//     another product until the fold at the epoch boundary. Per-product
//     detect.Analyze calls are therefore independent and fan out over a
//     bounded worker pool.
//
//   - Trust accumulation is strictly causal: the state at the start of
//     epoch e is a pure function of the ratings with Day < 30·e. A new
//     rating on day d can only perturb epochs ≥ epoch(d), so evaluation
//     resumes from the checkpoint at epoch(d) and reuses every earlier
//     epoch's trust fold verbatim.
//
// Both paths are bit-exact with a cold, serial evaluation: epoch counts are
// integers (order-independent), each rater is folded exactly once per epoch,
// and the detector stack is deterministic, so neither worker scheduling nor
// checkpoint reuse can change a single output bit (see the equivalence
// property tests).
package engine

import (
	"context"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/epoch"
	"repro/internal/trust"
)

// Engine evaluates a dataset under the P-scheme pipeline. The zero value
// is not useful; set Detect (e.g. detect.DefaultConfig()).
type Engine struct {
	// Detect configures the four detectors and the fusion.
	Detect detect.Config
	// DisableFilter keeps suspicious ratings in the aggregation (ablation).
	DisableFilter bool
	// DisableTrustWeighting aggregates with equal weights instead of
	// Eq. 7's max(T−0.5, 0) (ablation).
	DisableTrustWeighting bool
	// Workers bounds the per-product analysis parallelism within an epoch:
	// 0 means GOMAXPROCS, 1 runs serially.
	Workers int
}

// New returns an engine with the given detector configuration.
func New(cfg detect.Config) *Engine { return &Engine{Detect: cfg} }

// Result is the full outcome of an evaluation: the per-product per-period
// aggregates, the per-rating suspicious marks (aligned with each product's
// sorted series), and the final trust state.
type Result struct {
	Table      map[string][]float64
	Suspicious map[string][]bool
	Trust      *trust.Manager
}

// Evaluate runs the full pipeline cold (no checkpoint reuse). It returns
// ctx.Err() — and no result — if the context is cancelled mid-evaluation.
func (e *Engine) Evaluate(ctx context.Context, d *dataset.Dataset) (*Result, error) {
	return e.Resume(ctx, NewState(), d)
}

// Resume brings st up to date with the dataset and returns the evaluation
// result. Epochs already checkpointed in st are reused verbatim; the caller
// must have called st.Invalidate(day) for every rating day added, removed
// or modified since the state was last resumed (NewState, or a state whose
// product set or horizon changed, recomputes everything).
//
// Cancelling ctx stops the evaluation between products and between epochs
// and returns ctx.Err(). Cancellation is checkpoint-safe: st only ever
// holds trust snapshots of fully completed epochs (a half-analyzed epoch's
// counts are discarded, never folded), so a later Resume with a live
// context picks up exactly where the cancelled one stopped and produces a
// bit-exact result — pinned by TestResumeCancelledMidEvaluate.
func (e *Engine) Resume(ctx context.Context, st *EvalState, d *dataset.Dataset) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !st.matches(d) {
		st.reset(d)
	}
	n := epoch.Periods(d.HorizonDays)

	// Stages 1+2 (per-product epoch analysis, per-rater trust fold):
	// resume Procedure 1 from the newest surviving checkpoint. The working
	// manager is a clone, so earlier checkpoints — and any previously
	// returned Result — are never mutated.
	mgr := st.checkpoints[len(st.checkpoints)-1].Clone()
	for ep := len(st.checkpoints) - 1; ep < n; ep++ {
		if err := e.runEpoch(ctx, d, ep, mgr); err != nil {
			return nil, err
		}
		st.checkpoints = append(st.checkpoints, mgr.Clone())
	}

	// Stages 3+4 (final marks, Eq. 7 aggregation): an offline pass per
	// product over the full series with the final trust, so an attack only
	// visible once its end is in view is still filtered from the periods
	// it poisoned. The final trust changes on virtually every new rating
	// (the rating itself is judged), so this pass is not checkpointed —
	// its cost is one analysis per product, a constant independent of the
	// epoch count. Trust is read-only here, so products fan out freely.
	marks := make([][]bool, len(d.Products))
	scores := make([][]float64, len(d.Products))
	err := e.forEachProduct(ctx, len(d.Products), func(i int, sc *detect.Scratch) {
		prod := &d.Products[i]
		rep := detect.AnalyzeWith(prod.Ratings, d.HorizonDays, e.Detect, mgr, sc)
		marks[i] = rep.Suspicious
		scores[i] = e.aggregateProduct(prod.Ratings, rep.Suspicious, d.HorizonDays, mgr)
	})
	if err != nil {
		// The epoch checkpoints above are complete and remain valid; only
		// this uncheckpointed final pass is abandoned.
		return nil, err
	}

	res := &Result{
		Table:      make(map[string][]float64, len(d.Products)),
		Suspicious: make(map[string][]bool, len(d.Products)),
		Trust:      mgr,
	}
	for i, prod := range d.Products {
		res.Table[prod.ID] = scores[i]
		res.Suspicious[prod.ID] = marks[i]
	}
	return res, nil
}

// raterCounts is one rater's in-epoch evidence: n ratings observed, f of
// them marked suspicious.
type raterCounts struct{ n, f int }

// runEpoch executes one trust epoch of Procedure 1: analyze every product's
// prefix [0, end-of-epoch) under the trust at the epoch start, count each
// rater's (observed, suspicious) ratings inside the epoch, and fold the
// counts into mgr. Analysis fans out per product; the fold happens after
// the pool drains, so mgr is read-only while workers run. On cancellation
// the partially collected counts are discarded without touching mgr, so the
// caller's trust state still describes a whole number of epochs.
func (e *Engine) runEpoch(ctx context.Context, d *dataset.Dataset, ep int, mgr *trust.Manager) error {
	lo, hi := epoch.PeriodInterval(ep, d.HorizonDays)
	perProduct := make([]map[string]raterCounts, len(d.Products))
	err := e.forEachProduct(ctx, len(d.Products), func(i int, sc *detect.Scratch) {
		prod := &d.Products[i]
		seen := prod.Ratings.Between(0, hi)
		if len(seen) == 0 {
			return
		}
		rep := detect.AnalyzeWith(seen, hi, e.Detect, mgr, sc)
		var counts map[string]raterCounts
		for j, r := range seen {
			if r.Day < lo {
				continue // earlier epoch already judged it
			}
			if counts == nil {
				counts = make(map[string]raterCounts)
			}
			c := counts[r.Rater]
			c.n++
			if rep.Suspicious[j] {
				c.f++
			}
			counts[r.Rater] = c
		}
		perProduct[i] = counts
	})
	if err != nil {
		return err
	}

	// Merge and fold. The merged counts are integers, so the merge order
	// cannot change any total; the fold into the trust manager then walks
	// raters in sorted order, making the bit-exactness of the per-epoch
	// trust fold structural rather than an argument about commutativity.
	total := make(map[string]raterCounts)
	for _, counts := range perProduct {
		for rater, c := range counts {
			t := total[rater]
			t.n += c.n
			t.f += c.f
			total[rater] = t
		}
	}
	raters := make([]string, 0, len(total))
	for rater := range total {
		raters = append(raters, rater)
	}
	sort.Strings(raters)
	for _, rater := range raters {
		c := total[rater]
		mgr.Observe(rater, c.n, c.f)
	}
	return nil
}

// aggregateProduct computes one product's per-period scores (Eq. 7): marked
// ratings are dropped, the rest weighted by max(T−0.5, 0). Each period is
// sliced out of the sorted series by index, so the whole table costs
// O(len(s) + periods·log len(s)) instead of a full scan per period.
func (e *Engine) aggregateProduct(s dataset.Series, susMarks []bool, horizon float64, mgr *trust.Manager) []float64 {
	n := epoch.Periods(horizon)
	scores := make([]float64, n)
	weight := func(rater string) float64 {
		return math.Max(mgr.Trust(rater)-0.5, 0)
	}
	if e.DisableTrustWeighting {
		weight = func(string) float64 { return 1 }
	}
	var kept []bool
	for i := 0; i < n; i++ {
		lo, hi := epoch.PeriodInterval(i, horizon)
		start, end := s.BetweenIndex(lo, hi)
		if start == end {
			scores[i] = math.NaN()
			continue
		}
		period := s[start:end]
		kept = kept[:0]
		for j := range period {
			kept = append(kept, e.DisableFilter || !susMarks[start+j])
		}
		scores[i] = epoch.WeightedMean(period, kept, weight)
	}
	return scores
}

// workers resolves the effective pool size.
func (e *Engine) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// scratchPool recycles detector scratch buffers across epochs and
// evaluations. Scratches carry no result state (reuse is bit-exact, see
// internal/detect), so pooling them across engines and goroutines is safe;
// each forEachProduct worker checks one out for its whole batch, giving
// every product analysis warm buffers without any cross-worker sharing.
var scratchPool = sync.Pool{New: func() any { return detect.NewScratch() }}

// Worker-pool instrumentation: process-wide counters of products the pool
// analyzed versus products it skipped because the caller's context was
// already cancelled. They exist so tests (and the chaos harness) can prove
// that cancelling an HTTP request actually stops detector work rather than
// letting the pool drain at full cost.
var (
	poolAnalyzed atomic.Uint64
	poolSkipped  atomic.Uint64
)

// PoolStats is a snapshot of the worker-pool counters.
type PoolStats struct {
	// Analyzed counts products whose detector analysis ran to completion.
	Analyzed uint64
	// Skipped counts products abandoned because the evaluation's context
	// was cancelled before their analysis started.
	Skipped uint64
}

// Stats returns the current process-wide worker-pool counters. Deltas
// between two snapshots bound the work done in between; the absolute
// values are cumulative since process start.
func Stats() PoolStats {
	return PoolStats{Analyzed: poolAnalyzed.Load(), Skipped: poolSkipped.Load()}
}

// forEachProduct runs fn(i) for i in [0, n) over a bounded worker pool in
// the current goroutine plus up to workers()−1 helpers, handing each worker
// its own detector scratch. fn must only write state owned by index i and
// must not retain sc past the call.
//
// Cancellation is checked before every fn call: once ctx is cancelled no
// new product analysis starts (already-running calls finish — detector
// kernels are short), remaining indices are drained and counted as
// skipped, and ctx.Err() is returned after the pool is fully quiesced, so
// the caller may discard or reuse the output slices immediately.
func (e *Engine) forEachProduct(ctx context.Context, n int, fn func(i int, sc *detect.Scratch)) error {
	done := ctx.Done()
	w := e.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		sc := scratchPool.Get().(*detect.Scratch)
		for i := 0; i < n; i++ {
			if done != nil && ctx.Err() != nil {
				poolSkipped.Add(uint64(n - i))
				scratchPool.Put(sc)
				return ctx.Err()
			}
			fn(i, sc)
			poolAnalyzed.Add(1)
		}
		scratchPool.Put(sc)
		return nil
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			sc := scratchPool.Get().(*detect.Scratch)
			for i := range idx {
				if done != nil && ctx.Err() != nil {
					// Keep draining so the feeder never blocks; every
					// undone index is a skip.
					poolSkipped.Add(1)
					continue
				}
				fn(i, sc)
				poolAnalyzed.Add(1)
			}
			scratchPool.Put(sc)
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if done != nil {
		return ctx.Err()
	}
	return nil
}
