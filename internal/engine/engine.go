// Package engine is the epoch-structured evaluation engine behind the
// P-scheme (internal/agg.PScheme). It decomposes the pipeline of Section IV
// into explicit stages
//
//	per-product epoch analysis → per-rater trust fold → final marks → Eq. 7 aggregation
//
// operating on a checkpointable EvalState that snapshots rater trust at
// every epoch boundary. Two properties of Procedure 1 make the engine both
// parallel and incremental:
//
//   - Within one epoch, rater trust is frozen: every product's detector
//     analysis reads the same trust snapshot and no product's marks feed
//     another product until the fold at the epoch boundary. Per-product
//     detect.Analyze calls are therefore independent and fan out over a
//     bounded worker pool.
//
//   - Trust accumulation is strictly causal: the state at the start of
//     epoch e is a pure function of the ratings with Day < 30·e. A new
//     rating on day d can only perturb epochs ≥ epoch(d), so evaluation
//     resumes from the checkpoint at epoch(d) and reuses every earlier
//     epoch's trust fold verbatim.
//
// Both paths are bit-exact with a cold, serial evaluation: epoch counts are
// integers (order-independent), each rater is folded exactly once per epoch,
// and the detector stack is deterministic, so neither worker scheduling nor
// checkpoint reuse can change a single output bit (see the equivalence
// property tests).
package engine

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/epoch"
	"repro/internal/trust"
)

// Engine evaluates a dataset under the P-scheme pipeline. The zero value
// is not useful; set Detect (e.g. detect.DefaultConfig()).
type Engine struct {
	// Detect configures the four detectors and the fusion.
	Detect detect.Config
	// DisableFilter keeps suspicious ratings in the aggregation (ablation).
	DisableFilter bool
	// DisableTrustWeighting aggregates with equal weights instead of
	// Eq. 7's max(T−0.5, 0) (ablation).
	DisableTrustWeighting bool
	// DisableMemo turns off the memo plane (see memo.go): every product is
	// re-analyzed in every dirty epoch, as if no result were ever cached.
	// Exists for the memo-on vs memo-off equivalence tests and as an
	// operational escape hatch; output is bit-identical either way.
	DisableMemo bool
	// Workers bounds the per-product analysis parallelism within an epoch:
	// 0 means GOMAXPROCS, 1 runs serially.
	Workers int
}

// New returns an engine with the given detector configuration.
func New(cfg detect.Config) *Engine { return &Engine{Detect: cfg} }

// Result is the full outcome of an evaluation: the per-product per-period
// aggregates, the per-rating suspicious marks (aligned with each product's
// sorted series), and the final trust state.
type Result struct {
	Table      map[string][]float64
	Suspicious map[string][]bool
	Trust      *trust.Manager
}

// Evaluate runs the full pipeline cold (no checkpoint reuse). It returns
// ctx.Err() — and no result — if the context is cancelled mid-evaluation.
func (e *Engine) Evaluate(ctx context.Context, d *dataset.Dataset) (*Result, error) {
	return e.Resume(ctx, NewState(), d)
}

// Resume brings st up to date with the dataset and returns the evaluation
// result. Epochs already checkpointed in st are reused verbatim; the caller
// must have called st.Invalidate(day) for every rating day added, removed
// or modified since the state was last resumed (NewState, or a state whose
// product set or horizon changed, recomputes everything).
//
// Cancelling ctx stops the evaluation between products and between epochs
// and returns ctx.Err(). Cancellation is checkpoint-safe: st only ever
// holds trust snapshots of fully completed epochs (a half-analyzed epoch's
// counts are discarded, never folded), so a later Resume with a live
// context picks up exactly where the cancelled one stopped and produces a
// bit-exact result — pinned by TestResumeCancelledMidEvaluate.
func (e *Engine) Resume(ctx context.Context, st *EvalState, d *dataset.Dataset) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !st.matches(d) {
		st.reset(d)
	}
	n := epoch.Periods(d.HorizonDays)

	// Stages 1+2 (per-product epoch analysis, per-rater trust fold):
	// resume Procedure 1 from the newest surviving checkpoint. The working
	// manager is a clone, so earlier checkpoints — and any previously
	// returned Result — are never mutated.
	//
	// Each completed epoch also maintains the memo plane's trust-sameness
	// cascade: once epoch ep completes, every memo entry recorded at ep is
	// keyed against checkpoint ep (hits were verified against it, misses
	// re-recorded under it), so trustSame[ep] becomes true. If additionally
	// the incoming trust was unchanged (same) and the fresh fold equals the
	// last completed run's fold (foldSame), the outgoing trust — the next
	// checkpoint — is unchanged too, and the sameness cascades forward.
	mgr := st.checkpoints[len(st.checkpoints)-1].Clone()
	for ep := len(st.checkpoints) - 1; ep < n; ep++ {
		same := st.trustSame[ep]
		fold, err := e.runEpoch(ctx, d, ep, mgr, st, same)
		if err != nil {
			return nil, err
		}
		foldSame := st.folds[ep] != nil && foldsEqual(st.folds[ep], fold)
		st.folds[ep] = fold
		if !e.DisableMemo {
			st.trustSame[ep] = true
		}
		for _, fc := range fold {
			mgr.Observe(fc.rater, fc.n, fc.f)
		}
		st.checkpoints = append(st.checkpoints, mgr.Clone())
		cascade := same && foldSame
		st.trustSame[ep+1] = st.trustSame[ep+1] && cascade
		if ep == n-1 {
			st.finalConsistent = st.finalConsistent && cascade
		}
	}

	// Stages 3+4 (final marks, Eq. 7 aggregation): an offline pass per
	// product over the full series with the final trust, so an attack only
	// visible once its end is in view is still filtered from the periods
	// it poisoned. This pass is not checkpointed — but it is memoized: a
	// product whose series version and rater-scoped final trust are
	// unchanged replays its cached report and scores instead of
	// re-analyzing, so a single late submit costs one product's analysis,
	// not one per product. Trust is read-only here, so misses fan out
	// freely over the pool while hits are resolved serially up front.
	marks := make([][]bool, len(d.Products))
	scores := make([][]float64, len(d.Products))
	memos := make([]*productMemo, len(d.Products))
	var work []int
	for i := range d.Products {
		prod := &d.Products[i]
		if !e.DisableMemo {
			if m := st.memoFor(prod); m != nil {
				memos[i] = m
				if mk, sc, ok := m.finalHit(len(prod.Ratings), mgr, st.finalConsistent); ok {
					marks[i], scores[i] = mk, sc
					memoHits.Add(1)
					continue
				}
				memoMisses.Add(1)
			}
		}
		work = append(work, i)
	}
	ents := make([]finalEntry, len(d.Products))
	err := e.forEachProduct(ctx, len(work), func(k int, sc *detect.Scratch) {
		i := work[k]
		prod := &d.Products[i]
		rep := detect.AnalyzeWith(prod.Ratings, d.HorizonDays, e.Detect, mgr, sc)
		marks[i] = rep.Suspicious
		scores[i] = e.aggregateProduct(prod.Ratings, rep.Suspicious, d.HorizonDays, mgr)
		if memos[i] != nil {
			ents[i] = newFinalEntry(memos[i].version, prod.Ratings, mgr, rep, scores[i])
		}
	})
	if err != nil {
		// The epoch checkpoints above are complete and remain valid; only
		// this uncheckpointed final pass is abandoned. No memo entry from
		// the unfinished pass is committed (the commit below never runs),
		// so the cache still describes completed work only.
		return nil, err
	}
	// Commit the fresh final entries serially: productMemo is not
	// goroutine-safe, and committing only after the pool fully succeeded
	// keeps cancellation from publishing half a pass.
	for _, i := range work {
		if memos[i] != nil && ents[i].valid {
			memos[i].final = ents[i]
		}
	}
	if !e.DisableMemo {
		st.finalConsistent = true
	}

	res := &Result{
		Table:      make(map[string][]float64, len(d.Products)),
		Suspicious: make(map[string][]bool, len(d.Products)),
		Trust:      mgr,
	}
	for i, prod := range d.Products {
		res.Table[prod.ID] = scores[i]
		res.Suspicious[prod.ID] = marks[i]
	}
	return res, nil
}

// raterCounts is one rater's in-epoch evidence: n ratings observed, f of
// them marked suspicious.
type raterCounts struct{ n, f int }

// runEpoch executes one trust epoch of Procedure 1: analyze every product's
// prefix [0, end-of-epoch) under the trust at the epoch start, count each
// rater's (observed, suspicious) ratings inside the epoch, and return the
// merged per-rater counts in canonical sorted form (the caller folds them
// into mgr, so mgr is read-only here and while workers run).
//
// Products whose (series prefix, rater-scoped trust) key matches their memo
// entry replay the cached counts and skip analysis entirely; trustSame
// short-circuits even the fingerprint work when the caller proved the whole
// epoch-start snapshot unchanged. Hit checks and entry commits run serially
// on either side of the pool — only misses fan out. On cancellation the
// partially collected counts and entries are discarded without touching mgr
// or the memo, so the caller's state still describes whole completed epochs.
func (e *Engine) runEpoch(ctx context.Context, d *dataset.Dataset, ep int, mgr *trust.Manager, st *EvalState, trustSame bool) ([]raterFold, error) {
	lo, hi := epoch.PeriodInterval(ep, d.HorizonDays)
	perProduct := make([][]raterFold, len(d.Products))

	memos := make([]*productMemo, len(d.Products))
	var work []int
	for i := range d.Products {
		prod := &d.Products[i]
		if !e.DisableMemo {
			if m := st.memoFor(prod); m != nil {
				memos[i] = m
				start, end := prod.Ratings.BetweenIndex(0, hi)
				if counts, ok := m.epochHit(ep, end-start, mgr, trustSame); ok {
					perProduct[i] = counts
					memoHits.Add(1)
					continue
				}
				memoMisses.Add(1)
			}
		}
		work = append(work, i)
	}

	ents := make([]memoEntry, len(d.Products))
	err := e.forEachProduct(ctx, len(work), func(k int, sc *detect.Scratch) {
		i := work[k]
		prod := &d.Products[i]
		seen := prod.Ratings.Between(0, hi)
		var counts map[string]raterCounts
		if len(seen) > 0 {
			rep := detect.AnalyzeWith(seen, hi, e.Detect, mgr, sc)
			for j, r := range seen {
				if r.Day < lo {
					continue // earlier epoch already judged it
				}
				if counts == nil {
					counts = make(map[string]raterCounts)
				}
				c := counts[r.Rater]
				c.n++
				if rep.Suspicious[j] {
					c.f++
				}
				counts[r.Rater] = c
			}
			perProduct[i] = sortedFold(counts)
		}
		if memos[i] != nil {
			ents[i] = newEpochEntry(memos[i].version, seen, mgr, perProduct[i])
		}
	})
	if err != nil {
		return nil, err
	}
	// Commit fresh entries serially after the whole pool succeeded (the
	// memo is not goroutine-safe; a cancelled epoch publishes nothing).
	for _, i := range work {
		if memos[i] != nil && ents[i].valid {
			memos[i].setEpoch(ep, ents[i])
		}
	}

	// Merge. The merged counts are integers, so neither the worker
	// schedule nor hit-vs-miss provenance can change any total; the
	// canonical sorted return then makes the caller's fold walk raters in
	// sorted order, keeping the per-epoch trust fold's bit-exactness
	// structural rather than an argument about commutativity.
	total := make(map[string]raterCounts)
	for _, counts := range perProduct {
		for _, fc := range counts {
			t := total[fc.rater]
			t.n += fc.n
			t.f += fc.f
			total[fc.rater] = t
		}
	}
	return sortedFold(total), nil
}

// aggregateProduct computes one product's per-period scores (Eq. 7): marked
// ratings are dropped, the rest weighted by max(T−0.5, 0). Each period is
// sliced out of the sorted series by index, so the whole table costs
// O(len(s) + periods·log len(s)) instead of a full scan per period.
func (e *Engine) aggregateProduct(s dataset.Series, susMarks []bool, horizon float64, mgr *trust.Manager) []float64 {
	n := epoch.Periods(horizon)
	scores := make([]float64, n)
	weight := func(rater string) float64 {
		return math.Max(mgr.Trust(rater)-0.5, 0)
	}
	if e.DisableTrustWeighting {
		weight = func(string) float64 { return 1 }
	}
	var kept []bool
	for i := 0; i < n; i++ {
		lo, hi := epoch.PeriodInterval(i, horizon)
		start, end := s.BetweenIndex(lo, hi)
		if start == end {
			scores[i] = math.NaN()
			continue
		}
		period := s[start:end]
		kept = kept[:0]
		for j := range period {
			kept = append(kept, e.DisableFilter || !susMarks[start+j])
		}
		scores[i] = epoch.WeightedMean(period, kept, weight)
	}
	return scores
}

// workers resolves the effective pool size.
func (e *Engine) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// scratchPool recycles detector scratch buffers across epochs and
// evaluations. Scratches carry no result state (reuse is bit-exact, see
// internal/detect), so pooling them across engines and goroutines is safe;
// each forEachProduct worker checks one out for its whole batch, giving
// every product analysis warm buffers without any cross-worker sharing.
var scratchPool = sync.Pool{New: func() any { return detect.NewScratch() }}

// Worker-pool instrumentation: process-wide counters of products the pool
// analyzed versus products it skipped because the caller's context was
// already cancelled. They exist so tests (and the chaos harness) can prove
// that cancelling an HTTP request actually stops detector work rather than
// letting the pool drain at full cost.
var (
	poolAnalyzed atomic.Uint64
	poolSkipped  atomic.Uint64
)

// Memo-plane instrumentation: process-wide counters of cache lookups that
// replayed a cached result (hits), fell through to analysis (misses), and
// cached entries dropped because a product's series version moved
// (invalidations). Unversioned products perform no lookups and count
// nothing.
var (
	memoHits        atomic.Uint64
	memoMisses      atomic.Uint64
	memoInvalidated atomic.Uint64
)

// PoolStats is a snapshot of the worker-pool and memo-plane counters.
type PoolStats struct {
	// Analyzed counts products whose detector analysis ran to completion.
	Analyzed uint64
	// Skipped counts products abandoned because the evaluation's context
	// was cancelled before their analysis started.
	Skipped uint64
	// MemoHits counts per-(product, epoch) and final-pass lookups served
	// from the memo plane instead of re-analysis.
	MemoHits uint64
	// MemoMisses counts lookups that fell through to analysis (and, on
	// success, re-recorded the entry).
	MemoMisses uint64
	// MemoInvalidated counts cached entries dropped because the product's
	// series version changed.
	MemoInvalidated uint64
}

// Stats returns the current process-wide worker-pool counters. Deltas
// between two snapshots bound the work done in between; the absolute
// values are cumulative since process start.
func Stats() PoolStats {
	return PoolStats{
		Analyzed:        poolAnalyzed.Load(),
		Skipped:         poolSkipped.Load(),
		MemoHits:        memoHits.Load(),
		MemoMisses:      memoMisses.Load(),
		MemoInvalidated: memoInvalidated.Load(),
	}
}

// forEachProduct runs fn(i) for i in [0, n) over a bounded worker pool in
// the current goroutine plus up to workers()−1 helpers, handing each worker
// its own detector scratch. fn must only write state owned by index i and
// must not retain sc past the call.
//
// Cancellation is checked before every fn call: once ctx is cancelled no
// new product analysis starts (already-running calls finish — detector
// kernels are short), remaining indices are drained and counted as
// skipped, and ctx.Err() is returned after the pool is fully quiesced, so
// the caller may discard or reuse the output slices immediately.
func (e *Engine) forEachProduct(ctx context.Context, n int, fn func(i int, sc *detect.Scratch)) error {
	done := ctx.Done()
	w := e.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		sc := scratchPool.Get().(*detect.Scratch)
		for i := 0; i < n; i++ {
			if done != nil && ctx.Err() != nil {
				poolSkipped.Add(uint64(n - i))
				scratchPool.Put(sc)
				return ctx.Err()
			}
			fn(i, sc)
			poolAnalyzed.Add(1)
		}
		scratchPool.Put(sc)
		return nil
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			sc := scratchPool.Get().(*detect.Scratch)
			for i := range idx {
				if done != nil && ctx.Err() != nil {
					// Keep draining so the feeder never blocks; every
					// undone index is a skip.
					poolSkipped.Add(1)
					continue
				}
				fn(i, sc)
				poolAnalyzed.Add(1)
			}
			scratchPool.Put(sc)
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if done != nil {
		return ctx.Err()
	}
	return nil
}
