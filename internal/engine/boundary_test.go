package engine

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/epoch"
)

// addRating merges one rating into a live dataset's product and invalidates
// the incremental state at the rating's day — the server's submit path.
func addRating(t *testing.T, d *dataset.Dataset, st *EvalState, product string, r dataset.Rating) {
	t.Helper()
	p, err := d.Product(product)
	if err != nil {
		t.Fatal(err)
	}
	p.Ratings = p.Ratings.Merge(dataset.Series{r})
	st.Invalidate(r.Day)
}

// Ratings at exactly day 0 belong to epoch 0 and must flow through the
// incremental path bit-exactly.
func TestBoundaryDayZeroRating(t *testing.T) {
	const horizon = 90.0
	d := testDataset(t, 21, 2, horizon)
	eng := &Engine{Detect: detect.DefaultConfig()}
	st := NewState()
	mustResume(t, eng, st, d)

	addRating(t, d, st, d.Products[0].ID, dataset.Rating{Day: 0, Value: 3, Rater: "dayzero"})
	if got := st.CompletedEpochs(); got != 0 {
		t.Errorf("day-0 insert must invalidate everything: CompletedEpochs = %d", got)
	}
	cold := &Engine{Detect: detect.DefaultConfig()}
	requireEqualResults(t, "day-0 rating", mustResume(t, eng, st, d), mustEvaluate(t, cold, d))
}

// A horizon that is an exact 30-day multiple must close its last epoch with
// no empty trailing period, and resumption must agree with a cold run.
func TestBoundaryExactMultipleHorizon(t *testing.T) {
	for _, horizon := range []float64{epoch.PeriodDays, 2 * epoch.PeriodDays, 4 * epoch.PeriodDays} {
		d := testDataset(t, 31, 2, horizon)
		eng := &Engine{Detect: detect.DefaultConfig()}
		st := NewState()
		res := mustResume(t, eng, st, d)
		want := int(horizon / epoch.PeriodDays)
		if got := st.CompletedEpochs(); got != want {
			t.Errorf("horizon %v: CompletedEpochs = %d, want %d", horizon, got, want)
		}
		for id, scores := range res.Table {
			if len(scores) != want {
				t.Errorf("horizon %v: product %s has %d periods, want %d", horizon, id, len(scores), want)
			}
		}
		cold := &Engine{Detect: detect.DefaultConfig()}
		requireEqualResults(t, "exact-multiple horizon", res, mustEvaluate(t, cold, d))
	}
}

// A single-epoch history (horizon == PeriodDays) is the degenerate case of
// the checkpoint scheme: exactly one checkpointed epoch, and every insert
// invalidates it.
func TestBoundarySingleEpochHistory(t *testing.T) {
	d := testDataset(t, 41, 2, epoch.PeriodDays)
	eng := &Engine{Detect: detect.DefaultConfig()}
	st := NewState()
	mustResume(t, eng, st, d)
	if got := st.CompletedEpochs(); got != 1 {
		t.Fatalf("CompletedEpochs = %d, want 1", got)
	}
	addRating(t, d, st, d.Products[1].ID, dataset.Rating{Day: 15, Value: 4.5, Rater: "mid"})
	if got := st.CompletedEpochs(); got != 0 {
		t.Errorf("mid-epoch insert: CompletedEpochs = %d, want 0", got)
	}
	cold := &Engine{Detect: detect.DefaultConfig()}
	requireEqualResults(t, "single epoch", mustResume(t, eng, st, d), mustEvaluate(t, cold, d))
}

// A rating submitted at exactly day 30.0 lands in epoch 1 ([30, 60)), so
// the epoch-0 checkpoint must survive the invalidation while every later
// checkpoint drops — and the resumed result must still match a cold run.
func TestBoundarySubmitOnCheckpoint(t *testing.T) {
	const horizon = 120.0
	d := testDataset(t, 51, 3, horizon)
	eng := &Engine{Detect: detect.DefaultConfig()}
	st := NewState()
	mustResume(t, eng, st, d)
	n := epoch.Periods(horizon)
	if got := st.CompletedEpochs(); got != n {
		t.Fatalf("CompletedEpochs = %d, want %d", got, n)
	}

	addRating(t, d, st, d.Products[0].ID,
		dataset.Rating{Day: epoch.PeriodDays, Value: 1, Rater: "boundary"})
	if got := st.CompletedEpochs(); got != 1 {
		t.Errorf("submit at day 30.0: CompletedEpochs = %d, want 1 (epoch 0 checkpoint must survive)", got)
	}
	cold := &Engine{Detect: detect.DefaultConfig()}
	requireEqualResults(t, "submit on checkpoint", mustResume(t, eng, st, d), mustEvaluate(t, cold, d))

	// The last representable day before the boundary belongs to epoch 0 and
	// must invalidate it too.
	addRating(t, d, st, d.Products[1].ID,
		dataset.Rating{Day: 29.999999, Value: 2, Rater: "justbefore"})
	if got := st.CompletedEpochs(); got != 0 {
		t.Errorf("submit just before day 30: CompletedEpochs = %d, want 0", got)
	}
	requireEqualResults(t, "submit before checkpoint", mustResume(t, eng, st, d), mustEvaluate(t, cold, d))
}
