package engine

import (
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/trust"
)

// The memo plane.
//
// Procedure 1 freezes rater trust within each 30-day epoch, so a product's
// per-epoch detector report — and therefore its per-rater (observed,
// suspicious) counts — is a pure function of exactly two inputs:
//
//	(series prefix [0, hi), epoch-start trust restricted to the prefix's raters)
//
// The restriction is what makes the key cheap and product-local: the only
// trust consumer inside detect.AnalyzeWith is the MC segment test, which
// averages trust over raters appearing in the analyzed series, so trust
// churn on raters a product never saw cannot change one bit of its report.
// The memo plane caches those pure-function results per (product, epoch)
// and replays them on later Resumes, keyed by
//
//   - a series fingerprint derived from the product's monotone content
//     Version (maintained incrementally by internal/store on every applied
//     submit — no rehashing) plus the prefix length, and
//   - a rater-scoped trust fingerprint: an FNV-1a hash over the prefix's
//     sorted rater IDs and their epoch-start trust records.
//
// A hit is never served on fingerprint equality alone: the cached records
// are compared bit-for-bit against the live manager first (the cache
// verifies, it never trusts the hash blindly), so a 64-bit collision can
// cost a miss but never a wrong answer. Bit-exactness of a hit is then by
// construction — the hit replays the exact cached fold (and, for the final
// pass, a deep clone of the exact cached report and scores).

// FNV-1a 64-bit parameters, inlined so the fingerprint hot paths stay
// dependency- and allocation-free.
const (
	memoFNVOffset uint64 = 14695981039346656037
	memoFNVPrime  uint64 = 1099511628211
)

// memoFPMask post-masks trust fingerprints before they are compared.
// Production value is all-ones (full 64-bit compare); tests shrink it to
// force collisions and prove the verify step keeps colliding entries from
// ever being served (see TestFingerprintCollisionNeverServed).
var memoFPMask = ^uint64(0)

// raterFold is one rater's in-epoch fold contribution in canonical
// (sorted-by-rater) form: n ratings observed in the epoch, f of them marked
// suspicious.
type raterFold struct {
	rater string
	n, f  int
}

// memoEntry caches one product's outcome for one epoch: the per-rater fold
// counts the epoch's analysis produced, keyed by the series prefix and the
// rater-scoped trust snapshot it was computed under.
type memoEntry struct {
	valid     bool
	prefixLen int            // ratings in [0, hi) when recorded
	seriesFP  uint64         // seriesFingerprint(version, prefixLen) at record time
	trustFP   uint64         // trustFingerprint over raters at record time
	raters    []string       // sorted unique raters of the prefix
	recs      []trust.Record // their records at the epoch start, aligned with raters
	counts    []raterFold    // the cached fold result (canonical order)
}

// finalEntry caches one product's uncheckpointed final pass (stages 3+4):
// the full-series detector report and the Eq. 7 scores, keyed like a
// memoEntry but against the *final* trust.
type finalEntry struct {
	valid    bool
	seriesFP uint64
	trustFP  uint64
	raters   []string
	recs     []trust.Record
	report   detect.Report // deep clone; never aliased by served results
	scores   []float64
}

// productMemo is one product's cache: the series version the entries were
// recorded against, one entry per epoch, and the final-pass entry.
type productMemo struct {
	version uint64
	epochs  []memoEntry
	final   finalEntry
}

// memoFor returns (creating if needed) the product's memo, synchronizing it
// with the product's current series version. A version change means the
// series content changed, so every cached entry keyed on the old version is
// dropped wholesale — that is the O(changed product) invalidation path. A
// product with Version 0 is unversioned (its mutator does not maintain the
// counter), so it opts out of memoization entirely: returns nil.
func (st *EvalState) memoFor(p *dataset.Product) *productMemo {
	if p.Version == 0 {
		return nil
	}
	m := st.memo[p.ID]
	if m == nil {
		m = &productMemo{version: p.Version, epochs: make([]memoEntry, len(st.folds))}
		st.memo[p.ID] = m
		return m
	}
	if m.version != p.Version {
		dropped := uint64(0)
		for i := range m.epochs {
			if m.epochs[i].valid {
				m.epochs[i] = memoEntry{}
				dropped++
			}
		}
		if m.final.valid {
			m.final = finalEntry{}
			dropped++
		}
		memoInvalidated.Add(dropped)
		m.version = p.Version
	}
	return m
}

// setEpoch commits a fresh entry for epoch ep (no-op out of range, which
// cannot happen for states reset against the same horizon).
func (m *productMemo) setEpoch(ep int, ent memoEntry) {
	if ep < len(m.epochs) {
		m.epochs[ep] = ent
	}
}

// seriesFingerprint keys a series prefix: the product's monotone content
// version mixed with the prefix length. Equal versions promise a
// bit-identical full series (the dataset.Product contract), so version +
// prefix length identifies the prefix exactly; no rating bytes are hashed.
//
//lint:hotpath
func seriesFingerprint(version uint64, prefixLen int) uint64 {
	h := memoFNVOffset
	v := version
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= memoFNVPrime
		v >>= 8
	}
	v = uint64(prefixLen)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= memoFNVPrime
		v >>= 8
	}
	return h
}

// trustFingerprint hashes the trust records of exactly the given raters
// (callers pass the sorted unique raters of one product's prefix, making
// the fingerprint rater-scoped: churn on other raters cannot move it).
//
//lint:hotpath
func trustFingerprint(mgr *trust.Manager, raters []string) uint64 {
	h := memoFNVOffset
	for _, r := range raters {
		for i := 0; i < len(r); i++ {
			h ^= uint64(r[i])
			h *= memoFNVPrime
		}
		rec := mgr.Record(r)
		h ^= math.Float64bits(rec.S)
		h *= memoFNVPrime
		h ^= math.Float64bits(rec.F)
		h *= memoFNVPrime
	}
	return h
}

// trustRecordsMatch is the exact (collision-proof) verification behind
// every fingerprint hit: each cached record must equal the live manager's
// bit for bit.
//
//lint:hotpath
func trustRecordsMatch(mgr *trust.Manager, raters []string, recs []trust.Record) bool {
	if len(raters) != len(recs) {
		return false
	}
	for i, r := range raters {
		rec := mgr.Record(r)
		if math.Float64bits(rec.S) != math.Float64bits(recs[i].S) ||
			math.Float64bits(rec.F) != math.Float64bits(recs[i].F) {
			return false
		}
	}
	return true
}

// epochHit reports whether the cached entry for epoch ep can be replayed
// for a prefix of prefixLen ratings under mgr, returning the cached fold.
// trustSame short-circuits the trust check: the caller proved the whole
// epoch-start trust snapshot is unchanged since the entry was recorded
// (see EvalState.trustSame), so the rater-scoped restriction is too.
func (m *productMemo) epochHit(ep, prefixLen int, mgr *trust.Manager, trustSame bool) ([]raterFold, bool) {
	if ep >= len(m.epochs) {
		return nil, false
	}
	ent := &m.epochs[ep]
	if !ent.valid || ent.prefixLen != prefixLen ||
		ent.seriesFP != seriesFingerprint(m.version, prefixLen) {
		return nil, false
	}
	if !trustSame {
		if ent.trustFP&memoFPMask != trustFingerprint(mgr, ent.raters)&memoFPMask {
			return nil, false
		}
		if !trustRecordsMatch(mgr, ent.raters, ent.recs) {
			return nil, false // fingerprint collision: verify caught it
		}
	}
	return ent.counts, true
}

// finalHit is epochHit for the final pass: on a hit it returns fresh deep
// copies of the cached suspicious marks and scores (served results must
// never alias cache memory — callers own what Resume returns).
func (m *productMemo) finalHit(seriesLen int, mgr *trust.Manager, trustSame bool) ([]bool, []float64, bool) {
	ent := &m.final
	if !ent.valid || ent.seriesFP != seriesFingerprint(m.version, seriesLen) {
		return nil, nil, false
	}
	if !trustSame {
		if ent.trustFP&memoFPMask != trustFingerprint(mgr, ent.raters)&memoFPMask {
			return nil, nil, false
		}
		if !trustRecordsMatch(mgr, ent.raters, ent.recs) {
			return nil, nil, false
		}
	}
	rep := ent.report.Clone()
	return rep.Suspicious, append([]float64(nil), ent.scores...), true
}

// newEpochEntry snapshots one product's epoch analysis for the memo:
// the prefix's sorted raters, their current records, and the fold counts.
func newEpochEntry(version uint64, seen dataset.Series, mgr *trust.Manager, counts []raterFold) memoEntry {
	raters := uniqueRaters(seen)
	return memoEntry{
		valid:     true,
		prefixLen: len(seen),
		seriesFP:  seriesFingerprint(version, len(seen)),
		trustFP:   trustFingerprint(mgr, raters),
		raters:    raters,
		recs:      snapshotRecords(mgr, raters),
		counts:    counts,
	}
}

// newFinalEntry snapshots one product's final pass: the full-series report
// (deep-cloned — the live one is handed to the caller) and scores under the
// final trust.
func newFinalEntry(version uint64, s dataset.Series, mgr *trust.Manager, rep detect.Report, scores []float64) finalEntry {
	raters := uniqueRaters(s)
	return finalEntry{
		valid:    true,
		seriesFP: seriesFingerprint(version, len(s)),
		trustFP:  trustFingerprint(mgr, raters),
		raters:   raters,
		recs:     snapshotRecords(mgr, raters),
		report:   rep.Clone(),
		scores:   append([]float64(nil), scores...),
	}
}

// uniqueRaters returns the sorted distinct rater IDs of the series
// (sort-then-compact: no map iteration, deterministic by construction).
func uniqueRaters(s dataset.Series) []string {
	if len(s) == 0 {
		return nil
	}
	out := make([]string, len(s))
	for i, r := range s {
		out[i] = r.Rater
	}
	sort.Strings(out)
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[i-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// snapshotRecords copies the raters' current trust records, aligned with
// the (sorted) rater slice.
func snapshotRecords(mgr *trust.Manager, raters []string) []trust.Record {
	if len(raters) == 0 {
		return nil
	}
	recs := make([]trust.Record, len(raters))
	for i, r := range raters {
		recs[i] = mgr.Record(r)
	}
	return recs
}

// sortedFold converts a rater→counts map into the canonical sorted slice
// form used by memo entries and fold comparison.
func sortedFold(counts map[string]raterCounts) []raterFold {
	out := make([]raterFold, 0, len(counts))
	for rater := range counts {
		out = append(out, raterFold{rater: rater})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].rater < out[j].rater })
	for i := range out {
		c := counts[out[i].rater]
		out[i].n = c.n
		out[i].f = c.f
	}
	return out
}

// foldsEqual reports whether two canonical folds are identical. Counts are
// integers, so equality here is exact, and equal folds applied to equal
// incoming trust produce bit-identical outgoing trust — the cascade that
// keeps later epochs' caches warm.
func foldsEqual(a, b []raterFold) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
