package engine

import (
	"repro/internal/dataset"
	"repro/internal/epoch"
	"repro/internal/trust"
)

// EvalState is the engine's checkpointable state: a trust snapshot at every
// completed epoch boundary. checkpoints[e] is rater trust at the *start* of
// epoch e — i.e. after folding epochs [0, e) — so checkpoints[0] is the
// empty manager and, once an evaluation has run, the last element is the
// final trust. A state is bound to one dataset identity (product set +
// horizon); Resume resets it transparently if either changes.
//
// An EvalState is not safe for concurrent use; callers (internal/server)
// serialize Resume/Invalidate under their own lock.
//
// Beyond the checkpoints the state carries the memo plane (see memo.go):
// per-product caches of epoch folds and final-pass reports, plus the
// bookkeeping that lets a Resume prove "the trust feeding epoch e is
// unchanged since e last ran" without comparing managers:
//
//   - folds[e] is the canonical per-rater fold the last *completed* run of
//     epoch e produced (nil if e never completed). Comparing the fresh fold
//     against it detects "identical fold ⇒ outgoing trust unchanged".
//   - trustSame[e] means checkpoint e's trust content equals the incoming
//     trust of the last completed run of epoch e — i.e. every memo entry
//     recorded at epoch e is keyed against the *current* checkpoint, so
//     epoch e may skip even the rater-scoped fingerprint work. trustSame is
//     deliberately NOT truncated by Invalidate: it describes the epochs'
//     last completed runs, which invalidation does not rewrite.
//   - finalConsistent is trustSame for the uncheckpointed final pass:
//     the final entries were recorded under the current final trust.
type EvalState struct {
	horizon     float64
	products    []string
	checkpoints []*trust.Manager

	memo            map[string]*productMemo
	folds           [][]raterFold // one per epoch
	trustSame       []bool        // one per epoch boundary (len = epochs+1)
	finalConsistent bool
}

// NewState returns an empty state; the first Resume evaluates from scratch.
func NewState() *EvalState { return &EvalState{} }

// CompletedEpochs reports how many trust epochs are checkpointed (0 for a
// fresh or fully invalidated state).
func (st *EvalState) CompletedEpochs() int {
	if len(st.checkpoints) == 0 {
		return 0
	}
	return len(st.checkpoints) - 1
}

// Invalidate drops every checkpoint at or after the epoch containing day:
// a rating added (or removed) on that day changes the epoch's per-rater
// counts, and through the trust fold every later epoch. Earlier epochs are
// untouched — their folds depend only on ratings strictly before the
// epoch boundary. Invalidating an already-invalid state is a no-op.
func (st *EvalState) Invalidate(day float64) {
	if len(st.checkpoints) == 0 {
		return
	}
	e := epoch.PeriodOf(day, st.horizon)
	if e+1 < len(st.checkpoints) {
		// Drop references so the trust snapshots can be collected.
		for i := e + 1; i < len(st.checkpoints); i++ {
			st.checkpoints[i] = nil
		}
		st.checkpoints = st.checkpoints[:e+1]
	}
}

// Matches reports whether the state's checkpoints were computed for this
// dataset identity (bit-identical horizon, same product list in the same
// order). The identity is content-based, not pointer-based: a combined
// dataset rebuilt from per-shard partitions on every coordinator cut
// (internal/store) still matches, so Resume keeps reusing checkpoints
// across rebuilds.
func (st *EvalState) Matches(d *dataset.Dataset) bool {
	return st.matches(d)
}

// matches reports whether the state's checkpoints were computed for this
// dataset identity.
func (st *EvalState) matches(d *dataset.Dataset) bool {
	//lint:ignore floateq dataset-identity check: checkpoints are only valid for the bit-identical horizon, so exact comparison is the contract
	if len(st.checkpoints) == 0 || st.horizon != d.HorizonDays || len(st.products) != len(d.Products) {
		return false
	}
	for i, p := range d.Products {
		if st.products[i] != p.ID {
			return false
		}
	}
	return true
}

// reset rebinds the state to the dataset and discards all checkpoints and
// memo state.
func (st *EvalState) reset(d *dataset.Dataset) {
	st.horizon = d.HorizonDays
	st.products = d.ProductIDs()
	st.checkpoints = []*trust.Manager{trust.NewManager()}
	n := epoch.Periods(d.HorizonDays)
	st.memo = make(map[string]*productMemo, len(d.Products))
	st.folds = make([][]raterFold, n)
	st.trustSame = make([]bool, n+1)
	// Epoch 0's incoming trust is always the empty manager, so checkpoint 0
	// trivially equals whatever epoch 0 last ran against.
	st.trustSame[0] = true
	st.finalConsistent = false
}
