package engine

import (
	"testing"

	"repro/internal/trust"
)

// Runtime counterparts of the //lint:hotpath annotations on the memo
// fingerprint functions: the static gate proves they cannot allocate,
// AllocsPerRun proves they did not. They run on every cache probe of every
// epoch, so an allocation here would tax exactly the path the memo plane
// exists to make cheap.

func memoBenchFixture() (*trust.Manager, []string, []trust.Record) {
	mgr := trust.NewManager()
	raters := []string{"alice", "bob", "carol", "dave", "erin", "frank"}
	for i, r := range raters {
		mgr.Observe(r, 10+i, i)
	}
	return mgr, raters, snapshotRecords(mgr, raters)
}

func TestFingerprintsAllocFree(t *testing.T) {
	mgr, raters, recs := memoBenchFixture()
	var sink uint64
	if allocs := testing.AllocsPerRun(100, func() {
		sink += seriesFingerprint(42, 1000)
	}); allocs != 0 {
		t.Errorf("seriesFingerprint: %v allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		sink += trustFingerprint(mgr, raters)
	}); allocs != 0 {
		t.Errorf("trustFingerprint: %v allocs/op, want 0", allocs)
	}
	ok := true
	if allocs := testing.AllocsPerRun(100, func() {
		ok = ok && trustRecordsMatch(mgr, raters, recs)
	}); allocs != 0 {
		t.Errorf("trustRecordsMatch: %v allocs/op, want 0", allocs)
	}
	if !ok {
		t.Error("trustRecordsMatch rejected its own snapshot")
	}
	_ = sink
}

func BenchmarkTrustFingerprint(b *testing.B) {
	mgr, raters, _ := memoBenchFixture()
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += trustFingerprint(mgr, raters)
	}
	_ = sink
}
