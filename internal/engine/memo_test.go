package engine

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/epoch"
	"repro/internal/stats"
	"repro/internal/trust"
)

// versionedTestDataset is testDataset with every product opted into the
// memo plane (Version 1, the way internal/store births its products).
func versionedTestDataset(t testing.TB, seed uint64, products int, horizon float64) *dataset.Dataset {
	t.Helper()
	d := testDataset(t, seed, products, horizon)
	for i := range d.Products {
		d.Products[i].Version = 1
	}
	return d
}

// touch applies one rating to a product the way a version-maintaining
// owner (internal/store) would: copy-on-write insert plus a version bump.
func touch(d *dataset.Dataset, st *EvalState, product string, r dataset.Rating) error {
	p, err := d.Product(product)
	if err != nil {
		return err
	}
	p.Ratings = p.Ratings.Insert(r)
	p.Version++
	st.Invalidate(r.Day)
	return nil
}

// disjointDataset builds a handcrafted dataset whose products share no
// raters and have ratings in every epoch — the shape where memo counting
// is exactly predictable.
func disjointDataset(products, perEpoch int, horizon float64) *dataset.Dataset {
	n := epoch.Periods(horizon)
	d := &dataset.Dataset{HorizonDays: horizon}
	for p := 0; p < products; p++ {
		id := fmt.Sprintf("p%d", p)
		var s dataset.Series
		for e := 0; e < n; e++ {
			for j := 0; j < perEpoch; j++ {
				s = append(s, dataset.Rating{
					Day:   float64(e)*30 + 1 + float64(j)*28/float64(perEpoch),
					Value: 3 + 0.5*float64(j%3),
					Rater: fmt.Sprintf("%s-e%d-r%d", id, e, j),
				})
			}
		}
		s.Sort()
		d.Products = append(d.Products, dataset.Product{ID: id, Ratings: s, Version: 1})
	}
	return d
}

// TestMemoMatchesUnmemoizedProperty is the tentpole equivalence property:
// a memoized incremental engine fed an out-of-order submit schedule stays
// bit-identical to both a memo-off incremental engine and a memo-off cold
// evaluation at every step.
func TestMemoMatchesUnmemoizedProperty(t *testing.T) {
	const horizon = 150.0
	for _, seed := range []uint64{7, 19} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := stats.NewRNG(seed)
			base := testDataset(t, seed, 3, horizon)
			live := &dataset.Dataset{HorizonDays: horizon}
			type pending struct {
				product string
				r       dataset.Rating
			}
			var backlog []pending
			for _, p := range base.Products {
				var keep dataset.Series
				for _, r := range p.Ratings {
					if rng.Float64() < 0.5 {
						keep = append(keep, r)
					} else {
						backlog = append(backlog, pending{p.ID, r})
					}
				}
				live.Products = append(live.Products,
					dataset.Product{ID: p.ID, Ratings: keep.Clone(), Version: 1})
			}
			rng.Shuffle(len(backlog), func(i, j int) { backlog[i], backlog[j] = backlog[j], backlog[i] })

			memoOn := &Engine{Detect: detect.DefaultConfig()}
			memoOff := &Engine{Detect: detect.DefaultConfig(), DisableMemo: true}
			cold := &Engine{Detect: detect.DefaultConfig(), DisableMemo: true}
			stOn, stOff := NewState(), NewState()
			requireEqualResults(t, "initial",
				mustResume(t, memoOn, stOn, live), mustResume(t, memoOff, stOff, live))

			for batch := 0; len(backlog) > 0; batch++ {
				n := 1 + rng.IntN(8)
				if n > len(backlog) {
					n = len(backlog)
				}
				for _, ins := range backlog[:n] {
					if err := touch(live, stOn, ins.product, ins.r); err != nil {
						t.Fatal(err)
					}
					stOff.Invalidate(ins.r.Day)
				}
				backlog = backlog[n:]
				resOn := mustResume(t, memoOn, stOn, live)
				resOff := mustResume(t, memoOff, stOff, live)
				requireEqualResults(t, fmt.Sprintf("%d ratings left", len(backlog)), resOn, resOff)
				if batch%5 == 0 || len(backlog) == 0 {
					requireEqualResults(t, fmt.Sprintf("cold, %d ratings left", len(backlog)),
						resOn, mustEvaluate(t, cold, live))
				}
			}
		})
	}
}

// TestMemoCancelledMidEpochEquivalence pins the memo plane's cancellation
// contract: cancelling a resume that mixes cache hits with fresh analysis
// commits no partial memo state — the follow-up resume is bit-exact with a
// memo-off evaluation of the same data.
func TestMemoCancelledMidEpochEquivalence(t *testing.T) {
	d := versionedTestDataset(t, 11, 12, 360)
	memoOff := &Engine{Detect: detect.DefaultConfig(), Workers: 1, DisableMemo: true}
	eng := &Engine{Detect: detect.DefaultConfig(), Workers: 1}

	// Cold starts: the memo records entries while being cancelled at a
	// spread of points.
	want := mustEvaluate(t, memoOff, d)
	for _, budget := range []int{1, 3, 7, 20, 50, 200} {
		st := NewState()
		res, err := eng.Resume(&countingCtx{budget: budget}, st, d)
		if err == nil {
			requireEqualResults(t, "uncancelled cold run", res, want)
			continue
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("budget %d: err = %v, want context.Canceled", budget, err)
		}
		if res != nil {
			t.Fatalf("budget %d: cancelled Resume returned a result", budget)
		}
		requireEqualResults(t, "resume after cold cancel", mustResume(t, eng, st, d), want)
	}

	// Warm starts: a fully warmed memo, one product touched mid-history,
	// then cancellation during the hit/miss replay of the dirty suffix.
	for _, budget := range []int{1, 2, 4, 9, 30, 400} {
		st := NewState()
		mustResume(t, eng, st, d)
		r := dataset.Rating{Day: 150 + float64(budget%100), Value: 1,
			Rater: fmt.Sprintf("late-%d", budget)}
		if err := touch(d, st, d.Products[0].ID, r); err != nil {
			t.Fatal(err)
		}
		want = mustEvaluate(t, memoOff, d)
		res, err := eng.Resume(&countingCtx{budget: budget}, st, d)
		if err == nil {
			requireEqualResults(t, "uncancelled warm run", res, want)
			continue
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("warm budget %d: err = %v, want context.Canceled", budget, err)
		}
		requireEqualResults(t, "resume after warm cancel", mustResume(t, eng, st, d), want)
	}
}

// TestMemoCountersSingleProductTouch is the deterministic counting
// contract behind the /inspect counters: on a warmed state, submitting one
// rating to one product must miss exactly that product (once in the dirty
// epoch, once in the final pass), replay every other product from cache,
// and drop exactly the touched product's cached entries.
func TestMemoCountersSingleProductTouch(t *testing.T) {
	d := disjointDataset(4, 8, 90) // 3 epochs, 4 products, disjoint raters
	eng := &Engine{Detect: detect.DefaultConfig(), Workers: 1}
	st := NewState()
	mustResume(t, eng, st, d)

	before := Stats()
	p := &d.Products[2]
	p.Ratings = p.Ratings.Insert(dataset.Rating{Day: 75, Value: 1, Rater: "p2-late"})
	p.Version++
	st.Invalidate(75)
	mustResume(t, eng, st, d)
	after := Stats()

	if got := after.MemoMisses - before.MemoMisses; got != 2 {
		t.Errorf("misses = %d, want 2 (touched product in dirty epoch + final pass)", got)
	}
	if got := after.MemoHits - before.MemoHits; got != 6 {
		t.Errorf("hits = %d, want 6 (3 untouched products × {dirty epoch, final pass})", got)
	}
	if got := after.MemoInvalidated - before.MemoInvalidated; got != 4 {
		t.Errorf("invalidations = %d, want 4 (touched product's 3 epoch entries + final)", got)
	}
	if got := after.Analyzed - before.Analyzed; got != 2 {
		t.Errorf("analyses = %d, want 2 — a single touch must cost O(changed product)", got)
	}
}

// TestMemoPureReplayAfterInvalidate: invalidating mid-history without any
// data change must resume entirely from cache — zero detector analyses —
// and still return the bit-exact result.
func TestMemoPureReplayAfterInvalidate(t *testing.T) {
	d := versionedTestDataset(t, 23, 6, 360)
	eng := &Engine{Detect: detect.DefaultConfig(), Workers: 1}
	st := NewState()
	want := mustResume(t, eng, st, d)

	st.Invalidate(180) // drop half the checkpoints, change nothing
	before := Stats()
	got := mustResume(t, eng, st, d)
	after := Stats()
	requireEqualResults(t, "pure replay", got, want)
	if n := after.Analyzed - before.Analyzed; n != 0 {
		t.Errorf("pure replay ran %d detector analyses, want 0", n)
	}
	if after.MemoMisses != before.MemoMisses {
		t.Errorf("pure replay missed %d times", after.MemoMisses-before.MemoMisses)
	}
}

// TestFingerprintCollisionNeverServed runs the equivalence property with
// the trust fingerprint masked down to zero bits — every lookup collides —
// and requires bit-identical output anyway: the exact record verification
// must reject every stale entry, so a hash collision can cost a miss but
// never an answer.
func TestFingerprintCollisionNeverServed(t *testing.T) {
	old := memoFPMask
	memoFPMask = 0
	defer func() { memoFPMask = old }()

	const horizon = 150.0
	rng := stats.NewRNG(41)
	d := versionedTestDataset(t, 41, 3, horizon)
	memoOn := &Engine{Detect: detect.DefaultConfig()}
	memoOff := &Engine{Detect: detect.DefaultConfig(), DisableMemo: true}
	st := NewState()
	requireEqualResults(t, "initial", mustResume(t, memoOn, st, d), mustEvaluate(t, memoOff, d))
	for i := 0; i < 12; i++ {
		p := d.Products[rng.IntN(len(d.Products))].ID
		r := dataset.Rating{
			Day:   rng.Float64() * horizon,
			Value: dataset.QuantizeHalfStar(rng.Float64() * 5),
			Rater: fmt.Sprintf("fuzz-%d", i),
		}
		if err := touch(d, st, p, r); err != nil {
			t.Fatal(err)
		}
		requireEqualResults(t, fmt.Sprintf("after touch %d", i),
			mustResume(t, memoOn, st, d), mustEvaluate(t, memoOff, d))
	}
}

// TestEpochHitRejectsStaleTrust unit-tests the verify step directly: an
// entry recorded under one trust state, probed under another whose
// fingerprint is forced to collide, must never be served.
func TestEpochHitRejectsStaleTrust(t *testing.T) {
	old := memoFPMask
	memoFPMask = 0
	defer func() { memoFPMask = old }()

	seen := dataset.Series{{Day: 1, Value: 2, Rater: "a"}}
	counts := []raterFold{{rater: "a", n: 1}}
	mgr1 := trust.NewManager()
	m := &productMemo{version: 1, epochs: make([]memoEntry, 1)}
	m.setEpoch(0, newEpochEntry(1, seen, mgr1, counts))

	mgr2 := trust.NewManager()
	mgr2.Observe("a", 5, 3)
	if _, ok := m.epochHit(0, 1, mgr2, false); ok {
		t.Fatal("colliding stale-trust entry was served")
	}
	if got, ok := m.epochHit(0, 1, mgr1, false); !ok || len(got) != 1 || got[0] != counts[0] {
		t.Fatalf("matching entry not served: %v %v", got, ok)
	}
	if _, ok := m.epochHit(0, 2, mgr1, false); ok {
		t.Fatal("entry served for a different prefix length")
	}
}

// TestMemoOffStateInterleaving: a state may be driven alternately by
// memo-on and memo-off engines (same Detect config); the memo-off runs
// must not poison the cache's sameness bookkeeping.
func TestMemoOffStateInterleaving(t *testing.T) {
	const horizon = 150.0
	d := versionedTestDataset(t, 29, 3, horizon)
	on := &Engine{Detect: detect.DefaultConfig(), Workers: 1}
	off := &Engine{Detect: detect.DefaultConfig(), Workers: 1, DisableMemo: true}
	ref := &Engine{Detect: detect.DefaultConfig(), DisableMemo: true}
	st := NewState()
	mustResume(t, on, st, d)
	for i, eng := range []*Engine{off, on, off, on} {
		r := dataset.Rating{Day: 40 + 25*float64(i), Value: 1, Rater: fmt.Sprintf("x%d", i)}
		if err := touch(d, st, d.Products[i%len(d.Products)].ID, r); err != nil {
			t.Fatal(err)
		}
		requireEqualResults(t, fmt.Sprintf("interleave %d", i),
			mustResume(t, eng, st, d), mustEvaluate(t, ref, d))
	}
}
