package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/detect"
)

// countingCtx is a context whose Err flips to context.Canceled after a
// fixed number of Err checks — a deterministic stand-in for "the deadline
// expired mid-evaluation" that does not depend on wall-clock timing. The
// engine polls Err before every unit of work, so budget N cancels exactly
// at the N-th poll regardless of scheduler interleaving (with Workers=1).
type countingCtx struct {
	budget int
}

func (c *countingCtx) Err() error {
	if c.budget <= 0 {
		return context.Canceled
	}
	c.budget--
	return nil
}

func (c *countingCtx) Done() <-chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}

func (c *countingCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countingCtx) Value(any) any               { return nil }

// TestResumeCancelledMidEvaluate pins the cancellation contract: a Resume
// cancelled partway through returns ctx.Err(), leaves the EvalState
// holding only whole-epoch checkpoints, and a follow-up Resume with a live
// context completes the evaluation bit-exactly vs an uncancelled cold run.
func TestResumeCancelledMidEvaluate(t *testing.T) {
	d := testDataset(t, 11, 12, 360)
	eng := &Engine{Detect: detect.DefaultConfig(), Workers: 1}
	want := mustEvaluate(t, eng, d)

	// Cancel at a spread of points: budget 1 dies in the first epoch,
	// larger budgets die in later epochs or the final aggregation pass.
	for _, budget := range []int{1, 3, 7, 20, 50, 200} {
		st := NewState()
		res, err := eng.Resume(&countingCtx{budget: budget}, st, d)
		if err == nil {
			// Budget outlasted the evaluation; nothing was cancelled.
			requireEqualResults(t, "uncancelled run", res, want)
			continue
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("budget %d: err = %v, want context.Canceled", budget, err)
		}
		if res != nil {
			t.Fatalf("budget %d: cancelled Resume returned a result", budget)
		}
		got := mustResume(t, eng, st, d)
		requireEqualResults(t, "resume after cancel", got, want)
	}
}

// TestCancelStopsWorkerPool pins the instrumentation contract behind the
// "a cancelled request stops engine work" acceptance criterion: once the
// context is cancelled, remaining products are skipped (counted in
// Stats().Skipped), not analyzed.
func TestCancelStopsWorkerPool(t *testing.T) {
	d := testDataset(t, 12, 16, 90)
	for _, workers := range []int{1, 4} {
		eng := &Engine{Detect: detect.DefaultConfig(), Workers: workers}
		before := Stats()
		_, err := eng.Resume(&countingCtx{budget: 2}, NewState(), d)
		after := Stats()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		skipped := after.Skipped - before.Skipped
		analyzed := after.Analyzed - before.Analyzed
		if skipped == 0 {
			t.Errorf("workers=%d: no products skipped after cancel (analyzed %d)", workers, analyzed)
		}
		if analyzed >= uint64(len(d.Products))*3 {
			t.Errorf("workers=%d: %d analyses ran despite cancellation in epoch 1",
				workers, analyzed)
		}
	}
}

// TestCancelledEpochNeverCheckpointed: cancelling inside epoch k must not
// append a checkpoint for k — the state's epoch count only grows by whole
// completed epochs, so trust is never folded from a partial product scan.
func TestCancelledEpochNeverCheckpointed(t *testing.T) {
	d := testDataset(t, 13, 8, 360)
	eng := &Engine{Detect: detect.DefaultConfig(), Workers: 1}
	st := NewState()
	// Budget 2 passes the entry check and dies on the first product of the
	// first epoch: the state ends up initialized (the epoch-0 snapshot of
	// pristine trust) but with zero completed epochs.
	if _, err := eng.Resume(&countingCtx{budget: 2}, st, d); err == nil {
		t.Fatal("expected cancellation")
	}
	if got := st.CompletedEpochs(); got != 0 {
		t.Fatalf("cancelled first epoch completed %d epochs, want 0", got)
	}
	requireEqualResults(t, "after first-epoch cancel", mustResume(t, eng, st, d), mustEvaluate(t, eng, d))
}
