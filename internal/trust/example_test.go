package trust_test

import (
	"fmt"

	"repro/internal/trust"
)

func ExampleManager() {
	mgr := trust.NewManager()

	// Epoch 1: alice's 3 ratings were all clean; bob had 2 of 2 marked
	// suspicious.
	mgr.Observe("alice", 3, 0)
	mgr.Observe("bob", 2, 2)

	// Epoch 2: alice stays clean; bob behaves this time.
	mgr.Observe("alice", 2, 0)
	mgr.Observe("bob", 2, 0)

	fmt.Printf("alice: %.2f\n", mgr.Trust("alice"))
	fmt.Printf("bob:   %.2f\n", mgr.Trust("bob"))
	fmt.Printf("carol: %.2f (no history)\n", mgr.Trust("carol"))
	// Output:
	// alice: 0.86
	// bob:   0.50
	// carol: 0.50 (no history)
}
