package trust

import (
	"testing"
	"testing/quick"
)

func TestBeta(t *testing.T) {
	tests := []struct {
		s, f, want float64
	}{
		{0, 0, 0.5},
		{8, 0, 0.9},
		{0, 8, 0.1},
		{3, 3, 0.5},
	}
	for _, tt := range tests {
		if got := Beta(tt.s, tt.f); got != tt.want {
			t.Errorf("Beta(%v,%v) = %v, want %v", tt.s, tt.f, got, tt.want)
		}
	}
}

func TestManagerInitialTrust(t *testing.T) {
	m := NewManager()
	if got := m.Trust("unknown"); got != InitialTrust {
		t.Errorf("Trust(unknown) = %v, want %v", got, InitialTrust)
	}
}

func TestManagerObserve(t *testing.T) {
	m := NewManager()
	m.Observe("alice", 10, 0)
	if got := m.Trust("alice"); got != Beta(10, 0) {
		t.Errorf("clean rater trust = %v, want %v", got, Beta(10, 0))
	}
	m.Observe("bob", 10, 10)
	if got := m.Trust("bob"); got != Beta(0, 10) {
		t.Errorf("dirty rater trust = %v, want %v", got, Beta(0, 10))
	}
	// Accumulation across epochs.
	m.Observe("alice", 5, 2)
	want := Beta(13, 2)
	if got := m.Trust("alice"); got != want {
		t.Errorf("accumulated trust = %v, want %v", got, want)
	}
	if m.Len() != 2 {
		t.Errorf("Len = %d, want 2", m.Len())
	}
}

func TestManagerObserveClamping(t *testing.T) {
	m := NewManager()
	m.Observe("x", 3, 7) // f > n: clamp f to n
	rec := m.Record("x")
	if rec.S != 0 || rec.F != 3 {
		t.Errorf("record = %+v, want S=0 F=3", rec)
	}
	m.Observe("y", -1, -2) // nonsense input ignored
	rec = m.Record("y")
	if rec.S != 0 || rec.F != 0 {
		t.Errorf("record = %+v, want zero", rec)
	}
}

func TestManagerSnapshotSorted(t *testing.T) {
	m := NewManager()
	m.Observe("zeta", 1, 0)
	m.Observe("alpha", 1, 1)
	snap := m.Snapshot()
	if len(snap) != 2 || snap[0].Rater != "alpha" || snap[1].Rater != "zeta" {
		t.Errorf("Snapshot = %v", snap)
	}
}

func TestManagerReset(t *testing.T) {
	m := NewManager()
	m.Observe("a", 5, 5)
	m.Reset()
	if m.Len() != 0 || m.Trust("a") != InitialTrust {
		t.Error("Reset did not clear records")
	}
}

func TestClone(t *testing.T) {
	m := NewManager()
	m.Observe("alice", 10, 2)
	m.Observe("bob", 4, 4)
	c := m.Clone()

	// The clone starts bit-identical.
	if c.Len() != m.Len() {
		t.Fatalf("clone Len = %d, want %d", c.Len(), m.Len())
	}
	for _, id := range []string{"alice", "bob", "stranger"} {
		if c.Record(id) != m.Record(id) {
			t.Errorf("clone Record(%q) = %+v, want %+v", id, c.Record(id), m.Record(id))
		}
		if c.Trust(id) != m.Trust(id) {
			t.Errorf("clone Trust(%q) = %v, want %v", id, c.Trust(id), m.Trust(id))
		}
	}

	// Diverging the original leaves the clone untouched, and vice versa.
	m.Observe("alice", 0, 5)
	if got, want := c.Record("alice"), (Record{S: 8, F: 2}); got != want {
		t.Errorf("clone record after original Observe = %+v, want %+v", got, want)
	}
	c.Observe("carol", 3, 0)
	if m.Len() != 2 {
		t.Errorf("original gained clone's rater: Len = %d, want 2", m.Len())
	}
	m.Reset()
	if c.Len() != 3 || c.Trust("bob") != Beta(0, 4) {
		t.Error("resetting the original clobbered the clone")
	}
}

func TestCloneEmpty(t *testing.T) {
	c := NewManager().Clone()
	if c.Len() != 0 || c.Trust("anyone") != InitialTrust {
		t.Errorf("empty clone: Len=%d Trust=%v", c.Len(), c.Trust("anyone"))
	}
	c.Observe("a", 1, 0) // must be usable, not a nil map
	if c.Len() != 1 {
		t.Error("empty clone not observable")
	}
}

func TestAverageTrust(t *testing.T) {
	m := NewManager()
	m.Observe("good", 8, 0) // 0.9
	m.Observe("bad", 8, 8)  // 0.1
	if got := m.AverageTrust([]string{"good", "bad"}); got != 0.5 {
		t.Errorf("AverageTrust = %v, want 0.5", got)
	}
	if got := m.AverageTrust(nil); got != InitialTrust {
		t.Errorf("AverageTrust(empty) = %v, want %v", got, InitialTrust)
	}
	// Unknown raters count as InitialTrust.
	if got := m.AverageTrust([]string{"good", "stranger"}); got != 0.7 {
		t.Errorf("AverageTrust(with unknown) = %v, want 0.7", got)
	}
}

// Property: trust is always in (0,1), increases with S, decreases with F.
func TestBetaBoundsAndMonotonicityProperty(t *testing.T) {
	f := func(sRaw, fRaw uint16) bool {
		s, fl := float64(sRaw), float64(fRaw)
		v := Beta(s, fl)
		if v <= 0 || v >= 1 {
			return false
		}
		return Beta(s+1, fl) > v && Beta(s, fl+1) < v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Observe order does not matter (evidence is additive).
func TestObserveCommutativityProperty(t *testing.T) {
	f := func(obs []uint8) bool {
		// Interpret pairs of bytes as (n, f) observations.
		type pair struct{ n, f int }
		var pairs []pair
		for i := 0; i+1 < len(obs); i += 2 {
			pairs = append(pairs, pair{int(obs[i]), int(obs[i+1])})
		}
		m1 := NewManager()
		for _, p := range pairs {
			m1.Observe("r", p.n, p.f)
		}
		m2 := NewManager()
		for i := len(pairs) - 1; i >= 0; i-- {
			m2.Observe("r", pairs[i].n, pairs[i].f)
		}
		return m1.Trust("r") == m2.Trust("r")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
