// Package trust implements the beta-function trust model (Jøsang & Ismail)
// and the paper's Procedure 1 trust manager: rater trust is accumulated from
// counts of suspicious (F) and non-suspicious (S) ratings at periodic trust
// epochs, with T = (S+1)/(S+F+2).
package trust

import "sort"

// InitialTrust is the trust of a rater with no history: (0+1)/(0+0+2).
const InitialTrust = 0.5

// Beta returns the beta-function trust value (s+1)/(s+f+2).
func Beta(s, f float64) float64 {
	return (s + 1) / (s + f + 2)
}

// Record is one rater's accumulated evidence.
type Record struct {
	S float64 // ratings judged non-suspicious
	F float64 // ratings judged suspicious
}

// Trust returns the record's beta trust value.
func (r Record) Trust() float64 { return Beta(r.S, r.F) }

// Manager accumulates suspiciousness evidence per rater across trust epochs
// (Procedure 1). The zero value is not usable; call NewManager.
type Manager struct {
	records map[string]Record
}

// NewManager returns an empty trust manager.
func NewManager() *Manager {
	return &Manager{records: make(map[string]Record)}
}

// Observe records that rater id provided n ratings during the epoch, of
// which f were marked suspicious (Procedure 1 lines 7–9: F += f,
// S += n − f). Calls with n < f are clamped so S never decreases below its
// prior value.
func (m *Manager) Observe(id string, n, f int) {
	if n < 0 {
		n = 0
	}
	if f < 0 {
		f = 0
	}
	if f > n {
		f = n
	}
	rec := m.records[id]
	rec.F += float64(f)
	rec.S += float64(n - f)
	m.records[id] = rec
}

// Trust returns the current trust in rater id (InitialTrust when unknown).
func (m *Manager) Trust(id string) float64 {
	rec, ok := m.records[id]
	if !ok {
		return InitialTrust
	}
	return rec.Trust()
}

// Record returns the raw evidence for rater id.
func (m *Manager) Record(id string) Record {
	return m.records[id]
}

// Len returns the number of raters with recorded evidence.
func (m *Manager) Len() int { return len(m.records) }

// Snapshot returns all (rater, trust) pairs sorted by rater ID, for
// reporting.
func (m *Manager) Snapshot() []RaterTrust {
	out := make([]RaterTrust, 0, len(m.records))
	for id, rec := range m.records {
		out = append(out, RaterTrust{Rater: id, Trust: rec.Trust()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rater < out[j].Rater })
	return out
}

// Clone returns a deep copy of the manager: the copy and the receiver can
// be observed independently without affecting each other. It backs the
// engine's per-epoch trust checkpoints, but is generally useful for
// what-if evaluation against a frozen trust state.
func (m *Manager) Clone() *Manager {
	out := &Manager{records: make(map[string]Record, len(m.records))}
	//lint:orderindependent map-to-map copy: each key is written exactly once, so the result is identical in any order
	for id, rec := range m.records {
		out.records[id] = rec
	}
	return out
}

// Reset forgets all evidence.
func (m *Manager) Reset() {
	m.records = make(map[string]Record)
}

// RaterTrust pairs a rater ID with its trust value.
type RaterTrust struct {
	Rater string
	Trust float64
}

// AverageTrust returns the mean trust over the given rater IDs, using
// InitialTrust for unknown raters. It returns InitialTrust for an empty set
// (neutral, per the paper's segment-trust comparison).
func (m *Manager) AverageTrust(ids []string) float64 {
	if len(ids) == 0 {
		return InitialTrust
	}
	var sum float64
	for _, id := range ids {
		sum += m.Trust(id)
	}
	return sum / float64(len(ids))
}
