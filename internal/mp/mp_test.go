package mp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestComputeBasic(t *testing.T) {
	baseline := Table{"tv1": {4.0, 4.1, 4.0, 4.2}}
	attacked := Table{"tv1": {4.0, 3.0, 3.5, 4.2}}
	res := Compute(baseline, attacked)
	pm := res.PerProduct["tv1"]
	want := []float64{0, 1.1, 0.5, 0}
	for i, d := range pm.Deltas {
		if math.Abs(d-want[i]) > 1e-9 {
			t.Errorf("delta[%d] = %v, want %v", i, d, want[i])
		}
	}
	if math.Abs(pm.Top2-1.6) > 1e-9 {
		t.Errorf("Top2 = %v, want 1.6", pm.Top2)
	}
	if math.Abs(res.Overall-1.6) > 1e-9 {
		t.Errorf("Overall = %v, want 1.6", res.Overall)
	}
	if got := res.Product("tv1"); math.Abs(got-1.6) > 1e-9 {
		t.Errorf("Product(tv1) = %v", got)
	}
	if got := res.Product("missing"); got != 0 {
		t.Errorf("Product(missing) = %v, want 0", got)
	}
}

func TestComputeMultipleProducts(t *testing.T) {
	baseline := Table{
		"tv1": {4, 4},
		"tv2": {4, 4},
	}
	attacked := Table{
		"tv1": {3, 4},   // Δ = 1, 0 → Top2 = 1
		"tv2": {3.5, 3}, // Δ = 0.5, 1 → Top2 = 1.5
	}
	res := Compute(baseline, attacked)
	if math.Abs(res.Overall-2.5) > 1e-9 {
		t.Errorf("Overall = %v, want 2.5", res.Overall)
	}
}

func TestComputeNaNPeriodsSkipped(t *testing.T) {
	baseline := Table{"tv1": {math.NaN(), 4.0}}
	attacked := Table{"tv1": {1.0, math.NaN()}}
	res := Compute(baseline, attacked)
	if res.Overall != 0 {
		t.Errorf("Overall = %v, want 0 (all periods NaN on one side)", res.Overall)
	}
}

func TestComputeMismatchedProducts(t *testing.T) {
	baseline := Table{"tv1": {4}, "tv9": {4}}
	attacked := Table{"tv1": {3}}
	res := Compute(baseline, attacked)
	if len(res.PerProduct) != 1 {
		t.Errorf("PerProduct = %v, want only tv1", res.PerProduct)
	}
	if math.Abs(res.Overall-1) > 1e-9 {
		t.Errorf("Overall = %v, want 1", res.Overall)
	}
}

func TestComputeMismatchedPeriodCounts(t *testing.T) {
	baseline := Table{"tv1": {4, 4, 4}}
	attacked := Table{"tv1": {3, 4}}
	res := Compute(baseline, attacked)
	if got := len(res.PerProduct["tv1"].Deltas); got != 2 {
		t.Errorf("deltas = %d, want 2 (shorter table)", got)
	}
}

func TestTop2(t *testing.T) {
	tests := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{0.7}, 0.7},
		{[]float64{0.1, 0.9, 0.5}, 1.4},
		{[]float64{1, 1, 1}, 2},
	}
	for _, tt := range tests {
		if got := top2(tt.in); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("top2(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

// Property: MP is zero when attacked == baseline, and non-negative always.
func TestComputeIdentityAndNonNegativityProperty(t *testing.T) {
	f := func(vals []float64) bool {
		clean := make([]float64, 0, len(vals))
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			clean = append(clean, v)
		}
		baseline := Table{"p": clean}
		same := Compute(baseline, Table{"p": clean})
		if same.Overall != 0 {
			return false
		}
		// Perturb one period: MP must be ≥ 0.
		if len(clean) > 0 {
			perturbed := make([]float64, len(clean))
			copy(perturbed, clean)
			perturbed[0] += 1
			res := Compute(baseline, Table{"p": perturbed})
			return res.Overall >= 0
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
