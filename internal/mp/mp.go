// Package mp implements the rating challenge's Manipulation Power metric
// (Section III): for every product and every 30-day period, Δi is the
// absolute difference between the aggregated rating with and without the
// unfair ratings; a product's MP is the sum of its two largest Δ values, and
// the overall MP is the sum over all products.
package mp

import (
	"math"
	"sort"
)

// ProductMP is the manipulation power achieved against one product.
type ProductMP struct {
	// Deltas holds Δi = |Rag_with(ti) − Rag_without(ti)| per period
	// (NaN periods in either table are skipped and recorded as 0).
	Deltas []float64
	// Top2 is Δmax1 + Δmax2 (just Δmax1 when only one period exists).
	Top2 float64
}

// Result is the manipulation power of one attack submission.
type Result struct {
	PerProduct map[string]ProductMP
	// Overall is Σ_k (Δ_max1^k + Δ_max2^k) over all products.
	Overall float64
}

// Product returns the MP gained from one product (0 when unknown).
func (r Result) Product(id string) float64 {
	return r.PerProduct[id].Top2
}

// Table is the per-product, per-period aggregate layout produced by the
// aggregation schemes (mirrors agg.Table without importing it, so mp stays
// a leaf package).
type Table = map[string][]float64

// Compute scores an attack: baseline holds the per-period aggregates of the
// clean dataset, attacked those of the dataset with unfair ratings
// injected. Products present in only one table are ignored.
func Compute(baseline, attacked Table) Result {
	res := Result{PerProduct: make(map[string]ProductMP, len(baseline))}
	for id, base := range baseline {
		atk, ok := attacked[id]
		if !ok {
			continue
		}
		n := len(base)
		if len(atk) < n {
			n = len(atk)
		}
		pm := ProductMP{Deltas: make([]float64, n)}
		for i := 0; i < n; i++ {
			if math.IsNaN(base[i]) || math.IsNaN(atk[i]) {
				continue
			}
			pm.Deltas[i] = math.Abs(atk[i] - base[i])
		}
		pm.Top2 = top2(pm.Deltas)
		res.PerProduct[id] = pm
		res.Overall += pm.Top2
	}
	return res
}

// top2 returns the sum of the two largest values (one value when len == 1,
// 0 when empty). Negative inputs never occur (absolute differences).
func top2(xs []float64) float64 {
	switch len(xs) {
	case 0:
		return 0
	case 1:
		return xs[0]
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return sorted[len(sorted)-1] + sorted[len(sorted)-2]
}
