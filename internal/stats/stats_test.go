package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{4.5}, 4.5},
		{"symmetric", []float64{1, 2, 3, 4, 5}, 3},
		{"negative", []float64{-2, 2}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.in); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := SampleVariance(xs); !almostEqual(got, 32.0/7.0, 1e-12) {
		t.Errorf("SampleVariance = %v, want %v", got, 32.0/7.0)
	}
	if got := Variance(nil); got != 0 {
		t.Errorf("Variance(nil) = %v, want 0", got)
	}
	if got := SampleVariance([]float64{1}); got != 0 {
		t.Errorf("SampleVariance(single) = %v, want 0", got)
	}
}

func TestStdDevConsistency(t *testing.T) {
	xs := []float64{1, 3, 3, 7, 11}
	if got, want := StdDev(xs), math.Sqrt(Variance(xs)); got != want {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -1, 7, 0})
	if err != nil {
		t.Fatalf("MinMax: %v", err)
	}
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = (%v,%v), want (-1,7)", lo, hi)
	}
	if _, _, err := MinMax(nil); err == nil {
		t.Error("MinMax(nil): want error, got nil")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	tests := []struct {
		q, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-0.5, 1}, {1.5, 5},
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Quantile(q=%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(nil) = %v, want 0", got)
	}
	// Quantile must not mutate its input.
	if xs[0] != 5 {
		t.Error("Quantile mutated its input")
	}
}

func TestMedianInterpolation(t *testing.T) {
	if got := Median([]float64{1, 2, 3, 4}); !almostEqual(got, 2.5, 1e-12) {
		t.Errorf("Median = %v, want 2.5", got)
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Correlation(xs, ys); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Correlation(perfect) = %v, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Correlation(xs, neg); !almostEqual(got, -1, 1e-12) {
		t.Errorf("Correlation(anti) = %v, want -1", got)
	}
	if got := Correlation(xs, []float64{3, 3, 3, 3, 3}); got != 0 {
		t.Errorf("Correlation(constant) = %v, want 0", got)
	}
	if got := Correlation(xs, ys[:3]); got != 0 {
		t.Errorf("Correlation(mismatched) = %v, want 0", got)
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(-1, 0, 5); got != 0 {
		t.Errorf("Clamp(-1) = %v", got)
	}
	if got := Clamp(7, 0, 5); got != 5 {
		t.Errorf("Clamp(7) = %v", got)
	}
	if got := Clamp(3, 0, 5); got != 3 {
		t.Errorf("Clamp(3) = %v", got)
	}
}

// Property: mean is translation-equivariant and variance is
// translation-invariant.
func TestMeanVarianceTranslationProperty(t *testing.T) {
	f := func(raw []float64, shiftRaw float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				continue
			}
			xs = append(xs, x)
		}
		if len(xs) == 0 {
			return true
		}
		shift := math.Mod(shiftRaw, 1000)
		if math.IsNaN(shift) {
			shift = 0
		}
		shifted := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + shift
		}
		tol := 1e-6 * (1 + math.Abs(shift))
		return almostEqual(Mean(shifted), Mean(xs)+shift, tol) &&
			almostEqual(Variance(shifted), Variance(xs), 1e-3)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: quantile is monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			xs = append(xs, x)
		}
		if len(xs) < 2 {
			return true
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSampleStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	want := math.Sqrt(32.0 / 7.0)
	if got := SampleStdDev(xs); !almostEqual(got, want, 1e-12) {
		t.Errorf("SampleStdDev = %v, want %v", got, want)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := NewRNG(9)
	child1 := Fork(parent)
	child2 := Fork(parent)
	// Children are distinct streams…
	same := 0
	for i := 0; i < 16; i++ {
		if child1.Uint64() == child2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("forked streams collide %d/16 draws", same)
	}
	// …and forking is deterministic given the parent state.
	p1 := NewRNG(9)
	p2 := NewRNG(9)
	if Fork(p1).Uint64() != Fork(p2).Uint64() {
		t.Error("Fork not deterministic")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Count != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	if !almostEqual(s.Q25, 2, 1e-12) || !almostEqual(s.Q75, 4, 1e-12) {
		t.Errorf("quartiles = %v, %v", s.Q25, s.Q75)
	}
	if got := Summarize(nil); got.Count != 0 {
		t.Errorf("empty Summarize = %+v", got)
	}
	if out := s.String(); len(out) == 0 || out[0] != 'n' {
		t.Errorf("String = %q", out)
	}
}

// Property: QuantileInPlace agrees with Quantile bit-for-bit (Quantile is a
// copy-then-delegate wrapper; this pins the in-place variant the detector
// scratch kernels call directly) and leaves its buffer sorted.
func TestQuantileInPlaceMatchesQuantile(t *testing.T) {
	f := func(raw []uint16, qRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		q := float64(qRaw%101) / 100
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v%200)/8 - 10
		}
		want := Quantile(xs, q)
		buf := make([]float64, len(xs))
		copy(buf, xs)
		got := QuantileInPlace(buf, q)
		if math.Float64bits(got) != math.Float64bits(want) {
			return false
		}
		for i := 1; i < len(buf); i++ {
			if buf[i] < buf[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
