package stats

import "fmt"

// Summary is a five-number-plus descriptive summary of a sample.
type Summary struct {
	Count  int
	Mean   float64
	StdDev float64
	Min    float64
	Q25    float64
	Median float64
	Q75    float64
	Max    float64
}

// Summarize computes the summary of xs (zero value for an empty sample).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	lo, hi, _ := MinMax(xs)
	return Summary{
		Count:  len(xs),
		Mean:   Mean(xs),
		StdDev: SampleStdDev(xs),
		Min:    lo,
		Q25:    Quantile(xs, 0.25),
		Median: Median(xs),
		Q75:    Quantile(xs, 0.75),
		Max:    hi,
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.2f q25=%.2f med=%.2f q75=%.2f max=%.2f",
		s.Count, s.Mean, s.StdDev, s.Min, s.Q25, s.Median, s.Q75, s.Max)
}
