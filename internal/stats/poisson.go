package stats

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Poisson is a Poisson distribution with rate Lambda (events per unit time).
type Poisson struct {
	Lambda float64
}

// NewPoisson constructs a Poisson; Lambda must be non-negative.
func NewPoisson(lambda float64) (Poisson, error) {
	if lambda < 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0) {
		return Poisson{}, fmt.Errorf("lambda %v: %w", lambda, ErrBadParameter)
	}
	return Poisson{Lambda: lambda}, nil
}

// LogPMF returns ln P(X = k).
func (p Poisson) LogPMF(k int) float64 {
	if k < 0 {
		return math.Inf(-1)
	}
	//lint:ignore floateq λ=0 is the exact point-mass-at-zero special case of the Poisson PMF, not a rounding comparison
	if p.Lambda == 0 {
		if k == 0 {
			return 0
		}
		return math.Inf(-1)
	}
	lg, _ := math.Lgamma(float64(k) + 1)
	return float64(k)*math.Log(p.Lambda) - p.Lambda - lg
}

// PMF returns P(X = k).
func (p Poisson) PMF(k int) float64 {
	return math.Exp(p.LogPMF(k))
}

// Sample draws one value using rng. Knuth's multiplication method is used
// for small rates; a normal approximation with continuity correction is used
// for large rates (λ > 30) to keep sampling O(1).
func (p Poisson) Sample(rng *rand.Rand) int {
	if p.Lambda <= 0 {
		return 0
	}
	if p.Lambda > 30 {
		x := p.Lambda + math.Sqrt(p.Lambda)*rng.NormFloat64()
		if x < 0 {
			return 0
		}
		return int(math.Floor(x + 0.5))
	}
	limit := math.Exp(-p.Lambda)
	k := 0
	prod := rng.Float64()
	for prod > limit {
		k++
		prod *= rng.Float64()
	}
	return k
}

// xlnx returns x·ln(x) with the limit value 0 at x = 0.
func xlnx(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return x * math.Log(x)
}

// RateChangeGLRT returns the normalized Poisson arrival-rate-change GLRT
// statistic for a window of daily counts split at index a (paper Eq. 5):
//
//	(a/2D)·Ȳ1·lnȲ1 + (b/2D)·Ȳ2·lnȲ2 − Ȳ·lnȲ
//
// where y1 holds the first a daily counts, y2 the remaining b counts,
// 2D = a + b, Ȳ1, Ȳ2 are the segment mean rates and Ȳ the overall mean rate.
// A value at or above ln(γ)/2D decides H1 (rate change present). The
// statistic is 0 when either segment is empty.
func RateChangeGLRT(y1, y2 []float64) float64 {
	a, b := float64(len(y1)), float64(len(y2))
	//lint:ignore floateq a and b are float64 conversions of segment lengths; integer-valued, so equality is exact
	if a == 0 || b == 0 {
		return 0
	}
	total := a + b
	m1 := Sum(y1) / a
	m2 := Sum(y2) / b
	m := (Sum(y1) + Sum(y2)) / total
	return (a/total)*xlnx(m1) + (b/total)*xlnx(m2) - xlnx(m)
}
