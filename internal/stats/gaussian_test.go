package stats

import (
	"math"
	"testing"
)

func TestNewGaussianValidation(t *testing.T) {
	if _, err := NewGaussian(0, 0); err == nil {
		t.Error("NewGaussian(sigma=0): want error")
	}
	if _, err := NewGaussian(0, -1); err == nil {
		t.Error("NewGaussian(sigma<0): want error")
	}
	if _, err := NewGaussian(0, math.NaN()); err == nil {
		t.Error("NewGaussian(sigma=NaN): want error")
	}
	g, err := NewGaussian(1, 2)
	if err != nil {
		t.Fatalf("NewGaussian(1,2): %v", err)
	}
	if g.Mu != 1 || g.Sigma != 2 {
		t.Errorf("NewGaussian = %+v", g)
	}
}

func TestGaussianPDF(t *testing.T) {
	g := Gaussian{Mu: 0, Sigma: 1}
	want := 1 / math.Sqrt(2*math.Pi)
	if got := g.PDF(0); !almostEqual(got, want, 1e-12) {
		t.Errorf("standard normal PDF(0) = %v, want %v", got, want)
	}
	if got := math.Exp(g.LogPDF(1.3)); !almostEqual(got, g.PDF(1.3), 1e-12) {
		t.Errorf("exp(LogPDF) = %v, PDF = %v", got, g.PDF(1.3))
	}
}

func TestGaussianCDF(t *testing.T) {
	g := Gaussian{Mu: 2, Sigma: 3}
	if got := g.CDF(2); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("CDF(mu) = %v, want 0.5", got)
	}
	// 1-sigma interval ≈ 0.8413.
	if got := g.CDF(5); !almostEqual(got, 0.8413447, 1e-6) {
		t.Errorf("CDF(mu+sigma) = %v, want ≈0.84134", got)
	}
	if g.CDF(-100) > 1e-10 {
		t.Error("CDF far left tail not ≈ 0")
	}
	if g.CDF(100) < 1-1e-10 {
		t.Error("CDF far right tail not ≈ 1")
	}
}

func TestGaussianSampleMoments(t *testing.T) {
	rng := NewRNG(42)
	g := Gaussian{Mu: 4, Sigma: 0.7}
	const n = 20000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = g.Sample(rng)
	}
	if got := Mean(xs); !almostEqual(got, 4, 0.03) {
		t.Errorf("sample mean = %v, want ≈4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 0.7, 0.03) {
		t.Errorf("sample stddev = %v, want ≈0.7", got)
	}
}

func TestMeanChangeGLRTNoChange(t *testing.T) {
	rng := NewRNG(7)
	g := Gaussian{Mu: 4, Sigma: 0.5}
	w := 20
	x1 := make([]float64, w)
	x2 := make([]float64, w)
	for i := 0; i < w; i++ {
		x1[i] = g.Sample(rng)
		x2[i] = g.Sample(rng)
	}
	stat := MeanChangeGLRT(x1, x2, 0.25)
	// Under H0 the statistic is ~χ²(1)/2-ish scale; should be small.
	if stat > 6 {
		t.Errorf("GLRT under H0 = %v, want small", stat)
	}
}

func TestMeanChangeGLRTWithChange(t *testing.T) {
	rng := NewRNG(7)
	g1 := Gaussian{Mu: 4, Sigma: 0.5}
	g2 := Gaussian{Mu: 2.5, Sigma: 0.5}
	w := 20
	x1 := make([]float64, w)
	x2 := make([]float64, w)
	for i := 0; i < w; i++ {
		x1[i] = g1.Sample(rng)
		x2[i] = g2.Sample(rng)
	}
	stat := MeanChangeGLRT(x1, x2, 0.25)
	// Expected ≈ W·Δ²/(2σ²) = 20·2.25/0.5 = 90.
	if stat < 30 {
		t.Errorf("GLRT under H1 = %v, want large", stat)
	}
}

func TestMeanChangeGLRTEdgeCases(t *testing.T) {
	if got := MeanChangeGLRT(nil, []float64{1}, 1); got != 0 {
		t.Errorf("GLRT(empty half) = %v, want 0", got)
	}
	if got := MeanChangeGLRT([]float64{1}, []float64{2}, 0); got != 0 {
		t.Errorf("GLRT(sigma2=0) = %v, want 0", got)
	}
}

func TestMeanChangeGLRTAsymmetricReducesToSymmetric(t *testing.T) {
	x1 := []float64{1, 1, 1, 1}
	x2 := []float64{2, 2, 2, 2}
	sym := MeanChangeGLRT(x1, x2, 1)
	// W·Δ²/(2σ²) = 4·1/2 = 2.
	if !almostEqual(sym, 2, 1e-12) {
		t.Errorf("symmetric GLRT = %v, want 2", sym)
	}
}

func TestPooledVariance(t *testing.T) {
	x1 := []float64{1, 2, 3}
	x2 := []float64{10, 11, 12}
	// Each half has SS = 2; pooled = 4/(6-2) = 1.
	if got := PooledVariance(x1, x2, 99); !almostEqual(got, 1, 1e-12) {
		t.Errorf("PooledVariance = %v, want 1", got)
	}
	if got := PooledVariance([]float64{5}, []float64{5}, 0.125); got != 0.125 {
		t.Errorf("PooledVariance(degenerate) = %v, want fallback", got)
	}
	if got := PooledVariance([]float64{3, 3}, []float64{3, 3}, 0.5); got != 0.5 {
		t.Errorf("PooledVariance(constant) = %v, want fallback", got)
	}
}
