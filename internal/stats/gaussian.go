package stats

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Gaussian is a normal distribution with mean Mu and standard deviation
// Sigma.
type Gaussian struct {
	Mu    float64
	Sigma float64
}

// NewGaussian constructs a Gaussian; Sigma must be positive.
func NewGaussian(mu, sigma float64) (Gaussian, error) {
	if sigma <= 0 || math.IsNaN(sigma) || math.IsInf(sigma, 0) {
		return Gaussian{}, fmt.Errorf("sigma %v: %w", sigma, ErrBadParameter)
	}
	return Gaussian{Mu: mu, Sigma: sigma}, nil
}

// PDF returns the probability density at x.
func (g Gaussian) PDF(x float64) float64 {
	z := (x - g.Mu) / g.Sigma
	return math.Exp(-0.5*z*z) / (g.Sigma * math.Sqrt(2*math.Pi))
}

// LogPDF returns the log probability density at x.
func (g Gaussian) LogPDF(x float64) float64 {
	z := (x - g.Mu) / g.Sigma
	return -0.5*z*z - math.Log(g.Sigma) - 0.5*math.Log(2*math.Pi)
}

// CDF returns P(X ≤ x).
func (g Gaussian) CDF(x float64) float64 {
	return 0.5 * (1 + math.Erf((x-g.Mu)/(g.Sigma*math.Sqrt2)))
}

// Sample draws one value using rng.
func (g Gaussian) Sample(rng *rand.Rand) float64 {
	return g.Mu + g.Sigma*rng.NormFloat64()
}

// MeanChangeGLRT returns the generalized likelihood ratio test statistic for
// a mean change between two equal-length halves of a window of i.i.d.
// Gaussian samples (paper Eq. 1):
//
//	2·ln L(x) = W·(Â1 − Â2)² / (2σ²)
//
// where W is the half-window length (len(x1) == len(x2) == W), Â1 and Â2 are
// the half means, and sigma2 is the (shared) noise variance. A value above
// the detection threshold γ decides H1 (mean change present).
//
// The halves may have unequal lengths near series boundaries; in that case W
// is taken as the harmonic-mean-style effective length n1·n2/(n1+n2)·2,
// which reduces to W for the symmetric case.
func MeanChangeGLRT(x1, x2 []float64, sigma2 float64) float64 {
	n1, n2 := len(x1), len(x2)
	if n1 == 0 || n2 == 0 || sigma2 <= 0 {
		return 0
	}
	a1, a2 := Mean(x1), Mean(x2)
	d := a1 - a2
	// Effective half-window length; equals n1 (== n2 == W) when symmetric.
	w := 2 * float64(n1) * float64(n2) / float64(n1+n2)
	return w * d * d / (2 * sigma2)
}

// PooledVariance returns the variance of the concatenation of x1 and x2
// about their respective half means (the GLRT noise-variance estimate σ̂²).
// It returns fallback when the pooled estimate is degenerate (fewer than 3
// samples total or zero spread), so the GLRT stays finite on constant data.
func PooledVariance(x1, x2 []float64, fallback float64) float64 {
	n := len(x1) + len(x2)
	if n < 3 {
		return fallback
	}
	m1, m2 := Mean(x1), Mean(x2)
	var ss float64
	for _, x := range x1 {
		d := x - m1
		ss += d * d
	}
	for _, x := range x2 {
		d := x - m2
		ss += d * d
	}
	v := ss / float64(n-2)
	if v <= 0 {
		return fallback
	}
	return v
}
