package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewPoissonValidation(t *testing.T) {
	if _, err := NewPoisson(-1); err == nil {
		t.Error("NewPoisson(-1): want error")
	}
	if _, err := NewPoisson(math.Inf(1)); err == nil {
		t.Error("NewPoisson(+Inf): want error")
	}
	if p, err := NewPoisson(0); err != nil || p.Lambda != 0 {
		t.Errorf("NewPoisson(0) = %+v, %v", p, err)
	}
}

func TestPoissonPMF(t *testing.T) {
	p := Poisson{Lambda: 3}
	// P(X=0) = e^-3.
	if got := p.PMF(0); !almostEqual(got, math.Exp(-3), 1e-12) {
		t.Errorf("PMF(0) = %v", got)
	}
	// P(X=3) = 27 e^-3 / 6 = 4.5 e^-3.
	if got := p.PMF(3); !almostEqual(got, 4.5*math.Exp(-3), 1e-12) {
		t.Errorf("PMF(3) = %v", got)
	}
	if got := p.PMF(-1); got != 0 {
		t.Errorf("PMF(-1) = %v, want 0", got)
	}
}

func TestPoissonZeroLambda(t *testing.T) {
	p := Poisson{Lambda: 0}
	if got := p.PMF(0); got != 1 {
		t.Errorf("PMF(0|λ=0) = %v, want 1", got)
	}
	if got := p.PMF(2); got != 0 {
		t.Errorf("PMF(2|λ=0) = %v, want 0", got)
	}
	rng := NewRNG(1)
	if got := p.Sample(rng); got != 0 {
		t.Errorf("Sample(λ=0) = %v, want 0", got)
	}
}

func TestPoissonPMFSumsToOne(t *testing.T) {
	p := Poisson{Lambda: 5}
	var sum float64
	for k := 0; k < 60; k++ {
		sum += p.PMF(k)
	}
	if !almostEqual(sum, 1, 1e-9) {
		t.Errorf("sum PMF = %v, want 1", sum)
	}
}

func TestPoissonSampleMoments(t *testing.T) {
	for _, lambda := range []float64{0.5, 3, 50} {
		rng := NewRNG(uint64(lambda*1000) + 9)
		p := Poisson{Lambda: lambda}
		const n = 20000
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(p.Sample(rng))
		}
		if got := Mean(xs); !almostEqual(got, lambda, 0.05*lambda+0.05) {
			t.Errorf("λ=%v: sample mean = %v", lambda, got)
		}
		if got := Variance(xs); !almostEqual(got, lambda, 0.1*lambda+0.1) {
			t.Errorf("λ=%v: sample variance = %v", lambda, got)
		}
	}
}

func TestRateChangeGLRTNoChange(t *testing.T) {
	y1 := []float64{3, 4, 3, 2, 4, 3}
	y2 := []float64{4, 3, 3, 3, 2, 4}
	stat := RateChangeGLRT(y1, y2)
	if stat > 0.05 {
		t.Errorf("GLRT under H0 = %v, want near 0", stat)
	}
	if stat < 0 {
		t.Errorf("GLRT = %v, must be non-negative (Jensen)", stat)
	}
}

func TestRateChangeGLRTWithChange(t *testing.T) {
	y1 := []float64{2, 3, 2, 3, 2, 3}
	y2 := []float64{10, 12, 9, 11, 10, 12}
	stat := RateChangeGLRT(y1, y2)
	if stat < 0.5 {
		t.Errorf("GLRT under H1 = %v, want large", stat)
	}
}

func TestRateChangeGLRTEdgeCases(t *testing.T) {
	if got := RateChangeGLRT(nil, []float64{1}); got != 0 {
		t.Errorf("GLRT(empty) = %v, want 0", got)
	}
	// All-zero counts: 0·ln0 handled as 0.
	if got := RateChangeGLRT([]float64{0, 0}, []float64{0, 0}); got != 0 {
		t.Errorf("GLRT(zeros) = %v, want 0", got)
	}
}

// Property: the GLRT statistic is non-negative (log-sum inequality) and zero
// when both halves have identical means.
func TestRateChangeGLRTNonNegativeProperty(t *testing.T) {
	f := func(raw1, raw2 []uint8) bool {
		if len(raw1) == 0 || len(raw2) == 0 {
			return true
		}
		y1 := make([]float64, len(raw1))
		y2 := make([]float64, len(raw2))
		for i, v := range raw1 {
			y1[i] = float64(v % 32)
		}
		for i, v := range raw2 {
			y2[i] = float64(v % 32)
		}
		return RateChangeGLRT(y1, y2) >= -1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXlnx(t *testing.T) {
	if got := xlnx(0); got != 0 {
		t.Errorf("xlnx(0) = %v, want 0", got)
	}
	if got := xlnx(math.E); !almostEqual(got, math.E, 1e-12) {
		t.Errorf("xlnx(e) = %v, want e", got)
	}
}
