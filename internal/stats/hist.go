package stats

import (
	"fmt"
	"math"
)

// Histogram is a fixed-bin histogram over the closed interval [Lo, Hi].
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram constructs a histogram with nbins equal-width bins spanning
// [lo, hi].
func NewHistogram(lo, hi float64, nbins int) (*Histogram, error) {
	if nbins <= 0 {
		return nil, fmt.Errorf("nbins %d: %w", nbins, ErrBadParameter)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("interval [%v,%v]: %w", lo, hi, ErrBadParameter)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}, nil
}

// Add records one observation. Out-of-range values are clamped to the edge
// bins so no observation is silently dropped.
func (h *Histogram) Add(x float64) {
	n := len(h.Counts)
	idx := int(math.Floor((x - h.Lo) / (h.Hi - h.Lo) * float64(n)))
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	h.Counts[idx]++
	h.total++
}

// AddAll records every observation in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int { return h.total }

// Fractions returns each bin's share of the total (nil total yields zeros).
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// Mode returns the center of the most populated bin.
func (h *Histogram) Mode() float64 {
	best, bestCount := 0, -1
	for i, c := range h.Counts {
		if c > bestCount {
			best, bestCount = i, c
		}
	}
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(best)+0.5)*width
}
