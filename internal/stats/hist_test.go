package stats

import "testing"

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 5, 0); err == nil {
		t.Error("NewHistogram(nbins=0): want error")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("NewHistogram(lo==hi): want error")
	}
	if _, err := NewHistogram(6, 5, 3); err == nil {
		t.Error("NewHistogram(lo>hi): want error")
	}
}

func TestHistogramBinning(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	h.AddAll([]float64{0, 1.9, 2, 5.5, 9.99, 10, -3, 42})
	// Bins: [0,2) [2,4) [4,6) [6,8) [8,10]; clamped: -3→bin0, 10 and 42→bin4.
	want := []int{3, 1, 1, 0, 3}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("bin %d = %d, want %d (all %v)", i, c, want[i], h.Counts)
		}
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d, want 8", h.Total())
	}
}

func TestHistogramFractions(t *testing.T) {
	h, _ := NewHistogram(0, 1, 2)
	if got := h.Fractions(); got[0] != 0 || got[1] != 0 {
		t.Errorf("empty Fractions = %v", got)
	}
	h.AddAll([]float64{0.1, 0.2, 0.9})
	fr := h.Fractions()
	if !almostEqual(fr[0], 2.0/3, 1e-12) || !almostEqual(fr[1], 1.0/3, 1e-12) {
		t.Errorf("Fractions = %v", fr)
	}
}

func TestHistogramMode(t *testing.T) {
	h, _ := NewHistogram(0, 5, 5)
	h.AddAll([]float64{4.2, 4.5, 4.9, 1.1})
	if got := h.Mode(); !almostEqual(got, 4.5, 1e-12) {
		t.Errorf("Mode = %v, want 4.5", got)
	}
}
