package stats

import (
	"fmt"
	"math"
)

// Beta is a beta distribution with shape parameters Alpha and Beta — the
// distribution underlying the beta reputation system (Jøsang & Ismail) and
// the Whitby-style quantile filter.
type Beta struct {
	Alpha float64
	Beta  float64
}

// NewBeta constructs a Beta distribution; both parameters must be positive.
func NewBeta(alpha, beta float64) (Beta, error) {
	if alpha <= 0 || beta <= 0 || math.IsNaN(alpha) || math.IsNaN(beta) {
		return Beta{}, fmt.Errorf("beta(%v,%v): %w", alpha, beta, ErrBadParameter)
	}
	return Beta{Alpha: alpha, Beta: beta}, nil
}

// Mean returns α/(α+β).
func (b Beta) Mean() float64 {
	return b.Alpha / (b.Alpha + b.Beta)
}

// Variance returns αβ/((α+β)²(α+β+1)).
func (b Beta) Variance() float64 {
	s := b.Alpha + b.Beta
	return b.Alpha * b.Beta / (s * s * (s + 1))
}

// LogPDF returns the log density at x ∈ (0,1).
func (b Beta) LogPDF(x float64) float64 {
	if x <= 0 || x >= 1 {
		return math.Inf(-1)
	}
	return (b.Alpha-1)*math.Log(x) + (b.Beta-1)*math.Log(1-x) - logBetaFunc(b.Alpha, b.Beta)
}

// PDF returns the density at x.
func (b Beta) PDF(x float64) float64 {
	return math.Exp(b.LogPDF(x))
}

// CDF returns P(X ≤ x), the regularized incomplete beta function I_x(α, β).
func (b Beta) CDF(x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	return regIncBeta(b.Alpha, b.Beta, x)
}

// Quantile returns the q-quantile by bisection on the CDF (the CDF is
// continuous and strictly increasing on (0,1)).
func (b Beta) Quantile(q float64) float64 {
	if q <= 0 {
		return 0
	}
	if q >= 1 {
		return 1
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if b.CDF(mid) < q {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12 {
			break
		}
	}
	return (lo + hi) / 2
}

// logBetaFunc returns ln B(a, b) = lnΓ(a) + lnΓ(b) − lnΓ(a+b).
func logBetaFunc(a, b float64) float64 {
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	return la + lb - lab
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// with the continued-fraction expansion (Numerical Recipes 6.4).
func regIncBeta(a, b, x float64) float64 {
	// Symmetry transform for faster convergence.
	if x > (a+1)/(a+b+2) {
		return 1 - regIncBeta(b, a, 1-x)
	}
	front := math.Exp(a*math.Log(x)+b*math.Log(1-x)-logBetaFunc(a, b)) / a
	// Lentz's algorithm for the continued fraction.
	const tiny = 1e-30
	f, c, d := 1.0, 1.0, 0.0
	for m := 0; m <= 300; m++ {
		var numerator float64
		switch {
		case m == 0:
			numerator = 1
		case m%2 == 0:
			k := float64(m / 2)
			numerator = k * (b - k) * x / ((a + 2*k - 1) * (a + 2*k))
		default:
			k := float64((m - 1) / 2)
			numerator = -(a + k) * (a + b + k) * x / ((a + 2*k) * (a + 2*k + 1))
		}
		d = 1 + numerator*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		d = 1 / d
		c = 1 + numerator/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		f *= c * d
		if math.Abs(1-c*d) < 1e-12 {
			break
		}
	}
	return Clamp(front*(f-1), 0, 1)
}
