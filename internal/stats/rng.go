package stats

import "math/rand/v2"

// NewRNG returns a deterministic PRNG seeded from the given seed. All
// randomness in the library flows through explicitly seeded generators so
// every experiment is reproducible bit-for-bit.
func NewRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// Fork derives an independent child generator from rng. Use this to give
// each sub-experiment its own stream so adding draws to one does not perturb
// another.
func Fork(rng *rand.Rand) *rand.Rand {
	return rand.New(rand.NewPCG(rng.Uint64(), rng.Uint64()))
}
