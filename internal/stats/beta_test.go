package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewBetaValidation(t *testing.T) {
	if _, err := NewBeta(0, 1); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := NewBeta(1, -1); err == nil {
		t.Error("beta<0 accepted")
	}
	if _, err := NewBeta(math.NaN(), 1); err == nil {
		t.Error("NaN accepted")
	}
	b, err := NewBeta(2, 3)
	if err != nil || b.Alpha != 2 || b.Beta != 3 {
		t.Errorf("NewBeta = %+v, %v", b, err)
	}
}

func TestBetaMoments(t *testing.T) {
	b := Beta{Alpha: 2, Beta: 3}
	if got := b.Mean(); !almostEqual(got, 0.4, 1e-12) {
		t.Errorf("Mean = %v, want 0.4", got)
	}
	if got := b.Variance(); !almostEqual(got, 0.04, 1e-12) {
		t.Errorf("Variance = %v, want 0.04", got)
	}
}

func TestBetaUniformSpecialCase(t *testing.T) {
	// Beta(1,1) is the uniform distribution.
	b := Beta{Alpha: 1, Beta: 1}
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if got := b.CDF(x); !almostEqual(got, x, 1e-9) {
			t.Errorf("uniform CDF(%v) = %v", x, got)
		}
		if got := b.PDF(x); !almostEqual(got, 1, 1e-9) {
			t.Errorf("uniform PDF(%v) = %v", x, got)
		}
	}
}

func TestBetaCDFKnownValues(t *testing.T) {
	// Beta(2,2): CDF(x) = 3x² − 2x³.
	b := Beta{Alpha: 2, Beta: 2}
	for _, x := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		want := 3*x*x - 2*x*x*x
		if got := b.CDF(x); !almostEqual(got, want, 1e-9) {
			t.Errorf("Beta(2,2) CDF(%v) = %v, want %v", x, got, want)
		}
	}
	// Beta(5,1): CDF(x) = x⁵.
	b = Beta{Alpha: 5, Beta: 1}
	if got := b.CDF(0.8); !almostEqual(got, math.Pow(0.8, 5), 1e-9) {
		t.Errorf("Beta(5,1) CDF(0.8) = %v", got)
	}
}

func TestBetaCDFBounds(t *testing.T) {
	b := Beta{Alpha: 3, Beta: 7}
	if b.CDF(-0.5) != 0 || b.CDF(0) != 0 {
		t.Error("CDF below support not 0")
	}
	if b.CDF(1) != 1 || b.CDF(2) != 1 {
		t.Error("CDF above support not 1")
	}
	if b.PDF(0) != 0 || b.PDF(1) != 0 {
		t.Error("PDF outside open support not 0")
	}
}

func TestBetaQuantileInvertsCDF(t *testing.T) {
	b := Beta{Alpha: 2.5, Beta: 6}
	for _, q := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
		x := b.Quantile(q)
		if got := b.CDF(x); !almostEqual(got, q, 1e-6) {
			t.Errorf("CDF(Quantile(%v)) = %v", q, got)
		}
	}
	if b.Quantile(0) != 0 || b.Quantile(1) != 1 {
		t.Error("extreme quantiles wrong")
	}
}

func TestBetaPDFIntegratesToOne(t *testing.T) {
	b := Beta{Alpha: 3, Beta: 2}
	const n = 2000
	var sum float64
	for i := 0; i < n; i++ {
		x := (float64(i) + 0.5) / n
		sum += b.PDF(x) / n
	}
	if !almostEqual(sum, 1, 1e-3) {
		t.Errorf("PDF integral = %v", sum)
	}
}

// Property: CDF is monotone and within [0,1] for random parameters.
func TestBetaCDFMonotoneProperty(t *testing.T) {
	f := func(aRaw, bRaw uint8) bool {
		a := 0.5 + float64(aRaw%40)/4
		bb := 0.5 + float64(bRaw%40)/4
		dist := Beta{Alpha: a, Beta: bb}
		prev := -1.0
		for i := 0; i <= 20; i++ {
			x := float64(i) / 20
			v := dist.CDF(x)
			if v < prev-1e-12 || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
