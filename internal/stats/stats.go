// Package stats provides the statistical substrate for the rating-system
// reproduction: descriptive statistics, Gaussian and Poisson models,
// generalized likelihood ratio test (GLRT) statistics, histograms, and
// deterministic PRNG plumbing.
//
// The paper's detectors (mean change, arrival-rate change) are built on the
// hypothesis tests implemented here. Everything is stdlib-only; the Go stats
// ecosystem is intentionally not used.
package stats

import (
	"errors"
	"math"
	"sort"
)

// Errors returned by the statistics routines.
var (
	// ErrEmptyInput indicates an operation that requires at least one sample.
	ErrEmptyInput = errors.New("stats: empty input")
	// ErrBadParameter indicates an out-of-domain distribution parameter.
	ErrBadParameter = errors.New("stats: bad parameter")
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (divide by n), or 0 when
// fewer than one sample is present.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n)
}

// SampleVariance returns the unbiased sample variance (divide by n-1).
// It returns 0 when fewer than two samples are present.
func SampleVariance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// SampleStdDev returns the sample standard deviation of xs.
func SampleStdDev(xs []float64) float64 {
	return math.Sqrt(SampleVariance(xs))
}

// MinMax returns the smallest and largest values in xs.
// It returns ErrEmptyInput for an empty slice.
func MinMax(xs []float64) (minVal, maxVal float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmptyInput
	}
	minVal, maxVal = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < minVal {
			minVal = x
		}
		if x > maxVal {
			maxVal = x
		}
	}
	return minVal, maxVal, nil
}

// Median returns the median of xs without modifying it.
// It returns 0 for an empty slice.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It copies xs and returns 0 for an
// empty slice. Out-of-range q is clamped.
func Quantile(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	return QuantileInPlace(sorted, q)
}

// QuantileInPlace is Quantile without the defensive copy: xs is sorted in
// place and the interpolated order statistic returned. Hot paths that own a
// reusable scratch buffer (the detector kernels) avoid Quantile's per-call
// allocation; the result is identical because a sorted permutation of the
// same multiset is unique.
func QuantileInPlace(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sort.Float64s(xs)
	if n == 1 {
		return xs[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return xs[lo]
	}
	frac := pos - float64(lo)
	return xs[lo]*(1-frac) + xs[hi]*frac
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Correlation returns the Pearson correlation coefficient between xs and ys.
// It returns 0 if the slices differ in length, are shorter than 2, or either
// has zero variance.
func Correlation(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	//lint:ignore floateq exact-zero division guard: sxx/syy are sums of squares, only exactly 0 (a constant input) makes the denominator vanish
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
