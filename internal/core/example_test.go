package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
)

// A minimal fair history: 60 days of one rating per day at 4 stars.
func exampleFair() dataset.Series {
	s := make(dataset.Series, 60)
	for i := range s {
		s[i] = dataset.Rating{Day: float64(i), Value: 4, Rater: fmt.Sprintf("h%02d", i)}
	}
	return s
}

func ExampleGenerator_GenerateProduct() {
	gen := core.NewGenerator(1, core.DefaultRaters(50))
	unfair, err := gen.GenerateProduct(core.Profile{
		Bias:         -2.5, // drive the mean from 4 toward 1.5
		StdDev:       0.5,
		Count:        20,
		StartDay:     20,
		DurationDays: 10,
		Correlation:  core.Independent,
		Quantize:     true,
	}, exampleFair())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	first, last := unfair.Span()
	fmt.Printf("%d unfair ratings between day %.0f and day %.0f\n", len(unfair), first, last)
	fmt.Printf("realized bias: %.1f\n", core.MeasureBias(unfair.Values(), exampleFair().Values()))
	// Output:
	// 20 unfair ratings between day 20 and day 30
	// realized bias: -2.4
}

func ExampleSearchOptimalRegion() {
	// Search a synthetic MP landscape whose optimum is at (−2, σ 1).
	eval := func(bias, sigma float64, trial int) float64 {
		db, ds := bias+2, sigma-1
		return 1 / (1 + db*db + ds*ds)
	}
	cfg := core.DefaultSearchConfig()
	res, err := core.SearchOptimalRegion(cfg, eval)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("optimum near bias %.1f, σ %.1f\n", res.BestBias, res.BestSigma)
	// Output:
	// optimum near bias -2.0, σ 1.0
}

func ExampleMapValuesToTimes() {
	fair := exampleFair()
	// Procedure 3 pairs each attack time with the remaining value farthest
	// from the preceding fair rating (all 4s here), so low values go first.
	pairs := core.MapValuesToTimes(nil, []float64{3, 1, 2}, []float64{10, 11, 12}, core.HeuristicAnti, fair)
	for _, p := range pairs {
		fmt.Printf("day %.0f → %.0f stars\n", p.Day, p.Value)
	}
	// Output:
	// day 10 → 1 stars
	// day 11 → 2 stars
	// day 12 → 3 stars
}
