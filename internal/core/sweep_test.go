package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dataset"
)

func testRanges() ParameterRanges {
	return ParameterRanges{
		Region:      Region{BiasLo: -4, BiasHi: 0, SigmaLo: 0, SigmaHi: 1.5},
		CountMin:    10,
		CountMax:    50,
		DurationMin: 10,
		DurationMax: 60,
		StartMin:    0,
		StartMax:    30,
	}
}

func TestParameterRangesValidate(t *testing.T) {
	if err := testRanges().Validate(); err != nil {
		t.Errorf("valid ranges rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*ParameterRanges)
	}{
		{"bad region", func(p *ParameterRanges) { p.Region = Region{} }},
		{"zero count", func(p *ParameterRanges) { p.CountMin = 0 }},
		{"inverted counts", func(p *ParameterRanges) { p.CountMax = 5 }},
		{"zero duration", func(p *ParameterRanges) { p.DurationMin = 0 }},
		{"inverted durations", func(p *ParameterRanges) { p.DurationMax = 5 }},
		{"negative start", func(p *ParameterRanges) { p.StartMin = -1 }},
		{"inverted starts", func(p *ParameterRanges) { p.StartMax = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := testRanges()
			tt.mutate(&r)
			if err := r.Validate(); !errors.Is(err, ErrBadSearch) {
				t.Errorf("Validate = %v", err)
			}
		})
	}
}

func TestControllerFindsPlantedOptimum(t *testing.T) {
	fair := map[string]dataset.Series{"tv1": fairSeriesFixture()}
	// Synthetic attack effect: strongest when bias ≈ −2 and σ ≈ 1 —
	// verifies the learn-from-feedback loop homes in without a real
	// defense in the loop.
	score := func(a Attack) float64 {
		s := a.Ratings["tv1"]
		bias := MeasureBias(s.Values(), fair["tv1"].Values())
		sigma := MeasureSpread(s.Values())
		db, ds := bias+2, sigma-1
		return 2/(1+db*db+ds*ds) + 0.001*float64(len(s))
	}
	c := &Controller{Raters: DefaultRaters(50), Seed: 5, Score: score}
	res, err := c.BestAttack("tv1", fair, testRanges(), 30)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations <= 30 {
		t.Errorf("refinement phase did not run (evals %d)", res.Evaluations)
	}
	if math.Abs(res.Profile.Bias-(-2)) > 0.8 {
		t.Errorf("best bias = %v, want ≈ -2", res.Profile.Bias)
	}
	if math.Abs(res.Profile.StdDev-1) > 0.6 {
		t.Errorf("best σ = %v, want ≈ 1", res.Profile.StdDev)
	}
	if res.MP < 1.5 {
		t.Errorf("best MP = %v, want near the landscape peak 2", res.MP)
	}
	if len(res.Attack.Ratings["tv1"]) != res.Profile.Count {
		t.Error("returned attack does not match returned profile")
	}
}

func TestControllerValidation(t *testing.T) {
	fair := map[string]dataset.Series{"tv1": fairSeriesFixture()}
	c := &Controller{Raters: DefaultRaters(50), Seed: 5}
	if _, err := c.BestAttack("tv1", fair, testRanges(), 5); !errors.Is(err, ErrBadSearch) {
		t.Errorf("nil Score accepted: %v", err)
	}
	c.Score = func(Attack) float64 { return 0 }
	bad := testRanges()
	bad.CountMin = -1
	if _, err := c.BestAttack("tv1", fair, bad, 5); !errors.Is(err, ErrBadSearch) {
		t.Errorf("bad ranges accepted: %v", err)
	}
	// Unknown product: generation fails.
	if _, err := c.BestAttack("tvX", fair, testRanges(), 5); err == nil {
		t.Error("unknown target accepted")
	}
}

func TestControllerRespectsCorrelationModes(t *testing.T) {
	fair := map[string]dataset.Series{"tv1": fairSeriesFixture()}
	seen := make(map[CorrelationMode]bool)
	c := &Controller{
		Raters: DefaultRaters(50),
		Seed:   6,
		Score:  func(a Attack) float64 { return 0.1 },
	}
	ranges := testRanges()
	ranges.Correlations = []CorrelationMode{Shuffled, HeuristicAnti}
	// Capture modes via the score hook by regenerating... simpler: run and
	// check the winning profile uses an allowed mode, plus defaults work.
	res, err := c.BestAttack("tv1", fair, ranges, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile.Correlation != Shuffled && res.Profile.Correlation != HeuristicAnti {
		t.Errorf("winner used mode %v outside the allowed set", res.Profile.Correlation)
	}
	seen[res.Profile.Correlation] = true

	// Default (no modes listed) must yield Independent.
	res, err = c.BestAttack("tv1", fair, testRanges(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile.Correlation != Independent {
		t.Errorf("default mode = %v, want Independent", res.Profile.Correlation)
	}
}

func TestControllerDefaultBudget(t *testing.T) {
	fair := map[string]dataset.Series{"tv1": fairSeriesFixture()}
	c := &Controller{
		Raters: DefaultRaters(50),
		Seed:   7,
		Score:  func(a Attack) float64 { return float64(len(a.Ratings["tv1"])) },
	}
	res, err := c.BestAttack("tv1", fair, testRanges(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations < 20 {
		t.Errorf("default budget evals = %d, want ≥ 20", res.Evaluations)
	}
}
