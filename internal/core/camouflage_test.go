package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dataset"
)

func camouflagePlan() Camouflage {
	return Camouflage{
		Products:         []string{"tv5"},
		RatersPerProduct: 40,
		StartDay:         5,
		DurationDays:     20,
		Sigma:            0.6,
	}
}

func TestCamouflageValidate(t *testing.T) {
	if err := camouflagePlan().Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Camouflage)
	}{
		{"no products", func(c *Camouflage) { c.Products = nil }},
		{"zero raters", func(c *Camouflage) { c.RatersPerProduct = 0 }},
		{"zero duration", func(c *Camouflage) { c.DurationDays = 0 }},
		{"negative sigma", func(c *Camouflage) { c.Sigma = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := camouflagePlan()
			tt.mutate(&c)
			if err := c.Validate(); !errors.Is(err, ErrBadProfile) {
				t.Errorf("Validate = %v", err)
			}
		})
	}
}

func TestGenerateCamouflageLooksHonest(t *testing.T) {
	g := NewGenerator(21, DefaultRaters(50))
	fair := map[string]dataset.Series{"tv5": fairSeriesFixture()}
	atk, err := g.GenerateCamouflage(camouflagePlan(), fair)
	if err != nil {
		t.Fatal(err)
	}
	s := atk.Ratings["tv5"]
	if len(s) != 40 {
		t.Fatalf("camouflage ratings = %d", len(s))
	}
	fairMean := fair["tv5"].Mean()
	if got := s.Mean(); math.Abs(got-fairMean) > 0.35 {
		t.Errorf("camouflage mean %v far from fair mean %v", got, fairMean)
	}
	seen := map[string]bool{}
	for _, r := range s {
		if !r.Unfair {
			t.Fatal("camouflage rating missing ground-truth tag")
		}
		if r.Day < 5 || r.Day >= 25 {
			t.Fatalf("camouflage day %v outside window", r.Day)
		}
		if seen[r.Rater] {
			t.Fatalf("rater %s rated camouflage product twice", r.Rater)
		}
		seen[r.Rater] = true
	}
}

func TestGenerateCamouflageMissingFair(t *testing.T) {
	g := NewGenerator(21, DefaultRaters(50))
	if _, err := g.GenerateCamouflage(camouflagePlan(), nil); !errors.Is(err, ErrBadProfile) {
		t.Errorf("error = %v", err)
	}
}

func TestGenerateCamouflageRaterCap(t *testing.T) {
	g := NewGenerator(21, DefaultRaters(10))
	plan := camouflagePlan()
	plan.RatersPerProduct = 99
	atk, err := g.GenerateCamouflage(plan, map[string]dataset.Series{"tv5": fairSeriesFixture()})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(atk.Ratings["tv5"]); got != 10 {
		t.Errorf("camouflage ratings = %d, want capped at 10", got)
	}
}

func TestAttackMerge(t *testing.T) {
	a := Attack{Ratings: map[string]dataset.Series{
		"tv1": {{Day: 5, Value: 1, Rater: "x"}},
		"tv2": {{Day: 3, Value: 2, Rater: "y"}},
	}}
	b := Attack{Ratings: map[string]dataset.Series{
		"tv1": {{Day: 1, Value: 0, Rater: "z"}},
		"tv3": {{Day: 9, Value: 5, Rater: "w"}},
	}}
	m := a.Merge(b)
	if len(m.Ratings) != 3 {
		t.Fatalf("merged products = %d", len(m.Ratings))
	}
	if got := m.Ratings["tv1"]; len(got) != 2 || got[0].Day != 1 {
		t.Errorf("tv1 merge = %v", got)
	}
	if m.TotalRatings() != 4 {
		t.Errorf("TotalRatings = %d", m.TotalRatings())
	}
	// Originals untouched.
	if len(a.Ratings["tv1"]) != 1 || len(b.Ratings["tv1"]) != 1 {
		t.Error("Merge mutated inputs")
	}
	m.Ratings["tv2"][0].Value = 99
	if a.Ratings["tv2"][0].Value == 99 {
		t.Error("Merge shares storage with input")
	}
}
