package core

import (
	"math/rand/v2"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// GenerateValues produces n unfair rating values with mean fairMean+bias and
// standard deviation sigma (the value-set generator of Figure 8). Values are
// drawn from a Gaussian, clamped to the legal rating range, and optionally
// quantized to half stars. Clamping and quantization shrink the realized
// moments near the range edges; the generator compensates with a small
// fixed-point adjustment of the sampling mean so the realized mean tracks
// the request where the range allows it.
func GenerateValues(rng *rand.Rand, fairMean, bias, sigma float64, n int, quantize bool) []float64 {
	if n <= 0 {
		return nil
	}
	target := stats.Clamp(fairMean+bias, dataset.MinValue, dataset.MaxValue)
	sampleMean := target
	vals := make([]float64, n)
	// Up to three compensation passes: draw, measure the clamping shift,
	// and re-center the sampling mean.
	for pass := 0; pass < 3; pass++ {
		draw := stats.Fork(rng)
		for i := range vals {
			v := sampleMean + draw.NormFloat64()*sigma
			v = stats.Clamp(v, dataset.MinValue, dataset.MaxValue)
			if quantize {
				v = dataset.QuantizeHalfStar(v)
			}
			vals[i] = v
		}
		got := stats.Mean(vals)
		shift := target - got
		if abs(shift) < 0.05 {
			break
		}
		sampleMean = stats.Clamp(sampleMean+shift, dataset.MinValue-2*sigma, dataset.MaxValue+2*sigma)
	}
	return vals
}

// MeasureBias returns the paper's bias feature: mean(unfair) − mean(fair).
func MeasureBias(unfair, fair []float64) float64 {
	return stats.Mean(unfair) - stats.Mean(fair)
}

// MeasureSpread returns the standard deviation of the unfair values (the
// vertical axis of the variance–bias plots).
func MeasureSpread(unfair []float64) float64 {
	return stats.SampleStdDev(unfair)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
