package core

import "fmt"

// Region is an axis-aligned rectangle on the variance–bias plane
// (horizontal axis bias, vertical axis standard deviation).
type Region struct {
	BiasLo, BiasHi   float64
	SigmaLo, SigmaHi float64
}

// Center returns the region's center point — the (bias, σ) a subarea
// represents in Procedure 2.
func (r Region) Center() (bias, sigma float64) {
	return (r.BiasLo + r.BiasHi) / 2, (r.SigmaLo + r.SigmaHi) / 2
}

// BiasSpan returns the width of the region on the bias axis.
func (r Region) BiasSpan() float64 { return r.BiasHi - r.BiasLo }

// SigmaSpan returns the height of the region on the σ axis.
func (r Region) SigmaSpan() float64 { return r.SigmaHi - r.SigmaLo }

// Valid reports whether the region is non-degenerate.
func (r Region) Valid() bool {
	return r.BiasHi > r.BiasLo && r.SigmaHi >= r.SigmaLo && r.SigmaLo >= 0
}

// quadrants splits the region into 4 subareas (N = 4 in the paper's
// Figure 5 run), each expanded by the overlap fraction so subareas may
// overlap as Procedure 2 allows.
func (r Region) quadrants(overlap float64) []Region {
	midB := (r.BiasLo + r.BiasHi) / 2
	midS := (r.SigmaLo + r.SigmaHi) / 2
	growB := overlap * r.BiasSpan() / 2
	growS := overlap * r.SigmaSpan() / 2
	clip := func(q Region) Region {
		if q.BiasLo < r.BiasLo {
			q.BiasLo = r.BiasLo
		}
		if q.BiasHi > r.BiasHi {
			q.BiasHi = r.BiasHi
		}
		if q.SigmaLo < r.SigmaLo {
			q.SigmaLo = r.SigmaLo
		}
		if q.SigmaHi > r.SigmaHi {
			q.SigmaHi = r.SigmaHi
		}
		return q
	}
	return []Region{
		clip(Region{r.BiasLo, midB + growB, r.SigmaLo, midS + growS}),
		clip(Region{midB - growB, r.BiasHi, r.SigmaLo, midS + growS}),
		clip(Region{r.BiasLo, midB + growB, midS - growS, r.SigmaHi}),
		clip(Region{midB - growB, r.BiasHi, midS - growS, r.SigmaHi}),
	}
}

// Evaluator scores one (bias, σ) candidate. Procedure 2 calls it m times
// per subarea with distinct trial indices; the evaluator is expected to
// generate a fresh random attack per trial and return the resulting
// manipulation power.
type Evaluator func(bias, sigma float64, trial int) float64

// SearchConfig parameterizes Procedure 2.
type SearchConfig struct {
	// Initial is the starting interested-area. The paper's Figure 5 run
	// uses bias −4…0, σ 0…2.
	Initial Region
	// Trials is m, the random attack sets evaluated per subarea center.
	Trials int
	// Overlap expands each subarea by this fraction (subareas may
	// overlap, per Procedure 2 line 4). 0 disables overlap.
	Overlap float64
	// MinBiasSpan / MinSigmaSpan stop the recursion once the
	// interested-area is smaller than these thresholds.
	MinBiasSpan  float64
	MinSigmaSpan float64
	// MaxRounds hard-bounds the loop.
	MaxRounds int
}

// DefaultSearchConfig mirrors the paper's Figure 5 experiment: initial area
// bias 0…−4, σ 0…2, N = 4 subareas, m = 10 trials, ≈4 rounds.
func DefaultSearchConfig() SearchConfig {
	return SearchConfig{
		Initial:      Region{BiasLo: -4, BiasHi: 0, SigmaLo: 0, SigmaHi: 2},
		Trials:       10,
		Overlap:      0.1,
		MinBiasSpan:  0.5,
		MinSigmaSpan: 0.25,
		MaxRounds:    8,
	}
}

// Validate reports the first problem with the configuration.
func (c SearchConfig) Validate() error {
	switch {
	case !c.Initial.Valid():
		return fmt.Errorf("%w: invalid initial region %+v", ErrBadSearch, c.Initial)
	case c.Trials <= 0:
		return fmt.Errorf("%w: trials %d", ErrBadSearch, c.Trials)
	case c.MaxRounds <= 0:
		return fmt.Errorf("%w: max rounds %d", ErrBadSearch, c.MaxRounds)
	case c.Overlap < 0 || c.Overlap >= 1:
		return fmt.Errorf("%w: overlap %v", ErrBadSearch, c.Overlap)
	}
	return nil
}

// SearchStep records one round of the region search.
type SearchStep struct {
	// Chosen is the subarea selected as the new interested-area.
	Chosen Region
	// CenterBias and CenterSigma are the chosen subarea's center.
	CenterBias, CenterSigma float64
	// BestMP is the maximum MP observed in the chosen subarea this round.
	BestMP float64
}

// SearchResult is the outcome of Procedure 2.
type SearchResult struct {
	// Steps traces the interested-area through the rounds (Figure 5).
	Steps []SearchStep
	// Final is the last interested-area.
	Final Region
	// BestBias, BestSigma are the final area's center.
	BestBias, BestSigma float64
	// BestMP is the largest MP observed anywhere during the search.
	BestMP float64
}

// SearchOptimalRegion runs Procedure 2: recursively subdivide the
// interested-area into 4 (possibly overlapping) subareas, score each
// subarea's center with Trials random attacks via eval, recurse into the
// best subarea, and stop when the area is smaller than the thresholds.
func SearchOptimalRegion(cfg SearchConfig, eval Evaluator) (SearchResult, error) {
	if err := cfg.Validate(); err != nil {
		return SearchResult{}, err
	}
	area := cfg.Initial
	res := SearchResult{}
	for round := 0; round < cfg.MaxRounds; round++ {
		if area.BiasSpan() < cfg.MinBiasSpan && area.SigmaSpan() < cfg.MinSigmaSpan {
			break
		}
		var best Region
		bestMP := -1.0
		for _, sub := range area.quadrants(cfg.Overlap) {
			bias, sigma := sub.Center()
			subBest := -1.0
			for trial := 0; trial < cfg.Trials; trial++ {
				if v := eval(bias, sigma, trial); v > subBest {
					subBest = v
				}
			}
			if subBest > bestMP {
				best, bestMP = sub, subBest
			}
		}
		area = best
		cb, cs := area.Center()
		res.Steps = append(res.Steps, SearchStep{
			Chosen: area, CenterBias: cb, CenterSigma: cs, BestMP: bestMP,
		})
		if bestMP > res.BestMP {
			res.BestMP = bestMP
		}
	}
	res.Final = area
	res.BestBias, res.BestSigma = area.Center()
	return res, nil
}
