package core

import (
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
)

func TestReorderPreservesTimesRatersAndValueMultiset(t *testing.T) {
	fair := fairSeriesFixture()
	g := NewGenerator(11, DefaultRaters(50))
	p := testProfile()
	p.StdDev = 1.0
	s, err := g.GenerateProduct(p, fair)
	if err != nil {
		t.Fatal(err)
	}
	atk := Attack{Ratings: map[string]dataset.Series{"tv1": s}}
	fairMap := map[string]dataset.Series{"tv1": fair}

	for _, mode := range []CorrelationMode{Independent, Shuffled, HeuristicAnti} {
		re := atk.Reorder(stats.NewRNG(3), mode, fairMap)
		rs := re.Ratings["tv1"]
		if len(rs) != len(s) {
			t.Fatalf("%v: length changed", mode)
		}
		gotVals := append([]float64(nil), rs.Values()...)
		wantVals := append([]float64(nil), s.Values()...)
		sort.Float64s(gotVals)
		sort.Float64s(wantVals)
		for i := range rs {
			if rs[i].Day != s[i].Day {
				t.Fatalf("%v: time changed at %d", mode, i)
			}
			if rs[i].Rater != s[i].Rater {
				t.Fatalf("%v: rater changed at %d", mode, i)
			}
			if !rs[i].Unfair {
				t.Fatalf("%v: unfair tag lost at %d", mode, i)
			}
			if gotVals[i] != wantVals[i] {
				t.Fatalf("%v: value multiset changed", mode)
			}
		}
	}
}

func TestReorderHeuristicChangesOrder(t *testing.T) {
	fair := fairSeriesFixture()
	g := NewGenerator(12, DefaultRaters(50))
	p := testProfile()
	p.StdDev = 1.2 // spread values so reordering matters
	s, err := g.GenerateProduct(p, fair)
	if err != nil {
		t.Fatal(err)
	}
	atk := Attack{Ratings: map[string]dataset.Series{"tv1": s}}
	fairMap := map[string]dataset.Series{"tv1": fair}
	re := atk.Reorder(stats.NewRNG(3), HeuristicAnti, fairMap)
	same := true
	for i := range s {
		if re.Ratings["tv1"][i].Value != s[i].Value {
			same = false
			break
		}
	}
	if same {
		t.Error("heuristic reorder left the value order unchanged")
	}
	// Original must be untouched.
	for i := range s {
		if s[i] != atk.Ratings["tv1"][i] {
			t.Fatal("Reorder mutated the original attack")
		}
	}
}
