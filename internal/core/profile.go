// Package core implements the paper's primary contribution: the attack
// behavior models distilled from the rating challenge and the unfair-rating
// generator of Figure 8. An attack against one product is described by four
// features — bias, variance, arrival rate (count over duration) and
// correlation with the fair ratings — and the generator assembles them with
// a value-set generator, a time-set generator and a value–time mapper. The
// parameter controller implements Procedure 2, the heuristic search for the
// strongest (bias, variance) region against a given defense.
package core

import (
	"errors"
	"fmt"
)

// Errors returned by the attack generator.
var (
	// ErrBadProfile indicates an invalid attack profile.
	ErrBadProfile = errors.New("core: bad attack profile")
	// ErrNotEnoughRaters indicates more unfair ratings than biased raters
	// (each rater rates a product at most once).
	ErrNotEnoughRaters = errors.New("core: not enough biased raters")
	// ErrBadSearch indicates an invalid Procedure 2 configuration.
	ErrBadSearch = errors.New("core: bad search config")
)

// CorrelationMode selects the value–time mapper (Section V-D).
type CorrelationMode int

// Correlation modes. Independent preserves the generated order (the
// current-attacker behavior the paper observed: no correlation), Shuffled
// randomly permutes values over times, and HeuristicAnti applies
// Procedure 3, greedily anti-correlating each unfair rating with the fair
// rating immediately preceding it — the mode the paper shows strengthens
// attacks.
const (
	Independent CorrelationMode = iota + 1
	Shuffled
	HeuristicAnti
)

// String returns the mode name.
func (m CorrelationMode) String() string {
	switch m {
	case Independent:
		return "independent"
	case Shuffled:
		return "shuffled"
	case HeuristicAnti:
		return "heuristic-anti"
	default:
		return fmt.Sprintf("correlation(%d)", int(m))
	}
}

// Profile describes a collaborative unfair-rating attack on one product.
type Profile struct {
	// Bias is the offset of the unfair-rating mean from the fair-rating
	// mean (negative = downgrade, positive = boost).
	Bias float64
	// StdDev is the spread of the unfair rating values.
	StdDev float64
	// Count is the number of unfair ratings to insert.
	Count int
	// StartDay is when the attack begins.
	StartDay float64
	// DurationDays is the attack duration; Count/DurationDays is the
	// unfair-rating arrival rate the paper's time-domain analysis studies.
	DurationDays float64
	// Correlation selects the value–time mapper.
	Correlation CorrelationMode
	// Quantize snaps values to the 0.5-star grid when true (human
	// attackers must submit legal widget values).
	Quantize bool
}

// Validate reports the first problem with the profile.
func (p Profile) Validate() error {
	switch {
	case p.Count <= 0:
		return fmt.Errorf("%w: count %d", ErrBadProfile, p.Count)
	case p.StdDev < 0:
		return fmt.Errorf("%w: stddev %v", ErrBadProfile, p.StdDev)
	case p.DurationDays <= 0:
		return fmt.Errorf("%w: duration %v", ErrBadProfile, p.DurationDays)
	case p.StartDay < 0:
		return fmt.Errorf("%w: start day %v", ErrBadProfile, p.StartDay)
	case p.Correlation < Independent || p.Correlation > HeuristicAnti:
		return fmt.Errorf("%w: correlation mode %d", ErrBadProfile, p.Correlation)
	}
	return nil
}

// ArrivalInterval returns the average unfair-rating interval in days
// (attack duration / number of unfair ratings), the time-domain feature of
// Section V-C.
func (p Profile) ArrivalInterval() float64 {
	if p.Count == 0 {
		return 0
	}
	return p.DurationDays / float64(p.Count)
}
