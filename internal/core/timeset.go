package core

import (
	"math/rand/v2"
	"sort"
)

// TimePattern selects how the time-set generator spreads unfair ratings
// over the attack duration.
type TimePattern int

// Time patterns. UniformJitter spreads ratings evenly with per-rating
// jitter (the dominant pattern in the challenge data), PoissonArrivals uses
// exponential gaps with the profile's mean rate, and FrontLoaded
// concentrates ratings toward the attack start (the "dump everything
// early" archetype).
const (
	UniformJitter TimePattern = iota + 1
	PoissonArrivals
	FrontLoaded
)

// GenerateTimes produces n rating times in [start, start+duration) following
// the chosen pattern (the time-set generator of Figure 8). Times are
// returned sorted.
func GenerateTimes(rng *rand.Rand, start, duration float64, n int, pattern TimePattern) []float64 {
	if n <= 0 || duration <= 0 {
		return nil
	}
	out := make([]float64, n)
	switch pattern {
	case PoissonArrivals:
		// n exponential gaps rescaled to fit the duration.
		gaps := make([]float64, n)
		var total float64
		for i := range gaps {
			gaps[i] = rng.ExpFloat64()
			total += gaps[i]
		}
		//lint:ignore floateq exact-zero division guard: total is a sum of non-negative exponential gaps, only exactly 0 (all gaps 0) breaks the rescale
		if total == 0 {
			total = 1
		}
		t := start
		for i := range out {
			t += gaps[i] / total * duration
			out[i] = minFl(t, start+duration-1e-9)
		}
	case FrontLoaded:
		for i := range out {
			u := rng.Float64()
			out[i] = start + u*u*duration // density ∝ 1/√x toward start
		}
	default: // UniformJitter
		step := duration / float64(n)
		for i := range out {
			out[i] = start + (float64(i)+rng.Float64())*step
		}
	}
	sort.Float64s(out)
	return out
}

func minFl(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
