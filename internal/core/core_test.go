package core

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/stats"
)

func TestProfileValidate(t *testing.T) {
	valid := Profile{
		Bias: -2, StdDev: 0.5, Count: 50, StartDay: 30,
		DurationDays: 20, Correlation: Independent, Quantize: true,
	}
	if err := valid.Validate(); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Profile)
	}{
		{"zero count", func(p *Profile) { p.Count = 0 }},
		{"negative stddev", func(p *Profile) { p.StdDev = -0.1 }},
		{"zero duration", func(p *Profile) { p.DurationDays = 0 }},
		{"negative start", func(p *Profile) { p.StartDay = -1 }},
		{"bad correlation", func(p *Profile) { p.Correlation = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := valid
			tt.mutate(&p)
			if err := p.Validate(); !errors.Is(err, ErrBadProfile) {
				t.Errorf("Validate = %v, want ErrBadProfile", err)
			}
		})
	}
}

func TestProfileArrivalInterval(t *testing.T) {
	p := Profile{Count: 50, DurationDays: 150}
	if got := p.ArrivalInterval(); got != 3 {
		t.Errorf("ArrivalInterval = %v, want 3", got)
	}
	if got := (Profile{}).ArrivalInterval(); got != 0 {
		t.Errorf("empty ArrivalInterval = %v", got)
	}
}

func TestCorrelationModeString(t *testing.T) {
	if Independent.String() != "independent" ||
		Shuffled.String() != "shuffled" ||
		HeuristicAnti.String() != "heuristic-anti" {
		t.Error("mode names wrong")
	}
	if CorrelationMode(9).String() != "correlation(9)" {
		t.Error("unknown mode name wrong")
	}
}

func TestGenerateValuesMoments(t *testing.T) {
	rng := stats.NewRNG(1)
	tests := []struct {
		bias, sigma float64
	}{
		{-2, 0.5}, {-1, 1.0}, {-3.5, 0.2}, {0.5, 0.3},
	}
	for _, tt := range tests {
		vals := GenerateValues(rng, 4.0, tt.bias, tt.sigma, 400, false)
		wantMean := stats.Clamp(4.0+tt.bias, 0, 5)
		if got := stats.Mean(vals); math.Abs(got-wantMean) > 0.12 {
			t.Errorf("bias %v: mean = %v, want ≈%v", tt.bias, got, wantMean)
		}
		if got := stats.SampleStdDev(vals); math.Abs(got-tt.sigma) > 0.25 {
			t.Errorf("bias %v: stddev = %v, want ≈%v", tt.bias, got, tt.sigma)
		}
		for _, v := range vals {
			if v < 0 || v > 5 {
				t.Fatalf("value %v out of range", v)
			}
		}
	}
}

func TestGenerateValuesQuantized(t *testing.T) {
	rng := stats.NewRNG(2)
	vals := GenerateValues(rng, 4.0, -2, 0.7, 100, true)
	for _, v := range vals {
		if math.Mod(v*2, 1) != 0 {
			t.Fatalf("value %v not half-star quantized", v)
		}
	}
}

func TestGenerateValuesEmpty(t *testing.T) {
	if got := GenerateValues(stats.NewRNG(1), 4, -2, 0.5, 0, false); got != nil {
		t.Errorf("n=0 returned %v", got)
	}
}

func TestMeasureBiasAndSpread(t *testing.T) {
	unfair := []float64{1, 1, 1, 1}
	fair := []float64{4, 4, 4, 4}
	if got := MeasureBias(unfair, fair); got != -3 {
		t.Errorf("MeasureBias = %v, want -3", got)
	}
	if got := MeasureSpread([]float64{1, 3}); math.Abs(got-math.Sqrt2) > 1e-9 {
		t.Errorf("MeasureSpread = %v", got)
	}
}

func TestGenerateTimesPatterns(t *testing.T) {
	rng := stats.NewRNG(3)
	for _, pattern := range []TimePattern{UniformJitter, PoissonArrivals, FrontLoaded} {
		ts := GenerateTimes(rng, 30, 20, 50, pattern)
		if len(ts) != 50 {
			t.Fatalf("pattern %d: %d times", pattern, len(ts))
		}
		if !sort.Float64sAreSorted(ts) {
			t.Errorf("pattern %d: not sorted", pattern)
		}
		for _, tm := range ts {
			if tm < 30 || tm >= 50 {
				t.Fatalf("pattern %d: time %v outside [30,50)", pattern, tm)
			}
		}
	}
}

func TestGenerateTimesFrontLoadedSkew(t *testing.T) {
	rng := stats.NewRNG(4)
	ts := GenerateTimes(rng, 0, 10, 500, FrontLoaded)
	firstHalf := 0
	for _, tm := range ts {
		if tm < 5 {
			firstHalf++
		}
	}
	if firstHalf < 300 {
		t.Errorf("front-loaded put only %d/500 in the first half", firstHalf)
	}
}

func TestGenerateTimesEdgeCases(t *testing.T) {
	rng := stats.NewRNG(5)
	if got := GenerateTimes(rng, 0, 10, 0, UniformJitter); got != nil {
		t.Errorf("n=0 returned %v", got)
	}
	if got := GenerateTimes(rng, 0, 0, 5, UniformJitter); got != nil {
		t.Errorf("duration=0 returned %v", got)
	}
}

func fairSeriesFixture() dataset.Series {
	s := dataset.Series{}
	for d := 0; d < 100; d++ {
		v := 4.0
		if d%7 == 0 {
			v = 3.0 // occasional dips to give Procedure 3 contrast
		}
		s = append(s, dataset.Rating{Day: float64(d), Value: v, Rater: "h"})
	}
	return s
}

func TestMapValuesToTimesIndependentKeepsOrder(t *testing.T) {
	rng := stats.NewRNG(6)
	values := []float64{1, 2, 3}
	times := []float64{10, 20, 30}
	pairs := MapValuesToTimes(rng, values, times, Independent, nil)
	for i := range pairs {
		if pairs[i].Value != values[i] || pairs[i].Day != times[i] {
			t.Errorf("pair %d = %+v", i, pairs[i])
		}
	}
}

func TestMapValuesToTimesShuffledIsPermutation(t *testing.T) {
	rng := stats.NewRNG(7)
	values := []float64{1, 2, 3, 4, 5}
	times := []float64{10, 20, 30, 40, 50}
	pairs := MapValuesToTimes(rng, values, times, Shuffled, nil)
	got := make([]float64, len(pairs))
	for i, p := range pairs {
		got[i] = p.Value
	}
	sort.Float64s(got)
	for i, v := range got {
		if v != values[i] {
			t.Fatalf("shuffled values are not a permutation: %v", got)
		}
	}
}

func TestMapValuesToTimesHeuristicAntiCorrelates(t *testing.T) {
	rng := stats.NewRNG(8)
	fair := fairSeriesFixture()
	// Two-point value set: the low value must be matched against high fair
	// values and vice versa.
	values := []float64{0.5, 4.0}
	times := []float64{7.5, 8.5} // fair value before 7.5 is 3.0 (day-7 dip), before 8.5 is 4.0
	pairs := MapValuesToTimes(rng, values, times, HeuristicAnti, fair)
	// At t=7.5 fair NearV = 3.0: farthest of {0.5, 4.0} is 0.5 (dist 2.5)
	// vs 4.0 (dist 1.0) → picks 0.5. At t=8.5 the remaining 4.0.
	if pairs[0].Value != 0.5 || pairs[1].Value != 4.0 {
		t.Errorf("heuristic mapping = %+v", pairs)
	}
}

func TestMapValuesToTimesPermutationProperty(t *testing.T) {
	f := func(raw []uint8, seed uint64) bool {
		if len(raw) == 0 {
			return true
		}
		values := make([]float64, len(raw))
		times := make([]float64, len(raw))
		for i, v := range raw {
			values[i] = float64(v%11) / 2
			times[i] = float64(i) + 0.5
		}
		fair := fairSeriesFixture()
		for _, mode := range []CorrelationMode{Independent, Shuffled, HeuristicAnti} {
			pairs := MapValuesToTimes(stats.NewRNG(seed), values, times, mode, fair)
			if len(pairs) != len(values) {
				return false
			}
			got := make([]float64, len(pairs))
			for i, p := range pairs {
				got[i] = p.Value
			}
			sort.Float64s(got)
			want := append([]float64(nil), values...)
			sort.Float64s(want)
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFairValueBefore(t *testing.T) {
	fair := dataset.Series{{Day: 10, Value: 4}, {Day: 20, Value: 2}}
	if got := fairValueBefore(fair, 15); got != 4 {
		t.Errorf("before 15 = %v, want 4", got)
	}
	if got := fairValueBefore(fair, 25); got != 2 {
		t.Errorf("before 25 = %v, want 2", got)
	}
	if got := fairValueBefore(fair, 5); got != 4 {
		t.Errorf("before first = %v, want first value", got)
	}
	if got := fairValueBefore(nil, 5); got != 2.5 {
		t.Errorf("empty fair = %v, want midpoint", got)
	}
}

// Property: generated values stay in the rating range and (when quantized)
// on the half-star grid, for arbitrary bias/σ requests.
func TestGenerateValuesBoundsProperty(t *testing.T) {
	f := func(biasRaw, sigmaRaw uint8, seed uint64) bool {
		bias := -4 + float64(biasRaw%50)/10 // −4 … 0.9
		sigma := float64(sigmaRaw%20) / 10  // 0 … 1.9
		vals := GenerateValues(stats.NewRNG(seed), 4.0, bias, sigma, 30, true)
		for _, v := range vals {
			if v < dataset.MinValue || v > dataset.MaxValue {
				return false
			}
			if math.Mod(v*2, 1) != 0 {
				return false
			}
		}
		return len(vals) == 30
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: generated times are sorted and inside the attack window for
// every pattern.
func TestGenerateTimesWindowProperty(t *testing.T) {
	f := func(startRaw, durRaw, nRaw uint8, seed uint64) bool {
		start := float64(startRaw % 100)
		dur := 1 + float64(durRaw%60)
		n := 1 + int(nRaw%60)
		for _, pattern := range []TimePattern{UniformJitter, PoissonArrivals, FrontLoaded} {
			ts := GenerateTimes(stats.NewRNG(seed), start, dur, n, pattern)
			if len(ts) != n {
				return false
			}
			prev := math.Inf(-1)
			for _, tm := range ts {
				if tm < start || tm >= start+dur || tm < prev {
					return false
				}
				prev = tm
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
