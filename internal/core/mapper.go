package core

import (
	"math/rand/v2"
	"sort"

	"repro/internal/dataset"
)

// MapValuesToTimes implements the value–time mapper of Figure 8: it pairs
// the generated value set with the generated time set according to the
// correlation mode. fair is the product's fair rating series, consulted
// only by the HeuristicAnti mode (Procedure 3). The returned pairs are
// sorted by time.
func MapValuesToTimes(rng *rand.Rand, values, times []float64, mode CorrelationMode, fair dataset.Series) []ValueTime {
	n := len(values)
	if len(times) < n {
		n = len(times)
	}
	vals := append([]float64(nil), values[:n]...)
	ts := append([]float64(nil), times[:n]...)
	sort.Float64s(ts)
	switch mode {
	case Shuffled:
		rng.Shuffle(n, func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
		return zip(ts, vals)
	case HeuristicAnti:
		return heuristicAnti(ts, vals, fair)
	default: // Independent
		return zip(ts, vals)
	}
}

// ValueTime is one scheduled unfair rating.
type ValueTime struct {
	Day   float64
	Value float64
}

func zip(ts, vals []float64) []ValueTime {
	out := make([]ValueTime, len(ts))
	for i := range ts {
		out[i] = ValueTime{Day: ts[i], Value: vals[i]}
	}
	return out
}

// heuristicAnti implements Procedure 3: repeatedly take the earliest
// remaining attack time, find the fair rating value given just before that
// time, and assign it the remaining unfair value farthest from that fair
// value. This anti-correlates unfair ratings with the fair signal, which
// Section V-D shows increases manipulation power.
func heuristicAnti(ts, vals []float64, fair dataset.Series) []ValueTime {
	remaining := append([]float64(nil), vals...)
	out := make([]ValueTime, 0, len(ts))
	for _, t := range ts { // ts is sorted: earliest first
		nearV := fairValueBefore(fair, t)
		best := 0
		bestDist := -1.0
		for i, v := range remaining {
			if d := abs(v - nearV); d > bestDist {
				best, bestDist = i, d
			}
		}
		out = append(out, ValueTime{Day: t, Value: remaining[best]})
		remaining = append(remaining[:best], remaining[best+1:]...)
	}
	return out
}

// fairValueBefore returns the value of the last fair rating at or before
// day t (falling back to the first fair rating, then to the scale midpoint
// when the series is empty).
func fairValueBefore(fair dataset.Series, t float64) float64 {
	if len(fair) == 0 {
		return (dataset.MinValue + dataset.MaxValue) / 2
	}
	idx := sort.Search(len(fair), func(i int) bool { return fair[i].Day > t })
	if idx == 0 {
		return fair[0].Value
	}
	return fair[idx-1].Value
}
