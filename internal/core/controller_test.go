package core

import (
	"errors"
	"math"
	"testing"
)

func TestRegionGeometry(t *testing.T) {
	r := Region{BiasLo: -4, BiasHi: 0, SigmaLo: 0, SigmaHi: 2}
	b, s := r.Center()
	if b != -2 || s != 1 {
		t.Errorf("Center = (%v,%v)", b, s)
	}
	if r.BiasSpan() != 4 || r.SigmaSpan() != 2 {
		t.Errorf("spans = (%v,%v)", r.BiasSpan(), r.SigmaSpan())
	}
	if !r.Valid() {
		t.Error("valid region rejected")
	}
	if (Region{BiasLo: 0, BiasHi: 0}).Valid() {
		t.Error("degenerate region accepted")
	}
	if (Region{BiasLo: -1, BiasHi: 0, SigmaLo: -1, SigmaHi: 1}).Valid() {
		t.Error("negative sigma region accepted")
	}
}

func TestRegionQuadrants(t *testing.T) {
	r := Region{BiasLo: -4, BiasHi: 0, SigmaLo: 0, SigmaHi: 2}
	qs := r.quadrants(0)
	if len(qs) != 4 {
		t.Fatalf("quadrants = %d", len(qs))
	}
	for _, q := range qs {
		if !q.Valid() {
			t.Errorf("invalid quadrant %+v", q)
		}
		if q.BiasLo < r.BiasLo || q.BiasHi > r.BiasHi || q.SigmaLo < r.SigmaLo || q.SigmaHi > r.SigmaHi {
			t.Errorf("quadrant %+v escapes parent", q)
		}
		if math.Abs(q.BiasSpan()-2) > 1e-9 || math.Abs(q.SigmaSpan()-1) > 1e-9 {
			t.Errorf("quadrant %+v wrong size without overlap", q)
		}
	}
	// With overlap, quadrants grow but stay inside the parent.
	for _, q := range r.quadrants(0.2) {
		if q.BiasLo < r.BiasLo || q.BiasHi > r.BiasHi {
			t.Errorf("overlapping quadrant %+v escapes parent", q)
		}
		if q.BiasSpan() <= 2 {
			t.Errorf("overlapping quadrant %+v did not grow", q)
		}
	}
}

func TestSearchConfigValidate(t *testing.T) {
	good := DefaultSearchConfig()
	if err := good.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*SearchConfig)
	}{
		{"bad region", func(c *SearchConfig) { c.Initial = Region{} }},
		{"zero trials", func(c *SearchConfig) { c.Trials = 0 }},
		{"zero rounds", func(c *SearchConfig) { c.MaxRounds = 0 }},
		{"overlap ≥ 1", func(c *SearchConfig) { c.Overlap = 1 }},
		{"negative overlap", func(c *SearchConfig) { c.Overlap = -0.1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := good
			tt.mutate(&c)
			if err := c.Validate(); !errors.Is(err, ErrBadSearch) {
				t.Errorf("Validate = %v, want ErrBadSearch", err)
			}
		})
	}
}

func TestSearchConvergesToPlantedOptimum(t *testing.T) {
	// Plant a smooth MP landscape with its maximum at (−2.3, 1.5) — the
	// region the paper's Figure 5 search converges to — and check the
	// search lands nearby.
	cfg := DefaultSearchConfig()
	eval := func(bias, sigma float64, trial int) float64 {
		db := bias + 2.3
		ds := sigma - 1.5
		noise := 0.02 * float64(trial%3)
		return 2*math.Exp(-(db*db+ds*ds)) + noise
	}
	res, err := SearchOptimalRegion(cfg, eval)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.BestBias-(-2.3)) > 0.8 {
		t.Errorf("BestBias = %v, want ≈ -2.3", res.BestBias)
	}
	if math.Abs(res.BestSigma-1.5) > 0.5 {
		t.Errorf("BestSigma = %v, want ≈ 1.5", res.BestSigma)
	}
	if len(res.Steps) == 0 {
		t.Fatal("no search steps recorded")
	}
	// The interested-area must shrink monotonically.
	prev := cfg.Initial
	for i, step := range res.Steps {
		if step.Chosen.BiasSpan() > prev.BiasSpan()+1e-9 || step.Chosen.SigmaSpan() > prev.SigmaSpan()+1e-9 {
			t.Errorf("step %d grew the area: %+v -> %+v", i, prev, step.Chosen)
		}
		prev = step.Chosen
	}
	if !res.Final.Valid() {
		t.Error("final region invalid")
	}
	if res.BestMP <= 0 {
		t.Errorf("BestMP = %v", res.BestMP)
	}
}

func TestSearchStopsAtThreshold(t *testing.T) {
	cfg := DefaultSearchConfig()
	cfg.MinBiasSpan = 3 // stop almost immediately
	cfg.MinSigmaSpan = 1.5
	res, err := SearchOptimalRegion(cfg, func(b, s float64, trial int) float64 { return -b })
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 1 {
		t.Errorf("steps = %d, want 1 (threshold met after first shrink)", len(res.Steps))
	}
}

func TestSearchInvalidConfig(t *testing.T) {
	_, err := SearchOptimalRegion(SearchConfig{}, func(b, s float64, trial int) float64 { return 0 })
	if !errors.Is(err, ErrBadSearch) {
		t.Errorf("error = %v, want ErrBadSearch", err)
	}
}
