package core

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// ParameterRanges is the user input of Figure 8's parameter controller:
// ranges for every attack feature rather than point values.
type ParameterRanges struct {
	// Region bounds bias (horizontal) and standard deviation (vertical).
	Region Region
	// CountMin/Max bound the number of unfair ratings.
	CountMin, CountMax int
	// DurationMin/Max bound the attack duration in days (with count, this
	// spans the arrival-rate axis of Section V-C).
	DurationMin, DurationMax float64
	// StartMin/Max bound the attack start day.
	StartMin, StartMax float64
	// Correlations lists the value–time mappings to explore (empty =
	// Independent only).
	Correlations []CorrelationMode
}

// Validate reports the first problem with the ranges.
func (p ParameterRanges) Validate() error {
	switch {
	case !p.Region.Valid():
		return fmt.Errorf("%w: region %+v", ErrBadSearch, p.Region)
	case p.CountMin <= 0 || p.CountMax < p.CountMin:
		return fmt.Errorf("%w: counts [%d,%d]", ErrBadSearch, p.CountMin, p.CountMax)
	case p.DurationMin <= 0 || p.DurationMax < p.DurationMin:
		return fmt.Errorf("%w: durations [%v,%v]", ErrBadSearch, p.DurationMin, p.DurationMax)
	case p.StartMin < 0 || p.StartMax < p.StartMin:
		return fmt.Errorf("%w: starts [%v,%v]", ErrBadSearch, p.StartMin, p.StartMax)
	}
	return nil
}

func (p ParameterRanges) correlations() []CorrelationMode {
	if len(p.Correlations) == 0 {
		return []CorrelationMode{Independent}
	}
	return p.Correlations
}

// Controller is the Figure 8 parameter controller: it draws attacks from
// the user's parameter ranges, scores them through the attack-effect
// feedback loop, and refines the value-set parameters with Procedure 2.
type Controller struct {
	// Raters is the biased-rater pool.
	Raters []string
	// Seed drives all random draws.
	Seed uint64
	// Score closes the feedback loop of Figure 8: it applies the attack
	// to the rating system under evaluation and returns the attack effect
	// (manipulation power).
	Score func(Attack) float64
}

// BestResult is the controller's output.
type BestResult struct {
	Attack  Attack
	Profile Profile
	MP      float64
	// Evaluations is the number of attacks generated and scored.
	Evaluations int
}

// BestAttack explores the ranges with budget random draws, then runs a
// Procedure 2 refinement of (bias, σ) around the best draw's timing
// parameters, and returns the strongest attack found against the target
// product.
func (c *Controller) BestAttack(target string, fair map[string]dataset.Series, ranges ParameterRanges, budget int) (BestResult, error) {
	if err := ranges.Validate(); err != nil {
		return BestResult{}, err
	}
	if c.Score == nil {
		return BestResult{}, fmt.Errorf("%w: controller without Score", ErrBadSearch)
	}
	if budget <= 0 {
		budget = 20
	}
	rng := stats.NewRNG(c.Seed)
	best := BestResult{MP: -1}

	try := func(p Profile) (float64, error) {
		gen := NewGenerator(rng.Uint64(), c.Raters)
		atk, err := gen.Generate(map[string]Profile{target: p}, fair)
		if err != nil {
			return 0, err
		}
		evals := best.Evaluations + 1
		v := c.Score(atk)
		if v > best.MP {
			best = BestResult{Attack: atk, Profile: p, MP: v}
		}
		best.Evaluations = evals
		return v, nil
	}

	// Phase 1: random exploration of the full ranges.
	for i := 0; i < budget; i++ {
		if _, err := try(c.drawProfile(rng, ranges)); err != nil {
			return BestResult{}, err
		}
	}

	// Phase 2: Procedure 2 refinement of (bias, σ) with the best timing.
	timing := best.Profile
	search := SearchConfig{
		Initial:      ranges.Region,
		Trials:       3,
		Overlap:      0.1,
		MinBiasSpan:  ranges.Region.BiasSpan() / 8,
		MinSigmaSpan: ranges.Region.SigmaSpan() / 8,
		MaxRounds:    4,
	}
	_, err := SearchOptimalRegion(search, func(bias, sigma float64, trial int) float64 {
		p := timing
		p.Bias = bias
		p.StdDev = sigma
		v, err := try(p)
		if err != nil {
			return 0
		}
		return v
	})
	if err != nil {
		return BestResult{}, err
	}
	return best, nil
}

func (c *Controller) drawProfile(rng *rand.Rand, ranges ParameterRanges) Profile {
	modes := ranges.correlations()
	bias := ranges.Region.BiasLo + rng.Float64()*ranges.Region.BiasSpan()
	sigma := ranges.Region.SigmaLo + rng.Float64()*ranges.Region.SigmaSpan()
	count := ranges.CountMin + rng.IntN(ranges.CountMax-ranges.CountMin+1)
	if count > len(c.Raters) {
		count = len(c.Raters)
	}
	duration := ranges.DurationMin + rng.Float64()*(ranges.DurationMax-ranges.DurationMin)
	start := ranges.StartMin + rng.Float64()*(ranges.StartMax-ranges.StartMin)
	return Profile{
		Bias:         bias,
		StdDev:       sigma,
		Count:        count,
		StartDay:     start,
		DurationDays: duration,
		Correlation:  modes[rng.IntN(len(modes))],
		Quantize:     true,
	}
}
