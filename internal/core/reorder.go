package core

import (
	"math/rand/v2"
	"sort"

	"repro/internal/dataset"
)

// Reorder returns a copy of the attack in which each product's unfair
// rating *values* are re-paired with the same rating *times* according to
// the correlation mode — the Section V-D experiment that takes real
// submissions and changes only the order in which the values are given.
// Rater identities stay attached to the time slots.
func (a Attack) Reorder(rng *rand.Rand, mode CorrelationMode, fairByProduct map[string]dataset.Series) Attack {
	out := Attack{Ratings: make(map[string]dataset.Series, len(a.Ratings))}
	ids := make([]string, 0, len(a.Ratings))
	for id := range a.Ratings {
		ids = append(ids, id)
	}
	sort.Strings(ids) // deterministic PRNG consumption order
	for _, id := range ids {
		s := a.Ratings[id]
		values := s.Values()
		times := s.Days()
		pairs := MapValuesToTimes(rng, values, times, mode, fairByProduct[id])
		ns := make(dataset.Series, len(s))
		for i := range s {
			ns[i] = s[i] // keeps Day, Rater, Unfair
			ns[i].Value = pairs[i].Value
		}
		out.Ratings[id] = ns
	}
	return out
}
