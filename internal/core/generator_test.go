package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
)

func testProfile() Profile {
	return Profile{
		Bias: -2.5, StdDev: 0.6, Count: 50, StartDay: 40,
		DurationDays: 25, Correlation: Independent, Quantize: true,
	}
}

func TestGeneratorGenerateProduct(t *testing.T) {
	g := NewGenerator(1, DefaultRaters(50))
	fair := fairSeriesFixture()
	s, err := g.GenerateProduct(testProfile(), fair)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 50 {
		t.Fatalf("got %d ratings", len(s))
	}
	seen := make(map[string]bool)
	for _, r := range s {
		if !r.Unfair {
			t.Fatal("unfair rating missing ground-truth tag")
		}
		if r.Day < 40 || r.Day >= 65 {
			t.Fatalf("rating day %v outside attack window", r.Day)
		}
		if r.Value < 0 || r.Value > 5 {
			t.Fatalf("rating value %v out of range", r.Value)
		}
		if seen[r.Rater] {
			t.Fatalf("rater %s used twice on one product", r.Rater)
		}
		seen[r.Rater] = true
	}
	// Realized bias should track the profile.
	bias := MeasureBias(s.Values(), fair.Values())
	if math.Abs(bias-(-2.5)) > 0.4 {
		t.Errorf("realized bias = %v, want ≈ -2.5", bias)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	fair := fairSeriesFixture()
	s1, err := NewGenerator(9, DefaultRaters(50)).GenerateProduct(testProfile(), fair)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewGenerator(9, DefaultRaters(50)).GenerateProduct(testProfile(), fair)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) != len(s2) {
		t.Fatal("same seed different lengths")
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("same seed diverged at %d: %+v vs %+v", i, s1[i], s2[i])
		}
	}
}

func TestGeneratorRaterLimit(t *testing.T) {
	g := NewGenerator(1, DefaultRaters(10))
	p := testProfile() // Count = 50 > 10 raters
	if _, err := g.GenerateProduct(p, fairSeriesFixture()); !errors.Is(err, ErrNotEnoughRaters) {
		t.Errorf("error = %v, want ErrNotEnoughRaters", err)
	}
}

func TestGeneratorInvalidProfile(t *testing.T) {
	g := NewGenerator(1, DefaultRaters(50))
	p := testProfile()
	p.Count = 0
	if _, err := g.GenerateProduct(p, fairSeriesFixture()); !errors.Is(err, ErrBadProfile) {
		t.Errorf("error = %v, want ErrBadProfile", err)
	}
}

func TestGenerateMultiProduct(t *testing.T) {
	g := NewGenerator(2, DefaultRaters(50))
	fair := map[string]dataset.Series{
		"tv1": fairSeriesFixture(),
		"tv2": fairSeriesFixture(),
	}
	profiles := map[string]Profile{
		"tv1": testProfile(),
		"tv2": func() Profile { p := testProfile(); p.Bias = 0.8; return p }(),
	}
	atk, err := g.Generate(profiles, fair)
	if err != nil {
		t.Fatal(err)
	}
	if atk.TotalRatings() != 100 {
		t.Errorf("TotalRatings = %d, want 100", atk.TotalRatings())
	}
	if len(atk.Ratings["tv1"]) != 50 || len(atk.Ratings["tv2"]) != 50 {
		t.Error("per-product counts wrong")
	}
}

func TestGenerateMissingFairSeries(t *testing.T) {
	g := NewGenerator(2, DefaultRaters(50))
	_, err := g.Generate(map[string]Profile{"tvX": testProfile()}, nil)
	if !errors.Is(err, ErrBadProfile) {
		t.Errorf("error = %v, want ErrBadProfile", err)
	}
}

func TestAttackApply(t *testing.T) {
	cfg := dataset.DefaultFairConfig()
	cfg.Products = 2
	cfg.HorizonDays = 100
	d, err := dataset.GenerateFair(stats.NewRNG(4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	prod, _ := d.Product("tv1")
	g := NewGenerator(5, DefaultRaters(50))
	s, err := g.GenerateProduct(testProfile(), prod.Ratings)
	if err != nil {
		t.Fatal(err)
	}
	atk := Attack{Ratings: map[string]dataset.Series{"tv1": s}}
	before := len(prod.Ratings)
	out, err := atk.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	after, _ := out.Product("tv1")
	if len(after.Ratings) != before+50 {
		t.Errorf("attacked product has %d ratings, want %d", len(after.Ratings), before+50)
	}
	// Original untouched.
	if len(prod.Ratings) != before {
		t.Error("Apply mutated the original dataset")
	}
	// Unknown product errors.
	bad := Attack{Ratings: map[string]dataset.Series{"nope": s}}
	if _, err := bad.Apply(d); err == nil {
		t.Error("Apply with unknown product: want error")
	}
}

func TestDefaultRaters(t *testing.T) {
	rs := DefaultRaters(3)
	if len(rs) != 3 || rs[0] != "biased00" || rs[2] != "biased02" {
		t.Errorf("DefaultRaters = %v", rs)
	}
}
