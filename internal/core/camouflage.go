package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// Camouflage describes the trust-bootstrapping collusion pattern (an
// extension beyond the paper's collected attacks, in the direction of the
// collusion models it cites): before — or while — attacking the targets,
// the biased raters also submit honest-looking ratings on non-target
// products so the defense's trust manager accrues S evidence for them and
// Eq. 7 gives their later unfair ratings full weight.
type Camouflage struct {
	// Products are the non-target products to rate honestly.
	Products []string
	// RatersPerProduct is how many of the biased raters rate each
	// camouflage product (capped at the generator's rater pool).
	RatersPerProduct int
	// StartDay / DurationDays place the camouflage window.
	StartDay     float64
	DurationDays float64
	// Sigma is the noise around each product's fair mean (default-like
	// honest noise ≈ 0.6 makes the ratings indistinguishable).
	Sigma float64
}

// Validate reports the first problem with the camouflage plan.
func (c Camouflage) Validate() error {
	switch {
	case len(c.Products) == 0:
		return fmt.Errorf("%w: camouflage without products", ErrBadProfile)
	case c.RatersPerProduct <= 0:
		return fmt.Errorf("%w: camouflage raters %d", ErrBadProfile, c.RatersPerProduct)
	case c.DurationDays <= 0:
		return fmt.Errorf("%w: camouflage duration %v", ErrBadProfile, c.DurationDays)
	case c.Sigma < 0:
		return fmt.Errorf("%w: camouflage sigma %v", ErrBadProfile, c.Sigma)
	}
	return nil
}

// GenerateCamouflage produces the honest-looking ratings of the plan, one
// product series per camouflage product. The ratings carry the ground-truth
// Unfair tag (they are part of the manipulation even though their values
// are honest) and are signed by the generator's biased raters.
func (g *Generator) GenerateCamouflage(c Camouflage, fairByProduct map[string]dataset.Series) (Attack, error) {
	if err := c.Validate(); err != nil {
		return Attack{}, err
	}
	n := c.RatersPerProduct
	if n > len(g.raters) {
		n = len(g.raters)
	}
	atk := Attack{Ratings: make(map[string]dataset.Series, len(c.Products))}
	for _, id := range c.Products {
		fair, ok := fairByProduct[id]
		if !ok {
			return Attack{}, fmt.Errorf("%w: no fair series for camouflage product %q", ErrBadProfile, id)
		}
		mean := fair.Mean()
		times := GenerateTimes(g.rng, c.StartDay, c.DurationDays, n, g.TimePattern)
		order := g.rng.Perm(len(g.raters))
		series := make(dataset.Series, len(times))
		for i, day := range times {
			v := stats.Clamp(mean+g.rng.NormFloat64()*c.Sigma, dataset.MinValue, dataset.MaxValue)
			series[i] = dataset.Rating{
				Day:    day,
				Value:  dataset.QuantizeHalfStar(v),
				Rater:  g.raters[order[i]],
				Unfair: true,
			}
		}
		series.Sort()
		atk.Ratings[id] = series
	}
	return atk, nil
}

// Merge combines two attacks (e.g. a camouflage phase and a strike phase)
// into one submission. Product series are concatenated and re-sorted.
func (a Attack) Merge(other Attack) Attack {
	out := Attack{Ratings: make(map[string]dataset.Series, len(a.Ratings)+len(other.Ratings))}
	for id, s := range a.Ratings {
		out.Ratings[id] = s.Clone()
	}
	for id, s := range other.Ratings {
		if existing, ok := out.Ratings[id]; ok {
			out.Ratings[id] = existing.Merge(s)
		} else {
			out.Ratings[id] = s.Clone()
		}
	}
	return out
}
