package core

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// Attack is one complete submission: unfair rating series per target
// product, ready to inject into a dataset.
type Attack struct {
	// Ratings maps product ID to the unfair ratings inserted against it.
	Ratings map[string]dataset.Series
}

// TotalRatings returns the number of unfair ratings across all products.
func (a Attack) TotalRatings() int {
	n := 0
	for _, s := range a.Ratings {
		n += len(s)
	}
	return n
}

// Apply injects the attack into a clone of the dataset and returns it.
func (a Attack) Apply(d *dataset.Dataset) (*dataset.Dataset, error) {
	out := d.Clone()
	for id, s := range a.Ratings {
		if err := out.InjectUnfair(id, s); err != nil {
			return nil, fmt.Errorf("apply attack: %w", err)
		}
	}
	return out, nil
}

// Generator assembles unfair-rating sequences from attack profiles — the
// attack generator of Figure 8. It owns a deterministic PRNG and the pool
// of biased rater identities (the challenge gives participants 50).
type Generator struct {
	rng    *rand.Rand
	raters []string
	// TimePattern selects the time-set generator's arrival pattern
	// (UniformJitter by default).
	TimePattern TimePattern
}

// NewGenerator returns a generator drawing randomness from seed and issuing
// ratings from the given biased-rater pool.
func NewGenerator(seed uint64, raters []string) *Generator {
	pool := make([]string, len(raters))
	copy(pool, raters)
	return &Generator{
		rng:         stats.NewRNG(seed),
		raters:      pool,
		TimePattern: UniformJitter,
	}
}

// DefaultRaters returns n biased rater IDs ("biased00"…), the challenge's
// attacker-controlled identities.
func DefaultRaters(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("biased%02d", i)
	}
	return out
}

// GenerateProduct builds the unfair rating series for one product: values
// from the value-set generator, times from the time-set generator, paired
// by the value–time mapper, and signed by distinct biased raters (each
// rater rates a product at most once).
func (g *Generator) GenerateProduct(p Profile, fair dataset.Series) (dataset.Series, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Count > len(g.raters) {
		return nil, fmt.Errorf("%w: need %d, have %d", ErrNotEnoughRaters, p.Count, len(g.raters))
	}
	fairMean := fair.Mean()
	values := GenerateValues(g.rng, fairMean, p.Bias, p.StdDev, p.Count, p.Quantize)
	times := GenerateTimes(g.rng, p.StartDay, p.DurationDays, p.Count, g.TimePattern)
	pairs := MapValuesToTimes(g.rng, values, times, p.Correlation, fair)

	// Assign raters in shuffled order so rater identity carries no signal.
	order := g.rng.Perm(len(g.raters))
	out := make(dataset.Series, len(pairs))
	for i, vt := range pairs {
		out[i] = dataset.Rating{
			Day:    vt.Day,
			Value:  vt.Value,
			Rater:  g.raters[order[i]],
			Unfair: true,
		}
	}
	out.Sort()
	return out, nil
}

// Generate builds a full multi-product attack from per-product profiles.
// fairByProduct supplies each target's fair rating series (used for the
// fair mean and for Procedure 3 correlation).
func (g *Generator) Generate(profiles map[string]Profile, fairByProduct map[string]dataset.Series) (Attack, error) {
	atk := Attack{Ratings: make(map[string]dataset.Series, len(profiles))}
	// Iterate in sorted product order: map order is randomized and would
	// desynchronize the generator's PRNG stream between runs.
	ids := make([]string, 0, len(profiles))
	for id := range profiles {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fair, ok := fairByProduct[id]
		if !ok {
			return Attack{}, fmt.Errorf("%w: no fair series for product %q", ErrBadProfile, id)
		}
		s, err := g.GenerateProduct(profiles[id], fair)
		if err != nil {
			return Attack{}, fmt.Errorf("product %q: %w", id, err)
		}
		atk.Ratings[id] = s
	}
	return atk, nil
}
