package agg

import (
	"math"

	"repro/internal/dataset"
	"repro/internal/stats"
	"repro/internal/trust"
)

// WhitbyScheme is the quantile-test variant of beta-function filtering,
// following Whitby, Jøsang & Indulska's iterated filtering more literally
// than BFScheme: ratings are normalized to [0,1], the object's reputation
// is the mean of the aggregated beta distribution, and a rating is filtered
// when that reputation falls outside the [Q, 1−Q] quantile band of the
// *rater's own* beta distribution. With one rating per rater per object the
// individual beta is very wide, so only extreme mismatches get filtered —
// the behavior the paper reports for majority-rule schemes.
type WhitbyScheme struct {
	// Q is the quantile test level. Whitby et al. use 0.01 with raters
	// whose beta evidence accumulates over many ratings; in the challenge
	// each rater rates a product once, leaving a single-rating beta so
	// wide that q=0.01 rejects nothing — 0.1 is the single-shot
	// equivalent (default 0.1).
	Q float64
	// MaxIterations bounds the filter loop (default 8).
	MaxIterations int
}

var _ Scheme = (*WhitbyScheme)(nil)

// NewWhitbyScheme returns a Whitby-style quantile-filtering scheme with
// the single-shot q = 0.1 (see the Q field).
func NewWhitbyScheme() *WhitbyScheme {
	return &WhitbyScheme{Q: 0.1, MaxIterations: 8}
}

// Name implements Scheme.
func (*WhitbyScheme) Name() string { return "WBF" }

// Aggregates implements Scheme.
func (w *WhitbyScheme) Aggregates(d *dataset.Dataset) Table {
	mgr := trust.NewManager()
	n := Periods(d.HorizonDays)
	out := make(Table, len(d.Products))
	for _, p := range d.Products {
		out[p.ID] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		lo, hi := PeriodInterval(i, d.HorizonDays)
		for _, p := range d.Products {
			period := p.Ratings.Between(lo, hi)
			if len(period) == 0 {
				out[p.ID][i] = math.NaN()
				continue
			}
			kept := w.filter(period)
			updatePeriodTrust(mgr, period, kept)
			out[p.ID][i] = weightedMean(period, kept, mgr.Trust)
		}
	}
	return out
}

// filter iterates the quantile test until no rating is removed.
func (w *WhitbyScheme) filter(period dataset.Series) []bool {
	kept := make([]bool, len(period))
	for i := range kept {
		kept[i] = true
	}
	maxIter := w.MaxIterations
	if maxIter <= 0 {
		maxIter = 1
	}
	for iter := 0; iter < maxIter; iter++ {
		rep, ok := combinedReputation(period, kept)
		if !ok {
			break
		}
		removed := false
		for i, r := range period {
			if !kept[i] {
				continue
			}
			// The rater's individual beta from this single rating.
			p := r.Value / dataset.MaxValue
			rater := stats.Beta{Alpha: 1 + p, Beta: 1 + (1 - p)}
			if rep < rater.Quantile(w.Q) || rep > rater.Quantile(1-w.Q) {
				kept[i] = false
				removed = true
			}
		}
		if !removed {
			break
		}
	}
	return kept
}

// combinedReputation returns the mean of the beta distribution aggregated
// from the kept ratings (normalized to [0,1]).
func combinedReputation(period dataset.Series, kept []bool) (float64, bool) {
	alpha, beta := 1.0, 1.0
	any := false
	for i, r := range period {
		if !kept[i] {
			continue
		}
		p := r.Value / dataset.MaxValue
		alpha += p
		beta += 1 - p
		any = true
	}
	if !any {
		return 0, false
	}
	return alpha / (alpha + beta), true
}

// updatePeriodTrust folds one period's keep-mask into the trust manager
// (shared by the majority-rule schemes).
func updatePeriodTrust(mgr *trust.Manager, period dataset.Series, kept []bool) {
	type counts struct{ n, f int }
	perRater := make(map[string]counts)
	for i, r := range period {
		c := perRater[r.Rater]
		c.n++
		if !kept[i] {
			c.f++
		}
		perRater[r.Rater] = c
	}
	//lint:orderindependent integer-count fold: Observe adds small integers to float64 evidence, which is exact and commutative, so iteration order cannot change any trust value
	for rater, c := range perRater {
		mgr.Observe(rater, c.n, c.f)
	}
}
