package agg_test

import (
	"fmt"

	"repro/internal/agg"
	"repro/internal/dataset"
	"repro/internal/mp"
)

func ExamplePScheme() {
	// One product, 60 days: honest 4s throughout, plus an unfair block of
	// 0.5s across days 35–45.
	var s dataset.Series
	for d := 0; d < 60; d++ {
		for i := 0; i < 3; i++ {
			s = append(s, dataset.Rating{
				Day: float64(d) + float64(i)/3, Value: 4,
				Rater: fmt.Sprintf("h%d-%d", d, i),
			})
		}
	}
	fair := &dataset.Dataset{HorizonDays: 60, Products: []dataset.Product{{ID: "tv1", Ratings: s}}}

	attacked := fair.Clone()
	var unfair dataset.Series
	for i := 0; i < 30; i++ {
		unfair = append(unfair, dataset.Rating{
			Day: 35 + float64(i)/3, Value: 0.5, Rater: fmt.Sprintf("bot%02d", i),
		})
	}
	if err := attacked.InjectUnfair("tv1", unfair); err != nil {
		fmt.Println("error:", err)
		return
	}

	for _, scheme := range []agg.Scheme{agg.SAScheme{}, agg.NewPScheme()} {
		res := mp.Compute(scheme.Aggregates(fair), scheme.Aggregates(attacked))
		fmt.Printf("%s manipulation power: %.2f\n", scheme.Name(), res.Overall)
	}
	// Output:
	// SA manipulation power: 0.88
	// P manipulation power: 0.00
}
