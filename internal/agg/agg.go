// Package agg implements the three rating aggregation schemes the paper
// evaluates attack data against:
//
//   - SA-scheme: simple averaging, no defense (Section V-A).
//   - BF-scheme: beta-function majority filtering in the style of Whitby,
//     Jøsang & Indulska, a representative majority-rule defense.
//   - P-scheme: the paper's proposed signal-based reliable rating
//     aggregation system (Section IV): four detectors, two-path fusion,
//     Procedure 1 beta trust, rating filter and trust-weighted aggregation
//     (Eq. 7).
//
// All schemes aggregate per 30-day period — the granularity at which the
// challenge's Manipulation Power metric is computed.
package agg

import (
	"math"

	"repro/internal/dataset"
	"repro/internal/epoch"
)

// PeriodDays is the aggregation period of the rating challenge (30 days).
// The period calendar lives in internal/epoch (shared with the evaluation
// engine); these re-exports keep the scheme layer's public API stable.
const PeriodDays = epoch.PeriodDays

// Periods returns the number of (possibly partial) aggregation periods
// covering [0, horizon).
func Periods(horizon float64) int { return epoch.Periods(horizon) }

// PeriodInterval returns the day range [start, end) of period i.
func PeriodInterval(i int, horizon float64) (start, end float64) {
	return epoch.PeriodInterval(i, horizon)
}

// Table holds per-product aggregated ratings, one value per 30-day period.
// Periods without ratings hold NaN.
type Table map[string][]float64

// Scheme aggregates a whole dataset into per-product, per-period scores.
type Scheme interface {
	// Name returns a short scheme identifier ("SA", "BF", "P").
	Name() string
	// Aggregates computes the per-period aggregated rating of every
	// product in the dataset.
	Aggregates(d *dataset.Dataset) Table
}

// SAScheme is plain averaging with no unfair-rating defense.
type SAScheme struct{}

var _ Scheme = SAScheme{}

// Name implements Scheme.
func (SAScheme) Name() string { return "SA" }

// Aggregates implements Scheme: the aggregate of each period is the simple
// mean of the ratings in that period.
func (SAScheme) Aggregates(d *dataset.Dataset) Table {
	out := make(Table, len(d.Products))
	n := Periods(d.HorizonDays)
	for _, p := range d.Products {
		scores := make([]float64, n)
		for i := 0; i < n; i++ {
			lo, hi := PeriodInterval(i, d.HorizonDays)
			period := p.Ratings.Between(lo, hi)
			if len(period) == 0 {
				scores[i] = math.NaN()
				continue
			}
			scores[i] = period.Mean()
		}
		out[p.ID] = scores
	}
	return out
}
