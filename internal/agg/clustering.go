package agg

import (
	"math"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/trust"
)

// ClusteringScheme is a clustering-based unfair-rating filter in the spirit
// of Dellarocas (EC 2000), another related-work defense: each period's
// rating values are cut into two single-linkage clusters; when the clusters
// are clearly separated and one is a clear minority, the minority cluster
// is treated as a collusion block and filtered.
type ClusteringScheme struct {
	// MinGap is the minimum value separation between the two clusters for
	// the split to count (default 1.5 rating points).
	MinGap float64
	// MaxMinorityShare is the largest fraction of the period the dropped
	// cluster may hold (default 0.35 — beyond that it IS the majority
	// opinion and majority-rule logic must keep it).
	MaxMinorityShare float64
}

var _ Scheme = (*ClusteringScheme)(nil)

// NewClusteringScheme returns a clustering-filter scheme with defaults.
func NewClusteringScheme() *ClusteringScheme {
	return &ClusteringScheme{MinGap: 1.5, MaxMinorityShare: 0.35}
}

// Name implements Scheme.
func (*ClusteringScheme) Name() string { return "CLU" }

// Aggregates implements Scheme.
func (c *ClusteringScheme) Aggregates(d *dataset.Dataset) Table {
	mgr := trust.NewManager()
	n := Periods(d.HorizonDays)
	out := make(Table, len(d.Products))
	for _, p := range d.Products {
		out[p.ID] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		lo, hi := PeriodInterval(i, d.HorizonDays)
		for _, p := range d.Products {
			period := p.Ratings.Between(lo, hi)
			if len(period) == 0 {
				out[p.ID][i] = math.NaN()
				continue
			}
			kept := c.filter(period)
			updatePeriodTrust(mgr, period, kept)
			out[p.ID][i] = weightedMean(period, kept, mgr.Trust)
		}
	}
	return out
}

func (c *ClusteringScheme) filter(period dataset.Series) []bool {
	kept := make([]bool, len(period))
	for i := range kept {
		kept[i] = true
	}
	if len(period) < 4 {
		return kept
	}
	vals := period.Values()
	asg, err := cluster.SingleLinkage(vals, 2)
	if err != nil {
		return kept
	}
	sizes := asg.Sizes(2)
	if sizes[0] == 0 || sizes[1] == 0 {
		return kept
	}
	// Gap between the clusters: max of low cluster vs min of high cluster.
	lowMax := math.Inf(-1)
	highMin := math.Inf(1)
	for i, v := range vals {
		if asg[i] == 0 {
			if v > lowMax {
				lowMax = v
			}
		} else if v < highMin {
			highMin = v
		}
	}
	if highMin-lowMax < c.MinGap {
		return kept
	}
	minority := 0
	if sizes[1] < sizes[0] {
		minority = 1
	}
	if float64(sizes[minority])/float64(len(vals)) > c.MaxMinorityShare {
		return kept
	}
	for i := range period {
		if asg[i] == minority {
			kept[i] = false
		}
	}
	return kept
}
