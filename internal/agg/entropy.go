package agg

import (
	"math"

	"repro/internal/dataset"
	"repro/internal/stats"
	"repro/internal/trust"
)

// EntropyScheme is an entropy-based unfair-testimony filter in the spirit
// of Weng, Miao & Goh (IEICE 2006), one of the related-work defenses the
// paper lists: the period's ratings form an opinion histogram, and a rating
// is filtered when it is both a *rare* opinion (its bin's surprisal
// −log₂ p exceeds SurprisalThreshold) and *far* from the majority opinion
// (beyond MinDistance from the modal bin). Rare-but-nearby opinions — an
// honest 3.5 on a 4-star product — survive.
type EntropyScheme struct {
	// Bins is the number of histogram bins over the rating range
	// (default 11: one per half star).
	Bins int
	// SurprisalThreshold is the −log₂ p level above which an opinion
	// counts as rare (default 4: rarer than 1 in 16).
	SurprisalThreshold float64
	// MinDistance is how far (in rating points) from the modal opinion a
	// rare rating must sit to be filtered (default 1.5).
	MinDistance float64
	// MaxIterations bounds the filter loop (default 4).
	MaxIterations int
}

var _ Scheme = (*EntropyScheme)(nil)

// NewEntropyScheme returns an entropy-filtering scheme with defaults.
func NewEntropyScheme() *EntropyScheme {
	return &EntropyScheme{
		Bins:               11,
		SurprisalThreshold: 4,
		MinDistance:        1.5,
		MaxIterations:      4,
	}
}

// Name implements Scheme.
func (*EntropyScheme) Name() string { return "ENT" }

// Aggregates implements Scheme.
func (e *EntropyScheme) Aggregates(d *dataset.Dataset) Table {
	mgr := trust.NewManager()
	n := Periods(d.HorizonDays)
	out := make(Table, len(d.Products))
	for _, p := range d.Products {
		out[p.ID] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		lo, hi := PeriodInterval(i, d.HorizonDays)
		for _, p := range d.Products {
			period := p.Ratings.Between(lo, hi)
			if len(period) == 0 {
				out[p.ID][i] = math.NaN()
				continue
			}
			kept := e.filter(period)
			updatePeriodTrust(mgr, period, kept)
			out[p.ID][i] = weightedMean(period, kept, mgr.Trust)
		}
	}
	return out
}

func (e *EntropyScheme) filter(period dataset.Series) []bool {
	kept := make([]bool, len(period))
	for i := range kept {
		kept[i] = true
	}
	bins := e.Bins
	if bins <= 0 {
		bins = 11
	}
	maxIter := e.MaxIterations
	if maxIter <= 0 {
		maxIter = 1
	}
	for iter := 0; iter < maxIter; iter++ {
		hist, err := stats.NewHistogram(dataset.MinValue, dataset.MaxValue, bins)
		if err != nil {
			return kept
		}
		for i, r := range period {
			if kept[i] {
				hist.Add(r.Value)
			}
		}
		if hist.Total() < 3 {
			break
		}
		fractions := hist.Fractions()
		mode := hist.Mode()
		removed := false
		for i, r := range period {
			if !kept[i] {
				continue
			}
			p := fractions[binOf(r.Value, bins)]
			if p <= 0 {
				continue
			}
			surprisal := -math.Log2(p)
			if surprisal > e.SurprisalThreshold && math.Abs(r.Value-mode) > e.MinDistance {
				kept[i] = false
				removed = true
			}
		}
		if !removed {
			break
		}
	}
	return kept
}

// binOf mirrors the histogram's clamped binning.
func binOf(v float64, bins int) int {
	idx := int(math.Floor((v - dataset.MinValue) / (dataset.MaxValue - dataset.MinValue) * float64(bins)))
	if idx < 0 {
		idx = 0
	}
	if idx >= bins {
		idx = bins - 1
	}
	return idx
}
