package agg

import (
	"math"

	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/trust"
)

// OnlinePScheme is the P-scheme under the rating challenge's *publication*
// semantics: the challenge website recomputed and published each product's
// score at the end of every 30-day period, using only the ratings observed
// so far. Unlike PScheme — which judges every period retrospectively with
// the full series in view — the online variant can never revise a published
// score, so an attack that only becomes detectable after its end still
// poisons the periods it landed in. Comparing the two quantifies the value
// of hindsight (see the experiments package).
type OnlinePScheme struct {
	// Detect configures the detectors and fusion.
	Detect detect.Config
}

var _ Scheme = (*OnlinePScheme)(nil)

// NewOnlinePScheme returns an online P-scheme with the default detector
// configuration.
func NewOnlinePScheme() *OnlinePScheme {
	return &OnlinePScheme{Detect: detect.DefaultConfig()}
}

// Name implements Scheme.
func (*OnlinePScheme) Name() string { return "P-online" }

// Aggregates implements Scheme: period k's score is computed at day
// 30·(k+1) from the ratings observed in [0, 30·(k+1)), with the trust state
// accumulated causally up to that day, and is never revised.
func (p *OnlinePScheme) Aggregates(d *dataset.Dataset) Table {
	mgr := trust.NewManager()
	n := Periods(d.HorizonDays)
	out := make(Table, len(d.Products))
	for _, prod := range d.Products {
		out[prod.ID] = make([]float64, n)
	}
	marks := make(map[string][]bool, len(d.Products))
	for _, prod := range d.Products {
		marks[prod.ID] = make([]bool, len(prod.Ratings))
	}

	for epoch := 0; epoch < n; epoch++ {
		lo, hi := PeriodInterval(epoch, d.HorizonDays)
		type counts struct{ n, f int }
		perRater := make(map[string]counts)
		// Judge this epoch's ratings from the data published so far.
		for _, prod := range d.Products {
			seen := prod.Ratings.Between(0, hi)
			rep := detect.Analyze(seen, hi, p.Detect, mgr)
			m := marks[prod.ID]
			for i, r := range seen {
				if r.Day < lo {
					continue
				}
				if rep.Suspicious[i] {
					m[i] = true
				}
				c := perRater[r.Rater]
				c.n++
				if rep.Suspicious[i] {
					c.f++
				}
				perRater[r.Rater] = c
			}
		}
		// Procedure 1 trust update happens before the score is published
		// (the paper computes trust at tˆ(k) including epoch k's marks).
		//lint:orderindependent integer-count fold: Observe adds small integers to float64 evidence, which is exact and commutative, so iteration order cannot change any trust value
		for rater, c := range perRater {
			mgr.Observe(rater, c.n, c.f)
		}
		// Publish this period's scores with today's trust — final.
		for _, prod := range d.Products {
			out[prod.ID][epoch] = p.publish(prod.Ratings, marks[prod.ID], lo, hi, mgr)
		}
	}
	return out
}

func (p *OnlinePScheme) publish(s dataset.Series, marks []bool, lo, hi float64, mgr *trust.Manager) float64 {
	// Slice the (sorted) period by index so the marks align by offset —
	// O(len(period) + log len(s)) instead of a full-series scan per period.
	start, end := s.BetweenIndex(lo, hi)
	if start == end {
		return math.NaN()
	}
	period := s[start:end]
	kept := make([]bool, len(period))
	for j := range period {
		kept[j] = !marks[start+j]
	}
	return weightedMean(period, kept, func(rater string) float64 {
		return math.Max(mgr.Trust(rater)-0.5, 0)
	})
}
