package agg

import (
	"context"

	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/engine"
	"repro/internal/trust"
)

// PScheme is the paper's proposed signal-based reliable rating aggregation
// system (Section IV). Ratings are analyzed epoch by epoch (one trust epoch
// per 30-day period): the detector stack plus Figure 1 fusion marks
// suspicious ratings, Procedure 1 folds the marks into per-rater beta trust,
// the rating filter drops marked ratings, and Eq. 7 aggregates the rest with
// weights max(T−0.5, 0).
//
// PScheme is a thin wrapper over internal/engine, which runs the pipeline in
// explicit stages with per-product parallelism inside each epoch. Callers
// that want checkpointed incremental re-evaluation (internal/server) obtain
// the engine via Engine and drive engine.EvalState directly.
type PScheme struct {
	// Detect configures the four detectors and the fusion.
	Detect detect.Config
	// DisableFilter keeps suspicious ratings in the aggregation (ablation:
	// trust weighting alone must then carry the defense).
	DisableFilter bool
	// DisableTrustWeighting aggregates with equal weights instead of
	// Eq. 7's max(T−0.5, 0) (ablation: the rating filter alone).
	DisableTrustWeighting bool
	// Workers bounds the engine's per-product parallelism: 0 means
	// GOMAXPROCS, 1 runs serially. Results are bit-identical either way.
	Workers int
}

var _ Scheme = (*PScheme)(nil)

// NewPScheme returns a P-scheme with the paper's default detector
// configuration.
func NewPScheme() *PScheme {
	return &PScheme{Detect: detect.DefaultConfig()}
}

// Name implements Scheme.
func (*PScheme) Name() string { return "P" }

// Engine returns the evaluation engine configured like this scheme.
func (p *PScheme) Engine() *engine.Engine {
	return &engine.Engine{
		Detect:                p.Detect,
		DisableFilter:         p.DisableFilter,
		DisableTrustWeighting: p.DisableTrustWeighting,
		Workers:               p.Workers,
	}
}

// Result is the full outcome of a P-scheme evaluation, exposing the
// per-rating suspicious marks and the final trust state for analysis.
type Result struct {
	Table Table
	// Suspicious maps product ID to a per-rating mark aligned with the
	// product's (sorted) rating series.
	Suspicious map[string][]bool
	// Trust is the final trust manager state after all epochs.
	Trust *trust.Manager
}

// Aggregates implements Scheme.
func (p *PScheme) Aggregates(d *dataset.Dataset) Table {
	return p.Evaluate(d).Table
}

// Evaluate runs the full pipeline and returns the aggregates along with the
// suspicious marks and final rater trust. The Scheme interface is
// deadline-free (simulation callers never cancel), so this runs under the
// background context; servers that need cancellation drive engine.Resume
// with their own context instead.
func (p *PScheme) Evaluate(d *dataset.Dataset) *Result {
	res, err := p.Engine().Evaluate(context.Background(), d)
	if err != nil {
		// Background contexts cannot be cancelled and the engine returns
		// errors only for cancellation; treat anything else as a bug.
		panic("agg: Evaluate failed under background context: " + err.Error())
	}
	return &Result{Table: Table(res.Table), Suspicious: res.Suspicious, Trust: res.Trust}
}
