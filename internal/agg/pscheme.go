package agg

import (
	"math"

	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/trust"
)

// PScheme is the paper's proposed signal-based reliable rating aggregation
// system (Section IV). Ratings are analyzed epoch by epoch (one trust epoch
// per 30-day period): the detector stack plus Figure 1 fusion marks
// suspicious ratings, Procedure 1 folds the marks into per-rater beta trust,
// the rating filter drops marked ratings, and Eq. 7 aggregates the rest with
// weights max(T−0.5, 0).
type PScheme struct {
	// Detect configures the four detectors and the fusion.
	Detect detect.Config
	// DisableFilter keeps suspicious ratings in the aggregation (ablation:
	// trust weighting alone must then carry the defense).
	DisableFilter bool
	// DisableTrustWeighting aggregates with equal weights instead of
	// Eq. 7's max(T−0.5, 0) (ablation: the rating filter alone).
	DisableTrustWeighting bool
}

var _ Scheme = (*PScheme)(nil)

// NewPScheme returns a P-scheme with the paper's default detector
// configuration.
func NewPScheme() *PScheme {
	return &PScheme{Detect: detect.DefaultConfig()}
}

// Name implements Scheme.
func (*PScheme) Name() string { return "P" }

// Result is the full outcome of a P-scheme evaluation, exposing the
// per-rating suspicious marks and the final trust state for analysis.
type Result struct {
	Table Table
	// Suspicious maps product ID to a per-rating mark aligned with the
	// product's (sorted) rating series.
	Suspicious map[string][]bool
	// Trust is the final trust manager state after all epochs.
	Trust *trust.Manager
}

// Aggregates implements Scheme.
func (p *PScheme) Aggregates(d *dataset.Dataset) Table {
	return p.Evaluate(d).Table
}

// Evaluate runs the full pipeline and returns the aggregates along with the
// suspicious marks and final rater trust.
func (p *PScheme) Evaluate(d *dataset.Dataset) *Result {
	mgr := trust.NewManager()
	n := Periods(d.HorizonDays)
	res := &Result{
		Table:      make(Table, len(d.Products)),
		Suspicious: make(map[string][]bool, len(d.Products)),
		Trust:      mgr,
	}
	for _, prod := range d.Products {
		res.Suspicious[prod.ID] = make([]bool, len(prod.Ratings))
	}

	// Trust epochs (Procedure 1): at each epoch boundary, analyze the data
	// observed so far with the current trust, judge this epoch's ratings,
	// and fold the marks into rater trust. Trust accumulation is causal.
	for epoch := 0; epoch < n; epoch++ {
		lo, hi := PeriodInterval(epoch, d.HorizonDays)
		type counts struct{ n, f int }
		perRater := make(map[string]counts)
		for _, prod := range d.Products {
			seen := prod.Ratings.Between(0, hi)
			rep := detect.Analyze(seen, hi, p.Detect, mgr)
			for i, r := range seen {
				if r.Day < lo {
					continue // earlier epoch already judged it
				}
				c := perRater[r.Rater]
				c.n++
				if rep.Suspicious[i] {
					c.f++
				}
				perRater[r.Rater] = c
			}
		}
		for rater, c := range perRater {
			mgr.Observe(rater, c.n, c.f)
		}
	}

	// Final suspicious marks come from an offline pass over the full
	// series with the final trust: an attack only visible once its end is
	// in view (e.g. one running from day 0) is still filtered from the
	// periods it poisoned.
	for _, prod := range d.Products {
		rep := detect.Analyze(prod.Ratings, d.HorizonDays, p.Detect, mgr)
		copy(res.Suspicious[prod.ID], rep.Suspicious)
	}

	// Final aggregation: filter marked ratings, weight the rest by
	// max(T−0.5, 0) (Eq. 7).
	for _, prod := range d.Products {
		scores := make([]float64, n)
		marks := res.Suspicious[prod.ID]
		for i := 0; i < n; i++ {
			lo, hi := PeriodInterval(i, d.HorizonDays)
			scores[i] = p.aggregatePeriod(prod.Ratings, marks, lo, hi, mgr)
		}
		res.Table[prod.ID] = scores
	}
	return res
}

func (p *PScheme) aggregatePeriod(s dataset.Series, marks []bool, lo, hi float64, mgr *trust.Manager) float64 {
	// Indices of the period within the full series.
	var period dataset.Series
	var kept []bool
	for i, r := range s {
		if r.Day < lo || r.Day >= hi {
			continue
		}
		period = append(period, r)
		kept = append(kept, p.DisableFilter || !marks[i])
	}
	if len(period) == 0 {
		return math.NaN()
	}
	weight := func(rater string) float64 {
		return math.Max(mgr.Trust(rater)-0.5, 0)
	}
	if p.DisableTrustWeighting {
		weight = func(string) float64 { return 1 }
	}
	return weightedMean(period, kept, weight)
}
