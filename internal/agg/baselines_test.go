package agg

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/mp"
)

func TestExtendedSchemeNames(t *testing.T) {
	if NewWhitbyScheme().Name() != "WBF" {
		t.Error("WhitbyScheme name")
	}
	if NewEntropyScheme().Name() != "ENT" {
		t.Error("EntropyScheme name")
	}
	if NewClusteringScheme().Name() != "CLU" {
		t.Error("ClusteringScheme name")
	}
}

func TestExtendedSchemesAgreeOnFairData(t *testing.T) {
	d := fairData(t, 21)
	sa := SAScheme{}.Aggregates(d)
	for _, scheme := range []Scheme{NewWhitbyScheme(), NewEntropyScheme(), NewClusteringScheme()} {
		got := scheme.Aggregates(d)
		for id := range sa {
			for i := range sa[id] {
				if math.IsNaN(sa[id][i]) {
					if !math.IsNaN(got[id][i]) {
						t.Errorf("%s: period %d NaN mismatch", scheme.Name(), i)
					}
					continue
				}
				if math.Abs(sa[id][i]-got[id][i]) > 0.4 {
					t.Errorf("%s %s period %d: %v vs SA %v", scheme.Name(), id, i, got[id][i], sa[id][i])
				}
			}
		}
	}
}

func TestWhitbyFiltersExtremeMismatch(t *testing.T) {
	// A handful of 0-star ratings against a solid 4.5 consensus: the
	// quantile test must reject them.
	period := dataset.Series{}
	for i := 0; i < 30; i++ {
		period = append(period, dataset.Rating{Day: float64(i), Value: 4.5, Rater: rater(i)})
	}
	for i := 30; i < 36; i++ {
		period = append(period, dataset.Rating{Day: float64(i), Value: 0, Rater: rater(i)})
	}
	w := NewWhitbyScheme()
	kept := w.filter(period)
	for i := 0; i < 30; i++ {
		if !kept[i] {
			t.Fatalf("honest rating %d filtered", i)
		}
	}
	dropped := 0
	for i := 30; i < 36; i++ {
		if !kept[i] {
			dropped++
		}
	}
	if dropped != 6 {
		t.Errorf("dropped %d/6 zero ratings", dropped)
	}
}

func TestWhitbyKeepsModerateMismatch(t *testing.T) {
	// Ratings at 2.5 against a 4.0 consensus survive the quantile test —
	// the wide single-rating beta cannot reject them.
	period := dataset.Series{}
	for i := 0; i < 30; i++ {
		period = append(period, dataset.Rating{Day: float64(i), Value: 4, Rater: rater(i)})
	}
	for i := 30; i < 40; i++ {
		period = append(period, dataset.Rating{Day: float64(i), Value: 2.5, Rater: rater(i)})
	}
	kept := NewWhitbyScheme().filter(period)
	for i := 30; i < 40; i++ {
		if !kept[i] {
			t.Errorf("moderate rating %d filtered by quantile test", i)
		}
	}
}

func TestEntropyFiltersRareFarOpinion(t *testing.T) {
	period := dataset.Series{}
	for i := 0; i < 40; i++ {
		v := 4.0
		if i%2 == 0 {
			v = 4.5
		}
		period = append(period, dataset.Rating{Day: float64(i), Value: v, Rater: rater(i)})
	}
	// Two rare, far-away opinions.
	period = append(period,
		dataset.Rating{Day: 40, Value: 0.5, Rater: rater(40)},
		dataset.Rating{Day: 41, Value: 0, Rater: rater(41)},
	)
	kept := NewEntropyScheme().filter(period)
	if kept[40] || kept[41] {
		t.Error("rare far opinions not filtered")
	}
	// Rare but *near* opinion survives.
	period2 := append(period[:40:40], dataset.Rating{Day: 40, Value: 3, Rater: rater(40)})
	kept2 := NewEntropyScheme().filter(period2)
	if !kept2[40] {
		t.Error("rare nearby opinion filtered")
	}
}

func TestClusteringFiltersMinorityBlock(t *testing.T) {
	period := dataset.Series{}
	for i := 0; i < 30; i++ {
		period = append(period, dataset.Rating{Day: float64(i), Value: 4 + 0.5*float64(i%2), Rater: rater(i)})
	}
	for i := 30; i < 40; i++ {
		period = append(period, dataset.Rating{Day: float64(i), Value: 1, Rater: rater(i)})
	}
	kept := NewClusteringScheme().filter(period)
	for i := 0; i < 30; i++ {
		if !kept[i] {
			t.Fatalf("majority rating %d filtered", i)
		}
	}
	for i := 30; i < 40; i++ {
		if kept[i] {
			t.Errorf("minority block rating %d kept", i)
		}
	}
}

func TestClusteringKeepsLargeMinority(t *testing.T) {
	// A 45% "minority" is a real opinion split, not collusion.
	period := dataset.Series{}
	for i := 0; i < 22; i++ {
		period = append(period, dataset.Rating{Day: float64(i), Value: 4.5, Rater: rater(i)})
	}
	for i := 22; i < 40; i++ {
		period = append(period, dataset.Rating{Day: float64(i), Value: 1.5, Rater: rater(i)})
	}
	kept := NewClusteringScheme().filter(period)
	for i, k := range kept {
		if !k {
			t.Fatalf("rating %d filtered despite 45%% split", i)
		}
	}
}

func TestClusteringKeepsUnseparatedClusters(t *testing.T) {
	// Continuous spread: no gap, nothing filtered.
	period := dataset.Series{}
	for i := 0; i < 40; i++ {
		period = append(period, dataset.Rating{Day: float64(i), Value: 2 + 0.25*float64(i%10), Rater: rater(i)})
	}
	kept := NewClusteringScheme().filter(period)
	for i, k := range kept {
		if !k {
			t.Fatalf("rating %d filtered without cluster gap", i)
		}
	}
}

func TestClusteringAgainstMassiveR1Attack(t *testing.T) {
	// The clustering defense separates a colluding minority block even at
	// one-third contamination (its breakdown point is MaxMinorityShare).
	d := fairData(t, 31)
	atk := withAttack(t, d, 35, 55, 50, 0.0, 0.05)
	mpSA := mp.Compute(SAScheme{}.Aggregates(d), SAScheme{}.Aggregates(atk)).Overall
	clu := NewClusteringScheme()
	got := mp.Compute(clu.Aggregates(d), clu.Aggregates(atk)).Overall
	if got > mpSA*0.85 {
		t.Errorf("CLU MP %v not clearly below SA %v on R1 attack", got, mpSA)
	}
}

func TestMajorityRuleSchemesDisabledByMassiveCollusion(t *testing.T) {
	// Section IV: "when there are a sufficient number of dishonest raters,
	// the unfair ratings can become the majority and totally disable the
	// majority-rule based methods." At one-third contamination, the
	// quantile test's reputation estimate is dragged into the attackers'
	// acceptance band and the collusion block is no longer a rare opinion,
	// so both WBF and ENT stay near the no-defense damage level.
	d := fairData(t, 31)
	atk := withAttack(t, d, 35, 55, 50, 0.0, 0.05)
	mpSA := mp.Compute(SAScheme{}.Aggregates(d), SAScheme{}.Aggregates(atk)).Overall
	for _, scheme := range []Scheme{NewWhitbyScheme(), NewEntropyScheme()} {
		got := mp.Compute(scheme.Aggregates(d), scheme.Aggregates(atk)).Overall
		if got < mpSA*0.7 {
			t.Errorf("%s MP %v unexpectedly suppressed a majority-scale collusion (SA %v)", scheme.Name(), got, mpSA)
		}
	}
}

func TestMajorityRuleSchemesFilterSparseUnfairness(t *testing.T) {
	// The same schemes DO work when the dishonest raters are few: a sparse
	// handful of extreme ratings is exactly what they were designed for.
	d := fairData(t, 31)
	atk := withAttack(t, d, 40, 50, 8, 0.0, 0.05)
	mpSA := mp.Compute(SAScheme{}.Aggregates(d), SAScheme{}.Aggregates(atk)).Overall
	for _, scheme := range []Scheme{NewWhitbyScheme(), NewEntropyScheme()} {
		got := mp.Compute(scheme.Aggregates(d), scheme.Aggregates(atk)).Overall
		if got > mpSA*0.6 {
			t.Errorf("%s MP %v did not suppress sparse unfairness (SA %v)", scheme.Name(), got, mpSA)
		}
	}
}

func TestExtendedSchemesBlindToModerateVariance(t *testing.T) {
	// And all three should stay (mostly) blind to the moderate-variance
	// attack — the majority-rule weakness of Section V-B.
	d := fairData(t, 31)
	atk := withAttack(t, d, 35, 55, 50, 2.3, 1.0)
	mpSA := mp.Compute(SAScheme{}.Aggregates(d), SAScheme{}.Aggregates(atk)).Overall
	for _, scheme := range []Scheme{NewWhitbyScheme(), NewEntropyScheme(), NewClusteringScheme()} {
		got := mp.Compute(scheme.Aggregates(d), scheme.Aggregates(atk)).Overall
		if got < mpSA*0.4 {
			t.Errorf("%s MP %v collapsed on moderate-variance attack (SA %v)", scheme.Name(), got, mpSA)
		}
	}
}

func rater(i int) string { return string(rune('a'+i%26)) + string(rune('0'+i/26)) }
