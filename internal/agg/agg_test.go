package agg

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/mp"
	"repro/internal/stats"
)

const testHorizon = 150.0

func fairData(t *testing.T, seed uint64) *dataset.Dataset {
	t.Helper()
	cfg := dataset.DefaultFairConfig()
	cfg.Products = 2
	cfg.HorizonDays = testHorizon
	d, err := dataset.GenerateFair(stats.NewRNG(seed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// withAttack clones d and injects a block attack into tv1.
func withAttack(t *testing.T, d *dataset.Dataset, start, end float64, n int, mean, sigma float64) *dataset.Dataset {
	t.Helper()
	rng := stats.NewRNG(777)
	atk := make(dataset.Series, n)
	for i := 0; i < n; i++ {
		v := stats.Clamp(mean+rng.NormFloat64()*sigma, dataset.MinValue, dataset.MaxValue)
		atk[i] = dataset.Rating{
			Day:   start + (end-start)*float64(i)/float64(n),
			Value: dataset.QuantizeHalfStar(v),
			Rater: fmt.Sprintf("atk%03d", i),
		}
	}
	out := d.Clone()
	if err := out.InjectUnfair("tv1", atk); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestPeriods(t *testing.T) {
	tests := []struct {
		horizon float64
		want    int
	}{
		{0, 0}, {-5, 0}, {30, 1}, {31, 2}, {150, 5}, {29.9, 1},
	}
	for _, tt := range tests {
		if got := Periods(tt.horizon); got != tt.want {
			t.Errorf("Periods(%v) = %d, want %d", tt.horizon, got, tt.want)
		}
	}
}

func TestPeriodInterval(t *testing.T) {
	lo, hi := PeriodInterval(2, 150)
	if lo != 60 || hi != 90 {
		t.Errorf("PeriodInterval(2) = (%v,%v)", lo, hi)
	}
	// Final partial period is clipped at the horizon.
	lo, hi = PeriodInterval(4, 140)
	if lo != 120 || hi != 140 {
		t.Errorf("PeriodInterval(partial) = (%v,%v)", lo, hi)
	}
}

func TestSASchemeTracksPeriodMeans(t *testing.T) {
	d := &dataset.Dataset{
		HorizonDays: 60,
		Products: []dataset.Product{{ID: "tv1", Ratings: dataset.Series{
			{Day: 5, Value: 4},
			{Day: 10, Value: 2},
			{Day: 40, Value: 5},
		}}},
	}
	table := SAScheme{}.Aggregates(d)
	got := table["tv1"]
	if len(got) != 2 {
		t.Fatalf("periods = %d", len(got))
	}
	if got[0] != 3 || got[1] != 5 {
		t.Errorf("aggregates = %v, want [3 5]", got)
	}
}

func TestSASchemeEmptyPeriodIsNaN(t *testing.T) {
	d := &dataset.Dataset{
		HorizonDays: 60,
		Products: []dataset.Product{{ID: "tv1", Ratings: dataset.Series{
			{Day: 40, Value: 5},
		}}},
	}
	got := SAScheme{}.Aggregates(d)["tv1"]
	if !math.IsNaN(got[0]) {
		t.Errorf("empty period = %v, want NaN", got[0])
	}
}

func TestSchemeNames(t *testing.T) {
	if (SAScheme{}).Name() != "SA" || NewBFScheme().Name() != "BF" || NewPScheme().Name() != "P" {
		t.Error("scheme names wrong")
	}
}

func TestAllSchemesAgreeOnFairData(t *testing.T) {
	// Without unfair ratings, every scheme should land near the simple
	// average (no mass filtering of honest ratings).
	d := fairData(t, 4)
	sa := SAScheme{}.Aggregates(d)
	bf := NewBFScheme().Aggregates(d)
	p := NewPScheme().Aggregates(d)
	for id := range sa {
		for i := range sa[id] {
			if math.IsNaN(sa[id][i]) {
				continue
			}
			if math.Abs(sa[id][i]-bf[id][i]) > 0.35 {
				t.Errorf("%s period %d: SA=%v BF=%v", id, i, sa[id][i], bf[id][i])
			}
			if math.Abs(sa[id][i]-p[id][i]) > 0.35 {
				t.Errorf("%s period %d: SA=%v P=%v", id, i, sa[id][i], p[id][i])
			}
		}
	}
}

func TestBFFiltersLargeBiasLowVariance(t *testing.T) {
	// The BF-scheme catches exactly the R1 corner: huge bias, tiny
	// variance (Section V-B, Fig. 4 discussion).
	d := fairData(t, 9)
	atk := withAttack(t, d, 35, 55, 50, 0.0, 0.05)
	baseSA := SAScheme{}.Aggregates(d)
	atkSA := SAScheme{}.Aggregates(atk)
	baseBF := NewBFScheme().Aggregates(d)
	atkBF := NewBFScheme().Aggregates(atk)
	mpSA := mp.Compute(baseSA, atkSA).Overall
	mpBF := mp.Compute(baseBF, atkBF).Overall
	if mpBF > mpSA*0.6 {
		t.Errorf("BF MP %v not clearly below SA MP %v for R1 attack", mpBF, mpSA)
	}
}

func TestBFBlindToModerateVariance(t *testing.T) {
	// Moderate variance defeats the majority rule: BF MP approaches SA MP.
	d := fairData(t, 9)
	atk := withAttack(t, d, 35, 55, 50, 2.0, 1.0)
	mpSA := mp.Compute(SAScheme{}.Aggregates(d), SAScheme{}.Aggregates(atk)).Overall
	bf := NewBFScheme()
	mpBF := mp.Compute(bf.Aggregates(d), bf.Aggregates(atk)).Overall
	if mpBF < mpSA*0.5 {
		t.Errorf("BF MP %v collapsed on moderate-variance attack (SA %v)", mpBF, mpSA)
	}
}

func TestPSchemeSuppressesStrongAttack(t *testing.T) {
	d := fairData(t, 9)
	atk := withAttack(t, d, 35, 55, 50, 1.0, 0.3)
	mpSA := mp.Compute(SAScheme{}.Aggregates(d), SAScheme{}.Aggregates(atk)).Overall
	p := NewPScheme()
	mpP := mp.Compute(p.Aggregates(d), p.Aggregates(atk)).Overall
	if mpP > mpSA*0.55 {
		t.Errorf("P MP %v not clearly below SA MP %v", mpP, mpSA)
	}
}

func TestPSchemeEvaluateExposesMarksAndTrust(t *testing.T) {
	d := fairData(t, 9)
	atk := withAttack(t, d, 35, 55, 50, 1.0, 0.3)
	res := NewPScheme().Evaluate(atk)
	prod, err := atk.Product("tv1")
	if err != nil {
		t.Fatal(err)
	}
	marks := res.Suspicious["tv1"]
	if len(marks) != len(prod.Ratings) {
		t.Fatalf("marks length %d != ratings %d", len(marks), len(prod.Ratings))
	}
	var caught, total int
	for i, r := range prod.Ratings {
		if r.Unfair {
			total++
			if marks[i] {
				caught++
			}
		}
	}
	if total != 50 {
		t.Fatalf("expected 50 unfair ratings, found %d", total)
	}
	if caught == 0 {
		t.Error("no unfair ratings marked suspicious")
	}
	// Attack raters should have lost trust; they only appear in epoch 2.
	lowTrust := 0
	for i := 0; i < 50; i++ {
		if res.Trust.Trust(fmt.Sprintf("atk%03d", i)) < 0.5 {
			lowTrust++
		}
	}
	if lowTrust == 0 {
		t.Error("attack raters kept neutral trust")
	}
}

func TestPSchemeMPBelowBFAndSAOnStrongAttack(t *testing.T) {
	// Headline claim shape: against the strongest straightforward
	// attacks, the P-scheme bounds MP below the majority-rule BF scheme
	// and far below no defense.
	d := fairData(t, 13)
	atk := withAttack(t, d, 60, 80, 50, 0.5, 0.2)
	mpSA := mp.Compute(SAScheme{}.Aggregates(d), SAScheme{}.Aggregates(atk)).Overall
	p := NewPScheme()
	mpP := mp.Compute(p.Aggregates(d), p.Aggregates(atk)).Overall
	if mpP >= mpSA {
		t.Errorf("P MP %v ≥ SA MP %v", mpP, mpSA)
	}
}

func TestWeightedMeanFallbacks(t *testing.T) {
	period := dataset.Series{
		{Day: 1, Value: 4, Rater: "a"},
		{Day: 2, Value: 2, Rater: "b"},
	}
	// All weights zero → simple mean of kept.
	got := weightedMean(period, []bool{true, true}, func(string) float64 { return 0 })
	if got != 3 {
		t.Errorf("zero-weight fallback = %v, want 3", got)
	}
	// Everything filtered → mean of whole period.
	got = weightedMean(period, []bool{false, false}, func(string) float64 { return 1 })
	if got != 3 {
		t.Errorf("all-filtered fallback = %v, want 3", got)
	}
	// Normal weighting.
	got = weightedMean(period, nil, func(r string) float64 {
		if r == "a" {
			return 3
		}
		return 1
	})
	if math.Abs(got-3.5) > 1e-9 {
		t.Errorf("weighted mean = %v, want 3.5", got)
	}
}

func TestPSchemeMechanismAblation(t *testing.T) {
	// Both mechanisms contribute: disabling either must not make the
	// defense stronger, and disabling both must approach the SA damage.
	d := fairData(t, 9)
	atk := withAttack(t, d, 35, 55, 50, 1.0, 0.3)
	score := func(p *PScheme) float64 {
		return mp.Compute(p.Aggregates(d), p.Aggregates(atk)).Overall
	}
	full := score(NewPScheme())
	noFilter := func() *PScheme { p := NewPScheme(); p.DisableFilter = true; return p }()
	noTrust := func() *PScheme { p := NewPScheme(); p.DisableTrustWeighting = true; return p }()
	neither := func() *PScheme {
		p := NewPScheme()
		p.DisableFilter = true
		p.DisableTrustWeighting = true
		return p
	}()
	mpSA := mp.Compute(SAScheme{}.Aggregates(d), SAScheme{}.Aggregates(atk)).Overall

	// Each mechanism alone still suppresses this attack to a fraction of
	// the undefended damage (their residuals differ only at noise level).
	if full > mpSA*0.3 {
		t.Errorf("full defense MP %v not well below SA %v", full, mpSA)
	}
	if v := score(noFilter); v > mpSA*0.5 {
		t.Errorf("trust weighting alone MP %v not below half of SA %v", v, mpSA)
	}
	if v := score(noTrust); v > mpSA*0.5 {
		t.Errorf("filter alone MP %v not below half of SA %v", v, mpSA)
	}
	// With both mechanisms off the detectors have no effect on the
	// aggregate and the damage returns to the no-defense level.
	if v := score(neither); v < mpSA*0.7 {
		t.Errorf("defense with both mechanisms off still suppresses: %v (SA %v)", v, mpSA)
	}
}

func TestOnlinePSchemeName(t *testing.T) {
	if NewOnlinePScheme().Name() != "P-online" {
		t.Error("online scheme name")
	}
}

func TestOnlinePSchemeAgreesOnFairData(t *testing.T) {
	d := fairData(t, 4)
	sa := SAScheme{}.Aggregates(d)
	on := NewOnlinePScheme().Aggregates(d)
	for id := range sa {
		for i := range sa[id] {
			if math.IsNaN(sa[id][i]) {
				continue
			}
			if math.Abs(sa[id][i]-on[id][i]) > 0.4 {
				t.Errorf("%s period %d: SA=%v online-P=%v", id, i, sa[id][i], on[id][i])
			}
		}
	}
}

func TestOnlinePSchemeSuppressesMidHistoryAttack(t *testing.T) {
	// An attack in the middle of the history is visible before its periods'
	// scores publish, so the online scheme still defends.
	d := fairData(t, 9)
	atk := withAttack(t, d, 35, 55, 50, 1.0, 0.3)
	mpSA := mp.Compute(SAScheme{}.Aggregates(d), SAScheme{}.Aggregates(atk)).Overall
	on := NewOnlinePScheme()
	mpOn := mp.Compute(on.Aggregates(d), on.Aggregates(atk)).Overall
	if mpOn > mpSA*0.6 {
		t.Errorf("online P MP %v not clearly below SA %v", mpOn, mpSA)
	}
}

func TestHindsightBeatsPublication(t *testing.T) {
	// The attack that ends just before the horizon: the offline scheme can
	// retroactively clean the poisoned periods, the online scheme cannot
	// take back published scores, so offline MP ≤ online MP.
	d := fairData(t, 23)
	atk := withAttack(t, d, 0, 120, 50, 0.5, 0.2)
	offline := NewPScheme()
	online := NewOnlinePScheme()
	mpOff := mp.Compute(offline.Aggregates(d), offline.Aggregates(atk)).Overall
	mpOn := mp.Compute(online.Aggregates(d), online.Aggregates(atk)).Overall
	if mpOff > mpOn*1.1 {
		t.Errorf("offline MP %v exceeds online MP %v — hindsight should help", mpOff, mpOn)
	}
}
