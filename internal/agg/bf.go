package agg

import (
	"math"

	"repro/internal/dataset"
	"repro/internal/epoch"
	"repro/internal/stats"
	"repro/internal/trust"
)

// BFScheme is the beta-function filtering defense of Whitby, Jøsang &
// Indulska — the representative majority-rule scheme of Section V-A. Within
// each 30-day period, ratings far from the majority opinion are iteratively
// removed; removals feed each rater's F count and survivals the S count, and
// the period aggregate is the trust-weighted mean of the surviving ratings
// with beta trust T = (S+1)/(S+F+2).
type BFScheme struct {
	// DeviationFactor is how many (sample) standard deviations from the
	// period median a rating may sit before it is filtered (default
	// 1.75). Because the scale estimate uses the contaminated period
	// itself, unfair ratings with even moderate variance inflate it and
	// hide inside the radius — exactly the majority-rule weakness Section
	// V-B reports ("when the overall rating values have a large
	// variation, it is difficult to judge whether some specific rating
	// values are far from the majority's opinion").
	DeviationFactor float64
	// MinRadius floors the filter radius in rating points so that quiet
	// honest periods do not filter themselves (default 3.2).
	MinRadius float64
	// MaxIterations bounds the filter loop (default 8).
	MaxIterations int
}

var _ Scheme = (*BFScheme)(nil)

// NewBFScheme returns a BF-scheme with the default parameters.
func NewBFScheme() *BFScheme {
	return &BFScheme{DeviationFactor: 1.75, MinRadius: 3.2, MaxIterations: 8}
}

// Name implements Scheme.
func (*BFScheme) Name() string { return "BF" }

// Aggregates implements Scheme.
func (b *BFScheme) Aggregates(d *dataset.Dataset) Table {
	mgr := trust.NewManager()
	n := Periods(d.HorizonDays)
	out := make(Table, len(d.Products))
	for _, p := range d.Products {
		out[p.ID] = make([]float64, n)
	}
	// Periods are processed in time order so trust accumulates causally.
	for i := 0; i < n; i++ {
		lo, hi := PeriodInterval(i, d.HorizonDays)
		for _, p := range d.Products {
			period := p.Ratings.Between(lo, hi)
			if len(period) == 0 {
				out[p.ID][i] = math.NaN()
				continue
			}
			kept := b.filter(period)
			updatePeriodTrust(mgr, period, kept)
			out[p.ID][i] = weightedMean(period, kept, func(r string) float64 {
				return mgr.Trust(r)
			})
		}
	}
	return out
}

// filter returns a keep-mask over the period's ratings after iterative
// majority filtering.
func (b *BFScheme) filter(period dataset.Series) []bool {
	kept := make([]bool, len(period))
	for i := range kept {
		kept[i] = true
	}
	for iter := 0; iter < b.MaxIterations; iter++ {
		var vals []float64
		for i, r := range period {
			if kept[i] {
				vals = append(vals, r.Value)
			}
		}
		if len(vals) < 3 {
			break
		}
		center := stats.Median(vals)
		radius := math.Max(b.DeviationFactor*stats.SampleStdDev(vals), b.MinRadius)
		removed := false
		for i, r := range period {
			if !kept[i] {
				continue
			}
			if math.Abs(r.Value-center) > radius {
				kept[i] = false
				removed = true
			}
		}
		if !removed {
			break
		}
	}
	return kept
}

// weightedMean aggregates the kept ratings of a period with the given
// per-rater weight function; see epoch.WeightedMean for the fallback rules.
func weightedMean(period dataset.Series, kept []bool, weight func(string) float64) float64 {
	return epoch.WeightedMean(period, kept, weight)
}
