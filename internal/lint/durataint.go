package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/lint/callgraph"
	"repro/internal/lint/cfg"
)

// DuraTaint is the interprocedural generalization of walerr: it tracks
// durability-error taint from every WAL append/fsync/compact source through
// call chains to wherever the error is finally consumed. A function whose
// error result may derive from a durability source is a *carrier*; dropping
// a carrier's error (blank identifier, bare expression statement, go/defer
// call) or swallowing it (assigning it to a variable no path ever reads)
// silently converts "the rating is durable" into "the rating is probably
// durable" — exactly the bug class the WAL contract (DESIGN.md §7) forbids,
// now caught even when the drop is three frames away from the fsync.
//
// Division of labor with walerr: walerr flags dropped errors at direct
// calls on the WAL surface itself; durataint flags drops at calls to
// carrier functions further up the chain, plus swallowed assignments at
// every level. Soundness trade-offs (DESIGN.md §13): taint propagates
// through static calls only (interface calls and function values are not
// carriers), reads inside function literals count as consumption wherever
// the literal sits, and the swallow check is may-read over CFG paths.
// Deliberate exceptions are annotated `//lint:ignore durataint <rationale>`.
var DuraTaint = &Analyzer{
	Name: "durataint",
	Doc: "flags durability errors (WAL append/fsync/compact taint) that are dropped or " +
		"swallowed anywhere along a call chain, not just at the direct WAL call site",
	RunProgram: runDuraTaint,
}

// duraTaintFacts is the exported fact bundle: the sorted full names of
// every carrier function (error result may carry durability taint).
type duraTaintFacts struct {
	Carriers []string
}

type duraTaintState struct {
	prog *Program
	cg   *callgraph.Graph
	info map[string]*types.Info

	// carrier marks functions whose error result may derive from a
	// durability source. Base sources (the wal/os surface from
	// walErrMethods) are implicitly carriers via isBaseSource.
	carrier map[*callgraph.Node]bool
}

func runDuraTaint(pass *ProgramPass) error {
	st := &duraTaintState{
		prog:    pass.Prog,
		cg:      pass.Prog.CallGraph(),
		info:    make(map[string]*types.Info),
		carrier: make(map[*callgraph.Node]bool),
	}
	for _, pkg := range pass.Prog.Pkgs {
		st.info[pkg.Path] = pkg.Info
	}

	// Carrier fixpoint: keep rescanning until no function changes state.
	// Rounds are bounded by the longest taint chain, which is short.
	for changed := true; changed; {
		changed = false
		for _, n := range st.cg.Funcs {
			if n.Decl == nil || st.carrier[n] {
				continue
			}
			if st.returnsTaint(n) {
				st.carrier[n] = true
				changed = true
			}
		}
	}

	for _, n := range st.cg.Funcs {
		if n.Decl == nil {
			continue
		}
		st.checkFunc(pass, n)
	}

	facts := duraTaintFacts{}
	for cn := range st.carrier {
		facts.Carriers = append(facts.Carriers, cn.Name())
	}
	sort.Strings(facts.Carriers)
	pass.ExportFact(facts)
	return nil
}

// isBaseSource reports whether fn is on the WAL durability surface guarded
// by walerr (wal.WAL Append/AppendAck/Sync/Compact, wal.File/os.File Sync,
// wal.FS Truncate/Rename).
func isBaseSource(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recvPkg, recvName := namedRecv(sig.Recv().Type())
	if recvPkg == "" {
		return false
	}
	for _, g := range walErrMethods {
		if recvName != g.typ || !g.methods[fn.Name()] {
			continue
		}
		if g.pkgSegs == "os" {
			if recvPkg == "os" {
				return true
			}
			continue
		}
		if pathHasSegments(recvPkg, g.pkgSegs) {
			return true
		}
	}
	return false
}

// taintedCallee reports whether the call targets a base source or a
// carrier, via static resolution.
func (st *duraTaintState) taintedCallee(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	if isBaseSource(fn) {
		return true
	}
	n := st.cg.Node(fn)
	return n != nil && st.carrier[n]
}

// errorResultIndexes returns the positions of error-typed results in a
// call's result tuple (or single result).
func errorResultIndexes(info *types.Info, call *ast.CallExpr) []int {
	tv, ok := info.Types[call]
	if !ok {
		return nil
	}
	var out []int
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				out = append(out, i)
			}
		}
	default:
		if isErrorType(tv.Type) {
			out = append(out, 0)
		}
	}
	return out
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// returnsTaint reports whether n's error result may derive from a tainted
// call: directly returned, returned through a tainted local, or returned
// through a wrapping call (fmt.Errorf("%w", err)) fed a tainted value. The
// local-variable analysis is flow-insensitive.
func (st *duraTaintState) returnsTaint(n *callgraph.Node) bool {
	info := st.info[n.SrcPath]
	if info == nil {
		return false
	}
	sig, ok := n.Func.Type().(*types.Signature)
	if !ok || sig.Results() == nil {
		return false
	}
	hasErrResult := false
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			hasErrResult = true
		}
	}
	if !hasErrResult {
		return false
	}

	tainted := st.taintedObjects(info, n)

	// isTaintedExpr: a tainted local, a tainted call, or an error-typed
	// call fed a tainted argument (wrapping).
	var isTaintedExpr func(e ast.Expr) bool
	isTaintedExpr = func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := info.Uses[e]
			return obj != nil && tainted[obj]
		case *ast.CallExpr:
			if st.taintedCallee(info, e) {
				return true
			}
			if len(errorResultIndexes(info, e)) == 0 {
				return false
			}
			for _, arg := range e.Args {
				if isTaintedExpr(arg) {
					return true
				}
			}
		}
		return false
	}

	// Named error results assigned a tainted value taint the function even
	// through a bare return.
	if res := n.Decl.Type.Results; res != nil {
		for _, f := range res.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil && isErrorType(obj.Type()) && tainted[obj] {
					return true
				}
			}
		}
	}

	found := false
	inspectSkippingFuncLits(n.Decl.Body, func(node ast.Node, _ bool) {
		ret, ok := node.(*ast.ReturnStmt)
		if !ok || found {
			return
		}
		for i, r := range ret.Results {
			// Only error-typed return slots carry taint.
			if i < sig.Results().Len() && len(ret.Results) == sig.Results().Len() {
				if !isErrorType(sig.Results().At(i).Type()) {
					continue
				}
			}
			if isTaintedExpr(r) {
				found = true
				return
			}
		}
	})
	return found
}

// taintedObjects collects, flow-insensitively, the local objects assigned
// an error-typed result of a tainted call (directly or via aliasing).
func (st *duraTaintState) taintedObjects(info *types.Info, n *callgraph.Node) map[types.Object]bool {
	tainted := make(map[types.Object]bool)
	lhsObj := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil
		}
		if obj := info.Defs[id]; obj != nil {
			return obj
		}
		return info.Uses[id]
	}
	// Iterate to a small fixpoint for aliasing chains (err2 := err).
	for changed := true; changed; {
		changed = false
		inspectSkippingFuncLits(n.Decl.Body, func(node ast.Node, _ bool) {
			as, ok := node.(*ast.AssignStmt)
			if !ok {
				return
			}
			mark := func(obj types.Object) {
				if obj != nil && isErrorType(obj.Type()) && !tainted[obj] {
					tainted[obj] = true
					changed = true
				}
			}
			if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
				call, ok := as.Rhs[0].(*ast.CallExpr)
				if !ok || !st.taintedCallee(info, call) {
					return
				}
				for _, idx := range errorResultIndexes(info, call) {
					if idx < len(as.Lhs) {
						mark(lhsObj(as.Lhs[idx]))
					}
				}
				return
			}
			for i, rhs := range as.Rhs {
				if i >= len(as.Lhs) {
					break
				}
				switch r := ast.Unparen(rhs).(type) {
				case *ast.CallExpr:
					if st.taintedCallee(info, r) && len(errorResultIndexes(info, r)) > 0 {
						mark(lhsObj(as.Lhs[i]))
					}
				case *ast.Ident:
					if obj := info.Uses[r]; obj != nil && tainted[obj] {
						mark(lhsObj(as.Lhs[i]))
					}
				}
			}
		})
	}
	return tainted
}

// checkFunc reports dropped and swallowed carrier errors in one function.
func (st *duraTaintState) checkFunc(pass *ProgramPass, n *callgraph.Node) {
	info := st.info[n.SrcPath]
	if info == nil {
		return
	}
	var g *cfg.Graph // built lazily; most functions have no findings

	describe := func(call *ast.CallExpr) string {
		fn := calleeFunc(info, call)
		if fn == nil {
			return "carrier"
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			_, typ := namedRecv(sig.Recv().Type())
			if typ != "" {
				return typ + "." + fn.Name()
			}
		}
		return fn.Name()
	}
	// reportDrop fires for carrier calls only (walerr owns direct base
	// drops); reportSwallow fires for both.
	reportDrop := func(call *ast.CallExpr) {
		fn := calleeFunc(info, call)
		if fn == nil || isBaseSource(fn) {
			return
		}
		pass.Reportf(call.Pos(),
			"durability error from %s dropped: its error carries WAL append/fsync taint from deeper in the call chain and must be checked (or annotate //lint:ignore durataint with a rationale)",
			describe(call))
	}

	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.ExprStmt:
			if call, ok := node.X.(*ast.CallExpr); ok && st.taintedCallee(info, call) {
				reportDrop(call)
			}
		case *ast.DeferStmt:
			if st.taintedCallee(info, node.Call) {
				reportDrop(node.Call)
			}
		case *ast.GoStmt:
			if st.taintedCallee(info, node.Call) {
				reportDrop(node.Call)
			}
		case *ast.AssignStmt:
			if g == nil {
				g = cfg.New(n.Decl.Body)
			}
			st.checkAssign(pass, info, n, g, node, describe, reportDrop)
			return true
		}
		return true
	})
}

// checkAssign handles carrier calls on the right-hand side of an
// assignment: a blank in the error slot is a drop; a named variable whose
// value no CFG path ever reads is a swallow.
func (st *duraTaintState) checkAssign(pass *ProgramPass, info *types.Info, n *callgraph.Node, g *cfg.Graph, as *ast.AssignStmt, describe func(*ast.CallExpr) string, reportDrop func(*ast.CallExpr)) {
	check := func(call *ast.CallExpr, lhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return // field/index destination: stored, assume consumed
		}
		if id.Name == "_" {
			reportDrop(call)
			return
		}
		var obj types.Object
		if obj = info.Defs[id]; obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
		if st.isNamedResult(info, n, obj) {
			return // assigned to a named result: returning it reads it
		}
		if !st.readReachable(info, g, as, id, obj, n.Decl.Body) {
			pass.Reportf(call.Pos(),
				"durability error from %s swallowed: %s is assigned here but no execution path reads it afterwards — handle it, return it, or annotate //lint:ignore durataint with a rationale",
				describe(call), id.Name)
		}
	}
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !st.taintedCallee(info, call) {
			return
		}
		for _, idx := range errorResultIndexes(info, call) {
			if idx < len(as.Lhs) {
				check(call, as.Lhs[idx])
			}
		}
		return
	}
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || i >= len(as.Lhs) || !st.taintedCallee(info, call) {
			continue
		}
		if len(errorResultIndexes(info, call)) == 0 {
			continue
		}
		check(call, as.Lhs[i])
	}
}

// isNamedResult reports whether obj is one of n's named result parameters.
func (st *duraTaintState) isNamedResult(info *types.Info, n *callgraph.Node, obj types.Object) bool {
	res := n.Decl.Type.Results
	if res == nil {
		return false
	}
	for _, f := range res.List {
		for _, name := range f.Names {
			if info.Defs[name] == obj {
				return true
			}
		}
	}
	return false
}

// readReachable reports whether any execution path reads obj after the
// assignment: a use later in the assignment's block, a use in any
// CFG-reachable block, or a use inside a function literal or defer
// statement anywhere in the body (those run later by construction).
func (st *duraTaintState) readReachable(info *types.Info, g *cfg.Graph, as *ast.AssignStmt, assignID *ast.Ident, obj types.Object, body *ast.BlockStmt) bool {
	// Collect every read of obj with its position.
	var reads []token.Pos
	ast.Inspect(body, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok || id == assignID {
			return true
		}
		if info.Uses[id] == obj {
			reads = append(reads, id.Pos())
		}
		return true
	})
	if len(reads) == 0 {
		return false
	}

	// Reads inside function literals or defers run after the assignment
	// regardless of lexical position.
	lateSpans := make([][2]token.Pos, 0, 4)
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			lateSpans = append(lateSpans, [2]token.Pos{x.Pos(), x.End()})
		case *ast.DeferStmt:
			lateSpans = append(lateSpans, [2]token.Pos{x.Pos(), x.End()})
		}
		return true
	})
	inLate := func(p token.Pos) bool {
		for _, s := range lateSpans {
			if p >= s[0] && p < s[1] {
				return true
			}
		}
		return false
	}
	for _, r := range reads {
		if inLate(r) {
			return true
		}
	}

	blk, idx := g.BlockOf(as)
	if blk == nil {
		return true // dead code or unmapped: stay silent
	}
	reach := g.ReachableFrom(blk)
	for _, r := range reads {
		rb, ri, _ := g.ContainingNode(r)
		if rb == nil {
			continue
		}
		if rb == blk && ri > idx {
			return true
		}
		if rb == blk && ri == idx {
			continue // the assignment statement itself (LHS references)
		}
		if reach[rb] {
			return true
		}
	}
	return false
}
