package lint

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestPathHasSegments(t *testing.T) {
	tests := []struct {
		path, want string
		ok         bool
	}{
		{"repro/internal/engine", "internal/engine", true},
		{"repro/internal/lint/testdata/x/internal/engine", "internal/engine", true},
		{"internal/engine", "internal/engine", true},
		{"repro/internal/engineroom", "internal/engine", false},
		{"repro/myinternal/engine", "internal/engine", false},
		{"repro/internal", "internal/engine", false},
		{"", "internal/engine", false},
	}
	for _, tt := range tests {
		if got := pathHasSegments(tt.path, tt.want); got != tt.ok {
			t.Errorf("pathHasSegments(%q, %q) = %v, want %v", tt.path, tt.want, got, tt.ok)
		}
	}
}

func TestAllAnalyzers(t *testing.T) {
	names := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %+v is incomplete", a)
		}
		if (a.Run == nil) == (a.RunProgram == nil) {
			t.Errorf("analyzer %q must set exactly one of Run and RunProgram", a.Name)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
	}
	for _, want := range []string{"ctxfirst", "detmaprange", "durataint", "floateq", "hotalloc", "lockheld", "lockorder", "nowall", "walerr"} {
		if !names[want] {
			t.Errorf("analyzer %q missing from All()", want)
		}
	}
}

func TestParseDirectives(t *testing.T) {
	src := `package p

//lint:ignore floateq bit-exact sentinel
var a int

//lint:orderindependent commutative fold
var b int

//lint:ignore walerr
var c int

// plain comment, not a directive
var d int
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ds := parseDirectives(fset, f)
	if len(ds) != 3 {
		t.Fatalf("got %d directives, want 3: %+v", len(ds), ds)
	}
	if ds[0].verb != "ignore" || ds[0].analyzer != "floateq" || ds[0].rationale != "bit-exact sentinel" {
		t.Errorf("directive 0 = %+v", ds[0])
	}
	if !ds[0].matches("floateq") || ds[0].matches("walerr") {
		t.Errorf("ignore directive match logic wrong: %+v", ds[0])
	}
	if ds[1].verb != "orderindependent" || !ds[1].matches("detmaprange") || ds[1].matches("floateq") {
		t.Errorf("directive 1 = %+v", ds[1])
	}
	if ds[2].rationale != "" {
		t.Errorf("directive 2 should have empty rationale: %+v", ds[2])
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Analyzer: "floateq",
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
		Message:  "float comparison",
	}
	got := d.String()
	if !strings.Contains(got, "x.go:3:7") || !strings.Contains(got, "[floateq]") {
		t.Errorf("Diagnostic.String() = %q", got)
	}
}
