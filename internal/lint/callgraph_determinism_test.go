package lint

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/lint/callgraph"
)

// buildRepoGraph loads the whole repo from scratch and builds a call graph
// over it — no caching, so two calls exercise two fully independent
// load + type-check + build pipelines.
func buildRepoGraph(t *testing.T) *callgraph.Graph {
	t.Helper()
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	srcs := make([]*callgraph.Source, len(pkgs))
	for i, p := range pkgs {
		srcs[i] = &callgraph.Source{Path: p.Path, Files: p.Files, Info: p.Info, Types: p.Types}
	}
	return callgraph.Build(pkgs[0].Fset, srcs)
}

// TestCallGraphDeterministic pins the determinism guarantee the analyzers
// and CI depend on: two independent builds over the same source — separate
// loads, separate type-check universes, separate graph construction —
// serialize to byte-identical edge lists.
func TestCallGraphDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole repo twice")
	}
	a := strings.Join(buildRepoGraph(t).EdgeList(), "\n")
	b := strings.Join(buildRepoGraph(t).EdgeList(), "\n")
	if a != b {
		al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
		if len(al) != len(bl) {
			t.Fatalf("edge lists differ in length: %d vs %d", len(al), len(bl))
		}
		for i := range al {
			if al[i] != bl[i] {
				t.Fatalf("edge lists diverge at line %d:\n  %s\n  %s", i, al[i], bl[i])
			}
		}
	}
}

// TestInterfaceResolutionPinned pins CHA resolution against a known
// interface in the repo: a call to TrustSource.Trust inside
// internal/detect must fan out to exactly the program's two implementers —
// detect.neutralTrust and *trust.Manager — as Interface-kind edges from
// one call site. A missing implementer means CHA went blind (analyzers
// would silently under-approximate); an extra one means the receiver
// static-type narrowing regressed toward the declaring-interface blowup.
func TestInterfaceResolutionPinned(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole repo")
	}
	g := buildRepoGraph(t)

	want := []string{
		"(*repro/internal/trust.Manager).Trust",
		"(repro/internal/detect.neutralTrust).Trust",
	}
	// Group Interface-kind .Trust edges out of internal/detect by call
	// site; at least one site must resolve to exactly the implementer set.
	bySite := make(map[string][]string)
	for _, n := range g.Funcs {
		if !strings.Contains(n.Name(), "repro/internal/detect.") {
			continue
		}
		for _, e := range n.Out {
			if e.Kind != callgraph.Interface || !strings.HasSuffix(e.Callee.Name(), ".Trust") {
				continue
			}
			site := g.Fset.Position(e.Site).String()
			bySite[site] = append(bySite[site], e.Callee.Name())
		}
	}
	if len(bySite) == 0 {
		t.Fatal("no Interface-kind TrustSource.Trust call sites found in internal/detect")
	}
	for site, callees := range bySite {
		sort.Strings(callees)
		if len(callees) != len(want) {
			t.Errorf("site %s: Trust resolves to %v, want %v", site, callees, want)
			continue
		}
		for i := range want {
			if callees[i] != want[i] {
				t.Errorf("site %s: Trust resolves to %v, want %v", site, callees, want)
				break
			}
		}
	}
}
