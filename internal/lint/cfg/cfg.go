// Package cfg builds a small intraprocedural control-flow graph over a
// function body, using only the standard library. It exists for the
// dataflow questions the lint analyzers ask — "is this guarded-field access
// definitely outside the lock?" (lockheld), "is this durability error ever
// read on any path after the assignment?" (durataint) — questions a lexical
// scan answers wrongly the moment an early return or a loop back-edge is
// involved.
//
// The graph is statement-granular: each basic block holds the statements
// (and branch-condition expressions) that execute in order, and Succs lists
// the blocks control can reach next. Defer statements appear as ordinary
// nodes at their registration point; their calls run at function return,
// which analyzers account for themselves. Goto is handled conservatively
// (the block simply ends; no edge is added for the jump target), panics and
// runtime exits are ignored.
package cfg

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: Nodes execute in order, then control moves to
// one of Succs. A block with no successors ends the function (it reaches
// the exit).
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// Graph is the control-flow graph of one function body. Blocks[0] is the
// entry block; Exit is a distinguished empty block every return and
// falling-off path reaches.
type Graph struct {
	Blocks []*Block
	Exit   *Block

	nodeBlock map[ast.Node]*Block
}

// New builds the control-flow graph of body.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{nodeBlock: make(map[ast.Node]*Block)}
	b := &builder{g: g}
	entry := b.newBlock()
	b.g.Exit = b.newBlock()
	cur := b.stmts(entry, body.List)
	b.edge(cur, b.g.Exit)
	// Entry must stay Blocks[0]; newBlock appended it first.
	_ = entry
	return g
}

// BlockOf returns the block holding node n (a statement or a
// branch-condition expression recorded by the builder) and its index within
// the block, or (nil, -1) when n is not a CFG node.
func (g *Graph) BlockOf(n ast.Node) (*Block, int) {
	blk, ok := g.nodeBlock[n]
	if !ok {
		return nil, -1
	}
	for i, x := range blk.Nodes {
		if x == n {
			return blk, i
		}
	}
	return nil, -1
}

// ReachableFrom returns every block reachable from b by one or more
// successor edges. b itself is included only if it sits on a cycle.
func (g *Graph) ReachableFrom(b *Block) map[*Block]bool {
	seen := make(map[*Block]bool)
	var walk func(*Block)
	walk = func(x *Block) {
		for _, s := range x.Succs {
			if !seen[s] {
				seen[s] = true
				walk(s)
			}
		}
	}
	walk(b)
	return seen
}

// ContainingNode returns the CFG node of block blk (searching all blocks)
// whose source range covers pos, plus its block and index. CFG nodes are
// statements, so every expression position in the body maps to exactly one
// node unless it sits in dead code the builder dropped.
func (g *Graph) ContainingNode(pos token.Pos) (*Block, int, ast.Node) {
	for _, blk := range g.Blocks {
		for i, n := range blk.Nodes {
			if n.Pos() <= pos && pos < n.End() {
				return blk, i, n
			}
		}
	}
	return nil, -1, nil
}

type loopFrame struct {
	label      string
	breakTo    *Block
	continueTo *Block
}

type switchFrame struct {
	label   string
	breakTo *Block
}

type builder struct {
	g        *Graph
	loops    []loopFrame
	switches []switchFrame
	// nextLabel is the pending label for the next loop/switch statement.
	nextLabel string
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// add appends a node to the current block (creating one if control already
// left, i.e. dead code after return/branch).
func (b *builder) add(cur *Block, n ast.Node) *Block {
	if cur == nil {
		cur = b.newBlock() // dead code gets its own unreachable block
	}
	cur.Nodes = append(cur.Nodes, n)
	b.g.nodeBlock[n] = cur
	return cur
}

func (b *builder) stmts(cur *Block, list []ast.Stmt) *Block {
	for _, s := range list {
		cur = b.stmt(cur, s)
	}
	return cur
}

// stmt extends the graph with one statement and returns the block where
// control continues (nil when the statement never falls through).
func (b *builder) stmt(cur *Block, s ast.Stmt) *Block {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(cur, s.List)

	case *ast.LabeledStmt:
		switch s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.nextLabel = s.Label.Name
			return b.stmt(cur, s.Stmt)
		}
		return b.stmt(cur, s.Stmt)

	case *ast.IfStmt:
		if s.Init != nil {
			cur = b.add(cur, s.Init)
		}
		cur = b.add(cur, s.Cond)
		join := b.newBlock()
		thenEntry := b.newBlock()
		b.edge(cur, thenEntry)
		thenExit := b.stmts(thenEntry, s.Body.List)
		b.edge(thenExit, join)
		if s.Else != nil {
			elseEntry := b.newBlock()
			b.edge(cur, elseEntry)
			elseExit := b.stmt(elseEntry, s.Else)
			b.edge(elseExit, join)
		} else {
			b.edge(cur, join)
		}
		return join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			cur = b.add(cur, s.Init)
		}
		head := b.newBlock()
		b.edge(cur, head)
		if s.Cond != nil {
			b.add(head, s.Cond)
		}
		exit := b.newBlock()
		post := b.newBlock()
		body := b.newBlock()
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, exit) // condition false
		}
		b.loops = append(b.loops, loopFrame{label: label, breakTo: exit, continueTo: post})
		bodyExit := b.stmts(body, s.Body.List)
		b.loops = b.loops[:len(b.loops)-1]
		b.edge(bodyExit, post)
		if s.Post != nil {
			b.add(post, s.Post)
		}
		b.edge(post, head)
		return exit

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		cur = b.add(cur, s.X)
		b.edge(cur, head)
		exit := b.newBlock()
		body := b.newBlock()
		b.edge(head, body)
		b.edge(head, exit) // range exhausted
		b.loops = append(b.loops, loopFrame{label: label, breakTo: exit, continueTo: head})
		bodyExit := b.stmts(body, s.Body.List)
		b.loops = b.loops[:len(b.loops)-1]
		b.edge(bodyExit, head)
		return exit

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return b.switchLike(cur, s)

	case *ast.ReturnStmt:
		cur = b.add(cur, s)
		b.edge(cur, b.g.Exit)
		return nil

	case *ast.BranchStmt:
		cur = b.add(cur, s)
		switch s.Tok {
		case token.BREAK:
			if t := b.breakTarget(s.Label); t != nil {
				b.edge(cur, t)
			} else {
				b.edge(cur, b.g.Exit) // malformed/labelled-goto-ish: stay conservative
			}
			return nil
		case token.CONTINUE:
			if t := b.continueTarget(s.Label); t != nil {
				b.edge(cur, t)
			} else {
				b.edge(cur, b.g.Exit)
			}
			return nil
		case token.GOTO:
			// No edge for the jump target: conservative, documented.
			return nil
		case token.FALLTHROUGH:
			// Handled by switchLike via the fallthrough edge; the statement
			// itself ends the block.
			return cur
		}
		return cur

	default:
		// ExprStmt, AssignStmt, DeclStmt, IncDecStmt, SendStmt, GoStmt,
		// DeferStmt, EmptyStmt — straight-line nodes.
		return b.add(cur, s)
	}
}

// switchLike lowers switch, type-switch, and select statements: each clause
// body is a block branching from the head, all falling through to one join.
func (b *builder) switchLike(cur *Block, s ast.Stmt) *Block {
	label := b.takeLabel()
	var clauses []ast.Stmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			cur = b.add(cur, s.Init)
		}
		if s.Tag != nil {
			cur = b.add(cur, s.Tag)
		}
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur = b.add(cur, s.Init)
		}
		cur = b.add(cur, s.Assign)
		clauses = s.Body.List
	case *ast.SelectStmt:
		if cur == nil {
			cur = b.newBlock()
		}
		clauses = s.Body.List
	}
	if cur == nil {
		cur = b.newBlock()
	}
	join := b.newBlock()
	b.switches = append(b.switches, switchFrame{label: label, breakTo: join})

	// Pre-create clause entry blocks so fallthrough can target the next one.
	entries := make([]*Block, len(clauses))
	for i := range clauses {
		entries[i] = b.newBlock()
		b.edge(cur, entries[i])
	}
	for i, c := range clauses {
		var body []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			blk := entries[i]
			for _, e := range c.List {
				blk = b.add(blk, e)
			}
			body = c.Body
			entries[i] = blk
		case *ast.CommClause:
			blk := entries[i]
			if c.Comm != nil {
				blk = b.add(blk, c.Comm)
			}
			body = c.Body
			entries[i] = blk
			hasDefault = hasDefault || c.Comm == nil
		}
		exit := b.stmts(entries[i], body)
		// An explicit fallthrough as the last statement jumps into the next
		// clause body; otherwise the clause exits to the join.
		if ft := lastFallthrough(body); ft != nil && i+1 < len(clauses) {
			b.edge(exit, entries[i+1])
		} else {
			b.edge(exit, join)
		}
	}
	if !hasDefault {
		// Without a default the switch can match nothing (or, for select
		// without default, block then take some clause; the edge is
		// conservative either way).
		b.edge(cur, join)
	}
	b.switches = b.switches[:len(b.switches)-1]
	return join
}

func lastFallthrough(body []ast.Stmt) *ast.BranchStmt {
	if len(body) == 0 {
		return nil
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	if ok && br.Tok == token.FALLTHROUGH {
		return br
	}
	return nil
}

func (b *builder) takeLabel() string {
	l := b.nextLabel
	b.nextLabel = ""
	return l
}

func (b *builder) breakTarget(label *ast.Ident) *Block {
	if label == nil {
		return b.innermostBreak()
	}
	for i := len(b.loops) - 1; i >= 0; i-- {
		if b.loops[i].label == label.Name {
			return b.loops[i].breakTo
		}
	}
	for i := len(b.switches) - 1; i >= 0; i-- {
		if b.switches[i].label == label.Name {
			return b.switches[i].breakTo
		}
	}
	return nil
}

// innermostBreak returns the break target of the innermost enclosing
// for/switch/select. Loop and switch frames are pushed strictly nested and
// each break-target block is created at push time, so the innermost frame
// is whichever stack's top holds the higher block index.
func (b *builder) innermostBreak() *Block {
	var best *Block
	if len(b.loops) > 0 {
		best = b.loops[len(b.loops)-1].breakTo
	}
	if len(b.switches) > 0 {
		st := b.switches[len(b.switches)-1].breakTo
		if best == nil || st.Index > best.Index {
			best = st
		}
	}
	return best
}

func (b *builder) continueTarget(label *ast.Ident) *Block {
	if label == nil {
		if len(b.loops) == 0 {
			return nil
		}
		return b.loops[len(b.loops)-1].continueTo
	}
	for i := len(b.loops) - 1; i >= 0; i-- {
		if b.loops[i].label == label.Name {
			return b.loops[i].continueTo
		}
	}
	return nil
}
