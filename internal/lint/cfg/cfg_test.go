package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses src as a function body and returns the body plus a
// lookup from a marker comment-free statement's source text to its node.
func parseBody(t *testing.T, body string) (*token.FileSet, *ast.BlockStmt) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", "package p\nfunc f() {\n"+body+"\n}", 0)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f.Decls[0].(*ast.FuncDecl).Body
}

// nodeAt returns the CFG node whose source line contains want.
func nodeAt(t *testing.T, fset *token.FileSet, g *Graph, src, want string) (blk *Block, idx int, n ast.Node) {
	t.Helper()
	lines := strings.Split(src, "\n")
	line := -1
	for i, l := range lines {
		if strings.Contains(l, want) {
			line = i + 3 // package + func header precede the body
			break
		}
	}
	if line < 0 {
		t.Fatalf("marker %q not in source", want)
	}
	for _, b := range g.Blocks {
		for i, x := range b.Nodes {
			if fset.Position(x.Pos()).Line == line {
				return b, i, x
			}
		}
	}
	t.Fatalf("no CFG node on line %d (%q)", line, want)
	return nil, -1, nil
}

func TestStraightLine(t *testing.T) {
	src := `x := 1
y := x
_ = y`
	fset, body := parseBody(t, src)
	g := New(body)
	b1, _, _ := nodeAt(t, fset, g, src, "x := 1")
	b2, _, _ := nodeAt(t, fset, g, src, "_ = y")
	if b1 != b2 {
		t.Errorf("straight-line statements split across blocks %d and %d", b1.Index, b2.Index)
	}
	if len(b1.Succs) != 1 || b1.Succs[0] != g.Exit {
		t.Errorf("entry block should flow straight to exit; succs = %v", b1.Succs)
	}
}

func TestIfElseJoin(t *testing.T) {
	src := `x := 1
if x > 0 {
	x = 2
} else {
	x = 3
}
_ = x`
	fset, body := parseBody(t, src)
	g := New(body)
	cond, _, _ := nodeAt(t, fset, g, src, "x > 0")
	thenB, _, _ := nodeAt(t, fset, g, src, "x = 2")
	elseB, _, _ := nodeAt(t, fset, g, src, "x = 3")
	join, _, _ := nodeAt(t, fset, g, src, "_ = x")
	if len(cond.Succs) != 2 {
		t.Fatalf("if head has %d successors, want 2", len(cond.Succs))
	}
	reach := g.ReachableFrom(cond)
	for name, b := range map[string]*Block{"then": thenB, "else": elseB, "join": join} {
		if !reach[b] {
			t.Errorf("%s block not reachable from the condition", name)
		}
	}
	if r := g.ReachableFrom(thenB); r[elseB] {
		t.Error("else branch reachable from then branch")
	}
	if r := g.ReachableFrom(thenB); !r[join] {
		t.Error("join not reachable from then branch")
	}
}

func TestLoopBackEdge(t *testing.T) {
	src := `sum := 0
for i := 0; i < 10; i++ {
	sum += i
}
_ = sum`
	fset, body := parseBody(t, src)
	g := New(body)
	bodyB, _, _ := nodeAt(t, fset, g, src, "sum += i")
	after, _, _ := nodeAt(t, fset, g, src, "_ = sum")
	reach := g.ReachableFrom(bodyB)
	if !reach[bodyB] {
		t.Error("loop body cannot reach itself through the back edge")
	}
	if !reach[after] {
		t.Error("code after the loop not reachable from the body")
	}
}

func TestEarlyReturn(t *testing.T) {
	src := `x := 1
if x > 0 {
	return
}
_ = x`
	fset, body := parseBody(t, src)
	g := New(body)
	ret, _, _ := nodeAt(t, fset, g, src, "return")
	after, _, _ := nodeAt(t, fset, g, src, "_ = x")
	if r := g.ReachableFrom(ret); r[after] {
		t.Error("statement after the if reachable from the return")
	}
	if len(ret.Succs) != 1 || ret.Succs[0] != g.Exit {
		t.Errorf("return should flow only to exit; succs = %v", ret.Succs)
	}
}

func TestSwitchBranches(t *testing.T) {
	src := `x := 1
switch x {
case 1:
	x = 10
case 2:
	x = 20
default:
	x = 30
}
_ = x`
	fset, body := parseBody(t, src)
	g := New(body)
	c1, _, _ := nodeAt(t, fset, g, src, "x = 10")
	c2, _, _ := nodeAt(t, fset, g, src, "x = 20")
	after, _, _ := nodeAt(t, fset, g, src, "_ = x")
	if r := g.ReachableFrom(c1); r[c2] {
		t.Error("sibling case reachable without fallthrough")
	}
	for name, b := range map[string]*Block{"case1": c1, "case2": c2} {
		if r := g.ReachableFrom(b); !r[after] {
			t.Errorf("join not reachable from %s", name)
		}
	}
}

func TestContainingNode(t *testing.T) {
	src := `x := 1
y := x + 2
_ = y`
	fset, body := parseBody(t, src)
	g := New(body)
	want, wi, wn := nodeAt(t, fset, g, src, "y := x + 2")
	// Position of the "+" inside the assignment's RHS.
	pos := wn.(*ast.AssignStmt).Rhs[0].(*ast.BinaryExpr).OpPos
	blk, idx, n := g.ContainingNode(pos)
	if blk != want || idx != wi || n != wn {
		t.Errorf("ContainingNode(+) = (%v, %d, %v), want (%v, %d, %v)", blk, idx, n, want, wi, wn)
	}
	if blk, _, n := g.ContainingNode(token.NoPos); blk != nil || n != nil {
		t.Error("ContainingNode(NoPos) should find nothing")
	}
}

func TestBlockOf(t *testing.T) {
	src := `x := 1
_ = x`
	fset, body := parseBody(t, src)
	g := New(body)
	blk, idx, n := nodeAt(t, fset, g, src, "x := 1")
	gotBlk, gotIdx := g.BlockOf(n)
	if gotBlk != blk || gotIdx != idx {
		t.Errorf("BlockOf = (%v, %d), want (%v, %d)", gotBlk, gotIdx, blk, idx)
	}
	if b, i := g.BlockOf(body); b != nil || i != -1 {
		t.Error("BlockOf(non-CFG node) should report not found")
	}
	_ = fset
}
