package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/cfg"
)

// lockedPkgs are the packages whose types follow the documented locking
// model: a `mu sync.Mutex`/`sync.RWMutex` field guards every other field of
// the struct, and methods either acquire mu before touching state or carry
// the `Locked` naming suffix declaring that the caller already holds it.
// Fields that synchronize themselves — mutexes, sync/atomic values, and
// references to structs carrying their own mu — are exempt from the guard.
var lockedPkgs = []string{"internal/server", "internal/store"}

// shardMuPkgs are the packages under the additional shard-mutex discipline:
// the state mutex is a short-critical-section lock, so calls that block for
// disk- or compute-scale durations (WAL fsyncs, engine evaluations) must
// never run while it is held. See blockingUnderMu.
var shardMuPkgs = []string{"internal/store"}

// blockingUnderMu maps a callee package (matched as whole path segments) to
// the method names whose calls must not run under a held state mutex: they
// fsync or evaluate, and holding mu across them turns one slow disk into a
// stalled shard.
var blockingUnderMu = map[string]map[string]bool{
	"internal/wal":    {"Append": true, "AppendAck": true, "Sync": true, "Compact": true},
	"internal/engine": {"Evaluate": true, "Resume": true},
}

// LockHeld flags methods in internal/server and internal/store that touch
// mutex-guarded struct fields without first acquiring the mutex — the bug
// class behind torn reads of the aggregate cache and lost dirty-range
// updates.
//
// The check is lexical: a method on a struct with a `mu` mutex field must
// call s.mu.Lock() or s.mu.RLock() before its first access to any other
// field of s, or be named with the `Locked` suffix (caller-holds contract).
// `Locked`-suffixed methods are conversely flagged if they acquire mu
// themselves, which would self-deadlock under the contract. In
// internal/store a second rule enforces the shard-mutex discipline: WAL
// appends/fsyncs/compactions and engine evaluations must not be called
// while the receiver's mu is lexically held. Intentional exceptions
// (pre-publication initialization paths) are annotated
// `//lint:ignore lockheld <rationale>` on the method declaration.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc: "flags internal/server and internal/store methods that access mutex-guarded fields " +
		"before acquiring the documented mu, Locked-suffixed methods that lock it themselves, " +
		"and internal/store methods that fsync or evaluate while holding it",
	Run: runLockHeld,
}

func runLockHeld(pass *Pass) error {
	if !pathHasAnySegments(pass.Pkg.Path, lockedPkgs) {
		return nil
	}
	shardRules := pathHasAnySegments(pass.Pkg.Path, shardMuPkgs)
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Recv == nil || len(fn.Recv.List) == 0 {
				continue
			}
			checkLockDiscipline(pass, fn)
			if shardRules {
				checkBlockingUnderMu(pass, fn)
			}
		}
	}
	return nil
}

// Held-state lattice for the lock-discipline dataflow: the receiver's mu is
// definitely not held, definitely held, or held on some paths only.
const (
	muUnheld = iota
	muHeld
	muMixed
)

// checkLockDiscipline runs a CFG dataflow over the method: the receiver's
// mu state propagates through lock/unlock events block by block, and a
// guarded-field access is flagged only where mu is definitely not held on
// every path — which catches the unlock-then-relock gap (release mu across
// an fsync, touch state, reacquire) that a first-lock-versus-first-access
// comparison is blind to, while branch-dependent locking (mixed state)
// stays silent. Deferred unlocks run at return and do not release the
// lexical hold; accesses are evaluated at their lexical position.
func checkLockDiscipline(pass *Pass, fn *ast.FuncDecl) {
	recvField := fn.Recv.List[0]
	if len(recvField.Names) == 0 || recvField.Names[0].Name == "_" {
		return
	}
	recvObj, ok := pass.Pkg.Info.Defs[recvField.Names[0]]
	if !ok {
		return
	}
	if !hasGuardField(recvObj.Type()) {
		return
	}
	info := pass.Pkg.Info
	recv := recvField.Names[0].Name

	if strings.HasSuffix(fn.Name.Name, "Locked") {
		firstLock := token.NoPos
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if isMuLockCall(info, call, recvObj) && (!firstLock.IsValid() || call.Pos() < firstLock) {
					firstLock = call.Pos()
				}
			}
			return true
		})
		if firstLock.IsValid() {
			pass.Reportf(firstLock,
				"method %s acquires %s.mu but its Locked suffix promises the caller already holds it: this self-deadlocks (sync.Mutex is not reentrant)",
				fn.Name.Name, recv)
		}
		return
	}

	// Deferred lock/unlock calls run at return, not at their lexical
	// position: exclude them from the event stream.
	var deferSpans [][2]token.Pos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferSpans = append(deferSpans, [2]token.Pos{d.Pos(), d.End()})
		}
		return true
	})
	inDefer := func(p token.Pos) bool {
		for _, s := range deferSpans {
			if p >= s[0] && p < s[1] {
				return true
			}
		}
		return false
	}

	type muEvent struct {
		pos   token.Pos
		kind  int // evLock, evUnlock, or evAccess
		field string
	}
	g := cfg.New(fn.Body)
	events := make([][]muEvent, len(g.Blocks))
	for _, b := range g.Blocks {
		var evs []muEvent
		for _, node := range b.Nodes {
			ast.Inspect(node, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if inDefer(n.Pos()) {
						return true
					}
					if isMuLockCall(info, n, recvObj) {
						evs = append(evs, muEvent{pos: n.Pos(), kind: evLock})
					} else if isMuUnlockCall(info, n, recvObj) {
						evs = append(evs, muEvent{pos: n.Pos(), kind: evUnlock})
					}
				case *ast.SelectorExpr:
					if name, ok := guardedFieldAccess(info, n, recvObj); ok {
						evs = append(evs, muEvent{pos: n.Pos(), kind: evAccess, field: name})
					}
				}
				return true
			})
		}
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
		events[b.Index] = evs
	}

	badPos := token.NoPos
	var badField string
	apply := func(state int, evs []muEvent, record bool) int {
		for _, ev := range evs {
			switch ev.kind {
			case evLock:
				state = muHeld
			case evUnlock:
				state = muUnheld
			case evAccess:
				if state == muUnheld && record && (!badPos.IsValid() || ev.pos < badPos) {
					badPos, badField = ev.pos, ev.field
				}
			}
		}
		return state
	}

	// Fixpoint over may/must-held: meet is equality-or-mixed.
	in := make([]int, len(g.Blocks))
	for i := range in {
		in[i] = -1 // unvisited
	}
	in[0] = muUnheld
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			if in[b.Index] < 0 {
				continue
			}
			out := apply(in[b.Index], events[b.Index], false)
			for _, s := range b.Succs {
				merged := out
				if cur := in[s.Index]; cur >= 0 && cur != out {
					merged = muMixed
				}
				if merged != in[s.Index] {
					in[s.Index] = merged
					changed = true
				}
			}
		}
	}
	for _, b := range g.Blocks {
		if in[b.Index] < 0 {
			continue // unreachable
		}
		apply(in[b.Index], events[b.Index], true)
	}

	if badPos.IsValid() {
		pos := pass.Pkg.Fset.Position(badPos)
		pass.Reportf(fn.Name.Pos(),
			"method %s accesses guarded field %s.%s (line %d) without holding %s.mu: acquire the mutex first, add the Locked suffix (caller-holds contract), or annotate //lint:ignore lockheld with a rationale",
			fn.Name.Name, recv, badField, pos.Line, recv)
	}
}

// isMuUnlockCall reports whether call releases the receiver's mutex:
// recv.mu.Unlock() or recv.mu.RUnlock().
func isMuUnlockCall(info *types.Info, call *ast.CallExpr, recvObj types.Object) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Unlock" && sel.Sel.Name != "RUnlock") {
		return false
	}
	x, ok := sel.X.(*ast.SelectorExpr)
	if !ok || x.Sel.Name != "mu" {
		return false
	}
	id, ok := x.X.(*ast.Ident)
	return ok && info.Uses[id] == recvObj
}

// hasGuardField reports whether the (possibly pointer) receiver type is a
// struct with a field `mu` of type sync.Mutex or sync.RWMutex.
func hasGuardField(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != "mu" {
			continue
		}
		if pkg, name := namedRecv(f.Type()); pkg == "sync" && (name == "Mutex" || name == "RWMutex") {
			return true
		}
	}
	return false
}

// isMuLockCall reports whether call acquires the receiver's mutex: either
// directly (recv.mu.Lock(), recv.mu.RLock()) or through a receiver helper
// method whose name ends in Lock/RLock and returns holding the mutex
// (internal/server's freshRLock pattern). Unlock/RUnlock do not match the
// suffix check — Go method names are case-sensitive.
func isMuLockCall(info *types.Info, call *ast.CallExpr, recvObj types.Object) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !strings.HasSuffix(sel.Sel.Name, "Lock") {
		return false
	}
	switch x := sel.X.(type) {
	case *ast.SelectorExpr: // recv.mu.Lock() / recv.mu.RLock()
		if sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" {
			return false
		}
		if x.Sel.Name != "mu" {
			return false
		}
		id, ok := x.X.(*ast.Ident)
		return ok && info.Uses[id] == recvObj
	case *ast.Ident: // recv.freshRLock() — a lock-acquiring helper method
		return info.Uses[x] == recvObj
	}
	return false
}

// guardedFieldAccess resolves sel as recv.<field> for a struct field that
// the receiver's mu guards, and returns the field name. Fields whose types
// synchronize themselves are not guarded and never match.
func guardedFieldAccess(info *types.Info, sel *ast.SelectorExpr, recvObj types.Object) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok || info.Uses[id] != recvObj {
		return "", false
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return "", false
	}
	name := selection.Obj().Name()
	if name == "mu" {
		return "", false
	}
	if selfSynchronized(selection.Obj().Type()) {
		return "", false
	}
	return name, true
}

// selfSynchronized reports whether a field of this type manages its own
// synchronization, so touching it without the struct's mu is not a torn
// access: sync mutexes (a striping gate next to mu), sync/atomic values,
// and pointers/slices/arrays of structs that carry their own mu guard (a
// coordinator holding a reference to a self-locking storage layer).
func selfSynchronized(t types.Type) bool {
	if pkg, name := namedRecv(t); pkg == "sync" && (name == "Mutex" || name == "RWMutex") {
		return true
	} else if pkg == "sync/atomic" {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return selfSynchronized(u.Elem())
	case *types.Array:
		return selfSynchronized(u.Elem())
	}
	return hasGuardField(t)
}

// checkBlockingUnderMu enforces the shard-mutex discipline on a method: no
// call on the blockingUnderMu list (WAL fsync paths, engine evaluation) may
// appear while the receiver's mu is lexically held. The scan is a linear
// walk over the method's lock/unlock/call events in source order; unlocks
// inside defer statements run at return and therefore do not release the
// lexical hold.
func checkBlockingUnderMu(pass *Pass, fn *ast.FuncDecl) {
	recvField := fn.Recv.List[0]
	if len(recvField.Names) == 0 || recvField.Names[0].Name == "_" {
		return
	}
	recvObj, ok := pass.Pkg.Info.Defs[recvField.Names[0]]
	if !ok || !hasGuardField(recvObj.Type()) {
		return
	}
	info := pass.Pkg.Info

	type event struct {
		pos  token.Pos
		kind int
		name string // callee description for evBlocking
	}
	var events []event
	var deferSpans [][2]token.Pos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			deferSpans = append(deferSpans, [2]token.Pos{n.Pos(), n.End()})
		case *ast.CallExpr:
			if kind, ok := muEdge(info, n, recvObj); ok {
				events = append(events, event{pos: n.Pos(), kind: kind})
				return true
			}
			callee := calleeFunc(info, n)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			for pkgSeg, names := range blockingUnderMu {
				if names[callee.Name()] && pathHasSegments(callee.Pkg().Path(), pkgSeg) {
					events = append(events, event{
						pos: n.Pos(), kind: evBlocking,
						name: pkgSeg[strings.LastIndexByte(pkgSeg, '/')+1:] + "." + callee.Name(),
					})
				}
			}
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	inDefer := func(p token.Pos) bool {
		for _, span := range deferSpans {
			if p >= span[0] && p < span[1] {
				return true
			}
		}
		return false
	}
	recv := recvField.Names[0].Name
	held := false
	for _, ev := range events {
		switch ev.kind {
		case evLock:
			held = true
		case evUnlock:
			if !inDefer(ev.pos) {
				held = false
			}
		case evBlocking:
			if held {
				pass.Reportf(ev.pos,
					"method %s calls %s while holding %s.mu: WAL fsyncs and engine evaluations must run outside the state mutex — copy what you need under mu, unlock, then call (or annotate //lint:ignore lockheld with a rationale)",
					fn.Name.Name, ev.name, recv)
			}
		}
	}
}

// muEdge classifies call as an acquisition or release of recv.mu.
func muEdge(info *types.Info, call *ast.CallExpr, recvObj types.Object) (int, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return 0, false
	}
	x, ok := sel.X.(*ast.SelectorExpr)
	if !ok || x.Sel.Name != "mu" {
		return 0, false
	}
	id, ok := x.X.(*ast.Ident)
	if !ok || info.Uses[id] != recvObj {
		return 0, false
	}
	switch sel.Sel.Name {
	case "Lock":
		return evLock, true
	case "Unlock":
		return evUnlock, true
	}
	return 0, false
}

// Event kinds for the shard-mutex discipline scan.
const (
	evLock = iota
	evUnlock
	evBlocking
	evAccess
)
