package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockedPkgs are the packages whose types follow the documented locking
// model: a `mu sync.Mutex`/`sync.RWMutex` field guards every other field of
// the struct, and methods either acquire mu before touching state or carry
// the `Locked` naming suffix declaring that the caller already holds it.
// Fields that synchronize themselves — mutexes, sync/atomic values, and
// references to structs carrying their own mu — are exempt from the guard.
var lockedPkgs = []string{"internal/server", "internal/store"}

// shardMuPkgs are the packages under the additional shard-mutex discipline:
// the state mutex is a short-critical-section lock, so calls that block for
// disk- or compute-scale durations (WAL fsyncs, engine evaluations) must
// never run while it is held. See blockingUnderMu.
var shardMuPkgs = []string{"internal/store"}

// blockingUnderMu maps a callee package (matched as whole path segments) to
// the method names whose calls must not run under a held state mutex: they
// fsync or evaluate, and holding mu across them turns one slow disk into a
// stalled shard.
var blockingUnderMu = map[string]map[string]bool{
	"internal/wal":    {"Append": true, "AppendAck": true, "Sync": true, "Compact": true},
	"internal/engine": {"Evaluate": true, "Resume": true},
}

// LockHeld flags methods in internal/server and internal/store that touch
// mutex-guarded struct fields without first acquiring the mutex — the bug
// class behind torn reads of the aggregate cache and lost dirty-range
// updates.
//
// The check is lexical: a method on a struct with a `mu` mutex field must
// call s.mu.Lock() or s.mu.RLock() before its first access to any other
// field of s, or be named with the `Locked` suffix (caller-holds contract).
// `Locked`-suffixed methods are conversely flagged if they acquire mu
// themselves, which would self-deadlock under the contract. In
// internal/store a second rule enforces the shard-mutex discipline: WAL
// appends/fsyncs/compactions and engine evaluations must not be called
// while the receiver's mu is lexically held. Intentional exceptions
// (pre-publication initialization paths) are annotated
// `//lint:ignore lockheld <rationale>` on the method declaration.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc: "flags internal/server and internal/store methods that access mutex-guarded fields " +
		"before acquiring the documented mu, Locked-suffixed methods that lock it themselves, " +
		"and internal/store methods that fsync or evaluate while holding it",
	Run: runLockHeld,
}

func runLockHeld(pass *Pass) error {
	if !pathHasAnySegments(pass.Pkg.Path, lockedPkgs) {
		return nil
	}
	shardRules := pathHasAnySegments(pass.Pkg.Path, shardMuPkgs)
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Recv == nil || len(fn.Recv.List) == 0 {
				continue
			}
			checkLockDiscipline(pass, fn)
			if shardRules {
				checkBlockingUnderMu(pass, fn)
			}
		}
	}
	return nil
}

func checkLockDiscipline(pass *Pass, fn *ast.FuncDecl) {
	recvField := fn.Recv.List[0]
	if len(recvField.Names) == 0 || recvField.Names[0].Name == "_" {
		return
	}
	recvObj, ok := pass.Pkg.Info.Defs[recvField.Names[0]]
	if !ok {
		return
	}
	if !hasGuardField(recvObj.Type()) {
		return
	}

	firstLock := token.NoPos
	firstAccess := token.NoPos
	var firstAccessField string
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isMuLockCall(pass.Pkg.Info, n, recvObj) && (!firstLock.IsValid() || n.Pos() < firstLock) {
				firstLock = n.Pos()
			}
		case *ast.SelectorExpr:
			name, ok := guardedFieldAccess(pass.Pkg.Info, n, recvObj)
			if ok && (!firstAccess.IsValid() || n.Pos() < firstAccess) {
				firstAccess = n.Pos()
				firstAccessField = name
			}
		}
		return true
	})

	recv := recvField.Names[0].Name
	if strings.HasSuffix(fn.Name.Name, "Locked") {
		if firstLock.IsValid() {
			pass.Reportf(firstLock,
				"method %s acquires %s.mu but its Locked suffix promises the caller already holds it: this self-deadlocks (sync.Mutex is not reentrant)",
				fn.Name.Name, recv)
		}
		return
	}
	if firstAccess.IsValid() && (!firstLock.IsValid() || firstAccess < firstLock) {
		pos := pass.Pkg.Fset.Position(firstAccess)
		pass.Reportf(fn.Name.Pos(),
			"method %s accesses guarded field %s.%s (line %d) without holding %s.mu: acquire the mutex first, add the Locked suffix (caller-holds contract), or annotate //lint:ignore lockheld with a rationale",
			fn.Name.Name, recv, firstAccessField, pos.Line, recv)
	}
}

// hasGuardField reports whether the (possibly pointer) receiver type is a
// struct with a field `mu` of type sync.Mutex or sync.RWMutex.
func hasGuardField(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != "mu" {
			continue
		}
		if pkg, name := namedRecv(f.Type()); pkg == "sync" && (name == "Mutex" || name == "RWMutex") {
			return true
		}
	}
	return false
}

// isMuLockCall reports whether call acquires the receiver's mutex: either
// directly (recv.mu.Lock(), recv.mu.RLock()) or through a receiver helper
// method whose name ends in Lock/RLock and returns holding the mutex
// (internal/server's freshRLock pattern). Unlock/RUnlock do not match the
// suffix check — Go method names are case-sensitive.
func isMuLockCall(info *types.Info, call *ast.CallExpr, recvObj types.Object) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !strings.HasSuffix(sel.Sel.Name, "Lock") {
		return false
	}
	switch x := sel.X.(type) {
	case *ast.SelectorExpr: // recv.mu.Lock() / recv.mu.RLock()
		if sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" {
			return false
		}
		if x.Sel.Name != "mu" {
			return false
		}
		id, ok := x.X.(*ast.Ident)
		return ok && info.Uses[id] == recvObj
	case *ast.Ident: // recv.freshRLock() — a lock-acquiring helper method
		return info.Uses[x] == recvObj
	}
	return false
}

// guardedFieldAccess resolves sel as recv.<field> for a struct field that
// the receiver's mu guards, and returns the field name. Fields whose types
// synchronize themselves are not guarded and never match.
func guardedFieldAccess(info *types.Info, sel *ast.SelectorExpr, recvObj types.Object) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok || info.Uses[id] != recvObj {
		return "", false
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return "", false
	}
	name := selection.Obj().Name()
	if name == "mu" {
		return "", false
	}
	if selfSynchronized(selection.Obj().Type()) {
		return "", false
	}
	return name, true
}

// selfSynchronized reports whether a field of this type manages its own
// synchronization, so touching it without the struct's mu is not a torn
// access: sync mutexes (a striping gate next to mu), sync/atomic values,
// and pointers/slices/arrays of structs that carry their own mu guard (a
// coordinator holding a reference to a self-locking storage layer).
func selfSynchronized(t types.Type) bool {
	if pkg, name := namedRecv(t); pkg == "sync" && (name == "Mutex" || name == "RWMutex") {
		return true
	} else if pkg == "sync/atomic" {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return selfSynchronized(u.Elem())
	case *types.Array:
		return selfSynchronized(u.Elem())
	}
	return hasGuardField(t)
}

// checkBlockingUnderMu enforces the shard-mutex discipline on a method: no
// call on the blockingUnderMu list (WAL fsync paths, engine evaluation) may
// appear while the receiver's mu is lexically held. The scan is a linear
// walk over the method's lock/unlock/call events in source order; unlocks
// inside defer statements run at return and therefore do not release the
// lexical hold.
func checkBlockingUnderMu(pass *Pass, fn *ast.FuncDecl) {
	recvField := fn.Recv.List[0]
	if len(recvField.Names) == 0 || recvField.Names[0].Name == "_" {
		return
	}
	recvObj, ok := pass.Pkg.Info.Defs[recvField.Names[0]]
	if !ok || !hasGuardField(recvObj.Type()) {
		return
	}
	info := pass.Pkg.Info

	type event struct {
		pos  token.Pos
		kind int
		name string // callee description for evBlocking
	}
	var events []event
	var deferSpans [][2]token.Pos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			deferSpans = append(deferSpans, [2]token.Pos{n.Pos(), n.End()})
		case *ast.CallExpr:
			if kind, ok := muEdge(info, n, recvObj); ok {
				events = append(events, event{pos: n.Pos(), kind: kind})
				return true
			}
			callee := calleeFunc(info, n)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			for pkgSeg, names := range blockingUnderMu {
				if names[callee.Name()] && pathHasSegments(callee.Pkg().Path(), pkgSeg) {
					events = append(events, event{
						pos: n.Pos(), kind: evBlocking,
						name: pkgSeg[strings.LastIndexByte(pkgSeg, '/')+1:] + "." + callee.Name(),
					})
				}
			}
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	inDefer := func(p token.Pos) bool {
		for _, span := range deferSpans {
			if p >= span[0] && p < span[1] {
				return true
			}
		}
		return false
	}
	recv := recvField.Names[0].Name
	held := false
	for _, ev := range events {
		switch ev.kind {
		case evLock:
			held = true
		case evUnlock:
			if !inDefer(ev.pos) {
				held = false
			}
		case evBlocking:
			if held {
				pass.Reportf(ev.pos,
					"method %s calls %s while holding %s.mu: WAL fsyncs and engine evaluations must run outside the state mutex — copy what you need under mu, unlock, then call (or annotate //lint:ignore lockheld with a rationale)",
					fn.Name.Name, ev.name, recv)
			}
		}
	}
}

// muEdge classifies call as an acquisition or release of recv.mu.
func muEdge(info *types.Info, call *ast.CallExpr, recvObj types.Object) (int, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return 0, false
	}
	x, ok := sel.X.(*ast.SelectorExpr)
	if !ok || x.Sel.Name != "mu" {
		return 0, false
	}
	id, ok := x.X.(*ast.Ident)
	if !ok || info.Uses[id] != recvObj {
		return 0, false
	}
	switch sel.Sel.Name {
	case "Lock":
		return evLock, true
	case "Unlock":
		return evUnlock, true
	}
	return 0, false
}

// Event kinds for the shard-mutex discipline scan.
const (
	evLock = iota
	evUnlock
	evBlocking
)
