package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// lockedPkgs are the packages whose types follow the documented locking
// model: a `mu sync.Mutex`/`sync.RWMutex` field guards every other field of
// the struct, and methods either acquire mu before touching state or carry
// the `Locked` naming suffix declaring that the caller already holds it.
var lockedPkgs = []string{"internal/server"}

// LockHeld flags methods in internal/server that touch mutex-guarded struct
// fields without first acquiring the mutex — the bug class behind torn
// reads of the aggregate cache and lost dirty-range updates.
//
// The check is lexical: a method on a struct with a `mu` mutex field must
// call s.mu.Lock() or s.mu.RLock() before its first access to any other
// field of s, or be named with the `Locked` suffix (caller-holds contract).
// `Locked`-suffixed methods are conversely flagged if they acquire mu
// themselves, which would self-deadlock under the contract. Intentional
// exceptions (pre-publication initialization paths) are annotated
// `//lint:ignore lockheld <rationale>` on the method declaration.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc: "flags internal/server methods that access mutex-guarded fields " +
		"before acquiring the documented mu, and Locked-suffixed methods that lock it themselves",
	Run: runLockHeld,
}

func runLockHeld(pass *Pass) error {
	if !pathHasAnySegments(pass.Pkg.Path, lockedPkgs) {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Recv == nil || len(fn.Recv.List) == 0 {
				continue
			}
			checkLockDiscipline(pass, fn)
		}
	}
	return nil
}

func checkLockDiscipline(pass *Pass, fn *ast.FuncDecl) {
	recvField := fn.Recv.List[0]
	if len(recvField.Names) == 0 || recvField.Names[0].Name == "_" {
		return
	}
	recvObj, ok := pass.Pkg.Info.Defs[recvField.Names[0]]
	if !ok {
		return
	}
	if !hasGuardField(recvObj.Type()) {
		return
	}

	firstLock := token.NoPos
	firstAccess := token.NoPos
	var firstAccessField string
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isMuLockCall(pass.Pkg.Info, n, recvObj) && (!firstLock.IsValid() || n.Pos() < firstLock) {
				firstLock = n.Pos()
			}
		case *ast.SelectorExpr:
			name, ok := guardedFieldAccess(pass.Pkg.Info, n, recvObj)
			if ok && (!firstAccess.IsValid() || n.Pos() < firstAccess) {
				firstAccess = n.Pos()
				firstAccessField = name
			}
		}
		return true
	})

	recv := recvField.Names[0].Name
	if strings.HasSuffix(fn.Name.Name, "Locked") {
		if firstLock.IsValid() {
			pass.Reportf(firstLock,
				"method %s acquires %s.mu but its Locked suffix promises the caller already holds it: this self-deadlocks (sync.Mutex is not reentrant)",
				fn.Name.Name, recv)
		}
		return
	}
	if firstAccess.IsValid() && (!firstLock.IsValid() || firstAccess < firstLock) {
		pos := pass.Pkg.Fset.Position(firstAccess)
		pass.Reportf(fn.Name.Pos(),
			"method %s accesses guarded field %s.%s (line %d) without holding %s.mu: acquire the mutex first, add the Locked suffix (caller-holds contract), or annotate //lint:ignore lockheld with a rationale",
			fn.Name.Name, recv, firstAccessField, pos.Line, recv)
	}
}

// hasGuardField reports whether the (possibly pointer) receiver type is a
// struct with a field `mu` of type sync.Mutex or sync.RWMutex.
func hasGuardField(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != "mu" {
			continue
		}
		if pkg, name := namedRecv(f.Type()); pkg == "sync" && (name == "Mutex" || name == "RWMutex") {
			return true
		}
	}
	return false
}

// isMuLockCall reports whether call acquires the receiver's mutex: either
// directly (recv.mu.Lock(), recv.mu.RLock()) or through a receiver helper
// method whose name ends in Lock/RLock and returns holding the mutex
// (internal/server's freshRLock pattern). Unlock/RUnlock do not match the
// suffix check — Go method names are case-sensitive.
func isMuLockCall(info *types.Info, call *ast.CallExpr, recvObj types.Object) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !strings.HasSuffix(sel.Sel.Name, "Lock") {
		return false
	}
	switch x := sel.X.(type) {
	case *ast.SelectorExpr: // recv.mu.Lock() / recv.mu.RLock()
		if sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" {
			return false
		}
		if x.Sel.Name != "mu" {
			return false
		}
		id, ok := x.X.(*ast.Ident)
		return ok && info.Uses[id] == recvObj
	case *ast.Ident: // recv.freshRLock() — a lock-acquiring helper method
		return info.Uses[x] == recvObj
	}
	return false
}

// guardedFieldAccess resolves sel as recv.<field> for a non-mu struct field
// and returns the field name.
func guardedFieldAccess(info *types.Info, sel *ast.SelectorExpr, recvObj types.Object) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok || info.Uses[id] != recvObj {
		return "", false
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return "", false
	}
	name := selection.Obj().Name()
	if name == "mu" {
		return "", false
	}
	return name, true
}
