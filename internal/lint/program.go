package lint

import (
	"fmt"
	"go/token"
	"sort"
	"sync"

	"repro/internal/lint/callgraph"
)

// Program is the whole-program view handed to interprocedural analyzers:
// every loaded package plus a lazily built, cached call graph shared across
// analyzers, and a fact store through which analyzers export their
// summaries so later analyzers (and tests) can compose with them.
type Program struct {
	// Pkgs holds the loaded packages sorted by import path.
	Pkgs []*Package
	// Fset is the file set shared by every package in the program.
	Fset *token.FileSet

	cgOnce sync.Once
	cg     *callgraph.Graph

	mu    sync.Mutex
	facts map[string]any
}

// NewProgram assembles a Program from loaded packages. All packages must
// share one token.FileSet (the loader guarantees this).
func NewProgram(pkgs []*Package) *Program {
	sorted := append([]*Package(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })
	p := &Program{Pkgs: sorted, facts: make(map[string]any)}
	if len(sorted) > 0 {
		p.Fset = sorted[0].Fset
	}
	return p
}

// CallGraph builds the program's CHA call graph on first use and returns
// the cached graph afterwards — every interprocedural analyzer shares one
// build.
func (p *Program) CallGraph() *callgraph.Graph {
	p.cgOnce.Do(func() {
		srcs := make([]*callgraph.Source, len(p.Pkgs))
		for i, pkg := range p.Pkgs {
			srcs[i] = &callgraph.Source{
				Path:  pkg.Path,
				Files: pkg.Files,
				Info:  pkg.Info,
				Types: pkg.Types,
			}
		}
		p.cg = callgraph.Build(p.Fset, srcs)
	})
	return p.cg
}

// ExportFact records a named analyzer fact (its computed summary — lock
// graph, taint set, hotpath roots) for later analyzers and tests to
// consume via Fact.
func (p *Program) ExportFact(analyzer string, fact any) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.facts[analyzer] = fact
}

// Fact returns the fact exported under the analyzer's name, or nil.
func (p *Program) Fact(analyzer string) any {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.facts[analyzer]
}

// A ProgramPass provides one whole-program analyzer with the Program and a
// diagnostic sink; the suppression pipeline downstream is identical to the
// per-package one.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Prog.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ExportFact publishes the running analyzer's fact under its own name.
func (p *ProgramPass) ExportFact(fact any) {
	p.Prog.ExportFact(p.Analyzer.Name, fact)
}
