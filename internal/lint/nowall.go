package lint

import (
	"go/ast"
	"go/types"
)

// pureComputePkgs must be deterministic functions of their inputs: the
// engine replays them during checkpoint resume and the property tests
// compare their outputs bit-for-bit across runs. A wall-clock read or a
// global (auto-seeded) rand source makes a resumed evaluation diverge from
// the original — exactly the silent nondeterminism the determinism contract
// forbids.
var pureComputePkgs = []string{
	"internal/stats",
	"internal/armodel",
	"internal/detect",
	"internal/core",
}

// seededConstructors are the math/rand(/v2) package-level functions that
// build an explicitly seeded generator — the approved pattern (the caller
// threads a *rand.Rand down, as internal/stats.NewRNG does).
var seededConstructors = map[string]bool{
	"New":        true,
	"NewPCG":     true,
	"NewSource":  true,
	"NewChaCha8": true,
	"NewZipf":    true,
}

// NoWall flags time.Now and global math/rand state in pure compute
// packages. Randomness must come in through an explicitly seeded *rand.Rand
// parameter and time through a value, so that replay and resume are
// bit-exact.
var NoWall = &Analyzer{
	Name: "nowall",
	Doc: "flags time.Now and unseeded global math/rand usage in pure compute " +
		"packages (internal/stats, internal/armodel, internal/detect, internal/core)",
	Run: runNoWall,
}

func runNoWall(pass *Pass) error {
	if !pathHasAnySegments(pass.Pkg.Path, pureComputePkgs) {
		return nil
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			switch pn.Imported().Path() {
			case "time":
				if sel.Sel.Name == "Now" {
					pass.Reportf(sel.Pos(),
						"time.Now in pure compute package %s: wall-clock reads break checkpoint resume; take the time as a parameter (or annotate //lint:ignore nowall with a rationale)",
						pass.Pkg.Path)
				}
			case "math/rand", "math/rand/v2":
				// Only package-level *functions* touch the global auto-seeded
				// source; type references (rand.Rand in a signature) are the
				// approved dependency-injection pattern.
				if _, isFunc := info.Uses[sel.Sel].(*types.Func); !isFunc {
					return true
				}
				if seededConstructors[sel.Sel.Name] {
					return true
				}
				pass.Reportf(sel.Pos(),
					"global rand.%s in pure compute package %s: the process-global source is auto-seeded, so replay diverges; thread an explicitly seeded *rand.Rand (stats.NewRNG) instead (or annotate //lint:ignore nowall with a rationale)",
					sel.Sel.Name, pass.Pkg.Path)
			}
			return true
		})
	}
	return nil
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{CtxFirst, DetMapRange, DuraTaint, FloatEq, HotAlloc, LockHeld, LockOrder, NoWall, WALErr}
}
