package lint

import (
	"go/ast"
	"go/types"
)

// ctxFirstPkgs are the serving-path packages where deadline propagation is
// mandatory: any exported function here that performs durable I/O or
// spawns workers is on the request path, and a missing context parameter
// severs the cancellation chain from the HTTP handler down to the engine
// worker pool.
var ctxFirstPkgs = []string{
	"internal/server",
	"internal/store",
	"internal/engine",
}

// ctxWALWritePath are the internal/wal functions whose call marks the
// caller as doing durable I/O. (Close is excluded: drain paths are
// deliberately context-free, matching io.Closer.)
var ctxWALWritePath = map[string]bool{
	"Append":    true,
	"AppendAck": true,
	"Sync":      true,
	"Compact":   true,
	"Open":      true,
}

// CtxFirst enforces the deadline-propagation contract on the serving path
// (DESIGN.md §11): exported functions in internal/server, internal/store,
// and internal/engine that write the WAL, spawn goroutines, or call another
// context-aware function must take a context.Context as their first
// parameter. Work reached through unexported helpers counts — the check
// propagates through the package's call graph — but work inside function
// literals does not: a closure runs later under its own caller's context.
//
// Functions named Close are exempt (drain is context-free by convention);
// other deliberate exceptions require `//lint:ignore ctxfirst <rationale>`.
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc: "flags exported functions in internal/server, internal/store, and internal/engine " +
		"that do durable I/O or spawn workers without taking context.Context first",
	Run: runCtxFirst,
}

func runCtxFirst(pass *Pass) error {
	if !pathHasAnySegments(pass.Pkg.Path, ctxFirstPkgs) {
		return nil
	}
	info := pass.Pkg.Info

	// Index this package's function declarations by their type object so
	// call edges can be resolved to declarations.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
		}
	}

	// Base facts: why a function does deadline-worthy work, plus the
	// same-package call edges for propagation through helpers.
	work := map[*types.Func]string{}
	calls := map[*types.Func][]*types.Func{}
	for obj, fd := range decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				// A closure's work happens when the closure runs, under
				// whatever context its eventual caller holds — building one
				// is not work.
				return false
			case *ast.GoStmt:
				if _, ok := work[obj]; !ok {
					work[obj] = "spawns a goroutine"
				}
			case *ast.CallExpr:
				callee := calleeFunc(info, n)
				if callee == nil {
					return true
				}
				if reason := ctxWorkReason(callee); reason != "" {
					if _, ok := work[obj]; !ok {
						work[obj] = reason
					}
				}
				if _, local := decls[callee]; local {
					calls[obj] = append(calls[obj], callee)
				}
			}
			return true
		})
	}

	// Propagate through unexported helpers to a fixed point: an exported
	// wrapper cannot hide WAL writes behind a private method.
	for changed := true; changed; {
		changed = false
		for caller, callees := range calls {
			if _, done := work[caller]; done {
				continue
			}
			for _, c := range callees {
				if _, ok := work[c]; ok {
					work[caller] = "reaches " + work[c] + " via " + c.Name()
					changed = true
					break
				}
			}
		}
	}

	for obj, fd := range decls {
		reason, ok := work[obj]
		if !ok || !fd.Name.IsExported() || fd.Name.Name == "Close" {
			continue
		}
		if takesCtxFirst(obj) {
			continue
		}
		pass.Reportf(fd.Name.Pos(),
			"exported %s %s but does not take context.Context as its first parameter: deadline propagation on the serving path breaks here (or annotate //lint:ignore ctxfirst with a rationale)",
			fd.Name.Name, reason)
	}
	return nil
}

// calleeFunc resolves a call expression to the called function object, for
// plain calls, method calls, and package-qualified calls alike.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// ctxWorkReason classifies a callee as deadline-worthy work: a WAL
// write-path function, or any context-aware function (its signature asks
// for a context, so the caller must have one to give — fabricating
// context.Background mid-path severs cancellation). The context package
// itself is exempt or every WithTimeout would be self-flagging.
func ctxWorkReason(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	if pathHasSegments(pkg.Path(), "internal/wal") && ctxWALWritePath[fn.Name()] {
		return "writes the WAL (" + fn.Name() + ")"
	}
	if pkg.Path() == "context" {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return ""
	}
	if isContextType(sig.Params().At(0).Type()) {
		return "calls context-aware " + fn.Name()
	}
	return ""
}

// takesCtxFirst reports whether fn's first parameter is a context.Context.
func takesCtxFirst(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return false
	}
	return isContextType(sig.Params().At(0).Type())
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "context" && n.Obj().Name() == "Context"
}
