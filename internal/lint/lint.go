// Package lint implements the repo's invariant-enforcing static analyzers
// and the driver that runs them (cmd/ratinglint). Each analyzer guards one
// of the system's headline guarantees — the engine's bit-exact determinism,
// the WAL's error discipline, the server's locking model — so that a
// regression fails the build instead of surfacing as a flaky property test.
// See DESIGN.md §9 for the invariant → analyzer mapping.
//
// The framework mirrors the golang.org/x/tools go/analysis API (Analyzer,
// Pass, Diagnostic) but is built entirely on the standard library: packages
// are located with `go list -export`, imports are satisfied from compiler
// export data, and target packages are type-checked from source. This keeps
// the module dependency-free.
//
// Intentional exceptions are annotated in source with a rationale:
//
//	//lint:ignore <analyzer> <why this is safe>
//	//lint:orderindependent <why iteration order cannot affect output>
//
// placed on the flagged line or the line above it (the last line of a doc
// comment works for whole-function findings). An annotation without a
// rationale is itself a finding: exceptions must be explained.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. Per-package analyzers set
// Run; whole-program (interprocedural) analyzers set RunProgram and are
// invoked once over the full load with a shared call graph. Exactly one of
// the two must be non-nil.
type Analyzer struct {
	// Name identifies the analyzer in output and in //lint:ignore
	// directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run performs the analysis on one package.
	Run func(*Pass) error
	// RunProgram performs the analysis once over the whole program.
	RunProgram func(*ProgramPass) error
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// directivePrefix introduces suppression annotations. Distinct from the
// staticcheck convention only in the analyzer names it accepts.
const directivePrefix = "//lint:"

// directive is one parsed //lint: annotation.
type directive struct {
	verb      string // "ignore" or "orderindependent"
	analyzer  string // target analyzer for "ignore"; empty otherwise
	rationale string
	line      int
	file      string
	pos       token.Pos
}

// parseDirectives extracts //lint: annotations from a file.
func parseDirectives(fset *token.FileSet, f *ast.File) []directive {
	var out []directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, directivePrefix)
			if !ok {
				continue
			}
			// Strip a trailing analysistest-style expectation marker so the
			// fixtures can assert on diagnostics at directive lines.
			if i := strings.Index(text, "// want"); i >= 0 {
				text = text[:i]
			}
			fields := strings.Fields(text)
			if len(fields) == 0 {
				continue
			}
			d := directive{verb: fields[0], pos: c.Pos()}
			rest := fields[1:]
			if d.verb == "ignore" && len(rest) > 0 {
				d.analyzer = rest[0]
				rest = rest[1:]
			}
			d.rationale = strings.Join(rest, " ")
			p := fset.Position(c.Pos())
			d.line, d.file = p.Line, p.Filename
			out = append(out, d)
		}
	}
	return out
}

// matches reports whether the directive suppresses a diagnostic from the
// named analyzer. "orderindependent" is a dedicated spelling for
// detmaprange, the analyzer it exists for.
func (d directive) matches(analyzer string) bool {
	switch d.verb {
	case "ignore":
		return d.analyzer == analyzer
	case "orderindependent":
		return analyzer == "detmaprange"
	}
	return false
}

// runAnalyzers executes every analyzer — per-package ones over each
// package, whole-program ones once over a shared Program with a cached
// call graph — and resolves suppression directives. Diagnostics come back
// sorted by position. A matching directive with no rationale does not
// suppress — it is converted into its own finding, so silent exceptions
// cannot accumulate. The returned directives report, for every suppression
// annotation in the program, whether it suppressed anything — the substrate
// of the stale-suppression audit.
func runAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []directiveUse, error) {
	var raw []Diagnostic
	var prog *Program
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		if prog == nil {
			prog = NewProgram(pkgs)
		}
		pass := &ProgramPass{Analyzer: a, Prog: prog, diags: &raw}
		if err := a.RunProgram(pass); err != nil {
			return nil, nil, fmt.Errorf("lint: %s: %v", a.Name, err)
		}
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &raw}
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("lint: %s on %s: %v", a.Name, pkg.Path, err)
			}
		}
	}

	// index directives by file:line for the suppression lookup
	type key struct {
		file string
		line int
	}
	var uses []directiveUse
	dirs := make(map[key][]*directiveUse)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range parseDirectives(pkg.Fset, f) {
				uses = append(uses, directiveUse{directive: d})
			}
		}
	}
	for i := range uses {
		d := uses[i].directive
		dirs[key{d.file, d.line}] = append(dirs[key{d.file, d.line}], &uses[i])
	}

	var out []Diagnostic
	for _, diag := range raw {
		suppressed := false
		// A directive applies on the flagged line or in the contiguous run
		// of directive lines above it, so two analyzers flagging the same
		// statement can each be suppressed by stacked annotations.
		lines := []int{diag.Pos.Line}
		for l := diag.Pos.Line - 1; len(dirs[key{diag.Pos.Filename, l}]) > 0; l-- {
			lines = append(lines, l)
		}
		for _, line := range lines {
			for _, du := range dirs[key{diag.Pos.Filename, line}] {
				if !du.matches(diag.Analyzer) {
					continue
				}
				if du.rationale == "" {
					out = append(out, Diagnostic{
						Analyzer: diag.Analyzer,
						Pos:      token.Position{Filename: du.file, Line: du.line, Column: 1},
						Message:  fmt.Sprintf("//lint:%s directive needs a rationale", du.verb),
					})
				}
				suppressed = true
				du.used = true
			}
		}
		if !suppressed {
			out = append(out, diag)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, uses, nil
}

// directiveUse is one suppression directive plus whether it suppressed at
// least one raw diagnostic during the run.
type directiveUse struct {
	directive
	used bool
}

// Run loads the packages matched by patterns (relative to dir) and applies
// the analyzers, returning unsuppressed diagnostics sorted by position.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	diags, _, err := runAnalyzers(pkgs, analyzers)
	return diags, err
}

// Audit runs the analyzers in inventory mode over the loaded packages and
// reports suppression hygiene instead of invariant findings: every
// //lint:ignore or //lint:orderindependent directive with an empty
// rationale, with an unknown verb, or that no longer suppresses any
// diagnostic (a stale exception that outlived the code it excused) becomes
// an "audit" finding. Exit-code semantics in cmd/ratinglint match the
// normal run: findings mean a nonzero exit.
func Audit(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	_, uses, err := runAnalyzers(pkgs, analyzers)
	if err != nil {
		return nil, err
	}
	var out []Diagnostic
	report := func(d directive, format string, args ...any) {
		out = append(out, Diagnostic{
			Analyzer: "audit",
			Pos:      token.Position{Filename: d.file, Line: d.line, Column: 1},
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, du := range uses {
		switch du.verb {
		case "ignore", "orderindependent":
			if du.rationale == "" {
				report(du.directive, "//lint:%s directive has no rationale: exceptions must be explained", du.verb)
				continue
			}
			if !du.used {
				name := du.verb
				if du.analyzer != "" {
					name += " " + du.analyzer
				}
				report(du.directive, "stale //lint:%s directive: it no longer suppresses any finding — remove it or fix the drift", name)
			}
		case "hotpath":
			// An assertion checked by hotalloc, not a suppression; nothing
			// to audit beyond what the analyzer itself enforces.
		default:
			report(du.directive, "unknown //lint:%s directive: valid verbs are ignore, orderindependent, hotpath", du.verb)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return out, nil
}

// pathHasSegments reports whether want ("internal/engine") occurs in path
// ("repro/internal/engine", "repro/internal/lint/testdata/x/internal/engine")
// as a consecutive run of whole path segments — substring matching would
// let "internal/engineroom" slip through.
func pathHasSegments(path, want string) bool {
	segs := strings.Split(path, "/")
	wantSegs := strings.Split(want, "/")
	for i := 0; i+len(wantSegs) <= len(segs); i++ {
		match := true
		for j, w := range wantSegs {
			if segs[i+j] != w {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// pathHasAnySegments reports whether any of wants occurs in path per
// pathHasSegments.
func pathHasAnySegments(path string, wants []string) bool {
	for _, w := range wants {
		if pathHasSegments(path, w) {
			return true
		}
	}
	return false
}
