package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// toleranceHelpers are functions allowed to compare floats exactly: they
// either implement the tolerance comparison itself or are explicitly about
// bit-level equality.
var toleranceHelpers = map[string]bool{
	"approxEqual":  true,
	"ApproxEqual":  true,
	"almostEqual":  true,
	"AlmostEqual":  true,
	"EqualWithin":  true,
	"withinTol":    true,
	"bitsEqual":    true,
	"sameFloat":    true,
	"floatsEqual":  true,
	"equalFloats":  true,
	"nearlyEqual":  true,
	"closeEnough":  true,
	"tolerantDiff": true,
}

// FloatEq flags == and != between floating-point expressions outside test
// files and tolerance helpers. Exact float comparison is almost always a
// rounding-sensitive bug; when bit-exactness is genuinely intended (WAL
// replay dedup, checkpoint identity checks) annotate
// `//lint:ignore floateq <rationale>`.
//
// Self-comparison (x != x) is allowed: it is the portable NaN test.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc: "flags ==/!= on float64/float32 expressions outside test files and " +
		"approved tolerance helpers; use a tolerance comparison or annotate //lint:ignore floateq",
	Run: runFloatEq,
}

func runFloatEq(pass *Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		if strings.HasSuffix(pass.Pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if toleranceHelpers[fn.Name.Name] {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if !isFloat(info, be.X) && !isFloat(info, be.Y) {
					return true
				}
				if types.ExprString(be.X) == types.ExprString(be.Y) {
					return true // x != x is the portable NaN test
				}
				pass.Reportf(be.OpPos,
					"float comparison %s %s %s: exact equality is rounding-sensitive; compare within a tolerance, use math.Signbit/IsNaN/IsInf, or annotate //lint:ignore floateq with a rationale",
					types.ExprString(be.X), be.Op, types.ExprString(be.Y))
				return true
			})
		}
	}
	return nil
}

func isFloat(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
