package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/callgraph"
	"repro/internal/lint/cfg"
)

// lockOrderPkgs are the packages whose mutexes participate in the global
// lock-acquisition graph: the coordinator (internal/server), the sharded
// store's topology/gate/state locks (internal/store), and the trust layer
// (internal/trust).
var lockOrderPkgs = []string{"internal/server", "internal/store", "internal/trust"}

// shortHeldLocks are the lock classes documented as short-critical-section
// state mutexes: no call that blocks for disk- or compute-scale durations
// may run while one is held ("fsync never runs under the state mutex").
// Store.mu is deliberately absent: it is the topology RWMutex, and its read
// side is held across whole submissions — fsync included — by design;
// readers do not serialize, and the write side is taken only on the rare
// topology changes (AddProduct, Load, Close).
var shortHeldLocks = map[string]bool{
	"internal/store.shard.mu": true,
}

// lockClass identifies one mutex field: the package (normalized to its
// repo-relative segments so fixture packages mirror production classes),
// the struct type, and the field name. Every instance of the struct shares
// the class — a per-instance order (e.g. ascending shard index) is exactly
// what the same-class nesting diagnostic asks to be documented.
type lockClass struct {
	pkg, typ, field string
}

func (c lockClass) String() string { return c.pkg + "." + c.typ + "." + c.field }

// LockOrder is the whole-program lock analyzer: it derives the global
// lock-acquisition graph across internal/server, internal/store, and
// internal/trust — an edge A→B means some execution path acquires B while
// holding A, where held-sets propagate through an intraprocedural CFG
// dataflow and acquisitions propagate through the CHA call graph — and
// reports (1) any cycle between distinct lock classes as a potential
// deadlock, (2) same-class nested acquisition (two instances of one class
// held at once), which is deadlock-free only under a documented instance
// order, and (3) any call that may transitively reach a WAL fsync or an
// engine evaluation while a short-critical-section state mutex is held —
// the interprocedural generalization of lockheld's per-function rule.
//
// Soundness trade-offs (DESIGN.md §13): function-literal bodies and
// deferred calls are excluded from held-set propagation, calls through
// plain function values are unresolved, and held-sets are may-sets over
// CFG paths — the analyzer over-approximates edges and under-approximates
// defer-time behavior. Intentional exceptions are annotated
// `//lint:ignore lockorder <rationale>` on the reported line.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "derives the whole-program lock-acquisition graph over internal/server, internal/store, " +
		"and internal/trust; reports lock-order cycles, undocumented same-class nesting, and " +
		"blocking calls (WAL fsync, engine evaluation) reached while a state mutex is held",
	RunProgram: runLockOrder,
}

// lockOrderFacts is the fact bundle LockOrder exports for composition:
// the serialized lock graph and the set of functions that may block.
type lockOrderFacts struct {
	// Edges holds "A -> B" lines for every lock-graph edge, sorted.
	Edges []string
	// MayBlock holds the full names of functions that may transitively
	// fsync the WAL or run an engine evaluation, sorted.
	MayBlock []string
	// MayAcquire maps function full names to the sorted lock classes they
	// may transitively acquire.
	MayAcquire map[string][]string
}

// lockEdge is one lock-graph edge with its first witness.
type lockEdge struct {
	from, to lockClass
	site     token.Pos // the acquisition or call site that created the edge
	fn       string    // function containing the witness site
	via      string    // optional call chain description
}

type lockOrderState struct {
	prog    *Program
	cg      *callgraph.Graph
	classes map[lockClass]bool

	// direct per-function summaries
	directAcq map[*callgraph.Node][]lockClass
	blockBase map[*callgraph.Node]string // node → description of the blocking base call

	// memoized transitive summaries
	transAcq   map[*callgraph.Node][]lockClass
	transBlock map[*callgraph.Node]string // "" = does not block; else witness description
}

func runLockOrder(pass *ProgramPass) error {
	st := &lockOrderState{
		prog:       pass.Prog,
		cg:         pass.Prog.CallGraph(),
		classes:    make(map[lockClass]bool),
		directAcq:  make(map[*callgraph.Node][]lockClass),
		blockBase:  make(map[*callgraph.Node]string),
		transAcq:   make(map[*callgraph.Node][]lockClass),
		transBlock: make(map[*callgraph.Node]string),
	}
	st.discoverClasses()
	if len(st.classes) == 0 {
		return nil
	}
	st.summarize()

	var edges []*lockEdge
	var selfNest []*lockEdge
	for _, n := range st.cg.Funcs {
		if n.Decl == nil {
			continue
		}
		e, s := st.analyzeFunc(pass, n)
		edges = append(edges, e...)
		selfNest = append(selfNest, s...)
	}

	st.report(pass, edges, selfNest)
	st.exportFacts(pass, edges)
	return nil
}

// discoverClasses finds every sync.Mutex/RWMutex field of a named struct
// type declared in a lock-order package.
func (st *lockOrderState) discoverClasses() {
	for _, pkg := range st.prog.Pkgs {
		seg, ok := normalizePkg(pkg.Path, lockOrderPkgs)
		if !ok {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			strct, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < strct.NumFields(); i++ {
				f := strct.Field(i)
				if fp, fn := namedRecv(f.Type()); fp == "sync" && (fn == "Mutex" || fn == "RWMutex") {
					st.classes[lockClass{seg, name, f.Name()}] = true
				}
			}
		}
	}
}

// normalizePkg maps a full package path to the repo-relative segment run it
// matches (e.g. ".../testdata/lockorder/internal/store" → "internal/store").
func normalizePkg(path string, wants []string) (string, bool) {
	for _, w := range wants {
		if pathHasSegments(path, w) {
			return w, true
		}
	}
	return "", false
}

// classOf resolves a selector expression x.field (the x in x.field.Lock())
// to a lock class, if the field belongs to a discovered class.
func (st *lockOrderState) classOf(info *types.Info, sel *ast.SelectorExpr) (lockClass, bool) {
	var recvType types.Type
	var fieldName string
	if selection, ok := info.Selections[sel]; ok && selection.Kind() == types.FieldVal {
		recvType = selection.Recv()
		fieldName = selection.Obj().Name()
	} else {
		return lockClass{}, false
	}
	pkgPath, typName := namedRecv(recvType)
	if pkgPath == "" {
		return lockClass{}, false
	}
	seg, ok := normalizePkg(pkgPath, lockOrderPkgs)
	if !ok {
		return lockClass{}, false
	}
	c := lockClass{seg, typName, fieldName}
	if !st.classes[c] {
		return lockClass{}, false
	}
	return c, true
}

// lock events extracted from one CFG node
const (
	loAcquire = iota
	loRelease
	loCall
)

type loEvent struct {
	pos   token.Pos
	kind  int
	class lockClass       // for acquire/release
	edge  *callgraph.Edge // for call (resolved call edge)
}

// summarize computes each declared function's direct lock acquisitions and
// direct blocking-base calls.
func (st *lockOrderState) summarize() {
	pkgInfo := st.infoIndex()
	for _, n := range st.cg.Funcs {
		if n.Decl == nil {
			continue
		}
		info := pkgInfo[n.SrcPath]
		if info == nil {
			continue
		}
		inspectSkippingFuncLits(n.Decl.Body, func(node ast.Node, inDefer bool) {
			call, ok := node.(*ast.CallExpr)
			if !ok || inDefer {
				return
			}
			if c, _, ok := st.muCall(info, call); ok {
				st.directAcq[n] = appendClass(st.directAcq[n], c)
				return
			}
			if desc := blockingBaseCall(info, call); desc != "" {
				if _, have := st.blockBase[n]; !have {
					st.blockBase[n] = desc
				}
			}
		})
	}
}

func appendClass(cs []lockClass, c lockClass) []lockClass {
	for _, x := range cs {
		if x == c {
			return cs
		}
	}
	return append(cs, c)
}

// infoIndex maps package import paths to their type info.
func (st *lockOrderState) infoIndex() map[string]*types.Info {
	m := make(map[string]*types.Info, len(st.prog.Pkgs))
	for _, pkg := range st.prog.Pkgs {
		m[pkg.Path] = pkg.Info
	}
	return m
}

// inspectSkippingFuncLits walks body, skipping function-literal bodies and
// flagging nodes inside defer statements.
func inspectSkippingFuncLits(body *ast.BlockStmt, visit func(n ast.Node, inDefer bool)) {
	var deferSpans [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferSpans = append(deferSpans, [2]token.Pos{d.Pos(), d.End()})
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return true
	})
	inDefer := func(p token.Pos) bool {
		for _, s := range deferSpans {
			if p >= s[0] && p < s[1] {
				return true
			}
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n, inDefer(n.Pos()))
		}
		return true
	})
}

// muCall classifies call as an acquisition (Lock/RLock) or release
// (Unlock/RUnlock) of a discovered lock class. The bool result reports
// whether it is a mutex call at all; acquire distinguishes the direction.
func (st *lockOrderState) muCall(info *types.Info, call *ast.CallExpr) (lockClass, bool, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockClass{}, false, false
	}
	var acquire bool
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return lockClass{}, false, false
	}
	field, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return lockClass{}, false, false
	}
	c, ok := st.classOf(info, field)
	if !ok {
		return lockClass{}, false, false
	}
	return c, acquire, true
}

// blockingBaseCall reports a non-empty description when call targets one of
// the blocking base functions (WAL fsync paths, engine evaluations) listed
// in blockingUnderMu.
func blockingBaseCall(info *types.Info, call *ast.CallExpr) string {
	callee := calleeFunc(info, call)
	if callee == nil || callee.Pkg() == nil {
		return ""
	}
	for pkgSeg, names := range blockingUnderMu {
		if names[callee.Name()] && pathHasSegments(callee.Pkg().Path(), pkgSeg) {
			return pkgSeg[strings.LastIndexByte(pkgSeg, '/')+1:] + "." + callee.Name()
		}
	}
	return ""
}

// mayAcquire returns the lock classes reachable from n through the call
// graph (n's own direct acquisitions included).
func (st *lockOrderState) mayAcquire(n *callgraph.Node) []lockClass {
	if cs, ok := st.transAcq[n]; ok {
		return cs
	}
	reach, _ := st.cg.Reachable(n)
	var out []lockClass
	for _, r := range reach {
		for _, c := range st.directAcq[r] {
			out = appendClass(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	st.transAcq[n] = out
	return out
}

// mayBlock returns a witness description ("wal.Sync via shard.checkpoint →
// wal.Sync") when n may transitively reach a blocking base call, else "".
func (st *lockOrderState) mayBlock(n *callgraph.Node) string {
	if d, ok := st.transBlock[n]; ok {
		return d
	}
	reach, parent := st.cg.Reachable(n)
	desc := ""
	for _, r := range reach {
		base, ok := st.blockBase[r]
		if !ok {
			continue
		}
		chain := callgraph.Chain(parent, r)
		if len(chain) > 1 {
			names := make([]string, 0, len(chain))
			for _, c := range chain {
				names = append(names, shortFuncName(c))
			}
			desc = base + " (via " + strings.Join(names, " → ") + ")"
		} else {
			desc = base
		}
		break // Reachable order is deterministic; first witness wins
	}
	st.transBlock[n] = desc
	return desc
}

// shortFuncName renders a node as Type.Method or pkg.Func without the full
// import path, for readable chains.
func shortFuncName(n *callgraph.Node) string {
	fn := n.Func
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		_, typ := namedRecv(sig.Recv().Type())
		if typ != "" {
			return typ + "." + fn.Name()
		}
	}
	return fn.Name()
}

// analyzeFunc runs the CFG may-held dataflow over one function and returns
// the lock-graph edges and same-class nesting witnesses it contributes,
// reporting blocking-under-short-lock violations directly.
func (st *lockOrderState) analyzeFunc(pass *ProgramPass, n *callgraph.Node) (edges, selfNest []*lockEdge) {
	info := st.infoIndex()[n.SrcPath]
	if info == nil {
		return nil, nil
	}
	g := cfg.New(n.Decl.Body)
	events := st.blockEvents(info, n, g)

	// May-held dataflow to fixpoint: state is the set of classes possibly
	// held entering each block; union over predecessors, loop back-edges
	// included, so an acquisition inside a loop sees itself held on the
	// second iteration.
	in := make([]map[lockClass]bool, len(g.Blocks))
	apply := func(state map[lockClass]bool, evs []loEvent, emit bool) map[lockClass]bool {
		for _, ev := range evs {
			switch ev.kind {
			case loAcquire:
				if emit {
					if state[ev.class] {
						selfNest = append(selfNest, &lockEdge{from: ev.class, to: ev.class, site: ev.pos, fn: shortFuncName(n)})
					}
					for c := range state {
						if c != ev.class {
							edges = append(edges, &lockEdge{from: c, to: ev.class, site: ev.pos, fn: shortFuncName(n)})
						}
					}
				}
				state = cloneSet(state)
				state[ev.class] = true
			case loRelease:
				state = cloneSet(state)
				delete(state, ev.class)
			case loCall:
				if emit && len(state) > 0 {
					st.callUnderLocks(pass, n, ev, state, &edges, &selfNest)
				}
				// A lock-helper call transfers its direct acquisitions or
				// releases into the caller's held-set: server's
				// freshRLock() returns holding Service.mu, and a matching
				// unlock helper would release it. Only helpers whose own
				// body directly locks count, and only when the name says
				// which way ("...Lock"/"...Unlock", case-sensitive).
				if direct := st.directAcq[ev.edge.Callee]; len(direct) > 0 {
					name := ev.edge.Callee.Func.Name()
					if strings.HasSuffix(name, "Unlock") {
						state = cloneSet(state)
						for _, c := range direct {
							delete(state, c)
						}
					} else if strings.HasSuffix(name, "Lock") {
						state = cloneSet(state)
						for _, c := range direct {
							state[c] = true
						}
					}
				}
			}
		}
		return state
	}

	// Fixpoint.
	in[0] = map[lockClass]bool{}
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			if in[b.Index] == nil {
				continue
			}
			out := apply(in[b.Index], events[b.Index], false)
			for _, s := range b.Succs {
				merged, grew := mergeSet(in[s.Index], out)
				if grew {
					in[s.Index] = merged
					changed = true
				}
			}
		}
	}
	// Report pass with stable in-states.
	for _, b := range g.Blocks {
		if in[b.Index] == nil {
			continue // unreachable block
		}
		apply(in[b.Index], events[b.Index], true)
	}
	return edges, selfNest
}

func cloneSet(s map[lockClass]bool) map[lockClass]bool {
	out := make(map[lockClass]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

// mergeSet unions src into dst (copy-on-grow) and reports growth. A nil dst
// means "not yet visited" and always grows.
func mergeSet(dst, src map[lockClass]bool) (map[lockClass]bool, bool) {
	if dst == nil {
		return cloneSet(src), true
	}
	grew := false
	for k := range src {
		if !dst[k] {
			if !grew {
				dst = cloneSet(dst)
				grew = true
			}
			dst[k] = true
		}
	}
	return dst, grew
}

// blockEvents extracts the ordered lock/call events of every CFG block.
func (st *lockOrderState) blockEvents(info *types.Info, n *callgraph.Node, g *cfg.Graph) [][]loEvent {
	// Resolve call expressions to their graph edges once, by site.
	edgeAt := make(map[token.Pos][]*callgraph.Edge)
	for _, e := range n.Out {
		edgeAt[e.Site] = append(edgeAt[e.Site], e)
	}
	events := make([][]loEvent, len(g.Blocks))
	for _, b := range g.Blocks {
		var evs []loEvent
		for _, node := range b.Nodes {
			inspectNodeSkippingFuncLits(node, func(x ast.Node, inDefer bool) {
				call, ok := x.(*ast.CallExpr)
				if !ok || inDefer {
					return
				}
				if c, acquire, ok := st.muCall(info, call); ok {
					kind := loRelease
					if acquire {
						kind = loAcquire
					}
					evs = append(evs, loEvent{pos: call.Pos(), kind: kind, class: c})
					return
				}
				for _, e := range edgeAt[call.Pos()] {
					evs = append(evs, loEvent{pos: call.Pos(), kind: loCall, edge: e})
				}
			})
		}
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
		events[b.Index] = evs
	}
	return events
}

// inspectNodeSkippingFuncLits is inspectSkippingFuncLits for a single CFG
// node (statement or expression).
func inspectNodeSkippingFuncLits(node ast.Node, visit func(n ast.Node, inDefer bool)) {
	var deferSpans [][2]token.Pos
	ast.Inspect(node, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferSpans = append(deferSpans, [2]token.Pos{d.Pos(), d.End()})
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return true
	})
	inDefer := func(p token.Pos) bool {
		for _, s := range deferSpans {
			if p >= s[0] && p < s[1] {
				return true
			}
		}
		return false
	}
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n, inDefer(n.Pos()))
		}
		return true
	})
}

// callUnderLocks handles a resolved call made while locks are held: it
// contributes held→acquired edges from the callee's transitive summary and
// reports blocking calls under a short-critical-section lock.
func (st *lockOrderState) callUnderLocks(pass *ProgramPass, n *callgraph.Node, ev loEvent, held map[lockClass]bool, edges, selfNest *[]*lockEdge) {
	callee := ev.edge.Callee
	// Lock-helper calls are the caller's own acquisition/release, not a
	// nested critical section; the dataflow transfer handles them.
	if name := callee.Func.Name(); strings.HasSuffix(name, "Lock") || strings.HasSuffix(name, "Unlock") {
		if len(st.directAcq[callee]) > 0 {
			return
		}
	}
	for _, acquired := range st.mayAcquire(callee) {
		for h := range held {
			if h == acquired {
				*selfNest = append(*selfNest, &lockEdge{
					from: h, to: acquired, site: ev.pos, fn: shortFuncName(n), via: shortFuncName(callee),
				})
				continue
			}
			*edges = append(*edges, &lockEdge{
				from: h, to: acquired, site: ev.pos, fn: shortFuncName(n),
				via: shortFuncName(callee),
			})
		}
	}
	hasShort := false
	for h := range held {
		if shortHeldLocks[h.String()] {
			hasShort = true
			break
		}
	}
	if !hasShort {
		return
	}
	if desc := st.mayBlock(callee); desc != "" {
		short := sortedShort(held)
		pass.Reportf(ev.pos,
			"method %s calls %s while holding %s: WAL fsyncs and engine evaluations must run outside short-critical-section state mutexes — restructure, or annotate //lint:ignore lockorder with a rationale",
			shortFuncName(n), desc, strings.Join(short, ", "))
	}
}

func sortedShort(held map[lockClass]bool) []string {
	var out []string
	for h := range held {
		if shortHeldLocks[h.String()] {
			out = append(out, h.String())
		}
	}
	sort.Strings(out)
	return out
}

// report deduplicates edges, detects cycles among distinct classes, and
// emits the self-nesting diagnostics.
func (st *lockOrderState) report(pass *ProgramPass, edges, selfNest []*lockEdge) {
	// Deduplicate same-class nesting by site.
	seenNest := make(map[token.Pos]bool)
	for _, e := range selfNest {
		if seenNest[e.site] {
			continue
		}
		seenNest[e.site] = true
		where := "in " + e.fn
		if e.via != "" {
			where += ", via " + e.via
		}
		pass.Reportf(e.site,
			"lock class %s: a second instance is acquired while one is already held (%s): self-deadlock on the same instance, and safe across instances only under a documented order — annotate //lint:ignore lockorder with the rationale",
			e.from, where)
	}

	// First witness per (from, to) pair, deterministic by position.
	type pair struct{ from, to lockClass }
	witness := make(map[pair]*lockEdge)
	for _, e := range edges {
		if e.from == e.to {
			continue // same-class handled above (intra-function); via-call self edges covered by cycle check below
		}
		p := pair{e.from, e.to}
		w, ok := witness[p]
		if !ok || posLess(pass.Prog.Fset, e.site, w.site) {
			witness[p] = e
		}
	}

	// Build adjacency and find cycles with a deterministic DFS.
	adj := make(map[lockClass][]lockClass)
	var nodes []lockClass
	for p := range witness {
		adj[p.from] = append(adj[p.from], p.to)
	}
	for c := range adj {
		nodes = append(nodes, c)
		sort.Slice(adj[c], func(i, j int) bool { return adj[c][i].String() < adj[c][j].String() })
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].String() < nodes[j].String() })

	reported := make(map[string]bool)
	for _, start := range nodes {
		cycle := findCycle(adj, start)
		if cycle == nil {
			continue
		}
		key := cycleKey(cycle)
		if reported[key] {
			continue
		}
		reported[key] = true
		var parts []string
		for i := 0; i < len(cycle); i++ {
			from, to := cycle[i], cycle[(i+1)%len(cycle)]
			w := witness[pair{from, to}]
			parts = append(parts, fmt.Sprintf("%s → %s (%s, in %s)", from, to, pass.Prog.Fset.Position(w.site), w.fn))
		}
		w := witness[pair{cycle[0], cycle[1%len(cycle)]}]
		pass.Reportf(w.site,
			"lock-order cycle — potential deadlock: %s; establish one global order or annotate //lint:ignore lockorder with the reason the cycle cannot deadlock",
			strings.Join(parts, "; "))
	}
}

func posLess(fset *token.FileSet, a, b token.Pos) bool {
	pa, pb := fset.Position(a), fset.Position(b)
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	return pa.Offset < pb.Offset
}

// findCycle returns the first cycle through start (start included) found by
// a deterministic DFS, or nil.
func findCycle(adj map[lockClass][]lockClass, start lockClass) []lockClass {
	var path []lockClass
	onPath := make(map[lockClass]bool)
	visited := make(map[lockClass]bool)
	var dfs func(c lockClass) []lockClass
	dfs = func(c lockClass) []lockClass {
		path = append(path, c)
		onPath[c] = true
		visited[c] = true
		for _, next := range adj[c] {
			if next == start && len(path) > 0 {
				out := append([]lockClass(nil), path...)
				return out
			}
			if onPath[next] || visited[next] {
				continue
			}
			if cyc := dfs(next); cyc != nil {
				return cyc
			}
		}
		path = path[:len(path)-1]
		onPath[c] = false
		return nil
	}
	return dfs(start)
}

// cycleKey canonicalizes a cycle (rotation-invariant) for dedup.
func cycleKey(cycle []lockClass) string {
	min := 0
	for i := range cycle {
		if cycle[i].String() < cycle[min].String() {
			min = i
		}
	}
	var parts []string
	for i := 0; i < len(cycle); i++ {
		parts = append(parts, cycle[(min+i)%len(cycle)].String())
	}
	return strings.Join(parts, "→")
}

// exportFacts publishes the lock graph and blocking summaries.
func (st *lockOrderState) exportFacts(pass *ProgramPass, edges []*lockEdge) {
	facts := lockOrderFacts{MayAcquire: make(map[string][]string)}
	seen := make(map[string]bool)
	for _, e := range edges {
		line := e.from.String() + " -> " + e.to.String()
		if !seen[line] {
			seen[line] = true
			facts.Edges = append(facts.Edges, line)
		}
	}
	sort.Strings(facts.Edges)
	for _, n := range st.cg.Funcs {
		if n.Decl == nil {
			continue
		}
		if st.mayBlock(n) != "" {
			facts.MayBlock = append(facts.MayBlock, n.Name())
		}
		if acq := st.mayAcquire(n); len(acq) > 0 {
			var cs []string
			for _, c := range acq {
				cs = append(cs, c.String())
			}
			facts.MayAcquire[n.Name()] = cs
		}
	}
	sort.Strings(facts.MayBlock)
	pass.ExportFact(facts)
}
