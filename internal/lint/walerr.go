package lint

import (
	"go/ast"
	"go/types"
)

// WALErr flags dropped error returns on the write-ahead log's durability
// surface: wal.WAL Append/AppendAck/Sync/Compact, the wal.File and os.File Sync
// methods (fsync), and wal.FS Truncate/Rename (the crash-safety ordering of
// Compact depends on them). An ignored error here silently converts "the
// rating is durable" into "the rating is probably durable", which breaks
// the WAL's contract that a failed fsync poisons the log (DESIGN.md §7).
//
// Dropping a result deliberately requires `//lint:ignore walerr <rationale>`.
var WALErr = &Analyzer{
	Name: "walerr",
	Doc: "flags dropped error returns from internal/wal Append/AppendAck/Sync/Compact, " +
		"File.Sync / os.File.Sync (fsync paths), and FS Truncate/Rename",
	Run: runWALErr,
}

// walErrMethods maps guarded receiver types to their guarded methods.
// Receivers are identified by (package path segments, type name).
var walErrMethods = []struct {
	pkgSegs string
	typ     string
	methods map[string]bool
}{
	{"internal/wal", "WAL", map[string]bool{"Append": true, "AppendAck": true, "Sync": true, "Compact": true}},
	{"internal/wal", "File", map[string]bool{"Sync": true}},
	{"internal/wal", "FS", map[string]bool{"Truncate": true, "Rename": true}},
	{"os", "File", map[string]bool{"Sync": true}},
}

func runWALErr(pass *Pass) error {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = n.Call
			case *ast.GoStmt:
				call = n.Call
			case *ast.AssignStmt:
				// A multi-result call (AppendAck returns (Ack, error)) fans
				// one RHS out across several LHS; the error is always the
				// last result, so `ack, _ :=` and `_, _ =` both drop it.
				if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
					if c, ok := n.Rhs[0].(*ast.CallExpr); ok && isBlank(n.Lhs[len(n.Lhs)-1]) {
						checkWALCall(pass, c)
					}
					return true
				}
				// Single-result methods drop via a paired blank:
				// `_ = w.Append(...)` — possibly one of several RHS values.
				for i, rhs := range n.Rhs {
					c, ok := rhs.(*ast.CallExpr)
					if !ok || i >= len(n.Lhs) || !isBlank(n.Lhs[i]) {
						continue
					}
					checkWALCall(pass, c)
				}
				return true
			default:
				return true
			}
			if call != nil {
				checkWALCall(pass, call)
			}
			return true
		})
	}
	return nil
}

func checkWALCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection, ok := pass.Pkg.Info.Selections[sel]
	if !ok {
		return
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok {
		return
	}
	recvPkg, recvName := namedRecv(selection.Recv())
	if recvPkg == "" {
		return
	}
	for _, g := range walErrMethods {
		if recvName != g.typ || !g.methods[fn.Name()] {
			continue
		}
		if g.pkgSegs == "os" {
			if recvPkg != "os" {
				continue
			}
		} else if !pathHasSegments(recvPkg, g.pkgSegs) {
			continue
		}
		pass.Reportf(call.Pos(),
			"error return of (%s.%s).%s dropped: the WAL durability contract requires every append/fsync/compact failure to be checked (or annotate //lint:ignore walerr with a rationale)",
			recvPkg, recvName, fn.Name())
		return
	}
}

// namedRecv resolves a receiver type to its defining package path and type
// name, dereferencing one level of pointer.
func namedRecv(t types.Type) (pkgPath, name string) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return "", ""
	}
	return n.Obj().Pkg().Path(), n.Obj().Name()
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
