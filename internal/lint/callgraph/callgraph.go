// Package callgraph builds a deterministic whole-program call graph over
// the repo's type-checked packages, using only the standard library. It is
// the substrate of the interprocedural analyzers in internal/lint
// (lockorder, durataint, hotalloc): they ask "what can this function reach"
// and "who calls this", questions a per-function AST walk cannot answer
// once an invariant spans package boundaries.
//
// Resolution is CHA-style (class hierarchy analysis): a call through an
// interface method fans out to the method of every named type in the
// program that implements the interface — a closed-world assumption over
// the loaded packages. The interface matched is the receiver expression's
// static type, not the method's declaring interface: calling Close on a
// wal.File fans out to implementers of File's full method set, where the
// declaring interface (the embedded io.Closer) would drag in every type in
// the program with a Close method. Calls through plain function values (variables,
// fields, parameters of func type) are not resolved, and function-literal
// bodies are excluded from their enclosing function's edges (a closure runs
// later, under its eventual caller); both trade-offs are documented in
// DESIGN.md §13 and shared with the ctxfirst analyzer's conventions.
//
// Determinism is load-bearing: analyzers iterate the graph to produce
// diagnostics, and CI diffs serialized findings, so Build sorts nodes by
// (full name, declaration position) and edges by (call-site position,
// callee). Two independent builds over the same source produce
// byte-identical EdgeList output, which a test pins.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Source is one type-checked package to include in the graph. The fields
// mirror what internal/lint's loader produces; all Sources must share one
// token.FileSet.
type Source struct {
	Path  string
	Files []*ast.File
	Info  *types.Info
	Types *types.Package
}

// Kind classifies how a call edge was resolved.
type Kind int

const (
	// Static is a direct call to a package function or a method on a
	// concrete receiver type.
	Static Kind = iota
	// Interface is a call through an interface method, fanned out to a
	// concrete implementation by CHA.
	Interface
	// Dynamic is a call through an interface method with no implementation
	// in the program: the edge targets the abstract interface method so
	// analyzers can see (and report) the unresolvable call.
	Dynamic
)

func (k Kind) String() string {
	switch k {
	case Static:
		return "static"
	case Interface:
		return "interface"
	case Dynamic:
		return "dynamic"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Edge is one resolved call site.
type Edge struct {
	Caller *Node
	Callee *Node
	// Site is the position of the call expression in the caller's body.
	Site token.Pos
	Kind Kind
	// InDefer reports that the call site sits inside a defer statement and
	// therefore runs at function return, not at its lexical position.
	InDefer bool
}

// Node is one function or method. Functions without a declaration in the
// program (standard-library callees, abstract interface methods) appear as
// nodes with a nil Decl so call sites into them stay visible.
type Node struct {
	Func *types.Func
	// Decl is the function's declaration, nil when its body is not part of
	// the loaded program.
	Decl *ast.FuncDecl
	// SrcPath is the import path of the package whose source declares the
	// function, empty for external nodes.
	SrcPath string
	// Out holds the node's call sites sorted by (site, callee, kind);
	// In the reverse edges in the same order as discovered from callers.
	Out []*Edge
	In  []*Edge
}

// Name returns the canonical, package-qualified function name, e.g.
// "repro/internal/store.Route" or "(*repro/internal/store.Store).Submit".
func (n *Node) Name() string { return n.Func.FullName() }

// Graph is the whole-program call graph.
type Graph struct {
	Fset *token.FileSet
	// Funcs holds every node in deterministic order: sorted by full name,
	// then declaration position.
	Funcs []*Node

	byObj map[*types.Func]*Node
}

// Node returns the graph node for fn (generic instances are canonicalized
// to their origin), or nil if fn is not in the graph.
func (g *Graph) Node(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.byObj[fn.Origin()]
}

// Build constructs the call graph for the given sources. All sources must
// share fset. The build is pure and deterministic: no maps are ranged
// without sorting, and the result depends only on the source text.
func Build(fset *token.FileSet, srcs []*Source) *Graph {
	g := &Graph{Fset: fset, byObj: make(map[*types.Func]*Node)}
	b := &builder{g: g}

	// Pass 1: one node per declared function, in deterministic source
	// order, so node identity never depends on call-site discovery order.
	ordered := append([]*Source(nil), srcs...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Path < ordered[j].Path })
	for _, src := range ordered {
		for _, f := range src.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := src.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := b.node(obj)
				n.Decl = fd
				n.SrcPath = src.Path
			}
		}
	}

	b.collectConcreteTypes(ordered)

	// Pass 2: edges.
	for _, src := range ordered {
		for _, f := range src.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := src.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				b.walkBody(src, b.node(obj), fd.Body)
			}
		}
	}

	// Final deterministic ordering of nodes and edges.
	for _, n := range g.byObj {
		g.Funcs = append(g.Funcs, n)
	}
	sort.Slice(g.Funcs, func(i, j int) bool {
		a, c := g.Funcs[i], g.Funcs[j]
		if a.Name() != c.Name() {
			return a.Name() < c.Name()
		}
		return declPos(fset, a).String() < declPos(fset, c).String()
	})
	for _, n := range g.Funcs {
		sortEdges(fset, n.Out)
	}
	// Reverse edges, in global deterministic order.
	for _, n := range g.Funcs {
		for _, e := range n.Out {
			e.Callee.In = append(e.Callee.In, e)
		}
	}
	return g
}

func declPos(fset *token.FileSet, n *Node) token.Position {
	if n.Decl != nil {
		return fset.Position(n.Decl.Pos())
	}
	return token.Position{}
}

func sortEdges(fset *token.FileSet, edges []*Edge) {
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		pa, pb := fset.Position(a.Site), fset.Position(b.Site)
		if pa.Filename != pb.Filename {
			return pa.Filename < pb.Filename
		}
		if pa.Offset != pb.Offset {
			return pa.Offset < pb.Offset
		}
		if a.Callee.Name() != b.Callee.Name() {
			return a.Callee.Name() < b.Callee.Name()
		}
		return a.Kind < b.Kind
	})
}

type builder struct {
	g *Graph
	// concrete holds every non-interface named type declared in the
	// program, sorted by full name, for CHA fan-out.
	concrete []*types.Named
	// implCache memoizes (interface, method) → implementing methods.
	implCache map[implKey][]*types.Func
}

// implKey keys the implementation cache by the receiver's static interface
// type and the called method.
type implKey struct {
	iface *types.Interface
	m     *types.Func
}

func (b *builder) node(fn *types.Func) *Node {
	fn = fn.Origin()
	if n, ok := b.g.byObj[fn]; ok {
		return n
	}
	n := &Node{Func: fn}
	b.g.byObj[fn] = n
	return n
}

// collectConcreteTypes gathers the named non-interface types of every
// source package, in deterministic order, as the CHA universe.
func (b *builder) collectConcreteTypes(srcs []*Source) {
	b.implCache = make(map[implKey][]*types.Func)
	seen := make(map[*types.TypeName]bool)
	for _, src := range srcs {
		scope := src.Types.Scope()
		names := scope.Names() // already sorted
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() || seen[tn] {
				continue
			}
			seen[tn] = true
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			b.concrete = append(b.concrete, named)
		}
	}
}

// implementations resolves an interface-method call to the matching
// concrete methods of every program type implementing iface. The caller
// passes the receiver expression's static interface type, not the method's
// declaring interface: a call to f.Close() where f is a wal.File resolves
// Close against File's full four-method set, while the declaring interface
// (the embedded io.Closer) would fan out to every type in the program with
// a Close method — CHA's embedded-interface blowup.
func (b *builder) implementations(iface *types.Interface, m *types.Func) []*types.Func {
	m = m.Origin()
	key := implKey{iface, m}
	if impls, ok := b.implCache[key]; ok {
		return impls
	}
	var impls []*types.Func
	for _, named := range b.concrete {
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, m.Pkg(), m.Name())
		if fn, ok := obj.(*types.Func); ok {
			impls = append(impls, fn.Origin())
		}
	}
	b.implCache[key] = impls
	return impls
}

// walkBody records the call edges of one function body. Function literals
// are skipped: a closure's calls happen when the closure runs, under its
// eventual caller.
func (b *builder) walkBody(src *Source, caller *Node, body *ast.BlockStmt) {
	var deferSpans [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferSpans = append(deferSpans, [2]token.Pos{d.Pos(), d.End()})
		}
		return true
	})
	inDefer := func(p token.Pos) bool {
		for _, s := range deferSpans {
			if p >= s[0] && p < s[1] {
				return true
			}
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			b.callEdges(src, caller, n, inDefer(n.Pos()))
		}
		return true
	})
}

// callEdges resolves one call expression and appends the resulting edges.
func (b *builder) callEdges(src *Source, caller *Node, call *ast.CallExpr, inDefer bool) {
	callee := staticCallee(src.Info, call)
	if callee == nil {
		return // builtin, conversion, or unresolvable function value
	}
	sig, ok := callee.Type().(*types.Signature)
	if ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
		// Resolve against the receiver expression's static interface type
		// when available; the declaring interface (possibly an embedded
		// one-method interface like io.Closer) is the wider fallback.
		iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if selection, ok := src.Info.Selections[sel]; ok {
				if recvIface, ok := selection.Recv().Underlying().(*types.Interface); ok {
					iface = recvIface
				}
			}
		}
		if iface == nil {
			return
		}
		impls := b.implementations(iface, callee)
		if len(impls) == 0 {
			b.addEdge(caller, b.node(callee), call.Pos(), Dynamic, inDefer)
			return
		}
		for _, impl := range impls {
			b.addEdge(caller, b.node(impl), call.Pos(), Interface, inDefer)
		}
		return
	}
	b.addEdge(caller, b.node(callee), call.Pos(), Static, inDefer)
}

func (b *builder) addEdge(caller, callee *Node, site token.Pos, kind Kind, inDefer bool) {
	for _, e := range caller.Out {
		if e.Site == site && e.Callee == callee && e.Kind == kind {
			return
		}
	}
	e := &Edge{Caller: caller, Callee: callee, Site: site, Kind: kind, InDefer: inDefer}
	caller.Out = append(caller.Out, e)
}

// staticCallee resolves the called function object for plain calls, method
// calls, and package-qualified calls; nil for builtins, conversions, and
// calls through function values.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// EdgeList serializes every edge as one line
//
//	caller -> callee [kind] file:line:col
//
// in the graph's deterministic order. Two builds over identical source
// yield byte-identical output; the determinism test pins this.
func (g *Graph) EdgeList() []string {
	var out []string
	for _, n := range g.Funcs {
		for _, e := range n.Out {
			out = append(out, fmt.Sprintf("%s -> %s [%s] %s",
				n.Name(), e.Callee.Name(), e.Kind, g.Fset.Position(e.Site)))
		}
	}
	return out
}

// Reachable walks out-edges breadth-first from roots in deterministic
// order and returns every reachable node (roots included) plus, for each
// non-root, the edge through which it was first discovered — enough to
// reconstruct one witness call chain per node.
func (g *Graph) Reachable(roots ...*Node) ([]*Node, map[*Node]*Edge) {
	parent := make(map[*Node]*Edge)
	seen := make(map[*Node]bool)
	var order []*Node
	queue := append([]*Node(nil), roots...)
	for _, r := range queue {
		seen[r] = true
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, e := range n.Out {
			if seen[e.Callee] {
				continue
			}
			seen[e.Callee] = true
			parent[e.Callee] = e
			queue = append(queue, e.Callee)
		}
	}
	return order, parent
}

// Chain reconstructs the witness call chain from a Reachable root to n as
// "root → … → n" using the parent map returned by Reachable.
func Chain(parent map[*Node]*Edge, n *Node) []*Node {
	var rev []*Node
	for {
		rev = append(rev, n)
		e, ok := parent[n]
		if !ok {
			break
		}
		n = e.Caller
	}
	out := make([]*Node, len(rev))
	for i, x := range rev {
		out[len(rev)-1-i] = x
	}
	return out
}
