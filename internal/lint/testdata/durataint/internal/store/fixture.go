// Package durafix exercises durataint: functions whose error results derive
// from WAL append/fsync calls become carriers (directly, through locals,
// through fmt.Errorf wrapping, and through multi-hop call chains), and
// dropping or swallowing a carrier's error anywhere up the chain is a
// finding. Non-durability errors stay invisible — this is taint tracking,
// not errcheck. Direct drops on the WAL surface itself belong to walerr and
// are deliberately not re-reported here.
package durafix

import (
	"errors"
	"fmt"

	"repro/internal/wal"
)

type Store struct {
	w *wal.WAL
}

// flush is a depth-1 carrier: the fsync error is returned directly.
func (s *Store) flush() error {
	return s.w.Sync()
}

// submit is a carrier through a local and a %w wrap.
func (s *Store) submit(v float64) (int, error) {
	err := s.w.Append(wal.Record{Value: v})
	if err != nil {
		return 0, fmt.Errorf("submit: %w", err)
	}
	return 1, nil
}

// relay is a depth-2 carrier: submit's wrapped error, wrapped again.
func (s *Store) relay() error {
	_, err := s.submit(3)
	if err != nil {
		return fmt.Errorf("relay: %w", err)
	}
	return nil
}

// other returns a non-durability error and is not a carrier.
func (s *Store) other() error {
	return errors.New("transient")
}

func (s *Store) badDrop() {
	s.flush() // want "durability error from Store.flush dropped"
}

func (s *Store) badDeferDrop() {
	defer s.flush() // want "durability error from Store.flush dropped"
}

func (s *Store) badGoDrop() {
	go s.flush() // want "durability error from Store.flush dropped"
}

func (s *Store) badBlank() {
	_ = s.flush() // want "durability error from Store.flush dropped"
}

func (s *Store) badTupleBlank() int {
	n, _ := s.submit(1) // want "durability error from Store.submit dropped"
	return n
}

func (s *Store) badDeepDrop() {
	s.relay() // want "durability error from Store.relay dropped"
}

// badSwallow assigns the carrier error to a variable no path reads again:
// the lexically earlier check is unreachable from the assignment.
func (s *Store) badSwallow() error {
	err := s.other()
	if err != nil {
		return err
	}
	err = s.flush() // want "durability error from Store.flush swallowed"
	return nil
}

// badBaseSwallow swallows the fsync error at the WAL surface itself — the
// drop-form checks are walerr's, but swallowing is durataint's to catch.
func (s *Store) badBaseSwallow() error {
	err := s.other()
	if err != nil {
		return err
	}
	err = s.w.Sync() // want "durability error from WAL.Sync swallowed"
	return nil
}

// goodCheck handles the error on every path.
func (s *Store) goodCheck() error {
	if err := s.flush(); err != nil {
		return err
	}
	return nil
}

// goodNamed assigns to a named result: the bare return consumes it.
func (s *Store) goodNamed() (err error) {
	err = s.flush()
	return
}

// goodLoop reads the error on the next iteration through the back edge —
// the CFG reachability that a lexical scan would miss.
func (s *Store) goodLoop() error {
	var last error
	for i := 0; i < 3; i++ {
		if last != nil {
			return last
		}
		last = s.flush()
	}
	return last
}

// goodDeferRead consumes the error in a deferred closure, which runs after
// the assignment regardless of lexical position (documented trade-off:
// any closure read counts as consumption).
func (s *Store) goodDeferRead() (out error) {
	var err error
	defer func() { out = err }()
	err = s.flush()
	return nil
}

// goodOther drops a non-durability error: not this analyzer's business.
func (s *Store) goodOther() {
	s.other()
}
