// Package serverfix exercises lockorder's cross-package edges: the
// coordinator holds Service.mu across store and trust calls (forward edges
// along the documented order), while its Snapshot method — the program's
// only implementation of the trust fixture's Source interface — lets the
// trust layer acquire Service.mu under Manager.mu, closing a cycle that
// spans three packages and an interface dispatch.
package serverfix

import (
	"sync"

	storefix "repro/internal/lint/testdata/lockorder/internal/store"
	trustfix "repro/internal/lint/testdata/lockorder/internal/trust"
)

type Service struct {
	mu sync.RWMutex
	st *storefix.Store
	tm *trustfix.Manager
}

// Rate holds the coordinator lock across the store submit (Service.mu →
// Store.mu → shard.mu, all forward) and the trust bump. The trust call is
// the first witness of the Service.mu → Manager.mu edge, so the
// Service.mu ⇄ Manager.mu cycle (closed by trustfix.Recompute through the
// Source interface) is anchored here.
func (s *Service) Rate(i int, v float64) {
	s.mu.RLock()
	s.st.Submit(i, v)
	s.tm.Bump("rater") // want "lock-order cycle — potential deadlock"
	s.mu.RUnlock()
}

// Snapshot implements trustfix.Source; it takes Service.mu, which is what
// makes the trust layer's interface call a reverse lock edge.
func (s *Service) Snapshot() []float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return nil
}
