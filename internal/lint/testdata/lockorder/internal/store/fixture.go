// Package storefix exercises lockorder inside an internal/store package
// path: the documented Store.mu → shard.mu order is a plain edge, the
// reverse acquisition closes a cycle, nesting two instances of one class
// needs a documented instance order, and a call chain that reaches a WAL
// fsync while the shard mutex is held is flagged interprocedurally.
package storefix

import (
	"sync"

	"repro/internal/wal"
)

type Store struct {
	mu     sync.RWMutex
	shards []*shard
}

type shard struct {
	mu   sync.Mutex
	wal  *wal.WAL
	vals []float64
}

// Submit follows the documented Store.mu → shard.mu order. The nested
// acquisition is where the analyzer anchors the whole cycle report once
// badBack (below) adds the reverse edge: the earliest witness of the
// cycle's first edge is the deterministic report site.
func (s *Store) Submit(i int, v float64) {
	s.mu.RLock()
	sh := s.shards[i]
	sh.mu.Lock() // want "lock-order cycle — potential deadlock"
	sh.vals = append(sh.vals, v)
	sh.mu.Unlock()
	s.mu.RUnlock()
}

// badBack acquires the topology lock while holding a shard lock — the
// reverse of Submit's order. Together they form the Store.mu ⇄ shard.mu
// cycle reported at Submit's nested acquisition above.
func (sh *shard) badBack(s *Store) int {
	sh.mu.Lock()
	s.mu.RLock()
	n := len(s.shards)
	s.mu.RUnlock()
	sh.mu.Unlock()
	return n
}

// lockPair nests two instances of the same class with no documented order.
func (s *Store) lockPair(a, b *shard) {
	a.mu.Lock()
	b.mu.Lock() // want "a second instance is acquired while one is already held"
	b.mu.Unlock()
	a.mu.Unlock()
}

// flush is the blocking leaf: its direct wal.Sync call taints every caller
// in the may-block summary.
func (sh *shard) flush() error {
	return sh.wal.Sync()
}

func (sh *shard) relay() error {
	return sh.flush()
}

// badCheckpoint fsyncs one call away while holding the shard state mutex.
func (sh *shard) badCheckpoint() error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.flush() // want "calls wal.Sync while holding internal/store.shard.mu"
}

// badDeep reaches the fsync two calls away; the diagnostic names the chain.
func (sh *shard) badDeep() error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.relay() // want "calls wal.Sync \(via shard.relay → shard.flush\) while holding internal/store.shard.mu"
}

// goodCheckpoint releases the state mutex across the fsync — the canonical
// reserve/release/apply shape. No finding.
func (sh *shard) goodCheckpoint(v float64) error {
	sh.mu.Lock()
	w := sh.wal
	sh.mu.Unlock()
	if err := w.Sync(); err != nil {
		return err
	}
	sh.mu.Lock()
	sh.vals = append(sh.vals, v)
	sh.mu.Unlock()
	return nil
}
