// Package trustfix exercises lockorder's CHA resolution: Recompute holds
// the trust mutex across an interface call whose only program
// implementation is the coordinator's Snapshot (see the server fixture),
// which takes Service.mu — the reverse edge that closes a cross-package
// lock-order cycle no per-function analyzer can see.
package trustfix

import "sync"

// Source is implemented by the server fixture's Service.
type Source interface {
	Snapshot() []float64
}

type Manager struct {
	mu    sync.Mutex
	score map[string]float64
}

func (m *Manager) Bump(id string) {
	m.mu.Lock()
	m.score[id]++
	m.mu.Unlock()
}

// Recompute holds Manager.mu across the interface call. CHA fans the call
// out to *Service.Snapshot, producing the Manager.mu → Service.mu edge.
func (m *Manager) Recompute(src Source) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for range src.Snapshot() {
	}
}
