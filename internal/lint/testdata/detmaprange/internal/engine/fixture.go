// Package enginefix exercises detmaprange inside a determinism-critical
// package path (the …/internal/engine/… segments make it critical).
package enginefix

import "sort"

func fold(m map[string]int) int {
	total := 0
	for _, v := range m { // want "range over map m"
		total += v
	}
	return total
}

func nested(outer map[string]map[string]int) int {
	total := 0
	for _, inner := range outer { // want "range over map outer"
		for _, v := range inner { // want "range over map inner"
			total += v
		}
	}
	return total
}

func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // allowed: keys are sorted before use
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func annotated(m map[string]int) int {
	total := 0
	//lint:orderindependent integer sum: addition of ints is exact and commutative
	for _, v := range m {
		total += v
	}
	return total
}

func annotatedIgnoreSpelling(m map[string]int) int {
	total := 0
	//lint:ignore detmaprange the generic ignore spelling also works for this analyzer
	for _, v := range m {
		total += v
	}
	return total
}

func missingRationale(m map[string]int) int {
	total := 0
	//lint:orderindependent // want "needs a rationale"
	for _, v := range m {
		total += v
	}
	return total
}

func sliceRange(s []int) int {
	total := 0
	for _, v := range s { // allowed: slices iterate in index order
		total += v
	}
	return total
}

func channelRange(c chan int) int {
	total := 0
	for v := range c { // allowed: not a map
		total += v
	}
	return total
}
