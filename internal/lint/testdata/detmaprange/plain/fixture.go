// Package plain exercises detmaprange outside the determinism-critical
// package list: identical map iteration must NOT be flagged here.
package plain

func fold(m map[string]int) int {
	total := 0
	for _, v := range m { // allowed: package is not determinism-critical
		total += v
	}
	return total
}
