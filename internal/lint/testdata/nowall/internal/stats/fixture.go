// Package statsfix exercises nowall inside a pure compute package path:
// wall-clock reads and the global rand source are flagged.
package statsfix

import (
	"math/rand/v2"
	"time"
)

func badRand() float64 {
	return rand.Float64() // want "global rand.Float64"
}

func badShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global rand.Shuffle"
}

func badTime() int64 {
	return time.Now().UnixNano() // want "time.Now"
}

func goodInjected(rng *rand.Rand) float64 {
	return rng.Float64() // allowed: explicitly seeded generator threaded in
}

func goodSeeded(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed)) // allowed: explicit seed
}

func goodTimeValue(now time.Time) int64 {
	return now.Unix() // allowed: time passed in as a value
}

func annotated() time.Time {
	//lint:ignore nowall operational timestamp outside any checkpointed computation, demonstrated for the fixture
	return time.Now()
}
