// Package plain exercises nowall outside the pure compute package list:
// wall-clock and global rand are operational concerns there, not
// determinism bugs.
package plain

import (
	"math/rand/v2"
	"time"
)

func operationalTimestamp() int64 {
	return time.Now().UnixNano() // allowed: not a pure compute package
}

func jitter() float64 {
	return rand.Float64() // allowed: not a pure compute package
}
