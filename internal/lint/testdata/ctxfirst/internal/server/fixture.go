// Package serverfix exercises ctxfirst inside an internal/server package
// path: exported functions doing durable I/O or spawning workers must take
// context.Context first.
package serverfix

import (
	"context"

	"repro/internal/wal"
)

type Service struct {
	w *wal.WAL
}

func (s *Service) Submit(ctx context.Context, v float64) error { // allowed: ctx first
	_ = ctx
	return s.w.Append(wal.Record{Value: v})
}

func (s *Service) Flush() error { // want "exported Flush writes the WAL"
	return s.w.Sync()
}

func (s *Service) Rebuild() { // want "exported Rebuild spawns a goroutine"
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	<-done
}

func (s *Service) Query(v int) error { // want "exported Query calls context-aware"
	return s.query(context.Background(), v)
}

// allowed: the contract binds exported functions; helpers inherit the
// caller's context by convention.
func (s *Service) query(ctx context.Context, v int) error {
	_ = ctx
	_ = v
	return nil
}

func (s *Service) Checkpoint() error { // want "exported Checkpoint reaches writes the WAL"
	return s.compact()
}

func (s *Service) compact() error {
	return s.w.Compact(nil)
}

func (s *Service) Late(v int, ctx context.Context) error { // want "first parameter"
	_ = v
	_ = ctx
	return s.w.Sync()
}

func (s *Service) Stats() int { // allowed: pure accessor, no I/O
	return 0
}

// allowed: building a closure is not work — it runs later under the
// eventual caller's context.
func (s *Service) Handler() func(context.Context, int) error {
	return func(ctx context.Context, v int) error {
		return s.query(ctx, v)
	}
}

func (s *Service) Close() error { // allowed: drain is context-free by convention
	return s.w.Sync()
}

//lint:ignore ctxfirst boot-time recovery has no caller to propagate a deadline from, demonstrated for the fixture
func Open(w *wal.WAL) (*Service, error) {
	if err := w.Sync(); err != nil {
		return nil, err
	}
	return &Service{w: w}, nil
}
