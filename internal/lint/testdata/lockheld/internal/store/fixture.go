// Package storefix exercises lockheld inside an internal/store package
// path: the guarded-field discipline applies as in internal/server, fields
// that synchronize themselves (mutexes, sync/atomic values, references to
// self-locking structs) are exempt, and the shard-mutex rule additionally
// forbids WAL fsyncs and engine evaluations while mu is lexically held.
package storefix

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/wal"
)

type shard struct {
	gate sync.RWMutex
	mu   sync.Mutex
	data []float64
	wal  *wal.WAL
	eng  *engine.Engine
	subs atomic.Int64
	peer *shard
}

// Good is the canonical submit shape: reserve under mu, release it across
// the fsync, reacquire to apply. The gate (a second mutex) and the wal (a
// self-locking struct) are accessed freely — neither is guarded by mu.
func (sh *shard) Good(v float64) error {
	sh.gate.RLock()
	defer sh.gate.RUnlock()
	sh.mu.Lock()
	w := sh.wal
	sh.mu.Unlock()
	if err := w.Append(wal.Record{Value: v}); err != nil {
		return err
	}
	sh.mu.Lock()
	sh.data = append(sh.data, v)
	sh.mu.Unlock()
	return nil
}

func (sh *shard) BadFsync(v float64) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.data = append(sh.data, v)
	return sh.wal.Sync() // want "calls wal.Sync while holding sh.mu"
}

func (sh *shard) BadEval(ctx context.Context) error {
	sh.mu.Lock()
	_, err := sh.eng.Resume(ctx, nil, nil) // want "calls engine.Resume while holding sh.mu"
	sh.mu.Unlock()
	return err
}

// GoodCount touches only a self-synchronized atomic: no mu needed.
func (sh *shard) GoodCount() int64 {
	return sh.subs.Add(1)
}

// GoodPeer reads a reference to another self-locking shard: the pointer's
// referent synchronizes itself, so the field is not guarded.
func (sh *shard) GoodPeer() *shard {
	return sh.peer
}

func (sh *shard) BadRead() float64 { // want "accesses guarded field sh.data"
	return sh.data[0]
}

// BadRelockGap follows the reserve/release/apply shape but touches guarded
// state in the gap where mu is released: a first-lock-versus-first-access
// comparison is blind to this, the held-state dataflow is not.
func (sh *shard) BadRelockGap(v float64) error { // want "accesses guarded field sh.data"
	sh.mu.Lock()
	w := sh.wal
	sh.mu.Unlock()
	sh.data = append(sh.data, v)
	if err := w.Sync(); err != nil {
		return err
	}
	sh.mu.Lock()
	sh.data = append(sh.data, v)
	sh.mu.Unlock()
	return nil
}

// BadDeferGap releases mu mid-body (the deferred unlock runs at return, it
// does not cover the gap) and touches guarded state before reacquiring.
func (sh *shard) BadDeferGap(v float64) float64 { // want "accesses guarded field sh.data"
	sh.mu.Lock()
	defer sh.mu.Unlock()
	snapshot := sh.data[0]
	sh.mu.Unlock()
	sh.data = append(sh.data, v)
	sh.mu.Lock()
	return snapshot
}
