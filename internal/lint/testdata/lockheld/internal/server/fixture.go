// Package serverfix exercises lockheld inside an internal/server package
// path: structs with a `mu` mutex field get their locking discipline
// checked.
package serverfix

import "sync"

type store struct {
	mu    sync.RWMutex
	table map[string]int
	n     int
}

func (s *store) Good(k string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.table[k] // allowed: read under RLock
}

func (s *store) GoodWrite(k string, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.table[k] = v // allowed: write under Lock
}

func (s *store) Bad(k string) int { // want "accesses guarded field s.table"
	return s.table[k]
}

func (s *store) LateLock() int { // want "accesses guarded field s.n"
	n := s.n // read before the Lock below
	s.mu.Lock()
	defer s.mu.Unlock()
	return n + s.n
}

func (s *store) sizeLocked() int {
	return s.n // allowed: Locked suffix declares the caller holds mu
}

func (s *store) badLocked() {
	s.mu.Lock() // want "self-deadlocks"
	s.n++
}

// freshRLock returns holding the read lock (the helper-acquire pattern).
func (s *store) freshRLock() { s.mu.RLock() }

func (s *store) ViaHelper() int {
	s.freshRLock() // allowed: *Lock-suffixed helper counts as acquiring mu
	defer s.mu.RUnlock()
	return s.n
}

//lint:ignore lockheld boot-time initialization before the store escapes its constructor, demonstrated for the fixture
func (s *store) boot() {
	s.n = 1
}

type plain struct{ n int }

func (p *plain) Get() int {
	return p.n // allowed: no mu field, struct is not in the locking model
}
