// Package floatfix exercises floateq: exact ==/!= on floats is flagged
// everywhere outside test files and tolerance helpers.
package floatfix

func equal(a, b float64) bool {
	return a == b // want "float comparison a == b"
}

func notEqual(a float64) bool {
	return a != 0 // want "float comparison a != 0"
}

func mixed(a float64, b int) bool {
	return a == float64(b) // want "float comparison"
}

func float32Too(a, b float32) bool {
	return a == b // want "float comparison a == b"
}

func viaExpression(xs []float64) bool {
	return xs[0]*2 == xs[1] // want "float comparison"
}

func nanCheck(a float64) bool {
	return a != a // allowed: self-comparison is the portable NaN test
}

func approxEqual(a, b, tol float64) bool {
	if a == b { // allowed: inside an approved tolerance helper
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func ints(a, b int) bool {
	return a == b // allowed: not floating point
}

func strings(a, b string) bool {
	return a != b // allowed: not floating point
}

func annotated(a, b float64) bool {
	//lint:ignore floateq bit-exact sentinel comparison, demonstrated for the fixture
	return a == b
}
