// Package walfix exercises walerr against the real internal/wal surface:
// dropped errors on Append/Sync/Compact and fsync paths are flagged in any
// package.
package walfix

import (
	"os"

	"repro/internal/wal"
)

func drops(w *wal.WAL, f *os.File, lf wal.File, fsys wal.FS) {
	w.Append(wal.Record{})      // want "Append dropped"
	w.Sync()                    // want "Sync dropped"
	w.Compact(nil)              // want "Compact dropped"
	_ = w.Append(wal.Record{})  // want "Append dropped"
	f.Sync()                    // want "Sync dropped"
	lf.Sync()                   // want "Sync dropped"
	fsys.Truncate("wal.log", 0) // want "Truncate dropped"
	fsys.Rename("a", "b")       // want "Rename dropped"
}

func dropsAck(w *wal.WAL) {
	w.AppendAck(wal.Record{})           // want "AppendAck dropped"
	_, _ = w.AppendAck(wal.Record{})    // want "AppendAck dropped"
	ack, _ := w.AppendAck(wal.Record{}) // want "AppendAck dropped"
	_ = ack
}

func checkedAck(w *wal.WAL) error {
	ack, err := w.AppendAck(wal.Record{}) // allowed: error consumed
	_ = ack
	return err
}

func dropsDeferred(w *wal.WAL) {
	defer w.Sync() // want "Sync dropped"
}

func dropsInGoroutine(w *wal.WAL) {
	go w.Sync() // want "Sync dropped"
}

func checked(w *wal.WAL, f *os.File) error {
	if err := w.Append(wal.Record{}); err != nil { // allowed: error consumed
		return err
	}
	if err := f.Sync(); err != nil { // allowed: error consumed
		return err
	}
	err := w.Sync() // allowed: assigned to a real variable
	return err
}

func outsideSurface(w *wal.WAL, f *os.File) {
	_ = w.Size()    // allowed: Size has no error result
	w.Close()       // allowed: Close is not on the guarded durability surface
	defer f.Close() // allowed: os.File.Close is not fsync
}

func annotated(w *wal.WAL) {
	//lint:ignore walerr best-effort flush on an already-failed shutdown path, demonstrated for the fixture
	w.Sync()
}
