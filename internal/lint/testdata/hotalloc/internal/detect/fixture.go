// Package hotfix exercises hotalloc: //lint:hotpath roots must be
// transitively allocation-free and lock-free. Clean kernels (pure
// arithmetic, local helpers, math calls) pass; every allocating or locking
// construct is flagged, in the annotated function or any function it can
// reach — including interface calls CHA-resolved to their implementations
// and externals whose bodies the program cannot see.
package hotfix

import (
	"fmt"
	"math"
	"sync"
)

// Hot is the clean shape: slice params in, scalar out, a local helper and
// an allowlisted math call on the way.
//
//lint:hotpath route-style scoring kernel backed by a 0-alloc benchmark
func Hot(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += scale(x)
	}
	return math.Sqrt(sum)
}

func scale(x float64) float64 { return x * 1.5 }

type point struct{ x float64 }

//lint:hotpath heap constructs anywhere in the body are findings
func HotHeap(xs []float64, s string) float64 {
	buf := make([]float64, 0, len(xs)) // want "make allocates"
	buf = append(buf, xs...)           // want "append may grow and allocate"
	p := &point{x: 1}                  // want "pointer composite literal escapes to the heap"
	lit := []float64{1, 2}             // want "slice or map composite literal allocates"
	msg := s + "!"                     // want "string concatenation allocates"
	b := []byte(msg)                   // want "conversion between string and"
	return buf[0] + p.x + lit[0] + float64(len(b))
}

func tick() {}

//lint:hotpath concurrency constructs are neither allocation- nor lock-free
func HotConc(ch chan int, m *sync.Mutex, f func() int) int {
	defer tick()                  // want "defer is not allowed on a hot path"
	go tick()                     // want "go statement spawns a goroutine"
	ch <- 1                       // want "channel send blocks"
	v := <-ch                     // want "channel receive blocks"
	m.Lock()                      // want "acquires sync.Mutex.Lock"
	m.Unlock()                    // want "acquires sync.Mutex.Unlock"
	cl := func() int { return 0 } // want "function literal allocates a closure"
	a := f()                      // want "call through a function value"
	b := cl()                     // want "call through a function value"
	return v + a + b
}

//lint:hotpath externals without loaded bodies cannot be proven
func HotExtern(x float64) string {
	return fmt.Sprintf("%.2f", x) // want "external function fmt.Sprintf"
}

type accumulator interface{ add(x float64) }

type sliceAcc struct{ xs []float64 }

// add is never annotated itself: it is flagged because HotIface's
// interface call CHA-resolves to it, and the finding carries the witness
// chain from the root.
func (a *sliceAcc) add(x float64) {
	a.xs = append(a.xs, x) // want "append may grow and allocate.*hot path: HotIface -> sliceAcc.add"
}

//lint:hotpath the interface call resolves to sliceAcc.add, which allocates
func HotIface(a accumulator) {
	a.add(1)
}

type sink interface{ emit(x float64) }

//lint:hotpath no program type implements sink: the dispatch is opaque
func HotDyn(s sink) {
	s.emit(1) // want "unresolved interface method"
}
