package lint

import (
	"go/ast"
	"go/types"
)

// determinismCriticalPkgs are the packages whose outputs must be bit-exact
// regardless of scheduling: the engine's P-scores are checkpointed, resumed,
// and compared across worker widths, so any map-iteration-order dependence
// is a silent correctness bug (see DESIGN.md §8 and §9).
var determinismCriticalPkgs = []string{
	"internal/engine",
	"internal/agg",
	"internal/epoch",
	"internal/trust",
}

// DetMapRange flags `range` over a map in determinism-critical packages.
// Go randomizes map iteration order, so any fold over a map range is
// order-dependent unless the loop body commutes (integer count merges) or
// the results are sorted before use.
//
// Two escapes exist: collect-then-sort — a sort.*/slices.Sort* call later
// in the same function is taken as evidence the iteration feeds a sorted
// collection — and an explicit `//lint:orderindependent <rationale>`
// annotation for genuinely commutative folds.
var DetMapRange = &Analyzer{
	Name: "detmaprange",
	Doc: "flags range-over-map in determinism-critical packages " +
		"(internal/engine, internal/agg, internal/epoch, internal/trust) " +
		"unless the results are sorted or the loop is annotated //lint:orderindependent",
	Run: runDetMapRange,
}

func runDetMapRange(pass *Pass) error {
	if !pathHasAnySegments(pass.Pkg.Path, determinismCriticalPkgs) {
		return nil
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := info.Types[rng.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if sortCallAfter(info, fn.Body, rng) {
					return true
				}
				pass.Reportf(rng.For,
					"range over map %s in determinism-critical package %s: iteration order is randomized; sort the keys first or annotate //lint:orderindependent with a rationale",
					types.ExprString(rng.X), pass.Pkg.Path)
				return true
			})
		}
	}
	return nil
}

// sortCallAfter reports whether a sort.* or slices.Sort* call occurs in
// body lexically after pos — the collect-then-sort idiom (append map
// entries to a slice, sort it, then use it deterministically).
func sortCallAfter(info *types.Info, body *ast.BlockStmt, pos ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos.End() {
			return true
		}
		if pkg, name := calleePkgFunc(info, call); pkg == "sort" ||
			(pkg == "slices" && len(name) >= 4 && name[:4] == "Sort") {
			found = true
			return false
		}
		return true
	})
	return found
}

// calleePkgFunc resolves a call of the form pkgname.Func to its package
// path and function name ("", "" when the callee is anything else).
func calleePkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}
