package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/callgraph"
)

// HotAlloc statically backs the benchdiff 0-alloc gate: a function annotated
//
//	//lint:hotpath <why this must stay allocation-free>
//
// must be transitively allocation-free and lock-free — itself and every
// function it can reach through the call graph. The benchmark gate catches a
// regression only on the inputs the benchmark exercises; this analyzer
// proves the property over all paths, so an allocation hidden behind a
// rarely-taken branch three calls down still fails lint.
//
// Flagged constructs: make/new/append, pointer and slice/map composite
// literals, function literals (closure capture), go/defer/select and channel
// operations, non-constant string concatenation, string<->[]byte/[]rune
// conversions, calls into package sync (sync/atomic stays allowed — it is
// the lock-free toolkit), calls through function values or unresolved
// interfaces, and calls to external functions whose bodies the program
// cannot see (a small allowlist covers math and math/bits). Deliberate
// trade-offs (DESIGN.md §13): plain by-value struct literals are allowed
// (they live on the stack unless escape analysis says otherwise, and the
// benchmark gate owns the escaping case), as are map writes (growth is
// load-dependent and runtime-gated) and panic calls (unreachable in steady
// state).
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "proves //lint:hotpath-annotated functions transitively allocation-free and " +
		"lock-free over the whole-program call graph, backing the benchdiff 0-alloc gate",
	RunProgram: runHotAlloc,
}

// hotAllocFacts is the exported fact bundle: annotated roots and the full
// transitive closure the analyzer proved (or flagged), sorted.
type hotAllocFacts struct {
	Roots   []string
	Checked []string
}

// hotAllocExternAllow lists external (no-body) callee packages that are
// known allocation- and lock-free: pure arithmetic on machine words.
var hotAllocExternAllow = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync/atomic": true,
}

func runHotAlloc(pass *ProgramPass) error {
	cg := pass.Prog.CallGraph()
	info := make(map[string]*types.Info)
	for _, pkg := range pass.Prog.Pkgs {
		info[pkg.Path] = pkg.Info
	}

	roots := hotpathRoots(pass.Prog, cg)
	if len(roots) == 0 {
		pass.ExportFact(hotAllocFacts{})
		return nil
	}

	reach, parent := cg.Reachable(roots...)

	// chainSuffix renders the witness call chain for a node, empty for a
	// root (the finding position already names it).
	chainSuffix := func(n *callgraph.Node) string {
		chain := callgraph.Chain(parent, n)
		if len(chain) <= 1 {
			return ""
		}
		parts := make([]string, len(chain))
		for i, c := range chain {
			parts[i] = shortFuncName(c)
		}
		return fmt.Sprintf(" (hot path: %s)", strings.Join(parts, " -> "))
	}

	seen := make(map[string]bool) // dedupe identical findings reached twice
	report := func(pos token.Pos, format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		key := fmt.Sprintf("%v|%s", pass.Prog.Fset.Position(pos), msg)
		if seen[key] {
			return
		}
		seen[key] = true
		pass.Reportf(pos, "%s", msg)
	}

	facts := hotAllocFacts{}
	for _, r := range roots {
		facts.Roots = append(facts.Roots, r.Name())
	}
	for _, n := range reach {
		facts.Checked = append(facts.Checked, n.Name())

		if n.Decl == nil {
			// External callee: allocation behavior is invisible. Allowlisted
			// packages are known-pure; everything else is a finding at the
			// edge that dragged it onto the hot path.
			pkg := ""
			if n.Func.Pkg() != nil {
				pkg = n.Func.Pkg().Path()
			}
			if hotAllocExternAllow[pkg] {
				continue
			}
			if pkg == "sync" {
				continue // flagged at the call site as a lock acquisition
			}
			e := parent[n]
			if e == nil {
				continue // an annotated root without a body cannot happen
			}
			what := "external function"
			if e.Kind == callgraph.Dynamic {
				what = "unresolved interface method"
			}
			report(e.Site,
				"hotpath calls %s %s, which cannot be proven allocation-free: inline it, move it off the hot path, or annotate //lint:ignore hotalloc with a rationale%s",
				what, n.Name(), chainSuffix(e.Caller))
			continue
		}

		in := info[n.SrcPath]
		if in == nil {
			continue
		}
		checkHotBody(report, in, n, chainSuffix(n))
	}

	sort.Strings(facts.Roots)
	sort.Strings(facts.Checked)
	pass.ExportFact(facts)
	return nil
}

// hotpathRoots resolves //lint:hotpath annotations to call-graph nodes. The
// directive attaches to the function declaration it precedes: on the line
// directly above the func keyword or anywhere inside the doc comment.
func hotpathRoots(prog *Program, cg *callgraph.Graph) []*callgraph.Node {
	var roots []*callgraph.Node
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			var hots []directive
			for _, d := range parseDirectives(pkg.Fset, f) {
				if d.verb == "hotpath" {
					hots = append(hots, d)
				}
			}
			if len(hots) == 0 {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				funcLine := pkg.Fset.Position(fd.Pos()).Line
				attached := false
				for _, d := range hots {
					if d.line == funcLine-1 {
						attached = true
						break
					}
					if fd.Doc != nil && d.pos >= fd.Doc.Pos() && d.pos <= fd.Doc.End() {
						attached = true
						break
					}
				}
				if !attached {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					if n := cg.Node(fn); n != nil {
						roots = append(roots, n)
					}
				}
			}
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Name() < roots[j].Name() })
	return roots
}

// checkHotBody scans one reachable function body for allocating or locking
// constructs. Function literals are flagged at the literal (the closure
// value itself allocates) and not descended into.
func checkHotBody(report func(token.Pos, string, ...any), info *types.Info, n *callgraph.Node, chain string) {
	flag := func(pos token.Pos, what string) {
		report(pos,
			"hotpath function %s is not allocation-free: %s — hoist it into reusable scratch, restructure, or annotate //lint:ignore hotalloc with a rationale%s",
			shortFuncName(n), what, chain)
	}
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			flag(x.Pos(), "function literal allocates a closure")
			return false
		case *ast.GoStmt:
			flag(x.Pos(), "go statement spawns a goroutine")
		case *ast.DeferStmt:
			flag(x.Pos(), "defer is not allowed on a hot path")
		case *ast.SelectStmt:
			flag(x.Pos(), "select performs channel operations")
			return false
		case *ast.SendStmt:
			flag(x.Pos(), "channel send blocks and allocates")
		case *ast.UnaryExpr:
			switch x.Op {
			case token.ARROW:
				flag(x.Pos(), "channel receive blocks")
			case token.AND:
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					flag(x.Pos(), "pointer composite literal escapes to the heap")
				}
			}
		case *ast.CompositeLit:
			switch info.Types[x].Type.Underlying().(type) {
			case *types.Slice, *types.Map:
				flag(x.Pos(), "slice or map composite literal allocates")
			}
		case *ast.BinaryExpr:
			if x.Op != token.ADD {
				return true
			}
			if tv, ok := info.Types[x]; ok && tv.Value == nil {
				if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					flag(x.Pos(), "string concatenation allocates")
				}
			}
		case *ast.CallExpr:
			checkHotCall(flag, info, x)
		}
		return true
	})
}

// checkHotCall classifies one call on a hot path: allocating builtins,
// string/[]byte conversions, sync lock acquisition, and calls through
// function values. Static and interface calls are left to the call-graph
// walk, which scans the callee bodies (or flags external ones).
func checkHotCall(flag func(token.Pos, string), info *types.Info, call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if _, ok := info.Uses[id].(*types.Builtin); ok {
			switch id.Name {
			case "make":
				flag(call.Pos(), "make allocates")
			case "new":
				flag(call.Pos(), "new allocates")
			case "append":
				flag(call.Pos(), "append may grow and allocate")
			}
			return
		}
	}

	// Conversions: only the string<->[]byte/[]rune family copies.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			to := tv.Type.Underlying()
			if from, ok := info.Types[call.Args[0]]; ok {
				if stringBytesConversion(from.Type.Underlying(), to) {
					flag(call.Pos(), "conversion between string and []byte/[]rune copies and allocates")
				}
			}
		}
		return
	}

	fn := calleeFunc(info, call)
	if fn == nil {
		flag(call.Pos(), "call through a function value cannot be proven allocation-free")
		return
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
		name := "sync." + fn.Name()
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if _, typ := namedRecv(sig.Recv().Type()); typ != "" {
				name = "sync." + typ + "." + fn.Name()
			}
		}
		flag(call.Pos(), fmt.Sprintf("acquires %s — hot paths must be lock-free", name))
	}
}

// stringBytesConversion reports whether a conversion between the two
// underlying types copies memory: string <-> []byte or []rune.
func stringBytesConversion(from, to types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteOrRuneSlice := func(t types.Type) bool {
		s, ok := t.(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
			b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(from) && isByteOrRuneSlice(to)) || (isByteOrRuneSlice(from) && isStr(to))
}
