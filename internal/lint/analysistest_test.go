package lint

// The fixture runner is a stdlib analysistest: each testdata package is
// loaded through the production loader (go list + export data + source
// type-check), the analyzer under test runs through the production
// suppression pipeline, and the resulting diagnostics are matched against
// `// want "regexp"` comments on the expected lines. Unmatched diagnostics
// and unsatisfied expectations both fail, so every fixture proves both the
// flagged and the allowed patterns.

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

var (
	wantMarker = regexp.MustCompile(`// want (.*)$`)
	wantQuoted = regexp.MustCompile(`"([^"]*)"`)
)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// runFixture loads ./testdata/<dir> for each dir (explicit paths: the Go
// tool will not expand wildcards into testdata) and checks a single
// analyzer's diagnostics against the fixtures' want comments.
func runFixture(t *testing.T, a *Analyzer, dirs ...string) {
	t.Helper()
	patterns := make([]string, len(dirs))
	for i, d := range dirs {
		patterns[i] = "./testdata/" + d
	}
	pkgs, err := Load(".", patterns...)
	if err != nil {
		t.Fatalf("load fixtures: %v", err)
	}
	if len(pkgs) != len(dirs) {
		t.Fatalf("loaded %d packages for %d fixture dirs", len(pkgs), len(dirs))
	}
	diags, _, err := runAnalyzers(pkgs, []*Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			data, err := os.ReadFile(name)
			if err != nil {
				t.Fatalf("read fixture: %v", err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				m := wantMarker.FindStringSubmatch(line)
				if m == nil {
					continue
				}
				qs := wantQuoted.FindAllStringSubmatch(m[1], -1)
				if len(qs) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", name, i+1, line)
				}
				for _, q := range qs {
					re, err := regexp.Compile(q[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", name, i+1, q[1], err)
					}
					wants = append(wants, &expectation{file: name, line: i + 1, re: re})
				}
			}
		}
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

func TestCtxFirst(t *testing.T) {
	runFixture(t, CtxFirst, "ctxfirst/internal/server")
}

func TestDetMapRange(t *testing.T) {
	runFixture(t, DetMapRange, "detmaprange/internal/engine", "detmaprange/plain")
}

func TestFloatEq(t *testing.T) {
	runFixture(t, FloatEq, "floateq")
}

func TestWALErr(t *testing.T) {
	runFixture(t, WALErr, "walerr")
}

func TestLockHeld(t *testing.T) {
	runFixture(t, LockHeld, "lockheld/internal/server", "lockheld/internal/store")
}

func TestDuraTaint(t *testing.T) {
	runFixture(t, DuraTaint, "durataint/internal/store")
}

func TestHotAlloc(t *testing.T) {
	runFixture(t, HotAlloc, "hotalloc/internal/detect")
}

func TestLockOrder(t *testing.T) {
	runFixture(t, LockOrder,
		"lockorder/internal/server",
		"lockorder/internal/store",
		"lockorder/internal/trust")
}

func TestNoWall(t *testing.T) {
	runFixture(t, NoWall, "nowall/internal/stats", "nowall/plain")
}
