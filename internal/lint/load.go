package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage mirrors the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves patterns (e.g. "./...", explicit package dirs) relative to
// dir and type-checks every matched package from source. Imports — both
// standard library and module-internal — are satisfied from compiler export
// data produced by `go list -export`, so the loader needs no network access
// and no third-party machinery. Test files are not loaded: the analyzers
// enforce production invariants, and tests legitimately break several of
// them (exact float comparisons against golden values, dropped errors in
// teardown).
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string)
	var targets []*listedPackage
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("lint: load %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := &sourceFirstImporter{
		gc: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
			file, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("lint: no export data for %q", path)
			}
			return os.Open(file)
		}),
		srcs: make(map[string]*types.Package),
	}

	// Targets arrive from `go list -deps` in dependency order, so checking
	// them in sequence lets each later package import the earlier ones'
	// source-checked types. That keeps the whole program in one type
	// universe — a function or type has a single types.Object no matter
	// which package refers to it — which the interprocedural analyzers
	// (call-graph identity, CHA interface matching) depend on. Export data
	// remains the fallback for the standard library and any dependency
	// that is not itself an analysis target.
	var pkgs []*Package
	for _, p := range targets {
		pkg, err := typeCheck(fset, imp, p)
		if err != nil {
			return nil, err
		}
		imp.srcs[p.ImportPath] = pkg.Types
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// sourceFirstImporter resolves imports to already source-checked target
// packages when available, falling back to compiler export data. It is the
// mechanism that keeps every loaded package in one type universe.
type sourceFirstImporter struct {
	gc   types.Importer
	srcs map[string]*types.Package
}

func (i *sourceFirstImporter) Import(path string) (*types.Package, error) {
	if p := i.srcs[path]; p != nil {
		return p, nil
	}
	return i.gc.Import(path)
}

func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}
	var out []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decode go list output: %v", err)
		}
		out = append(out, &p)
	}
	return out, nil
}

func typeCheck(fset *token.FileSet, imp types.Importer, p *listedPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %v", p.ImportPath, err)
	}
	return &Package{
		Path:  p.ImportPath,
		Dir:   p.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
