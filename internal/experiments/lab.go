// Package experiments contains one harness per figure of the paper's
// evaluation (Figures 2–7, plus the Figure 8 generator headline). Each
// harness builds its workload, runs the schemes, and returns the data
// series the paper plots, formatted for the command-line tools, the root
// benchmarks, and EXPERIMENTS.md.
package experiments

import (
	"fmt"

	"repro/internal/agg"
	"repro/internal/challenge"
	"repro/internal/stats"
)

// Options sizes a Lab run.
type Options struct {
	// Seed drives every random choice in the lab.
	Seed uint64
	// Submissions is the participant population size (the challenge
	// collected 251).
	Submissions int
	// Challenge overrides the challenge configuration (zero value =
	// challenge.DefaultConfig()).
	Challenge challenge.Config
}

// DefaultOptions reproduces the paper's scale: 251 submissions against the
// 9-product challenge.
func DefaultOptions() Options {
	return Options{Seed: 42, Submissions: 251, Challenge: challenge.DefaultConfig()}
}

// QuickOptions is a reduced configuration for tests and smoke runs.
func QuickOptions() Options {
	cfg := challenge.DefaultConfig()
	cfg.Fair.Products = 5
	cfg.Fair.HorizonDays = 90
	return Options{Seed: 42, Submissions: 40, Challenge: cfg}
}

// Lab is the shared experiment state: the challenge, the simulated
// submission population, and per-scheme scores (computed lazily and cached,
// since several figures share them).
type Lab struct {
	Opts        Options
	Challenge   *challenge.Challenge
	Submissions []challenge.Submission

	schemes map[string]agg.Scheme
	scored  map[string][]challenge.Scored
}

// NewLab builds the challenge and simulates the submission population.
func NewLab(opts Options) (*Lab, error) {
	if opts.Submissions <= 0 {
		opts.Submissions = 251
	}
	if opts.Challenge.Fair.Products == 0 {
		opts.Challenge = challenge.DefaultConfig()
	}
	c, err := challenge.New(opts.Challenge)
	if err != nil {
		return nil, fmt.Errorf("build challenge: %w", err)
	}
	subs, err := challenge.GeneratePopulation(stats.NewRNG(opts.Seed), c, opts.Submissions)
	if err != nil {
		return nil, fmt.Errorf("generate population: %w", err)
	}
	return &Lab{
		Opts:        opts,
		Challenge:   c,
		Submissions: subs,
		schemes: map[string]agg.Scheme{
			"SA":       agg.SAScheme{},
			"BF":       agg.NewBFScheme(),
			"P":        agg.NewPScheme(),
			"WBF":      agg.NewWhitbyScheme(),
			"ENT":      agg.NewEntropyScheme(),
			"CLU":      agg.NewClusteringScheme(),
			"P-online": agg.NewOnlinePScheme(),
		},
		scored: make(map[string][]challenge.Scored),
	}, nil
}

// Scheme returns the named aggregation scheme ("SA", "BF", "P").
func (l *Lab) Scheme(name string) (agg.Scheme, error) {
	s, ok := l.schemes[name]
	if !ok {
		return nil, fmt.Errorf("unknown scheme %q", name)
	}
	return s, nil
}

// Scored returns (computing and caching on first use) every submission's MP
// under the named scheme.
func (l *Lab) Scored(schemeName string) ([]challenge.Scored, error) {
	if sc, ok := l.scored[schemeName]; ok {
		return sc, nil
	}
	scheme, err := l.Scheme(schemeName)
	if err != nil {
		return nil, err
	}
	sc, err := l.Challenge.ScoreAll(l.Submissions, scheme)
	if err != nil {
		return nil, fmt.Errorf("score under %s: %w", schemeName, err)
	}
	l.scored[schemeName] = sc
	return sc, nil
}

// MaxOverallMP returns the strongest submission's overall MP under the
// named scheme.
func (l *Lab) MaxOverallMP(schemeName string) (float64, error) {
	sc, err := l.Scored(schemeName)
	if err != nil {
		return 0, err
	}
	best := 0.0
	for _, s := range sc {
		if s.MP.Overall > best {
			best = s.MP.Overall
		}
	}
	return best, nil
}
