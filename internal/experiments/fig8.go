package experiments

import (
	"fmt"
	"strings"
)

// HeadlineResult reproduces the Figure 8 / Section V-A headline: the
// maximum MP achievable against each scheme across the whole submission
// population, and the P-scheme's ratio to the undefended schemes ("about
// 1/3" in the paper).
type HeadlineResult struct {
	// MaxMP maps scheme name to the strongest submission's overall MP.
	MaxMP map[string]float64
	// RatioPToSA and RatioPToBF compare the defenses.
	RatioPToSA float64
	RatioPToBF float64
}

// Fig8 computes the scheme-comparison headline over the population.
func (l *Lab) Fig8() (*HeadlineResult, error) {
	res := &HeadlineResult{MaxMP: make(map[string]float64, 3)}
	for _, name := range []string{"SA", "BF", "P"} {
		v, err := l.MaxOverallMP(name)
		if err != nil {
			return nil, err
		}
		res.MaxMP[name] = v
	}
	if res.MaxMP["SA"] > 0 {
		res.RatioPToSA = res.MaxMP["P"] / res.MaxMP["SA"]
	}
	if res.MaxMP["BF"] > 0 {
		res.RatioPToBF = res.MaxMP["P"] / res.MaxMP["BF"]
	}
	return res, nil
}

// String renders the headline rows.
func (r *HeadlineResult) String() string {
	var b strings.Builder
	b.WriteString("Scheme comparison over the full submission population\n")
	fmt.Fprintf(&b, "%-8s %10s\n", "scheme", "max MP")
	for _, name := range []string{"SA", "BF", "P"} {
		fmt.Fprintf(&b, "%-8s %10.4f\n", name, r.MaxMP[name])
	}
	fmt.Fprintf(&b, "P/SA ratio %.3f, P/BF ratio %.3f (paper: ≈1/3 of the other schemes)\n",
		r.RatioPToSA, r.RatioPToBF)
	return b.String()
}
