package experiments

import (
	"fmt"
	"strings"
)

// CorrelationSensitivityResult tests the EXPERIMENTS.md explanation for the
// Figure 7 deviation: Procedure 3 (anti-correlation with the preceding fair
// rating) should gain power as the fair ratings' spread grows, because a
// tight fair cluster degenerates the mapper into a fixed ascending ramp.
// Each row re-runs the Figure 7 comparison on a challenge whose honest
// raters have a different noise level.
type CorrelationSensitivityResult struct {
	Scheme string
	Rows   []CorrelationSensitivityRow
}

// CorrelationSensitivityRow is the Figure 7 outcome at one fair-noise level.
type CorrelationSensitivityRow struct {
	NoiseSigma float64
	// HeuristicWins of TopN datasets had heuristic MP > original MP.
	HeuristicWins int
	TopN          int
	// MeanGain is the mean of heuristic/original MP ratios.
	MeanGain float64
}

// CorrelationSensitivity runs the Figure 7 experiment across fair-noise
// levels. Each level builds its own (smaller) challenge and population so
// the whole sweep stays tractable: subs submissions, topN reordered
// datasets, randomTrials random shuffles each.
func (l *Lab) CorrelationSensitivity(schemeName string, sigmas []float64, subs, topN, randomTrials int) (*CorrelationSensitivityResult, error) {
	if len(sigmas) == 0 {
		sigmas = []float64{0.4, 0.8, 1.2}
	}
	if subs <= 0 {
		subs = 30
	}
	res := &CorrelationSensitivityResult{Scheme: schemeName}
	for _, sigma := range sigmas {
		opts := l.Opts
		opts.Seed = l.Opts.Seed ^ uint64(sigma*1000)
		opts.Submissions = subs
		opts.Challenge.Fair.NoiseSigma = sigma
		sub, err := NewLab(opts)
		if err != nil {
			return nil, fmt.Errorf("noise %v: %w", sigma, err)
		}
		corr, err := sub.Correlation(schemeName, topN, randomTrials)
		if err != nil {
			return nil, fmt.Errorf("noise %v: %w", sigma, err)
		}
		row := CorrelationSensitivityRow{
			NoiseSigma:    sigma,
			HeuristicWins: corr.HeuristicWins,
			TopN:          len(corr.Rows),
		}
		var gainSum float64
		var gains int
		for _, r := range corr.Rows {
			if r.OriginalMP > 0 {
				gainSum += r.HeuristicMP / r.OriginalMP
				gains++
			}
		}
		if gains > 0 {
			row.MeanGain = gainSum / float64(gains)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the sensitivity rows.
func (r *CorrelationSensitivityResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Procedure 3 sensitivity to fair-rating spread — %s-scheme\n", r.Scheme)
	fmt.Fprintf(&b, "%12s %10s %10s\n", "fair σ", "wins", "mean gain")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%12.1f %7d/%-2d %10.3f\n", row.NoiseSigma, row.HeuristicWins, row.TopN, row.MeanGain)
	}
	return b.String()
}

// CorrelationJShape re-runs the Figure 7 comparison on a challenge whose
// honest raters follow the J-shaped (rave/rant) opinion profile of real
// rating sites, with jShare of ratings drawn from the extremes. Wide fair
// spread is the regime where Procedure 3's anti-correlation pairing has
// real choices to make.
func (l *Lab) CorrelationJShape(schemeName string, jShare float64, subs, topN, randomTrials int) (*CorrelationSensitivityResult, error) {
	if subs <= 0 {
		subs = 30
	}
	opts := l.Opts
	opts.Seed = l.Opts.Seed ^ 0x15a9e
	opts.Submissions = subs
	opts.Challenge.Fair.JShare = jShare
	sub, err := NewLab(opts)
	if err != nil {
		return nil, fmt.Errorf("jshape %v: %w", jShare, err)
	}
	corr, err := sub.Correlation(schemeName, topN, randomTrials)
	if err != nil {
		return nil, fmt.Errorf("jshape %v: %w", jShare, err)
	}
	row := CorrelationSensitivityRow{
		NoiseSigma:    jShare, // reported in the σ column (labelled by caller)
		HeuristicWins: corr.HeuristicWins,
		TopN:          len(corr.Rows),
	}
	var gainSum float64
	var gains int
	for _, r := range corr.Rows {
		if r.OriginalMP > 0 {
			gainSum += r.HeuristicMP / r.OriginalMP
			gains++
		}
	}
	if gains > 0 {
		row.MeanGain = gainSum / float64(gains)
	}
	return &CorrelationSensitivityResult{Scheme: schemeName, Rows: []CorrelationSensitivityRow{row}}, nil
}
