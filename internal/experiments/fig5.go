package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
)

// RegionSearchResult reproduces Figure 5: Procedure 2's optimum-region
// search on the variance–bias plane against the P-scheme, and the paper's
// headline that the found attack beats every human submission.
type RegionSearchResult struct {
	Search core.SearchResult
	// MaxSubmissionMP is the strongest human submission's MP under the
	// same scheme, for the "generator beats all submissions" comparison.
	MaxSubmissionMP float64
	// Evaluations is the number of attack evaluations spent.
	Evaluations int
}

// Fig5 runs Procedure 2 against the P-scheme with the paper's search
// parameters (initial area bias −4…0, σ 0…2, N = 4, m = 10).
func (l *Lab) Fig5() (*RegionSearchResult, error) {
	return l.RegionSearch("P", core.DefaultSearchConfig())
}

// RegionSearch runs Procedure 2 against the named scheme. Per trial, the
// evaluator generates a fresh full challenge entry — both downgrade targets
// attacked with the (bias, σ) under search, both boost targets with a fixed
// strong boost — and returns the resulting overall MP.
func (l *Lab) RegionSearch(schemeName string, cfg core.SearchConfig) (*RegionSearchResult, error) {
	scheme, err := l.Scheme(schemeName)
	if err != nil {
		return nil, err
	}
	maxSub, err := l.MaxOverallMP(schemeName)
	if err != nil {
		return nil, err
	}
	fairSeries := l.Challenge.FairSeries()
	horizon := l.Opts.Challenge.Fair.HorizonDays
	raters := core.DefaultRaters(l.Opts.Challenge.BiasedRaters)

	evals := 0
	eval := func(bias, sigma float64, trial int) float64 {
		evals++
		// Derive a distinct deterministic stream per (bias, σ, trial).
		seed := l.Opts.Seed ^ uint64(evals)*0x9e3779b97f4a7c15
		gen := core.NewGenerator(seed, raters)
		// A full challenge entry, comparable with the submissions: both
		// downgrade targets carry the (bias, σ) under search; the boost
		// targets carry a fixed strong boost (their headroom above the
		// ≈4 fair mean is too small to be worth searching — Section V-B).
		profiles := make(map[string]core.Profile, 4)
		base := core.Profile{
			StdDev:       sigma,
			Count:        l.Opts.Challenge.BiasedRaters,
			StartDay:     horizon * 0.25,
			DurationDays: horizon * 0.4,
			Correlation:  core.Independent,
			Quantize:     true,
		}
		for _, id := range l.Opts.Challenge.DowngradeTargets {
			p := base
			p.Bias = bias
			profiles[id] = p
		}
		for _, id := range l.Opts.Challenge.BoostTargets {
			p := base
			p.Bias = dataset.MaxValue - fairSeries[id].Mean()
			p.StdDev = sigma / 2
			profiles[id] = p
		}
		atk, err := gen.Generate(profiles, fairSeries)
		if err != nil {
			return 0
		}
		res, err := l.Challenge.Score(atk, scheme)
		if err != nil {
			return 0
		}
		return res.Overall
	}

	search, err := core.SearchOptimalRegion(cfg, eval)
	if err != nil {
		return nil, err
	}
	return &RegionSearchResult{
		Search:          search,
		MaxSubmissionMP: maxSub,
		Evaluations:     evals,
	}, nil
}

// BeatsAllSubmissions reports the paper's headline for Figure 5: the
// heuristically found attack generates more MP than any submission.
func (r *RegionSearchResult) BeatsAllSubmissions() bool {
	return r.Search.BestMP > r.MaxSubmissionMP
}

// String renders the search trace (the shrinking rectangles of Figure 5)
// and the final comparison.
func (r *RegionSearchResult) String() string {
	var b strings.Builder
	b.WriteString("Procedure 2 optimum-region search (variance-bias plane)\n")
	fmt.Fprintf(&b, "%5s  %22s  %10s  %10s  %10s\n", "round", "area [biasLo,biasHi]", "center b", "center σ", "best MP")
	for i, step := range r.Search.Steps {
		fmt.Fprintf(&b, "%5d  [%8.3f, %8.3f]  %10.3f  %10.3f  %10.4f\n",
			i+1, step.Chosen.BiasLo, step.Chosen.BiasHi, step.CenterBias, step.CenterSigma, step.BestMP)
	}
	fmt.Fprintf(&b, "output center: (bias %.3f, σ %.3f), best MP %.4f after %d evaluations\n",
		r.Search.BestBias, r.Search.BestSigma, r.Search.BestMP, r.Evaluations)
	fmt.Fprintf(&b, "max human-submission MP %.4f → generator beats all submissions: %v\n",
		r.MaxSubmissionMP, r.BeatsAllSubmissions())
	return b.String()
}
