package experiments

import (
	"fmt"
	"strings"

	"repro/internal/challenge"
	"repro/internal/core"
	"repro/internal/stats"
)

// CorrelationRow is one of the ten datasets in Figure 7.
type CorrelationRow struct {
	SubmissionID int
	// OriginalMP is the MP of the submission as given.
	OriginalMP float64
	// RandomMP holds the MP of the random reorderings (the paper uses 5).
	RandomMP []float64
	// HeuristicMP is the MP after Procedure 3 anti-correlation reordering.
	HeuristicMP float64
}

// BestRandom returns the strongest random reordering.
func (r CorrelationRow) BestRandom() float64 {
	best := 0.0
	for _, v := range r.RandomMP {
		if v > best {
			best = v
		}
	}
	return best
}

// CorrelationResult reproduces Figure 7: the MP of the top-10 submissions
// under three value orderings — original, random (×5), and Procedure 3
// heuristic correlation. Note a documented deviation from the paper: in
// this reproduction the anti-correlated ordering usually *weakens* the
// attack (the synthetic fair ratings have a narrower spread than the real
// TV data, so Procedure 3 degenerates into an ascending value ramp that
// sharpens the low-band arrival signature); see EXPERIMENTS.md.
type CorrelationResult struct {
	Scheme string
	Rows   []CorrelationRow
	// HeuristicWins counts rows where the heuristic ordering beats the
	// original (the paper: "most of the time").
	HeuristicWins int
}

// Fig7 runs the correlation experiment under the P-scheme with the paper's
// parameters: top-10 MP submissions, 5 random shuffles each.
func (l *Lab) Fig7() (*CorrelationResult, error) { return l.Correlation("P", 10, 5) }

// Correlation runs the Figure 7 experiment: take the topN submissions by
// MP, reorder each one's unfair rating values randomly (randomTrials times)
// and with Procedure 3, and compare the resulting MP values.
func (l *Lab) Correlation(schemeName string, topN, randomTrials int) (*CorrelationResult, error) {
	scored, err := l.Scored(schemeName)
	if err != nil {
		return nil, err
	}
	scheme, err := l.Scheme(schemeName)
	if err != nil {
		return nil, err
	}
	top := challenge.Leaderboard(scored)
	if topN > len(top) {
		topN = len(top)
	}
	fairSeries := l.Challenge.FairSeries()
	rng := stats.NewRNG(l.Opts.Seed ^ 0xf16_7)

	res := &CorrelationResult{Scheme: schemeName}
	for i := 0; i < topN; i++ {
		sc := top[i]
		row := CorrelationRow{
			SubmissionID: sc.Submission.ID,
			OriginalMP:   sc.MP.Overall,
		}
		for trial := 0; trial < randomTrials; trial++ {
			re := sc.Submission.Attack.Reorder(stats.Fork(rng), core.Shuffled, fairSeries)
			mpRes, err := l.Challenge.Score(re, scheme)
			if err != nil {
				return nil, fmt.Errorf("random reorder of %d: %w", sc.Submission.ID, err)
			}
			row.RandomMP = append(row.RandomMP, mpRes.Overall)
		}
		re := sc.Submission.Attack.Reorder(stats.Fork(rng), core.HeuristicAnti, fairSeries)
		mpRes, err := l.Challenge.Score(re, scheme)
		if err != nil {
			return nil, fmt.Errorf("heuristic reorder of %d: %w", sc.Submission.ID, err)
		}
		row.HeuristicMP = mpRes.Overall
		if row.HeuristicMP > row.OriginalMP {
			res.HeuristicWins++
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the Figure 7 comparison rows.
func (r *CorrelationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Correlation experiment — %s-scheme, top-%d submissions\n", r.Scheme, len(r.Rows))
	fmt.Fprintf(&b, "%4s  %6s  %10s  %10s  %10s\n", "rank", "sub", "original", "bestRand", "heuristic")
	for i, row := range r.Rows {
		fmt.Fprintf(&b, "%4d  %6d  %10.4f  %10.4f  %10.4f\n",
			i+1, row.SubmissionID, row.OriginalMP, row.BestRandom(), row.HeuristicMP)
	}
	fmt.Fprintf(&b, "heuristic ordering beats original in %d/%d datasets\n", r.HeuristicWins, len(r.Rows))
	return b.String()
}
