package experiments

import (
	"strings"
	"testing"
)

func TestSchemeComparisonOrdering(t *testing.T) {
	l := quickLab(t)
	res, err := l.SchemeComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) != 6 {
		t.Fatalf("schemes = %v", res.Order)
	}
	for _, name := range res.Order {
		if res.MaxMP[name] <= 0 || res.MeanMP[name] <= 0 {
			t.Errorf("%s: max %v mean %v", name, res.MaxMP[name], res.MeanMP[name])
		}
		if res.MeanMP[name] > res.MaxMP[name] {
			t.Errorf("%s: mean %v > max %v", name, res.MeanMP[name], res.MaxMP[name])
		}
	}
	// SA is the no-defense ceiling; the P-scheme must be the strongest
	// defense overall.
	for _, name := range []string{"BF", "WBF", "ENT", "CLU", "P"} {
		if res.MaxMP[name] > res.MaxMP["SA"]*1.05 {
			t.Errorf("%s max MP %v above SA ceiling %v", name, res.MaxMP[name], res.MaxMP["SA"])
		}
	}
	if res.MaxMP["P"] >= res.MaxMP["SA"] {
		t.Errorf("P max %v not below SA %v", res.MaxMP["P"], res.MaxMP["SA"])
	}
	if !strings.Contains(res.String(), "WBF") {
		t.Error("String missing WBF row")
	}
}

func TestCamouflageAmplifiesUnderTrustSchemes(t *testing.T) {
	l := quickLab(t)
	res, err := l.CamouflageAblation("P")
	if err != nil {
		t.Fatal(err)
	}
	if res.PlainMP <= 0 {
		t.Fatalf("plain strike MP = %v", res.PlainMP)
	}
	// Trust bootstrapping must not *weaken* the attack under the
	// trust-based defense; amplification ≥ ~1 is the structural claim
	// (how much above 1 depends on calibration).
	if res.Amplification < 0.9 {
		t.Errorf("camouflage amplification %v < 0.9", res.Amplification)
	}
	if !strings.Contains(res.String(), "Camouflage ablation") {
		t.Error("String missing header")
	}
}

func TestCamouflageNeutralUnderSA(t *testing.T) {
	// Without a trust mechanism the camouflage phase only adds
	// honest-valued ratings, so it cannot meaningfully change MP.
	l := quickLab(t)
	res, err := l.CamouflageAblation("SA")
	if err != nil {
		t.Fatal(err)
	}
	if res.Amplification < 0.8 || res.Amplification > 1.3 {
		t.Errorf("SA camouflage amplification %v, want ≈1", res.Amplification)
	}
}

func TestBoostAnalysisAsymmetry(t *testing.T) {
	l := quickLab(t)
	res, err := l.BoostAnalysis("SA")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no boost points")
	}
	// Section V-B: boosting a ≈4-mean product cannot compete with
	// downgrading it.
	if res.MaxBoostMP >= res.MaxDowngradeMP {
		t.Errorf("boost MP %v ≥ downgrade MP %v", res.MaxBoostMP, res.MaxDowngradeMP)
	}
	for _, p := range res.Points {
		if p.Bias < -1 {
			t.Errorf("boost point with strongly negative bias %v", p.Bias)
		}
	}
	if !strings.Contains(res.String(), "Boost-side analysis") {
		t.Error("String missing header")
	}
}

func TestCamouflageUnknownScheme(t *testing.T) {
	l := quickLab(t)
	if _, err := l.CamouflageAblation("nope"); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := l.BoostAnalysis("nope"); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := l.Scored("nope"); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestResultPlots(t *testing.T) {
	l := quickLab(t)
	fig2, err := l.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if out := fig2.Plot(); !strings.Contains(out, "stddev") || len(out) < 200 {
		t.Errorf("variance-bias plot degenerate:\n%s", out)
	}
	fig6, err := l.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if out := fig6.Plot(); !strings.Contains(out, "interval (days)") {
		t.Errorf("time-domain plot degenerate:\n%s", out)
	}
	sweep, err := l.IntervalSweep("SA", nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out := sweep.Plot(); !strings.Contains(out, "best MP") {
		t.Errorf("sweep plot degenerate:\n%s", out)
	}
}

func TestPublicationAblation(t *testing.T) {
	l := quickLab(t)
	res, err := l.PublicationAblation()
	if err != nil {
		t.Fatal(err)
	}
	if res.OfflineMaxMP <= 0 || res.OnlineMaxMP <= 0 {
		t.Fatalf("degenerate ablation %+v", res)
	}
	// Both evaluation semantics must keep the defense effective (well
	// below the no-defense ceiling); their relative order depends on which
	// submission exploits which variant's weak spot, so only a same-regime
	// bound is asserted.
	saMax, err := l.MaxOverallMP("SA")
	if err != nil {
		t.Fatal(err)
	}
	if res.OfflineMaxMP >= saMax || res.OnlineMaxMP >= saMax {
		t.Errorf("a P variant reached the SA ceiling: %+v (SA %v)", res, saMax)
	}
	ratio := res.OfflineMaxMP / res.OnlineMaxMP
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("offline/online ratio %v outside the same regime", ratio)
	}
	if !strings.Contains(res.String(), "Publication-semantics") {
		t.Error("String missing header")
	}
}
