package experiments

import (
	"strings"
	"testing"

	"repro/internal/challenge"
	"repro/internal/core"
)

// quickLab is shared across tests (building it runs the population once).
var quickLabCache *Lab

func quickLab(t *testing.T) *Lab {
	t.Helper()
	if quickLabCache != nil {
		return quickLabCache
	}
	l, err := NewLab(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	quickLabCache = l
	return l
}

func TestNewLabDefaultsSubmissions(t *testing.T) {
	opts := QuickOptions()
	opts.Submissions = 0
	l, err := NewLab(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Submissions) != 251 {
		t.Errorf("defaulted submissions = %d, want 251", len(l.Submissions))
	}
}

func TestLabSchemeLookup(t *testing.T) {
	l := quickLab(t)
	for _, name := range []string{"SA", "BF", "P"} {
		s, err := l.Scheme(name)
		if err != nil || s.Name() != name {
			t.Errorf("Scheme(%s) = %v, %v", name, s, err)
		}
	}
	if _, err := l.Scheme("nope"); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestScoredCached(t *testing.T) {
	l := quickLab(t)
	s1, err := l.Scored("SA")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := l.Scored("SA")
	if err != nil {
		t.Fatal(err)
	}
	if &s1[0] != &s2[0] {
		t.Error("Scored not cached")
	}
}

func TestFig3SAConcentratesInR1(t *testing.T) {
	l := quickLab(t)
	res, err := l.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no points")
	}
	if got := res.DominantLMPRegion(); got != challenge.Region1 {
		t.Errorf("SA dominant LMP region = %v, want R1 (%v)", got, res.LMPByRegion)
	}
	if !strings.Contains(res.String(), "SA-scheme") {
		t.Error("String missing scheme name")
	}
}

func TestFig2PRewardsVariance(t *testing.T) {
	l := quickLab(t)
	res, err := l.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	// Under the P-scheme the strong downgrades must shift away from the
	// large-bias R1 corner that dominates under SA and BF. At this reduced
	// scale the assertion is loose (the medium-bias regions must hold a
	// substantial share); the full-scale run in EXPERIMENTS.md shows
	// R2+R3 in the clear majority. Compare TestFig3SAConcentratesInR1,
	// where R1 sweeps all ten marks.
	r1 := res.LMPByRegion[challenge.Region1]
	r23 := res.LMPByRegion[challenge.Region2] + res.LMPByRegion[challenge.Region3]
	if r23 < 3 {
		t.Errorf("P-scheme LMP regions %v: R2+R3 (%d) below 3 (R1=%d)", res.LMPByRegion, r23, r1)
	}
}

func TestFig8PSchemeStrongest(t *testing.T) {
	l := quickLab(t)
	res, err := l.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxMP["P"] >= res.MaxMP["SA"] {
		t.Errorf("max MP: P %v ≥ SA %v", res.MaxMP["P"], res.MaxMP["SA"])
	}
	if res.MaxMP["P"] >= res.MaxMP["BF"] {
		t.Errorf("max MP: P %v ≥ BF %v", res.MaxMP["P"], res.MaxMP["BF"])
	}
	if res.RatioPToSA <= 0 || res.RatioPToSA >= 1 {
		t.Errorf("P/SA ratio = %v", res.RatioPToSA)
	}
	if !strings.Contains(res.String(), "P/SA ratio") {
		t.Error("String missing ratio")
	}
}

func TestFig6EnvelopeShape(t *testing.T) {
	l := quickLab(t)
	res, err := l.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 || len(res.EnvelopeIntervals) == 0 {
		t.Fatal("empty time-domain result")
	}
	if res.BestInterval <= 0 {
		t.Errorf("best interval = %v", res.BestInterval)
	}
	if !strings.Contains(res.String(), "best average rating interval") {
		t.Error("String missing summary")
	}
}

func TestFig7OrderingExperiment(t *testing.T) {
	l := quickLab(t)
	res, err := l.Correlation("P", 4, 2) // reduced for test speed
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.OriginalMP <= 0 || row.HeuristicMP < 0 {
			t.Errorf("bad MP in row %+v", row)
		}
		if len(row.RandomMP) != 2 {
			t.Errorf("random trials = %d", len(row.RandomMP))
		}
		// The original value order is itself random (Independent mode),
		// so a random reordering must land in the same MP regime — within
		// a factor of 3 of the original.
		if br := row.BestRandom(); br < row.OriginalMP/3 || br > row.OriginalMP*3 {
			t.Errorf("random reorder MP %v vs original %v: outside regime", br, row.OriginalMP)
		}
	}
	// Procedure 3's value ordering must change the outcome for at least
	// one dataset — otherwise the mapper is wired up wrong. (Rows with
	// near-constant value sets are legitimately reorder-invariant.)
	changed := false
	for _, row := range res.Rows {
		if row.HeuristicMP != row.OriginalMP {
			changed = true
		}
	}
	if !changed {
		t.Error("heuristic reorder changed no dataset's MP")
	}
}

func TestFig5SearchBeatsSubmissions(t *testing.T) {
	l := quickLab(t)
	cfg := core.DefaultSearchConfig()
	cfg.Trials = 3 // reduced for test speed
	cfg.MaxRounds = 3
	res, err := l.RegionSearch("P", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Search.Steps) == 0 {
		t.Fatal("no search steps")
	}
	if res.Evaluations != len(res.Search.Steps)*4*cfg.Trials {
		t.Errorf("evaluations = %d, want %d", res.Evaluations, len(res.Search.Steps)*4*cfg.Trials)
	}
	// The optimized attack should at least rival the best submission.
	if res.Search.BestMP < res.MaxSubmissionMP*0.8 {
		t.Errorf("search best MP %v far below best submission %v", res.Search.BestMP, res.MaxSubmissionMP)
	}
	if !strings.Contains(res.String(), "Procedure 2") {
		t.Error("String missing header")
	}
}

func TestPaperScaleWrappers(t *testing.T) {
	// Exercise the paper-parameter wrappers (Fig4/Fig5/Fig7 and
	// DefaultOptions) without paying for a full-scale run: the quick lab
	// serves Fig4/Fig7; DefaultOptions is checked structurally.
	opts := DefaultOptions()
	if opts.Submissions != 251 || opts.Challenge.Fair.Products != 9 {
		t.Errorf("DefaultOptions = %+v", opts)
	}
	l := quickLab(t)
	fig4, err := l.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if fig4.Scheme != "BF" {
		t.Errorf("Fig4 scheme = %s", fig4.Scheme)
	}
	fig7, err := l.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig7.Rows) == 0 {
		t.Error("Fig7 empty")
	}
	if !strings.Contains(fig7.String(), "top-") {
		t.Error("Fig7 String missing header")
	}
}

func TestFig5PaperParameters(t *testing.T) {
	if testing.Short() {
		t.Skip("Fig5 at paper trial count in -short mode")
	}
	l := quickLab(t)
	res, err := l.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	// m=10 trials × 4 subareas per round.
	if res.Evaluations%40 != 0 {
		t.Errorf("Fig5 evaluations = %d, want multiple of 40", res.Evaluations)
	}
}

func TestIntervalSweepString(t *testing.T) {
	l := quickLab(t)
	res, err := l.IntervalSweep("SA", []SweepCell{{DurationDays: 20, Count: 40}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.String(), "interval(d)") {
		t.Error("sweep String missing header")
	}
}
