package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// IntervalSweepPoint is one controlled measurement: the same attack value
// profile delivered at a different arrival rate.
type IntervalSweepPoint struct {
	DurationDays float64
	Count        int
	// Interval is duration/count — the x-axis of Figure 6.
	Interval float64
	// MP is the best of the trials at this arrival rate.
	MP float64
}

// IntervalSweepResult is the controlled companion to Figure 6: instead of
// binning the population scatter, the same strong attack is stretched over
// a range of durations, exposing the interior arrival-rate optimum the
// paper describes (too fast → the rate detectors catch it; too slow → the
// per-month damage vanishes).
type IntervalSweepResult struct {
	Scheme string
	Bias   float64
	StdDev float64
	Points []IntervalSweepPoint
	// BestInterval is the interval with the highest MP.
	BestInterval float64
}

// SweepCell is one (duration, count) pair to measure.
type SweepCell struct {
	DurationDays float64
	Count        int
}

// DefaultSweepCells covers intervals from ≈0.1 to ≈14 days: the left flank
// stretches the full rater pool over growing durations, the right flank
// thins the rating count at maximum duration.
func (l *Lab) DefaultSweepCells() []SweepCell {
	full := l.Opts.Challenge.BiasedRaters
	maxDur := l.Opts.Challenge.Fair.HorizonDays - 10
	var cells []SweepCell
	for _, dur := range []float64{5, 10, 20, 35, 50, 75, 100, maxDur} {
		if dur > maxDur {
			dur = maxDur
		}
		cells = append(cells, SweepCell{DurationDays: dur, Count: full})
	}
	for _, count := range []int{35, 25, 15, 10} {
		cells = append(cells, SweepCell{DurationDays: maxDur, Count: count})
	}
	return cells
}

// IntervalSweep sweeps the unfair-rating arrival rate for a fixed value
// profile under the named scheme, with trials random attacks per cell.
// Pass nil cells for DefaultSweepCells.
func (l *Lab) IntervalSweep(schemeName string, cells []SweepCell, trials int) (*IntervalSweepResult, error) {
	scheme, err := l.Scheme(schemeName)
	if err != nil {
		return nil, err
	}
	if trials <= 0 {
		trials = 3
	}
	cfg := l.Opts.Challenge
	horizon := cfg.Fair.HorizonDays
	target := l.product1()
	fairSeries := l.Challenge.FairSeries()

	res := &IntervalSweepResult{
		Scheme: schemeName,
		Bias:   -3.5,
		StdDev: 0.2,
	}
	if len(cells) == 0 {
		cells = l.DefaultSweepCells()
	}
	bestMP := -1.0
	evals := 0
	seen := make(map[SweepCell]bool, len(cells))
	for _, cell := range cells {
		if cell.DurationDays >= horizon {
			cell.DurationDays = horizon - 1
		}
		if cell.Count > cfg.BiasedRaters {
			cell.Count = cfg.BiasedRaters
		}
		if cell.Count <= 0 || seen[cell] {
			continue
		}
		seen[cell] = true
		point := IntervalSweepPoint{
			DurationDays: cell.DurationDays,
			Count:        cell.Count,
			Interval:     cell.DurationDays / float64(cell.Count),
		}
		for trial := 0; trial < trials; trial++ {
			evals++
			gen := core.NewGenerator(l.Opts.Seed^uint64(evals)*0x51_7eed, core.DefaultRaters(cfg.BiasedRaters))
			start := (horizon - cell.DurationDays) / 2 // centered, so every duration fits
			atk, err := gen.Generate(map[string]core.Profile{target: {
				Bias: res.Bias, StdDev: res.StdDev, Count: cell.Count,
				StartDay: start, DurationDays: cell.DurationDays,
				Correlation: core.Independent, Quantize: true,
			}}, fairSeries)
			if err != nil {
				return nil, err
			}
			mpRes, err := l.Challenge.Score(atk, scheme)
			if err != nil {
				return nil, err
			}
			if mpRes.Overall > point.MP {
				point.MP = mpRes.Overall
			}
		}
		res.Points = append(res.Points, point)
		if point.MP > bestMP {
			bestMP = point.MP
			res.BestInterval = point.Interval
		}
	}
	return res, nil
}

// String renders the sweep rows.
func (r *IntervalSweepResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Controlled interval sweep — %s-scheme (bias %.1f, σ %.1f)\n",
		r.Scheme, r.Bias, r.StdDev)
	fmt.Fprintf(&b, "%10s %7s %12s %10s\n", "duration", "count", "interval(d)", "best MP")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%10.0f %7d %12.2f %10.4f\n", p.DurationDays, p.Count, p.Interval, p.MP)
	}
	fmt.Fprintf(&b, "best average rating interval ≈ %.2f days\n", r.BestInterval)
	return b.String()
}
