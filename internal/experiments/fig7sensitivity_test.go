package experiments

import (
	"strings"
	"testing"
)

func TestCorrelationSensitivityTrend(t *testing.T) {
	l := quickLab(t)
	res, err := l.CorrelationSensitivity("P", []float64{0.4, 1.2}, 20, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.TopN == 0 || row.MeanGain <= 0 {
			t.Errorf("degenerate row %+v", row)
		}
	}
	// The documented hypothesis: Procedure 3 gains power as the fair
	// ratings spread out (the tight-cluster ramp degeneration fades).
	if res.Rows[1].MeanGain < res.Rows[0].MeanGain-0.05 {
		t.Errorf("mean gain did not improve with fair spread: σ0.4→%.3f, σ1.2→%.3f",
			res.Rows[0].MeanGain, res.Rows[1].MeanGain)
	}
	if !strings.Contains(res.String(), "fair σ") {
		t.Error("String missing table header")
	}
}

func TestCorrelationSensitivityDefaults(t *testing.T) {
	l := quickLab(t)
	res, err := l.CorrelationSensitivity("SA", nil, 0, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Errorf("default sigma levels = %d, want 3", len(res.Rows))
	}
}

func TestCorrelationSensitivityUnknownScheme(t *testing.T) {
	l := quickLab(t)
	if _, err := l.CorrelationSensitivity("nope", []float64{0.5}, 5, 2, 1); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestCorrelationJShape(t *testing.T) {
	l := quickLab(t)
	res, err := l.CorrelationJShape("P", 0.3, 16, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	row := res.Rows[0]
	if row.TopN != 3 || row.MeanGain <= 0 {
		t.Errorf("degenerate J-shape row %+v", row)
	}
	if _, err := l.CorrelationJShape("nope", 0.3, 8, 2, 1); err == nil {
		t.Error("unknown scheme accepted")
	}
}
