package experiments

import (
	"fmt"

	"repro/internal/challenge"
	"repro/internal/plot"
)

// Plot renders the variance–bias scatter as ASCII art in the layout of the
// paper's Figures 2–4: bias on the horizontal axis, standard deviation on
// the vertical, with the strong submissions (AMP/LMP/UMP marks) drawn with
// distinct glyphs.
func (r *VarianceBiasResult) Plot() string {
	p := plot.New(
		fmt.Sprintf("Variance-bias plot — %s-scheme, product %s", r.Scheme, r.Product),
		64, 16,
	).Labels("bias", "stddev").XRange(-4, 1).YRange(0, 1.6)

	var plain, amp, lmp, ump plot.Series
	plain = plot.Series{Glyph: '·', Label: "submission"}
	amp = plot.Series{Glyph: 'A', Label: "AMP (top-10 overall)"}
	lmp = plot.Series{Glyph: 'L', Label: "LMP (top-10 downgrade)"}
	ump = plot.Series{Glyph: 'U', Label: "UMP (top-10 boost)"}
	for _, pt := range r.Points {
		switch {
		case pt.Marks.Has(challenge.MarkAMP):
			amp.X = append(amp.X, pt.Bias)
			amp.Y = append(amp.Y, pt.Spread)
		case pt.Marks.Has(challenge.MarkLMP):
			lmp.X = append(lmp.X, pt.Bias)
			lmp.Y = append(lmp.Y, pt.Spread)
		case pt.Marks.Has(challenge.MarkUMP):
			ump.X = append(ump.X, pt.Bias)
			ump.Y = append(ump.Y, pt.Spread)
		default:
			plain.X = append(plain.X, pt.Bias)
			plain.Y = append(plain.Y, pt.Spread)
		}
	}
	p.Add(plain).Add(lmp).Add(ump).Add(amp) // strong marks draw last (on top)
	out, err := p.Render()
	if err != nil {
		return fmt.Sprintf("(no plot: %v)\n", err)
	}
	return out
}

// Plot renders the Figure 6 scatter: average unfair-rating interval against
// the product MP.
func (r *TimeDomainResult) Plot() string {
	p := plot.New(
		fmt.Sprintf("MP vs average rating interval — %s-scheme, product %s", r.Scheme, r.Product),
		64, 14,
	).Labels("interval (days)", "MP")
	s := plot.Series{Glyph: '•'}
	for _, pt := range r.Points {
		s.X = append(s.X, pt.Interval)
		s.Y = append(s.Y, pt.ProductMP)
	}
	p.Add(s)
	out, err := p.Render()
	if err != nil {
		return fmt.Sprintf("(no plot: %v)\n", err)
	}
	return out
}

// Plot renders the controlled sweep as a curve of best MP per interval.
func (r *IntervalSweepResult) Plot() string {
	p := plot.New(
		fmt.Sprintf("Controlled interval sweep — %s-scheme", r.Scheme),
		64, 12,
	).Labels("interval (days)", "best MP")
	s := plot.Series{Glyph: 'o'}
	for _, pt := range r.Points {
		s.X = append(s.X, pt.Interval)
		s.Y = append(s.Y, pt.MP)
	}
	p.Add(s)
	out, err := p.Render()
	if err != nil {
		return fmt.Sprintf("(no plot: %v)\n", err)
	}
	return out
}
