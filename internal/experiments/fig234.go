package experiments

import (
	"fmt"
	"strings"

	"repro/internal/challenge"
)

// VarianceBiasResult reproduces one of Figures 2–4: the variance–bias
// scatter of every submission against one product under one scheme, with
// AMP/LMP/UMP marks and the region concentration of the strong downgrades.
type VarianceBiasResult struct {
	Scheme  string
	Product string
	Points  []challenge.VBPoint
	// LMPByRegion counts where the top-10 downgrade submissions (LMP
	// marks) fall in the R1/R2/R3 taxonomy — the paper's key observation:
	// R3 dominates under the P-scheme, R1 under SA and BF.
	LMPByRegion map[challenge.Region]int
}

// VarianceBias runs the Figure 2/3/4 experiment for the named scheme
// ("P" → Fig. 2, "SA" → Fig. 3, "BF" → Fig. 4) on the given product
// (the paper plots product 1, the first downgrade target).
func (l *Lab) VarianceBias(schemeName, productID string) (*VarianceBiasResult, error) {
	scored, err := l.Scored(schemeName)
	if err != nil {
		return nil, err
	}
	points := l.Challenge.VarianceBias(scored, productID)
	res := &VarianceBiasResult{
		Scheme:      schemeName,
		Product:     productID,
		Points:      points,
		LMPByRegion: make(map[challenge.Region]int),
	}
	for _, p := range points {
		if p.Marks.Has(challenge.MarkLMP) {
			res.LMPByRegion[challenge.Classify(p.Bias, p.Spread)]++
		}
	}
	return res, nil
}

// Fig2 is the variance–bias plot under the P-scheme (product 1).
func (l *Lab) Fig2() (*VarianceBiasResult, error) { return l.VarianceBias("P", l.product1()) }

// Fig3 is the variance–bias plot under the SA-scheme (product 1).
func (l *Lab) Fig3() (*VarianceBiasResult, error) { return l.VarianceBias("SA", l.product1()) }

// Fig4 is the variance–bias plot under the BF-scheme (product 1).
func (l *Lab) Fig4() (*VarianceBiasResult, error) { return l.VarianceBias("BF", l.product1()) }

func (l *Lab) product1() string {
	return l.Opts.Challenge.DowngradeTargets[0]
}

// DominantLMPRegion returns the region holding the most LMP marks.
func (r *VarianceBiasResult) DominantLMPRegion() challenge.Region {
	best := challenge.RegionOther
	bestN := -1
	for _, reg := range []challenge.Region{challenge.Region1, challenge.Region2, challenge.Region3, challenge.RegionOther} {
		if n := r.LMPByRegion[reg]; n > bestN {
			best, bestN = reg, n
		}
	}
	return best
}

// String renders the scatter as the rows the paper plots: one line per
// submission with bias, spread, MP and marks, followed by the region
// summary.
func (r *VarianceBiasResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Variance-bias plot — %s-scheme, product %s\n", r.Scheme, r.Product)
	fmt.Fprintf(&b, "%6s  %8s  %8s  %10s  %10s  %-8s %s\n",
		"sub", "bias", "stddev", "prodMP", "overallMP", "marks", "region")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%6d  %8.3f  %8.3f  %10.4f  %10.4f  %-8s %s\n",
			p.SubmissionID, p.Bias, p.Spread, p.ProductMP, p.OverallMP,
			p.Marks, challenge.Classify(p.Bias, p.Spread))
	}
	fmt.Fprintf(&b, "top-10 downgrades (LMP) by region: R1=%d R2=%d R3=%d other=%d → dominant %s\n",
		r.LMPByRegion[challenge.Region1], r.LMPByRegion[challenge.Region2],
		r.LMPByRegion[challenge.Region3], r.LMPByRegion[challenge.RegionOther],
		r.DominantLMPRegion())
	return b.String()
}
