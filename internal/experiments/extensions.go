package experiments

import (
	"fmt"
	"strings"

	"repro/internal/challenge"
	"repro/internal/core"
	"repro/internal/dataset"
)

// Extension experiments beyond the paper's published figures: the
// six-scheme comparison (adding the related-work baselines), the
// trust-bootstrapping camouflage ablation, and the boost-side analysis the
// paper defers to future work.

// SchemeComparisonResult extends the Figure 8 headline to every
// implemented defense.
type SchemeComparisonResult struct {
	// MaxMP and MeanMP map scheme name to population statistics.
	MaxMP  map[string]float64
	MeanMP map[string]float64
	Order  []string
}

// SchemeComparison scores the population under all six schemes: SA
// (no defense), BF and WBF (beta-function filtering, heuristic and
// quantile variants), ENT (entropy filtering), CLU (clustering) and P
// (the paper's signal-based system).
func (l *Lab) SchemeComparison() (*SchemeComparisonResult, error) {
	res := &SchemeComparisonResult{
		MaxMP:  make(map[string]float64),
		MeanMP: make(map[string]float64),
		Order:  []string{"SA", "BF", "WBF", "ENT", "CLU", "P"},
	}
	for _, name := range res.Order {
		scored, err := l.Scored(name)
		if err != nil {
			return nil, err
		}
		var sum, best float64
		for _, sc := range scored {
			sum += sc.MP.Overall
			if sc.MP.Overall > best {
				best = sc.MP.Overall
			}
		}
		res.MaxMP[name] = best
		res.MeanMP[name] = sum / float64(len(scored))
	}
	return res, nil
}

// String renders the comparison table.
func (r *SchemeComparisonResult) String() string {
	var b strings.Builder
	b.WriteString("Scheme comparison (all implemented defenses)\n")
	fmt.Fprintf(&b, "%-8s %10s %10s\n", "scheme", "max MP", "mean MP")
	for _, name := range r.Order {
		fmt.Fprintf(&b, "%-8s %10.4f %10.4f\n", name, r.MaxMP[name], r.MeanMP[name])
	}
	return b.String()
}

// CamouflageResult is the trust-bootstrapping ablation: the same strike
// attack with and without a preceding camouflage phase in which the biased
// raters rate non-target products honestly.
type CamouflageResult struct {
	Scheme string
	// PlainMP is the strike alone; CamouflagedMP includes the camouflage
	// phase. Amplification is their ratio.
	PlainMP       float64
	CamouflagedMP float64
	Amplification float64
}

// CamouflageAblation runs the ablation under the named scheme. The strike
// downgrades product 1 in the second half of the horizon; the camouflage
// phase has the same raters rating every non-target product honestly in
// the first half.
func (l *Lab) CamouflageAblation(schemeName string) (*CamouflageResult, error) {
	scheme, err := l.Scheme(schemeName)
	if err != nil {
		return nil, err
	}
	cfg := l.Opts.Challenge
	horizon := cfg.Fair.HorizonDays
	target := l.product1()

	fairByProduct := make(map[string]dataset.Series, len(l.Challenge.Fair.Products))
	for _, p := range l.Challenge.Fair.Products {
		fairByProduct[p.ID] = p.Ratings
	}

	strikeProfile := core.Profile{
		Bias: -2.5, StdDev: 0.8, Count: cfg.BiasedRaters,
		StartDay: horizon * 0.55, DurationDays: horizon * 0.25,
		Correlation: core.Independent, Quantize: true,
	}

	// Plain strike.
	genPlain := core.NewGenerator(l.Opts.Seed^0xCA30, core.DefaultRaters(cfg.BiasedRaters))
	strike, err := genPlain.Generate(map[string]core.Profile{target: strikeProfile}, fairByProduct)
	if err != nil {
		return nil, err
	}
	plain, err := l.Challenge.Score(strike, scheme)
	if err != nil {
		return nil, err
	}

	// Camouflaged strike: same strike, plus honest-looking ratings on the
	// non-target products during the first half of the horizon.
	genCamo := core.NewGenerator(l.Opts.Seed^0xCA30, core.DefaultRaters(cfg.BiasedRaters))
	strike2, err := genCamo.Generate(map[string]core.Profile{target: strikeProfile}, fairByProduct)
	if err != nil {
		return nil, err
	}
	var nonTargets []string
	for _, p := range l.Challenge.Fair.Products {
		if p.ID != target {
			nonTargets = append(nonTargets, p.ID)
		}
	}
	camo, err := genCamo.GenerateCamouflage(core.Camouflage{
		Products:         nonTargets,
		RatersPerProduct: cfg.BiasedRaters,
		StartDay:         horizon * 0.05,
		DurationDays:     horizon * 0.4,
		Sigma:            0.6,
	}, fairByProduct)
	if err != nil {
		return nil, err
	}
	combined, err := l.Challenge.Score(strike2.Merge(camo), scheme)
	if err != nil {
		return nil, err
	}

	res := &CamouflageResult{
		Scheme:        scheme.Name(),
		PlainMP:       plain.Overall,
		CamouflagedMP: combined.Overall,
	}
	if res.PlainMP > 0 {
		res.Amplification = res.CamouflagedMP / res.PlainMP
	}
	return res, nil
}

// String renders the ablation outcome.
func (r *CamouflageResult) String() string {
	return fmt.Sprintf(
		"Camouflage ablation — %s-scheme\nplain strike MP %.4f | with trust-building camouflage %.4f | amplification ×%.2f\n",
		r.Scheme, r.PlainMP, r.CamouflagedMP, r.Amplification)
}

// PublicationResult compares the P-scheme's retrospective (offline)
// evaluation with the rating challenge's real publication semantics
// (online: each month's score is published from the data seen so far and
// never revised). The gap is the value of hindsight.
type PublicationResult struct {
	OfflineMaxMP float64
	OnlineMaxMP  float64
}

// PublicationAblation scores the population under both P-scheme variants.
func (l *Lab) PublicationAblation() (*PublicationResult, error) {
	off, err := l.MaxOverallMP("P")
	if err != nil {
		return nil, err
	}
	on, err := l.MaxOverallMP("P-online")
	if err != nil {
		return nil, err
	}
	return &PublicationResult{OfflineMaxMP: off, OnlineMaxMP: on}, nil
}

// String renders the comparison.
func (r *PublicationResult) String() string {
	return fmt.Sprintf(
		"Publication-semantics ablation (P-scheme)\noffline (retrospective) max MP %.4f | online (published monthly) max MP %.4f\n",
		r.OfflineMaxMP, r.OnlineMaxMP)
}

// BoostAnalysisResult is the boost-side variance–bias analysis the paper
// leaves to future work (Section V-B observes only that positive bias has
// "no much room" and low resolution).
type BoostAnalysisResult struct {
	Scheme  string
	Product string
	Points  []challenge.VBPoint
	// MaxBoostMP and MaxDowngradeMP compare the two attack directions on
	// their respective first targets.
	MaxBoostMP     float64
	MaxDowngradeMP float64
}

// BoostAnalysis builds the boost-target scatter under the named scheme and
// quantifies the boost/downgrade asymmetry.
func (l *Lab) BoostAnalysis(schemeName string) (*BoostAnalysisResult, error) {
	scored, err := l.Scored(schemeName)
	if err != nil {
		return nil, err
	}
	boostTarget := l.Opts.Challenge.BoostTargets[0]
	res := &BoostAnalysisResult{
		Scheme:  schemeName,
		Product: boostTarget,
		Points:  l.Challenge.VarianceBias(scored, boostTarget),
	}
	downTarget := l.product1()
	for _, sc := range scored {
		if v := sc.MP.Product(boostTarget); v > res.MaxBoostMP {
			res.MaxBoostMP = v
		}
		if v := sc.MP.Product(downTarget); v > res.MaxDowngradeMP {
			res.MaxDowngradeMP = v
		}
	}
	return res, nil
}

// String renders the asymmetry summary.
func (r *BoostAnalysisResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Boost-side analysis — %s-scheme, product %s\n", r.Scheme, r.Product)
	fmt.Fprintf(&b, "max boost MP %.4f vs max downgrade MP %.4f (ratio %.2f)\n",
		r.MaxBoostMP, r.MaxDowngradeMP, safeRatio(r.MaxBoostMP, r.MaxDowngradeMP))
	ump := 0
	for _, p := range r.Points {
		if p.Marks.Has(challenge.MarkUMP) {
			ump++
		}
	}
	fmt.Fprintf(&b, "%d points, %d UMP marks; positive bias is capped by the ≈1-star headroom\n",
		len(r.Points), ump)
	return b.String()
}

func safeRatio(a, b float64) float64 {
	//lint:ignore floateq exact-zero division guard: safeRatio exists precisely to map b == 0 to 0
	if b == 0 {
		return 0
	}
	return a / b
}
