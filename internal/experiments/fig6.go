package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/challenge"
)

// TimeDomainResult reproduces Figure 6: MP against the average
// unfair-rating interval under the P-scheme, with the per-interval-bin
// upper envelope showing the best (moderate) arrival rate.
type TimeDomainResult struct {
	Scheme string
	// Product is the analyzed product (the paper plots product 1).
	Product string
	Points  []challenge.TimePoint
	// BinWidthDays is the envelope bin width.
	BinWidthDays float64
	// EnvelopeIntervals / EnvelopeMP is the max-MP-per-interval-bin curve.
	EnvelopeIntervals []float64
	EnvelopeMP        []float64
	// BestInterval is the bin center with the highest max MP (the paper
	// reports ≈3 days under the P-scheme).
	BestInterval float64
}

// Fig6 runs the time-domain analysis under the P-scheme.
func (l *Lab) Fig6() (*TimeDomainResult, error) { return l.TimeDomain("P") }

// TimeDomain runs the Figure 6 analysis under the named scheme.
func (l *Lab) TimeDomain(schemeName string) (*TimeDomainResult, error) {
	scored, err := l.Scored(schemeName)
	if err != nil {
		return nil, err
	}
	product := l.product1()
	points := challenge.TimeAnalysis(scored, product)
	res := &TimeDomainResult{
		Scheme:       schemeName,
		Product:      product,
		Points:       points,
		BinWidthDays: 1,
	}
	if len(points) == 0 {
		return res, nil
	}
	maxIv := 0.0
	for _, p := range points {
		if p.Interval > maxIv {
			maxIv = p.Interval
		}
	}
	bins := int(math.Ceil(maxIv/res.BinWidthDays)) + 1
	env := make([]float64, bins)
	seen := make([]bool, bins)
	for _, p := range points {
		b := int(p.Interval / res.BinWidthDays)
		if p.ProductMP > env[b] || !seen[b] {
			env[b] = p.ProductMP
		}
		seen[b] = true
	}
	bestMP := -1.0
	for b := 0; b < bins; b++ {
		if !seen[b] {
			continue
		}
		center := (float64(b) + 0.5) * res.BinWidthDays
		res.EnvelopeIntervals = append(res.EnvelopeIntervals, center)
		res.EnvelopeMP = append(res.EnvelopeMP, env[b])
		if env[b] > bestMP {
			bestMP = env[b]
			res.BestInterval = center
		}
	}
	return res, nil
}

// String renders the scatter and the envelope rows.
func (r *TimeDomainResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Time-domain analysis — %s-scheme, product %s\n", r.Scheme, r.Product)
	fmt.Fprintf(&b, "%6s  %14s  %10s\n", "sub", "interval(days)", "prodMP")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%6d  %14.3f  %10.4f\n", p.SubmissionID, p.Interval, p.ProductMP)
	}
	b.WriteString("max-MP envelope per interval bin:\n")
	for i := range r.EnvelopeIntervals {
		fmt.Fprintf(&b, "  %5.1f d → %8.4f\n", r.EnvelopeIntervals[i], r.EnvelopeMP[i])
	}
	fmt.Fprintf(&b, "best average rating interval ≈ %.1f days\n", r.BestInterval)
	return b.String()
}
