package obs

import (
	"testing"
)

// The AllocsPerRun guards are the dynamic half of the zero-allocation
// contract: the hotalloc analyzer proves the //lint:hotpath recording
// paths (Counter.Add, Gauge.Set, Histogram.Observe) transitively
// allocation-free over the call graph; these tests prove the compiler
// agrees on the concrete types at runtime, including the nil (no-op) plane
// an uninstrumented service runs through.

func TestRecordingPathsAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_total", "h")
	g := r.Gauge("alloc_gauge", "h")
	h := r.Histogram("alloc_seconds", "h", LatencyBuckets)
	var nilC *Counter
	var nilG *Gauge
	var nilH *Histogram

	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.Add", func() { c.Add(3) }},
		{"Gauge.Set", func() { g.Set(1.5) }},
		{"Histogram.Observe/first-bucket", func() { h.Observe(0.00001) }},
		{"Histogram.Observe/overflow", func() { h.Observe(1e6) }},
		{"nil Counter.Inc", func() { nilC.Inc() }},
		{"nil Gauge.Set", func() { nilG.Set(1) }},
		{"nil Histogram.Observe", func() { nilH.Observe(0.1) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(200, tc.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}

// BenchmarkMetricsOverhead measures what one instrumented request path adds
// over the no-op plane: the HTTP middleware's footprint is one histogram
// observation plus one counter increment, the store submit path's one
// counter increment. The instrumented and noop arms run the identical
// call sequence — the noop arm through nil handles — so their difference is
// the cost observability adds per request (< 100 ns/op per the acceptance
// gate; the cmd/benchdiff baseline in BENCH_obs.json hard-gates 0
// allocs/op on both arms).
func BenchmarkMetricsOverhead(b *testing.B) {
	run := func(b *testing.B, c *Counter, h *Histogram) {
		b.ReportAllocs()
		b.ResetTimer() // registration above allocates; the recording loop must not
		for i := 0; i < b.N; i++ {
			h.Observe(0.00042)
			c.Inc()
		}
	}
	b.Run("instrumented", func(b *testing.B) {
		r := NewRegistry()
		run(b, r.Counter("bench_total", "h", L("route", "submit")), r.Histogram("bench_seconds", "h", LatencyBuckets, L("route", "submit")))
	})
	b.Run("noop", func(b *testing.B) {
		var r *Registry
		run(b, r.Counter("bench_total", "h"), r.Histogram("bench_seconds", "h", LatencyBuckets))
	})
}

// BenchmarkMetricsOverheadParallel pins the contended cost: all procs
// hammering one counter and one histogram (the worst case — real wiring
// spreads load over per-route and per-shard children).
func BenchmarkMetricsOverheadParallel(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_par_total", "h")
	h := r.Histogram("bench_par_seconds", "h", LatencyBuckets)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.00042)
			c.Inc()
		}
	})
}
