// Package obs is the service's observability plane: a stdlib-only metrics
// registry whose hot-path operations (counter increments, gauge sets,
// histogram observations) are allocation-free and lock-free, plus a
// structured leveled logger (logger.go) and a Prometheus-text-format
// exposition endpoint (expose.go).
//
// The design splits metric lifetime in two:
//
//   - Registration is cold and locked: handles are created once at wiring
//     time (Registry.Counter, .Gauge, .Histogram), each identified by a
//     metric family name plus a bounded, pre-declared label set. Looking up
//     or creating a handle takes the registry lock and may allocate.
//
//   - Recording is hot and lock-free: a handle is a pointer to atomics.
//     Counter.Add, Gauge.Set, and Histogram.Observe touch only
//     sync/atomic operations over pre-sized arrays — no maps, no locks,
//     no allocation — and are //lint:hotpath roots proven
//     allocation-free over the whole-program call graph by the hotalloc
//     analyzer, cross-checked by AllocsPerRun guards and the
//     BenchmarkMetricsOverhead baseline in BENCH_obs.json.
//
// Every recording method is nil-receiver-safe: a nil *Counter, *Gauge, or
// *Histogram records nothing. Instrumented layers therefore hold plain
// handle fields and never branch on "is observability enabled" — an
// uninstrumented service pays one nil check per increment, which is also
// what BenchmarkMetricsOverhead's no-op arm measures.
//
// Scrape-time metrics (values that already live in a Stats() snapshot
// somewhere, like the admission limiter's counters) register as
// CounterFunc/GaugeFunc callbacks: they cost nothing until /metrics is
// scraped, and the scrape reads a consistent snapshot.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// A Label is one name="value" pair attached to a metric child. Label sets
// are bounded by construction: children exist only for the label values the
// wiring code registered, never for request-derived strings.
type Label struct {
	Name, Value string
}

// L builds one Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing counter. The zero value is ready to
// use; a nil Counter discards increments.
type Counter struct {
	v atomic.Uint64
	f func() float64 // scrape callback (CounterFunc); nil for real counters
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n to the counter. It is the metrics plane's write path for
// counts on submit/serve hot loops and must stay allocation- and lock-free.
//
//lint:hotpath
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (the callback's value for a CounterFunc).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	if c.f != nil {
		return c.f()
	}
	return float64(c.v.Load())
}

// Gauge is a value that can go up and down, stored as float64 bits. The
// zero value is ready to use; a nil Gauge discards sets.
type Gauge struct {
	bits atomic.Uint64
	f    func() float64 // scrape callback (GaugeFunc); nil for real gauges
}

// Set stores v. It runs on breaker trip/heal paths inside WAL-held locks,
// so it must stay allocation- and lock-free.
//
//lint:hotpath
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value (the callback's value for a GaugeFunc).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	if g.f != nil {
		return g.f()
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: observations are counted into the
// first bucket whose upper bound is >= the value, with an implicit +Inf
// overflow bucket, plus a running sum and count. Bounds are fixed at
// registration, so Observe is a bounded linear scan over a pre-sized
// array — no allocation, no locks. A nil Histogram discards observations.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, +Inf excluded
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one value. It is the per-request latency write path and
// must stay allocation- and lock-free: bucket selection is a linear scan
// over the fixed bounds (latency bucket sets are ~16 entries, and the scan
// exits early for fast operations, which dominate), and the running sum is
// a CAS loop over float64 bits.
//
//lint:hotpath
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// LatencyBuckets is the default bucket set for operation latencies in
// seconds: 50µs to ~10s, covering everything from an uncontended counter
// bump to a stalled fsync.
var LatencyBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// CountBuckets is the default bucket set for small cardinalities (group
// commit batch sizes, queue depths): powers of two from 1 to 1024.
var CountBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// metric families expose one HELP/TYPE header over any number of children
// distinguished by label sets.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// child is one labeled instance inside a family.
type child struct {
	labels []Label
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

type family struct {
	name, help, typ string
	children        []*child          // exposition order = registration order
	byKey           map[string]*child // dedup index; never iterated
	bounds          []float64         // histogram families only
}

// Registry holds metric families and exposes them in Prometheus text
// format. The zero value is not usable; construct with NewRegistry. A nil
// *Registry is the no-op plane: every constructor returns nil handles,
// whose recording methods discard.
type Registry struct {
	mu     sync.Mutex
	byName map[string]*family
	order  []*family // exposition sorts by name; this keeps creation stable
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// labelKey renders a label set into a canonical dedup key. Labels are kept
// in the order given — a family's children must agree on label order, which
// wiring code does naturally by registering from one loop.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Name)
		b.WriteByte('\x00')
		b.WriteString(l.Value)
		b.WriteByte('\x00')
	}
	return b.String()
}

// getFamily returns the family, creating it if absent, and panics on a
// type/help conflict — conflicting registrations are wiring bugs and the
// panic happens at startup, never on a hot path.
func (r *Registry) getFamily(name, help, typ string) *family {
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, byKey: make(map[string]*child)}
		r.byName[name] = f
		r.order = append(r.order, f)
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, typ, f.typ))
	}
	return f
}

// Counter returns the counter for name with the given labels, creating it
// on first use. Repeated registrations with the same name and labels return
// the same handle.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, typeCounter)
	key := labelKey(labels)
	if c, ok := f.byKey[key]; ok {
		return c.ctr
	}
	c := &child{labels: labels, ctr: &Counter{}}
	f.byKey[key] = c
	f.children = append(f.children, c)
	return c.ctr
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for cumulative counts that already live in another layer's
// atomic or Stats() snapshot (the admission limiter, the engine memo
// plane). fn must be safe to call from any goroutine.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, typeCounter)
	key := labelKey(labels)
	if _, ok := f.byKey[key]; ok {
		return
	}
	c := &child{labels: labels, ctr: &Counter{f: fn}}
	f.byKey[key] = c
	f.children = append(f.children, c)
}

// Gauge returns the gauge for name with the given labels, creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, typeGauge)
	key := labelKey(labels)
	if c, ok := f.byKey[key]; ok {
		return c.gauge
	}
	c := &child{labels: labels, gauge: &Gauge{}}
	f.byKey[key] = c
	f.children = append(f.children, c)
	return c.gauge
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
// fn must be safe to call from any goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, typeGauge)
	key := labelKey(labels)
	if _, ok := f.byKey[key]; ok {
		return
	}
	c := &child{labels: labels, gauge: &Gauge{f: fn}}
	f.byKey[key] = c
	f.children = append(f.children, c)
}

// Histogram returns the histogram for name with the given labels and
// bucket upper bounds (ascending, +Inf implicit), creating it on first
// use. Children of one family share the registration's bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, typeHistogram)
	if f.bounds == nil {
		b := append([]float64(nil), bounds...)
		if !sort.Float64sAreSorted(b) {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending: %v", name, bounds))
		}
		f.bounds = b
	}
	key := labelKey(labels)
	if c, ok := f.byKey[key]; ok {
		return c.hist
	}
	h := &Histogram{bounds: f.bounds, buckets: make([]atomic.Uint64, len(f.bounds)+1)}
	c := &child{labels: labels, hist: h}
	f.byKey[key] = c
	f.children = append(f.children, c)
	return c.hist
}
