package obs

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %v, want 5", got)
	}
	g := r.Gauge("g", "help")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Errorf("gauge = %v, want 2.5", got)
	}
	g.Set(-1)
	if got := g.Value(); got != -1 {
		t.Errorf("gauge = %v, want -1", got)
	}
}

func TestRegistryDedupAndNilSafety(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "h", L("k", "v"))
	b := r.Counter("dup_total", "h", L("k", "v"))
	if a != b {
		t.Error("same name+labels returned distinct handles")
	}
	other := r.Counter("dup_total", "h", L("k", "w"))
	if a == other {
		t.Error("distinct labels returned the same handle")
	}

	// Nil registry and nil handles are the no-op plane.
	var nilReg *Registry
	nc := nilReg.Counter("x_total", "h")
	nc.Inc()
	ng := nilReg.Gauge("x", "h")
	ng.Set(3)
	nh := nilReg.Histogram("x_seconds", "h", LatencyBuckets)
	nh.Observe(0.1)
	nilReg.GaugeFunc("f", "h", func() float64 { return 1 })
	if err := nilReg.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Errorf("nil registry write: %v", err)
	}
	if nc.Value() != 0 || ng.Value() != 0 || nh.Count() != 0 || nh.Sum() != 0 {
		t.Error("nil handles recorded something")
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "h")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m", "h")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "h", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 1, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if got, want := h.Sum(), 0.05+0.1+0.5+1+5+100; math.Abs(got-want) > 1e-12 {
		t.Errorf("sum = %v, want %v", got, want)
	}
	// Bucket boundaries are inclusive: 0.1 lands in le="0.1".
	want := []uint64{2, 2, 1, 1} // (..0.1], (0.1..1], (1..10], (10..+Inf)
	for i, w := range want {
		if got := h.buckets[i].Load(); got != w {
			t.Errorf("bucket[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestHistogramUnsortedBoundsPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("unsorted bounds did not panic")
		}
	}()
	r.Histogram("bad", "h", []float64{1, 0.5})
}

// TestWritePrometheusGolden pins the full text exposition format — HELP and
// TYPE lines, family sorting, cumulative histogram buckets ending in
// le="+Inf", _sum/_count, label escaping — against a golden file.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("http_requests_total", "Requests served.", L("route", "submit"), L("class", "2xx"))
	c.Add(12)
	c2 := r.Counter("http_requests_total", "Requests served.", L("route", "submit"), L("class", "5xx"))
	c2.Add(1)
	g := r.Gauge("wal_breaker_open", "1 while the fsync breaker is open.", L("shard", "0"))
	g.Set(1)
	r.GaugeFunc("engine_memo_hits", "Memo lookups served from cache.", func() float64 { return 41 })
	r.CounterFunc("admission_admitted_total", "Requests admitted.", func() float64 { return 7 })
	h := r.Histogram("wal_fsync_seconds", "Fsync latency.", []float64{0.001, 0.01, 0.1}, L("shard", "0"))
	for _, v := range []float64{0.0005, 0.002, 0.002, 0.05, 3} {
		h.Observe(v)
	}
	// Label escaping: backslash, quote, newline.
	e := r.Counter("escape_total", "Escaping.", L("path", `C:\tmp "x"`+"\nnext"))
	e.Inc()

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestHistogramCumulativity asserts the exposed buckets are monotone
// non-decreasing and that le="+Inf" equals _count.
func TestHistogramCumulativity(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "h", LatencyBuckets)
	for i := 0; i < 500; i++ {
		h.Observe(float64(i) * 0.001)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	last := -1.0
	infSeen, count := -1.0, -1.0
	for _, line := range strings.Split(buf.String(), "\n") {
		var v float64
		switch {
		case strings.HasPrefix(line, "lat_seconds_bucket"):
			if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &v); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			if v < last {
				t.Errorf("bucket not cumulative: %q after %g", line, last)
			}
			last = v
			if strings.Contains(line, `le="+Inf"`) {
				infSeen = v
			}
		case strings.HasPrefix(line, "lat_seconds_count"):
			if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &count); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
		}
	}
	if infSeen != 500 || count != 500 {
		t.Errorf("le=+Inf bucket = %v, count = %v, want 500", infSeen, count)
	}
}

// TestConcurrentScrape races writers against WritePrometheus; run under
// -race this proves the hot paths and the scrape share no unsynchronized
// state, and the final totals prove no increment was lost.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("races_total", "h")
	h := r.Histogram("races_seconds", "h", LatencyBuckets)
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(0.001)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %v, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %v, want %d", got, workers*perWorker)
	}
}

func TestLoggerFormat(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	l.SetClock(func() time.Time { return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC) })
	l.Info("recovered ratings", "count", 42, "dir", "/tmp/wal dir")
	want := `ts=2026-08-08T12:00:00.000Z level=info msg="recovered ratings" count=42 dir="/tmp/wal dir"` + "\n"
	if got := buf.String(); got != want {
		t.Errorf("log line:\n got %q\nwant %q", got, want)
	}

	buf.Reset()
	l.Debug("dropped", "k", "v")
	if buf.Len() != 0 {
		t.Errorf("debug below min level written: %q", buf.String())
	}

	buf.Reset()
	l.SetLevel(LevelDebug)
	l.Debug("kept")
	if !strings.Contains(buf.String(), "level=debug msg=kept") {
		t.Errorf("debug line = %q", buf.String())
	}

	// Odd trailing key is visible, not dropped.
	buf.Reset()
	l.Warn("odd", "alone")
	if !strings.Contains(buf.String(), "alone=MISSING") {
		t.Errorf("odd field = %q", buf.String())
	}
}

func TestLoggerWithAndStd(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	l.SetClock(func() time.Time { return time.Unix(0, 0).UTC() })
	rl := l.With("req", "r000042")
	rl.Info("served", "status", 200)
	if !strings.Contains(buf.String(), ` req=r000042 status=200`) {
		t.Errorf("derived fields missing: %q", buf.String())
	}

	buf.Reset()
	std := l.Std(LevelWarn)
	std.Printf("legacy %s line", "printf")
	got := buf.String()
	if !strings.Contains(got, "level=warn") || !strings.Contains(got, `msg="legacy printf line"`) {
		t.Errorf("std adapter line = %q", got)
	}
	if strings.Contains(got, "\n\n") || strings.Count(got, "\n") != 1 {
		t.Errorf("newline handling wrong: %q", got)
	}
}

func TestParseLevel(t *testing.T) {
	cases := []struct {
		s    string
		want Level
	}{{"debug", LevelDebug}, {"INFO", LevelInfo}, {"warning", LevelWarn}, {"error", LevelError}}
	for _, c := range cases {
		got, err := ParseLevel(c.s)
		if err != nil || got != c.want {
			t.Errorf("ParseLevel(%q) = %v, %v", c.s, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("bad level accepted")
	}
}

func TestNextRequestID(t *testing.T) {
	a, b := NextRequestID(), NextRequestID()
	if a == b || !strings.HasPrefix(a, "r") {
		t.Errorf("request IDs: %q, %q", a, b)
	}
}
