package obs

import (
	"fmt"
	"io"
	"log"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level is a log severity. Records below a logger's minimum level are
// dropped before any formatting work.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return "level(" + strconv.Itoa(int(l)) + ")"
}

// ParseLevel parses "debug", "info", "warn", or "error".
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

// Logger is a leveled, structured (logfmt) logger:
//
//	ts=2026-08-08T12:00:00.000Z level=info msg="recovered ratings" count=42 shards=8
//
// Keys and values arrive as alternating pairs; values are rendered with %v
// and quoted when they contain spaces, quotes, or '='. Derived loggers
// (With) carry pre-rendered fields — the request-ID pattern: the HTTP
// middleware derives one logger per request with req=<id> attached, so
// every line of a request's handling correlates.
//
// A Logger is safe for concurrent use; each record is written in one Write
// call so lines from concurrent goroutines never interleave mid-line.
type Logger struct {
	mu  *sync.Mutex
	w   io.Writer
	min *atomic.Int32
	now func() time.Time
	// fields is the pre-rendered " k=v ..." suffix from With.
	fields string
}

// NewLogger returns a logger writing records at or above min to w.
func NewLogger(w io.Writer, min Level) *Logger {
	l := &Logger{mu: &sync.Mutex{}, w: w, min: &atomic.Int32{}, now: time.Now}
	l.min.Store(int32(min))
	return l
}

// SetLevel changes the minimum level (safe concurrently with logging).
func (l *Logger) SetLevel(min Level) { l.min.Store(int32(min)) }

// SetClock overrides the timestamp source (tests).
func (l *Logger) SetClock(now func() time.Time) { l.now = now }

// With returns a derived logger that appends the given key/value pairs to
// every record. The derived logger shares the parent's writer, lock, and
// level.
func (l *Logger) With(kv ...any) *Logger {
	var b strings.Builder
	b.WriteString(l.fields)
	appendFields(&b, kv)
	return &Logger{mu: l.mu, w: l.w, min: l.min, now: l.now, fields: b.String()}
}

// Enabled reports whether records at lv would be written.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && lv >= Level(l.min.Load())
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

// Printf logs a printf-formatted message at LevelInfo. It adapts the
// logger to the `func(format string, args ...any)` operational-log hooks
// threaded through the server and store.
func (l *Logger) Printf(format string, args ...any) {
	l.log(LevelInfo, fmt.Sprintf(format, args...), nil)
}

func (l *Logger) log(lv Level, msg string, kv []any) {
	if !l.Enabled(lv) {
		return
	}
	var b strings.Builder
	b.WriteString("ts=")
	b.WriteString(l.now().UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteString(" level=")
	b.WriteString(lv.String())
	b.WriteString(" msg=")
	b.WriteString(quoteIfNeeded(msg))
	b.WriteString(l.fields)
	appendFields(&b, kv)
	b.WriteByte('\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	io.WriteString(l.w, b.String())
}

// appendFields renders alternating key/value pairs. A trailing key without
// a value is rendered as key=MISSING rather than dropped — a malformed call
// site should be visible in the logs, not silent.
func appendFields(b *strings.Builder, kv []any) {
	for i := 0; i < len(kv); i += 2 {
		b.WriteByte(' ')
		b.WriteString(fmt.Sprintf("%v", kv[i]))
		b.WriteByte('=')
		if i+1 < len(kv) {
			b.WriteString(quoteIfNeeded(fmt.Sprintf("%v", kv[i+1])))
		} else {
			b.WriteString("MISSING")
		}
	}
}

// quoteIfNeeded quotes a rendered value when it would break logfmt parsing:
// empty, or containing spaces, quotes, '=', or control characters.
func quoteIfNeeded(s string) string {
	if s == "" {
		return `""`
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= ' ' || c == '"' || c == '=' || c == 0x7f {
			return strconv.Quote(s)
		}
	}
	return s
}

// stdWriter adapts a Logger into an io.Writer for the standard library's
// log.Logger: each Write becomes one record at a fixed level, with the
// trailing newline stripped. This is how legacy `*log.Logger` hooks
// (server.SetLogger) are pointed at the structured plane.
type stdWriter struct {
	l  *Logger
	lv Level
}

func (w stdWriter) Write(p []byte) (int, error) {
	w.l.log(w.lv, strings.TrimRight(string(p), "\n"), nil)
	return len(p), nil
}

// Std returns a standard-library logger whose output flows through l at
// the given level, for APIs that accept only *log.Logger.
func (l *Logger) Std(lv Level) *log.Logger {
	return log.New(stdWriter{l: l, lv: lv}, "", 0)
}

// reqSeq numbers requests within this process for log correlation.
var reqSeq atomic.Uint64

// NextRequestID returns a short process-unique request ID ("r000001").
// IDs are sequential: cheap, collision-free within a process, and sortable
// in logs; cross-process uniqueness comes from the operator's log labels.
func NextRequestID() string {
	return fmt.Sprintf("r%06d", reqSeq.Add(1))
}
