package obs

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format (version 0.0.4): one `# HELP` and `# TYPE` line per
// family, families sorted by name, children in registration order.
// Histograms expose cumulative `_bucket{le="..."}` series (each bucket
// counts observations <= its bound, ending in le="+Inf" == `_count`),
// plus `_sum` and `_count`.
//
// Values are read through the same atomics the hot paths write, so a
// scrape concurrent with traffic sees a live (per-series consistent)
// snapshot; the registry lock is held only to walk the family list, never
// by writers.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, len(r.order))
	copy(fams, r.order)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(f.help))
		bw.WriteString("\n# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.typ)
		bw.WriteByte('\n')
		for _, c := range f.children {
			switch f.typ {
			case typeHistogram:
				writeHistogram(bw, f, c)
			case typeCounter:
				writeSample(bw, f.name, "", c.labels, "", c.ctr.Value())
			case typeGauge:
				writeSample(bw, f.name, "", c.labels, "", c.gauge.Value())
			}
		}
	}
	return bw.Flush()
}

// writeHistogram renders one child's cumulative buckets, sum and count.
// Bucket counts are read once into a local slice so the cumulative sums
// are monotone even while writers race the scrape.
func writeHistogram(bw *bufio.Writer, f *family, c *child) {
	h := c.hist
	cum := uint64(0)
	for i := range h.bounds {
		cum += h.buckets[i].Load()
		writeSample(bw, f.name+"_bucket", "le", c.labels, formatFloat(h.bounds[i]), float64(cum))
	}
	cum += h.buckets[len(h.bounds)].Load()
	writeSample(bw, f.name+"_bucket", "le", c.labels, "+Inf", float64(cum))
	writeSample(bw, f.name+"_sum", "", c.labels, "", h.Sum())
	writeSample(bw, f.name+"_count", "", c.labels, "", float64(cum))
}

// writeSample renders one `name{labels} value` line, appending an extra
// label (the histogram `le`) when extraName is non-empty.
func writeSample(bw *bufio.Writer, name, extraName string, labels []Label, extraValue string, v float64) {
	bw.WriteString(name)
	if len(labels) > 0 || extraName != "" {
		bw.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(l.Name)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(l.Value))
			bw.WriteByte('"')
		}
		if extraName != "" {
			if len(labels) > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(extraName)
			bw.WriteString(`="`)
			bw.WriteString(extraValue)
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(formatFloat(v))
	bw.WriteByte('\n')
}

// formatFloat renders a sample value: shortest round-trip representation,
// with the spellings Prometheus expects for the infinities.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }

// escapeHelp escapes a HELP string: backslash and newline (quotes are legal
// in help text).
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

// Handler returns the /metrics endpoint: the registry in text exposition
// format. Scrapes are read-only and lock-free with respect to the metric
// hot paths, so the endpoint is safe to leave on a production listener
// (and is exempted from admission control by cmd/ratingserver, like the
// health probes — an overloaded instance must stay observable).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// The write goes to a local buffer inside WritePrometheus's
		// bufio.Writer; an error here means the client went away.
		_ = r.WritePrometheus(w)
	})
}
