package epoch

import (
	"math"
	"testing"

	"repro/internal/dataset"
)

func TestPeriods(t *testing.T) {
	tests := []struct {
		horizon float64
		want    int
	}{
		{-30, 0},              // negative horizon: no periods
		{0, 0},                // empty horizon
		{1e-9, 1},             // any positive sliver opens period 0
		{1, 1},                // partial first period
		{PeriodDays, 1},       // exactly one epoch: no empty trailing period
		{PeriodDays + 0.5, 2}, // just past the boundary
		{2 * PeriodDays, 2},   // exact 30-day multiple
		{3 * PeriodDays, 3},   // exact 30-day multiple
		{10*PeriodDays - 1, 10},
	}
	for _, tt := range tests {
		if got := Periods(tt.horizon); got != tt.want {
			t.Errorf("Periods(%v) = %d, want %d", tt.horizon, got, tt.want)
		}
	}
}

func TestPeriodIntervalEdges(t *testing.T) {
	tests := []struct {
		i                  int
		horizon            float64
		wantStart, wantEnd float64
	}{
		{0, 45, 0, 30},  // full first period
		{1, 45, 30, 45}, // trailing partial period clamps to horizon
		{0, 30, 0, 30},  // single-epoch history: exact boundary, no clamp
		{1, 60, 30, 60}, // exact multiple: last period is full
		{2, 60, 60, 60}, // one-past-the-end period is empty
		{0, 10, 0, 10},  // horizon shorter than one period
		{2, 3 * PeriodDays, 2 * PeriodDays, 3 * PeriodDays}, // exact multiple, last period
	}
	for _, tt := range tests {
		start, end := PeriodInterval(tt.i, tt.horizon)
		if start != tt.wantStart || end != tt.wantEnd {
			t.Errorf("PeriodInterval(%d, %v) = [%v, %v), want [%v, %v)",
				tt.i, tt.horizon, start, end, tt.wantStart, tt.wantEnd)
		}
	}
}

// TestPeriodOfBoundaries pins the day→epoch mapping at the exact points the
// engine's checkpoint invalidation depends on: a rating landing precisely on
// a 30-day boundary belongs to the *later* epoch ([start, end) intervals),
// so the earlier epoch's trust checkpoint stays valid.
func TestPeriodOfBoundaries(t *testing.T) {
	const horizon = 3 * PeriodDays // 3 epochs
	tests := []struct {
		day  float64
		want int
	}{
		{0, 0},                             // day 0 opens epoch 0
		{-5, 0},                            // negative days clamp to epoch 0
		{math.NaN(), 0},                    // NaN clamps to epoch 0 (recompute everything)
		{math.Nextafter(PeriodDays, 0), 0}, // one ulp before the boundary
		{PeriodDays, 1},                    // exactly on the boundary → later epoch
		{math.Nextafter(PeriodDays, 31), 1},
		{2 * PeriodDays, 2}, // second boundary
		{horizon - 1, 2},    // late but inside
		{horizon, 3},        // at the horizon → one-past-the-end
		{horizon + 100, 3},  // beyond the horizon clamps
		{math.Inf(1), 3},    // +Inf clamps to one-past-the-end
	}
	for _, tt := range tests {
		if got := PeriodOf(tt.day, horizon); got != tt.want {
			t.Errorf("PeriodOf(%v, %v) = %d, want %d", tt.day, horizon, got, tt.want)
		}
	}
}

// TestPeriodOfSingleEpoch covers the degenerate single-epoch history: every
// in-range day maps to epoch 0 and the horizon itself to 1.
func TestPeriodOfSingleEpoch(t *testing.T) {
	for _, day := range []float64{0, 1, 15, math.Nextafter(PeriodDays, 0)} {
		if got := PeriodOf(day, PeriodDays); got != 0 {
			t.Errorf("PeriodOf(%v, %v) = %d, want 0", day, PeriodDays, got)
		}
	}
	if got := PeriodOf(PeriodDays, PeriodDays); got != 1 {
		t.Errorf("PeriodOf(horizon, horizon) = %d, want 1", got)
	}
}

// TestIntervalsTileHorizon checks that consecutive period intervals tile
// [0, horizon) exactly, with PeriodOf assigning boundary days to the
// interval that starts there.
func TestIntervalsTileHorizon(t *testing.T) {
	for _, horizon := range []float64{10, PeriodDays, 45, 2 * PeriodDays, 100, 3*PeriodDays + 1e-9} {
		n := Periods(horizon)
		var prevEnd float64
		for i := 0; i < n; i++ {
			start, end := PeriodInterval(i, horizon)
			if start != prevEnd {
				t.Errorf("horizon %v: period %d starts at %v, previous ended at %v", horizon, i, start, prevEnd)
			}
			if end > horizon {
				t.Errorf("horizon %v: period %d ends at %v past the horizon", horizon, i, end)
			}
			if i == n-1 && end != horizon {
				t.Errorf("horizon %v: last period ends at %v, want horizon", horizon, end)
			}
			if start < horizon {
				if got := PeriodOf(start, horizon); got != i {
					t.Errorf("horizon %v: PeriodOf(start of %d) = %d", horizon, i, got)
				}
			}
			prevEnd = end
		}
	}
}

func TestWeightedMeanFallbacks(t *testing.T) {
	period := dataset.Series{
		{Day: 1, Value: 2, Rater: "a"},
		{Day: 2, Value: 4, Rater: "b"},
		{Day: 3, Value: 5, Rater: "c"},
	}
	unit := func(string) float64 { return 1 }

	// Weighted path: rater b carries all the weight.
	got := WeightedMean(period, nil, func(r string) float64 {
		if r == "b" {
			return 2
		}
		return 0
	})
	if got != 4 {
		t.Errorf("weighted mean = %v, want 4", got)
	}

	// All weights vanish → simple mean of the kept ratings.
	got = WeightedMean(period, []bool{true, false, true}, func(string) float64 { return 0 })
	if got != 3.5 {
		t.Errorf("zero-weight fallback = %v, want 3.5", got)
	}

	// Everything filtered → simple mean of the whole period.
	got = WeightedMean(period, []bool{false, false, false}, unit)
	if want := period.Mean(); got != want {
		t.Errorf("all-filtered fallback = %v, want %v", got, want)
	}

	// nil kept keeps everything.
	got = WeightedMean(period, nil, unit)
	if want := period.Mean(); got != want {
		t.Errorf("nil kept = %v, want %v", got, want)
	}
}
