// Package epoch holds the 30-day trust-epoch calendar and the Eq. 7
// weighted-mean kernel shared by the aggregation schemes (internal/agg) and
// the incremental evaluation engine (internal/engine). It sits below both so
// the engine does not depend on the scheme layer: agg re-exports the period
// helpers for its public API, and the engine drives them directly.
package epoch

import (
	"math"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// PeriodDays is the aggregation period of the rating challenge (30 days) —
// also the trust-epoch length of Procedure 1.
const PeriodDays = 30.0

// Periods returns the number of (possibly partial) aggregation periods
// covering [0, horizon).
func Periods(horizon float64) int {
	if horizon <= 0 {
		return 0
	}
	return int(math.Ceil(horizon / PeriodDays))
}

// PeriodInterval returns the day range [start, end) of period i.
func PeriodInterval(i int, horizon float64) (start, end float64) {
	start = float64(i) * PeriodDays
	end = start + PeriodDays
	if end > horizon {
		end = horizon
	}
	return start, end
}

// PeriodOf returns the index of the period containing day, clamped to
// [0, Periods(horizon)]: a negative day maps to period 0 and a day at or
// past the horizon maps to the one-past-the-end period.
//
//lint:hotpath
func PeriodOf(day, horizon float64) int {
	if day <= 0 || math.IsNaN(day) {
		return 0
	}
	n := Periods(horizon)
	// Clamp before the float→int conversion: int(+Inf) is implementation-
	// specific (minInt64 on amd64) and would escape an integer-side clamp.
	q := day / PeriodDays
	if q >= float64(n) {
		return n
	}
	return int(q)
}

// WeightedMean aggregates the kept ratings of a period with the given
// per-rater weight function. It falls back to the simple mean of the kept
// ratings when all weights vanish, and to the simple mean of the whole
// period when everything was filtered.
func WeightedMean(period dataset.Series, kept []bool, weight func(string) float64) float64 {
	var num, den float64
	var keptVals []float64
	for i, r := range period {
		if kept != nil && !kept[i] {
			continue
		}
		keptVals = append(keptVals, r.Value)
		w := weight(r.Rater)
		num += w * r.Value
		den += w
	}
	if den > 1e-12 {
		return num / den
	}
	if len(keptVals) > 0 {
		return stats.Mean(keptVals)
	}
	return period.Mean()
}
