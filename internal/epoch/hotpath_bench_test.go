package epoch

import "testing"

// Runtime counterpart of the //lint:hotpath annotation on PeriodOf: the
// static gate proves it cannot allocate, AllocsPerRun proves it did not.

func TestPeriodOfAllocFree(t *testing.T) {
	if allocs := testing.AllocsPerRun(100, func() { PeriodOf(91, 365) }); allocs != 0 {
		t.Errorf("PeriodOf: %v allocs/op, want 0", allocs)
	}
}

func BenchmarkPeriodOf(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PeriodOf(float64(i%400), 365)
	}
}
