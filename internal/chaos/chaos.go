// Package chaos is the soak harness behind the serving stack's resilience
// claims: it drives a randomized client storm against a live rating
// service while a fault schedule abuses the WAL's disk — fsync stalls past
// the circuit-breaker threshold, uniform device latency, disk-full
// windows, and finally a simulated power loss — then audits the wreckage
// against the SLO invariants:
//
//  1. Durability: no rating acknowledged "durable" is ever absent from a
//     power-loss crash image taken after the acknowledgement. Ratings
//     acknowledged "pending" (breaker open) may legitimately vanish.
//  2. Fast fail: shed requests (429/503) complete quickly — overload
//     never turns into unbounded client latency.
//  3. Convergence: a service recovered from the crash image serves
//     P-scores bit-identical to a clean replay of exactly the ratings
//     that survived on disk.
//
// The harness lives in a non-test package so both the test suite's short
// soak (chaos-smoke in CI) and longer manual runs share one
// implementation.
package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"repro/internal/agg"
	"repro/internal/faultfs"
	"repro/internal/resilience"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/wal"
)

// Options configures one storm.
type Options struct {
	// Seed drives every random choice (per-client streams are derived
	// from it), so a storm's request mix is reproducible even though
	// goroutine interleaving is not.
	Seed uint64
	// Products and Horizon shape the service under test.
	Products []string
	Horizon  float64
	// Shards is the product-shard count for the store under test (0 or 1 =
	// legacy single-stream layout). With more shards the storm's submits
	// commit through independent WAL segments, so the fault schedule's
	// stalls and disk-full windows cut each stream at a different point.
	Shards int
	// Clients is the number of concurrent storm clients; each issues
	// RequestsPerClient requests (≈80% submits, 20% reads).
	Clients           int
	RequestsPerClient int
	// RequestTimeout bounds each storm request client-side; expired
	// requests count as shed by deadline.
	RequestTimeout time.Duration
	// Pacing is the maximum random inter-request sleep per client (mean
	// Pacing/2). It stretches the storm across the fault schedule so every
	// phase sees live traffic; zero means full speed.
	Pacing time.Duration
	// MaxInflight/QueueDepth/RateLimit configure admission control in
	// front of the handler (zero disables that control).
	MaxInflight int
	QueueDepth  int
	RateLimit   float64
	// StallThreshold arms the WAL fsync breaker; Schedule's stall phases
	// should exceed it to trip the breaker mid-storm.
	StallThreshold time.Duration
	ProbeInterval  time.Duration
	// Schedule is applied to the fault filesystem phase by phase while
	// the storm runs.
	Schedule []Phase
}

// Phase is one step of the fault schedule, applied for Duration.
type Phase struct {
	// Name labels the phase in failure output.
	Name string
	// Stall makes every fsync block this long (0 = healthy).
	Stall time.Duration
	// Latency delays every write and fsync (0 = none).
	Latency time.Duration
	// SpaceBudget, when ≥ 0, allows only this many more written bytes
	// before ENOSPC. -1 = unlimited.
	SpaceBudget int64
	Duration    time.Duration
}

// Submission is one storm submission and its observed outcome.
type Submission struct {
	Product string
	Rater   string
	Value   float64
	Day     float64
	// Status is the HTTP status (0 = transport error / timeout).
	Status int
	// Durability is the ack from a 201 ("durable" or "pending").
	Durability string
	Latency    time.Duration
}

// Report is the storm's audit trail.
type Report struct {
	Submissions []Submission
	// ShedLatencies holds the latency of every 429/503/timeout response
	// across both submits and reads.
	ShedLatencies []time.Duration
	// Reads counts GET requests issued; ReadsOK counts 200s.
	Reads, ReadsOK int
	// BreakerTripped records whether any submit was acked pending —
	// the schedule's stall phases must be long enough to make this true
	// or invariant 1 is tested vacuously.
	BreakerTripped bool
}

// DurableAcked returns the submissions acknowledged 201+durable.
func (r *Report) DurableAcked() []Submission {
	var out []Submission
	for _, s := range r.Submissions {
		if s.Status == http.StatusCreated && s.Durability == "durable" {
			out = append(out, s)
		}
	}
	return out
}

// Accepted returns every 201 submission regardless of durability.
func (r *Report) Accepted() []Submission {
	var out []Submission
	for _, s := range r.Submissions {
		if s.Status == http.StatusCreated {
			out = append(out, s)
		}
	}
	return out
}

// ShedP99 returns the 99th-percentile shed latency (0 when nothing shed).
func (r *Report) ShedP99() time.Duration {
	if len(r.ShedLatencies) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), r.ShedLatencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := len(sorted) * 99 / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Harness owns a service under storm: the fault filesystem, the durable
// service on top of it, and the admission-controlled HTTP front end.
type Harness struct {
	Opts Options
	FS   *faultfs.FS
	Svc  *server.Service
	TS   *httptest.Server
}

// New builds the service stack over a fresh fault filesystem. Callers
// must Close the harness (or crash it with CrashImage + Close).
func New(opts Options) (*Harness, error) {
	fs := faultfs.New()
	svc, _, err := server.OpenWAL(agg.NewPScheme(), opts.Horizon, opts.Products, server.WALOptions{
		FS:             fs,
		Shards:         opts.Shards,
		SyncEvery:      1, // every durable ack is backed by its own fsync
		StallThreshold: opts.StallThreshold,
		ProbeInterval:  opts.ProbeInterval,
	})
	if err != nil {
		return nil, err
	}
	handler := svc.Handler()
	admission := resilience.AdmissionOptions{
		ExemptPaths: map[string]bool{"/healthz": true, "/readyz": true},
	}
	if opts.MaxInflight > 0 {
		admission.Limiter = resilience.NewLimiter(opts.MaxInflight, opts.QueueDepth)
	}
	if opts.RateLimit > 0 {
		admission.Rate = resilience.NewRateLimiter(opts.RateLimit, opts.RateLimit*4)
	}
	if admission.Limiter != nil || admission.Rate != nil {
		handler = resilience.Admission(handler, admission)
	}
	return &Harness{Opts: opts, FS: fs, Svc: svc, TS: httptest.NewServer(handler)}, nil
}

// Close tears the stack down in drain order: HTTP first (stop accepting,
// drain in-flight), then the service (flush + close the WAL).
func (h *Harness) Close() error {
	h.TS.Close()
	return h.Svc.Close()
}

// Storm runs the configured client storm with the fault schedule applied
// concurrently, and returns the audit report once every client finishes
// and the filesystem faults are cleared.
func (h *Harness) Storm() *Report {
	var (
		mu  sync.Mutex
		rep Report
	)
	stop := make(chan struct{})
	var schedWG sync.WaitGroup
	schedWG.Add(1)
	go func() {
		defer schedWG.Done()
		h.runSchedule(stop)
	}()

	var wg sync.WaitGroup
	for c := 0; c < h.Opts.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := stats.NewRNG(h.Opts.Seed + uint64(c)*7919)
			client := &http.Client{}
			for i := 0; i < h.Opts.RequestsPerClient; i++ {
				if h.Opts.Pacing > 0 {
					time.Sleep(time.Duration(rng.Int64N(int64(h.Opts.Pacing))))
				}
				if rng.Float64() < 0.8 {
					sub := Submission{
						Product: h.Opts.Products[rng.IntN(len(h.Opts.Products))],
						Rater:   fmt.Sprintf("c%02dr%04d", c, i),
						Value:   float64(rng.IntN(9)+1) * 0.5,
						Day:     math.Floor(rng.Float64()*h.Opts.Horizon*2) / 2,
					}
					h.submit(client, &sub)
					mu.Lock()
					rep.Submissions = append(rep.Submissions, sub)
					if sub.Durability == "pending" {
						rep.BreakerTripped = true
					}
					if shed(sub.Status) {
						rep.ShedLatencies = append(rep.ShedLatencies, sub.Latency)
					}
					mu.Unlock()
				} else {
					status, lat := h.read(client, rng)
					mu.Lock()
					rep.Reads++
					if status == http.StatusOK {
						rep.ReadsOK++
					}
					if shed(status) {
						rep.ShedLatencies = append(rep.ShedLatencies, lat)
					}
					mu.Unlock()
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	schedWG.Wait()
	h.FS.ClearFaults()
	return &rep
}

// shed reports whether a status is a fast-fail rejection (or a client
// timeout, status 0).
func shed(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable || status == 0
}

// runSchedule applies the fault phases in order until the storm ends,
// then clears all faults.
func (h *Harness) runSchedule(stop <-chan struct{}) {
	for _, ph := range h.Opts.Schedule {
		h.FS.StallSyncs(ph.Stall)
		h.FS.SetOpLatency(ph.Latency)
		if ph.SpaceBudget >= 0 {
			h.FS.LimitSpace(ph.SpaceBudget)
		} else {
			h.FS.LimitSpace(-1)
		}
		select {
		case <-stop:
			return
		case <-time.After(ph.Duration):
		}
	}
	h.FS.ClearFaults()
	<-stop
}

func (h *Harness) submit(client *http.Client, sub *Submission) {
	body, _ := json.Marshal(server.SubmitRequest{
		Product: sub.Product, Rater: sub.Rater, Value: sub.Value, Day: sub.Day,
	})
	ctx, cancel := context.WithTimeout(context.Background(), h.Opts.RequestTimeout)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "POST", h.TS.URL+"/ratings", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := client.Do(req)
	sub.Latency = time.Since(start)
	if err != nil {
		sub.Status = 0 // timeout or transport failure: durability unknown, NOT acked
		return
	}
	defer resp.Body.Close()
	sub.Status = resp.StatusCode
	if resp.StatusCode == http.StatusCreated {
		var ack map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&ack); err == nil {
			sub.Durability = ack["durability"]
		}
	}
	// The ack is only complete once the response body is read: the
	// happened-before chain (WAL fsync → handler response → client read)
	// is what lets the audit treat "acked durable before the crash cut"
	// as "fsynced before the crash cut".
}

func (h *Harness) read(client *http.Client, rng *rand.Rand) (int, time.Duration) {
	paths := []string{"/products/%s/scores", "/products/%s/report"}
	path := fmt.Sprintf(paths[rng.IntN(len(paths))], h.Opts.Products[rng.IntN(len(h.Opts.Products))])
	ctx, cancel := context.WithTimeout(context.Background(), h.Opts.RequestTimeout)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", h.TS.URL+path, nil)
	start := time.Now()
	resp, err := client.Do(req)
	lat := time.Since(start)
	if err != nil {
		return 0, lat
	}
	resp.Body.Close()
	return resp.StatusCode, lat
}

// Audit checks the three SLO invariants against a power-loss crash image
// of the harness's filesystem and returns every violation found (empty =
// all invariants hold). maxShedP99 bounds invariant 2.
func Audit(rep *Report, image *faultfs.FS, opts Options, maxShedP99 time.Duration) []string {
	var violations []string

	// Enumerate exactly the ratings that survived on disk.
	survivors, err := survivingRatings(image)
	if err != nil {
		return []string{fmt.Sprintf("crash image unreadable: %v", err)}
	}

	// Invariant 1: every durable ack is on disk.
	for _, s := range rep.DurableAcked() {
		if !survivors[key(s.Product, s.Rater)] {
			violations = append(violations,
				fmt.Sprintf("durable-acked rating lost: %s/%s value=%v day=%v", s.Product, s.Rater, s.Value, s.Day))
		}
	}

	// Invariant 2: shedding is fast-fail.
	if p99 := rep.ShedP99(); p99 > maxShedP99 {
		violations = append(violations,
			fmt.Sprintf("shed p99 = %v over budget %v (%d shed)", p99, maxShedP99, len(rep.ShedLatencies)))
	}

	// Invariant 3: recovery from the image is bit-exact vs a clean replay
	// of the surviving ratings.
	if vs := auditConvergence(image, opts); len(vs) > 0 {
		violations = append(violations, vs...)
	}
	return violations
}

func key(product, rater string) string { return product + "\x00" + rater }

// shardStreams enumerates the independent WAL streams in a crash image:
// a manifest names the sharded layout and each shard directory is one
// stream; without a manifest the image is the legacy single stream.
func shardStreams(image *faultfs.FS) ([]wal.FS, error) {
	fsys := image.Clone()
	m, err := wal.ReadManifest(fsys)
	if err != nil {
		return nil, err
	}
	if m == nil {
		return []wal.FS{fsys}, nil
	}
	streams := make([]wal.FS, m.Shards)
	for i := range streams {
		if streams[i], err = wal.Sub(fsys, wal.ShardDir(i)); err != nil {
			return nil, err
		}
	}
	return streams, nil
}

// survivingRatings reads the crash image directly through the wal package
// (snapshot + log replay, per shard stream) and returns the set of
// product/rater pairs on stable storage.
func survivingRatings(image *faultfs.FS) (map[string]bool, error) {
	streams, err := shardStreams(image)
	if err != nil {
		return nil, err
	}
	out := make(map[string]bool)
	for _, fsys := range streams {
		w, rec, err := wal.Open(fsys, wal.Options{})
		if err != nil {
			return nil, err
		}
		if rec.Snapshot != nil {
			for _, p := range rec.Snapshot.Products {
				for _, r := range p.Ratings {
					out[key(p.ID, r.Rater)] = true
				}
			}
		}
		for _, r := range rec.Records {
			out[key(r.Product, r.Rater)] = true
		}
		w.Close()
	}
	return out, nil
}

// auditConvergence recovers a service from the image and compares its
// P-scores bit-for-bit against a clean in-memory service replaying the
// same surviving records.
func auditConvergence(image *faultfs.FS, opts Options) []string {
	recovered, _, err := server.OpenWAL(agg.NewPScheme(), opts.Horizon, opts.Products, server.WALOptions{FS: image.Clone(), Shards: opts.Shards})
	if err != nil {
		return []string{fmt.Sprintf("recovery from crash image failed: %v", err)}
	}
	defer recovered.Close()

	_, rec, err := replayReference(image, opts)
	if err != nil {
		return []string{err.Error()}
	}
	defer rec.Close()

	var violations []string
	ctx := context.Background()
	for _, id := range opts.Products {
		got, gerr := recovered.Scores(ctx, id)
		want, werr := rec.Scores(ctx, id)
		if gerr != nil || werr != nil {
			violations = append(violations, fmt.Sprintf("scores(%s): recovered err=%v clean err=%v", id, gerr, werr))
			continue
		}
		if len(got) != len(want) {
			violations = append(violations, fmt.Sprintf("scores(%s): %d vs %d periods", id, len(got), len(want)))
			continue
		}
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				violations = append(violations,
					fmt.Sprintf("scores(%s) period %d: recovered %v != clean %v", id, i, got[i], want[i]))
			}
		}
	}
	return violations
}

// replayReference builds an in-memory service holding exactly the ratings
// that survived in the image, applied through the live validation path.
func replayReference(image *faultfs.FS, opts Options) (int, *server.Service, error) {
	streams, err := shardStreams(image)
	if err != nil {
		return 0, nil, fmt.Errorf("read crash image: %v", err)
	}
	svc, err := server.New(agg.NewPScheme(), opts.Horizon, opts.Products)
	if err != nil {
		return 0, nil, err
	}
	n := 0
	ctx := context.Background()
	apply := func(product, rater string, value, day float64) {
		// Duplicates (snapshot + unrotated log overlap) and validation
		// rejects mirror the recovery path's own skip rules; any true
		// divergence surfaces as a score mismatch in the audit.
		if err := svc.Submit(ctx, product, rater, value, day); err == nil {
			n++
		}
	}
	for _, fsys := range streams {
		w, rec, err := wal.Open(fsys, wal.Options{})
		if err != nil {
			svc.Close()
			return 0, nil, fmt.Errorf("read crash image: %v", err)
		}
		if rec.Snapshot != nil {
			for _, p := range rec.Snapshot.Products {
				for _, r := range p.Ratings {
					apply(p.ID, r.Rater, r.Value, r.Day)
				}
			}
		}
		for _, r := range rec.Records {
			apply(r.Product, r.Rater, r.Value, r.Day)
		}
		w.Close()
	}
	return n, svc, nil
}
