package chaos

import (
	"context"
	"testing"
	"time"

	"repro/internal/agg"
	"repro/internal/server"
	"repro/internal/wal"
)

// soakOptions is the CI smoke configuration: a few seconds of storm with
// every fault mode exercised. The schedule runs latency and fsync-stall
// phases early (while the storm is guaranteed dense), heals, and saves the
// disk-full window for last — ENOSPC poisons the WAL stickily, so any
// phase after it would be all failures.
func soakOptions() Options {
	return Options{
		Seed:     42,
		Products: []string{"tv1", "tv2", "tv3"},
		Horizon:  90,
		// Three shards over three products: the storm commits through
		// independent WAL segments and the audit walks the sharded layout.
		// (TestChaosKillDuringDrain keeps the 1-shard legacy layout so both
		// paths stay covered.)
		Shards:            3,
		Clients:           8,
		RequestsPerClient: 120,
		RequestTimeout:    2 * time.Second,
		Pacing:            30 * time.Millisecond,
		MaxInflight:       4,
		QueueDepth:        4,
		// One host serves all storm clients, so they share one rate
		// bucket: 50 rps sustained against a much hotter offered load
		// guarantees shed traffic without starving durable acks (burst
		// covers the healthy warm-up).
		RateLimit:      50,
		StallThreshold: 5 * time.Millisecond,
		ProbeInterval:  25 * time.Millisecond,
		Schedule: []Phase{
			{Name: "healthy", SpaceBudget: -1, Duration: 200 * time.Millisecond},
			{Name: "latency", Latency: time.Millisecond, SpaceBudget: -1, Duration: 250 * time.Millisecond},
			{Name: "fsync-stall", Stall: 25 * time.Millisecond, SpaceBudget: -1, Duration: 600 * time.Millisecond},
			{Name: "heal", SpaceBudget: -1, Duration: 400 * time.Millisecond},
			{Name: "disk-full", SpaceBudget: 0, Duration: 250 * time.Millisecond},
		},
	}
}

// TestChaosSoak runs the full storm and audits the three SLO invariants
// against a power-loss image taken at the end: no durable-acked rating
// lost, shed traffic fast-failed, recovery bit-exact vs a clean replay.
func TestChaosSoak(t *testing.T) {
	opts := soakOptions()
	h, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	rep := h.Storm()

	// Power loss: tear off every unsynced byte, then audit.
	image := h.FS.CrashImage()
	h.TS.Close()
	h.Svc.Close() // may return the sticky ENOSPC poison; the image is already taken

	// The storm must actually have exercised what the invariants claim to
	// cover, or the audit is vacuous.
	durable := rep.DurableAcked()
	if len(durable) == 0 {
		t.Fatal("storm produced no durable-acked submissions")
	}
	if !rep.BreakerTripped {
		t.Fatal("fsync-stall phase never tripped the breaker (no pending acks)")
	}
	if len(rep.ShedLatencies) == 0 {
		t.Fatal("storm produced no shed (429/503/timeout) traffic")
	}
	if rep.ReadsOK == 0 {
		t.Fatal("no read ever succeeded during the storm")
	}
	t.Logf("storm: %d submissions (%d durable, %d accepted), %d reads (%d ok), %d shed (p99 %v)",
		len(rep.Submissions), len(durable), len(rep.Accepted()), rep.Reads, rep.ReadsOK,
		len(rep.ShedLatencies), rep.ShedP99())

	// Timeouts surface as shed with latency ≈ RequestTimeout, so the p99
	// budget sits above the timeout: the bound catches unbounded blocking,
	// not the deliberate client deadline.
	if violations := Audit(rep, image, opts, opts.RequestTimeout+time.Second); len(violations) != 0 {
		for _, v := range violations {
			t.Error(v)
		}
	}
}

// TestChaosKillDuringDrain crashes the box while Close is flushing
// breaker-pending records: a power-loss image taken concurrently with the
// drain must still hold every durable-acked rating, and the post-drain
// image must hold every acked rating (Close fsyncs the pending tail).
func TestChaosKillDuringDrain(t *testing.T) {
	opts := Options{
		Products:       []string{"tv1", "tv2"},
		Horizon:        90,
		StallThreshold: 2 * time.Millisecond,
		ProbeInterval:  time.Hour, // no background heal: pending stays pending until Close
	}
	h, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer h.TS.Close()

	ctx := context.Background()
	day := 0.0
	durableAcked := make(map[string]bool)
	allAcked := make(map[string]bool)
	submit := func(rater string) wal.Ack {
		t.Helper()
		ack, err := h.Svc.SubmitAck(ctx, "tv1", rater, 4, day)
		if err != nil {
			t.Fatalf("submit %s: %v", rater, err)
		}
		day += 0.5
		allAcked[key("tv1", rater)] = true
		if ack == wal.AckDurable {
			durableAcked[key("tv1", rater)] = true
		}
		return ack
	}

	for i := 0; i < 30; i++ {
		submit(rater("d", i))
	}
	// Stall fsyncs past the breaker threshold: the first stalled submit
	// still acks durable (its fsync completed, slowly) and trips the
	// breaker; the rest ack pending with no fsync behind them.
	h.FS.StallSyncs(10 * time.Millisecond)
	var pending int
	for i := 0; i < 10; i++ {
		if submit(rater("p", i)) == wal.AckPending {
			pending++
		}
	}
	if pending == 0 {
		t.Fatal("stalled submits never acked pending; drain has nothing to flush")
	}
	h.FS.StallSyncs(0)

	// Kill during drain: snapshot the power-loss image while Close is
	// flushing the pending tail.
	closeErr := make(chan error, 1)
	go func() { closeErr <- h.Svc.Close() }()
	midDrain := h.FS.CrashImage()
	if err := <-closeErr; err != nil {
		t.Fatalf("drain: %v", err)
	}
	final := h.FS.CrashImage()

	// The mid-drain image may or may not hold the pending records — the
	// crash raced the flush — but durable acks are inviolable.
	midSurvivors, err := survivingRatings(midDrain)
	if err != nil {
		t.Fatalf("mid-drain image unreadable: %v", err)
	}
	for k := range durableAcked {
		if !midSurvivors[k] {
			t.Errorf("durable-acked rating %q lost in mid-drain crash", k)
		}
	}

	// After an orderly drain every ack — durable and pending — is on
	// stable storage.
	finalSurvivors, err := survivingRatings(final)
	if err != nil {
		t.Fatalf("post-drain image unreadable: %v", err)
	}
	for k := range allAcked {
		if !finalSurvivors[k] {
			t.Errorf("acked rating %q lost despite orderly drain", k)
		}
	}

	// And the drained image boots a working service with the full history.
	svc, rec, err := server.OpenWAL(agg.NewPScheme(), opts.Horizon, opts.Products, server.WALOptions{FS: final})
	if err != nil {
		t.Fatalf("recovery from drained image: %v", err)
	}
	defer svc.Close()
	if got := rec.SnapshotRatings + rec.ReplayedRatings; got != len(allAcked) {
		t.Errorf("recovered %d ratings, want %d", got, len(allAcked))
	}
	if _, err := svc.Scores(ctx, "tv1"); err != nil {
		t.Errorf("recovered service cannot serve scores: %v", err)
	}
}

func rater(prefix string, i int) string {
	return prefix + string(rune('a'+i/26)) + string(rune('a'+i%26))
}

// TestAuditCatchesLoss pins that the auditor is not a rubber stamp: a
// fabricated durable ack that is absent from the image must be flagged.
func TestAuditCatchesLoss(t *testing.T) {
	opts := Options{
		Products: []string{"tv1"},
		Horizon:  90,
	}
	h, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, err := h.Svc.SubmitAck(context.Background(), "tv1", "real", 4, 1); err != nil {
		t.Fatal(err)
	}
	rep := &Report{Submissions: []Submission{
		{Product: "tv1", Rater: "real", Status: 201, Durability: "durable"},
		{Product: "tv1", Rater: "ghost", Status: 201, Durability: "durable"},
	}}
	violations := Audit(rep, h.FS.CrashImage(), opts, time.Second)
	if len(violations) != 1 {
		t.Fatalf("violations = %v, want exactly the ghost rating", violations)
	}
}
