package challenge

import (
	"fmt"
	"sort"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/mp"
)

// Mark is the submission classification used in the variance–bias plots.
type Mark int

// Marks (Section V-B): AMP = top-10 overall MP; LMP = top-10 MP among the
// submissions with negative bias on the product; UMP = the same for
// positive bias.
const (
	MarkAMP Mark = 1 << iota
	MarkLMP
	MarkUMP
)

// Has reports whether m contains the given flag.
func (m Mark) Has(flag Mark) bool { return m&flag != 0 }

// String renders the mark set ("AMP|LMP", "-" for none).
func (m Mark) String() string {
	s := ""
	appendFlag := func(name string) {
		if s != "" {
			s += "|"
		}
		s += name
	}
	if m.Has(MarkAMP) {
		appendFlag("AMP")
	}
	if m.Has(MarkLMP) {
		appendFlag("LMP")
	}
	if m.Has(MarkUMP) {
		appendFlag("UMP")
	}
	if s == "" {
		return "-"
	}
	return s
}

// Scored pairs a submission with its manipulation power under one scheme.
type Scored struct {
	Submission Submission
	MP         mp.Result
}

// ScoreAll evaluates every submission under the scheme.
func (c *Challenge) ScoreAll(subs []Submission, scheme agg.Scheme) ([]Scored, error) {
	out := make([]Scored, len(subs))
	for i, sub := range subs {
		res, err := c.Score(sub.Attack, scheme)
		if err != nil {
			return nil, fmt.Errorf("score submission %d: %w", sub.ID, err)
		}
		out[i] = Scored{Submission: sub, MP: res}
	}
	return out, nil
}

// VBPoint is one circle on a variance–bias plot (Figures 2–4): one
// submission's unfair ratings against one product.
type VBPoint struct {
	SubmissionID int
	Strategy     Strategy
	// Bias is mean(unfair) − mean(fair) for the product; Spread is the
	// standard deviation of the unfair rating values.
	Bias   float64
	Spread float64
	// ProductMP is the MP gained from this product; OverallMP across all.
	ProductMP float64
	OverallMP float64
	Marks     Mark
}

// VarianceBias builds the variance–bias scatter for one product from scored
// submissions, marking AMP/LMP/UMP per Section V-B (top-10 in each
// category).
func (c *Challenge) VarianceBias(scored []Scored, productID string) []VBPoint {
	fair := c.FairSeries()[productID]
	fairVals := fair.Values()
	points := make([]VBPoint, 0, len(scored))
	for _, sc := range scored {
		unfair, ok := sc.Submission.Attack.Ratings[productID]
		if !ok || len(unfair) == 0 {
			continue
		}
		points = append(points, VBPoint{
			SubmissionID: sc.Submission.ID,
			Strategy:     sc.Submission.Strategy,
			Bias:         core.MeasureBias(unfair.Values(), fairVals),
			Spread:       core.MeasureSpread(unfair.Values()),
			ProductMP:    sc.MP.Product(productID),
			OverallMP:    sc.MP.Overall,
		})
	}
	markTop(points, MarkAMP, func(p VBPoint) (float64, bool) { return p.OverallMP, true })
	markTop(points, MarkLMP, func(p VBPoint) (float64, bool) { return p.ProductMP, p.Bias < 0 })
	markTop(points, MarkUMP, func(p VBPoint) (float64, bool) { return p.ProductMP, p.Bias > 0 })
	return points
}

// markTop sets flag on the 10 eligible points with the highest key.
func markTop(points []VBPoint, flag Mark, key func(VBPoint) (float64, bool)) {
	type ranked struct {
		idx int
		v   float64
	}
	var rs []ranked
	for i, p := range points {
		if v, ok := key(p); ok {
			rs = append(rs, ranked{idx: i, v: v})
		}
	}
	sort.Slice(rs, func(a, b int) bool { return rs[a].v > rs[b].v })
	for i := 0; i < len(rs) && i < 10; i++ {
		points[rs[i].idx].Marks |= flag
	}
}

// Region is the variance–bias region taxonomy of Section V-B for
// downgrading attacks.
type Region int

// Regions: R1 = large negative bias with small-to-medium variance, R2 =
// medium bias with small-to-medium variance, R3 = medium bias with
// medium-to-large variance. RegionOther covers everything else (positive
// bias, tiny bias, …).
const (
	RegionOther Region = iota
	Region1
	Region2
	Region3
)

// String returns the region name.
func (r Region) String() string {
	switch r {
	case Region1:
		return "R1"
	case Region2:
		return "R2"
	case Region3:
		return "R3"
	default:
		return "other"
	}
}

// Classify assigns a variance–bias point to the paper's region taxonomy.
func Classify(bias, spread float64) Region {
	const (
		largeBias = -3.0 // more negative than this = "large negative bias"
		smallBias = -1.0 // less negative than this = not an attack region
		midVar    = 0.7  // boundary between small-medium and medium-large σ
	)
	switch {
	case bias <= largeBias && spread < midVar:
		return Region1
	case bias > largeBias && bias <= smallBias && spread < midVar:
		return Region2
	case bias > largeBias && bias <= smallBias && spread >= midVar:
		return Region3
	default:
		return RegionOther
	}
}

// TimePoint is one dot on the Figure 6 time-domain plot: a submission's
// average unfair-rating interval for a product against the MP it earned.
type TimePoint struct {
	SubmissionID int
	// Interval is attack duration / number of unfair ratings (days).
	Interval float64
	// ProductMP is the MP gained from the product.
	ProductMP float64
}

// TimeAnalysis builds the Figure 6 scatter for one product.
func TimeAnalysis(scored []Scored, productID string) []TimePoint {
	out := make([]TimePoint, 0, len(scored))
	for _, sc := range scored {
		unfair, ok := sc.Submission.Attack.Ratings[productID]
		if !ok || len(unfair) < 2 {
			continue
		}
		first, last := unfair.Span()
		out = append(out, TimePoint{
			SubmissionID: sc.Submission.ID,
			Interval:     (last - first) / float64(len(unfair)),
			ProductMP:    sc.MP.Product(productID),
		})
	}
	return out
}

// Leaderboard returns the scored submissions ordered by overall MP,
// strongest first.
func Leaderboard(scored []Scored) []Scored {
	out := make([]Scored, len(scored))
	copy(out, scored)
	sort.SliceStable(out, func(i, j int) bool { return out[i].MP.Overall > out[j].MP.Overall })
	return out
}
