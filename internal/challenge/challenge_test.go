package challenge

import (
	"errors"
	"testing"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/stats"
)

// smallConfig keeps unit tests fast: 5 products over 90 days.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Fair.Products = 5
	cfg.Fair.HorizonDays = 90
	return cfg
}

func newChallenge(t *testing.T) *Challenge {
	t.Helper()
	c, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.BiasedRaters = 0
	if err := bad.Validate(); !errors.Is(err, ErrBadChallenge) {
		t.Errorf("zero raters: %v", err)
	}
	bad = DefaultConfig()
	bad.DowngradeTargets = nil
	bad.BoostTargets = nil
	if err := bad.Validate(); !errors.Is(err, ErrBadChallenge) {
		t.Errorf("no targets: %v", err)
	}
	bad = DefaultConfig()
	bad.Fair.Products = 0
	if err := bad.Validate(); err == nil {
		t.Error("bad fair config accepted")
	}
}

func TestNewRejectsUnknownTarget(t *testing.T) {
	cfg := smallConfig()
	cfg.BoostTargets = []string{"tv99"}
	if _, err := New(cfg); !errors.Is(err, ErrBadChallenge) {
		t.Errorf("unknown target: %v", err)
	}
}

func TestTargetsAndFairSeries(t *testing.T) {
	c := newChallenge(t)
	targets := c.Config.Targets()
	if len(targets) != 4 {
		t.Fatalf("targets = %v", targets)
	}
	fs := c.FairSeries()
	for _, id := range targets {
		if len(fs[id]) == 0 {
			t.Errorf("no fair series for %s", id)
		}
	}
}

func TestBaselineCaching(t *testing.T) {
	c := newChallenge(t)
	t1 := c.Baseline(agg.SAScheme{})
	t2 := c.Baseline(agg.SAScheme{})
	if len(t1) == 0 {
		t.Fatal("empty baseline")
	}
	// Must be the exact same cached map.
	if &t1 == nil || len(t1) != len(t2) {
		t.Fatal("baseline changed between calls")
	}
	for id := range t1 {
		for i := range t1[id] {
			if t1[id][i] != t2[id][i] && !(t1[id][i] != t1[id][i] && t2[id][i] != t2[id][i]) {
				t.Fatalf("baseline not cached deterministically")
			}
		}
	}
}

func TestScoreStrongDowngrade(t *testing.T) {
	c := newChallenge(t)
	gen := core.NewGenerator(42, core.DefaultRaters(c.Config.BiasedRaters))
	fair := c.FairSeries()
	profile := core.Profile{
		Bias: -3.5, StdDev: 0.1, Count: 50, StartDay: 35,
		DurationDays: 20, Correlation: core.Independent, Quantize: true,
	}
	atk, err := gen.Generate(map[string]core.Profile{"tv1": profile}, fair)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Score(atk, agg.SAScheme{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Overall < 0.5 {
		t.Errorf("strong attack scored MP %v under SA, want ≥ 0.5", res.Overall)
	}
	if res.Product("tv1") != res.Overall {
		t.Errorf("all MP should come from tv1: product %v, overall %v", res.Product("tv1"), res.Overall)
	}
}

func TestScoreUnknownProductErrors(t *testing.T) {
	c := newChallenge(t)
	atk := core.Attack{Ratings: map[string]dataset.Series{"tv99": {{Day: 1, Value: 0}}}}
	if _, err := c.Score(atk, agg.SAScheme{}); err == nil {
		t.Error("unknown product scored without error")
	}
}

func TestGeneratePopulation(t *testing.T) {
	c := newChallenge(t)
	rng := stats.NewRNG(99)
	subs, err := GeneratePopulation(rng, c, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 40 {
		t.Fatalf("population = %d", len(subs))
	}
	strategies := make(map[Strategy]int)
	for i, sub := range subs {
		if sub.ID != i {
			t.Errorf("submission %d has ID %d", i, sub.ID)
		}
		strategies[sub.Strategy]++
		if len(sub.Profiles) != 4 {
			t.Errorf("submission %d attacks %d products", i, len(sub.Profiles))
		}
		for _, pid := range c.Config.DowngradeTargets {
			if sub.Profiles[pid].Bias >= 0 {
				t.Errorf("submission %d: downgrade bias %v ≥ 0", i, sub.Profiles[pid].Bias)
			}
			s := sub.Attack.Ratings[pid]
			if len(s) == 0 || len(s) > c.Config.BiasedRaters {
				t.Errorf("submission %d: %d unfair ratings on %s", i, len(s), pid)
			}
		}
		for _, pid := range c.Config.BoostTargets {
			if sub.Profiles[pid].Bias <= 0 {
				t.Errorf("submission %d: boost bias %v ≤ 0", i, sub.Profiles[pid].Bias)
			}
		}
	}
	if len(strategies) < 4 {
		t.Errorf("only %d strategies drawn in 40 submissions: %v", len(strategies), strategies)
	}
}

func TestGeneratePopulationDeterministic(t *testing.T) {
	c := newChallenge(t)
	s1, err := GeneratePopulation(stats.NewRNG(7), c, 10)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := GeneratePopulation(stats.NewRNG(7), c, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s1 {
		if s1[i].Strategy != s2[i].Strategy {
			t.Fatalf("strategy diverged at %d", i)
		}
		a1 := s1[i].Attack.Ratings["tv1"]
		a2 := s2[i].Attack.Ratings["tv1"]
		if len(a1) != len(a2) {
			t.Fatalf("attack size diverged at %d", i)
		}
		for j := range a1 {
			if a1[j] != a2[j] {
				t.Fatalf("attack diverged at %d/%d", i, j)
			}
		}
	}
}
