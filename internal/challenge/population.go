package challenge

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/stats"
)

// Strategy is an attack archetype observed in the challenge data.
type Strategy string

// The archetype mixture. Section V-A reports that more than half of the 251
// submissions were straightforward (NaiveMax, NaiveBurst), while the rest
// exploited the defense in varied ways; the weights below encode that split.
const (
	// StrategyNaiveMax: extreme bias, tiny variance, long duration — the
	// straightforward attack that beats simple averaging.
	StrategyNaiveMax Strategy = "naive-max"
	// StrategyNaiveBurst: extreme bias concentrated into 1–2 MP periods
	// (participants who noticed the monthly MP scoring).
	StrategyNaiveBurst Strategy = "naive-burst"
	// StrategyModerateLowVar: medium bias, small variance — region R2.
	StrategyModerateLowVar Strategy = "moderate-lowvar"
	// StrategySmartHighVar: medium bias, medium-to-large variance — the
	// region-R3 attack that weakens signal features (beats the P-scheme).
	StrategySmartHighVar Strategy = "smart-highvar"
	// StrategyTrickle: few ratings spread thin — low arrival rate.
	StrategyTrickle Strategy = "trickle"
	// StrategyRandom: uniformly random parameters (undirected users).
	StrategyRandom Strategy = "random"
)

// Submission is one simulated participant entry.
type Submission struct {
	ID       int
	Strategy Strategy
	// Profiles holds the per-product attack parameters used.
	Profiles map[string]core.Profile
	// Attack is the generated unfair rating data.
	Attack core.Attack
}

// strategyWeights is the archetype mixture (must sum to 1).
var strategyWeights = []struct {
	s Strategy
	w float64
}{
	{StrategyNaiveMax, 0.28},
	{StrategyNaiveBurst, 0.17},
	{StrategyModerateLowVar, 0.14},
	{StrategySmartHighVar, 0.18},
	{StrategyTrickle, 0.09},
	{StrategyRandom, 0.14},
}

func drawStrategy(rng *rand.Rand) Strategy {
	u := rng.Float64()
	acc := 0.0
	for _, sw := range strategyWeights {
		acc += sw.w
		if u < acc {
			return sw.s
		}
	}
	return StrategyRandom
}

// GeneratePopulation simulates n challenge submissions (the paper collected
// 251) drawn from the archetype mixture, each generated with its own
// deterministic sub-stream of rng.
func GeneratePopulation(rng *rand.Rand, c *Challenge, n int) ([]Submission, error) {
	fairSeries := c.FairSeries()
	subs := make([]Submission, 0, n)
	for i := 0; i < n; i++ {
		strat := drawStrategy(rng)
		sub, err := generateSubmission(stats.Fork(rng), c, i, strat, fairSeries)
		if err != nil {
			return nil, fmt.Errorf("submission %d (%s): %w", i, strat, err)
		}
		subs = append(subs, sub)
	}
	return subs, nil
}

func generateSubmission(rng *rand.Rand, c *Challenge, id int, strat Strategy, fairSeries map[string]dataset.Series) (Submission, error) {
	horizon := c.Config.Fair.HorizonDays
	profiles := make(map[string]core.Profile, len(c.Config.Targets()))
	for _, pid := range c.Config.DowngradeTargets {
		p := drawDowngradeProfile(rng, strat, horizon, fairSeries[pid].Mean())
		profiles[pid] = p
	}
	for _, pid := range c.Config.BoostTargets {
		p := drawBoostProfile(rng, strat, horizon, fairSeries[pid].Mean())
		profiles[pid] = p
	}
	gen := core.NewGenerator(rng.Uint64(), core.DefaultRaters(c.Config.BiasedRaters))
	if strat == StrategyNaiveBurst && rng.Float64() < 0.5 {
		gen.TimePattern = core.FrontLoaded
	}
	atk, err := gen.Generate(profiles, fairSeries)
	if err != nil {
		return Submission{}, err
	}
	return Submission{ID: id, Strategy: strat, Profiles: profiles, Attack: atk}, nil
}

// uniform draws from [lo, hi).
func uniform(rng *rand.Rand, lo, hi float64) float64 {
	return lo + rng.Float64()*(hi-lo)
}

func drawDowngradeProfile(rng *rand.Rand, strat Strategy, horizon, fairMean float64) core.Profile {
	var bias, sigma, duration float64
	var count int
	switch strat {
	case StrategyNaiveMax:
		bias = uniform(rng, 0, 0.5) - fairMean // drive the product toward 0
		sigma = uniform(rng, 0.02, 0.2)
		duration = uniform(rng, 0.5*horizon, horizon)
		count = 35 + rng.IntN(16)
	case StrategyNaiveBurst:
		bias = uniform(rng, 0, 0.6) - fairMean
		sigma = uniform(rng, 0.02, 0.25)
		duration = uniform(rng, 15, 45)
		count = 35 + rng.IntN(16)
	case StrategyModerateLowVar:
		bias = uniform(rng, -2.6, -1.5)
		sigma = uniform(rng, 0.1, 0.45)
		duration = uniform(rng, 20, 80)
		count = 30 + rng.IntN(21)
	case StrategySmartHighVar:
		bias = uniform(rng, -2.8, -1.5)
		sigma = uniform(rng, 0.8, 1.4)
		duration = uniform(rng, 25, 70)
		count = 40 + rng.IntN(11)
	case StrategyTrickle:
		bias = uniform(rng, -3, -1)
		sigma = uniform(rng, 0.2, 0.8)
		duration = uniform(rng, 0.7*horizon, horizon)
		count = 10 + rng.IntN(16)
	default: // StrategyRandom
		bias = uniform(rng, -4, 0)
		sigma = uniform(rng, 0, 1.5)
		duration = uniform(rng, 10, horizon)
		count = 10 + rng.IntN(41)
	}
	return finishProfile(rng, bias, sigma, duration, count, horizon)
}

func drawBoostProfile(rng *rand.Rand, strat Strategy, horizon, fairMean float64) core.Profile {
	headroom := dataset.MaxValue - fairMean // ≈ 1 for a mean-4 product
	var bias, sigma, duration float64
	var count int
	switch strat {
	case StrategyNaiveMax, StrategyNaiveBurst:
		bias = headroom * uniform(rng, 0.8, 1.0)
		sigma = uniform(rng, 0.02, 0.2)
		duration = uniform(rng, 15, horizon)
		count = 35 + rng.IntN(16)
	case StrategySmartHighVar:
		bias = headroom * uniform(rng, 0.5, 0.9)
		sigma = uniform(rng, 0.5, 1.0)
		duration = uniform(rng, 25, 70)
		count = 40 + rng.IntN(11)
	case StrategyTrickle:
		bias = headroom * uniform(rng, 0.4, 0.9)
		sigma = uniform(rng, 0.1, 0.5)
		duration = uniform(rng, 0.7*horizon, horizon)
		count = 10 + rng.IntN(16)
	default:
		bias = headroom * uniform(rng, 0.3, 1.0)
		sigma = uniform(rng, 0, 0.8)
		duration = uniform(rng, 10, horizon)
		count = 15 + rng.IntN(36)
	}
	return finishProfile(rng, bias, sigma, duration, count, horizon)
}

// finishProfile adds the per-submission "manual" jitter the survey reports
// (most participants tweaked generated data by hand) and places the attack
// window inside the horizon.
func finishProfile(rng *rand.Rand, bias, sigma, duration float64, count int, horizon float64) core.Profile {
	bias += uniform(rng, -0.1, 0.1)
	sigma *= uniform(rng, 0.9, 1.1)
	if duration > horizon {
		duration = horizon
	}
	start := uniform(rng, 0, horizon-duration)
	return core.Profile{
		Bias:         bias,
		StdDev:       sigma,
		Count:        count,
		StartDay:     start,
		DurationDays: duration,
		Correlation:  core.Independent,
		Quantize:     true,
	}
}
