package challenge

import (
	"fmt"
	"strings"
)

// StrategyStat aggregates one archetype's outcomes under a scheme.
type StrategyStat struct {
	Strategy Strategy
	N        int
	MeanMP   float64
	MaxMP    float64
}

// AllStrategies lists the archetypes in presentation order.
func AllStrategies() []Strategy {
	return []Strategy{
		StrategyNaiveMax, StrategyNaiveBurst, StrategyModerateLowVar,
		StrategySmartHighVar, StrategyTrickle, StrategyRandom,
	}
}

// StrategyStats groups scored submissions by archetype.
func StrategyStats(scored []Scored) []StrategyStat {
	acc := make(map[Strategy]*StrategyStat)
	for _, sc := range scored {
		st := acc[sc.Submission.Strategy]
		if st == nil {
			st = &StrategyStat{Strategy: sc.Submission.Strategy}
			acc[sc.Submission.Strategy] = st
		}
		st.N++
		st.MeanMP += sc.MP.Overall
		if sc.MP.Overall > st.MaxMP {
			st.MaxMP = sc.MP.Overall
		}
	}
	var out []StrategyStat
	for _, s := range AllStrategies() {
		st := acc[s]
		if st == nil {
			continue
		}
		st.MeanMP /= float64(st.N)
		out = append(out, *st)
		delete(acc, s)
	}
	// Unknown strategies (e.g. imported data) follow in arbitrary order.
	for _, st := range acc {
		st.MeanMP /= float64(st.N)
		out = append(out, *st)
	}
	return out
}

// FormatStrategyStats renders the per-archetype table.
func FormatStrategyStats(stats []StrategyStat) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %5s %10s %10s\n", "strategy", "n", "mean MP", "max MP")
	for _, st := range stats {
		fmt.Fprintf(&b, "%-18s %5d %10.4f %10.4f\n", st.Strategy, st.N, st.MeanMP, st.MaxMP)
	}
	return b.String()
}
