package challenge

import (
	"strings"
	"testing"

	"repro/internal/agg"
	"repro/internal/stats"
)

func scoredFixture(t *testing.T, c *Challenge, n int) []Scored {
	t.Helper()
	subs, err := GeneratePopulation(stats.NewRNG(123), c, n)
	if err != nil {
		t.Fatal(err)
	}
	scored, err := c.ScoreAll(subs, agg.SAScheme{})
	if err != nil {
		t.Fatal(err)
	}
	return scored
}

func TestMarkString(t *testing.T) {
	if got := (MarkAMP | MarkLMP).String(); got != "AMP|LMP" {
		t.Errorf("String = %q", got)
	}
	if got := Mark(0).String(); got != "-" {
		t.Errorf("String(0) = %q", got)
	}
	if !(MarkAMP | MarkUMP).Has(MarkUMP) || (MarkAMP).Has(MarkLMP) {
		t.Error("Has wrong")
	}
}

func TestVarianceBiasMarks(t *testing.T) {
	c := newChallenge(t)
	scored := scoredFixture(t, c, 30)
	points := c.VarianceBias(scored, "tv1")
	if len(points) != 30 {
		t.Fatalf("points = %d", len(points))
	}
	var amp, lmp int
	for _, p := range points {
		if p.Marks.Has(MarkAMP) {
			amp++
		}
		if p.Marks.Has(MarkLMP) {
			lmp++
		}
		if p.Marks.Has(MarkUMP) {
			t.Errorf("submission %d: UMP on a downgrade target (bias %v)", p.SubmissionID, p.Bias)
		}
		// tv1 is a downgrade target: every submission biases it down.
		if p.Bias >= 0.5 {
			t.Errorf("submission %d: bias %v on downgrade target", p.SubmissionID, p.Bias)
		}
		if p.Spread < 0 {
			t.Errorf("negative spread %v", p.Spread)
		}
	}
	if amp != 10 {
		t.Errorf("AMP marks = %d, want 10", amp)
	}
	if lmp != 10 {
		t.Errorf("LMP marks = %d, want 10", lmp)
	}
	// AMP marks must actually be the top-10 by overall MP.
	lb := Leaderboard(scored)
	topIDs := make(map[int]bool, 10)
	for i := 0; i < 10; i++ {
		topIDs[lb[i].Submission.ID] = true
	}
	for _, p := range points {
		if p.Marks.Has(MarkAMP) != topIDs[p.SubmissionID] {
			t.Errorf("submission %d: AMP mark inconsistent with leaderboard", p.SubmissionID)
		}
	}
}

func TestVarianceBiasUMPOnBoostTarget(t *testing.T) {
	c := newChallenge(t)
	scored := scoredFixture(t, c, 25)
	points := c.VarianceBias(scored, "tv3") // boost target
	ump := 0
	for _, p := range points {
		if p.Marks.Has(MarkUMP) {
			ump++
		}
		if p.Marks.Has(MarkLMP) {
			t.Errorf("LMP on boost target (bias %v)", p.Bias)
		}
	}
	if ump != 10 {
		t.Errorf("UMP marks = %d, want 10", ump)
	}
}

func TestClassify(t *testing.T) {
	tests := []struct {
		bias, spread float64
		want         Region
	}{
		{-3.8, 0.1, Region1},
		{-3.2, 0.6, Region1},
		{-2.0, 0.3, Region2},
		{-1.5, 0.65, Region2},
		{-2.0, 1.2, Region3},
		{-1.2, 0.8, Region3},
		{-0.5, 0.3, RegionOther},
		{0.8, 0.2, RegionOther},
		{-3.5, 1.5, RegionOther}, // large bias + large variance
	}
	for _, tt := range tests {
		if got := Classify(tt.bias, tt.spread); got != tt.want {
			t.Errorf("Classify(%v,%v) = %v, want %v", tt.bias, tt.spread, got, tt.want)
		}
	}
	if Region1.String() != "R1" || Region2.String() != "R2" || Region3.String() != "R3" || RegionOther.String() != "other" {
		t.Error("region names wrong")
	}
}

func TestTimeAnalysis(t *testing.T) {
	c := newChallenge(t)
	scored := scoredFixture(t, c, 20)
	points := TimeAnalysis(scored, "tv1")
	if len(points) == 0 {
		t.Fatal("no time points")
	}
	for _, p := range points {
		if p.Interval <= 0 {
			t.Errorf("interval %v ≤ 0", p.Interval)
		}
		if p.ProductMP < 0 {
			t.Errorf("MP %v < 0", p.ProductMP)
		}
	}
}

func TestLeaderboardSorted(t *testing.T) {
	c := newChallenge(t)
	scored := scoredFixture(t, c, 15)
	lb := Leaderboard(scored)
	if len(lb) != 15 {
		t.Fatalf("leaderboard = %d", len(lb))
	}
	for i := 1; i < len(lb); i++ {
		if lb[i].MP.Overall > lb[i-1].MP.Overall {
			t.Fatalf("leaderboard not sorted at %d", i)
		}
	}
	// Input order untouched.
	for i, sc := range scored {
		if sc.Submission.ID != i {
			t.Fatal("Leaderboard mutated its input")
		}
	}
}

func TestVarianceBiasSkipsMissingProducts(t *testing.T) {
	c := newChallenge(t)
	subs, err := GeneratePopulation(stats.NewRNG(55), c, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Strip tv1 from one submission: its point must vanish, not zero out.
	delete(subs[1].Attack.Ratings, "tv1")
	scored, err := c.ScoreAll(subs, agg.SAScheme{})
	if err != nil {
		t.Fatal(err)
	}
	points := c.VarianceBias(scored, "tv1")
	if len(points) != 2 {
		t.Fatalf("points = %d, want 2", len(points))
	}
	for _, p := range points {
		if p.SubmissionID == 1 {
			t.Error("stripped submission still plotted")
		}
	}
}

func TestTimeAnalysisSkipsTinySubmissions(t *testing.T) {
	c := newChallenge(t)
	subs, err := GeneratePopulation(stats.NewRNG(56), c, 2)
	if err != nil {
		t.Fatal(err)
	}
	// A single-rating attack has no measurable interval.
	subs[0].Attack.Ratings["tv1"] = subs[0].Attack.Ratings["tv1"][:1]
	scored, err := c.ScoreAll(subs, agg.SAScheme{})
	if err != nil {
		t.Fatal(err)
	}
	points := TimeAnalysis(scored, "tv1")
	if len(points) != 1 {
		t.Fatalf("points = %d, want 1", len(points))
	}
	if points[0].SubmissionID != 1 {
		t.Error("wrong submission kept")
	}
}

func TestStrategyStats(t *testing.T) {
	c := newChallenge(t)
	scored := scoredFixture(t, c, 25)
	st := StrategyStats(scored)
	if len(st) == 0 {
		t.Fatal("no strategy stats")
	}
	totalN := 0
	for _, s := range st {
		totalN += s.N
		if s.MeanMP > s.MaxMP {
			t.Errorf("%s: mean %v > max %v", s.Strategy, s.MeanMP, s.MaxMP)
		}
		if s.MeanMP < 0 {
			t.Errorf("%s: negative mean", s.Strategy)
		}
	}
	if totalN != 25 {
		t.Errorf("stats cover %d submissions, want 25", totalN)
	}
	out := FormatStrategyStats(st)
	if !strings.Contains(out, "strategy") || !strings.Contains(out, string(st[0].Strategy)) {
		t.Errorf("formatted table missing rows:\n%s", out)
	}
	// Unknown strategies survive grouping.
	scored[0].Submission.Strategy = "handcrafted"
	st = StrategyStats(scored)
	found := false
	for _, s := range st {
		if s.Strategy == "handcrafted" {
			found = true
		}
	}
	if !found {
		t.Error("unknown strategy dropped")
	}
}
