// Package challenge simulates the paper's Rating Challenge (Section III):
// a fair rating dataset for 9 similar products, 50 attacker-controlled
// biased raters, two boost targets and two downgrade targets, submissions
// scored by the Manipulation Power metric. It also provides the
// participant-population simulator that stands in for the 251 real human
// submissions, and the analysis tooling behind Figures 2–4 and 6.
package challenge

import (
	"errors"
	"fmt"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mp"
	"repro/internal/stats"
)

// ErrBadChallenge indicates an invalid challenge configuration.
var ErrBadChallenge = errors.New("challenge: bad config")

// Config is the rating challenge setup.
type Config struct {
	// FairSeed seeds the fair dataset generator.
	FairSeed uint64
	// Fair is the synthetic fair-data configuration (9 products, ≈4 mean).
	Fair dataset.FairConfig
	// BiasedRaters is the number of attacker-controlled raters (50).
	BiasedRaters int
	// DowngradeTargets are the products whose rating the attacker must
	// reduce; BoostTargets those to boost (2 + 2 in the challenge).
	DowngradeTargets []string
	BoostTargets     []string
}

// DefaultConfig mirrors the challenge: 9 products, 150 days, 50 biased
// raters, downgrade tv1/tv2, boost tv3/tv4.
func DefaultConfig() Config {
	return Config{
		FairSeed:         2007, // the challenge ran in 2007
		Fair:             dataset.DefaultFairConfig(),
		BiasedRaters:     50,
		DowngradeTargets: []string{"tv1", "tv2"},
		BoostTargets:     []string{"tv3", "tv4"},
	}
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	if err := c.Fair.Validate(); err != nil {
		return err
	}
	if c.BiasedRaters <= 0 {
		return fmt.Errorf("%w: %d biased raters", ErrBadChallenge, c.BiasedRaters)
	}
	if len(c.DowngradeTargets)+len(c.BoostTargets) == 0 {
		return fmt.Errorf("%w: no targets", ErrBadChallenge)
	}
	return nil
}

// Targets returns all attacked product IDs (downgrade first).
func (c Config) Targets() []string {
	out := make([]string, 0, len(c.DowngradeTargets)+len(c.BoostTargets))
	out = append(out, c.DowngradeTargets...)
	out = append(out, c.BoostTargets...)
	return out
}

// Challenge is a ready-to-score instance: the fair dataset plus cached
// per-scheme baseline aggregates.
type Challenge struct {
	Config Config
	// Fair is the attack-free dataset participants download.
	Fair *dataset.Dataset

	baselines map[string]agg.Table
}

// New builds the challenge: generates the fair dataset and checks that
// every target product exists.
func New(cfg Config) (*Challenge, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	fair, err := dataset.GenerateFair(stats.NewRNG(cfg.FairSeed), cfg.Fair)
	if err != nil {
		return nil, err
	}
	c := &Challenge{Config: cfg, Fair: fair, baselines: make(map[string]agg.Table)}
	for _, id := range cfg.Targets() {
		if _, err := fair.Product(id); err != nil {
			return nil, fmt.Errorf("%w: target %q not in dataset", ErrBadChallenge, id)
		}
	}
	return c, nil
}

// FairSeries returns the fair rating series of the target products, keyed
// by product ID (the input the attack generator needs).
func (c *Challenge) FairSeries() map[string]dataset.Series {
	out := make(map[string]dataset.Series, len(c.Config.Targets()))
	for _, id := range c.Config.Targets() {
		p, err := c.Fair.Product(id)
		if err != nil {
			continue // validated in New; defensive only
		}
		out[id] = p.Ratings
	}
	return out
}

// Baseline returns (computing and caching on first use) the clean-data
// aggregates under the given scheme.
func (c *Challenge) Baseline(scheme agg.Scheme) agg.Table {
	if t, ok := c.baselines[scheme.Name()]; ok {
		return t
	}
	t := scheme.Aggregates(c.Fair)
	c.baselines[scheme.Name()] = t
	return t
}

// Score evaluates an attack submission under the given scheme and returns
// its manipulation power.
func (c *Challenge) Score(atk core.Attack, scheme agg.Scheme) (mp.Result, error) {
	attacked, err := atk.Apply(c.Fair)
	if err != nil {
		return mp.Result{}, err
	}
	return mp.Compute(c.Baseline(scheme), scheme.Aggregates(attacked)), nil
}
