package challenge

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/agg"
	"repro/internal/stats"
)

func TestExportRoundTrip(t *testing.T) {
	c := newChallenge(t)
	subs, err := GeneratePopulation(stats.NewRNG(3), c, 6)
	if err != nil {
		t.Fatal(err)
	}
	scored, err := c.ScoreAll(subs, agg.SAScheme{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteSubmissions(&buf, subs, scored, "SA"); err != nil {
		t.Fatal(err)
	}

	exp, back, err := ReadSubmissions(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Scheme != "SA" || exp.BiasedRaters != c.Config.BiasedRaters {
		t.Errorf("export header = %+v", exp)
	}
	if len(back) != len(subs) {
		t.Fatalf("round trip lost submissions: %d vs %d", len(back), len(subs))
	}
	for i := range subs {
		if back[i].ID != subs[i].ID || back[i].Strategy != subs[i].Strategy {
			t.Fatalf("submission %d metadata mismatch", i)
		}
		for id, s := range subs[i].Attack.Ratings {
			got := back[i].Attack.Ratings[id]
			if len(got) != len(s) {
				t.Fatalf("submission %d product %s: %d vs %d ratings", i, id, len(got), len(s))
			}
			for j := range s {
				if got[j] != s[j] {
					t.Fatalf("submission %d product %s rating %d differs", i, id, j)
				}
			}
		}
		if exp.Submissions[i].OverallMP == nil {
			t.Fatalf("submission %d missing score", i)
		}
		if *exp.Submissions[i].OverallMP != scored[i].MP.Overall {
			t.Fatalf("submission %d score mismatch", i)
		}
	}

	// Re-scoring the re-imported population reproduces the exported MPs.
	rescored, err := c.ScoreAll(back, agg.SAScheme{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rescored {
		if rescored[i].MP.Overall != scored[i].MP.Overall {
			t.Fatalf("rescore %d: %v vs %v", i, rescored[i].MP.Overall, scored[i].MP.Overall)
		}
	}
}

func TestExportWithoutScores(t *testing.T) {
	c := newChallenge(t)
	subs, err := GeneratePopulation(stats.NewRNG(4), c, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteSubmissions(&buf, subs, nil, ""); err != nil {
		t.Fatal(err)
	}
	exp, _, err := ReadSubmissions(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, es := range exp.Submissions {
		if es.OverallMP != nil {
			t.Error("unexpected score in unscored export")
		}
	}
}

func TestReadSubmissionsInvalid(t *testing.T) {
	if _, _, err := ReadSubmissions(strings.NewReader("{oops")); err == nil {
		t.Error("invalid JSON accepted")
	}
}
