package challenge

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dataset"
)

// The paper's team released their collected attack data to the community;
// this file is the reproduction's analog: the simulated population —
// submissions, per-product profiles, the unfair ratings themselves, and
// (optionally) their scores — serializes to JSON for external analysis.

// ExportedSubmission is the JSON shape of one submission.
type ExportedSubmission struct {
	ID       int                     `json:"id"`
	Strategy Strategy                `json:"strategy"`
	Profiles map[string]core.Profile `json:"profiles"`
	// Ratings maps product ID to the unfair rating series.
	Ratings map[string]dataset.Series `json:"ratings"`
	// OverallMP is present when the export includes scores.
	OverallMP *float64 `json:"overallMP,omitempty"`
}

// Export is the serialized challenge data file.
type Export struct {
	// Config echoes the challenge setup the data was generated against.
	BiasedRaters     int                  `json:"biasedRaters"`
	HorizonDays      float64              `json:"horizonDays"`
	DowngradeTargets []string             `json:"downgradeTargets"`
	BoostTargets     []string             `json:"boostTargets"`
	Scheme           string               `json:"scheme,omitempty"`
	Submissions      []ExportedSubmission `json:"submissions"`
}

// WriteSubmissions serializes a population (optionally scored — pass the
// Scored slice from ScoreAll, or nil for raw data) to JSON.
func (c *Challenge) WriteSubmissions(w io.Writer, subs []Submission, scored []Scored, schemeName string) error {
	byID := make(map[int]float64, len(scored))
	for _, sc := range scored {
		byID[sc.Submission.ID] = sc.MP.Overall
	}
	exp := Export{
		BiasedRaters:     c.Config.BiasedRaters,
		HorizonDays:      c.Config.Fair.HorizonDays,
		DowngradeTargets: c.Config.DowngradeTargets,
		BoostTargets:     c.Config.BoostTargets,
		Scheme:           schemeName,
	}
	for _, sub := range subs {
		es := ExportedSubmission{
			ID:       sub.ID,
			Strategy: sub.Strategy,
			Profiles: sub.Profiles,
			Ratings:  sub.Attack.Ratings,
		}
		if mp, ok := byID[sub.ID]; ok {
			v := mp
			es.OverallMP = &v
		}
		exp.Submissions = append(exp.Submissions, es)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(exp); err != nil {
		return fmt.Errorf("encode challenge export: %w", err)
	}
	return nil
}

// ReadSubmissions parses an export back into submissions, so externally
// produced or archived attack data can be rescored against any scheme.
func ReadSubmissions(r io.Reader) (Export, []Submission, error) {
	var exp Export
	if err := json.NewDecoder(r).Decode(&exp); err != nil {
		return Export{}, nil, fmt.Errorf("decode challenge export: %w", err)
	}
	subs := make([]Submission, 0, len(exp.Submissions))
	for _, es := range exp.Submissions {
		ratings := make(map[string]dataset.Series, len(es.Ratings))
		for id, s := range es.Ratings {
			cp := s.Clone()
			cp.Sort()
			ratings[id] = cp
		}
		subs = append(subs, Submission{
			ID:       es.ID,
			Strategy: es.Strategy,
			Profiles: es.Profiles,
			Attack:   core.Attack{Ratings: ratings},
		})
	}
	return exp, subs, nil
}
