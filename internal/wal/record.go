package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Record is one durably logged rating submission.
type Record struct {
	Product string
	Rater   string
	Value   float64
	Day     float64
	// ReceivedUnixNano is the wall-clock receipt time of the submission in
	// nanoseconds since the Unix epoch. It is operational metadata (audit,
	// retrospective collusion analysis); recovery does not interpret it.
	ReceivedUnixNano int64
}

// On-disk framing: every record is
//
//	u32 little-endian payload length
//	u32 little-endian CRC32 (IEEE) of the payload
//	payload
//
// and the payload is
//
//	u16 len(product) | product bytes
//	u16 len(rater)   | rater bytes
//	u64 IEEE-754 bits of Value
//	u64 IEEE-754 bits of Day
//	u64 ReceivedUnixNano (two's complement)
//
// all little-endian. A reader that hits a short header, a short payload, a
// length above maxRecordSize, or a CRC mismatch treats the record and
// everything after it as a torn tail.
const (
	headerSize = 8
	// maxRecordSize bounds a single payload. Product and rater IDs are
	// short strings; anything near this limit is corruption, not data.
	maxRecordSize = 1 << 16
)

func appendRecord(buf []byte, r Record) ([]byte, error) {
	if len(r.Product) > math.MaxUint16 || len(r.Rater) > math.MaxUint16 {
		return nil, fmt.Errorf("wal: id too long (product %d, rater %d bytes)", len(r.Product), len(r.Rater))
	}
	payloadLen := 2 + len(r.Product) + 2 + len(r.Rater) + 8 + 8 + 8
	if payloadLen > maxRecordSize {
		return nil, fmt.Errorf("wal: record payload %d bytes exceeds %d", payloadLen, maxRecordSize)
	}
	start := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(payloadLen))
	buf = append(buf, 0, 0, 0, 0) // CRC placeholder
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(r.Product)))
	buf = append(buf, r.Product...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(r.Rater)))
	buf = append(buf, r.Rater...)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Value))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Day))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.ReceivedUnixNano))
	crc := crc32.ChecksumIEEE(buf[start+headerSize:])
	binary.LittleEndian.PutUint32(buf[start+4:], crc)
	return buf, nil
}

// decodeRecord parses one record from the front of data. It returns the
// record and the number of bytes consumed, or ok=false when data holds no
// complete, checksum-valid record at its front (a torn or corrupt tail).
func decodeRecord(data []byte) (r Record, n int, ok bool) {
	if len(data) < headerSize {
		return Record{}, 0, false
	}
	payloadLen := int(binary.LittleEndian.Uint32(data))
	if payloadLen > maxRecordSize || len(data) < headerSize+payloadLen {
		return Record{}, 0, false
	}
	payload := data[headerSize : headerSize+payloadLen]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[4:]) {
		return Record{}, 0, false
	}
	// Field lengths must tile the payload exactly.
	if payloadLen < 2 {
		return Record{}, 0, false
	}
	pLen := int(binary.LittleEndian.Uint16(payload))
	rest := payload[2:]
	if len(rest) < pLen+2 {
		return Record{}, 0, false
	}
	r.Product = string(rest[:pLen])
	rest = rest[pLen:]
	rLen := int(binary.LittleEndian.Uint16(rest))
	rest = rest[2:]
	if len(rest) != rLen+24 {
		return Record{}, 0, false
	}
	r.Rater = string(rest[:rLen])
	rest = rest[rLen:]
	r.Value = math.Float64frombits(binary.LittleEndian.Uint64(rest))
	r.Day = math.Float64frombits(binary.LittleEndian.Uint64(rest[8:]))
	r.ReceivedUnixNano = int64(binary.LittleEndian.Uint64(rest[16:]))
	return r, headerSize + payloadLen, true
}
