// Package wal implements the write-ahead log that makes the online rating
// service durable: an append-only, length-prefixed, CRC32-checksummed log
// of submitted ratings plus periodic full-dataset snapshots, so recovery
// after a crash costs O(snapshot + log tail) rather than O(all history).
//
// Layout inside the WAL directory:
//
//	snapshot.json  full dataset checkpoint (internal/dataset JSON encoding)
//	wal.log        ratings appended since the snapshot
//	snapshot.tmp   in-flight checkpoint; removed on open
//
// Durability contract: Append fsyncs per the group-commit policy
// (SyncEvery/SyncInterval), so with SyncEvery=1 every acknowledged rating
// is durable before Append returns; with a larger batch, up to
// SyncEvery−1 acknowledged ratings may be lost to a crash — the standard
// group-commit trade-off. A failed fsync poisons the log permanently
// (the kernel may have dropped the dirty pages, so nothing written since
// the last successful sync can be trusted); every later Append returns the
// same error and the service must be restarted to recover.
//
// Crash safety: a torn final record (short header, short payload, or CRC
// mismatch) is detected on open and truncated away; Compact orders its
// writes (write tmp, fsync, rename, reset log) so that a crash at any
// point leaves either the old snapshot+log or the new snapshot with a
// possibly redundant log, which replay deduplicates.
package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/obs"
)

// File names inside the WAL directory.
const (
	logName      = "wal.log"
	snapshotName = "snapshot.json"
	snapshotTmp  = "snapshot.tmp"
)

// ErrClosed is returned by operations on a closed WAL.
var ErrClosed = errors.New("wal: closed")

// Options configures the group-commit policy.
type Options struct {
	// SyncEvery fsyncs after this many appended records. 0 or 1 means
	// every append (strict durability); larger values amortize fsyncs
	// under heavy traffic.
	SyncEvery int
	// SyncInterval, when positive, forces an fsync on the next Append once
	// this much time has passed since the last sync, bounding the
	// durability window of a lightly loaded batch.
	SyncInterval time.Duration
	// StallThreshold, when positive, arms the fsync-latency circuit
	// breaker: a successful fsync slower than this trips the breaker, and
	// while it is open appends return AckPending without fsyncing — the log
	// keeps every record (never silent loss) but durability is deferred to
	// a background group commit. A probe goroutine re-syncs every
	// ProbeInterval; once a probe completes under the threshold the breaker
	// closes and appends ack durable again. 0 disables the breaker.
	StallThreshold time.Duration
	// ProbeInterval paces the breaker's background probe syncs. Defaults
	// to 250ms when the breaker is armed.
	ProbeInterval time.Duration
	// Now substitutes the wall clock, for tests. Defaults to time.Now.
	Now func() time.Time
}

// defaultProbeInterval paces breaker probes when ProbeInterval is unset.
const defaultProbeInterval = 250 * time.Millisecond

// Metrics holds the WAL's observability handles. Every field is optional:
// nil handles record nothing (the obs package's no-op plane), so an
// uninstrumented WAL pays one nil check per event. Attach with SetMetrics.
type Metrics struct {
	// FsyncSeconds observes the latency of every fsync the WAL issues,
	// foreground group commits and breaker probes alike.
	FsyncSeconds *obs.Histogram
	// BatchSize observes how many appended records each successful sync
	// made durable — the realized group-commit batch.
	BatchSize *obs.Histogram
	// BreakerOpen is 1 while the fsync-latency breaker is open (appends
	// acknowledged AckPending), 0 otherwise.
	BreakerOpen *obs.Gauge
}

// Ack describes the durability of one acknowledged append.
type Ack int

const (
	// AckDurable: the record is on stable storage per the configured
	// group-commit policy (with SyncEvery=1, fsynced before the append
	// returned; with a larger batch, within the policy's bounded window).
	AckDurable Ack = iota
	// AckPending: the fsync-latency breaker is open. The record is in the
	// log file but its fsync is deferred to the background group commit; a
	// power loss before the next successful sync may lose it. Callers must
	// surface this weaker promise to their clients explicitly.
	AckPending
)

func (a Ack) String() string {
	if a == AckPending {
		return "pending"
	}
	return "durable"
}

// Recovery reports what Open found on disk.
type Recovery struct {
	// Snapshot is the last checkpoint, nil when none exists.
	Snapshot *dataset.Dataset
	// Records are the log records appended after the snapshot, in order.
	Records []Record
	// TruncatedBytes counts bytes of torn or corrupt log tail that were
	// discarded (and physically truncated from the file).
	TruncatedBytes int64
}

// WAL is an open write-ahead log. It is safe for concurrent use.
type WAL struct {
	mu       sync.Mutex
	fs       FS
	log      File
	opts     Options
	size     int64
	pending  int   // appends since last successful sync
	appends  int64 // monotonic append counter (breaker bookkeeping)
	lastSync time.Time
	buf      []byte // scratch encode buffer
	failed   error  // sticky fsync/write failure
	closed   bool
	metrics  Metrics

	// Breaker state: degraded is set while the fsync-latency breaker is
	// open; probing marks the background probe goroutine as running so at
	// most one exists; closeCh wakes it on Close.
	degraded bool
	probing  bool
	closeCh  chan struct{}
}

// Open recovers the WAL state in fsys and opens the log for appending.
// Torn trailing records are truncated from the log file; a leftover
// temporary snapshot from a crashed Compact is removed.
func Open(fsys FS, opts Options) (*WAL, *Recovery, error) {
	if opts.Now == nil {
		opts.Now = time.Now
	}
	if opts.SyncEvery < 1 {
		opts.SyncEvery = 1
	}
	if err := fsys.Remove(snapshotTmp); err != nil {
		return nil, nil, fmt.Errorf("wal: remove stale snapshot tmp: %w", err)
	}
	rec := &Recovery{}
	if err := readSnapshot(fsys, rec); err != nil {
		return nil, nil, err
	}
	goodBytes, err := readLog(fsys, rec)
	if err != nil {
		return nil, nil, err
	}
	f, err := fsys.OpenAppend(logName)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open log: %w", err)
	}
	if opts.StallThreshold > 0 && opts.ProbeInterval <= 0 {
		opts.ProbeInterval = defaultProbeInterval
	}
	w := &WAL{fs: fsys, log: f, opts: opts, size: goodBytes, lastSync: opts.Now(), closeCh: make(chan struct{})}
	return w, rec, nil
}

func readSnapshot(fsys FS, rec *Recovery) error {
	f, err := fsys.Open(snapshotName)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("wal: open snapshot: %w", err)
	}
	defer f.Close()
	d, err := dataset.ReadJSON(f)
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	rec.Snapshot = d
	return nil
}

// readLog scans the log, collects checksum-valid records, and truncates
// any torn tail. It returns the byte length of the valid prefix.
func readLog(fsys FS, rec *Recovery) (int64, error) {
	f, err := fsys.Open(logName)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("wal: open log: %w", err)
	}
	data, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		return 0, fmt.Errorf("wal: read log: %w", err)
	}
	off := 0
	for off < len(data) {
		r, n, ok := decodeRecord(data[off:])
		if !ok {
			break
		}
		rec.Records = append(rec.Records, r)
		off += n
	}
	if torn := int64(len(data) - off); torn > 0 {
		if err := fsys.Truncate(logName, int64(off)); err != nil {
			return 0, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
		rec.TruncatedBytes = torn
	}
	return int64(off), nil
}

// SetMetrics attaches observability handles to the WAL. It may be called
// any time after Open (the recording paths are lock-free, so there is no
// ordering hazard with in-flight appends); handles left nil stay no-ops.
func (w *WAL) SetMetrics(m Metrics) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.metrics = m
	if w.degraded {
		w.metrics.BreakerOpen.Set(1)
	}
}

// Append writes one record to the log and fsyncs per the group-commit
// policy, discarding the durability ack. See AppendAck.
func (w *WAL) Append(r Record) error {
	_, err := w.AppendAck(r)
	return err
}

// AppendAck writes one record to the log and fsyncs per the group-commit
// policy. When it returns nil the record is in the log: AckDurable means
// durably so per the policy, AckPending means the fsync-latency breaker is
// open and durability is deferred to the background group commit. When it
// returns an error nothing observable changed for the caller and, for
// write/sync failures, the WAL is poisoned — see Err.
func (w *WAL) AppendAck(r Record) (Ack, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return AckDurable, ErrClosed
	}
	if w.failed != nil {
		return AckDurable, w.failed
	}
	buf, err := appendRecord(w.buf[:0], r)
	if err != nil {
		return AckDurable, err // encoding error: caller bug, log not poisoned
	}
	w.buf = buf
	n, err := w.log.Write(buf)
	if err != nil {
		// A short or failed write leaves garbage at the tail; the CRC scan
		// on the next open truncates it. Nothing since the last sync is
		// trustworthy, so poison the log.
		w.failed = fmt.Errorf("wal: write (%d/%d bytes): %w", n, len(buf), err)
		return AckDurable, w.failed
	}
	w.size += int64(n)
	w.pending++
	w.appends++
	if w.degraded {
		// Breaker open: never block the serving path on a stalled disk.
		// The record is written; the probe goroutine group-commits it.
		return AckPending, nil
	}
	if w.pending >= w.opts.SyncEvery ||
		(w.opts.SyncInterval > 0 && w.opts.Now().Sub(w.lastSync) >= w.opts.SyncInterval) {
		if err := w.syncLocked(); err != nil {
			return AckDurable, err
		}
	}
	// A sync that just tripped the breaker still completed: this record is
	// durable; only later appends degrade to pending.
	return AckDurable, nil
}

// syncLocked fsyncs the log, times the fsync against the breaker threshold,
// and trips the breaker on a stall. The caller holds w.mu — concurrent
// appends wait out the fsync, which is why the breaker exists: after one
// observed stall, appends stop entering this path until a probe recovers.
func (w *WAL) syncLocked() error {
	start := w.opts.Now()
	batch := w.pending
	if err := w.log.Sync(); err != nil {
		w.failed = fmt.Errorf("wal: fsync: %w", err)
		return w.failed
	}
	w.pending = 0
	w.lastSync = w.opts.Now()
	w.metrics.FsyncSeconds.Observe(w.lastSync.Sub(start).Seconds())
	if batch > 0 {
		w.metrics.BatchSize.Observe(float64(batch))
	}
	if w.opts.StallThreshold > 0 {
		if w.lastSync.Sub(start) >= w.opts.StallThreshold {
			w.tripLocked()
		} else {
			w.degraded = false // a fast fsync heals the breaker
			w.metrics.BreakerOpen.Set(0)
		}
	}
	return nil
}

// tripLocked opens the fsync-latency breaker and ensures the probe
// goroutine is running.
func (w *WAL) tripLocked() {
	w.degraded = true
	w.metrics.BreakerOpen.Set(1)
	if !w.probing {
		w.probing = true
		go w.probe()
	}
}

// probe is the breaker's background group commit: every ProbeInterval it
// fsyncs the log outside w.mu (appends keep flowing while the disk stalls),
// marks everything written before the fsync as durable, and closes the
// breaker once a probe completes under the stall threshold.
func (w *WAL) probe() {
	for {
		select {
		case <-w.closeCh:
			return
		case <-time.After(w.opts.ProbeInterval):
		}
		w.mu.Lock()
		if w.closed || w.failed != nil || !w.degraded {
			w.probing = false
			w.mu.Unlock()
			return
		}
		f := w.log
		seqAtStart := w.appends
		w.mu.Unlock()

		start := w.opts.Now()
		err := f.Sync()
		dur := w.opts.Now().Sub(start)

		w.mu.Lock()
		if w.closed {
			w.probing = false
			w.mu.Unlock()
			return
		}
		if err != nil {
			w.failed = fmt.Errorf("wal: probe fsync: %w", err)
			w.probing = false
			w.mu.Unlock()
			return
		}
		// Everything appended before the fsync started is durable now;
		// records landed during the fsync stay pending for the next probe.
		if remaining := int(w.appends - seqAtStart); remaining < w.pending {
			if committed := w.pending - remaining; committed > 0 {
				w.metrics.BatchSize.Observe(float64(committed))
			}
			w.pending = remaining
		}
		w.lastSync = w.opts.Now()
		w.metrics.FsyncSeconds.Observe(dur.Seconds())
		if dur < w.opts.StallThreshold {
			w.degraded = false
			w.metrics.BreakerOpen.Set(0)
			w.probing = false
			w.mu.Unlock()
			return
		}
		w.mu.Unlock()
	}
}

// Degraded reports whether the fsync-latency breaker is open: appends are
// being acknowledged AckPending and group-committed in the background.
func (w *WAL) Degraded() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.degraded
}

// Sync forces an fsync of the log regardless of the batch policy.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.failed != nil {
		return w.failed
	}
	return w.syncLocked()
}

// Compact checkpoints the full dataset and resets the log, bounding
// recovery cost. Write order matters for crash safety:
//
//  1. write the dataset to snapshot.tmp and fsync it
//  2. rename snapshot.tmp → snapshot.json (atomic)
//  3. truncate the log to zero
//
// A crash before (2) leaves the old snapshot+log intact; a crash between
// (2) and (3) leaves a snapshot that already contains the log's records —
// recovery replays them as exact duplicates, which the service
// deduplicates idempotently.
func (w *WAL) Compact(d *dataset.Dataset) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.failed != nil {
		return w.failed
	}
	// Flush acknowledged records before checkpointing so the snapshot
	// never gets ahead of the durable log.
	if err := w.syncLocked(); err != nil {
		return err
	}
	f, err := w.fs.Create(snapshotTmp)
	if err != nil {
		return fmt.Errorf("wal: create snapshot tmp: %w", err)
	}
	if err := d.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("wal: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: close snapshot: %w", err)
	}
	if err := w.fs.Rename(snapshotTmp, snapshotName); err != nil {
		return fmt.Errorf("wal: publish snapshot: %w", err)
	}
	if err := w.fs.Truncate(logName, 0); err != nil {
		// The snapshot is already live; a fat log only costs replay time
		// (duplicates are skipped), but the truncate failure is still an
		// FS fault worth surfacing.
		return fmt.Errorf("wal: reset log: %w", err)
	}
	w.size = 0
	w.pending = 0
	return nil
}

// Size returns the current log length in bytes (excluding the snapshot).
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Err returns the sticky write/fsync failure, if any. A non-nil result
// means the log can no longer accept appends and the process should be
// restarted; readiness probes surface this.
func (w *WAL) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.failed
}

// Close flushes pending records and closes the log file. Appending to a
// closed WAL returns ErrClosed.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if w.closeCh != nil {
		close(w.closeCh) // wake the breaker probe so it exits promptly
	}
	var syncErr error
	if w.failed == nil && w.pending > 0 {
		if err := w.log.Sync(); err != nil {
			syncErr = fmt.Errorf("wal: fsync on close: %w", err)
		}
	}
	if err := w.log.Close(); err != nil && syncErr == nil {
		syncErr = fmt.Errorf("wal: close log: %w", err)
	}
	return syncErr
}
