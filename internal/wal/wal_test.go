package wal_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/faultfs"
	"repro/internal/wal"
)

func rec(i int) wal.Record {
	return wal.Record{
		Product:          fmt.Sprintf("tv%d", i%3),
		Rater:            fmt.Sprintf("rater%03d", i),
		Value:            float64(i%11) / 2,
		Day:              float64(i) * 0.25,
		ReceivedUnixNano: int64(1_700_000_000_000_000_000 + i),
	}
}

func appendN(t *testing.T, w *wal.WAL, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		if err := w.Append(rec(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

// TestRoundtripOSDir exercises the production FS on a real directory:
// records appended across two sessions all come back, in order.
func TestRoundtripOSDir(t *testing.T) {
	fsys, err := wal.OSDir(t.TempDir() + "/wal")
	if err != nil {
		t.Fatal(err)
	}
	w, rc, err := wal.Open(fsys, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rc.Snapshot != nil || len(rc.Records) != 0 || rc.TruncatedBytes != 0 {
		t.Fatalf("fresh dir recovery = %+v", rc)
	}
	appendN(t, w, 0, 10)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Second session: replay, then extend.
	w, rc, err = wal.Open(fsys, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rc.Records) != 10 {
		t.Fatalf("recovered %d records, want 10", len(rc.Records))
	}
	for i, r := range rc.Records {
		if r != rec(i) {
			t.Fatalf("record %d = %+v, want %+v", i, r, rec(i))
		}
	}
	appendN(t, w, 10, 5)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, rc, err = wal.Open(fsys, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rc.Records) != 15 {
		t.Fatalf("recovered %d records after extend, want 15", len(rc.Records))
	}
}

// TestTornTailTruncated proves the torn-write rule: garbage after the last
// complete record is detected, reported, and physically cut off, and the
// log stays appendable afterwards.
func TestTornTailTruncated(t *testing.T) {
	fs := faultfs.New()
	w, _, err := wal.Open(fs, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 4)
	w.Close()
	good, err := fs.ReadFile("wal.log")
	if err != nil {
		t.Fatal(err)
	}
	fs.WriteFile("wal.log", append(append([]byte(nil), good...), 0x7, 0x13, 0x42))

	w, rc, err := wal.Open(fs, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rc.Records) != 4 || rc.TruncatedBytes != 3 {
		t.Fatalf("recovery = %d records, %d torn bytes; want 4, 3", len(rc.Records), rc.TruncatedBytes)
	}
	if size, _ := fs.Size("wal.log"); size != int64(len(good)) {
		t.Errorf("log size after truncation = %d, want %d", size, len(good))
	}
	appendN(t, w, 4, 1)
	w.Close()
	_, rc, err = wal.Open(fs, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rc.Records) != 5 {
		t.Fatalf("post-truncation append lost: %d records, want 5", len(rc.Records))
	}
}

// TestCorruptRecordStopsReplay flips one payload byte mid-log: the CRC
// catches it and replay keeps only the prefix before the corruption.
func TestCorruptRecordStopsReplay(t *testing.T) {
	fs := faultfs.New()
	w, _, err := wal.Open(fs, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 6)
	w.Close()
	data, _ := fs.ReadFile("wal.log")
	perRecord := len(data) / 6
	data[2*perRecord+perRecord/2] ^= 0xFF // inside record 2's payload
	fs.WriteFile("wal.log", data)

	_, rc, err := wal.Open(fs, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rc.Records) != 2 {
		t.Fatalf("recovered %d records, want the 2 before the corruption", len(rc.Records))
	}
	if rc.TruncatedBytes != int64(len(data)-2*perRecord) {
		t.Errorf("truncated %d bytes, want %d", rc.TruncatedBytes, len(data)-2*perRecord)
	}
	for i, r := range rc.Records {
		if r != rec(i) {
			t.Errorf("surviving record %d = %+v, want %+v", i, r, rec(i))
		}
	}
}

// TestGroupCommitAmortizesFsync counts real sync calls: SyncEvery=4 over
// 10 appends must fsync at records 4 and 8, plus once on Close for the
// pending tail.
func TestGroupCommitAmortizesFsync(t *testing.T) {
	fs := faultfs.New()
	w, _, err := wal.Open(fs, wal.Options{SyncEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 10)
	if got := fs.SyncCount(); got != 2 {
		t.Errorf("syncs after 10 appends = %d, want 2", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := fs.SyncCount(); got != 3 {
		t.Errorf("syncs after close = %d, want 3 (close flushes the tail)", got)
	}
	_, rc, err := wal.Open(fs, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rc.Records) != 10 {
		t.Fatalf("recovered %d records, want 10", len(rc.Records))
	}
}

// TestSyncIntervalBoundsBatchAge drives the WAL with a fake clock: a slow
// trickle of appends still fsyncs once SyncInterval has elapsed, so a
// half-filled batch cannot stay volatile forever.
func TestSyncIntervalBoundsBatchAge(t *testing.T) {
	fs := faultfs.New()
	now := time.Unix(0, 0)
	w, _, err := wal.Open(fs, wal.Options{
		SyncEvery:    1000,
		SyncInterval: time.Second,
		Now:          func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		now = now.Add(400 * time.Millisecond)
		if err := w.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Syncs fire on the appends at t=1.2s and t=2.4s (≥1s since previous).
	if got := fs.SyncCount(); got != 2 {
		t.Errorf("interval-driven syncs = %d, want 2", got)
	}
}

// TestFsyncFailurePoisons: after one failed fsync nothing acknowledged
// since the last good sync can be trusted, so the WAL must refuse all
// further appends with the same error.
func TestFsyncFailurePoisons(t *testing.T) {
	fs := faultfs.New()
	w, _, err := wal.Open(fs, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 3)
	fs.FailSyncsAfter(0)
	errAppend := w.Append(rec(3))
	if !errors.Is(errAppend, faultfs.ErrInjected) {
		t.Fatalf("append with failing fsync = %v, want injected error", errAppend)
	}
	if err := w.Append(rec(4)); !errors.Is(err, faultfs.ErrInjected) {
		t.Errorf("append after poison = %v, want sticky injected error", err)
	}
	if err := w.Err(); !errors.Is(err, faultfs.ErrInjected) {
		t.Errorf("Err() = %v, want sticky injected error", err)
	}
	// The crash image still recovers the three synced records (record 3's
	// bytes may survive too — it reached the OS — but no later ones).
	_, rc, err := wal.Open(fs.Clone(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(rc.Records); n != 3 && n != 4 {
		t.Errorf("crash image recovered %d records, want 3 or 4", n)
	}
}

// TestShortWriteTruncatedOnReopen kills the writer mid-record via a write
// budget: the half record is garbage to the CRC scan and is cut away.
func TestShortWriteTruncatedOnReopen(t *testing.T) {
	fs := faultfs.New()
	w, _, err := wal.Open(fs, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 2)
	full, _ := fs.ReadFile("wal.log")
	fs.LimitWrites(int64(len(full)/4) + 1) // dies partway through record 2
	if err := w.Append(rec(2)); err == nil {
		t.Fatal("short write not surfaced")
	}
	if err := w.Append(rec(3)); err == nil {
		t.Fatal("append after short write accepted; log is poisoned")
	}
	_, rc, err := wal.Open(fs.Clone(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rc.Records) != 2 || rc.TruncatedBytes == 0 {
		t.Fatalf("recovery = %d records, %d torn bytes; want 2 records and a truncated tail",
			len(rc.Records), rc.TruncatedBytes)
	}
}

func snapshotDataset() *dataset.Dataset {
	return &dataset.Dataset{
		HorizonDays: 90,
		Products: []dataset.Product{
			{ID: "tv0", Ratings: dataset.Series{{Day: 1, Value: 4, Rater: "a"}, {Day: 2, Value: 3.5, Rater: "b"}}},
			{ID: "tv1", Ratings: dataset.Series{{Day: 0.5, Value: 5, Rater: "c"}}},
		},
	}
}

// TestCompactCheckpointsAndResetsLog: after Compact, recovery is snapshot
// + tail only, and the log no longer holds pre-snapshot records.
func TestCompactCheckpointsAndResetsLog(t *testing.T) {
	fs := faultfs.New()
	w, _, err := wal.Open(fs, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 8)
	if err := w.Compact(snapshotDataset()); err != nil {
		t.Fatal(err)
	}
	if size, _ := fs.Size("wal.log"); size != 0 {
		t.Errorf("log size after compact = %d, want 0", size)
	}
	appendN(t, w, 8, 2)
	w.Close()

	_, rc, err := wal.Open(fs, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rc.Snapshot == nil {
		t.Fatal("no snapshot recovered")
	}
	if n := len(rc.Snapshot.Products); n != 2 {
		t.Errorf("snapshot products = %d, want 2", n)
	}
	if len(rc.Records) != 2 || rc.Records[0] != rec(8) || rc.Records[1] != rec(9) {
		t.Errorf("log tail = %+v, want records 8 and 9", rc.Records)
	}
}

// TestOpenRemovesStaleSnapshotTmp: a crash during Compact may leave
// snapshot.tmp behind; open must discard it (it was never published).
func TestOpenRemovesStaleSnapshotTmp(t *testing.T) {
	fs := faultfs.New()
	fs.WriteFile("snapshot.tmp", []byte("{half a snapsh"))
	w, rc, err := wal.Open(fs, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if rc.Snapshot != nil {
		t.Error("unpublished snapshot.tmp treated as a snapshot")
	}
	if _, err := fs.ReadFile("snapshot.tmp"); err == nil {
		t.Error("stale snapshot.tmp not removed")
	}
}

// TestAppendRejectsOversizeIDs: an encoding error is the caller's bug and
// must not poison the log.
func TestAppendRejectsOversizeIDs(t *testing.T) {
	fs := faultfs.New()
	w, _, err := wal.Open(fs, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	huge := make([]byte, 1<<17)
	if err := w.Append(wal.Record{Product: string(huge), Rater: "r"}); err == nil {
		t.Fatal("oversize product accepted")
	}
	if err := w.Append(rec(0)); err != nil {
		t.Fatalf("append after encoding error = %v, want success (not poisoned)", err)
	}
}

// TestClosedWAL: operations after Close fail with ErrClosed.
func TestClosedWAL(t *testing.T) {
	fs := faultfs.New()
	w, _, err := wal.Open(fs, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(rec(0)); !errors.Is(err, wal.ErrClosed) {
		t.Errorf("Append after close = %v, want ErrClosed", err)
	}
	if err := w.Compact(snapshotDataset()); !errors.Is(err, wal.ErrClosed) {
		t.Errorf("Compact after close = %v, want ErrClosed", err)
	}
	if err := w.Close(); err != nil {
		t.Errorf("second Close = %v, want nil", err)
	}
}

// waitFor polls cond every millisecond until it holds or the deadline
// passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}

// TestBreakerTripsOnStallAndRecovers drives the fsync-latency circuit
// breaker end to end: a stalled disk trips it (acks flip to pending, the
// serving path stops blocking), the background probe group-commits pending
// records, and a recovered disk closes it (acks flip back to durable).
// Nothing is ever lost: every record acked — durable or pending — is in the
// log after an orderly Close.
func TestBreakerTripsOnStallAndRecovers(t *testing.T) {
	fs := faultfs.New()
	w, _, err := wal.Open(fs, wal.Options{
		SyncEvery:      1,
		StallThreshold: 2 * time.Millisecond,
		ProbeInterval:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ack, err := w.AppendAck(rec(0))
	if err != nil || ack != wal.AckDurable {
		t.Fatalf("healthy append = %v, %v; want durable", ack, err)
	}
	if w.Degraded() {
		t.Fatal("breaker open on a healthy disk")
	}

	// Stall the disk. The tripping append eats one stall but still acks
	// durable (its fsync completed); the next one must be pending and fast.
	fs.StallSyncs(10 * time.Millisecond)
	ack, err = w.AppendAck(rec(1))
	if err != nil || ack != wal.AckDurable {
		t.Fatalf("tripping append = %v, %v; want durable (its fsync succeeded)", ack, err)
	}
	if !w.Degraded() {
		t.Fatal("breaker did not trip on a stalled fsync")
	}
	start := time.Now()
	ack, err = w.AppendAck(rec(2))
	if err != nil || ack != wal.AckPending {
		t.Fatalf("degraded append = %v, %v; want pending", ack, err)
	}
	if d := time.Since(start); d >= 10*time.Millisecond {
		t.Errorf("degraded append blocked %v behind the stalled disk", d)
	}

	// Heal the disk: a probe closes the breaker without any new append.
	fs.ClearFaults()
	waitFor(t, 2*time.Second, "breaker to close", func() bool { return !w.Degraded() })
	ack, err = w.AppendAck(rec(3))
	if err != nil || ack != wal.AckDurable {
		t.Fatalf("healed append = %v, %v; want durable", ack, err)
	}

	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, rc, err := wal.Open(fs, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rc.Records) != 4 {
		t.Fatalf("recovered %d records, want all 4 acked ones", len(rc.Records))
	}
	for i, r := range rc.Records {
		if r != rec(i) {
			t.Errorf("record %d = %+v", i, r)
		}
	}
}

// TestBreakerProbeGroupCommits: records acked pending while the breaker is
// open become durable via the background probe even though the disk stays
// slow — visible in the crash image (power-loss model) without any Close.
func TestBreakerProbeGroupCommits(t *testing.T) {
	fs := faultfs.New()
	w, _, err := wal.Open(fs, wal.Options{
		SyncEvery:      1,
		StallThreshold: time.Millisecond,
		ProbeInterval:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	fs.StallSyncs(3 * time.Millisecond) // slow enough to keep the breaker open
	if _, err := w.AppendAck(rec(0)); err != nil {
		t.Fatal(err)
	}
	if !w.Degraded() {
		t.Fatal("breaker did not trip")
	}
	for i := 1; i < 5; i++ {
		ack, err := w.AppendAck(rec(i))
		if err != nil || ack != wal.AckPending {
			t.Fatalf("append %d = %v, %v; want pending", i, ack, err)
		}
	}
	// The probe group-commits in the background: eventually the crash image
	// (synced bytes only) replays all five records.
	waitFor(t, 2*time.Second, "probe to group-commit pending records", func() bool {
		_, rc, err := wal.Open(fs.CrashImage(), wal.Options{})
		return err == nil && len(rc.Records) == 5
	})
}

// TestBreakerProbeFailurePoisons: an fsync error during a background probe
// must poison the log exactly like a foreground fsync failure — the
// operator sees it on the next append and via Err.
func TestBreakerProbeFailurePoisons(t *testing.T) {
	fs := faultfs.New()
	w, _, err := wal.Open(fs, wal.Options{
		SyncEvery:      1,
		StallThreshold: time.Millisecond,
		ProbeInterval:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	fs.StallSyncs(3 * time.Millisecond)
	if _, err := w.AppendAck(rec(0)); err != nil {
		t.Fatal(err)
	}
	if !w.Degraded() {
		t.Fatal("breaker did not trip")
	}
	fs.FailSyncsAfter(0)
	waitFor(t, 2*time.Second, "probe failure to poison the log", func() bool { return w.Err() != nil })
	if err := w.Append(rec(1)); !errors.Is(err, faultfs.ErrInjected) {
		t.Errorf("append after probe failure = %v, want the injected fsync error", err)
	}
}
