package wal

import (
	"io"
	"os"
	"path/filepath"
)

// File is the subset of *os.File the WAL needs. Write appends at the
// current offset; Sync must not return until the data is durable.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
}

// FS is the filesystem the WAL writes through. Names are relative to the
// FS root (the WAL directory). Implementations must make Rename atomic
// with respect to crashes — either the old or the new file survives, never
// a mix — matching POSIX rename semantics. The fault-injection harness
// (internal/faultfs) implements FS in memory with injectable failures.
type FS interface {
	// Create opens name for writing, truncating it if it exists.
	Create(name string) (File, error)
	// Open opens name read-only. It returns an error satisfying
	// errors.Is(err, os.ErrNotExist) when the file is absent.
	Open(name string) (File, error)
	// OpenAppend opens name for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name; removing a missing file is not an error.
	Remove(name string) error
	// Truncate cuts name down to size bytes.
	Truncate(name string, size int64) error
	// Size reports the current length of name in bytes.
	Size(name string) (int64, error)
}

// osDir is the production FS: a directory on the real filesystem.
type osDir struct{ root string }

// OSDir returns an FS rooted at dir, creating the directory if needed.
func OSDir(dir string) (FS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return osDir{root: dir}, nil
}

func (d osDir) path(name string) string { return filepath.Join(d.root, name) }

func (d osDir) Create(name string) (File, error) { return os.Create(d.path(name)) }

func (d osDir) Open(name string) (File, error) { return os.Open(d.path(name)) }

func (d osDir) OpenAppend(name string) (File, error) {
	return os.OpenFile(d.path(name), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

func (d osDir) Rename(oldname, newname string) error {
	return os.Rename(d.path(oldname), d.path(newname))
}

func (d osDir) Remove(name string) error {
	err := os.Remove(d.path(name))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

func (d osDir) Truncate(name string, size int64) error {
	return os.Truncate(d.path(name), size)
}

func (d osDir) Size(name string) (int64, error) {
	fi, err := os.Stat(d.path(name))
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// Sub implements SubdirFS: shard subdirectories are real directories on
// disk, created on first use.
func (d osDir) Sub(dir string) (FS, error) {
	return OSDir(filepath.Join(d.root, dir))
}
